open Rwt_util
open Rwt_workflow

type op =
  | Compute of { stage : int; proc : int }
  | Transfer of { file : int; src : int; dst : int }

type event = { dataset : int; op : op; start : Rat.t; finish : Rat.t }

type t = {
  model : Comm_model.t;
  inst : Instance.t;
  datasets : int;
  comp : event array array; (* comp.(d).(i) *)
  trans : event array array; (* trans.(d).(i), i < n-1 *)
  ordered : Rat.t array; (* prefix max of completion times *)
}

let dummy_event = { dataset = -1; op = Compute { stage = 0; proc = 0 }; start = Rat.zero; finish = Rat.zero }

let run ?release model inst ~datasets =
  if datasets <= 0 then invalid_arg "Schedule.run: datasets <= 0";
  Rwt_obs.with_span "sim.run" @@ fun () ->
  let mapping = inst.Instance.mapping in
  let n = Mapping.n_stages mapping in
  Rwt_obs.gauge "sim.datasets" (float_of_int datasets);
  (* one computation per stage plus one transfer per file, per data set *)
  Rwt_obs.add "sim.events" (datasets * ((2 * n) - 1));
  let mi = Array.init n (Mapping.replication mapping) in
  let comp = Array.make_matrix datasets n dummy_event in
  let trans = Array.make_matrix datasets (max 1 (n - 1)) dummy_event in
  let comp_end d i = if d < 0 then Rat.zero else comp.(d).(i).finish in
  let trans_end d i = if d < 0 then Rat.zero else trans.(d).(i).finish in
  for d = 0 to datasets - 1 do
    for i = 0 to n - 1 do
      (* computation of stage i for data set d *)
      let proc = Mapping.proc_for mapping ~stage:i ~dataset:d in
      let dur = Instance.compute_time inst ~stage:i ~proc in
      let arrival =
        if i > 0 then trans_end d (i - 1)
        else match release with None -> Rat.zero | Some f -> f d
      in
      let resource_free =
        match model with
        | Comm_model.Overlap ->
          (* own compute unit: previous data set served by this replica *)
          comp_end (d - mi.(i)) i
        | Comm_model.Strict ->
          if i > 0 then
            (* serialization was already enforced when receiving *)
            Rat.zero
          else if n > 1 then trans_end (d - mi.(0)) 0 (* previous send *)
          else comp_end (d - mi.(0)) 0
      in
      let start = Rat.max arrival resource_free in
      comp.(d).(i) <- { dataset = d; op = Compute { stage = i; proc }; start;
                        finish = Rat.add start dur };
      (* transfer of file i (to the stage i+1 replica), if any *)
      if i < n - 1 then begin
        let src = proc in
        let dst = Mapping.proc_for mapping ~stage:(i + 1) ~dataset:d in
        let dur = Instance.transfer_time inst ~file:i ~src ~dst in
        let file_ready = comp.(d).(i).finish in
        let ports_free =
          match model with
          | Comm_model.Overlap ->
            (* sender out-port and receiver in-port round-robins *)
            Rat.max (trans_end (d - mi.(i)) i) (trans_end (d - mi.(i + 1)) i)
          | Comm_model.Strict ->
            (* sender side is covered by file_ready (its compute precedes);
               receiver side: end of the receiver's previous serial block *)
            if d - mi.(i + 1) < 0 then Rat.zero
            else if i + 1 <= n - 2 then trans_end (d - mi.(i + 1)) (i + 1)
            else comp_end (d - mi.(i + 1)) (i + 1)
        in
        let start = Rat.max file_ready ports_free in
        trans.(d).(i) <- { dataset = d; op = Transfer { file = i; src; dst }; start;
                           finish = Rat.add start dur }
      end
    done
  done;
  let ordered = Array.make datasets Rat.zero in
  for d = 0 to datasets - 1 do
    let c = comp.(d).(n - 1).finish in
    ordered.(d) <- (if d = 0 then c else Rat.max ordered.(d - 1) c)
  done;
  { model; inst; datasets; comp; trans; ordered }

let model t = t.model
let instance t = t.inst
let horizon t = t.datasets

let events t =
  let n = Mapping.n_stages t.inst.Instance.mapping in
  let acc = ref [] in
  for d = t.datasets - 1 downto 0 do
    for i = n - 1 downto 0 do
      if i < n - 1 then acc := t.trans.(d).(i) :: !acc;
      acc := t.comp.(d).(i) :: !acc
    done
  done;
  !acc

let completion t d =
  let n = Mapping.n_stages t.inst.Instance.mapping in
  t.comp.(d).(n - 1).finish

(* Completion of the ordered output stream: the paper's stream is consumed
   in data-set order, so data set [d] is delivered once every data set up to
   [d] has completed. When the last stage is replicated, its replicas'
   completion streams can drift apart under greedy execution; the ordered
   stream is paced by the slowest one, which is exactly the TPN's critical
   ratio. *)
let ordered_completion t d = t.ordered.(d)

let compute_event t ~dataset ~stage = t.comp.(dataset).(stage)
let transfer_event t ~dataset ~file = t.trans.(dataset).(file)

(* The completion sequence is eventually periodic, but with a cyclicity that
   may exceed one block of m data sets (e.g. Example B oscillates with
   cyclicity 2·m). We first try to certify an exact periodic regime
   [completion(d + q·m) − completion(d) = c] over a confirmation window; the
   certified rate c/(q·m) is exact. Otherwise fall back to averaging over
   the last half of the horizon. *)
let period_estimate t =
  let m = Mapping.num_paths t.inst.Instance.mapping in
  let last = t.datasets - 1 in
  if t.datasets < (2 * m) + 1 then
    invalid_arg "Schedule.period_estimate: horizon shorter than 2m";
  let exact_rate q =
    (* need the window [last − 2qm − m, last] inside the horizon *)
    let span = q * m in
    if last - (2 * span) - m < 0 then None
    else begin
      let c = Rat.sub (ordered_completion t last) (ordered_completion t (last - span)) in
      let ok = ref true in
      for j = 0 to span + m do
        if !ok
           && not
                (Rat.equal
                   (Rat.sub (ordered_completion t (last - j)) (ordered_completion t (last - j - span)))
                   c)
        then ok := false
      done;
      if !ok then Some (Rat.div_int c span) else None
    end
  in
  let rec search q = if q > 8 then None else
      match exact_rate q with Some p -> Some p | None -> search (q + 1)
  in
  match search 1 with
  | Some p -> p
  | None ->
    let span = (t.datasets / 2 / m) * m in
    let span = max span m in
    Rat.div_int (Rat.sub (ordered_completion t last) (ordered_completion t (last - span))) span

let measured_period ?(blocks = 40) model inst =
  let m = Mapping.num_paths inst.Instance.mapping in
  let datasets = max (blocks * m) 200 in
  period_estimate (run model inst ~datasets)

(* Resource unit an event occupies; under OVERLAP a transfer occupies two
   units (sender out-port, receiver in-port). *)
let units_of_event model ev =
  match (model, ev.op) with
  | _, Compute { proc; _ } -> [ Platform.proc_name proc ]
  | Comm_model.Overlap, Transfer { src; dst; _ } ->
    [ Platform.proc_name src ^ "-out"; Platform.proc_name dst ^ "-in" ]
  | Comm_model.Strict, Transfer { src; dst; _ } ->
    [ Platform.proc_name src; Platform.proc_name dst ]

let utilization t ~from_dataset =
  if from_dataset < 0 || from_dataset >= t.datasets then
    invalid_arg "Schedule.utilization: dataset out of range";
  (* time window anchored on the ordered completion of [from_dataset] and
     closed at the very last event; every event (any data set) is clipped to
     the window, so resources running ahead of or behind the anchor data set
     are still accounted for. *)
  let window_start = ordered_completion t from_dataset in
  let window_end = ordered_completion t (t.datasets - 1) in
  let width = Rat.sub window_end window_start in
  if Rat.sign width <= 0 then invalid_arg "Schedule.utilization: empty window";
  let busy : (string, Rat.t ref) Hashtbl.t = Hashtbl.create 16 in
  (* every resource unit appears, even if idle over the window *)
  List.iter
    (fun ev ->
      List.iter
        (fun unit -> if not (Hashtbl.mem busy unit) then Hashtbl.add busy unit (ref Rat.zero))
        (units_of_event t.model ev);
      let span =
        Rat.sub (Rat.min ev.finish window_end) (Rat.max ev.start window_start)
      in
      if Rat.sign span > 0 then
        List.iter
          (fun unit ->
            match Hashtbl.find_opt busy unit with
            | Some r -> r := Rat.add !r span
            | None -> Hashtbl.add busy unit (ref span))
          (units_of_event t.model ev))
    (events t);
  Hashtbl.fold (fun unit r acc -> (unit, Rat.div !r width) :: acc) busy []
  |> List.sort compare
