open Rwt_util
open Rwt_workflow

type objectives = { period : Rat.t; latency : Rat.t; reliability : Rat.t }

type member = {
  assignment : int array array;
  m : int;
  objectives : objectives;
  dominated : int;
}

type tier = Exact | Heuristic

type outcome = {
  front : member list;
  tier : tier;
  candidates : int;
  pruned : int;
  skipped : int;
  space : float;
  complete : bool;
}

(* ------------------------------------------------------------------ *)
(* Domination and the Pareto archive                                  *)
(* ------------------------------------------------------------------ *)

let obj_equal a b =
  Rat.equal a.period b.period
  && Rat.equal a.latency b.latency
  && Rat.equal a.reliability b.reliability

(* period and latency are minimized, reliability is maximized *)
let weakly_dominates a b =
  Rat.compare a.period b.period <= 0
  && Rat.compare a.latency b.latency <= 0
  && Rat.compare a.reliability b.reliability >= 0

let dominates a b = weakly_dominates a b && not (obj_equal a b)

type scored = { s_assignment : int array array; s_m : int; s_objs : objectives }

type entry = {
  e_assignment : int array array;
  e_m : int;
  e_objs : objectives;
  mutable e_dominated : int;
}

(* One representative per non-dominated objective vector, the first one in
   the (deterministic) insertion order. The archive is a plain list: fronts
   of three-objective instances stay small, and scans beat tree upkeep. *)
let insert archive (s : scored) =
  let objs = s.s_objs in
  if List.exists (fun e -> obj_equal e.e_objs objs) !archive then ()
  else begin
    let above = List.filter (fun e -> dominates e.e_objs objs) !archive in
    match above with
    | _ :: _ -> List.iter (fun e -> e.e_dominated <- e.e_dominated + 1) above
    | [] ->
      let ejected, kept = List.partition (fun e -> dominates objs e.e_objs) !archive in
      archive :=
        kept
        @ [ { e_assignment = s.s_assignment;
              e_m = s.s_m;
              e_objs = objs;
              e_dominated = List.length ejected }
          ]
  end

let front_of_archive archive =
  let members =
    List.map
      (fun e ->
        { assignment = e.e_assignment;
          m = e.e_m;
          objectives = e.e_objs;
          dominated = e.e_dominated })
      !archive
  in
  List.sort
    (fun a b ->
      let c = Rat.compare a.objectives.period b.objectives.period in
      if c <> 0 then c
      else
        let c = Rat.compare a.objectives.latency b.objectives.latency in
        if c <> 0 then c
        else
          let c = Rat.compare b.objectives.reliability a.objectives.reliability in
          if c <> 0 then c else Stdlib.compare a.assignment b.assignment)
    members

(* ------------------------------------------------------------------ *)
(* Scoring                                                            *)
(* ------------------------------------------------------------------ *)

(* [None] means the candidate is outside the search space (m_cap, lcm
   overflow, malformed assignment) — a skip, not a failure. Solver
   deadlines escape as [Rwt_err.Error] with class [Timeout]. *)
let score ?session ?deadline ?transition_cap model pipeline platform ~p ~m_cap
    assignment =
  let n = Array.length assignment in
  match Mapping.create ~n_stages:n ~p assignment with
  | Error _ -> None
  | Ok mapping ->
    (match Mapping.num_paths mapping with
     | exception Failure _ -> None
     | m when m > m_cap -> None
     | m ->
       let inst =
         Instance.create_exn ~name:"candidate" ~pipeline ~platform ~mapping
       in
       let period =
         match (model, session) with
         | Comm_model.Overlap, _ -> Poly_overlap.period ?deadline inst
         | Comm_model.Strict, Some s -> Delta.period_exn ?deadline s inst
         | Comm_model.Strict, None ->
           (Exact.period_exn ?transition_cap ?deadline model inst).Exact.period
       in
       let latency = (Latency.analyze ~period model inst).Latency.worst in
       let reliability = Reliability.of_mapping platform mapping in
       Rwt_obs.incr "search.candidates";
       Some
         { s_assignment = Array.map Array.copy assignment;
           s_m = m;
           s_objs = { period; latency; reliability }
         })

type verdict = Scored of scored | Skipped | Unscored

(* Score a batch on the pool: contiguous chunks, one private Delta session
   per chunk so STRICT scoring warm-starts across the chunk's candidates.
   A solver timeout raises the shared flag; remaining candidates are left
   [Unscored] and the caller marks the run incomplete. *)
let score_batch ?deadline ?transition_cap ?workers model pipeline platform ~p
    ~m_cap candidates =
  let nc = Array.length candidates in
  if nc = 0 then ([||], false)
  else begin
    let slots =
      match workers with Some w -> max 1 w | None -> Rwt_pool.recommended ()
    in
    let nchunks = max 1 (min slots nc) in
    let per = (nc + nchunks - 1) / nchunks in
    let timed = Atomic.make false in
    let chunks =
      Rwt_obs.with_span "search.score" (fun () ->
          Rwt_pool.map ?workers ~n:nchunks (fun c ->
              let lo = c * per in
              let hi = min nc (lo + per) in
              if lo >= hi then [||]
              else begin
                let session =
                  match model with
                  | Comm_model.Strict -> Some (Delta.create ?transition_cap model)
                  | Comm_model.Overlap -> None
                in
                Array.init (hi - lo) (fun i ->
                    if Atomic.get timed then Unscored
                    else
                      match
                        score ?session ?deadline ?transition_cap model pipeline
                          platform ~p ~m_cap
                          candidates.(lo + i)
                      with
                      | Some s -> Scored s
                      | None -> Skipped
                      | exception
                          Rwt_err.Error { Rwt_err.class_ = Rwt_err.Timeout; _ }
                        ->
                        Atomic.set timed true;
                        Unscored)
              end))
    in
    (Array.concat (Array.to_list chunks), Atomic.get timed)
  end

(* ------------------------------------------------------------------ *)
(* Space size                                                         *)
(* ------------------------------------------------------------------ *)

let space_size ~n_stages:n ~p =
  if n <= 0 || p < n then 0.
  else begin
    let choose a b =
      let acc = ref 1. in
      for i = 1 to b do
        acc := !acc *. float_of_int (a - b + i) /. float_of_int i
      done;
      !acc
    in
    (* sum over the number [u] of busy processors: pick them, then count the
       surjections of the [u] processors onto the [n] stages *)
    let total = ref 0. in
    for u = n to p do
      let surj = ref 0. in
      for j = 0 to n do
        let t = choose n j *. (float_of_int (n - j) ** float_of_int u) in
        surj := !surj +. (if j land 1 = 0 then t else -.t)
      done;
      total := !total +. (choose p u *. !surj)
    done;
    if Float.is_finite !total then Float.max 0. !total else Float.max_float
  end

(* ------------------------------------------------------------------ *)
(* Exact tier: exhaustive enumeration with lower-bound pruning        *)
(* ------------------------------------------------------------------ *)

let popcount mask =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go mask 0

(* bits of [mask], ascending — the canonical round-robin order of a replica
   set (enumerating only ascending orders is the classic search-space
   reduction; see doc/SEARCH.md for why it is a heuristic restriction for
   STRICT periods and exact for the other objectives) *)
let procs_of_mask mask =
  let rec go u m acc =
    if m = 0 then List.rev acc
    else go (u + 1) (m lsr 1) (if m land 1 = 1 then u :: acc else acc)
  in
  Array.of_list (go 0 mask [])

(* nonempty submasks of [mask] in ascending numeric order *)
let submasks mask =
  let rec go s acc = if s = 0 then acc else go ((s - 1) land mask) (s :: acc) in
  go mask []

(* leaves are buffered and scored in batches on the pool; the batch grows
   geometrically so the very first flushes seed the archive early (pruning
   can only cut against already-scored members) while steady state still
   amortizes the dispatch *)
let min_flush_batch = 8
let max_flush_batch = 64

let enumerate ~prune ?deadline ?transition_cap ?workers model pipeline platform
    ~m_cap =
  let n = Pipeline.n_stages pipeline in
  let p = Platform.p platform in
  let w = Array.init n (Pipeline.work pipeline) in
  let speeds = Array.init p (Platform.speed platform) in
  let fails = Array.init p (Platform.failure_rate platform) in
  (* suffix aggregates over the unassigned stages i..n-1 *)
  let suffix_max_w = Array.make (n + 1) Rat.zero in
  let suffix_sum_w = Array.make (n + 1) Rat.zero in
  for i = n - 1 downto 0 do
    suffix_max_w.(i) <- Rat.max w.(i) suffix_max_w.(i + 1);
    suffix_sum_w.(i) <- Rat.add w.(i) suffix_sum_w.(i + 1)
  done;
  let archive = ref [] in
  let candidates = ref 0 and skipped = ref 0 and pruned = ref 0 in
  let stopped = ref false in
  let buffer = ref [] and buf_len = ref 0 in
  let flush_batch = ref min_flush_batch in
  let flush () =
    if !buf_len > 0 then begin
      flush_batch := min max_flush_batch (2 * !flush_batch);
      let batch = Array.of_list (List.rev !buffer) in
      buffer := [];
      buf_len := 0;
      let verdicts, timed =
        score_batch ?deadline ?transition_cap ?workers model pipeline platform
          ~p ~m_cap batch
      in
      Array.iter
        (function
          | Scored s ->
            incr candidates;
            insert archive s
          | Skipped -> incr skipped
          | Unscored -> ())
        verdicts;
      if timed then stopped := true
    end
  in
  let expired () =
    match deadline with None -> false | Some d -> d ()
  in
  (* the subtree's ideal vector: no completion of the partial assignment can
     beat any component (doc/SEARCH.md gives the three bounds) *)
  let bounded_out avail i per_lb lat_sum rel_prod =
    match !archive with
    | [] -> false
    | entries ->
      let q = popcount avail in
      let smax = ref Rat.zero in
      let fprod = ref Rat.one in
      for u = 0 to p - 1 do
        if avail land (1 lsl u) <> 0 then begin
          smax := Rat.max !smax speeds.(u);
          fprod := Rat.mul !fprod fails.(u)
        end
      done;
      let lb_period =
        Rat.max per_lb (Rat.div suffix_max_w.(i) (Rat.mul_int !smax q))
      in
      let lb_latency = Rat.add lat_sum (Rat.div suffix_sum_w.(i) !smax) in
      let stage_ub = Rat.sub Rat.one !fprod in
      let ub_rel = ref rel_prod in
      for _ = i to n - 1 do
        ub_rel := Rat.mul !ub_rel stage_ub
      done;
      List.exists
        (fun e ->
          Rat.compare e.e_objs.period lb_period <= 0
          && Rat.compare e.e_objs.latency lb_latency <= 0
          && Rat.compare e.e_objs.reliability !ub_rel >= 0)
        entries
  in
  let exception Cut_short in
  let rec go i avail per_lb lat_sum rel_prod acc =
    if !stopped || expired () then begin
      stopped := true;
      raise_notrace Cut_short
    end;
    if i = n then begin
      buffer := Array.of_list (List.rev acc) :: !buffer;
      incr buf_len;
      if !buf_len >= !flush_batch then flush ()
    end
    else if prune && bounded_out avail i per_lb lat_sum rel_prod then begin
      incr pruned;
      Rwt_obs.incr "search.pruned"
    end
    else
      List.iter
        (fun sub ->
          let remaining = popcount avail - popcount sub in
          if remaining >= n - i - 1 then begin
            let smin = ref Rat.zero and smax = ref Rat.zero in
            let fprod = ref Rat.one in
            let size = popcount sub in
            for u = 0 to p - 1 do
              if sub land (1 lsl u) <> 0 then begin
                if Rat.is_zero !smin || Rat.compare speeds.(u) !smin < 0 then
                  smin := speeds.(u);
                smax := Rat.max !smax speeds.(u);
                fprod := Rat.mul !fprod fails.(u)
              end
            done;
            let per_lb' =
              Rat.max per_lb (Rat.div w.(i) (Rat.mul_int !smin size))
            in
            let lat_sum' = Rat.add lat_sum (Rat.div w.(i) !smax) in
            let rel_prod' = Rat.mul rel_prod (Rat.sub Rat.one !fprod) in
            go (i + 1) (avail lxor sub) per_lb' lat_sum' rel_prod'
              (procs_of_mask sub :: acc)
          end)
        (submasks avail)
  in
  let all = (1 lsl p) - 1 in
  (try
     go 0 all Rat.zero Rat.zero Rat.one [];
     flush ()
   with Cut_short -> ());
  ( front_of_archive archive,
    !candidates,
    !pruned,
    !skipped,
    not !stopped )

(* ------------------------------------------------------------------ *)
(* Heuristic tier: replication-sweep starts + scalarized walks        *)
(* ------------------------------------------------------------------ *)

(* Start points for the walks. All are valid assignments (nonempty,
   pairwise-disjoint replica sets): the greedy one-per-stage baseline, one
   replication sweep per stage rank (all idle processors piled onto the
   k-th heaviest stage), and a work-proportional allocation of the whole
   platform. *)
let make_starts pipeline platform =
  let n = Pipeline.n_stages pipeline in
  let p = Platform.p platform in
  let by_work =
    List.sort
      (fun a b -> Rat.compare (Pipeline.work pipeline b) (Pipeline.work pipeline a))
      (List.init n (fun i -> i))
  in
  let by_speed =
    List.sort
      (fun a b -> Rat.compare (Platform.speed platform b) (Platform.speed platform a))
      (List.init p (fun u -> u))
  in
  let greedy0 = Array.make n [||] in
  List.iteri (fun k stage -> greedy0.(stage) <- [| List.nth by_speed k |]) by_work;
  let idle = List.filteri (fun k _ -> k >= n) by_speed in
  let sweeps =
    if idle = [] then []
    else
      List.map
        (fun stage ->
          let a = Array.map Array.copy greedy0 in
          a.(stage) <- Array.append a.(stage) (Array.of_list idle);
          a)
        by_work
  in
  let proportional =
    let total = List.fold_left (fun acc i -> Rat.add acc (Pipeline.work pipeline i)) Rat.zero by_work in
    if Rat.is_zero total then []
    else begin
      let counts = Array.make n 1 in
      let budget = ref (p - n) in
      (* largest-work-first rounding of the p-n spare processors *)
      List.iter
        (fun stage ->
          if !budget > 0 then begin
            let share =
              Rat.to_float
                (Rat.div (Rat.mul_int (Pipeline.work pipeline stage) (p - n)) total)
            in
            let extra = min !budget (int_of_float (Float.round share)) in
            counts.(stage) <- counts.(stage) + extra;
            budget := !budget - extra
          end)
        by_work;
      (match by_work with
       | heaviest :: _ -> counts.(heaviest) <- counts.(heaviest) + !budget
       | [] -> ());
      let a = Array.make n [||] in
      let pool = ref by_speed in
      List.iter
        (fun stage ->
          let take = counts.(stage) in
          let rec split k xs acc =
            if k = 0 then (List.rev acc, xs)
            else
              match xs with
              | [] -> (List.rev acc, [])
              | x :: tl -> split (k - 1) tl (x :: acc)
          in
          let mine, rest = split take !pool [] in
          pool := rest;
          a.(stage) <- Array.of_list mine)
        by_work;
      if Array.exists (fun s -> Array.length s = 0) a then [] else [ a ]
    end
  in
  let all = (greedy0 :: sweeps) @ proportional in
  (* drop structural duplicates, keeping first occurrences *)
  let seen = Hashtbl.create 8 in
  List.filter
    (fun a ->
      let key = Array.map Array.copy a in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    all

let walk_weights widx =
  match widx mod 4 with
  | 0 -> (1., 0., 0.)
  | 1 -> (0., 1., 0.)
  | 2 -> (0., 0., 1.)
  | _ -> (0.4, 0.3, 0.3)

type walk_result = { w_scored : scored list; w_skipped : int; w_timed : bool }

(* One scalarized walk: guide with a float weighted sum of the normalized
   objectives (guidance only — the archive works on exact rationals), feed
   every scored candidate to the caller. Deterministic in [seed]. *)
let walk ~seed ~weights ~iterations ~m_cap ?transition_cap ?deadline model
    pipeline platform start =
  let n = Pipeline.n_stages pipeline in
  let p = Platform.p platform in
  let r = Prng.create seed in
  let session =
    match model with
    | Comm_model.Strict -> Some (Delta.create ?transition_cap model)
    | Comm_model.Overlap -> None
  in
  let out = ref [] and skipped = ref 0 and timed = ref false in
  let sc assignment =
    if !timed then None
    else
      match
        score ?session ?deadline ?transition_cap model pipeline platform ~p
          ~m_cap assignment
      with
      | Some s ->
        out := s :: !out;
        Some s
      | None ->
        incr skipped;
        None
      | exception Rwt_err.Error { Rwt_err.class_ = Rwt_err.Timeout; _ } ->
        timed := true;
        None
  in
  let finish () =
    { w_scored = List.rev !out; w_skipped = !skipped; w_timed = !timed }
  in
  match sc start with
  | None -> finish ()
  | Some s0 ->
    let wp, wl, wr = weights in
    let base v = Float.max (Rat.to_float v) 1e-9 in
    let pbase = base s0.s_objs.period and lbase = base s0.s_objs.latency in
    let scalar o =
      (wp *. (Rat.to_float o.period /. pbase))
      +. (wl *. (Rat.to_float o.latency /. lbase))
      +. (wr *. (1. -. Rat.to_float o.reliability))
    in
    let copy a = Array.map Array.copy a in
    let current = ref (copy start) and cur = ref (scalar s0.s_objs) in
    let best = ref (copy start) and best_sc = ref !cur in
    let expired () =
      !timed || (match deadline with None -> false | Some d -> d ())
    in
    let exception Out_of_time in
    (try
       for step = 1 to iterations do
         if expired () then raise_notrace Out_of_time;
         if step mod 60 = 0 then begin
           current := copy !best;
           cur := !best_sc
         end;
         match Optimize.propose r ~p ~n !current with
         | None -> ()
         | Some candidate ->
           (match sc candidate with
            | None -> ()
            | Some s ->
              let v = scalar s.s_objs in
              if v < !best_sc then begin
                best_sc := v;
                best := copy candidate
              end;
              let accept =
                v <= !cur || (Prng.int r 3 = 0 && v < (!cur *. 1.6) +. 1e-9)
              in
              if accept then begin
                current := candidate;
                cur := v
              end)
       done
     with Out_of_time -> ());
    finish ()

let heuristic_tier ~seed ~sweeps ~iterations ~m_cap ?transition_cap ?deadline
    ?workers model pipeline platform =
  let starts = Array.of_list (make_starts pipeline platform) in
  let ns = Array.length starts in
  let results =
    Rwt_pool.map ?workers ~n:sweeps (fun widx ->
        Rwt_obs.with_span "search.walk" (fun () ->
            walk ~seed:(seed + widx) ~weights:(walk_weights widx) ~iterations
              ~m_cap ?transition_cap ?deadline model pipeline platform
              starts.(widx mod ns)))
  in
  let archive = ref [] in
  let candidates = ref 0 and skipped = ref 0 and timed = ref false in
  (* walks are independent and deterministic; merging in walk order makes
     the outcome identical at any worker count *)
  Array.iter
    (fun wres ->
      List.iter
        (fun s ->
          incr candidates;
          insert archive s)
        wres.w_scored;
      skipped := !skipped + wres.w_skipped;
      if wres.w_timed then timed := true)
    results;
  (front_of_archive archive, !candidates, !skipped, not !timed)

(* ------------------------------------------------------------------ *)
(* Entry points                                                       *)
(* ------------------------------------------------------------------ *)

let default_exact_budget = 20_000
let exact_proc_limit = 30

let invalid_platform ~n ~p =
  Rwt_err.validate ~code:"validate.search"
    ~context:[ ("stages", string_of_int n); ("processors", string_of_int p) ]
    "fewer processors than stages: every stage needs at least one dedicated processor"

let no_progress () =
  Rwt_err.timeout ~code:"timeout.search"
    "deadline expired before any candidate could be scored"

let finish_outcome outcome =
  Rwt_obs.gauge "search.front_size" (float_of_int (List.length outcome.front));
  if outcome.candidates = 0 && not outcome.complete then Error (no_progress ())
  else Ok outcome

let brute_force ?(m_cap = 64) ?transition_cap ?deadline ?workers model pipeline
    platform =
  let n = Pipeline.n_stages pipeline in
  let p = Platform.p platform in
  if p < n then Error (invalid_platform ~n ~p)
  else if p > exact_proc_limit then
    Error
      (Rwt_err.validate ~code:"validate.search"
         ~context:[ ("processors", string_of_int p) ]
         "exhaustive enumeration supports at most 30 processors")
  else begin
    let front, candidates, pruned, skipped, complete =
      Rwt_obs.with_span "search.enumerate" (fun () ->
          enumerate ~prune:false ?deadline ?transition_cap ?workers model
            pipeline platform ~m_cap)
    in
    finish_outcome
      { front;
        tier = Exact;
        candidates;
        pruned;
        skipped;
        space = space_size ~n_stages:n ~p;
        complete
      }
  end

let search ?(seed = 42) ?(tier = `Auto) ?(sweeps = 8) ?(iterations = 400)
    ?(m_cap = 64) ?(exact_budget = default_exact_budget) ?transition_cap
    ?deadline ?workers model pipeline platform =
  let n = Pipeline.n_stages pipeline in
  let p = Platform.p platform in
  if p < n then Error (invalid_platform ~n ~p)
  else begin
    let space = space_size ~n_stages:n ~p in
    let chosen =
      match tier with
      | `Exact ->
        if p > exact_proc_limit then
          Error
            (Rwt_err.validate ~code:"validate.search"
               ~context:[ ("processors", string_of_int p) ]
               "exact tier supports at most 30 processors")
        else Ok Exact
      | `Heuristic -> Ok Heuristic
      | `Auto ->
        Ok
          (if p <= exact_proc_limit && space <= float_of_int exact_budget then
             Exact
           else Heuristic)
    in
    match chosen with
    | Error e -> Error e
    | Ok Exact ->
      let front, candidates, pruned, skipped, complete =
        Rwt_obs.with_span "search.enumerate" (fun () ->
            enumerate ~prune:true ?deadline ?transition_cap ?workers model
              pipeline platform ~m_cap)
      in
      finish_outcome
        { front; tier = Exact; candidates; pruned; skipped; space; complete }
    | Ok Heuristic ->
      let front, candidates, skipped, complete =
        Rwt_obs.with_span "search.walks" (fun () ->
            heuristic_tier ~seed ~sweeps ~iterations ~m_cap ?transition_cap
              ?deadline ?workers model pipeline platform)
      in
      finish_outcome
        { front;
          tier = Heuristic;
          candidates;
          pruned = 0;
          skipped;
          space;
          complete
        }
  end

(* ------------------------------------------------------------------ *)
(* Rendering                                                          *)
(* ------------------------------------------------------------------ *)

let member_to_json mem =
  let rat_pair name v =
    [ (name, Json.String (Rat.to_string v));
      (name ^ "_approx", Json.Float (Rat.to_float v))
    ]
  in
  Json.Obj
    (( "assignment",
       Json.List
         (Array.to_list mem.assignment
         |> List.map (fun s ->
                Json.List (Array.to_list s |> List.map (fun u -> Json.Int u))))
     )
     :: ("m", Json.Int mem.m)
     :: (rat_pair "period" mem.objectives.period
        @ rat_pair "latency" mem.objectives.latency
        @ rat_pair "reliability" mem.objectives.reliability
        @ [ ("dominated", Json.Int mem.dominated) ]))

let pp_tier fmt = function
  | Exact -> Format.pp_print_string fmt "exact"
  | Heuristic -> Format.pp_print_string fmt "heuristic"

let pp_outcome fmt t =
  Format.fprintf fmt
    "@[<v>%a tier: front %d, %d scored, %d pruned, %d skipped, space %g%s@,"
    pp_tier t.tier (List.length t.front) t.candidates t.pruned t.skipped t.space
    (if t.complete then "" else " (incomplete: deadline)");
  List.iteri
    (fun i mem ->
      Format.fprintf fmt "%2d: period %a latency %a reliability %a [%s]@," i
        Rat.pp_approx mem.objectives.period Rat.pp_approx mem.objectives.latency
        Rat.pp_approx mem.objectives.reliability
        (String.concat "; "
           (Array.to_list mem.assignment
           |> List.map (fun s ->
                  String.concat ","
                    (Array.to_list s |> List.map string_of_int)))))
    t.front;
  Format.fprintf fmt "@]"
