(* Sign-magnitude bignums over base-2^30 limbs (little-endian int arrays,
   no leading zero limbs). All limb products fit in a 63-bit native int:
   limb * limb < 2^60. *)

let base_bits = 30
let base = 1 lsl base_bits
let base_mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }
let one = { sign = 1; mag = [| 1 |] }
let minus_one = { sign = -1; mag = [| 1 |] }

let is_zero x = x.sign = 0
let is_one x = x.sign = 1 && Array.length x.mag = 1 && x.mag.(0) = 1
let sign x = x.sign
let num_limbs x = Array.length x.mag

(* Drop leading zero limbs; an all-zero magnitude yields [zero]. *)
let normalize sign mag =
  let n = ref (Array.length mag) in
  while !n > 0 && mag.(!n - 1) = 0 do decr n done;
  if !n = 0 then zero
  else if !n = Array.length mag then { sign; mag }
  else { sign; mag = Array.sub mag 0 !n }

let of_int n =
  if n = 0 then zero
  else begin
    let sign = if n > 0 then 1 else -1 in
    (* min_int has no positive counterpart: peel one limb before [abs]. *)
    let rec limbs acc n =
      if n = 0 then acc else limbs ((n land base_mask) :: acc) (n lsr base_bits)
    in
    let n_abs = if n = min_int then n else abs n in
    let l =
      if n = min_int then
        (* -2^62 = limbs [0; 0; 4] in base 2^30 *)
        limbs [] ((-(min_int asr base_bits)) land max_int) @ [ 0 ]
      else limbs [] n_abs
    in
    let l = List.rev l in
    { sign; mag = Array.of_list l }
  end

let to_int_opt x =
  match x.sign with
  | 0 -> Some 0
  | s ->
    let n = Array.length x.mag in
    if n > 3 then None
    else begin
      (* Accumulate; detect overflow against max_int. *)
      let rec go i acc =
        if i < 0 then Some (s * acc)
        else
          let limb = x.mag.(i) in
          if acc > (max_int - limb) / base then None
          else go (i - 1) ((acc * base) + limb)
      in
      go (n - 1) 0
    end

let to_int_exn x =
  match to_int_opt x with
  | Some n -> n
  | None -> failwith "Bigint.to_int_exn: does not fit"

let cmp_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lr = 1 + Stdlib.max la lb in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let ai = if i < la then a.(i) else 0 in
    let bi = if i < lb then b.(i) else 0 in
    let s = ai + bi + !carry in
    r.(i) <- s land base_mask;
    carry := s lsr base_bits
  done;
  r

(* Requires |a| >= |b|. *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let bi = if i < lb then b.(i) else 0 in
    let d = a.(i) - bi - !borrow in
    if d < 0 then begin r.(i) <- d + base; borrow := 1 end
    else begin r.(i) <- d; borrow := 0 end
  done;
  r

let mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let p = (ai * b.(j)) + r.(i + j) + !carry in
        r.(i + j) <- p land base_mask;
        carry := p lsr base_bits
      done;
      r.(i + lb) <- r.(i + lb) + !carry
    done;
    r
  end

let neg x = if x.sign = 0 then x else { x with sign = -x.sign }
let abs x = if x.sign < 0 then neg x else x

let add x y =
  if x.sign = 0 then y
  else if y.sign = 0 then x
  else if x.sign = y.sign then normalize x.sign (add_mag x.mag y.mag)
  else begin
    match cmp_mag x.mag y.mag with
    | 0 -> zero
    | c when c > 0 -> normalize x.sign (sub_mag x.mag y.mag)
    | _ -> normalize y.sign (sub_mag y.mag x.mag)
  end

let sub x y = add x (neg y)

let mul x y =
  if x.sign = 0 || y.sign = 0 then zero
  else normalize (x.sign * y.sign) (mul_mag x.mag y.mag)

let compare x y =
  if x.sign <> y.sign then Stdlib.compare x.sign y.sign
  else if x.sign >= 0 then cmp_mag x.mag y.mag
  else cmp_mag y.mag x.mag

let equal x y = compare x y = 0
let min x y = if compare x y <= 0 then x else y
let max x y = if compare x y >= 0 then x else y

let hash x =
  Array.fold_left (fun acc limb -> (acc * 1000003) lxor limb) x.sign x.mag

(* Magnitude divided by a small positive int d (d*base must fit in an int,
   i.e. d < 2^32). Returns (quotient magnitude, remainder int). *)
let divmod_mag_int a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (q, !r)

let shl_bits a s =
  (* 0 <= s < 30 *)
  if s = 0 then Array.copy a
  else begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let v = (a.(i) lsl s) lor !carry in
      r.(i) <- v land base_mask;
      carry := v lsr base_bits
    done;
    r.(la) <- !carry;
    r
  end

let shr_bits a s =
  if s = 0 then Array.copy a
  else begin
    let la = Array.length a in
    let r = Array.make la 0 in
    let carry = ref 0 in
    for i = la - 1 downto 0 do
      let v = (!carry lsl base_bits) lor a.(i) in
      r.(i) <- v lsr s;
      carry := v land ((1 lsl s) - 1)
    done;
    r
  end

(* Knuth algorithm D on magnitudes; b has >= 2 limbs. *)
let divmod_mag a b =
  let lb = Array.length b in
  (* Normalization shift so that the divisor's top limb >= base/2. *)
  let top = b.(lb - 1) in
  let s =
    let rec go s t = if t >= base / 2 then s else go (s + 1) (t lsl 1) in
    go 0 top
  in
  let v = shl_bits b s in
  let v = Array.sub v 0 lb in
  (* shifted divisor keeps lb limbs since top*2^s < base *)
  let u0 = shl_bits a s in
  let la = Array.length a in
  let m = la - lb in
  let u = Array.make (la + 1) 0 in
  Array.blit u0 0 u 0 (Stdlib.min (Array.length u0) (la + 1));
  let q = Array.make (m + 1) 0 in
  let vtop = v.(lb - 1) in
  let vsnd = if lb >= 2 then v.(lb - 2) else 0 in
  for j = m downto 0 do
    let num = (u.(j + lb) lsl base_bits) lor u.(j + lb - 1) in
    let qhat = ref (num / vtop) in
    let rhat = ref (num mod vtop) in
    if !qhat >= base then begin
      qhat := base - 1;
      rhat := num - (!qhat * vtop)
    end;
    let continue = ref true in
    while
      !continue && !rhat < base
      && !qhat * vsnd > (!rhat lsl base_bits) lor u.(j + lb - 2)
    do
      decr qhat;
      rhat := !rhat + vtop;
      if !rhat >= base then continue := false
    done;
    (* Multiply and subtract: u[j .. j+lb] -= qhat * v. *)
    let borrow = ref 0 in
    let carry = ref 0 in
    for i = 0 to lb - 1 do
      let p = (!qhat * v.(i)) + !carry in
      carry := p lsr base_bits;
      let d = u.(j + i) - (p land base_mask) - !borrow in
      if d < 0 then begin u.(j + i) <- d + base; borrow := 1 end
      else begin u.(j + i) <- d; borrow := 0 end
    done;
    let d = u.(j + lb) - !carry - !borrow in
    if d < 0 then begin
      (* qhat was one too large: add back. *)
      u.(j + lb) <- d + base;
      decr qhat;
      let carry = ref 0 in
      for i = 0 to lb - 1 do
        let sum = u.(j + i) + v.(i) + !carry in
        u.(j + i) <- sum land base_mask;
        carry := sum lsr base_bits
      done;
      u.(j + lb) <- (u.(j + lb) + !carry) land base_mask
    end
    else u.(j + lb) <- d;
    q.(j) <- !qhat
  done;
  let r = shr_bits (Array.sub u 0 lb) s in
  (q, r)

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  if a.sign = 0 then (zero, zero)
  else if cmp_mag a.mag b.mag < 0 then (zero, a)
  else begin
    let qmag, rmag =
      if Array.length b.mag = 1 then begin
        let q, r = divmod_mag_int a.mag b.mag.(0) in
        (q, [| r |])
      end
      else divmod_mag a.mag b.mag
    in
    let q = normalize (a.sign * b.sign) qmag in
    let r = normalize a.sign rmag in
    (q, r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let rec gcd_pos a b = if is_zero b then a else gcd_pos b (rem a b)
let gcd a b = gcd_pos (abs a) (abs b)

let mul_int x d =
  if d = 0 || x.sign = 0 then zero
  else begin
    let sign = if d > 0 then x.sign else -x.sign in
    let d = Stdlib.abs d in
    if d < base then begin
      let la = Array.length x.mag in
      let r = Array.make (la + 1) 0 in
      let carry = ref 0 in
      for i = 0 to la - 1 do
        let p = (x.mag.(i) * d) + !carry in
        r.(i) <- p land base_mask;
        carry := p lsr base_bits
      done;
      r.(la) <- !carry;
      normalize sign r
    end
    else normalize sign (mul_mag x.mag (of_int d).mag)
  end

let add_int x d = add x (of_int d)

let pow x k =
  if k < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b k =
    if k = 0 then acc
    else begin
      let acc = if k land 1 = 1 then mul acc b else acc in
      go acc (mul b b) (k lsr 1)
    end
  in
  go one x k

let to_float x =
  let f = Array.fold_right (fun limb acc -> (acc *. 1073741824.0) +. float_of_int limb) x.mag 0.0 in
  if x.sign < 0 then -.f else f

let to_string x =
  if x.sign = 0 then "0"
  else begin
    let buf = Buffer.create 16 in
    let rec go mag =
      if Array.length mag = 0 then ()
      else begin
        let q, r = divmod_mag_int mag 1_000_000_000 in
        let q =
          let n = ref (Array.length q) in
          while !n > 0 && q.(!n - 1) = 0 do decr n done;
          Array.sub q 0 !n
        in
        if Array.length q = 0 then Buffer.add_string buf (string_of_int r)
        else begin
          go q;
          Buffer.add_string buf (Printf.sprintf "%09d" r)
        end
      end
    in
    go x.mag;
    (if x.sign < 0 then "-" else "") ^ Buffer.contents buf
  end

let of_string s =
  let len = String.length s in
  if len = 0 then failwith "Bigint.of_string: empty";
  let sign, start =
    match s.[0] with
    | '-' -> (-1, 1)
    | '+' -> (1, 1)
    | _ -> (1, 0)
  in
  if start >= len then failwith "Bigint.of_string: no digits";
  let acc = ref zero in
  let i = ref start in
  while !i < len do
    let chunk_len = Stdlib.min 9 (len - !i) in
    let chunk = String.sub s !i chunk_len in
    String.iter (fun c -> if c < '0' || c > '9' then failwith "Bigint.of_string: bad digit") chunk;
    let v = int_of_string chunk in
    let scale = int_of_float (10.0 ** float_of_int chunk_len) in
    acc := add_int (mul_int !acc scale) v;
    i := !i + chunk_len
  done;
  if sign < 0 then neg !acc else !acc

let pp fmt x = Format.pp_print_string fmt (to_string x)
