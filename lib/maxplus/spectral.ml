open Rwt_util
module M = Maxplus.Make (Rat)
module Tpn = Rwt_petri.Tpn
module D = Rwt_graph.Digraph

let period_of_tpn ?deadline tpn =
  Rwt_obs.with_span "maxplus.spectral" @@ fun () ->
  let n = Tpn.num_transitions tpn in
  Rwt_obs.gauge "maxplus.dim" (float_of_int n);
  let a0 = M.make n n M.Neg_inf in
  let a1 = M.make n n M.Neg_inf in
  Tpn.iter_places
    (fun p ->
      (* dater edge: x_dst(k) >= firing(dst) + x_src(k - tokens) *)
      let weight = M.fin (Tpn.transition tpn p.Tpn.pl_dst).Tpn.firing in
      let m = match p.Tpn.tokens with 0 -> a0 | 1 -> a1 | _ ->
        invalid_arg "Spectral.period_of_tpn: place with more than one token"
      in
      M.set m p.Tpn.pl_dst p.Tpn.pl_src
        (M.oplus (M.get m p.Tpn.pl_dst p.Tpn.pl_src) weight))
    tpn;
  match M.star ?deadline a0 with
  | None -> failwith "Spectral.period_of_tpn: token-free circuit"
  | Some star ->
    let a = M.mul star a1 in
    (* spectral radius = max cycle mean of A as a graph (every edge of A
       consumes exactly one token) *)
    let g = D.create n in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        match M.get a i j with
        | M.Neg_inf -> ()
        | M.Fin w -> ignore (D.add_edge g j i w)
      done
    done;
    Rwt_obs.add "maxplus.star_edges" (D.num_edges g);
    Rwt_petri.Mcr.Exact.karp ?deadline g
