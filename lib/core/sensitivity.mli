(** What-if sensitivity analysis: which resource upgrade actually improves
    the throughput?

    With replication the answer is not "the one with the largest
    cycle-time": the period is set by a critical {e circuit} that may mix
    several resources (the paper's central observation), so upgrading the
    resource with the largest [Cexec] can be useless while a seemingly idle
    link is the real lever. This module answers operationally: re-solve the
    exact period with each resource individually sped up by a given factor
    and rank the improvements. *)

open Rwt_util
open Rwt_workflow

type target =
  | Processor of int  (** speed multiplied by the factor *)
  | Link of int * int  (** bandwidth multiplied by the factor *)

type effect = {
  target : target;
  period : Rat.t;  (** exact period after the upgrade *)
  improvement : Rat.t;  (** [(P − P') / P], 0 when the upgrade is useless *)
}

type t = {
  baseline : Rat.t;
  factor : Rat.t;
  effects : effect list;  (** sorted by decreasing improvement *)
}

val used_links : Instance.t -> (int * int) list
(** Distinct directed links [(s, d)], [s ≠ d], that some consecutive stage
    pair of the mapping can communicate over, in first-occurrence order —
    the link targets {!analyze} considers. Exposed for tests. *)

val analyze : ?factor:Rat.t -> Comm_model.t -> Instance.t -> t
(** [factor] defaults to 2 (a twice-faster processor / link). Only used
    processors and used links are considered. OVERLAP uses Theorem 1 per
    what-if; STRICT evaluates all what-ifs through one {!Delta} session
    (they share the baseline's mapping, so every evaluation after the first
    patches weights in place and warm-starts the solver). *)

val pp_target : Format.formatter -> target -> unit
val pp : Format.formatter -> t -> unit
