(** Automatic construction of the timed Petri net of a replicated mapping
    (§3 of the paper).

    The net has [m = lcm(m_0, …, m_{n-1})] rows of [2n−1] transitions: even
    columns are stage computations, odd columns are file transfers, row [j]
    being the round-robin path of data sets [d ≡ j (mod m)]. Construction is
    [O(m·n)]:

    - both models: row-forward places (computation → transfer → next
      computation) within each row;
    - OVERLAP (§3.2): one circuit per compute resource in each computation
      column, and per out-port (grouped by sender) and in-port (grouped by
      receiver) in each transfer column;
    - STRICT (§3.3): one circuit per processor chaining the send of one of
      its rows to the receive of its next row (its whole
      receive–compute–send block is serialized).

    Each circuit's wrap-around place holds the single token modelling "this
    resource serves one job at a time and is initially free". *)

open Rwt_workflow

type kind =
  | Compute of { stage : int; proc : int }
  | Transfer of { file : int; src : int; dst : int }

type t = private {
  tpn : Rwt_petri.Tpn.t;
  m : int;  (** number of rows (paths) *)
  n_stages : int;
  model : Comm_model.t;
  kinds : kind array;  (** per transition id *)
}

val build :
  ?transition_cap:int -> Comm_model.t -> Instance.t -> (t, Rwt_util.Rwt_err.t) result
(** [Error] (class [Capacity], code ["capacity.tpn"]) if [m] overflows a
    native int (report {!Rwt_workflow.Mapping.num_paths_big} instead of
    building), or if the net's [m·(2n−1)] transitions would exceed
    [transition_cap] (default [Rwt_petri.Expand.transition_cap ()]) — the
    diagnostic reports [m] and the projected transition count, and the
    projection is published as the [tpn.projected_transitions] gauge before
    the check. The projection is computed with overflow-checked
    multiplication, so a product that wraps a native [int] is rejected
    rather than slipping under the cap. [Error] (class [Validate]) if
    [transition_cap <= 0]. *)

val build_exn : ?transition_cap:int -> Comm_model.t -> Instance.t -> t
(** Exception shim for {!build}.
    @raise Rwt_util.Rwt_err.Error on the same conditions. *)

val transition_id : t -> row:int -> col:int -> int
val row_col : t -> int -> int * int
val kind : t -> int -> kind
val pp_kind : Format.formatter -> kind -> unit

val kind_at : Mapping.t -> row:int -> col:int -> kind
(** Kind of the transition at [(row, col)] by pure index math — no net
    needed. [kind net id] agrees with
    [kind_at mapping ~row ~col] for [(row, col) = row_col net id]. *)

val name_at : Mapping.t -> row:int -> col:int -> string
(** Display name of the transition at [(row, col)], identical to the
    [tr_name] the eager builder stores (e.g. ["P2/S1 r3"],
    ["P0->P2 r4"]). The fused route ({!Tpn_graph}) renders names on demand
    through this instead of materializing [m·(2n−1)] strings up front. *)

val check_cap_exn : ?transition_cap:int -> m:int -> ncols:int -> unit -> unit
(** The shared size guard: publish the [tpn.projected_transitions] gauge,
    then reject projections over the cap (overflow-checked product) with
    the [capacity.tpn] error both builders raise. Rejections increment
    [tpn.rejections] — a counter of its own, distinct from the symbolic
    expansion guard's [expand.rejections].
    @raise Rwt_util.Rwt_err.Error as described under {!build}. *)

val resource_of_place : t -> Rwt_petri.Tpn.place -> string option
(** The resource whose round-robin a circuit place encodes (e.g. ["P2"],
    ["P2-out"], ["P3-in"]), [None] for row-forward dependence places. *)

type census = {
  flow : int;  (** row-forward dependence places (Figure 3a) *)
  compute_rr : int;  (** computation round-robin circuits (Figure 3b) *)
  out_rr : int;  (** out-port circuits (Figure 3c); 0 under STRICT *)
  in_rr : int;  (** in-port circuits (Figure 3d); 0 under STRICT *)
  serial_rr : int;  (** whole-processor circuits (§3.3); 0 under OVERLAP *)
}

val place_census : t -> census
(** Break the net's places down by the constraint family that created them
    (the paper's Figure 3 / Figure 5a). *)

val pp_census : Format.formatter -> census -> unit
