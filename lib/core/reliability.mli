(** Reliability of a mapping on a failure-prone platform.

    The third objective of the multi-criteria search — after the paper's
    period and the latency extension — following {e Optimizing Latency and
    Reliability of Pipeline Workflow Applications} (Benoit, Rehn-Sonigo &
    Robert 2008): each processor [P_u] fails (independently) with
    probability [Platform.failure_rate], and the replica set of a stage is
    read as a redundancy group — the stage survives as long as at least one
    of its replicas does, so

    {[ R(stage i) = 1 - prod_{u in procs i} f_u
       R(mapping) = prod_i R(stage i) ]}

    All arithmetic is exact ({!Rwt_util.Rat}); a platform without failure
    rates yields reliability 1 for every mapping, which degenerates the
    three-objective search into the period/latency bi-criteria problem. *)

open Rwt_util
open Rwt_workflow

val stage : Platform.t -> int array -> Rat.t
(** [stage platform procs] is [1 - prod f_u] over the replica set.
    @raise Invalid_argument on an empty replica set. *)

val of_assignment : Platform.t -> int array array -> Rat.t
(** Product of {!stage} over a raw assignment (one replica array per
    stage); no mapping validation is performed beyond non-emptiness. *)

val of_mapping : Platform.t -> Mapping.t -> Rat.t
(** {!of_assignment} on the mapping's replica sets. *)
