(** Deterministic SplitMix64 pseudo-random generator.

    Every experiment in this repository is seeded, so results in
    EXPERIMENTS.md are reproducible bit-for-bit. The generator is splittable:
    {!split} derives an independent stream, which keeps per-instance draws
    independent of how many instances precede them. *)

type t

val create : int -> t
(** [create seed]. *)

val split : t -> t
(** Derive an independent generator; the parent advances. *)

val copy : t -> t

val next_int64 : t -> int64

val int : t -> int -> int
(** [int t bound] uniform in [\[0, bound)]. @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] uniform in [\[0, bound)]. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
