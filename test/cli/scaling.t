Worker-count precedence across the CLI surface: explicit flag beats the
RWT_WORKERS environment override, which beats the automatic choice. See
doc/PERFORMANCE.md (Scaling).

The env override drives the batch engine's automatic policy even on a
single-core host (the batch has 5 unique jobs, so 3 workers fit):

  $ RWT_WORKERS=3 rwt batch -e a --no-timing -o /dev/null
  rwt batch: 5 jobs: 5 ok, 0 errors, 0 timeouts; 0 cache hits (workers 3)

An explicit --jobs wins over the environment:

  $ RWT_WORKERS=3 rwt batch -e a --jobs 2 --no-timing -o /dev/null
  rwt batch: 5 jobs: 5 ok, 0 errors, 0 timeouts; 0 cache hits (workers 2)

A malformed override is ignored, falling back to the automatic choice —
a single-job batch is sequential everywhere, so this pins "auto":

  $ rwt show -e a > a.rwt
  $ printf 'a.rwt\n' | RWT_WORKERS=banana rwt batch - --no-timing -o /dev/null
  rwt batch: 1 job: 1 ok, 0 errors, 0 timeouts; 0 cache hits (workers 1)

The serve daemon resolves its pool the same way: no --workers flag, so
RWT_WORKERS=2 decides, and the health response reports it:

  $ RWT_WORKERS=2 rwt serve --socket s.sock >/dev/null 2>&1 &
  $ SRV=$!
  $ for i in $(seq 1 200); do [ -S s.sock ] && break; sleep 0.05; done
  $ echo '{"req":"health"}' | rwt send --socket s.sock | grep -o '"workers":[0-9]*'
  "workers":2
  $ kill -TERM $SRV && wait $SRV

Cross-machine perf snapshots are incomparable: when two BENCH files
record different hardware parallelism, `rwt obs diff` warns and exits 0
instead of flagging phantom regressions.

  $ cat > old.json <<'EOF'
  > {"cores_available":1,"metrics":{"bench.wall_s":10}}
  > EOF
  $ cat > new.json <<'EOF'
  > {"cores_available":4,"metrics":{"bench.wall_s":99}}
  > EOF
  $ rwt obs diff old.json new.json
  rwt obs diff: incomparable snapshots (cores_available 1 vs 4); skipping

Same hardware still compares (and catches the 890% regression):

  $ sed 's/"cores_available":4/"cores_available":1/' new.json > new1.json
  $ rwt obs diff old.json new1.json
  rwt obs diff: 2 keys compared, 1 regression, 0 improvements (threshold 10%)
    REGRESSION  metrics.bench.wall_s                     10 -> 99  (+890.0%)
  [4]
