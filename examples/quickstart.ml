(* Quickstart: build a small replicated workflow from scratch and compute
   its throughput under both communication models.

   Run with: dune exec examples/quickstart.exe *)

open Rwt_util
open Rwt_workflow

let () =
  (* A 3-stage pipeline: S0 produces 4-byte records, S1 does the heavy work,
     S2 aggregates. Sizes are (FLOP, bytes). *)
  let pipeline =
    Pipeline.of_ints ~work:[| 2; 24; 3 |] ~data:[| 4; 2 |]
    |> fun p -> Pipeline.rename p [| "source"; "transform"; "sink" |]
  in

  (* Five processors: P0 and P4 are slow edge nodes, P1..P3 are a fast
     cluster. All links run at 1 byte per time unit except the fast
     intra-cluster links. *)
  let speeds = Array.map Rat.of_int [| 1; 4; 3; 2; 1 |] in
  let bandwidths =
    Array.init 5 (fun u ->
        Array.init 5 (fun v ->
            if u <> v && u >= 1 && u <= 3 && v >= 1 && v <= 3 then Rat.of_int 4
            else Rat.one))
  in
  let platform = Platform.create ~speeds ~bandwidths in

  (* The heavy stage is replicated on the three cluster nodes. *)
  let mapping =
    Mapping.create_exn ~n_stages:3 ~p:5 [| [| 0 |]; [| 1; 2; 3 |]; [| 4 |] |]
  in
  let inst = Instance.create_exn ~name:"quickstart" ~pipeline ~platform ~mapping in

  Format.printf "%a@." Instance.pp inst;
  Format.printf "round-robin paths:@.%a@." Paths.pp_table (mapping, Paths.num_paths mapping);

  (* Throughput analysis: Theorem 1 for overlap, full TPN for strict. *)
  List.iter
    (fun model ->
      let report = Rwt_core.Analysis.analyze_exn model inst in
      Format.printf "--- %s ---@.%a@.@." (Comm_model.to_string model)
        Rwt_core.Analysis.pp_report report)
    Comm_model.all;

  (* And a look at the steady-state schedule. *)
  let sched = Rwt_sim.Schedule.run Comm_model.Overlap inst ~datasets:12 in
  print_string (Rwt_sim.Gantt.to_ascii ~width:90 ~from_dataset:6 ~until_dataset:8 sched)
