open Rwt_util
open Rwt_workflow
module Mcr = Rwt_petri.Mcr
module Obs = Rwt_obs

module D = Rwt_graph.Digraph

type t = {
  graph : Mcr.Exact.graph;
  m : int;
  n_stages : int;
  model : Comm_model.t;
  mutable inst : Instance.t; (* updated by {!patch_exn}; shape never changes *)
}

let cols n = (2 * n) - 1

let transition_id t ~row ~col = (row * cols t.n_stages) + col
let row_col t id = (id / cols t.n_stages, id mod cols t.n_stages)

let kind t id =
  let row, col = row_col t id in
  Tpn_build.kind_at t.inst.Instance.mapping ~row ~col

let tr_name t id =
  let row, col = row_col t id in
  Tpn_build.name_at t.inst.Instance.mapping ~row ~col

(* The fused construction. The legacy route materializes the net three
   times over — [m·(2n−1)] transition records with eagerly formatted
   names, a place list, and then a re-walk of that list into the ratio
   graph ([Mcr.graph_of_tpn]). Here the same graph is emitted straight
   from index arithmetic into a flat arc table:

   - arcs are appended in exactly the order [Tpn_build.build_exn] adds
     places (row-forward flows, then the model's circuits), so edge ids,
     endpoints, token counts and weights coincide with the legacy route
     edge for edge — pinned by a qcheck property;
   - firing times are computed once per distinct key — [(stage, replica)]
     for computations, [(file, sender replica, receiver replica)] for
     transfers — and shared across all [m] rows instead of being recomputed
     [m·(2n−1)] times ([tpn.fire_keys] counts the distinct values);
   - transition names are never built; {!tr_name} renders them on demand
     from the mapping when a witness, Gantt or DOT export asks. *)
let build_exn ?transition_cap model inst =
  Obs.with_span "tpn.build" @@ fun () ->
  let mapping = inst.Instance.mapping in
  let n = Mapping.n_stages mapping in
  let m = Mapping.num_paths mapping in
  let ncols = cols n in
  Tpn_build.check_cap_exn ?transition_cap ~m ~ncols ();
  let repl = Array.init n (Mapping.replication mapping) in
  let procs = Array.init n (Mapping.procs mapping) in
  let fire_keys = ref 0 in
  (* computations: every row served by replica r of stage s fires for the
     same time — one rational per (s, r), eagerly (all are used) *)
  let cfire =
    Array.init n (fun stage ->
        Array.init repl.(stage) (fun r ->
            incr fire_keys;
            Instance.compute_time inst ~stage ~proc:procs.(stage).(r)))
  in
  (* transfers: the (sender, receiver) pair of row j is
     (j mod m_f, j mod m_{f+1}), so it is periodic in
     j mod lcm(m_f, m_{f+1}) — index the cache by that residue (exactly
     the set of realizable pairs, never the full m_f·m_{f+1} square) and
     fill it lazily *)
  let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
  let tlcm =
    Array.init (max 0 (n - 1)) (fun file ->
        let mf = repl.(file) and mf1 = repl.(file + 1) in
        mf / gcd mf mf1 * mf1)
  in
  let tfire = Array.init (max 0 (n - 1)) (fun file -> Array.make tlcm.(file) None) in
  let transfer_fire file row =
    let slot = row mod tlcm.(file) in
    match tfire.(file).(slot) with
    | Some w -> w
    | None ->
      incr fire_keys;
      let rs = row mod repl.(file) and rd = row mod repl.(file + 1) in
      let w =
        Instance.transfer_time inst ~file ~src:procs.(file).(rs)
          ~dst:procs.(file + 1).(rd)
      in
      tfire.(file).(slot) <- Some w;
      w
  in
  let fire ~row ~col =
    if col mod 2 = 0 then cfire.(col / 2).(row mod repl.(col / 2))
    else transfer_fire ((col - 1) / 2) row
  in
  (* exactly-sized arc table: every circuit of a resource serving k rows
     contributes k arcs, and the circuits of one column family cover each
     row once — so each family adds m arcs per column it spans *)
  let n_arcs =
    (m * (ncols - 1))
    + (match model with
       | Comm_model.Overlap -> (m * n) + (2 * m * (n - 1))
       | Comm_model.Strict -> m * n)
  in
  let asrc = Array.make n_arcs 0 in
  let adst = Array.make n_arcs 0 in
  let atok = Array.make n_arcs 0 in
  let aw = Array.make n_arcs Rat.zero in
  let next = ref 0 in
  let id ~row ~col = (row * ncols) + col in
  let push ~srow ~scol ~dst ~tokens =
    let i = !next in
    asrc.(i) <- id ~row:srow ~col:scol;
    adst.(i) <- dst;
    atok.(i) <- tokens;
    aw.(i) <- fire ~row:srow ~col:scol;
    next := i + 1
  in
  (* 1. row-forward dependences *)
  for row = 0 to m - 1 do
    for col = 0 to ncols - 2 do
      push ~srow:row ~scol:col ~dst:(id ~row ~col:(col + 1)) ~tokens:0
    done
  done;
  (* round-robin circuit of replica [r] (one of [mi]) over its rows
     r, r+mi, r+2mi, …: chain arcs from [scol_of row] to [dcol_of next
     row], wrap-around arc carries the single token; a one-row circuit
     degenerates to a marked self-loop *)
  let circuit ~mi ~r ~scol ~dcol =
    let cnt = m / mi in
    if cnt = 1 then push ~srow:r ~scol ~dst:(id ~row:r ~col:dcol) ~tokens:1
    else begin
      for j = 0 to cnt - 2 do
        push ~srow:(r + (j * mi)) ~scol
          ~dst:(id ~row:(r + ((j + 1) * mi)) ~col:dcol)
          ~tokens:0
      done;
      push ~srow:(r + ((cnt - 1) * mi)) ~scol ~dst:(id ~row:r ~col:dcol) ~tokens:1
    end
  in
  (match model with
   | Comm_model.Overlap ->
     (* 2. computation round-robin circuits *)
     for stage = 0 to n - 1 do
       let col = 2 * stage in
       for r = 0 to repl.(stage) - 1 do
         circuit ~mi:repl.(stage) ~r ~scol:col ~dcol:col
       done
     done;
     (* 3. out-port circuits (transfer columns grouped by sender) *)
     for file = 0 to n - 2 do
       let col = (2 * file) + 1 in
       for r = 0 to repl.(file) - 1 do
         circuit ~mi:repl.(file) ~r ~scol:col ~dcol:col
       done
     done;
     (* 4. in-port circuits (transfer columns grouped by receiver) *)
     for file = 0 to n - 2 do
       let col = (2 * file) + 1 in
       for r = 0 to repl.(file + 1) - 1 do
         circuit ~mi:repl.(file + 1) ~r ~scol:col ~dcol:col
       done
     done
   | Comm_model.Strict ->
     (* one circuit per processor: send of row j_l → receive of row
        j_{l+1}; terminal stages use their computation instead *)
     for stage = 0 to n - 1 do
       let first_col = if stage = 0 then 0 else (2 * stage) - 1 in
       let last_col = if stage = n - 1 then 2 * stage else (2 * stage) + 1 in
       for r = 0 to repl.(stage) - 1 do
         circuit ~mi:repl.(stage) ~r ~scol:last_col ~dcol:first_col
       done
     done);
  assert (!next = n_arcs);
  let graph =
    Mcr.graph_of_arcs ~n:(m * ncols) ~src:asrc ~dst:adst ~weight:aw ~tokens:atok
  in
  Obs.incr "tpn.fused_builds";
  Obs.add "tpn.fire_keys" !fire_keys;
  Obs.gauge "tpn.rows" (float_of_int m);
  Obs.gauge "tpn.transitions" (float_of_int (m * ncols));
  Obs.gauge "tpn.places" (float_of_int n_arcs);
  Obs.gauge_max "tpn.peak_transitions" (float_of_int (m * ncols));
  { graph; m; n_stages = n; model; inst }

let build ?transition_cap model inst =
  match build_exn ?transition_cap model inst with
  | t -> Ok t
  | exception Rwt_util.Rwt_err.Error e -> Error e

(* The arc topology — endpoints, token counts, arc order — depends only on
   (model, n_stages, replication vector): the builder above derives every
   src/dst/tokens from those alone. Which processors serve the stages, their
   speeds and bandwidths, and the pipeline's w/δ columns only enter through
   the firing times, i.e. the edge weights. Two instances with equal stage
   count and replication vector therefore share a graph skeleton exactly. *)
let shape_compatible t inst =
  let mapping = inst.Instance.mapping in
  Mapping.n_stages mapping = t.n_stages
  && Mapping.replication_vector mapping
     = Mapping.replication_vector t.inst.Instance.mapping

(* Re-derive the firing times that can have changed and relabel only their
   arcs in place. Same key-sharing as the builder — one rational per
   (stage, replica) and per transfer residue class — but each key is first
   screened against the previous instance: a computation key is clean when
   its replica's processor, that processor's speed and the stage's work are
   unchanged; a transfer key when its (sender, receiver) pair, the file's
   data volume and the pair's bandwidth are unchanged. A sweep step
   perturbs one parameter, so almost every key is clean and the patch costs
   a few parameter comparisons instead of m·(2n−1) rational divisions. The
   transfer cache fills eagerly over the residues mod lcm(m_f, m_{f+1}) —
   every residue is realized because that lcm divides m. *)
let patch_exn t inst =
  Obs.with_span "tpn.patch" @@ fun () ->
  if not (shape_compatible t inst) then
    invalid_arg "Tpn_graph.patch_exn: instance shape differs from the session's";
  let prev = t.inst in
  let mapping = inst.Instance.mapping in
  let mapping0 = prev.Instance.mapping in
  let pipeline = inst.Instance.pipeline and pipeline0 = prev.Instance.pipeline in
  let platform = inst.Instance.platform and platform0 = prev.Instance.platform in
  let n = t.n_stages in
  let ncols = cols n in
  let repl = Array.init n (Mapping.replication mapping) in
  let procs = Array.init n (Mapping.procs mapping) in
  let procs0 = Array.init n (Mapping.procs mapping0) in
  (* None = key unchanged, Some w = new firing time *)
  let cfire =
    Array.init n (fun stage ->
        let work_same =
          Rat.equal (Pipeline.work pipeline stage) (Pipeline.work pipeline0 stage)
        in
        Array.init repl.(stage) (fun r ->
            let u = procs.(stage).(r) and u0 = procs0.(stage).(r) in
            if
              u = u0 && work_same
              && Rat.equal (Platform.speed platform u) (Platform.speed platform0 u0)
            then None
            else Some (Instance.compute_time inst ~stage ~proc:u)))
  in
  let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
  let tlcm =
    Array.init (max 0 (n - 1)) (fun file ->
        let mf = repl.(file) and mf1 = repl.(file + 1) in
        mf / gcd mf mf1 * mf1)
  in
  let tfire =
    Array.init (max 0 (n - 1)) (fun file ->
        let data_same =
          Rat.equal (Pipeline.data pipeline file) (Pipeline.data pipeline0 file)
        in
        Array.init tlcm.(file) (fun slot ->
            let rs = slot mod repl.(file) and rd = slot mod repl.(file + 1) in
            let src = procs.(file).(rs) and dst = procs.(file + 1).(rd) in
            let src0 = procs0.(file).(rs) and dst0 = procs0.(file + 1).(rd) in
            if
              src = src0 && dst = dst0 && data_same
              && Rat.equal
                   (Platform.bandwidth platform src dst)
                   (Platform.bandwidth platform0 src0 dst0)
            then None
            else Some (Instance.transfer_time inst ~file ~src ~dst)))
  in
  let fire ~row ~col =
    if col mod 2 = 0 then cfire.(col / 2).(row mod repl.(col / 2))
    else
      let file = (col - 1) / 2 in
      tfire.(file).(row mod tlcm.(file))
  in
  let g = t.graph in
  let patched = ref 0 in
  for i = 0 to D.num_edges g - 1 do
    let e = D.edge g i in
    match fire ~row:(e.D.src / ncols) ~col:(e.D.src mod ncols) with
    | None -> ()
    | Some w ->
      incr patched;
      D.set_label g i { e.D.label with Mcr.Exact.weight = w }
  done;
  t.inst <- inst;
  Obs.incr "tpn.patches";
  Obs.add "tpn.patched_arcs" !patched
