(* Resilience tests: the typed error taxonomy, the deterministic fault
   injection harness, solver deadlines, graceful degradation, and the
   crash-safe batch journal.

   The headline property (the chaos invariant): under any injected fault,
   a batch renders each job either exactly as the fault-free run does, or
   as a typed error/timeout line — never a crash and never a silently
   wrong period. *)

open Rwt_util
module Batch = Rwt_batch

let qtest = QCheck_alcotest.to_alcotest

(* every test leaves the process-global fault harness disarmed *)
let with_fault spec f =
  (match Rwt_fault.install spec with
   | Ok () -> ()
   | Error e -> Alcotest.fail ("install: " ^ Rwt_err.to_line e));
  Fun.protect ~finally:Rwt_fault.clear f

(* ------------------------------------------------------------------ *)
(* Taxonomy                                                            *)
(* ------------------------------------------------------------------ *)

let taxonomy_units () =
  let e =
    Rwt_err.make ~code:"parse.demo" ~context:[ ("file", "x.rwt"); ("line", "3") ]
      Rwt_err.Parse "bad\nthing"
  in
  Alcotest.(check string) "one line, newline scrubbed"
    "parse: bad thing [file=x.rwt, line=3]" (Rwt_err.to_line e);
  Alcotest.(check string) "default code is the class"
    "validate" (Rwt_err.validate "nope").Rwt_err.code;
  Alcotest.(check bool) "fault is transient" true
    (Rwt_err.transient (Rwt_err.fault "injected"));
  Alcotest.(check bool) "timeout is not transient" false
    (Rwt_err.transient (Rwt_err.timeout "budget"));
  (* json round-trip preserves everything *)
  (match Rwt_err.of_json (Rwt_err.to_json e) with
   | Some e' -> Alcotest.(check string) "json round-trip"
                  (Rwt_err.to_line e) (Rwt_err.to_line e')
   | None -> Alcotest.fail "of_json rejected to_json output")

let of_exn_units () =
  let cls e = (Rwt_err.of_exn e).Rwt_err.class_ in
  Alcotest.(check bool) "cap guard -> capacity" true
    (cls (Failure "42 transitions, exceeding the cap (5)") = Rwt_err.Capacity);
  Alcotest.(check bool) "invalid_arg -> validate" true
    (cls (Invalid_argument "x") = Rwt_err.Validate);
  Alcotest.(check bool) "sys_error -> parse" true
    (cls (Sys_error "no such file") = Rwt_err.Parse);
  Alcotest.(check bool) "div0 -> numeric" true
    (cls Division_by_zero = Rwt_err.Numeric);
  Alcotest.(check bool) "anything else -> internal" true
    (cls Exit = Rwt_err.Internal);
  (* Error unwraps instead of double-wrapping *)
  let t = Rwt_err.capacity ~code:"capacity.expand" "boom" in
  Alcotest.(check string) "Error unwraps" "capacity.expand"
    (Rwt_err.of_exn (Rwt_err.Error t)).Rwt_err.code;
  match Rwt_err.catch (fun () -> raise (Failure "plain")) with
  | Error e -> Alcotest.(check bool) "catch classifies" true
                 (e.Rwt_err.class_ = Rwt_err.Internal)
  | Ok _ -> Alcotest.fail "catch must catch"

let json_parse_position () =
  match Json.of_string_pos "{\"a\": 1,\n  \"b\": }" with
  | Ok _ -> Alcotest.fail "malformed JSON accepted"
  | Error pe ->
    Alcotest.(check int) "line" 2 pe.Json.line;
    Alcotest.(check bool) "column points past the colon" true (pe.Json.col > 5);
    let e = Rwt_err.json_parse ~file:"x.json" pe in
    Alcotest.(check bool) "context carries line" true
      (List.mem_assoc "line" e.Rwt_err.context);
    Alcotest.(check bool) "context carries col" true
      (List.mem_assoc "col" e.Rwt_err.context)

(* ------------------------------------------------------------------ *)
(* Fault harness                                                       *)
(* ------------------------------------------------------------------ *)

let fault_spec_units () =
  (match Rwt_fault.parse "tpn.build=capacity" with
   | Ok ([ r ], seed) ->
     Alcotest.(check string) "pattern" "tpn.build" r.Rwt_fault.pattern;
     Alcotest.(check bool) "action" true (r.Rwt_fault.action = Rwt_fault.Capacity);
     Alcotest.(check bool) "trigger" true (r.Rwt_fault.trigger = Rwt_fault.Always);
     Alcotest.(check int) "default seed" 0 seed
   | Ok _ -> Alcotest.fail "expected one rule"
   | Error e -> Alcotest.fail (Rwt_err.to_line e));
  (match Rwt_fault.parse "mcr.*=error@p0.5;seed=9" with
   | Ok ([ r ], seed) ->
     Alcotest.(check bool) "prob trigger" true (r.Rwt_fault.trigger = Rwt_fault.Prob 0.5);
     Alcotest.(check int) "seed" 9 seed
   | Ok _ -> Alcotest.fail "expected one rule"
   | Error e -> Alcotest.fail (Rwt_err.to_line e));
  (match Rwt_fault.parse "x=delay:5@#2" with
   | Ok ([ r ], _) ->
     Alcotest.(check bool) "delay in seconds" true
       (r.Rwt_fault.action = Rwt_fault.Delay 0.005);
     Alcotest.(check bool) "nth trigger" true (r.Rwt_fault.trigger = Rwt_fault.Nth 2)
   | Ok _ -> Alcotest.fail "expected one rule"
   | Error e -> Alcotest.fail (Rwt_err.to_line e));
  let rejected s =
    match Rwt_fault.parse s with
    | Error e -> e.Rwt_err.class_ = Rwt_err.Parse
    | Ok _ -> false
  in
  Alcotest.(check bool) "no '=' rejected" true (rejected "bogus");
  Alcotest.(check bool) "unknown action rejected" true (rejected "x=warp");
  Alcotest.(check bool) "bad trigger rejected" true (rejected "x=error@z");
  Alcotest.(check bool) "bad seed rejected" true (rejected "seed=many")

let fault_fire_units () =
  with_fault "p1=error@#2" (fun () ->
      Alcotest.(check bool) "armed" true (Rwt_fault.active ());
      Rwt_fault.point "p1";
      (match Rwt_fault.point "p1" with
       | () -> Alcotest.fail "second hit must fire"
       | exception Rwt_err.Error e ->
         Alcotest.(check bool) "fault class" true (e.Rwt_err.class_ = Rwt_err.Fault);
         Alcotest.(check string) "code" "fault.injected" e.Rwt_err.code;
         Alcotest.(check bool) "transient" true (Rwt_err.transient e));
      Rwt_fault.point "p1" (* only the 2nd hit fires *);
      Alcotest.(check int) "three hits counted" 3 (List.assoc "p1" (Rwt_fault.hits ()));
      Alcotest.(check int) "one fault fired" 1 (Rwt_fault.fired ()));
  Alcotest.(check bool) "disarmed" false (Rwt_fault.active ());
  Rwt_fault.point "p1" (* no-op when disarmed *)

let fault_glob_and_span () =
  with_fault "mcr.*=timeout" (fun () ->
      (* prefix glob matches the span site inside the solver *)
      match
        Rwt_core.Exact.period Rwt_workflow.Comm_model.Overlap
          (Rwt_workflow.Instances.example_a ())
      with
      | Ok _ -> Alcotest.fail "injected timeout must surface"
      | Error e ->
        Alcotest.(check bool) "timeout class" true (e.Rwt_err.class_ = Rwt_err.Timeout);
        Alcotest.(check string) "code" "fault.timeout" e.Rwt_err.code)

(* ------------------------------------------------------------------ *)
(* Deadlines and degradation                                           *)
(* ------------------------------------------------------------------ *)

let deadline_units () =
  let a = Rwt_workflow.Instances.example_a () in
  (match Rwt_core.Exact.period ~deadline:(fun () -> true)
           Rwt_workflow.Comm_model.Overlap a
   with
   | Ok _ -> Alcotest.fail "expired deadline must stop the solver"
   | Error e ->
     Alcotest.(check bool) "timeout class" true (e.Rwt_err.class_ = Rwt_err.Timeout);
     Alcotest.(check string) "checkpoint code" "mcr.deadline" e.Rwt_err.code);
  (* a deadline that never fires changes nothing *)
  match Rwt_core.Exact.period ~deadline:(fun () -> false)
          Rwt_workflow.Comm_model.Overlap a
  with
  | Ok r ->
    Alcotest.(check bool) "same period" true
      (Rat.equal r.Rwt_core.Exact.period (Rat.of_int 189))
  | Error e -> Alcotest.fail (Rwt_err.to_line e)

let degradation_units () =
  let a = Rwt_workflow.Instances.example_a () in
  let poly = Rwt_core.Poly_overlap.period a in
  (* overlap + tpn + tiny cap: falls back to Theorem 1, says so *)
  (match Rwt_core.Analysis.analyze ~method_:Rwt_core.Analysis.Tpn ~transition_cap:3
           Rwt_workflow.Comm_model.Overlap a
   with
   | Ok r ->
     Alcotest.(check bool) "degraded is flagged" true
       (r.Rwt_core.Analysis.degraded <> None);
     Alcotest.(check bool) "period still exact" true
       (Rat.equal r.Rwt_core.Analysis.period poly)
   | Error e -> Alcotest.fail ("must degrade, not fail: " ^ Rwt_err.to_line e));
  (* strict has no polynomial fallback: the capacity error propagates *)
  (match Rwt_core.Analysis.analyze ~method_:Rwt_core.Analysis.Tpn ~transition_cap:3
           Rwt_workflow.Comm_model.Strict a
   with
   | Ok _ -> Alcotest.fail "strict cannot degrade"
   | Error e ->
     Alcotest.(check bool) "capacity class" true (e.Rwt_err.class_ = Rwt_err.Capacity));
  (* an untroubled run is not marked degraded *)
  match Rwt_core.Analysis.analyze ~method_:Rwt_core.Analysis.Tpn
          Rwt_workflow.Comm_model.Overlap a
  with
  | Ok r -> Alcotest.(check bool) "not degraded" true (r.Rwt_core.Analysis.degraded = None)
  | Error e -> Alcotest.fail (Rwt_err.to_line e)

(* ------------------------------------------------------------------ *)
(* Batch journal: record + resume                                      *)
(* ------------------------------------------------------------------ *)

let inline_jobs () =
  let a = Rwt_workflow.Instances.example_a () in
  let nr = Rwt_workflow.Instances.no_replication () in
  [ Batch.job ~index:0 (Batch.Inline a);
    Batch.job ~index:1 ~model:Rwt_workflow.Comm_model.Strict (Batch.Inline a);
    Batch.job ~index:2 (Batch.Inline a) (* cache hit of job 0 *);
    Batch.job ~index:3 (Batch.Inline nr) ]

let render outcomes =
  Array.to_list outcomes
  |> List.map (fun o -> Json.to_string (Batch.outcome_to_json ~timing:false o))

let with_temp f =
  let path = Filename.temp_file "rwt_journal" ".ndjson" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () ->
      f path)

let journal_resume_units () =
  with_temp (fun path ->
      let jobs = inline_jobs () in
      let fresh, s1 = Batch.run ~jobs:1 ~journal:path jobs in
      Alcotest.(check int) "nothing resumed on a fresh run" 0 s1.Batch.resumed;
      (* resume over a complete journal: everything replays, nothing runs *)
      let resumed, s2 = Batch.run ~jobs:1 ~journal:path ~resume:true jobs in
      Alcotest.(check int) "every representative resumed" 3 s2.Batch.resumed;
      Alcotest.(check int) "cache hits unchanged" s1.Batch.cache_hits s2.Batch.cache_hits;
      Alcotest.(check (list string)) "rendering byte-identical"
        (render fresh) (render resumed);
      (* a torn trailing line (crash mid-write) is dropped, not fatal *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "{\"job\":9,\"stat";
      close_out oc;
      let resumed', _ = Batch.run ~jobs:1 ~journal:path ~resume:true jobs in
      Alcotest.(check (list string)) "torn tail ignored"
        (render fresh) (render resumed'))

let journal_key_mismatch () =
  with_temp (fun path ->
      let jobs = inline_jobs () in
      ignore (Batch.run ~jobs:1 ~journal:path jobs);
      (* different options -> different binding key -> typed refusal *)
      match Rwt_err.catch (fun () ->
          Batch.run ~jobs:1 ~timeout:9999.0 ~journal:path ~resume:true jobs)
      with
      | Ok _ -> Alcotest.fail "mismatched journal must be refused"
      | Error e ->
        Alcotest.(check bool) "validate class" true
          (e.Rwt_err.class_ = Rwt_err.Validate);
        Alcotest.(check string) "code" "validate.journal" e.Rwt_err.code)

let retry_units () =
  (* the first analysis hit fails with a transient fault; one retry heals it *)
  with_fault "analysis.analyze=error@#1" (fun () ->
      let jobs = inline_jobs () in
      let outcomes, summary = Batch.run ~jobs:1 ~retries:2 ~backoff_ms:1.0 jobs in
      Alcotest.(check int) "all ok after retry" summary.Batch.total summary.Batch.ok;
      Alcotest.(check int) "one job needed a retry" 1 summary.Batch.retried;
      Array.iter
        (fun o ->
          match o.Batch.status with
          | Batch.Done -> ()
          | _ -> Alcotest.fail "retry must heal an injected transient fault")
        outcomes);
  (* without retries the same fault is a typed error line, not a crash;
     job 2 is a cache-hit alias of job 0, so it replays the failure too *)
  with_fault "analysis.analyze=error@#1" (fun () ->
      let outcomes, summary = Batch.run ~jobs:1 (inline_jobs ()) in
      Alcotest.(check int) "failure and its cache-hit replay" 2 summary.Batch.errors;
      match outcomes.(0).Batch.status with
      | Batch.Failed e ->
        Alcotest.(check bool) "typed as fault" true (e.Rwt_err.class_ = Rwt_err.Fault)
      | _ -> Alcotest.fail "first job must carry the injected fault")

(* ------------------------------------------------------------------ *)
(* The chaos invariant (qcheck)                                        *)
(* ------------------------------------------------------------------ *)

(* Under a random non-aborting fault spec, every rendered job line is
   either byte-identical to the fault-free run or a typed error/timeout
   record. *)
let chaos_invariant =
  let points =
    [ "batch.job"; "analysis.analyze"; "tpn.build"; "mcr.solve"; "mcr.*";
      "poly.analyze"; "expand.*" ]
  in
  let actions = [ "error"; "capacity"; "timeout" ] in
  let gen =
    QCheck.Gen.(
      triple (oneofl points) (oneofl actions)
        (oneof [ return ""; map (Printf.sprintf "@#%d") (int_range 1 4);
                 map (Printf.sprintf "@p0.%d") (int_range 1 9) ]))
  in
  let print (p, a, t) = p ^ "=" ^ a ^ t in
  QCheck.Test.make ~count:60
    ~name:"chaos: faulty batch = fault-free batch or typed error lines"
    (QCheck.make gen ~print)
    (fun (point, action, trigger) ->
      let jobs = inline_jobs () in
      let reference, _ = Batch.run ~jobs:1 jobs in
      let spec = Printf.sprintf "%s=%s%s;seed=7" point action trigger in
      (match Rwt_fault.install spec with
       | Ok () -> ()
       | Error e -> QCheck.Test.fail_report (Rwt_err.to_line e));
      let outcomes, _ =
        Fun.protect ~finally:Rwt_fault.clear (fun () -> Batch.run ~jobs:1 jobs)
      in
      List.for_all2
        (fun ref_line (o : Batch.outcome) ->
          let line = Json.to_string (Batch.outcome_to_json ~timing:false o) in
          match o.Batch.status with
          | Batch.Done ->
            (* no silent corruption: success must mean the same result *)
            line = ref_line
          | Batch.Failed e ->
            e.Rwt_err.class_ <> Rwt_err.Internal
            && (match Json.of_string line with
                | Ok (Json.Obj fields) -> List.mem_assoc "error_class" fields
                | _ -> false)
          | Batch.Timed_out -> (
            match Json.of_string line with
            | Ok (Json.Obj fields) ->
              List.assoc_opt "status" fields = Some (Json.String "timeout")
            | _ -> false))
        (render reference) (Array.to_list outcomes))

(* ------------------------------------------------------------------ *)
(* Total parsers & taxonomy round-trip (qcheck)                        *)
(* ------------------------------------------------------------------ *)

(* [Json.of_string] is total: any byte string — including NULs, broken
   UTF-8 and unbalanced structure — yields [Ok] or a positioned [Error],
   never an exception. The serve daemon leans on this: a hostile request
   line must become a typed response, not a crash. *)
let json_of_string_total =
  QCheck.Test.make ~count:1000 ~name:"Json.of_string is total on bytes"
    QCheck.(string_gen Gen.char)
    (fun s ->
      match Json.of_string s with
      | Ok v -> String.length (Json.to_string v) >= 0
      | Error _ -> true)

(* [Rwt_err.to_json]/[of_json] round-trip every class with arbitrary
   code, message and context — the wire contract between batch output,
   the serve protocol and any client that re-reads error lines. *)
let err_json_roundtrip =
  let classes =
    [ Rwt_err.Parse; Rwt_err.Validate; Rwt_err.Capacity; Rwt_err.Timeout;
      Rwt_err.Numeric; Rwt_err.Fault; Rwt_err.Internal ]
  in
  let gen =
    QCheck.Gen.(
      let str = string_size ~gen:char (int_range 0 12) in
      quad (oneofl classes) str str
        (list_size (int_range 0 3) (pair str str)))
  in
  let print (c, code, msg, ctx) =
    Printf.sprintf "(%s, %S, %S, [%s])" (Rwt_err.class_name c) code msg
      (String.concat "; "
         (List.map (fun (k, v) -> Printf.sprintf "%S,%S" k v) ctx))
  in
  QCheck.Test.make ~count:300
    ~name:"Rwt_err.to_json/of_json round-trips all 7 classes"
    (QCheck.make gen ~print)
    (fun (class_, code, msg, ctx) ->
      (* distinct context keys: duplicates cannot survive a JSON object *)
      let ctx = List.mapi (fun i (k, v) -> (string_of_int i ^ k, v)) ctx in
      let e =
        if code = "" then Rwt_err.make ~context:ctx class_ msg
        else Rwt_err.make ~code ~context:ctx class_ msg
      in
      match Rwt_err.of_json (Rwt_err.to_json e) with
      | None -> false
      | Some e' ->
        e'.Rwt_err.class_ = e.Rwt_err.class_
        && e'.Rwt_err.code = e.Rwt_err.code
        && Rwt_err.to_json e' = Rwt_err.to_json e)

let () =
  Alcotest.run "rwt_resilient"
    [ ( "taxonomy",
        [ Alcotest.test_case "construction & rendering" `Quick taxonomy_units;
          Alcotest.test_case "of_exn classification" `Quick of_exn_units;
          Alcotest.test_case "json position" `Quick json_parse_position ] );
      ( "fault",
        [ Alcotest.test_case "spec grammar" `Quick fault_spec_units;
          Alcotest.test_case "triggers & counters" `Quick fault_fire_units;
          Alcotest.test_case "glob hits span sites" `Quick fault_glob_and_span ] );
      ( "degradation",
        [ Alcotest.test_case "solver deadline" `Quick deadline_units;
          Alcotest.test_case "tpn falls back to poly" `Quick degradation_units ] );
      ( "journal",
        [ Alcotest.test_case "record & resume" `Quick journal_resume_units;
          Alcotest.test_case "key mismatch" `Quick journal_key_mismatch;
          Alcotest.test_case "transient retry" `Quick retry_units ] );
      ("chaos", [ qtest chaos_invariant ]);
      ("total", [ qtest json_of_string_total; qtest err_json_roundtrip ]) ]
