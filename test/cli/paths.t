Table 1: the round-robin paths of Example A.

  $ rwt paths -e a
  m = lcm(1, 2, 3, 1) = 6 distinct paths
  Input data Path in the system
  0          P0 -> P1 -> P3 -> P6
  1          P0 -> P2 -> P4 -> P6
  2          P0 -> P1 -> P5 -> P6
  3          P0 -> P2 -> P3 -> P6
  4          P0 -> P1 -> P4 -> P6
  5          P0 -> P2 -> P5 -> P6
  6          P0 -> P1 -> P3 -> P6
  7          P0 -> P2 -> P4 -> P6
  
