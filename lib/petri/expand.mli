(** Reduction of timed event graphs to 1-bounded form.

    A place holding [k >= 2] tokens is equivalent (for dater semantics and
    cycle ratios) to a chain of [k] singly-marked places threaded through
    [k-1] fresh zero-time transitions. The (max,+) matrix formulation
    ({!Rwt_maxplus.Spectral}) and any analysis restricted to markings in
    {0, 1} become fully general after this expansion. *)

val one_bounded : Tpn.t -> Tpn.t
(** Structurally equal to the input if it is already 1-bounded (fresh copy
    otherwise). Firing times, liveness and every circuit's ratio are
    preserved; added transitions are named ["buf<k>@<place>"] with firing
    time 0. *)

val is_one_bounded : Tpn.t -> bool
