Observability smoke test on the paper's Example A. The per-phase timing
table is machine-dependent, so only the deterministic lines are kept.

  $ rwt profile -e a --metrics metrics.json --trace trace.json | grep -E '^(profiling|poly period|tpn period|simulated|[0-9]+ metrics)'
  profiling example-A (model overlap, m = 6)
  poly period:     189
  tpn period:      189 (critical cycle: 6 transitions)
  simulated:       64 data sets (last completion 12599)
  30 metrics recorded (counters 18, gauges 6, histograms 6)

Both exports are valid JSON.

  $ rwt json-check metrics.json
  ok
  $ rwt json-check trace.json
  ok

The metrics dump carries the advertised solver and net-size keys.

  $ grep -oE '"(mcr\.iterations|mcr\.solves|tpn\.rows|tpn\.transitions|poly\.components|sim\.events)"' metrics.json | sort
  "mcr.iterations"
  "mcr.solves"
  "poly.components"
  "sim.events"
  "tpn.rows"
  "tpn.transitions"
  $ grep -c '"traceEvents"' trace.json
  1

--metrics - streams the dump to stdout after the command's own output;
it still parses.

  $ rwt period -e a -m overlap --metrics - | sed -n '/^{/,$p' | rwt json-check -
  ok

Solver convergence telemetry: profile records structured events (Howard
rounds, screen outcomes, per-SCC solutions) and summarizes the ring; the
--events export is one valid JSON object per line carrying ts/dom/ev.

  $ rwt profile -e a --events events.ndjson | grep -oE '^[0-9]+ events recorded \(ring [0-9]+/[0-9]+\)'
  50 events recorded (ring 50/8192)
  $ wc -l < events.ndjson
  50
  $ grep -oE '"ev":"(howard.round|screen.certified|mcr.scc_solved|exact.period)"' events.ndjson | sort | uniq -c | sed 's/^ *//'
  1 "ev":"exact.period"
  23 "ev":"howard.round"
  13 "ev":"mcr.scc_solved"
  13 "ev":"screen.certified"
  $ head -1 events.ndjson | rwt json-check -
  ok
  $ head -1 events.ndjson | grep -cE '^\{"ts":[0-9.eE+-]+,"dom":[0-9]+,"ev":'
  1

The profile table re-sorts and truncates on request, noting hidden rows.

  $ rwt profile -e a --sort calls --top 3 | grep -E '^(phase|\(showing)'
  phase                           calls     total(s)      mean(s)       p90(s)       max(s)
  (showing top 3 of 6 spans)

The Prometheus renderer exposes the same dump in text exposition format.

  $ rwt profile -e a --metrics prom_in.json > /dev/null
  $ rwt obs prom prom_in.json | grep -E '^(# TYPE rwt_mcr_solves_total|rwt_mcr_solves_total|# TYPE rwt_tpn_rows|rwt_tpn_rows) '
  # TYPE rwt_mcr_solves_total counter
  rwt_mcr_solves_total 4
  # TYPE rwt_tpn_rows gauge
  rwt_tpn_rows 6
  $ rwt obs prom prom_in.json | grep -c '"0.9"'
  6
