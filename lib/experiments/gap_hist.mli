(** Distribution of the replication gap [(P − Mct)/Mct] over random
    instances — the quantitative companion to Table 2's counts. The paper
    reports only "diff less than x%" per row; this experiment samples the
    full distribution, including how much of the mass is exactly zero
    (critical resource) and how the positive tail is shaped. *)

open Rwt_util
open Rwt_workflow

type histogram = {
  model : Comm_model.t;
  total : int;
  zeros : int;  (** instances with a critical resource (gap exactly 0) *)
  positives : Rat.t list;  (** sorted positive gaps *)
  buckets : (float * float * int) array;  (** [lo%, hi%) → count *)
  max_gap : Rat.t;
}

val run :
  ?seed:int -> ?samples:int -> ?bucket_percent:float -> ?m_cap:int ->
  Comm_model.t -> Generator.config -> histogram
(** Defaults: seed 2009, 300 samples, 1 % buckets, [m_cap] 3000 (strict
    instances above the cap are skipped and not counted in [total]). *)

val pp : Format.formatter -> histogram -> unit
(** Counts plus an ASCII bar chart of the positive-gap buckets. *)
