(** Numeric kernel signature shared by the exact rational field ({!Rat}) and
    the float field ({!Float_num}). The throughput solvers are functorized
    over this signature so that every algorithm has both an exact reference
    instantiation and a fast floating-point one. *)

module type S = sig
  type t

  val zero : t
  val one : t
  val of_int : int -> t

  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val neg : t -> t

  val compare : t -> t -> int
  val equal : t -> t -> bool

  val min : t -> t -> t
  val max : t -> t -> t

  val to_float : t -> float
  val pp : Format.formatter -> t -> unit
end

(** Floats as a {!S} instance (fast, inexact). *)
module Float_num : S with type t = float = struct
  type t = float

  let zero = 0.0
  let one = 1.0
  let of_int = float_of_int
  let add = ( +. )
  let sub = ( -. )
  let mul = ( *. )
  let div = ( /. )
  let neg x = -.x
  let compare = Float.compare
  let equal = Float.equal
  let min = Float.min
  let max = Float.max
  let to_float x = x
  let pp fmt x = Format.fprintf fmt "%g" x
end
