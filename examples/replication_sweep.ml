(* Replication sweep: how does throughput scale as one stage gains
   replicas?

   A 3-stage pipeline with a dominant middle stage runs on a platform with
   one source node, eight identical workers, and one sink node. We sweep the
   number of workers assigned to the middle stage from 1 to 8 and print the
   throughput series for both communication models — the "figure" every
   system paper about replication wants: near-linear scaling while the
   stage is compute-bound, then a plateau once the source's outgoing port
   (which must feed every replica) becomes the critical resource, exactly
   the regime where the paper's analysis is needed.

   Run with: dune exec examples/replication_sweep.exe *)

open Rwt_util
open Rwt_workflow

let r = Rat.of_int

let instance ~replicas =
  (* worker compute time 40; source sends a file of transfer time 9 to any
     worker; workers send time-3 files to the sink *)
  Instance.of_times ~name:(Printf.sprintf "sweep-%d" replicas) ~p:10
    ~stages:
      [ [ (0, r 2) ];
        List.init replicas (fun k -> (1 + k, r 40));
        [ (9, r 4) ] ]
    ~links:
      (List.concat
         [ List.init replicas (fun k -> ((0, 1 + k), r 9));
           List.init replicas (fun k -> ((1 + k, 9), r 3)) ])
    ()

let () =
  Format.printf "replication sweep: middle stage on k identical workers@.@.";
  Format.printf "%-3s %-14s %-14s %-14s %-22s %s@." "k" "P (overlap)"
    "ρ (overlap)" "P (strict)" "critical (overlap)" "latency (overlap)";
  List.iter
    (fun replicas ->
      let inst = instance ~replicas in
      let overlap = Rwt_core.Analysis.analyze_exn Comm_model.Overlap inst in
      let strict = Rwt_core.Analysis.analyze_exn Comm_model.Strict inst in
      let latency = Rwt_core.Latency.analyze Comm_model.Overlap inst in
      Format.printf "%-3d %-14s %-14.4f %-14s %-22s %s@." replicas
        (Format.asprintf "%a" Rat.pp_approx overlap.Rwt_core.Analysis.period)
        (Rat.to_float overlap.Rwt_core.Analysis.throughput)
        (Format.asprintf "%a" Rat.pp_approx strict.Rwt_core.Analysis.period)
        (Format.asprintf "%s-%s"
           (Platform.proc_name overlap.Rwt_core.Analysis.bottleneck.Cycle_time.proc)
           overlap.Rwt_core.Analysis.bottleneck.Cycle_time.bottleneck)
        (Format.asprintf "%a" Rat.pp_approx latency.Rwt_core.Latency.worst))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  Format.printf
    "@.reading: throughput scales with k while the workers are the bottleneck;@.";
  Format.printf
    "once k*9 > 40 the source out-port saturates and extra replicas only add latency.@."
