(* Tests for Rwt_experiments.Corpus: the headline scaling property — runner
   output (periods and NDJSON ordering) is bit-identical across worker
   counts and chunk sizes, for both solver kernels — plus the committed
   tiny-tier snapshot and the corpus builder's determinism. *)

module Corpus = Rwt_experiments.Corpus

let qtest = QCheck_alcotest.to_alcotest

(* One Tiny build shared by every test: building is cheap, solving is the
   expensive part, so the baselines are computed lazily exactly once. *)
let entries = lazy (Corpus.build Corpus.Tiny)

let baseline kernel =
  Corpus.to_ndjson (Corpus.run ~workers:1 ~kernel (Lazy.force entries))

let screened_baseline = lazy (baseline Corpus.Screened)
let exact_baseline = lazy (baseline Corpus.Exact_howard)

(* ------------------------------------------------------------------ *)
(* Builder determinism and shape                                       *)
(* ------------------------------------------------------------------ *)

let build_units () =
  let es = Lazy.force entries in
  let expected =
    List.length Corpus.all_families * Corpus.per_family Corpus.Tiny
  in
  Alcotest.(check int) "tiny corpus size" expected (Array.length es);
  (* same seed -> same ids and instances; different seed -> same ids but
     (almost surely) different instances *)
  let es' = Corpus.build Corpus.Tiny in
  Array.iteri
    (fun i e ->
      Alcotest.(check string) "stable id" e.Corpus.id es'.(i).Corpus.id)
    es;
  let ids = Array.map (fun e -> e.Corpus.id) es in
  let dedup = List.sort_uniq compare (Array.to_list ids) in
  Alcotest.(check int) "ids unique" (Array.length ids) (List.length dedup)

(* ------------------------------------------------------------------ *)
(* Bit-identical output across workers / chunk sizes / kernels         *)
(* ------------------------------------------------------------------ *)

let same_bytes ~kernel ~workers ~chunk =
  let base =
    Lazy.force
      (match kernel with
      | Corpus.Screened -> screened_baseline
      | Corpus.Exact_howard -> exact_baseline)
  in
  let out =
    match chunk with
    | 0 -> Corpus.run ~workers ~kernel (Lazy.force entries)
    | c -> Corpus.run ~workers ~chunk:c ~kernel (Lazy.force entries)
  in
  String.equal base (Corpus.to_ndjson out)

let screened_determinism =
  QCheck.Test.make ~count:8
    ~name:"screened corpus NDJSON bit-identical across workers and chunks"
    QCheck.(
      pair (oneofl [ 1; 2; 4 ]) (oneofl [ 0; 1; 3; 16 ]))
    (fun (workers, chunk) ->
      same_bytes ~kernel:Corpus.Screened ~workers ~chunk)

(* the exact kernel is ~50x slower, so pin the worker/chunk grid small *)
let exact_determinism () =
  List.iter
    (fun (workers, chunk) ->
      Alcotest.(check bool)
        (Printf.sprintf "exact kernel identical at workers=%d chunk=%d"
           workers chunk)
        true
        (same_bytes ~kernel:Corpus.Exact_howard ~workers ~chunk))
    [ (2, 0); (4, 1) ]

(* screened and exact must agree on every period, not just with themselves *)
let kernels_agree () =
  Alcotest.(check string) "screened = exact"
    (Lazy.force screened_baseline)
    (Lazy.force exact_baseline)

(* ------------------------------------------------------------------ *)
(* Committed snapshot                                                  *)
(* ------------------------------------------------------------------ *)

let snapshot_path = "../bench/snapshots/corpus_tiny.ndjson"

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let snapshot_units () =
  let rows = Corpus.run ~workers:2 ~kernel:Corpus.Screened (Lazy.force entries) in
  (match Corpus.check_snapshot ~path:snapshot_path rows with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("tiny snapshot drifted: " ^ e));
  (* a perturbed row must be caught, and the error must say where *)
  let bad =
    Array.mapi
      (fun i r ->
        if i = 1 then { r with Corpus.rperiod = Rwt_util.Rat.of_int 424242 }
        else r)
      rows
  in
  match Corpus.check_snapshot ~path:snapshot_path bad with
  | Ok () -> Alcotest.fail "perturbed corpus passed the snapshot check"
  | Error e ->
      Alcotest.(check bool) "error names line 2" true
        (contains ~sub:"line 2" e)

let () =
  Alcotest.run "rwt_corpus"
    [ ( "build", [ Alcotest.test_case "determinism" `Quick build_units ] );
      ( "determinism",
        [ qtest screened_determinism;
          Alcotest.test_case "exact kernel" `Slow exact_determinism;
          Alcotest.test_case "kernels agree" `Quick kernels_agree ] );
      ( "snapshot", [ Alcotest.test_case "units" `Quick snapshot_units ] ) ]
