open Rwt_util

let is_one_bounded tpn =
  List.for_all (fun p -> p.Tpn.tokens <= 1) (Tpn.places tpn)

let one_bounded tpn =
  let base = Tpn.num_transitions tpn in
  (* count the fresh buffer transitions needed *)
  let extra =
    List.fold_left
      (fun acc p -> acc + max 0 (p.Tpn.tokens - 1))
      0 (Tpn.places tpn)
  in
  let transitions =
    Array.init (base + extra) (fun i ->
        if i < base then Tpn.transition tpn i
        else { Tpn.tr_name = Printf.sprintf "buf%d" (i - base); firing = Rat.zero })
  in
  let out = Tpn.create transitions in
  let next_fresh = ref base in
  List.iter
    (fun p ->
      if p.Tpn.tokens <= 1 then
        Tpn.add_place out ~name:p.Tpn.pl_name ~src:p.Tpn.pl_src ~dst:p.Tpn.pl_dst
          ~tokens:p.Tpn.tokens
      else begin
        (* src → buf → buf → … → dst, one token per hop *)
        let hops = p.Tpn.tokens in
        let prev = ref p.Tpn.pl_src in
        for k = 1 to hops - 1 do
          let fresh = !next_fresh in
          incr next_fresh;
          Tpn.add_place out
            ~name:(Printf.sprintf "%s#%d" p.Tpn.pl_name k)
            ~src:!prev ~dst:fresh ~tokens:1;
          prev := fresh
        done;
        Tpn.add_place out
          ~name:(Printf.sprintf "%s#%d" p.Tpn.pl_name hops)
          ~src:!prev ~dst:p.Tpn.pl_dst ~tokens:1
      end)
    (Tpn.places tpn);
  out
