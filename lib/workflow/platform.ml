open Rwt_util

(* Star platforms keep only the per-processor link bandwidths: the dense
   p x p logical matrix is implied by b_{u,v} = min(l_u, l_v), and
   materializing it is Theta(p^2) memory for nothing on large platforms
   (replicated mappings need one processor per stage instance, so p grows
   with the replication counts). *)
type bw_repr = Dense of Rat.t array array | Star of Rat.t array

(* [failures] is [None] on a reliable platform: every rate reads as 0 and
   the file format round-trips without a failures line. *)
type t = { speeds : Rat.t array; bw : bw_repr; failures : Rat.t array option }

let create ~speeds ~bandwidths =
  let p = Array.length speeds in
  if p = 0 then invalid_arg "Platform.create: no processors";
  Array.iter
    (fun s -> if Rat.sign s <= 0 then invalid_arg "Platform.create: non-positive speed")
    speeds;
  if Array.length bandwidths <> p then invalid_arg "Platform.create: bandwidth matrix shape";
  Array.iteri
    (fun u row ->
      if Array.length row <> p then invalid_arg "Platform.create: bandwidth matrix shape";
      Array.iteri
        (fun v b ->
          if u <> v && Rat.sign b <= 0 then
            invalid_arg "Platform.create: non-positive bandwidth")
        row)
    bandwidths;
  { speeds; bw = Dense bandwidths; failures = None }

let uniform ~p ~speed ~bandwidth =
  create ~speeds:(Array.make p speed) ~bandwidths:(Array.make_matrix p p bandwidth)

let star ~speeds ~link_bw =
  let p = Array.length speeds in
  if p = 0 then invalid_arg "Platform.star: no processors";
  if Array.length link_bw <> p then invalid_arg "Platform.star: link_bw length";
  Array.iter
    (fun s -> if Rat.sign s <= 0 then invalid_arg "Platform.star: non-positive speed")
    speeds;
  Array.iter
    (fun b -> if Rat.sign b <= 0 then invalid_arg "Platform.star: non-positive bandwidth")
    link_bw;
  { speeds; bw = Star (Array.copy link_bw); failures = None }

let two_clusters ~speeds ~split ~intra_bw ~inter_bw =
  let p = Array.length speeds in
  if split <= 0 || split >= p then invalid_arg "Platform.two_clusters: bad split";
  let same_side u v = (u < split) = (v < split) in
  let bw =
    Array.init p (fun u ->
        Array.init p (fun v -> if same_side u v then intra_bw else inter_bw))
  in
  create ~speeds ~bandwidths:bw

let random r ~p ~speed_range:(slo, shi) ~bandwidth_range:(blo, bhi) =
  let speeds = Array.init p (fun _ -> Rat.of_int (Prng.int_in r slo shi)) in
  let bw =
    Array.init p (fun _ -> Array.init p (fun _ -> Rat.of_int (Prng.int_in r blo bhi)))
  in
  create ~speeds ~bandwidths:bw

let p t = Array.length t.speeds

let with_failures t rates =
  if Array.length rates <> p t then
    invalid_arg "Platform.with_failures: one rate per processor expected";
  Array.iter
    (fun f ->
      if Rat.sign f < 0 || Rat.compare f Rat.one > 0 then
        invalid_arg "Platform.with_failures: rates must lie in [0, 1]")
    rates;
  { t with failures = Some (Array.copy rates) }

let failure_rate t u =
  match t.failures with None -> Rat.zero | Some f -> f.(u)

let failures_given t = t.failures <> None

let speed t u = t.speeds.(u)
let bandwidth t u v =
  match t.bw with
  | Dense m -> m.(u).(v)
  | Star l -> Rat.min l.(u) l.(v)
let proc_name u = Printf.sprintf "P%d" u

let pp fmt t =
  Format.fprintf fmt "@[<v>platform with %d processors:@," (p t);
  for u = 0 to p t - 1 do
    Format.fprintf fmt "  %s: speed %a" (proc_name u) Rat.pp t.speeds.(u);
    if failures_given t && not (Rat.is_zero (failure_rate t u)) then
      Format.fprintf fmt " (failure %a)" Rat.pp (failure_rate t u);
    Format.fprintf fmt "@,"
  done;
  Format.fprintf fmt "@]"
