Per-resource cycle-times of Example A (strict): P2 is the bottleneck.

  $ rwt mct -e a -m strict
  P0 (S0): Cin=0 Ccomp=22 Cout=189 Cexec=211 [serial]
  P1 (S1): Cin=93 Ccomp=73.50 Cout=33.67 Cexec=200.17 [serial]
  P2 (S1): Cin=96 Ccomp=64 Cout=55.83 Cexec=215.83 [serial]
  P3 (S2): Cin=11.67 Ccomp=24.33 Cout=34.67 Cexec=70.67 [serial]
  P4 (S2): Cin=37.50 Ccomp=7.67 Cout=22.33 Cexec=67.50 [serial]
  P5 (S2): Cin=40.33 Ccomp=48.67 Cout=42 Cexec=131 [serial]
  P6 (S3): Cin=99 Ccomp=73 Cout=0 Cexec=172 [serial]
  Mct = 215.83
