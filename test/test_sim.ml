(* Tests for the operational simulator and Gantt rendering. The strongest
   property is exact agreement with the TPN: the earliest schedule IS the
   token game, and its measured period IS the critical cycle ratio. *)

open Rwt_util
open Rwt_workflow
module S = Rwt_sim.Schedule

let qtest = QCheck_alcotest.to_alcotest
let rat = Alcotest.testable Rat.pp Rat.equal

let random_instance seed =
  let r = Prng.create seed in
  let n = Prng.int_in r 1 4 in
  let p = n + Prng.int r (2 * n) in
  Rwt_experiments.Generator.generate r
    { Rwt_experiments.Generator.n_stages = n; p; comp = (1, 20); comm = (1, 20) }

(* --- agreement with the TPN --- *)

let sim_equals_token_game =
  QCheck.Test.make ~count:80 ~name:"schedule events = TPN daters (both models)"
    QCheck.small_nat (fun seed ->
      let inst = random_instance seed in
      List.for_all
        (fun model ->
          let net = Rwt_core.Tpn_build.build_exn model inst in
          let m = net.Rwt_core.Tpn_build.m in
          let n = Mapping.n_stages inst.Instance.mapping in
          let k = 4 in
          let x = Rwt_petri.Token_game.daters net.Rwt_core.Tpn_build.tpn k in
          let sched = S.run model inst ~datasets:(m * k) in
          let ok = ref true in
          for kk = 0 to k - 1 do
            for row = 0 to m - 1 do
              for col = 0 to (2 * n) - 2 do
                let d = row + (kk * m) in
                let ev =
                  if col mod 2 = 0 then S.compute_event sched ~dataset:d ~stage:(col / 2)
                  else S.transfer_event sched ~dataset:d ~file:((col - 1) / 2)
                in
                let tid = Rwt_core.Tpn_build.transition_id net ~row ~col in
                if not (Rat.equal x.(tid).(kk) ev.S.finish) then ok := false
              done
            done
          done;
          !ok)
        Comm_model.all)

let sim_period_equals_tpn =
  QCheck.Test.make ~count:60 ~name:"measured period = critical cycle period"
    QCheck.small_nat (fun seed ->
      let inst = random_instance seed in
      List.for_all
        (fun model ->
          let p_tpn = (Rwt_core.Exact.period_exn model inst).Rwt_core.Exact.period in
          Rat.equal (S.measured_period model inst) p_tpn)
        Comm_model.all)

(* --- schedule invariants --- *)

let intervals_disjoint intervals =
  let sorted = List.sort (fun (a, _) (b, _) -> Rat.compare a b) intervals in
  let rec go = function
    | (_, f1) :: ((s2, _) :: _ as rest) -> Rat.compare f1 s2 <= 0 && go rest
    | _ -> true
  in
  go sorted

let resources_never_overlap =
  QCheck.Test.make ~count:60 ~name:"no resource unit runs two events at once"
    QCheck.small_nat (fun seed ->
      let inst = random_instance seed in
      List.for_all
        (fun model ->
          let sched = S.run model inst ~datasets:60 in
          List.for_all
            (fun (_, evs) ->
              intervals_disjoint (List.map (fun e -> (e.S.start, e.S.finish)) evs))
            (Rwt_sim.Gantt.rows sched))
        Comm_model.all)

let dataflow_order =
  QCheck.Test.make ~count:60 ~name:"file sent after computed, stage after received"
    QCheck.small_nat (fun seed ->
      let inst = random_instance seed in
      let n = Mapping.n_stages inst.Instance.mapping in
      List.for_all
        (fun model ->
          let sched = S.run model inst ~datasets:50 in
          let ok = ref true in
          for d = 0 to 49 do
            for i = 0 to n - 1 do
              let c = S.compute_event sched ~dataset:d ~stage:i in
              if i > 0 then begin
                let t = S.transfer_event sched ~dataset:d ~file:(i - 1) in
                if Rat.compare t.S.finish c.S.start > 0 then ok := false
              end;
              if i < n - 1 then begin
                let t = S.transfer_event sched ~dataset:d ~file:i in
                if Rat.compare c.S.finish t.S.start > 0 then ok := false
              end
            done
          done;
          !ok)
        Comm_model.all)

let round_robin_order =
  QCheck.Test.make ~count:60 ~name:"replicas start their data sets in round-robin order"
    QCheck.small_nat (fun seed ->
      let inst = random_instance seed in
      let mapping = inst.Instance.mapping in
      let n = Mapping.n_stages mapping in
      List.for_all
        (fun model ->
          let sched = S.run model inst ~datasets:60 in
          let ok = ref true in
          for i = 0 to n - 1 do
            let mi = Mapping.replication mapping i in
            for d = mi to 59 do
              let prev = S.compute_event sched ~dataset:(d - mi) ~stage:i in
              let cur = S.compute_event sched ~dataset:d ~stage:i in
              (* same replica: strictly ordered, non-overlapping *)
              if Rat.compare prev.S.finish cur.S.start > 0 then ok := false
            done
          done;
          !ok)
        Comm_model.all)

let strict_serializes_processors =
  QCheck.Test.make ~count:60 ~name:"strict: full recv/comp/send serialization"
    QCheck.small_nat (fun seed ->
      let inst = random_instance seed in
      let sched = S.run Comm_model.Strict inst ~datasets:60 in
      (* under strict, every processor appears as a single Gantt row; overlap
         freedom would show as an interval overlap, caught here *)
      List.for_all
        (fun (_, evs) -> intervals_disjoint (List.map (fun e -> (e.S.start, e.S.finish)) evs))
        (Rwt_sim.Gantt.rows sched))

(* --- example A published Gantt behaviour --- *)

let example_a_strict_idle () =
  (* Figure 7: in the strict schedule every resource has idle time *)
  let sched = S.run Comm_model.Strict (Instances.example_a ()) ~datasets:36 in
  let utils = S.utilization sched ~from_dataset:12 in
  Alcotest.(check int) "7 resources" 7 (List.length utils);
  List.iter
    (fun (name, u) ->
      if Rat.compare u Rat.one >= 0 then
        Alcotest.failf "%s has no idle time (utilization %s)" name (Rat.to_string u))
    utils

let example_a_overlap_critical_busy () =
  (* with overlap, P0-out is critical: utilization → 1 in steady state (the
     finite window leaves only the drain tail idle) *)
  let sched = S.run Comm_model.Overlap (Instances.example_a ()) ~datasets:240 in
  let utils = S.utilization sched ~from_dataset:12 in
  let p0out = List.assoc "P0-out" utils in
  Alcotest.(check bool) "P0-out saturated" true
    (Rat.compare p0out (Rat.of_ints 95 100) > 0);
  (* and it dominates every other unit *)
  List.iter
    (fun (_, u) -> Alcotest.(check bool) "P0-out max" true (Rat.compare u p0out <= 0))
    utils

(* --- gantt rendering --- *)

let gantt_renders () =
  let sched = S.run Comm_model.Strict (Instances.example_a ()) ~datasets:18 in
  let ascii = Rwt_sim.Gantt.to_ascii ~width:80 ~from_dataset:6 ~until_dataset:11 sched in
  let lines = String.split_on_char '\n' ascii in
  (* strict: one row per processor + header *)
  Alcotest.(check int) "rows" 9 (List.length lines);
  let text = Rwt_sim.Gantt.to_text ~from_dataset:6 ~until_dataset:6 sched in
  Alcotest.(check bool) "text mentions S0(6)" true
    (let needle = "S0(6)" in
     let rec contains i =
       i + String.length needle <= String.length text
       && (String.sub text i (String.length needle) = needle || contains (i + 1))
     in
     contains 0)

let gantt_overlap_three_rows () =
  let sched = S.run Comm_model.Overlap (Instances.example_b ()) ~datasets:24 in
  let rows = Rwt_sim.Gantt.rows sched in
  (* P2 computes and sends: rows P2 and P2-out; receivers have P*-in *)
  let names = List.map fst rows in
  Alcotest.(check bool) "has P2" true (List.mem "P2" names);
  Alcotest.(check bool) "has P2-out" true (List.mem "P2-out" names);
  Alcotest.(check bool) "has P3-in" true (List.mem "P3-in" names)

let run_rejects_bad_horizon () =
  Alcotest.check_raises "datasets <= 0" (Invalid_argument "Schedule.run: datasets <= 0")
    (fun () -> ignore (S.run Comm_model.Overlap (Instances.example_a ()) ~datasets:0))

let completion_check () =
  let inst = Instances.no_replication () in
  let sched = S.run Comm_model.Strict inst ~datasets:3 in
  (* data set 0: 12 + 9 + 30 + 14 + 8 = 73 *)
  Alcotest.check rat "first completion" (Rat.of_int 73) (S.completion sched 0)

(* --- trace export --- *)

let trace_export_consistent () =
  let sched = S.run Comm_model.Strict (Instances.no_replication ()) ~datasets:2 in
  let json = Rwt_sim.Trace_export.to_json sched in
  let csv = Rwt_sim.Trace_export.to_csv sched in
  let count_lines s = List.length (String.split_on_char '\n' (String.trim s)) in
  (* 2 datasets × (3 computes + 2 transfers) + header *)
  Alcotest.(check int) "csv rows" 11 (count_lines csv);
  let contains hay needle =
    let ln = String.length needle in
    let rec go i = i + ln <= String.length hay && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "json has model" true (contains json {|"model":"strict"|});
  Alcotest.(check bool) "json has exact rational" true (contains json {|"start":"0"|});
  Alcotest.(check bool) "csv has transfer row" true (contains csv "0,transfer,0,,0,1,");
  (* first completion of the no-replication instance is 73 *)
  Alcotest.(check bool) "json has finish 73" true (contains json {|"finish":"73"|})

let () =
  Alcotest.run "rwt_sim"
    [ ( "tpn agreement",
        [ qtest sim_equals_token_game; qtest sim_period_equals_tpn ] );
      ( "invariants",
        [ qtest resources_never_overlap; qtest dataflow_order; qtest round_robin_order;
          qtest strict_serializes_processors;
          Alcotest.test_case "horizon" `Quick run_rejects_bad_horizon;
          Alcotest.test_case "completion" `Quick completion_check ] );
      ( "paper behaviour",
        [ Alcotest.test_case "A strict all idle" `Quick example_a_strict_idle;
          Alcotest.test_case "A overlap P0-out saturated" `Quick example_a_overlap_critical_busy ] );
      ( "gantt",
        [ Alcotest.test_case "ascii+text" `Quick gantt_renders;
          Alcotest.test_case "overlap rows" `Quick gantt_overlap_three_rows ] );
      ("trace export", [ Alcotest.test_case "json+csv" `Quick trace_export_consistent ]) ]
