(** [rwt serve] — a crash-tolerant persistent analysis daemon.

    Long-lived NDJSON request/response service over a Unix-domain (and
    optionally TCP) socket: one JSON object per request line, exactly one
    JSON response line per request, in request order per connection. The
    daemon composes the existing layers into one production story:
    requests dispatch onto a {!Rwt_pool.service} of persistent worker
    domains, analysis results flow through the canonical-instance memo
    cache (identical content under different names shares one
    evaluation), each worker keeps [Rwt_core.Delta] sessions alive across
    requests, and every counter/histogram is an {!Rwt_obs} metric
    scrapeable through the [metrics] request.

    {2 Protocol}

    Request keys: ["req"] selects the request type — ["analyze"] (the
    default when ["file"]/["example"] is present), ["echo"], ["metrics"],
    ["health"], ["shutdown"]. Analysis requests take ["file"] or
    ["example"] plus optional ["model"], ["method"], ["deadline_ms"],
    ["transition_cap"]; any request may carry an ["id"] echoed back
    verbatim. Unknown keys or values are rejected with a typed error
    response — a malformed or hostile request line {e never} kills the
    daemon, and an unparseable line still consumes exactly one response
    slot so the client's line counting survives.

    Responses carry ["status"]: ["ok"], ["error"] (with
    ["error"]/["error_class"]/["error_code"] as in [rwt batch] output),
    ["timeout"], or ["shed"]. Analysis responses deliberately contain no
    wall-time or cache fields, so a replayed result is byte-identical to
    a freshly computed one.

    {2 Robustness}

    - {e Admission control}: at most [queue] analysis/echo requests may be
      outstanding (queued + running); beyond that the daemon answers
      [status "shed"] immediately instead of queueing without bound.
      [health]/[metrics] bypass admission so the daemon stays observable
      under overload.
    - {e Graceful degradation}: a TPN-route capacity/deadline failure on
      the OVERLAP model falls back to the polynomial algorithm and flags
      ["degraded"] in the response, mirroring [Analysis.analyze].
    - {e Graceful shutdown}: {!stop} (wired to SIGTERM/SIGINT by the CLI)
      stops accepting connections and reading requests, drains queued and
      running work, flushes every pending response, then returns.
    - {e Crash tolerance}: with [journal], each completed deterministic
      result (ok, or a non-transient error) is appended to an fsync'd
      content-addressed NDJSON journal {e before} the response is
      written. After [kill -9], restarting with the same journal replays
      those results from disk, so a client resend yields a byte-identical
      response set. Timeouts and transient (injected-fault) errors are
      never journaled — they are not deterministic facts about the
      request.

    See [doc/SERVE.md] for the full protocol and operations guide. *)

open Rwt_util
open Rwt_workflow
module Analysis = Rwt_core.Analysis

(** {1 Requests} *)

type source = File of string | Example of string

type analyze = {
  source : source;
  model : Comm_model.t;  (** default OVERLAP *)
  method_ : Analysis.method_;  (** default Auto *)
  deadline_ms : int option;  (** budget from admission, milliseconds *)
  transition_cap : int option;
}

type kind =
  | Analyze of analyze
  | Echo of Json.t option  (** no-op baseline; echoes ["payload"] back *)
  | Metrics of [ `Prometheus | `Json ]
  | Health
  | Shutdown  (** honored only with [allow_shutdown] *)

type request = { id : string option; kind : kind }

val parse_request : string -> (request, Rwt_err.t) result
(** Parse one NDJSON request line. Every failure is a typed [Parse] /
    [Validate] error (code ["parse.request"] / ["validate.request"]). *)

(** {1 Configuration} *)

type config = {
  socket : string option;  (** Unix-domain socket path *)
  tcp : (string * int) option;  (** host, port; port [0] = ephemeral *)
  port_file : string option;  (** write the bound TCP port here *)
  workers : int;  (** worker domains; [<= 0] = {!Rwt_pool.recommended} *)
  queue : int;  (** admission cap on outstanding analyze/echo requests *)
  max_conns : int;  (** concurrent connections; beyond = reject + close *)
  max_line : int;  (** request line byte cap (default 1 MiB) *)
  default_deadline_ms : int option;  (** applied when a request has none *)
  default_transition_cap : int option;
  journal : string option;  (** crash-tolerance journal path *)
  memo_cap : int;  (** canonical-result cache entries (FIFO eviction) *)
  allow_shutdown : bool;  (** honor the [shutdown] request type *)
  write_timeout_s : float;  (** SO_SNDTIMEO on accepted connections *)
}

val default_config : config
(** No listeners (callers must set [socket] and/or [tcp]), recommended
    workers, [queue = 64], [max_conns = 64], [max_line] 1 MiB, no
    deadline/cap defaults, no journal, [memo_cap = 4096], shutdown
    requests refused, 30s write timeout. *)

(** {1 Running} *)

type stats = {
  requests : int;  (** request lines consumed (including malformed) *)
  ok : int;
  errors : int;
  timeouts : int;
  shed : int;
  cache_hits : int;  (** memo hits, including journal replays *)
  replayed : int;  (** memo hits served from journal-recovered records *)
  conns : int;  (** connections accepted over the daemon's lifetime *)
  recovered : int;  (** journal records loaded at startup *)
}

val pp_stats : Format.formatter -> stats -> unit
(** One summary line, printed by the CLI on clean shutdown. *)

type control
(** Handle for requesting shutdown from outside the serve loop. *)

val stop : control -> unit
(** Request graceful drain; safe from a signal handler or any domain. *)

type ready = {
  control : control;
  addr : string;  (** rendered listener set, e.g. ["unix:d.sock"] *)
  eff_workers : int;  (** resolved worker-domain count *)
  recovered : int;  (** journal records recovered at startup *)
}

val run : ?on_ready:(ready -> unit) -> config -> (stats, Rwt_err.t) result
(** Run the daemon: bind listeners, recover the journal, spawn workers,
    call [on_ready], then serve until {!stop} is requested. Returns the
    lifetime stats after a graceful drain, or a typed error for startup
    problems (no listener configured, address in use, foreign journal
    schema, …). A stale socket file left by a crashed daemon is detected
    (nothing accepts on it) and replaced; a live one is a typed
    ["serve.addr_in_use"] error. *)

(** {1 Client} *)

module Client : sig
  type addr = Unix_sock of string | Tcp of string * int

  val request_lines :
    ?retries:int ->
    ?backoff_ms:float ->
    ?seed:int ->
    addr ->
    string list ->
    (string list, Rwt_err.t * string list) result
  (** Send each request line and collect exactly one response line per
      request, in request order. With [retries > 0], failed connects,
      daemon disconnects (unanswered requests are re-sent — analysis
      results are memoized server-side, so resending is idempotent) and
      [shed] responses are retried, sleeping per the decorrelated-jitter
      {!Backoff} policy ([backoff_ms] base, [seed]ed for deterministic
      tests). On failure returns the typed error plus the maximal prefix
      of responses already received. *)
end
