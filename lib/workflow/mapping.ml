type error =
  | Empty_stage of int
  | Processor_reused of int
  | Processor_out_of_range of int
  | Stage_count_mismatch of { expected : int; got : int }

let pp_error fmt = function
  | Empty_stage i -> Format.fprintf fmt "stage %d has no processor" i
  | Processor_reused u -> Format.fprintf fmt "processor %d assigned to several stages" u
  | Processor_out_of_range u -> Format.fprintf fmt "processor %d out of range" u
  | Stage_count_mismatch { expected; got } ->
    Format.fprintf fmt "expected %d stage assignments, got %d" expected got

let error_to_string e = Format.asprintf "%a" pp_error e

type t = { assignment : int array array; p : int; stage_of_proc : int array }

let create ~n_stages ~p assignment =
  if Array.length assignment <> n_stages then
    Error (Stage_count_mismatch { expected = n_stages; got = Array.length assignment })
  else begin
    let stage_of_proc = Array.make p (-1) in
    let err = ref None in
    Array.iteri
      (fun i procs ->
        if !err = None then
          if Array.length procs = 0 then err := Some (Empty_stage i)
          else
            Array.iter
              (fun u ->
                if !err = None then
                  if u < 0 || u >= p then err := Some (Processor_out_of_range u)
                  else if stage_of_proc.(u) >= 0 then err := Some (Processor_reused u)
                  else stage_of_proc.(u) <- i)
              procs)
      assignment;
    match !err with
    | Some e -> Error e
    | None ->
      Ok { assignment = Array.map Array.copy assignment; p; stage_of_proc }
  end

let create_exn ~n_stages ~p assignment =
  match create ~n_stages ~p assignment with
  | Ok t -> t
  | Error e -> invalid_arg ("Mapping.create: " ^ error_to_string e)

let n_stages t = Array.length t.assignment
let replication t i = Array.length t.assignment.(i)
let replication_vector t = Array.map Array.length t.assignment
let procs t i = Array.copy t.assignment.(i)
let proc_for t ~stage ~dataset = t.assignment.(stage).(dataset mod Array.length t.assignment.(stage))
let stage_of t u = if t.stage_of_proc.(u) >= 0 then Some t.stage_of_proc.(u) else None

let num_paths t =
  Rwt_util.Intmath.lcm_list (Array.to_list (replication_vector t))

let num_paths_big t =
  Rwt_util.Intmath.big_lcm_list (Array.to_list (replication_vector t))

let is_replicated t = Array.exists (fun procs -> Array.length procs > 1) t.assignment

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  Array.iteri
    (fun i procs ->
      Format.fprintf fmt "S%d -> {%s}@," i
        (String.concat ", " (Array.to_list (Array.map Platform.proc_name procs))))
    t.assignment;
  Format.fprintf fmt "@]"
