Serve walkthrough: the persistent analysis daemon, its NDJSON protocol,
admission control under overload, and graceful drain. See doc/SERVE.md.

Start a daemon on a Unix-domain socket and wait for the socket to appear:

  $ rwt serve --socket d.sock --workers 1 >serve.out 2>serve.log &
  $ SRV=$!
  $ for i in $(seq 1 200); do [ -S d.sock ] && break; sleep 0.05; done

One response line per request line, in order. Analysis responses carry
the exact rational period; a malformed line is a typed error response,
never a dead daemon:

  $ cat > reqs.txt <<'EOF'
  > {"example":"a","id":"a1"}
  > {"example":"a","model":"strict","method":"tpn","id":"a-strict"}
  > {"req":"echo","payload":{"n":1},"id":"e1"}
  > this is not json
  > EOF

  $ rwt send reqs.txt --socket d.sock
  {"id":"a1","status":"ok","period":"189","period_float":189,"throughput_float":0.0052910052910052907}
  {"id":"a-strict","status":"ok","period":"692/3","period_float":230.66666666666666,"throughput_float":0.004335260115606936}
  {"id":"e1","status":"ok","payload":{"n":1}}
  {"status":"error","error":"parse: bad JSON: expected true [col=1, offset=0]","error_class":"parse","error_code":"parse.request"}

The daemon stays observable: health and metrics answer on a fresh
connection even while analysis work queues.

  $ echo '{"req":"health"}' | rwt send --socket d.sock | grep -c '"accepting":true'
  1

  $ echo '{"req":"metrics"}' | rwt send --socket d.sock | grep -c serve_requests
  1

Overload: a second daemon with one worker, an admission queue of 3 and a
400 ms injected stall per request. Six echo requests arrive faster than
the worker drains them, so exactly three are admitted and three are shed
with a typed capacity response:

  $ rwt serve --socket o.sock --workers 1 --queue 3 \
  >   --fault 'serve.request=delay:400' >o.out 2>o.log &
  $ OSRV=$!
  $ for i in $(seq 1 200); do [ -S o.sock ] && break; sleep 0.05; done

  $ for i in 1 2 3 4 5 6; do echo "{\"req\":\"echo\",\"id\":\"$i\"}"; done > six.txt
  $ rwt send six.txt --socket o.sock
  {"id":"1","status":"ok"}
  {"id":"2","status":"ok"}
  {"id":"3","status":"ok"}
  {"id":"4","status":"shed","error":"capacity: admission queue full [queue=3]","error_class":"capacity","error_code":"serve.shed"}
  {"id":"5","status":"shed","error":"capacity: admission queue full [queue=3]","error_class":"capacity","error_code":"serve.shed"}
  {"id":"6","status":"shed","error":"capacity: admission queue full [queue=3]","error_class":"capacity","error_code":"serve.shed"}

A client with a retry budget turns shed responses into eventual
success — the decorrelated-jitter backoff waits out the queue:

  $ rwt send six.txt --socket o.sock --retries 5 --backoff-ms 300 --seed 7
  {"id":"1","status":"ok"}
  {"id":"2","status":"ok"}
  {"id":"3","status":"ok"}
  {"id":"4","status":"ok"}
  {"id":"5","status":"ok"}
  {"id":"6","status":"ok"}

  $ kill -TERM $OSRV && wait $OSRV

SIGTERM drains: queued work finishes, every pending response is
flushed, and the daemon exits 0 with a lifetime summary:

  $ kill -TERM $SRV && wait $SRV
  $ cat serve.log
  rwt serve: listening on unix:d.sock (workers 1, queue 64)
  rwt serve: drained: 6 requests: 5 ok, 1 error, 0 timeouts, 0 shed; 0 cache hits, 0 replayed, 3 connections

The socket file is removed on the way out:

  $ [ -S d.sock ] || echo gone
  gone

SIGPIPE satellite: a closed downstream pipe is a clean exit 0, not a
killed process (head exits immediately; rwt writes afterwards):

  $ { rwt period -e a --json 2>/dev/null; echo $? > code; } | head -c 0
  $ cat code
  0
