# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench bench-full bench-json bench-diff batch-bench mcr-bench tpn-bench incr-bench serve-bench search-bench scale-bench chaos profile examples clean fmt doc

all: build

build:
	dune build @all

test:
	dune runtest

test-force:
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt

# every bench run also writes BENCH_obs.json (metrics + per-target wall time)
bench:
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

bench-full:
	dune exec bench/main.exe -- table2-full

# quick machine-readable perf snapshot: a cheap target subset, then the dump
bench-json:
	dune exec bench/main.exe -- table1 example-a tpn-stats example-b sub-tpn example-c > /dev/null
	dune exec bin/rwt.exe -- json-check BENCH_obs.json

# perf-regression gate: validate every BENCH_*.json in the tree, then (when
# OLD= and NEW= name two snapshots) compare them with `rwt obs diff` — exits
# nonzero when any metric regresses past the threshold (default 10%, override
# with THRESHOLD=pct); see doc/OBSERVABILITY.md
bench-diff:
	@found=0; for f in BENCH_*.json; do \
	  [ -e "$$f" ] || continue; found=1; \
	  dune exec bin/rwt.exe -- json-check "$$f" || exit 1; \
	done; \
	if [ $$found -eq 0 ]; then echo "bench-diff: no BENCH_*.json snapshots (run make bench-json first)"; fi
	@if [ -n "$(OLD)" ] && [ -n "$(NEW)" ]; then \
	  dune exec bin/rwt.exe -- obs diff "$(OLD)" "$(NEW)" --threshold $(or $(THRESHOLD),10); \
	else \
	  echo "bench-diff: set OLD=old.json NEW=new.json to compare two snapshots"; \
	fi

# batch engine: 200-job synthetic sweep, sequential vs parallel -> BENCH_batch.json
# (speedup near 1 is expected when the machine has a single core; see doc/BATCH.md)
batch-bench:
	dune exec bench/main.exe -- batch

# MCR solver: pure exact vs float-screened vs SCCs-on-the-pool -> BENCH_mcr.json
# (the screen speedup is arithmetic, not parallelism, so it holds on 1 core;
# see doc/PERFORMANCE.md)
mcr-bench:
	dune exec bench/main.exe -- mcr

# TPN construction: fused direct-to-graph builder vs legacy materialized net,
# build+solve wall time and retained heap, both models -> BENCH_tpnbuild.json
# (the fusion speedup is allocation arithmetic, so it holds on 1 core; see
# doc/PERFORMANCE.md)
tpn-bench:
	dune exec bench/main.exe -- tpn

# delta layer: k-neighbour sweep through one Delta session vs k cold solves,
# strict model, periods asserted Rat-identical -> BENCH_incremental.json
# (the speedup is skipped rebuilds + clean-component reuse, so it holds on
# 1 core; see doc/PERFORMANCE.md)
incr-bench:
	dune exec bench/main.exe -- incr

# serve daemon: echo floor vs memo-hot/cold analyze req/s, plus a
# kill-and-resume chaos leg through the CLI binary -> BENCH_serve.json
# (see doc/SERVE.md)
serve-bench:
	dune build bin/rwt.exe
	dune exec bench/main.exe -- serve

# scaling: generated workload corpus (lib/experiments/corpus.ml) through the
# four parallel layers vs worker count, chunked-vs-per-task submission, and
# the committed period snapshots (bench/snapshots/) -> BENCH_scale.json.
# Tier via RWT_SCALE_TIER=tiny|standard|full (default standard); worker
# override via RWT_WORKERS. Runs alone because it resets Rwt_obs between
# legs. See doc/PERFORMANCE.md §Scaling.
scale-bench:
	dune build bin/rwt.exe
	dune exec bench/main.exe -- scale
	dune exec bin/rwt.exe -- json-check BENCH_scale.json

# multi-criteria search: branch-and-bound certified against brute force,
# plus heuristic candidate throughput (>= 10k scored mappings per run)
# -> BENCH_search.json (see doc/SEARCH.md)
search-bench:
	dune exec bench/main.exe -- search

# full fault-injection matrix over the shipped examples (the smoke subset
# already runs inside `make test`); see doc/RESILIENCE.md
chaos:
	dune exec test/chaos.exe -- --full

# per-phase cost table of the full pipeline on Example A, plus raw exports
profile:
	dune exec bin/rwt.exe -- profile -e a --metrics rwt_metrics.json --trace rwt_trace.json
	@echo "metrics -> rwt_metrics.json, chrome trace -> rwt_trace.json"

examples:
	dune exec examples/quickstart.exe
	dune exec examples/paper_examples.exe
	dune exec examples/video_pipeline.exe
	dune exec examples/grid_datacutter.exe
	dune exec examples/replication_sweep.exe

clean:
	dune clean
