open Rwt_workflow
module Tpn = Rwt_petri.Tpn
module Obs = Rwt_obs

type kind =
  | Compute of { stage : int; proc : int }
  | Transfer of { file : int; src : int; dst : int }

type t = {
  tpn : Tpn.t;
  m : int;
  n_stages : int;
  model : Comm_model.t;
  kinds : kind array;
}

let pp_kind fmt = function
  | Compute { stage; proc } ->
    Format.fprintf fmt "%s/S%d" (Platform.proc_name proc) stage
  | Transfer { file; src; dst } ->
    Format.fprintf fmt "%s->%s (F%d)" (Platform.proc_name src) (Platform.proc_name dst) file

let cols n = (2 * n) - 1

let transition_id t ~row ~col = (row * cols t.n_stages) + col
let row_col t id = (id / cols t.n_stages, id mod cols t.n_stages)
let kind t id = t.kinds.(id)

(* Pure index math: the kind and display name of the transition at
   (row, col) are fully determined by the mapping, so neither needs the
   materialized net. The fused builder ({!Tpn_graph}) derives both on
   demand from these; the eager builder below uses the same functions so
   the two renderings can never drift apart. *)
let kind_at mapping ~row ~col =
  if col mod 2 = 0 then
    let stage = col / 2 in
    Compute { stage; proc = Mapping.proc_for mapping ~stage ~dataset:row }
  else
    let file = (col - 1) / 2 in
    Transfer
      { file;
        src = Mapping.proc_for mapping ~stage:file ~dataset:row;
        dst = Mapping.proc_for mapping ~stage:(file + 1) ~dataset:row }

let name_at mapping ~row ~col =
  match kind_at mapping ~row ~col with
  | Compute { stage; proc } ->
    Printf.sprintf "%s/S%d r%d" (Platform.proc_name proc) stage row
  | Transfer { src; dst; _ } ->
    Printf.sprintf "%s->%s r%d" (Platform.proc_name src) (Platform.proc_name dst) row

(* Size guard shared by the eager and fused builders: publish the projected
   transition count, then reject nets over the cap with a typed capacity
   error. Rejections count under [tpn.rejections] — distinct from the
   symbolic-expansion guard's [expand.rejections], so the two limits are
   tellable apart in metrics. *)
let check_cap_exn ?transition_cap ~m ~ncols () =
  let cap =
    match transition_cap with
    | Some c ->
      if c <= 0 then
        Rwt_util.Rwt_err.raise_
          (Rwt_util.Rwt_err.validate ~code:"validate.cap"
             "Tpn_build.build: transition_cap must be positive");
      c
    | None -> Rwt_petri.Expand.transition_cap ()
  in
  (* checked multiplication: on adversarial replication vectors m·(2n−1)
     can wrap a native int and sail past the guard; overflow means the
     projection certainly exceeds any representable cap *)
  let projected = Rwt_util.Intmath.mul_checked m ncols in
  Obs.gauge "tpn.projected_transitions"
    (match projected with
     | Some t -> float_of_int t
     | None -> float_of_int m *. float_of_int ncols);
  let over = match projected with Some t -> t > cap | None -> true in
  if over then begin
    Obs.incr "tpn.rejections";
    let total =
      Rwt_util.Bigint.to_string
        (Rwt_util.Bigint.mul (Rwt_util.Bigint.of_int m) (Rwt_util.Bigint.of_int ncols))
    in
    Rwt_util.Rwt_err.raise_
      (Rwt_util.Rwt_err.capacity ~code:"capacity.tpn"
         ~context:
           [ ("m", string_of_int m);
             ("cols", string_of_int ncols);
             ("projected", total);
             ("cap", string_of_int cap) ]
         (Printf.sprintf
            "Tpn_build.build: the net would have m = %d rows of %d transitions \
             (%s total), exceeding the cap of %d; use the polynomial analysis, \
             pass ~transition_cap or raise Rwt_petri.Expand.set_transition_cap"
            m ncols total cap))
  end

(* Add the circuit of a round-robin resource over the given ordered rows in
   one column: chain places with 0 tokens and a wrap-around place with the
   single token. A one-row circuit degenerates to a marked self-loop. *)
let add_circuit tpn ~name ~ids =
  match ids with
  | [] -> ()
  | [ only ] -> Tpn.add_place tpn ~name ~src:only ~dst:only ~tokens:1
  | first :: _ ->
    let rec chain = function
      | a :: (b :: _ as rest) ->
        Tpn.add_place tpn ~name ~src:a ~dst:b ~tokens:0;
        chain rest
      | [ last ] -> Tpn.add_place tpn ~name ~src:last ~dst:first ~tokens:1
      | [] -> ()
    in
    chain ids

let build_exn ?transition_cap model inst =
  Obs.with_span "tpn.build" @@ fun () ->
  let mapping = inst.Instance.mapping in
  let n = Mapping.n_stages mapping in
  let m = Mapping.num_paths mapping in
  let ncols = cols n in
  check_cap_exn ?transition_cap ~m ~ncols ();
  let id ~row ~col = (row * ncols) + col in
  let kinds =
    Array.init (m * ncols) (fun tid ->
        kind_at mapping ~row:(tid / ncols) ~col:(tid mod ncols))
  in
  let transitions =
    Array.init (m * ncols) (fun tid ->
        let row = tid / ncols and col = tid mod ncols in
        { Tpn.tr_name = name_at mapping ~row ~col;
          firing =
            (match kinds.(tid) with
             | Compute { stage; proc } -> Instance.compute_time inst ~stage ~proc
             | Transfer { file; src; dst } ->
               Instance.transfer_time inst ~file ~src ~dst) })
  in
  let tpn = Tpn.create transitions in
  (* 1. row-forward dependences *)
  for row = 0 to m - 1 do
    for col = 0 to ncols - 2 do
      Tpn.add_place tpn ~name:"flow" ~src:(id ~row ~col) ~dst:(id ~row ~col:(col + 1))
        ~tokens:0
    done
  done;
  (* rows of stage i served by replica r: r, r + m_i, r + 2·m_i, … *)
  let rows_of_replica mi r = List.init (m / mi) (fun k -> r + (k * mi)) in
  (match model with
   | Comm_model.Overlap ->
     (* 2. computation round-robin circuits *)
     for stage = 0 to n - 1 do
       let mi = Mapping.replication mapping stage in
       for r = 0 to mi - 1 do
         let u = (Mapping.procs mapping stage).(r) in
         add_circuit tpn
           ~name:(Platform.proc_name u)
           ~ids:(List.map (fun row -> id ~row ~col:(2 * stage)) (rows_of_replica mi r))
       done
     done;
     (* 3. out-port circuits (transfer columns grouped by sender) *)
     for file = 0 to n - 2 do
       let mi = Mapping.replication mapping file in
       for r = 0 to mi - 1 do
         let u = (Mapping.procs mapping file).(r) in
         add_circuit tpn
           ~name:(Platform.proc_name u ^ "-out")
           ~ids:(List.map (fun row -> id ~row ~col:((2 * file) + 1)) (rows_of_replica mi r))
       done
     done;
     (* 4. in-port circuits (transfer columns grouped by receiver) *)
     for file = 0 to n - 2 do
       let mi1 = Mapping.replication mapping (file + 1) in
       for r = 0 to mi1 - 1 do
         let u = (Mapping.procs mapping (file + 1)).(r) in
         add_circuit tpn
           ~name:(Platform.proc_name u ^ "-in")
           ~ids:(List.map (fun row -> id ~row ~col:((2 * file) + 1)) (rows_of_replica mi1 r))
       done
     done
   | Comm_model.Strict ->
     (* one circuit per processor: send of row j_l → receive of row j_{l+1};
        the first (resp. last) stage uses its computation as first (resp.
        last) serial operation *)
     for stage = 0 to n - 1 do
       let mi = Mapping.replication mapping stage in
       let first_col = if stage = 0 then 0 else (2 * stage) - 1 in
       let last_col = if stage = n - 1 then 2 * stage else (2 * stage) + 1 in
       for r = 0 to mi - 1 do
         let u = (Mapping.procs mapping stage).(r) in
         let rows = rows_of_replica mi r in
         let name = Platform.proc_name u in
         (match rows with
          | [] -> ()
          | [ only ] ->
            Tpn.add_place tpn ~name ~src:(id ~row:only ~col:last_col)
              ~dst:(id ~row:only ~col:first_col) ~tokens:1
          | first :: _ ->
            let rec chain = function
              | a :: (b :: _ as rest) ->
                Tpn.add_place tpn ~name ~src:(id ~row:a ~col:last_col)
                  ~dst:(id ~row:b ~col:first_col) ~tokens:0;
                chain rest
              | [ last ] ->
                Tpn.add_place tpn ~name ~src:(id ~row:last ~col:last_col)
                  ~dst:(id ~row:first ~col:first_col) ~tokens:1
              | [] -> ()
            in
            chain rows)
       done
     done);
  Obs.incr "tpn.builds";
  Obs.gauge "tpn.rows" (float_of_int m);
  Obs.gauge "tpn.transitions" (float_of_int (Tpn.num_transitions tpn));
  Obs.gauge "tpn.places" (float_of_int (Tpn.num_places tpn));
  Obs.gauge_max "tpn.peak_transitions" (float_of_int (Tpn.num_transitions tpn));
  { tpn; m; n_stages = n; model; kinds }

let build ?transition_cap model inst =
  match build_exn ?transition_cap model inst with
  | t -> Ok t
  | exception Rwt_util.Rwt_err.Error e -> Error e

let resource_of_place _t (p : Tpn.place) =
  match p.Tpn.pl_name with
  | "flow" | "" -> None
  | name -> Some name

type census = {
  flow : int;
  compute_rr : int;
  out_rr : int;
  in_rr : int;
  serial_rr : int;
}

let ends_with suffix name =
  let ls = String.length suffix and ln = String.length name in
  ln >= ls && String.sub name (ln - ls) ls = suffix

let place_census t =
  let census = ref { flow = 0; compute_rr = 0; out_rr = 0; in_rr = 0; serial_rr = 0 } in
  Tpn.iter_places
    (fun p ->
      let c = !census in
      census :=
        (match p.Tpn.pl_name with
         | "flow" -> { c with flow = c.flow + 1 }
         | name when ends_with "-out" name -> { c with out_rr = c.out_rr + 1 }
         | name when ends_with "-in" name -> { c with in_rr = c.in_rr + 1 }
         | _ ->
           (match t.model with
            | Comm_model.Overlap -> { c with compute_rr = c.compute_rr + 1 }
            | Comm_model.Strict -> { c with serial_rr = c.serial_rr + 1 })))
    t.tpn;
  !census

let pp_census fmt c =
  Format.fprintf fmt
    "flow %d, compute round-robin %d, out-port %d, in-port %d, serial %d" c.flow
    c.compute_rr c.out_rr c.in_rr c.serial_rr
