(* Tests for the experiment harness: generator distributions, Table 2
   machinery, calibration, ablations. *)

open Rwt_util
open Rwt_workflow
module G = Rwt_experiments.Generator
module T2 = Rwt_experiments.Table2

let qtest = QCheck_alcotest.to_alcotest

(* --- generator --- *)

let composition_valid =
  QCheck.Test.make ~count:500 ~name:"composition: positive parts, right sum"
    (QCheck.pair QCheck.small_nat (QCheck.pair (QCheck.int_range 1 8) (QCheck.int_range 0 20)))
    (fun (seed, (parts, extra)) ->
      let total = parts + extra in
      let r = Prng.create seed in
      let c = G.random_composition r ~total ~parts in
      Array.length c = parts
      && Array.for_all (fun x -> x >= 1) c
      && Array.fold_left ( + ) 0 c = total)

let composition_rejects () =
  let r = Prng.create 1 in
  Alcotest.check_raises "total < parts" (Invalid_argument "Generator.random_composition")
    (fun () -> ignore (G.random_composition r ~total:2 ~parts:3))

let generate_respects_config =
  QCheck.Test.make ~count:200 ~name:"generated instances respect the config"
    QCheck.small_nat (fun seed ->
      let r = Prng.create seed in
      let cfg = { G.n_stages = 1 + Prng.int r 4; p = 6 + Prng.int r 6;
                  comp = (3, 9); comm = (4, 12) } in
      let inst = G.generate r cfg in
      let mapping = inst.Instance.mapping in
      Mapping.n_stages mapping = cfg.G.n_stages
      && Platform.p inst.Instance.platform = cfg.G.p
      && List.length (Instance.resources inst) = cfg.G.p
      && List.for_all
           (fun u ->
             match Mapping.stage_of mapping u with
             | None -> false
             | Some stage ->
               let t = Rat.to_float (Instance.compute_time inst ~stage ~proc:u) in
               t >= 3.0 && t <= 9.0)
           (Instance.resources inst)
      &&
      let ok = ref true in
      for i = 0 to cfg.G.n_stages - 2 do
        Array.iter
          (fun s ->
            Array.iter
              (fun d ->
                let t = Rat.to_float (Instance.transfer_time inst ~file:i ~src:s ~dst:d) in
                if t < 4.0 || t > 12.0 then ok := false)
              (Mapping.procs mapping (i + 1)))
          (Mapping.procs mapping i)
      done;
      !ok)

let generate_deterministic () =
  let mk () =
    G.generate (Prng.create 99) { G.n_stages = 3; p = 8; comp = (1, 5); comm = (1, 5) }
  in
  Alcotest.(check string) "same seed, same instance"
    (Format_io.to_string (mk ()))
    (Format_io.to_string (mk ()))

(* --- table 2 --- *)

let table2_rows_structure () =
  let rows = T2.paper_rows ~scale:1.0 in
  Alcotest.(check int) "6 rows" 6 (List.length rows);
  let counts = List.map (fun r -> r.T2.count) rows in
  Alcotest.(check (list int)) "paper counts" [ 220; 220; 68; 68; 1000; 1000 ] counts

let table2_small_run () =
  let results = T2.run_all ~scale:0.004 () in
  Alcotest.(check int) "12 result rows" 12 (List.length results);
  List.iter
    (fun r ->
      Alcotest.(check bool) "count consistency" true (r.T2.without_critical <= r.T2.total);
      (* overlap: the paper found no case at all; with exact arithmetic a
         violation would be a soundness bug, not noise *)
      if r.T2.model = Comm_model.Overlap && r.T2.without_critical > 0 then begin
        (* gaps can exist in principle (Example B!), but must be genuine:
           re-verify against the TPN on a fresh generator *)
        Alcotest.(check bool) "gap positive" true (Rat.sign r.T2.max_gap > 0)
      end)
    results

let table2_deterministic () =
  let r1 = T2.run_row Comm_model.Strict (List.nth (T2.paper_rows ~scale:0.004) 4) in
  let r2 = T2.run_row Comm_model.Strict (List.nth (T2.paper_rows ~scale:0.004) 4) in
  Alcotest.(check int) "same counts" r1.T2.without_critical r2.T2.without_critical;
  Alcotest.(check bool) "same gap" true (Rat.equal r1.T2.max_gap r2.T2.max_gap)

(* --- gap histogram --- *)

let gap_hist_consistent () =
  let cfg = { G.n_stages = 2; p = 7; comp = (1, 1); comm = (5, 10) } in
  let h = Rwt_experiments.Gap_hist.run ~samples:120 Comm_model.Strict cfg in
  let open Rwt_experiments.Gap_hist in
  Alcotest.(check int) "zeros + positives = total" h.total
    (h.zeros + List.length h.positives);
  List.iter
    (fun g -> Alcotest.(check bool) "gaps positive" true (Rat.sign g > 0))
    h.positives;
  let bucket_total = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 h.buckets in
  Alcotest.(check int) "buckets cover positives" (List.length h.positives) bucket_total;
  (* overlap on the same config: gaps must be rarer than or equal to strict *)
  let ho = Rwt_experiments.Gap_hist.run ~samples:120 Comm_model.Overlap cfg in
  Alcotest.(check bool) "rendering works" true
    (String.length (Format.asprintf "%a" Rwt_experiments.Gap_hist.pp ho) > 0)

let gap_hist_deterministic () =
  let cfg = { G.n_stages = 3; p = 7; comp = (1, 1); comm = (5, 10) } in
  let a = Rwt_experiments.Gap_hist.run ~samples:60 Comm_model.Strict cfg in
  let b = Rwt_experiments.Gap_hist.run ~samples:60 Comm_model.Strict cfg in
  Alcotest.(check int) "same zeros" a.Rwt_experiments.Gap_hist.zeros
    b.Rwt_experiments.Gap_hist.zeros

(* --- calibration --- *)

let published_checks () =
  List.iter
    (fun (name, ok) -> Alcotest.(check bool) name true ok)
    (Rwt_experiments.Calibrate.verify_published ())

let example_b_candidates () =
  let cands = Rwt_experiments.Calibrate.example_b_candidates () in
  Alcotest.(check bool) "some candidates" true (List.length cands > 0);
  (* the shipped instance's pattern must be among the unique-critical ones *)
  let b = Instances.example_b () in
  let shipped_expensive =
    List.concat_map
      (fun s ->
        List.filter_map
          (fun d ->
            if Rat.equal (Instance.transfer_time b ~file:0 ~src:s ~dst:d) (Rat.of_int 1000)
            then Some (s, d)
            else None)
          [ 3; 4; 5; 6 ])
      [ 0; 1; 2 ]
  in
  Alcotest.(check bool) "shipped pattern found with unique critical resource" true
    (List.exists
       (fun c ->
         c.Rwt_experiments.Calibrate.unique_critical
         && List.sort compare c.Rwt_experiments.Calibrate.expensive
            = List.sort compare shipped_expensive)
       cands)

(* --- ablations --- *)

let ablation_poly_agrees () =
  let rows =
    Rwt_experiments.Ablation.poly_vs_exact ~sizes:[ (2, 5); (3, 7) ] ~samples_per_size:3 ()
  in
  Alcotest.(check int) "rows" 6 (List.length rows);
  List.iter
    (fun r -> Alcotest.(check bool) "agree" true r.Rwt_experiments.Ablation.agree)
    rows

let ablation_solvers_agree () =
  let rows =
    Rwt_experiments.Ablation.solver_comparison ~sizes:[ 6; 12 ] ~samples_per_size:4 ()
  in
  List.iter
    (fun r -> Alcotest.(check bool) "agree" true r.Rwt_experiments.Ablation.all_agree)
    rows

let () =
  Alcotest.run "rwt_experiments"
    [ ( "generator",
        [ qtest composition_valid;
          Alcotest.test_case "rejects" `Quick composition_rejects;
          qtest generate_respects_config;
          Alcotest.test_case "deterministic" `Quick generate_deterministic ] );
      ( "table2",
        [ Alcotest.test_case "rows" `Quick table2_rows_structure;
          Alcotest.test_case "small run" `Slow table2_small_run;
          Alcotest.test_case "deterministic" `Quick table2_deterministic ] );
      ( "gap histogram",
        [ Alcotest.test_case "consistent" `Quick gap_hist_consistent;
          Alcotest.test_case "deterministic" `Quick gap_hist_deterministic ] );
      ( "calibration",
        [ Alcotest.test_case "published checks" `Quick published_checks;
          Alcotest.test_case "example B candidates" `Slow example_b_candidates ] );
      ( "ablation",
        [ Alcotest.test_case "poly vs exact" `Quick ablation_poly_agrees;
          Alcotest.test_case "solvers" `Quick ablation_solvers_agree ] ) ]
