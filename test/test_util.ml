(* Tests for the numeric substrate: Bigint, Rat, Intmath, Prng. *)

open Rwt_util
module B = Bigint

let qtest = QCheck_alcotest.to_alcotest

(* --- Bigint: differential tests against native ints --- *)

let int_range = QCheck.int_range (-1_000_000_000) 1_000_000_000

let pair = QCheck.pair int_range int_range

let bigint_add =
  QCheck.Test.make ~count:2000 ~name:"bigint add = int add" pair (fun (a, b) ->
      B.to_int_exn (B.add (B.of_int a) (B.of_int b)) = a + b)

let bigint_sub =
  QCheck.Test.make ~count:2000 ~name:"bigint sub = int sub" pair (fun (a, b) ->
      B.to_int_exn (B.sub (B.of_int a) (B.of_int b)) = a - b)

let bigint_mul =
  QCheck.Test.make ~count:2000 ~name:"bigint mul = int mul" pair (fun (a, b) ->
      B.to_int_exn (B.mul (B.of_int a) (B.of_int b)) = a * b)

let bigint_divmod =
  QCheck.Test.make ~count:2000 ~name:"bigint divmod = int divmod" pair (fun (a, b) ->
      QCheck.assume (b <> 0);
      let q, r = B.divmod (B.of_int a) (B.of_int b) in
      B.to_int_exn q = a / b && B.to_int_exn r = a mod b)

let bigint_compare =
  QCheck.Test.make ~count:2000 ~name:"bigint compare = int compare" pair (fun (a, b) ->
      compare a b = B.compare (B.of_int a) (B.of_int b))

let bigint_string_roundtrip =
  QCheck.Test.make ~count:2000 ~name:"bigint of_string ∘ to_string = id"
    (QCheck.list_of_size (QCheck.Gen.int_range 1 30) (QCheck.int_range 0 9))
    (fun digits ->
      let s = String.concat "" (List.map string_of_int digits) in
      (* strip redundant leading zeros for the comparison *)
      let canonical =
        let s' = ref 0 in
        while !s' < String.length s - 1 && s.[!s'] = '0' do incr s' done;
        String.sub s !s' (String.length s - !s')
      in
      B.to_string (B.of_string s) = canonical)

let bigint_mul_assoc =
  QCheck.Test.make ~count:1000 ~name:"bigint multi-limb (a*b)*c = a*(b*c)"
    (QCheck.triple pair pair pair)
    (fun ((a1, a2), (b1, b2), (c1, c2)) ->
      (* build multi-limb operands *)
      let big x y = B.add (B.mul (B.of_int x) (B.of_int 1_000_000_007)) (B.of_int y) in
      let a = big a1 a2 and b = big b1 b2 and c = big c1 c2 in
      B.equal (B.mul (B.mul a b) c) (B.mul a (B.mul b c)))

let bigint_divmod_invariant =
  QCheck.Test.make ~count:1000 ~name:"bigint multi-limb a = q*b + r, |r|<|b|"
    (QCheck.triple pair pair pair)
    (fun ((a1, a2), (b1, b2), (c1, c2)) ->
      let big x y z =
        B.add (B.mul (B.mul (B.of_int x) (B.of_int y)) (B.of_int 998_244_353)) (B.of_int z)
      in
      let a = big a1 a2 c1 and b = big b1 b2 c2 in
      QCheck.assume (not (B.is_zero b));
      let q, r = B.divmod a b in
      B.equal a (B.add (B.mul q b) r)
      && B.compare (B.abs r) (B.abs b) < 0
      && (B.is_zero r || B.sign r = B.sign a))

let bigint_units () =
  Alcotest.(check string) "min_int" (string_of_int min_int) (B.to_string (B.of_int min_int));
  Alcotest.(check int) "max_int" max_int (B.to_int_exn (B.of_int max_int));
  Alcotest.(check string) "gcd" "21" (B.to_string (B.gcd (B.of_int 462) (B.of_int 1071)));
  Alcotest.(check string) "pow" "1000000000000000000000000000000"
    (B.to_string (B.pow (B.of_int 10) 30));
  Alcotest.(check bool) "to_int_opt overflow" true
    (B.to_int_opt (B.pow (B.of_int 10) 30) = None);
  Alcotest.(check string) "neg mul"
    "-12193263113702179522496570642237463801111263526900"
    (B.to_string
       (B.mul
          (B.of_string "123456789012345678901234567890")
          (B.of_string "-98765432109876543210")))

(* --- Rat --- *)

let rat_gen =
  QCheck.map
    (fun (a, b) -> Rat.of_ints a (if b = 0 then 1 else b))
    (QCheck.pair (QCheck.int_range (-10000) 10000) (QCheck.int_range (-100) 100))

let rat_triple = QCheck.triple rat_gen rat_gen rat_gen

let rat_field_laws =
  QCheck.Test.make ~count:2000 ~name:"rat field laws" rat_triple (fun (x, y, z) ->
      let open Rat in
      equal (add x y) (add y x)
      && equal (add (add x y) z) (add x (add y z))
      && equal (mul x y) (mul y x)
      && equal (mul (mul x y) z) (mul x (mul y z))
      && equal (mul x (add y z)) (add (mul x y) (mul x z))
      && equal (add x (neg x)) zero
      && (is_zero x || equal (mul x (inv x)) one))

let rat_order =
  QCheck.Test.make ~count:2000 ~name:"rat order consistent with floats" rat_gen (fun x ->
      let f = Rat.to_float x in
      (Rat.sign x > 0) = (f > 0.0) || Rat.is_zero x)

let rat_canonical =
  QCheck.Test.make ~count:2000 ~name:"rat canonical form" rat_gen (fun x ->
      Bigint.sign (Rat.den x) > 0
      && Bigint.is_one (Bigint.gcd (Rat.num x) (Rat.den x)))

let rat_units () =
  Alcotest.(check string) "1/3+1/6" "1/2" (Rat.to_string Rat.(add (of_ints 1 3) (of_ints 1 6)));
  Alcotest.(check string) "258.33" "258.33"
    (Format.asprintf "%a" Rat.pp_approx (Rat.of_ints 3100 12));
  Alcotest.(check string) "291.67" "291.67"
    (Format.asprintf "%a" Rat.pp_approx (Rat.of_ints 3500 12));
  Alcotest.(check string) "215.83" "215.83"
    (Format.asprintf "%a" Rat.pp_approx (Rat.of_ints 1295 6));
  Alcotest.(check bool) "of_string decimal" true
    (Rat.equal (Rat.of_string "258.33") (Rat.of_ints 25833 100));
  Alcotest.(check bool) "of_string fraction" true
    (Rat.equal (Rat.of_string "-7/21") (Rat.of_ints (-1) 3));
  Alcotest.(check bool) "of_string negative decimal" true
    (Rat.equal (Rat.of_string "-2.5") (Rat.of_ints (-5) 2));
  Alcotest.check_raises "den 0" Division_by_zero (fun () -> ignore (Rat.of_ints 1 0))

(* --- Intmath --- *)

let intmath_lcm_gcd =
  QCheck.Test.make ~count:2000 ~name:"lcm * gcd = a * b"
    (QCheck.pair (QCheck.int_range 1 10000) (QCheck.int_range 1 10000))
    (fun (a, b) -> Intmath.lcm a b * Intmath.gcd a b = a * b)

let intmath_units () =
  Alcotest.(check int) "lcm list" 10395 (Intmath.lcm_list [ 5; 21; 27; 11 ]);
  Alcotest.(check int) "lcm list example A" 6 (Intmath.lcm_list [ 1; 2; 3; 1 ]);
  Alcotest.(check string) "big lcm" "10395"
    (Bigint.to_string (Intmath.big_lcm_list [ 5; 21; 27; 11 ]));
  Alcotest.(check int) "gcd 0 0" 0 (Intmath.gcd 0 0);
  Alcotest.(check int) "ceil_div" 4 (Intmath.ceil_div 10 3)

let intmath_checked_units () =
  let some = Alcotest.(check (option int)) in
  some "mul small" (Some 42) (Intmath.mul_checked 6 7);
  some "mul negative" (Some (-42)) (Intmath.mul_checked (-6) 7);
  some "mul zero" (Some 0) (Intmath.mul_checked 0 max_int);
  some "mul overflow" None (Intmath.mul_checked max_int 2);
  some "mul overflow negative" None (Intmath.mul_checked min_int 2);
  some "mul min_int * -1" None (Intmath.mul_checked min_int (-1));
  some "mul at edge" (Some max_int) (Intmath.mul_checked max_int 1);
  some "add small" (Some 5) (Intmath.add_checked 2 3);
  some "add overflow" None (Intmath.add_checked max_int 1);
  some "add underflow" None (Intmath.add_checked min_int (-1));
  some "add mixed signs never overflows" (Some (-1)) (Intmath.add_checked min_int max_int)

let intmath_mul_checked_sound =
  QCheck.Test.make ~count:2000 ~name:"mul_checked agrees with exact product"
    (QCheck.pair QCheck.int QCheck.int)
    (fun (a, b) ->
      let exact = B.mul (B.of_int a) (B.of_int b) in
      match Intmath.mul_checked a b with
      | Some p -> B.equal (B.of_int p) exact
      | None -> not (B.equal (B.of_int (a * b)) exact))

(* --- Prng --- *)

let prng_deterministic () =
  let a = Prng.create 7 and b = Prng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done

let prng_bounds =
  QCheck.Test.make ~count:500 ~name:"prng int_in bounds" (QCheck.int_range 0 100000)
    (fun seed ->
      let r = Prng.create seed in
      let lo = Prng.int_in r (-50) 50 in
      let hi = lo + Prng.int r 100 in
      let v = Prng.int_in r lo hi in
      lo <= v && v <= hi)

let prng_split_independent () =
  let a = Prng.create 3 in
  let b = Prng.split a in
  let xs = List.init 50 (fun _ -> Prng.int a 1000000) in
  let ys = List.init 50 (fun _ -> Prng.int b 1000000) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let rat_pp_approx_edges () =
  let show r = Format.asprintf "%a" Rat.pp_approx r in
  Alcotest.(check string) "negative" "-215.83" (show (Rat.of_ints (-1295) 6));
  Alcotest.(check string) "round half away from zero" "0.13" (show (Rat.of_ints 1 8));
  Alcotest.(check string) "negative half" "-0.13" (show (Rat.of_ints (-1) 8));
  Alcotest.(check string) "integer passthrough" "42" (show (Rat.of_int 42));
  Alcotest.(check string) "tiny" "0.00" (show (Rat.of_ints 1 1000));
  Alcotest.(check string) "carry across point" "1.00" (show (Rat.of_ints 999 1000))

let bigint_hash_equal =
  QCheck.Test.make ~count:1000 ~name:"equal bigints hash equally" int_range (fun a ->
      let x = B.of_int a in
      let y = B.sub (B.add x (B.of_int 12345)) (B.of_int 12345) in
      B.equal x y && B.hash x = B.hash y)

(* --- Json --- *)

let json_escaping =
  QCheck.Test.make ~count:500 ~name:"json strings round-trip printable + control chars"
    QCheck.printable_string (fun s ->
      let out = Json.to_string (Json.String s) in
      (* well-formed: starts and ends with a quote, no raw control chars *)
      String.length out >= 2
      && out.[0] = '"'
      && out.[String.length out - 1] = '"'
      && String.for_all (fun c -> Char.code c >= 0x20) out)

let json_units () =
  Alcotest.(check string) "compact object" {|{"a":1,"b":[true,null]}|}
    (Json.to_string (Json.Obj [ ("a", Json.Int 1); ("b", Json.List [ Json.Bool true; Json.Null ]) ]));
  Alcotest.(check string) "escape" "\"a\\\"b\\\\c\\nd\""
    (Json.to_string (Json.String "a\"b\\c\nd"));
  Alcotest.(check string) "number literal" "3.25e-2"
    (Json.to_string (Json.number "3.25e-2"));
  Alcotest.check_raises "bad number" (Invalid_argument "Json.number: malformed literal 1.2.3")
    (fun () -> ignore (Json.number "1.2.3"));
  let pretty = Json.to_string ~pretty:true (Json.Obj [ ("x", Json.List [ Json.Int 1 ]) ]) in
  Alcotest.(check bool) "pretty has newlines" true (String.contains pretty '\n')

(* Non-finite floats have no JSON literal (RFC 8259): serialize as null,
   and the parser must not accept bare NaN/Infinity spellings. *)
let json_nonfinite () =
  Alcotest.(check string) "nan -> null" "null" (Json.to_string (Json.Float Float.nan));
  Alcotest.(check string) "+inf -> null" "null" (Json.to_string (Json.Float Float.infinity));
  Alcotest.(check string) "-inf -> null" "null"
    (Json.to_string (Json.Float Float.neg_infinity));
  Alcotest.(check string) "nan inside structure" {|{"v":null,"w":[null,1.5]}|}
    (Json.to_string
       (Json.Obj
          [ ("v", Json.Float Float.nan);
            ("w", Json.List [ Json.Float Float.neg_infinity; Json.Float 1.5 ]) ]));
  let rejects s =
    Alcotest.(check bool)
      (Printf.sprintf "of_string rejects %s" s)
      true
      (match Json.of_string s with Error _ -> true | Ok _ -> false)
  in
  List.iter rejects
    [ "NaN"; "Infinity"; "-Infinity"; "nan"; "inf"; {|{"v":NaN}|}; "[Infinity]" ]

let () =
  Alcotest.run "rwt_util"
    [ ( "bigint",
        [ qtest bigint_add; qtest bigint_sub; qtest bigint_mul; qtest bigint_divmod;
          qtest bigint_compare; qtest bigint_string_roundtrip; qtest bigint_mul_assoc;
          qtest bigint_divmod_invariant;
          Alcotest.test_case "units" `Quick bigint_units; qtest bigint_hash_equal ] );
      ( "rat",
        [ qtest rat_field_laws; qtest rat_order; qtest rat_canonical;
          Alcotest.test_case "units" `Quick rat_units;
          Alcotest.test_case "pp_approx edges" `Quick rat_pp_approx_edges ] );
      ( "intmath",
        [ qtest intmath_lcm_gcd; Alcotest.test_case "units" `Quick intmath_units;
          Alcotest.test_case "checked arithmetic" `Quick intmath_checked_units;
          qtest intmath_mul_checked_sound ] );
      ( "prng",
        [ Alcotest.test_case "deterministic" `Quick prng_deterministic;
          qtest prng_bounds;
          Alcotest.test_case "split" `Quick prng_split_independent ] );
      ( "json",
        [ qtest json_escaping; Alcotest.test_case "units" `Quick json_units;
          Alcotest.test_case "non-finite floats" `Quick json_nonfinite ] ) ]
