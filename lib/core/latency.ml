open Rwt_util
open Rwt_workflow

type t = {
  period : Rat.t;
  per_residue : Rat.t array;
  worst : Rat.t;
  best : Rat.t;
  mean : Rat.t;
}

let analyze ?(margin = Rat.zero) ?period model inst =
  if Rat.sign margin < 0 then invalid_arg "Latency.analyze: negative margin";
  let period =
    match period with
    | Some p ->
      if Rat.sign p <= 0 then invalid_arg "Latency.analyze: non-positive period";
      p
    | None ->
      (match model with
       | Comm_model.Overlap -> Poly_overlap.period inst
       | Comm_model.Strict -> (Exact.period_exn model inst).Exact.period)
  in
  let release_period = Rat.mul period (Rat.add Rat.one margin) in
  let m = Mapping.num_paths inst.Instance.mapping in
  let blocks = 40 in
  let datasets = max (blocks * m) 200 in
  let release d = Rat.mul_int release_period d in
  let sched = Rwt_sim.Schedule.run ~release model inst ~datasets in
  let latency d = Rat.sub (Rwt_sim.Schedule.ordered_completion sched d) (release d) in
  (* the per-residue latency is non-increasing in the block index once the
     transient has passed (released at rate >= capacity, latencies cannot
     grow); read the last block and confirm against the previous one *)
  let last_block = datasets - m in
  let per_residue = Array.init m (fun r -> latency (last_block + r)) in
  let prev = Array.init m (fun r -> latency (last_block - m + r)) in
  let stable = ref true in
  Array.iteri (fun r l -> if not (Rat.equal l prev.(r)) then stable := false) per_residue;
  if not !stable then failwith "Latency.analyze: latencies not stabilized";
  let worst = Array.fold_left Rat.max per_residue.(0) per_residue in
  let best = Array.fold_left Rat.min per_residue.(0) per_residue in
  let mean =
    Rat.div_int (Array.fold_left Rat.add Rat.zero per_residue) m
  in
  { period = release_period; per_residue; worst; best; mean }

let pp fmt t =
  Format.fprintf fmt
    "@[<v>release period %a: latency worst %a, best %a, mean %a over %d classes@]"
    Rat.pp_approx t.period Rat.pp_approx t.worst Rat.pp_approx t.best Rat.pp_approx
    t.mean (Array.length t.per_residue)
