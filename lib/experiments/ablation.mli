(** Ablation studies around the design choices called out in DESIGN.md:
    Theorem 1 vs full-TPN cost and agreement, and the relative behaviour of
    the three max-cycle-ratio solvers. *)

open Rwt_util
open Rwt_workflow

type poly_vs_exact_row = {
  instance : Instance.t;
  m : int;  (** TPN rows *)
  tpn_transitions : int;
  poly_seconds : float;
  exact_seconds : float;
  agree : bool;  (** Theorem 1 result = full-TPN result (must always hold) *)
  period : Rat.t;
}

val poly_vs_exact :
  ?seed:int -> sizes:(int * int) list -> samples_per_size:int -> unit ->
  poly_vs_exact_row list
(** Random OVERLAP instances of the given (stages, processors) sizes;
    instances whose [m] would make the full TPN intractable (> 20 000 rows)
    are regenerated. *)

type solver_row = {
  nodes : int;
  edges : int;
  howard_seconds : float;
  parametric_seconds : float;
  lawler_seconds : float;  (** binary search to 1e-9 *)
  karp_seconds : float;  (** on the unit-token variant *)
  all_agree : bool;
}

val solver_comparison :
  ?seed:int -> sizes:int list -> samples_per_size:int -> unit -> solver_row list
(** Random live ratio graphs; Howard and parametric must agree exactly; Karp
    is compared on the all-tokens-1 projection of the same topology. *)

val pp_poly_rows : Format.formatter -> poly_vs_exact_row list -> unit
val pp_solver_rows : Format.formatter -> solver_row list -> unit
