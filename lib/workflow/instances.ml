open Rwt_util

let r = Rat.of_int

(* Example A (Figure 2). The 18 published labels are: computations
   P0=22, P1=147, P2=128, P3=73, P4=23, P5=146, P6=73 and transfers
   P0→P1=186, P0→P2=192, P1→{P3,P4,P5}={57,68,77}, P2→{P3,P4,P5}=
   {13,157,165}, {P3,P4,P5}→P6={104,67,126}. The edge assignment below is
   the calibration result (see Rwt_experiments.Calibrate): it reproduces
   P_overlap = 189 with critical resource P0-out and P_strict = 230.7 with
   Mct = 215.83 on P2. *)
let example_a () =
  Instance.of_times ~name:"example-A" ~p:7
    ~stages:
      [ [ (0, r 22) ];
        [ (1, r 147); (2, r 128) ];
        [ (3, r 73); (4, r 23); (5, r 146) ];
        [ (6, r 73) ] ]
    ~links:
      [ ((0, 1), r 186); ((0, 2), r 192);
        ((1, 3), r 57); ((1, 4), r 68); ((1, 5), r 77);
        ((2, 3), r 13); ((2, 4), r 157); ((2, 5), r 165);
        ((3, 6), r 104); ((4, 6), r 67); ((5, 6), r 126) ]
    ()

(* Example B (Figure 6): 3 senders, 4 receivers, all computations cost 100;
   seven links cost 1000 and five cost 100, with P2 holding three of the
   1000-links (Cout(P2) = 3100/12 = Mct). The calibration pins the pattern
   so that the full sub-TPN's critical cycle has ratio 7000/2, i.e. period
   3500/12 = 291.67 as published. *)
let example_b () =
  Instance.of_times ~name:"example-B" ~p:7
    ~stages:
      [ [ (0, r 100); (1, r 100); (2, r 100) ];
        [ (3, r 100); (4, r 100); (5, r 100); (6, r 100) ] ]
    ~links:
      [ ((0, 3), r 1000); ((0, 4), r 100); ((0, 5), r 100); ((0, 6), r 1000);
        ((1, 3), r 100); ((1, 4), r 100); ((1, 5), r 1000); ((1, 6), r 1000);
        ((2, 3), r 1000); ((2, 4), r 1000); ((2, 5), r 1000); ((2, 6), r 100) ]
    ()

(* Example C (Figure 11): only the replication vector (5, 21, 27, 11) is
   published; timings are synthesized from a fixed seed. *)
let example_c () =
  let rng = Prng.create 2009 in
  let counts = [| 5; 21; 27; 11 |] in
  let p = Array.fold_left ( + ) 0 counts in
  let next = ref 0 in
  let stages =
    Array.to_list
      (Array.map
         (fun m ->
           List.init m (fun _ ->
               let u = !next in
               incr next;
               (u, r (Prng.int_in rng 5 15))))
         counts)
  in
  let links = ref [] in
  let offset = Array.make 4 0 in
  let acc = ref 0 in
  Array.iteri (fun i m -> offset.(i) <- !acc; acc := !acc + m) counts;
  for i = 0 to 2 do
    for s = 0 to counts.(i) - 1 do
      for d = 0 to counts.(i + 1) - 1 do
        links := ((offset.(i) + s, offset.(i + 1) + d), r (Prng.int_in rng 5 15)) :: !links
      done
    done
  done;
  Instance.of_times ~name:"example-C" ~p ~stages ~links:!links ()

(* Found by this repository's Table 2 campaign (seed 2009): a 2-stage
   instance with replication (4, 3) whose OVERLAP period 34/3 strictly
   exceeds its maximum cycle-time 67/6 — smaller than the paper's Example B
   (which needs 3 + 4 replicas). The paper's own campaign found no overlap
   case at all in 2 576 runs. Verified three ways (Theorem 1, full TPN,
   simulator). *)
let minimal_no_critical_overlap () =
  Instance.of_times ~name:"minimal-no-critical-overlap" ~p:7
    ~stages:
      [ [ (3, r 1); (5, r 1); (0, r 1); (2, r 1) ];
        [ (4, r 1); (6, r 1); (1, r 1) ] ]
    ~links:
      [ ((0, 1), r 33); ((0, 4), r 45); ((0, 6), r 38);
        ((2, 1), r 26); ((2, 4), r 49); ((2, 6), r 41);
        ((3, 1), r 45); ((3, 4), r 18); ((3, 6), r 15);
        ((5, 1), r 30); ((5, 4), r 10); ((5, 6), r 39) ]
    ()

let figure1 () =
  Pipeline.of_ints ~work:[| 10; 40; 30; 20 |] ~data:[| 8; 16; 4 |]

let no_replication () =
  Instance.of_times ~name:"no-replication" ~p:3
    ~stages:[ [ (0, r 12) ]; [ (1, r 30) ]; [ (2, r 8) ] ]
    ~links:[ ((0, 1), r 9); ((1, 2), r 14) ]
    ()
