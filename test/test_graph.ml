(* Tests for the directed-graph substrate. *)

module D = Rwt_graph.Digraph

let qtest = QCheck_alcotest.to_alcotest

(* Deterministic random graph from a seed. *)
let random_graph seed =
  let r = Rwt_util.Prng.create seed in
  let n = Rwt_util.Prng.int_in r 1 12 in
  let g = D.create n in
  let m = Rwt_util.Prng.int_in r 0 (3 * n) in
  for _ = 1 to m do
    ignore (D.add_edge g (Rwt_util.Prng.int r n) (Rwt_util.Prng.int r n) ())
  done;
  g

let digraph_basics () =
  let g = D.create 3 in
  let e0 = D.add_edge g 0 1 "a" in
  let _e1 = D.add_edge g 1 2 "b" in
  let e2 = D.add_edge g 1 2 "c" in
  Alcotest.(check int) "nodes" 3 (D.num_nodes g);
  Alcotest.(check int) "edges" 3 (D.num_edges g);
  Alcotest.(check int) "ids" 0 e0.D.id;
  Alcotest.(check int) "out deg" 2 (D.out_degree g 1);
  Alcotest.(check int) "in deg" 2 (D.in_degree g 2);
  Alcotest.(check (list string)) "out order" [ "b"; "c" ]
    (List.map (fun e -> e.D.label) (D.out_edges g 1));
  Alcotest.(check string) "edge by id" "c" (D.edge g e2.D.id).D.label;
  Alcotest.check_raises "bad node" (Invalid_argument "Digraph.add_edge") (fun () ->
      ignore (D.add_edge g 0 3 "x"))

let reverse_involution =
  QCheck.Test.make ~count:300 ~name:"reverse∘reverse preserves edges"
    QCheck.small_nat (fun seed ->
      let g = random_graph seed in
      let h = D.reverse (D.reverse g) in
      let edges gr = D.fold_edges (fun acc e -> (e.D.src, e.D.dst) :: acc) [] gr in
      List.sort compare (edges g) = List.sort compare (edges h))

(* SCC oracle: Floyd–Warshall reachability. *)
let scc_oracle g =
  let n = D.num_nodes g in
  let reach = Array.make_matrix n n false in
  for i = 0 to n - 1 do
    reach.(i).(i) <- true
  done;
  D.iter_edges (fun e -> reach.(e.D.src).(e.D.dst) <- true) g;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if reach.(i).(k) && reach.(k).(j) then reach.(i).(j) <- true
      done
    done
  done;
  fun u v -> reach.(u).(v) && reach.(v).(u)

let scc_correct =
  QCheck.Test.make ~count:300 ~name:"tarjan vs reachability oracle"
    QCheck.small_nat (fun seed ->
      let g = random_graph seed in
      let r = Rwt_graph.Scc.tarjan g in
      let same = scc_oracle g in
      let ok = ref true in
      let n = D.num_nodes g in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if (r.Rwt_graph.Scc.comp.(u) = r.Rwt_graph.Scc.comp.(v)) <> same u v then ok := false
        done
      done;
      !ok)

let scc_topo_order =
  QCheck.Test.make ~count:300 ~name:"tarjan condensation is reverse-topological"
    QCheck.small_nat (fun seed ->
      let g = random_graph seed in
      let r = Rwt_graph.Scc.tarjan g in
      D.fold_edges
        (fun acc e ->
          acc
          &&
          let cu = r.Rwt_graph.Scc.comp.(e.D.src) and cv = r.Rwt_graph.Scc.comp.(e.D.dst) in
          cu = cv || cu > cv)
        true g)

let topo_valid =
  QCheck.Test.make ~count:300 ~name:"topological order respects edges"
    QCheck.small_nat (fun seed ->
      let g = random_graph seed in
      match Rwt_graph.Topo.sort g with
      | None ->
        (* must contain a cycle: some SCC is non-trivial *)
        let r = Rwt_graph.Scc.tarjan g in
        let has_self = D.fold_edges (fun acc e -> acc || e.D.src = e.D.dst) false g in
        has_self || r.Rwt_graph.Scc.count < D.num_nodes g
      | Some order ->
        let pos = Array.make (D.num_nodes g) 0 in
        List.iteri (fun i u -> pos.(u) <- i) order;
        List.length order = D.num_nodes g
        && D.fold_edges (fun acc e -> acc && pos.(e.D.src) < pos.(e.D.dst)) true g)

let components_union =
  QCheck.Test.make ~count:300 ~name:"weak components partition the nodes"
    QCheck.small_nat (fun seed ->
      let g = random_graph seed in
      let r = Rwt_graph.Components.undirected g in
      let members = Rwt_graph.Components.members r in
      let total = Array.fold_left (fun acc l -> acc + List.length l) 0 members in
      total = D.num_nodes g
      && D.fold_edges
           (fun acc e ->
             acc && r.Rwt_graph.Components.comp.(e.D.src) = r.Rwt_graph.Components.comp.(e.D.dst))
           true g)

let subgraph_consistent () =
  let g = D.create 5 in
  ignore (D.add_edge g 0 1 "a");
  ignore (D.add_edge g 1 2 "b");
  ignore (D.add_edge g 2 3 "c");
  ignore (D.add_edge g 3 0 "d");
  ignore (D.add_edge g 4 0 "e");
  let sub, back = D.subgraph g [ 0; 1; 2; 3 ] in
  Alcotest.(check int) "sub nodes" 4 (D.num_nodes sub);
  Alcotest.(check int) "sub edges" 4 (D.num_edges sub);
  Alcotest.(check int) "back map" 2 back.(2)

let dot_renders () =
  let g = D.create 2 in
  ignore (D.add_edge g 0 1 "w\"eird");
  let s =
    Rwt_graph.Dot.render ~node_label:(fun i -> Printf.sprintf "n%d" i)
      ~edge_label:(fun l -> l) g
  in
  Alcotest.(check bool) "has digraph" true
    (String.length s > 0 && String.sub s 0 7 = "digraph");
  Alcotest.(check bool) "escapes quotes" true
    (let rec contains i =
       i + 2 <= String.length s && (String.sub s i 2 = "\\\"" || contains (i + 1))
     in
     contains 0)

let () =
  Alcotest.run "rwt_graph"
    [ ( "digraph",
        [ Alcotest.test_case "basics" `Quick digraph_basics;
          qtest reverse_involution;
          Alcotest.test_case "subgraph" `Quick subgraph_consistent ] );
      ("scc", [ qtest scc_correct; qtest scc_topo_order ]);
      ("topo", [ qtest topo_valid ]);
      ("components", [ qtest components_union ]);
      ("dot", [ Alcotest.test_case "render" `Quick dot_renders ]) ]
