open Rwt_util
open Rwt_workflow

type row_config = {
  label : string;
  sizes : (int * int) list;
  comp : int * int;
  comm : int * int;
  count : int;
}

let paper_rows ~scale =
  let c n = max 2 (int_of_float (float_of_int n *. scale)) in
  [ { label = "(10,20) and (10,30)"; sizes = [ (10, 20); (10, 30) ];
      comp = (5, 15); comm = (5, 15); count = c 220 };
    { label = "(10,20) and (10,30)"; sizes = [ (10, 20); (10, 30) ];
      comp = (10, 1000); comm = (10, 1000); count = c 220 };
    { label = "(20,30)"; sizes = [ (20, 30) ]; comp = (5, 15); comm = (5, 15);
      count = c 68 };
    { label = "(20,30)"; sizes = [ (20, 30) ]; comp = (10, 1000);
      comm = (10, 1000); count = c 68 };
    { label = "(2,7) and (3,7)"; sizes = [ (2, 7); (3, 7) ]; comp = (1, 1);
      comm = (5, 10); count = c 1000 };
    { label = "(2,7) and (3,7)"; sizes = [ (2, 7); (3, 7) ]; comp = (1, 1);
      comm = (10, 50); count = c 1000 } ]

type row_result = {
  config : row_config;
  model : Comm_model.t;
  total : int;
  without_critical : int;
  max_gap : Rat.t;
  skipped : int;
  estimated : int;
}

type period_outcome = Exact_period of Rat.t | Estimated_period of Rat.t | Intractable

let period_of ~m_exact_cap ~m_sim_cap model inst =
  match model with
  | Comm_model.Overlap -> Exact_period (Rwt_core.Poly_overlap.period inst)
  | Comm_model.Strict ->
    let m = Mapping.num_paths inst.Instance.mapping in
    if m <= m_exact_cap then
      Exact_period (Rwt_core.Exact.period_exn model inst).Rwt_core.Exact.period
    else if m <= m_sim_cap then begin
      let datasets = max (6 * m) 200 in
      Estimated_period
        (Rwt_sim.Schedule.period_estimate (Rwt_sim.Schedule.run model inst ~datasets))
    end
    else Intractable

let run_row ?(seed = 2009) ?(m_exact_cap = 3000) ?(m_sim_cap = 30000)
    ?(progress = fun _ -> ()) model cfg =
  let r = Prng.create (seed + Hashtbl.hash (cfg.label, cfg.comp, cfg.comm, model)) in
  let sizes = Array.of_list cfg.sizes in
  let without = ref 0 in
  let skipped = ref 0 in
  let estimated = ref 0 in
  let max_gap = ref Rat.zero in
  for k = 0 to cfg.count - 1 do
    progress k;
    let n_stages, p = sizes.(k mod Array.length sizes) in
    let inst =
      Generator.generate r
        { Generator.n_stages; p; comp = cfg.comp; comm = cfg.comm }
    in
    let mct = Cycle_time.mct model inst in
    (match period_of ~m_exact_cap ~m_sim_cap model inst with
     | Intractable -> incr skipped
     | Exact_period period | Estimated_period period as o ->
       (match o with Estimated_period _ -> incr estimated | _ -> ());
       if Rat.compare period mct > 0 then begin
         incr without;
         let gap = Rat.div (Rat.sub period mct) mct in
         if Rat.compare gap !max_gap > 0 then max_gap := gap
       end)
  done;
  { config = cfg; model; total = cfg.count; without_critical = !without;
    max_gap = !max_gap; skipped = !skipped; estimated = !estimated }

let run_all ?seed ?m_exact_cap ?m_sim_cap ?(progress = fun _ _ -> ()) ~scale () =
  let rows = paper_rows ~scale in
  List.concat_map
    (fun model ->
      List.map
        (fun cfg ->
          run_row ?seed ?m_exact_cap ?m_sim_cap
            ~progress:(progress (cfg.label ^ "/" ^ Comm_model.to_string model))
            model cfg)
        rows)
    [ Comm_model.Overlap; Comm_model.Strict ]

let pp_range fmt (lo, hi) =
  if lo = hi then Format.fprintf fmt "%d" lo else Format.fprintf fmt "between %d and %d" lo hi

let pp_results fmt results =
  let header model =
    Format.fprintf fmt "@,%s:@,"
      (match model with Comm_model.Overlap -> "With overlap" | Comm_model.Strict -> "Without overlap")
  in
  Format.fprintf fmt "@[<v>%-22s %-24s %-24s %s@," "Size (stages, procs)"
    "Computation times" "Communication times" "#exp without critical / total";
  let last_model = ref None in
  List.iter
    (fun r ->
      if !last_model <> Some r.model then begin
        header r.model;
        last_model := Some r.model
      end;
      Format.fprintf fmt "%-22s %-24s %-24s %d / %d%s%s@," r.config.label
        (Format.asprintf "%a" pp_range r.config.comp)
        (Format.asprintf "%a" pp_range r.config.comm)
        r.without_critical r.total
        (if r.without_critical > 0 then
           Format.asprintf " (diff less than %a%%)" Rat.pp_approx
             (Rat.mul_int r.max_gap 100)
         else "")
        (if r.skipped > 0 || r.estimated > 0 then
           Printf.sprintf "  [%d simulated, %d skipped]" r.estimated r.skipped
         else ""))
    results;
  Format.fprintf fmt "@]"
