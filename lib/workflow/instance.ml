open Rwt_util

type t = {
  name : string;
  pipeline : Pipeline.t;
  platform : Platform.t;
  mapping : Mapping.t;
}

let invalid name msg context =
  Rwt_err.raise_
    (Rwt_err.validate ~code:"validate.instance"
       ~context:(("instance", name) :: context)
       ("Instance.create: " ^ msg))

let create_exn ~name ~pipeline ~platform ~mapping =
  if Mapping.n_stages mapping <> Pipeline.n_stages pipeline then
    invalid name "mapping/pipeline stage mismatch"
      [ ("mapping_stages", string_of_int (Mapping.n_stages mapping));
        ("pipeline_stages", string_of_int (Pipeline.n_stages pipeline)) ];
  Array.iter
    (fun i ->
      Array.iter
        (fun u ->
          if u < 0 || u >= Platform.p platform then
            invalid name "mapping uses unknown processor"
              [ ("stage", string_of_int i);
                ("proc", string_of_int u);
                ("p", string_of_int (Platform.p platform)) ])
        (Mapping.procs mapping i))
    (Array.init (Mapping.n_stages mapping) (fun i -> i));
  { name; pipeline; platform; mapping }

let create ~name ~pipeline ~platform ~mapping =
  match create_exn ~name ~pipeline ~platform ~mapping with
  | t -> Ok t
  | exception Rwt_err.Error e -> Error e

let compute_time t ~stage ~proc =
  Rat.div (Pipeline.work t.pipeline stage) (Platform.speed t.platform proc)

let transfer_time t ~file ~src ~dst =
  Rat.div (Pipeline.data t.pipeline file) (Platform.bandwidth t.platform src dst)

let compute_time_for t ~stage ~dataset =
  compute_time t ~stage ~proc:(Mapping.proc_for t.mapping ~stage ~dataset)

let transfer_time_for t ~file ~dataset =
  let src = Mapping.proc_for t.mapping ~stage:file ~dataset in
  let dst = Mapping.proc_for t.mapping ~stage:(file + 1) ~dataset in
  transfer_time t ~file ~src ~dst

let of_times ?(name = "instance") ~p ~stages ~links () =
  let n = List.length stages in
  if n = 0 then invalid_arg "Instance.of_times: no stages";
  let work = Array.make n Rat.one in
  let data = Array.make (max 0 (n - 1)) Rat.one in
  let speeds = Array.make p Rat.one in
  let speed_set = Array.make p false in
  List.iter
    (List.iter (fun (u, time) ->
         if u < 0 || u >= p then invalid_arg "Instance.of_times: processor out of range";
         if Rat.sign time <= 0 then invalid_arg "Instance.of_times: non-positive time";
         if speed_set.(u) then invalid_arg "Instance.of_times: duplicate processor time";
         speeds.(u) <- Rat.inv time;
         speed_set.(u) <- true))
    stages;
  let bw = Array.make_matrix p p Rat.one in
  let bw_set = Array.make_matrix p p false in
  List.iter
    (fun ((u, v), time) ->
      if u < 0 || u >= p || v < 0 || v >= p then
        invalid_arg "Instance.of_times: link endpoint out of range";
      if Rat.sign time <= 0 then invalid_arg "Instance.of_times: non-positive time";
      if bw_set.(u).(v) then invalid_arg "Instance.of_times: duplicate link";
      bw.(u).(v) <- Rat.inv time;
      bw_set.(u).(v) <- true)
    links;
  let pipeline = Pipeline.create ~work ~data in
  let platform = Platform.create ~speeds ~bandwidths:bw in
  let assignment =
    Array.of_list (List.map (fun l -> Array.of_list (List.map fst l)) stages)
  in
  let mapping = Mapping.create_exn ~n_stages:n ~p assignment in
  create_exn ~name ~pipeline ~platform ~mapping

let resources t =
  let used = ref [] in
  for i = Mapping.n_stages t.mapping - 1 downto 0 do
    used := Array.to_list (Mapping.procs t.mapping i) @ !used
  done;
  List.sort_uniq compare !used

let pp fmt t =
  Format.fprintf fmt "@[<v>instance %s:@,%a%a%a@]" t.name Pipeline.pp t.pipeline
    Platform.pp t.platform Mapping.pp t.mapping
