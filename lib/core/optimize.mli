(** Heuristic mapping search.

    Finding the throughput-maximizing mapping is NP-hard even without
    replication (Benoit & Robert 2008, the paper's reference [3]); the paper
    assumes the mapping is given. This module closes the loop for users of
    the library: a greedy constructor plus randomized local search over
    replication sets, with the exact period evaluators of this repository as
    the objective. It is a pragmatic extension, not part of the paper. *)

open Rwt_util
open Rwt_workflow

type result = {
  mapping : Mapping.t;
  period : Rat.t;
  evaluations : int;  (** how many candidate mappings were scored *)
}

val greedy : Comm_model.t -> Pipeline.t -> Platform.t -> result
(** One processor per stage: stages in decreasing work order pick the
    fastest remaining processor. The baseline every search starts from. *)

val local_search :
  ?seed:int ->
  ?iterations:int ->
  ?m_cap:int ->
  Comm_model.t ->
  Pipeline.t ->
  Platform.t ->
  result
(** Randomized first-improvement local search from the greedy start.
    Moves: assign an idle processor to a stage (replication), move a
    processor between stages, retire a replica, swap two processors.
    Candidates whose [lcm(m_i)] exceeds [m_cap] (default 720) are rejected
    to keep the strict-model evaluation exact and fast. Deterministic in
    [seed]. [iterations] bounds the number of attempted moves (default
    400). The result never scores worse than {!greedy}. STRICT candidates
    are scored through one {!Delta} session: replica-preserving moves
    (swaps) patch the cached graph in place and warm-start the solver,
    shape-changing moves re-arm the session with a cold solve. *)

val pp : Format.formatter -> result -> unit
