(** Topological ordering of acyclic directed graphs. *)

val sort : 'e Digraph.t -> int list option
(** [Some order] (sources first) if the graph is acyclic, [None] otherwise. *)

val is_acyclic : 'e Digraph.t -> bool
