open Rwt_util

type t = { work : Rat.t array; data : Rat.t array; names : string array }

let create ~work ~data =
  let n = Array.length work in
  if n = 0 then invalid_arg "Pipeline.create: no stages";
  if Array.length data <> n - 1 then
    invalid_arg "Pipeline.create: need exactly n-1 file sizes";
  Array.iter (fun w -> if Rat.sign w < 0 then invalid_arg "Pipeline.create: negative work") work;
  Array.iter (fun d -> if Rat.sign d < 0 then invalid_arg "Pipeline.create: negative data") data;
  { work; data; names = Array.init n (fun k -> Printf.sprintf "S%d" k) }

let rename t names =
  if Array.length names <> Array.length t.work then invalid_arg "Pipeline.rename: arity";
  { t with names }

let of_ints ~work ~data =
  create ~work:(Array.map Rat.of_int work) ~data:(Array.map Rat.of_int data)

let n_stages t = Array.length t.work
let work t k = t.work.(k)
let data t k = t.data.(k)
let name t k = t.names.(k)

let pp fmt t =
  Format.fprintf fmt "@[<v>pipeline with %d stages:@," (n_stages t);
  for k = 0 to n_stages t - 1 do
    Format.fprintf fmt "  %s: w=%a" (name t k) Rat.pp t.work.(k);
    if k < n_stages t - 1 then Format.fprintf fmt ", out file δ=%a" Rat.pp t.data.(k);
    Format.fprintf fmt "@,"
  done;
  Format.fprintf fmt "@]"
