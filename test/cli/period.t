Example A under both models reproduces the paper's values.

  $ rwt period -e a -m overlap --exact
  model: overlap
  period: 189 (throughput 0.005291 data sets / time unit)
  Mct:    189 (resource P0, stage S0)
  the critical resource dictates the period (P = Mct)
  exact period: 189

  $ rwt period -e a -m strict --exact
  model: strict
  period: 230.67 (throughput 0.004335 data sets / time unit)
  Mct:    215.83 (resource P2, stage S1)
  no critical resource: P exceeds Mct by 6.87%
  exact period: 692/3

Example B has no critical resource even with overlap.

  $ rwt period -e b -m overlap --exact
  model: overlap
  period: 291.67 (throughput 0.003429 data sets / time unit)
  Mct:    258.33 (resource P2, stage S0)
  no critical resource: P exceeds Mct by 12.90%
  exact period: 875/3

Theorem 1 refuses the strict model.

  $ rwt period -e a -m strict --method poly
  rwt: validate: Analysis.analyze: no polynomial algorithm for the strict model
  [2]
