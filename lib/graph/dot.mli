(** DOT (Graphviz) rendering for any {!Digraph}. *)

val render :
  ?name:string ->
  ?node_attrs:(int -> (string * string) list) ->
  ?edge_attrs:('e Digraph.edge -> (string * string) list) ->
  node_label:(int -> string) ->
  edge_label:('e -> string) ->
  'e Digraph.t ->
  string
(** Returns the full [digraph { ... }] source. Labels are escaped. *)
