(* Chaos harness: sweep the fault matrix over the shipped example
   instances and check the resilience invariant on every cell —

     an injected fault yields either the fault-free answer (possibly via
     the degraded polynomial route), a typed non-[Internal] error, or a
     typed timeout; never a crash, a raw exception, or a silently wrong
     period.

   Runs as part of `dune runtest` with the smoke matrix (a few dozen
   cells); `--full` (the `make chaos` target) sweeps every point/action/
   trigger combination over every example, model and method, with
   probabilistic triggers replayed under several seeds. Exits nonzero on
   the first invariant violation. *)

open Rwt_util
open Rwt_workflow

let instances =
  [ ("example-A", Instances.example_a);
    ("example-B", Instances.example_b);
    ("no-replication", Instances.no_replication) ]

let models = [ Comm_model.Overlap; Comm_model.Strict ]
let methods = [ Rwt_core.Analysis.Auto; Rwt_core.Analysis.Tpn ]

let smoke_points = [ "tpn.build"; "mcr.*"; "analysis.analyze" ]

let full_points =
  smoke_points @ [ "poly.analyze"; "expand.*"; "mcr.solve"; "load"; "*" ]

let actions = [ "error"; "capacity"; "timeout"; "delay:1" ]

let failures = ref 0
let cells = ref 0

let report spec name why =
  incr failures;
  Printf.eprintf "chaos: FAIL [%s on %s]: %s\n%!" spec name why

(* one cell: install the spec, analyze, compare against the clean run *)
let cell ~spec ~name ~model ~method_ inst clean =
  incr cells;
  (match Rwt_fault.install spec with
   | Ok () -> ()
   | Error e -> report spec name ("bad spec: " ^ Rwt_err.to_line e));
  let result =
    Fun.protect ~finally:Rwt_fault.clear (fun () ->
        Rwt_core.Analysis.analyze ~method_ model inst)
  in
  match (result, clean) with
  | Ok r, Ok (c : Rwt_core.Analysis.report) ->
    if not (Rat.equal r.Rwt_core.Analysis.period c.Rwt_core.Analysis.period) then
      report spec name
        (Printf.sprintf "silently wrong period: %s instead of %s%s"
           (Rat.to_string r.Rwt_core.Analysis.period)
           (Rat.to_string c.Rwt_core.Analysis.period)
           (match r.Rwt_core.Analysis.degraded with
            | Some why -> " (degraded: " ^ why ^ ")"
            | None -> ""))
  | Ok _, Error _ -> report spec name "fault turned a failing analysis into a success"
  | Error e, _ ->
    if e.Rwt_err.class_ = Rwt_err.Internal then
      report spec name ("untyped failure: " ^ Rwt_err.to_line e)
  | exception e ->
    report spec name ("raw exception escaped: " ^ Printexc.to_string e)

let sweep ~full =
  let points = if full then full_points else smoke_points in
  let triggers =
    if full then [ ""; "@#1"; "@#2"; "@+1"; "@p0.5;seed=3"; "@p0.5;seed=11" ]
    else [ ""; "@#2" ]
  in
  List.iter
    (fun (name, make_inst) ->
      let inst = make_inst () in
      List.iter
        (fun model ->
          List.iter
            (fun method_ ->
              let clean = Rwt_core.Analysis.analyze ~method_ model inst in
              let label =
                Printf.sprintf "%s/%s/%s" name
                  (Comm_model.to_string model)
                  (match method_ with
                   | Rwt_core.Analysis.Auto -> "auto"
                   | Rwt_core.Analysis.Tpn -> "tpn"
                   | Rwt_core.Analysis.Poly -> "poly")
              in
              List.iter
                (fun point ->
                  List.iter
                    (fun action ->
                      List.iter
                        (fun trigger ->
                          let spec = point ^ "=" ^ action ^ trigger in
                          cell ~spec ~name:label ~model ~method_ inst clean)
                        triggers)
                    actions)
                points)
            methods)
        models)
    instances

let () =
  let full = Array.exists (( = ) "--full") Sys.argv in
  sweep ~full;
  if !failures > 0 then begin
    Printf.eprintf "chaos: %d/%d cells violated the resilience invariant\n%!"
      !failures !cells;
    exit 1
  end;
  Printf.printf "chaos: %d cells ok (%s matrix)\n%!" !cells
    (if full then "full" else "smoke")
