(** Strongly connected components (Tarjan, iterative — safe on the large
    event graphs produced by heavily replicated mappings). *)

type result = {
  count : int;  (** number of components *)
  comp : int array;  (** [comp.(v)] is the component index of node [v] *)
}

val tarjan : 'e Digraph.t -> result
(** Components are numbered in reverse topological order of the condensation:
    if there is an edge from component [a] to component [b <> a] then
    [a > b]. *)

val members : result -> int list array
(** [members r] lists the nodes of each component, ascending. *)

val is_trivial : 'e Digraph.t -> result -> int -> bool
(** A component is trivial iff it is a single node without a self-loop (hence
    lies on no cycle). *)
