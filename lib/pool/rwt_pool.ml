module Obs = Rwt_obs
module Json = Rwt_util.Json

let recommended () = Domain.recommended_domain_count ()

let default_workers = ref 0

(* RWT_WORKERS: process-wide worker-count override, honored by every layer
   that resolves an automatic worker count (the static pool, batch auto
   policy, serve). Precedence everywhere is explicit flag/argument >
   environment > hardware auto; a malformed or non-positive value is
   ignored rather than fatal. *)
let env_workers () =
  match Sys.getenv_opt "RWT_WORKERS" with
  | None -> None
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some w when w >= 1 -> Some (min 128 w)
     | _ -> None)

let resolved_default () =
  match !default_workers with
  | 0 -> (match env_workers () with Some w -> w | None -> recommended ())
  | w -> max 1 w

(* a worker must never spawn a nested pool: domains-inside-domains
   oversubscribe the machine and can deadlock join order under memory
   pressure, so nested [run]s degrade to the sequential loop *)
let in_worker = Domain.DLS.new_key (fun () -> false)

(* Scheduling granularity: tasks are submitted to the deques as contiguous
   chunks so that queue and steal traffic is paid once per chunk, not once
   per task — on corpora of small solves the per-task mutex round trip
   dominated the wall time (see doc/PERFORMANCE.md §Scaling). [chunk_size]
   pins the chunk length process-wide; 0 (the default) picks
   [n / (workers * chunks_per_worker)] so every worker still sees several
   steal-able chunks for load balancing. *)
let chunk_size = ref 0
let chunks_per_worker = 8

let auto_chunk ~n ~workers =
  max 1 (min 256 (n / (workers * chunks_per_worker)))

(* deques hold chunk indices; chunk k covers tasks [k*c, min n ((k+1)*c)) *)
type deque = { mu : Mutex.t; tasks : int array; mutable head : int; mutable tail : int }

let pop_front d =
  Mutex.protect d.mu (fun () ->
      if d.head < d.tail then begin
        let t = d.tasks.(d.head) in
        d.head <- d.head + 1;
        Some t
      end
      else None)

let pop_back d =
  Mutex.protect d.mu (fun () ->
      if d.head < d.tail then begin
        d.tail <- d.tail - 1;
        Some d.tasks.(d.tail)
      end
      else None)

let run ?workers ?chunk ~n task =
  (* an empty task set must cost nothing: no deques, no domains spawned *)
  if n <= 0 then ()
  else begin
    let requested =
      match workers with Some w -> max 1 w | None -> resolved_default ()
    in
    let workers = min 128 (min requested n) in
    if workers <= 1 || n <= 1 || Domain.DLS.get in_worker then
      for t = 0 to n - 1 do
        task t
      done
    else begin
      let c =
        match chunk with
        | Some c when c >= 1 -> c
        | _ ->
          (match !chunk_size with
           | pinned when pinned >= 1 -> pinned
           | _ -> auto_chunk ~n ~workers)
      in
      let n_chunks = (n + c - 1) / c in
      (* more domains than chunks would only idle *)
      let workers = min workers n_chunks in
      if workers <= 1 then
        for t = 0 to n - 1 do
          task t
        done
      else begin
        let failure : exn option Atomic.t = Atomic.make None in
        (* static chunk set, seeded round-robin before any domain starts *)
        let deques =
          Array.init workers (fun w ->
              let mine = ref [] in
              for k = n_chunks - 1 downto 0 do
                if k mod workers = w then mine := k :: !mine
              done;
              let tasks = Array.of_list !mine in
              { mu = Mutex.create (); tasks; head = 0; tail = Array.length tasks })
        in
        (* per-worker observability: one [pool.worker] span per worker (so
           the trace shows one lane per domain even when a single worker
           drains everything), busy/idle split, steal-latency histogram and
           a queue-depth counter sample after every pop. All of it sits
           behind a single flag read taken before the domains spawn. *)
        let obs_on = Obs.enabled () in
        let depth d = Mutex.protect d.mu (fun () -> d.tail - d.head) in
        let worker w () =
          Domain.DLS.set in_worker true;
          (* steal affinity: remember the victim offset that last yielded a
             chunk and start the next hunt there — a loaded victim usually
             stays loaded, so repeat thieves skip the empty part of the
             clockwise scan. Work conservation is untouched: a full scan
             still visits every deque before giving up. *)
          let steal_from = ref 1 in
          let next_chunk () =
            match pop_front deques.(w) with
            | Some k -> Some (k, false)
            | None ->
              let rec hunt tried =
                if tried >= workers - 1 then None
                else begin
                  let off = 1 + ((!steal_from - 1 + tried) mod (workers - 1)) in
                  match pop_back deques.((w + off) mod workers) with
                  | Some k ->
                    steal_from := off;
                    Obs.incr "pool.steals";
                    Some (k, true)
                  | None -> hunt (tried + 1)
                end
              in
              hunt 0
          in
          let busy = ref 0.0 in
          let run_task t =
            try task t
            with e -> ignore (Atomic.compare_and_set failure None (Some e))
          in
          let run_chunk k =
            let stop = min n ((k + 1) * c) in
            let t = ref (k * c) in
            while !t < stop && Atomic.get failure = None do
              run_task !t;
              incr t
            done
          in
          let run_chunk_obs k =
            let stop = min n ((k + 1) * c) in
            let t = ref (k * c) in
            while !t < stop && Atomic.get failure = None do
              let t_run = Obs.now () in
              Obs.with_span ~args:[ ("task", Json.Int !t) ] "pool.task" (fun () ->
                  run_task !t);
              busy := !busy +. (Obs.now () -. t_run);
              incr t
            done
          in
          let rec loop () =
            if Atomic.get failure = None then
              if not obs_on then
                match next_chunk () with
                | Some (k, _) -> run_chunk k; loop ()
                | None -> ()
              else begin
                let t_seek = Obs.now () in
                match next_chunk () with
                | Some (k, stolen) ->
                  if stolen then
                    Obs.observe "pool.steal_latency_s" (Obs.now () -. t_seek);
                  Obs.incr "pool.chunks";
                  Obs.sample "pool.queue_depth" (float_of_int (depth deques.(w)));
                  run_chunk_obs k;
                  loop ()
                | None -> ()
              end
          in
          let body () =
            if not obs_on then loop ()
            else begin
              let t_start = Obs.now () in
              Obs.with_span ~args:[ ("worker", Json.Int w) ] "pool.worker" loop;
              Obs.observe "pool.worker_busy_s" !busy;
              Obs.observe "pool.worker_idle_s"
                (Float.max 0.0 (Obs.now () -. t_start -. !busy))
            end
          in
          Fun.protect ~finally:(fun () -> Domain.DLS.set in_worker false) body
        in
        let domains =
          Array.init (workers - 1) (fun w -> Domain.spawn (worker (w + 1)))
        in
        (* the calling domain is worker 0, so [run] never idles a core *)
        worker 0 ();
        Array.iter Domain.join domains;
        match Atomic.get failure with None -> () | Some e -> raise e
      end
    end
  end

let map ?workers ?chunk ~n f =
  if n <= 0 then [||]
  else begin
    let out = Array.make n None in
    run ?workers ?chunk ~n (fun i -> out.(i) <- Some (f i));
    Array.map (function Some v -> v | None -> assert false) out
  end

(* ------------------------------------------------------------------ *)
(* Long-lived service pool: dynamic submissions over persistent
   workers, for daemons ([rwt serve]) rather than static fan-out.     *)

type 'a service = {
  name : string;
  handler : 'a -> unit;
  smu : Mutex.t;
  nonempty : Condition.t;  (* signalled on submit and on shutdown *)
  all_done : Condition.t;  (* broadcast when queue empty and inflight 0 *)
  q : 'a Queue.t;
  queue_cap : int;
  mutable inflight : int;
  mutable stopping : bool;
  mutable joined : bool;
  mutable doms : unit Domain.t array;
}

let service_worker svc () =
  Domain.DLS.set in_worker true;
  let finally () = Domain.DLS.set in_worker false in
  Fun.protect ~finally @@ fun () ->
  let rec loop () =
    Mutex.lock svc.smu;
    let rec await () =
      if not (Queue.is_empty svc.q) then begin
        let item = Queue.pop svc.q in
        svc.inflight <- svc.inflight + 1;
        Mutex.unlock svc.smu;
        let settle () =
          Mutex.lock svc.smu;
          svc.inflight <- svc.inflight - 1;
          if svc.inflight = 0 && Queue.is_empty svc.q then
            Condition.broadcast svc.all_done;
          Mutex.unlock svc.smu
        in
        (* the handler owns its own error reporting (a serve worker always
           answers with a typed error line); this catch-all is the backstop
           that keeps a worker domain alive across anything else. Fatal
           runtime conditions still kill the worker, but only after the
           inflight count is settled so {!shutdown} cannot hang. *)
        (match svc.handler item with
         | () -> ()
         | exception ((Stack_overflow | Out_of_memory) as e) ->
           settle ();
           raise e
         | exception _ -> Obs.incr (svc.name ^ ".task_errors"));
        settle ();
        loop ()
      end
      else if svc.stopping then Mutex.unlock svc.smu
      else begin
        Condition.wait svc.nonempty svc.smu;
        await ()
      end
    in
    await ()
  in
  loop ()

let service ?workers ?(queue_cap = max_int) ~name handler =
  let workers =
    match workers with
    | Some w -> max 1 (min 128 w)
    | None -> max 1 (min 128 (recommended ()))
  in
  let svc =
    { name; handler; smu = Mutex.create (); nonempty = Condition.create ();
      all_done = Condition.create (); q = Queue.create ();
      queue_cap = max 0 queue_cap; inflight = 0; stopping = false;
      joined = false; doms = [||] }
  in
  svc.doms <- Array.init workers (fun _ -> Domain.spawn (service_worker svc));
  svc

let submit svc item =
  Mutex.lock svc.smu;
  if svc.stopping || Queue.length svc.q >= svc.queue_cap then begin
    Mutex.unlock svc.smu;
    false
  end
  else begin
    Queue.push item svc.q;
    let depth = Queue.length svc.q in
    Condition.signal svc.nonempty;
    Mutex.unlock svc.smu;
    if Obs.enabled () then
      Obs.sample (svc.name ^ ".queue_depth") (float_of_int depth);
    true
  end

let service_depth svc = Mutex.protect svc.smu (fun () -> Queue.length svc.q)

let service_outstanding svc =
  Mutex.protect svc.smu (fun () -> Queue.length svc.q + svc.inflight)

let service_workers svc = Array.length svc.doms

let shutdown ?(drain = true) svc =
  Mutex.lock svc.smu;
  if svc.joined then Mutex.unlock svc.smu
  else begin
    if not drain then begin
      Obs.add (svc.name ^ ".dropped") (Queue.length svc.q);
      Queue.clear svc.q
    end;
    svc.stopping <- true;
    Condition.broadcast svc.nonempty;
    while not (Queue.is_empty svc.q && svc.inflight = 0) do
      Condition.wait svc.all_done svc.smu
    done;
    svc.joined <- true;
    Mutex.unlock svc.smu;
    Array.iter Domain.join svc.doms
  end
