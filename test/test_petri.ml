(* Tests for timed event graphs and the maximum-cycle-ratio solvers.
   The three solvers (Howard, parametric, Karp) plus the operational token
   game are validated against each other on random live nets. *)

open Rwt_util
module P = Rwt_petri
module D = Rwt_graph.Digraph
module E = P.Mcr.Exact

let qtest = QCheck_alcotest.to_alcotest

let tr name firing = { P.Tpn.tr_name = name; firing }

(* --- hand-built nets --- *)

let single_loop () =
  let net = P.Tpn.create [| tr "t" (Rat.of_int 5) |] in
  P.Tpn.add_place net ~src:0 ~dst:0 ~tokens:1;
  net

let two_circuits () =
  (* circuit A: t0 → t1 → t0, times 4 + 6, 1 token: ratio 10
     circuit B: t1 → t2 → t1, times 6 + 12, 2 tokens: ratio 9 *)
  let net =
    P.Tpn.create [| tr "t0" (Rat.of_int 4); tr "t1" (Rat.of_int 6); tr "t2" (Rat.of_int 12) |]
  in
  P.Tpn.add_place net ~src:0 ~dst:1 ~tokens:0;
  P.Tpn.add_place net ~src:1 ~dst:0 ~tokens:1;
  P.Tpn.add_place net ~src:1 ~dst:2 ~tokens:1;
  P.Tpn.add_place net ~src:2 ~dst:1 ~tokens:1;
  net

let tpn_basics () =
  let net = two_circuits () in
  Alcotest.(check int) "transitions" 3 (P.Tpn.num_transitions net);
  Alcotest.(check int) "places" 4 (P.Tpn.num_places net);
  Alcotest.(check int) "tokens" 3 (P.Tpn.total_tokens net);
  Alcotest.(check bool) "live" true (P.Tpn.liveness net = P.Tpn.Live);
  Alcotest.check_raises "negative firing"
    (Invalid_argument "Tpn.create: negative firing time") (fun () ->
      ignore (P.Tpn.create [| tr "bad" (Rat.of_int (-1)) |]));
  Alcotest.check_raises "negative tokens"
    (Invalid_argument "Tpn.add_place: negative marking") (fun () ->
      P.Tpn.add_place net ~src:0 ~dst:1 ~tokens:(-1))

let liveness_detects_dead_cycle () =
  let net = P.Tpn.create [| tr "a" Rat.one; tr "b" Rat.one |] in
  P.Tpn.add_place net ~src:0 ~dst:1 ~tokens:0;
  P.Tpn.add_place net ~src:1 ~dst:0 ~tokens:0;
  match P.Tpn.liveness net with
  | P.Tpn.Live -> Alcotest.fail "should be dead"
  | P.Tpn.Dead_cycle c -> Alcotest.(check int) "witness length" 2 (List.length c)

let known_ratios () =
  (match P.Mcr.period_of_tpn (single_loop ()) with
   | Some w -> Alcotest.(check string) "self loop" "5" (Rat.to_string w.E.ratio)
   | None -> Alcotest.fail "no cycle found");
  match P.Mcr.period_of_tpn (two_circuits ()) with
  | Some w ->
    Alcotest.(check string) "two circuits" "10" (Rat.to_string w.E.ratio);
    (* the witness cycle must be checkable and have the same ratio *)
    let g = P.Mcr.graph_of_tpn (two_circuits ()) in
    Alcotest.(check string) "witness ratio" "10" (Rat.to_string (E.cycle_ratio g w.E.cycle))
  | None -> Alcotest.fail "no cycle found"

let acyclic_has_no_period () =
  let net = P.Tpn.create [| tr "a" Rat.one; tr "b" Rat.one |] in
  P.Tpn.add_place net ~src:0 ~dst:1 ~tokens:1;
  Alcotest.(check bool) "acyclic" true (P.Mcr.period_of_tpn net = None)

let not_live_raises () =
  let g = D.create 2 in
  ignore (D.add_edge g 0 1 { E.weight = Rat.one; tokens = 0 });
  ignore (D.add_edge g 1 0 { E.weight = Rat.one; tokens = 0 });
  (try
     ignore (E.max_cycle_ratio g);
     Alcotest.fail "expected Not_live"
   with E.Not_live c -> Alcotest.(check int) "witness" 2 (List.length c))

(* --- random live ratio graphs ---
   Liveness by construction: edges that go backward w.r.t. a random node
   order carry at least one token, so every cycle is marked. *)
let random_live_graph seed =
  let r = Prng.create seed in
  let n = Prng.int_in r 2 10 in
  let g = D.create n in
  let order = Array.init n (fun i -> i) in
  Prng.shuffle r order;
  let rank = Array.make n 0 in
  Array.iteri (fun i u -> rank.(u) <- i) order;
  let m = Prng.int_in r n (4 * n) in
  for _ = 1 to m do
    let u = Prng.int r n and v = Prng.int r n in
    let tokens =
      if rank.(v) <= rank.(u) then Prng.int_in r 1 2
      else if Prng.int r 3 = 0 then 1
      else 0
    in
    let weight = Rat.of_ints (Prng.int_in r 0 50) (Prng.int_in r 1 4) in
    ignore (D.add_edge g u v { E.weight; tokens })
  done;
  (* make sure at least one cycle exists *)
  ignore (D.add_edge g 0 0 { E.weight = Rat.of_int 1; tokens = 1 });
  g

let solvers_agree =
  QCheck.Test.make ~count:400 ~name:"howard = parametric on random live graphs"
    QCheck.small_nat (fun seed ->
      let g = random_live_graph seed in
      match (E.howard g, E.parametric g) with
      | Some h, Some p -> Rat.equal h.E.ratio p.E.ratio
      | None, None -> true
      | _ -> false)

let lawler_within_epsilon =
  QCheck.Test.make ~count:200 ~name:"lawler within epsilon below howard"
    QCheck.small_nat (fun seed ->
      let g = random_live_graph (seed + 5000) in
      let eps = Rat.of_ints 1 1000 in
      match (E.howard g, E.lawler ~epsilon:eps g) with
      | Some h, Some l ->
        Rat.compare l.E.ratio h.E.ratio <= 0
        && Rat.compare (Rat.sub h.E.ratio l.E.ratio) eps <= 0
        (* and the witness is a genuine cycle achieving the reported ratio *)
        && Rat.equal (E.cycle_ratio g l.E.cycle) l.E.ratio
      | None, None -> true
      | _ -> false)

let witness_achieves_ratio =
  QCheck.Test.make ~count:400 ~name:"witness cycle achieves the reported ratio"
    QCheck.small_nat (fun seed ->
      let g = random_live_graph seed in
      match E.max_cycle_ratio g with
      | None -> true
      | Some w -> Rat.equal (E.cycle_ratio g w.E.cycle) w.E.ratio)

let karp_is_unit_token_special_case =
  QCheck.Test.make ~count:300 ~name:"karp = howard when all tokens are 1"
    QCheck.small_nat (fun seed ->
      let r = Prng.create seed in
      let n = Prng.int_in r 2 8 in
      let g = D.create n in
      let gw = D.create n in
      let m = Prng.int_in r n (3 * n) in
      for _ = 1 to m do
        let u = Prng.int r n and v = Prng.int r n in
        let w = Rat.of_int (Prng.int_in r 0 30) in
        ignore (D.add_edge g u v { E.weight = w; tokens = 1 });
        ignore (D.add_edge gw u v w)
      done;
      match (E.howard g, E.karp gw) with
      | Some h, Some k -> Rat.equal h.E.ratio k
      | None, None -> true
      | _ -> false)

(* brute force over simple cycles as an oracle for small graphs *)
let brute_force_mcr g =
  let n = D.num_nodes g in
  let best = ref None in
  let rec dfs start u visited w t edges =
    List.iter
      (fun e ->
        let v = e.D.dst in
        let w' = Rat.add w e.D.label.E.weight and t' = t + e.D.label.E.tokens in
        if v = start then begin
          if t' > 0 then begin
            let r = Rat.div w' (Rat.of_int t') in
            match !best with
            | None -> best := Some r
            | Some b -> if Rat.compare r b > 0 then best := Some r
          end
        end
        else if (not visited.(v)) && v > start then begin
          visited.(v) <- true;
          dfs start v visited w' t' (e.D.id :: edges);
          visited.(v) <- false
        end)
      (D.out_edges g u)
  in
  for s = 0 to n - 1 do
    let visited = Array.make n false in
    visited.(s) <- true;
    dfs s s visited Rat.zero 0 []
  done;
  !best

let howard_matches_brute_force =
  QCheck.Test.make ~count:200 ~name:"howard = brute force on small graphs"
    QCheck.small_nat (fun seed ->
      let r = Prng.create (seed + 90000) in
      let n = Prng.int_in r 2 6 in
      let g = D.create n in
      let order = Array.init n (fun i -> i) in
      Prng.shuffle r order;
      let rank = Array.make n 0 in
      Array.iteri (fun i u -> rank.(u) <- i) order;
      for _ = 1 to Prng.int_in r 2 (3 * n) do
        let u = Prng.int r n and v = Prng.int r n in
        let tokens = if rank.(v) <= rank.(u) then 1 else if Prng.int r 3 = 0 then 1 else 0 in
        ignore
          (D.add_edge g u v { E.weight = Rat.of_int (Prng.int_in r 0 20); tokens })
      done;
      match (E.howard g, brute_force_mcr g) with
      | Some h, Some b -> Rat.equal h.E.ratio b
      | None, None -> true
      | _ -> false)

(* --- solver regressions on adversarial numeric kernels ---

   The solvers are functorized over the numeric kernel precisely so that
   invariants provable for exact arithmetic can be probed where they break:
   a kernel with a lossy multiply makes Lawler's feasibility oracle
   inconsistent with its bracket, and a kernel whose [add] drifts between
   calls breaks the Bellman–Ford pass-n ⟹ predecessor-cycle theorem. *)

(* [mul] systematically undershoots: reduced weights w − λ·t come out
   inflated by 1e-3, so the positive-cycle oracle says "feasible" for λ
   slightly above the true optimum and Lawler's lower bound can end on a
   bisection midpoint that is no cycle's ratio. *)
module Lossy_mul = struct
  type t = float

  let zero = 0.0
  let one = 1.0
  let of_int = float_of_int
  let add = ( +. )
  let sub = ( -. )
  let mul a b = (a *. b) -. 1e-3
  let div = ( /. )
  let neg x = -.x
  let compare = Float.compare
  let equal = Float.equal
  let min = Float.min
  let max = Float.max
  let to_float x = x
  let pp fmt x = Format.fprintf fmt "%g" x
end

module LK = P.Mcr.Make (Lossy_mul)

let lawler_returns_witness_ratio () =
  (* 3-cycle of ratio exactly 1/3; [cycle_ratio] only uses the kernel's
     (here exact) add/div, so the invariant below is checkable despite the
     lossy mul. Before the fix, lawler reported a bisection midpoint
     ~5e-4 above the witness cycle's own ratio. *)
  let g = D.create 3 in
  let e w src dst = ignore (D.add_edge g src dst { LK.weight = w; tokens = 1 }) in
  e 0.25 0 1;
  e 0.25 1 2;
  e 0.5 2 0;
  match LK.lawler ~epsilon:1e-6 g with
  | None -> Alcotest.fail "3-cycle must have a ratio"
  | Some w ->
    Alcotest.(check (float 1e-9))
      "reported ratio is the witness cycle's own ratio"
      (LK.cycle_ratio g w.LK.cycle)
      w.LK.ratio

(* [add] drifts upward with every call: a node whose true reduced distance
   never improves can still be "relaxed" in the final pass, and its
   predecessor chain dead-ends at an unrelaxed node. Before the guard, the
   walk silently treated the nil predecessor as node 0 and fabricated a
   cycle that does not beat λ at all. *)
module Drifting_add = struct
  type t = float

  let calls = ref 0
  let zero = 0.0
  let one = 1.0
  let of_int = float_of_int

  let add a b =
    incr calls;
    a +. b +. (0.03 *. float_of_int !calls)

  let sub = ( -. )
  let mul = ( *. )
  let div = ( /. )
  let neg x = -.x
  let compare = Float.compare
  let equal = Float.equal
  let min = Float.min
  let max = Float.max
  let to_float x = x
  let pp fmt x = Format.fprintf fmt "%g" x
end

module DK = P.Mcr.Make (Drifting_add)

let pred_walk_guard () =
  Drifting_add.calls := 0;
  (* one SCC; at λ = 1 every cycle has ratio ≤ 1 (the 0↔1 churn cycle has
     ratio exactly 1), so a sound answer is either None or a cycle whose
     TRUE ratio — recomputed below with honest floats — exceeds 1. The
     drift makes edge 5 (3→2) relax in the final pass with pred(3) = -1. *)
  let g = D.create 4 in
  let e w t src dst = ignore (D.add_edge g src dst { DK.weight = w; tokens = t }) in
  e 1.1 1 0 1;
  e 0.9 1 1 0;
  e 0.0 5 1 2;
  e 0.0 5 2 3;
  e 0.0 5 3 0;
  e 0.5 1 3 2;
  let true_w = [| 1.1; 0.9; 0.0; 0.0; 0.0; 0.5 |] in
  let true_t = [| 1; 1; 5; 5; 5; 1 |] in
  match DK.positive_cycle g 1.0 with
  | None -> () (* degraded walk (or honest convergence): sound either way *)
  | Some cyc ->
    let sw = List.fold_left (fun a i -> a +. true_w.(i)) 0.0 cyc in
    let st = List.fold_left (fun a i -> a + true_t.(i)) 0 cyc in
    Alcotest.(check bool)
      (Printf.sprintf "reported cycle ratio %g must exceed lambda = 1"
         (sw /. float_of_int st))
      true
      (sw /. float_of_int st > 1.0)

(* --- float-screened solve and pooled SCC fan-out --- *)

let screened_matches_exact =
  QCheck.Test.make ~count:300 ~name:"float-screened solve = pure exact howard"
    QCheck.small_nat (fun seed ->
      let g = random_live_graph (seed + 31000) in
      match (P.Mcr.solve_screened g, E.howard g) with
      | Some s, Some h ->
        Rat.equal s.E.ratio h.E.ratio && Rat.equal (E.cycle_ratio g s.E.cycle) s.E.ratio
      | None, None -> true
      | _ -> false)

let screen_toggle_agrees =
  QCheck.Test.make ~count:100 ~name:"solve_exact identical with screen on and off"
    QCheck.small_nat (fun seed ->
      let g = random_live_graph (seed + 32000) in
      let saved = !P.Mcr.screen_enabled in
      P.Mcr.screen_enabled := false;
      let off = P.Mcr.solve_exact g in
      P.Mcr.screen_enabled := true;
      let on = P.Mcr.solve_exact g in
      P.Mcr.screen_enabled := saved;
      match (off, on) with
      | Some a, Some b -> Rat.equal a.E.ratio b.E.ratio
      | None, None -> true
      | _ -> false)

let pooled_sccs_deterministic =
  QCheck.Test.make ~count:50 ~name:"pooled SCC solve is witness-identical to serial"
    QCheck.small_nat (fun seed ->
      let g = random_live_graph (seed + 77000) in
      let saved_thresh = !P.Mcr.scc_parallel_threshold in
      let saved_workers = !Rwt_pool.default_workers in
      P.Mcr.scc_parallel_threshold := max_int;
      let serial = P.Mcr.solve_screened g in
      P.Mcr.scc_parallel_threshold := 0;
      Rwt_pool.default_workers := 4;
      (* force real domains even on a 1-core container *)
      let pooled = P.Mcr.solve_screened g in
      P.Mcr.scc_parallel_threshold := saved_thresh;
      Rwt_pool.default_workers := saved_workers;
      match (serial, pooled) with
      | Some a, Some b -> Rat.equal a.E.ratio b.E.ratio && a.E.cycle = b.E.cycle
      | None, None -> true
      | _ -> false)

(* smoke variant of `make mcr-bench`: the three production configurations
   of [solve_exact] must agree on a small many-SCC graph *)
let mcr_bench_smoke () =
  let r = Prng.create 7 in
  let blocks = 3 and size = 8 in
  let g = D.create (blocks * size) in
  for b = 0 to blocks - 1 do
    let base = b * size in
    for i = 0 to size - 1 do
      let w = Rat.of_ints (Prng.int_in r 1 999) (Prng.int_in r 1 999) in
      let dst = (i + 1) mod size in
      ignore
        (D.add_edge g (base + i) (base + dst)
           { E.weight = w; tokens = (if dst = 0 then 1 else 0) })
    done
  done;
  let saved_screen = !P.Mcr.screen_enabled in
  let saved_thresh = !P.Mcr.scc_parallel_threshold in
  P.Mcr.screen_enabled := false;
  P.Mcr.scc_parallel_threshold := max_int;
  let exact = P.Mcr.solve_exact g in
  P.Mcr.screen_enabled := true;
  let screened = P.Mcr.solve_exact g in
  P.Mcr.scc_parallel_threshold := 0;
  let pooled = P.Mcr.solve_exact g in
  P.Mcr.screen_enabled := saved_screen;
  P.Mcr.scc_parallel_threshold := saved_thresh;
  match (exact, screened, pooled) with
  | Some a, Some b, Some c ->
    Alcotest.(check string) "screened = exact" (Rat.to_string a.E.ratio)
      (Rat.to_string b.E.ratio);
    Alcotest.(check string) "pooled = exact" (Rat.to_string a.E.ratio)
      (Rat.to_string c.E.ratio)
  | _ -> Alcotest.fail "all three paths must find the ring cycles"

(* --- optimality certificates --- *)

let certificate_valid =
  QCheck.Test.make ~count:250 ~name:"generated certificates always check"
    QCheck.small_nat (fun seed ->
      let g = random_live_graph (seed + 60000) in
      match P.Certificate.make g with
      | None -> false (* random_live_graph always has a cycle *)
      | Some cert -> P.Certificate.check g cert = Ok ())

let certificate_rejects_tampering =
  QCheck.Test.make ~count:150 ~name:"tampered certificates are rejected"
    QCheck.small_nat (fun seed ->
      let g = random_live_graph (seed + 61000) in
      match P.Certificate.make g with
      | None -> false
      | Some cert ->
        (* lowering lambda must break some edge inequality or the witness *)
        let lowered =
          { cert with P.Certificate.lambda = Rat.sub cert.P.Certificate.lambda Rat.one }
        in
        P.Certificate.check g lowered <> Ok ())

let certificate_example_a () =
  let net = Rwt_core.Tpn_build.build_exn Rwt_workflow.Comm_model.Strict
      (Rwt_workflow.Instances.example_a ()) in
  let g = P.Mcr.graph_of_tpn net.Rwt_core.Tpn_build.tpn in
  match P.Certificate.make g with
  | None -> Alcotest.fail "no certificate"
  | Some cert ->
    Alcotest.(check string) "lambda = 1384 (6 data sets at 230.67)" "1384"
      (Rat.to_string cert.P.Certificate.lambda);
    Alcotest.(check bool) "checks" true (P.Certificate.check g cert = Ok ());
    Alcotest.(check bool) "json renders" true
      (String.length (P.Certificate.to_json cert) > 0)

(* --- 1-bounded expansion --- *)

let expansion_preserves_ratio =
  QCheck.Test.make ~count:200 ~name:"multi-token expansion preserves the period"
    QCheck.small_nat (fun seed ->
      let r = Prng.create (seed + 4242) in
      let n = Prng.int_in r 2 7 in
      let trs = Array.init n (fun i -> tr (Printf.sprintf "t%d" i) (Rat.of_int (Prng.int_in r 1 20))) in
      let net = P.Tpn.create trs in
      for i = 0 to n - 1 do
        P.Tpn.add_place net ~src:i ~dst:((i + 1) mod n) ~tokens:(Prng.int_in r 1 4)
      done;
      for _ = 1 to Prng.int r (2 * n) do
        let u = Prng.int r n and v = Prng.int r n in
        let tokens = if v <= u then Prng.int_in r 1 3 else if Prng.int r 3 = 0 then 1 else 0 in
        P.Tpn.add_place net ~src:u ~dst:v ~tokens
      done;
      let expanded = P.Expand.one_bounded_exn net in
      P.Expand.is_one_bounded expanded
      && P.Tpn.total_tokens expanded = P.Tpn.total_tokens net
      &&
      match (P.Mcr.period_of_tpn net, P.Mcr.period_of_tpn expanded) with
      | Some a, Some b -> Rat.equal a.E.ratio b.E.ratio
      | None, None -> true
      | _ -> false)

let expansion_enables_spectral =
  QCheck.Test.make ~count:100 ~name:"spectral works on expanded multi-token nets"
    QCheck.small_nat (fun seed ->
      let r = Prng.create (seed + 777000) in
      let n = Prng.int_in r 2 6 in
      let trs = Array.init n (fun i -> tr (Printf.sprintf "t%d" i) (Rat.of_int (Prng.int_in r 1 15))) in
      let net = P.Tpn.create trs in
      for i = 0 to n - 1 do
        P.Tpn.add_place net ~src:i ~dst:((i + 1) mod n) ~tokens:(Prng.int_in r 1 3)
      done;
      let expanded = P.Expand.one_bounded_exn net in
      match (Rwt_maxplus.Spectral.period_of_tpn expanded, P.Mcr.period_of_tpn net) with
      | Some s, Some w -> Rat.equal s w.E.ratio
      | None, None -> true
      | _ -> false)

let expansion_identity_when_bounded () =
  let net = two_circuits () in
  let e = P.Expand.one_bounded_exn net in
  Alcotest.(check int) "same transitions" (P.Tpn.num_transitions net) (P.Tpn.num_transitions e);
  Alcotest.(check int) "same places" (P.Tpn.num_places net) (P.Tpn.num_places e)

(* --- token game --- *)

let token_game_slope_converges =
  QCheck.Test.make ~count:120 ~name:"token game rate = max cycle ratio"
    QCheck.small_nat (fun seed ->
      let r = Prng.create (seed + 1234) in
      (* build a random live TPN: transitions with rational firings, plus
         backward-token trick for liveness; ensure every transition is on a
         cycle by threading a global marked ring *)
      let n = Prng.int_in r 2 8 in
      let trs =
        Array.init n (fun i ->
            tr (Printf.sprintf "t%d" i) (Rat.of_ints (Prng.int_in r 1 20) (Prng.int_in r 1 3)))
      in
      let net = P.Tpn.create trs in
      for i = 0 to n - 1 do
        P.Tpn.add_place net ~src:i ~dst:((i + 1) mod n) ~tokens:1
      done;
      for _ = 1 to Prng.int_in r 0 (2 * n) do
        let u = Prng.int r n and v = Prng.int r n in
        let tokens = if v <= u then 1 else if Prng.int r 3 = 0 then 1 else 0 in
        P.Tpn.add_place net ~src:u ~dst:v ~tokens
      done;
      match P.Mcr.period_of_tpn net with
      | None -> false (* the ring ensures a cycle exists *)
      | Some w ->
        (match P.Token_game.exact_period net ~max_k:600 () with
         | Some p -> Rat.equal p w.E.ratio
         | None ->
           (* periodic regime not detected in horizon: accept if the slope
              estimate is already close *)
           let est = P.Token_game.estimate_period net ~k:600 in
           abs_float (Rat.to_float est -. Rat.to_float w.E.ratio)
           < 0.05 *. (1. +. abs_float (Rat.to_float w.E.ratio))))

let token_game_daters_monotone =
  QCheck.Test.make ~count:100 ~name:"daters are nondecreasing in k"
    QCheck.small_nat (fun seed ->
      let r = Prng.create (seed + 777) in
      let n = Prng.int_in r 2 6 in
      let trs = Array.init n (fun i -> tr (Printf.sprintf "t%d" i) (Rat.of_int (Prng.int_in r 1 9))) in
      let net = P.Tpn.create trs in
      for i = 0 to n - 1 do
        P.Tpn.add_place net ~src:i ~dst:((i + 1) mod n) ~tokens:1
      done;
      let x = P.Token_game.daters net 50 in
      let ok = ref true in
      for t = 0 to n - 1 do
        for k = 1 to 49 do
          if Rat.compare x.(t).(k) x.(t).(k - 1) < 0 then ok := false
        done
      done;
      !ok)

let token_game_rejects_dead () =
  let net = P.Tpn.create [| tr "a" Rat.one; tr "b" Rat.one |] in
  P.Tpn.add_place net ~src:0 ~dst:1 ~tokens:0;
  P.Tpn.add_place net ~src:1 ~dst:0 ~tokens:0;
  Alcotest.check_raises "deadlock"
    (Failure "Token_game.daters: net has a token-free circuit") (fun () ->
      ignore (P.Token_game.daters net 5))

let pnml_export () =
  let net = two_circuits () in
  let xml = Rwt_petri.Pnml.to_string ~net_id:"two<circuits>" net in
  let count needle =
    let ln = String.length needle in
    let c = ref 0 in
    for i = 0 to String.length xml - ln do
      if String.sub xml i ln = needle then incr c
    done;
    !c
  in
  Alcotest.(check int) "3 transitions" 3 (count "<transition id=");
  Alcotest.(check int) "4 places" 4 (count "<place id=");
  Alcotest.(check int) "8 arcs" 8 (count "<arc id=");
  Alcotest.(check int) "3 marked places" 3 (count "<initialMarking>");
  Alcotest.(check int) "net id escaped" 1 (count "two&lt;circuits&gt;");
  Alcotest.(check int) "firing times attached" 3 (count "<firingTime>")

let dot_export () =
  let s = P.Tpn.to_dot (two_circuits ()) in
  Alcotest.(check bool) "mentions t2" true
    (let rec contains i =
       i + 2 <= String.length s && (String.sub s i 2 = "t2" || contains (i + 1))
     in
     contains 0)

let () =
  Alcotest.run "rwt_petri"
    [ ( "tpn",
        [ Alcotest.test_case "basics" `Quick tpn_basics;
          Alcotest.test_case "dead cycle" `Quick liveness_detects_dead_cycle;
          Alcotest.test_case "dot" `Quick dot_export;
          Alcotest.test_case "pnml" `Quick pnml_export ] );
      ( "mcr",
        [ Alcotest.test_case "known ratios" `Quick known_ratios;
          Alcotest.test_case "acyclic" `Quick acyclic_has_no_period;
          Alcotest.test_case "not live" `Quick not_live_raises;
          qtest solvers_agree; qtest lawler_within_epsilon; qtest witness_achieves_ratio;
          qtest karp_is_unit_token_special_case; qtest howard_matches_brute_force ] );
      ( "solver regressions",
        [ Alcotest.test_case "lawler returns its witness's ratio" `Quick
            lawler_returns_witness_ratio;
          Alcotest.test_case "pred walk guarded against nil predecessors" `Quick
            pred_walk_guard ] );
      ( "screened solve",
        [ qtest screened_matches_exact; qtest screen_toggle_agrees;
          qtest pooled_sccs_deterministic;
          Alcotest.test_case "mcr bench smoke" `Quick mcr_bench_smoke ] );
      ( "certificate",
        [ qtest certificate_valid; qtest certificate_rejects_tampering;
          Alcotest.test_case "example A strict" `Quick certificate_example_a ] );
      ( "expansion",
        [ qtest expansion_preserves_ratio; qtest expansion_enables_spectral;
          Alcotest.test_case "identity on 1-bounded" `Quick expansion_identity_when_bounded ] );
      ( "token game",
        [ qtest token_game_slope_converges; qtest token_game_daters_monotone;
          Alcotest.test_case "deadlock" `Quick token_game_rejects_dead ] ) ]
