(** Gantt-chart rendering of simulated schedules (the paper's Figures 7
    and 12), as plain text.

    Rows are resource units: under OVERLAP each processor contributes up to
    three rows ([P2-in], [P2], [P2-out]); under STRICT a single row carries
    its receives, computation and sends. *)

val rows : Schedule.t -> (string * Schedule.event list) list
(** Events per resource unit, each list sorted by start time. Unit order:
    processor id, then in / compute / out. *)

val to_ascii :
  ?width:int -> ?from_dataset:int -> ?until_dataset:int -> Schedule.t -> string
(** Scaled bar chart ([width] columns of timeline, default 100): ['#'] for
    computation, ['='] for transfers, with [S<i>(<d>)] / [F<i>(<d>)] labels
    embedded where space allows. The window spans the selected data sets
    (defaults: all). *)

val to_text :
  ?from_dataset:int -> ?until_dataset:int -> Schedule.t -> string
(** Exact textual listing: one line per resource unit, events with their
    rational [\[start, finish)] intervals. *)
