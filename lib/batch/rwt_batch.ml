open Rwt_util
open Rwt_workflow
module Analysis = Rwt_core.Analysis
module Obs = Rwt_obs

(* --- jobs --- *)

type spec = File of string | Inline of Instance.t

type job = {
  index : int;
  id : string option;
  spec : spec;
  model : Comm_model.t;
  method_ : Analysis.method_;
}

let job ?id ?(model = Comm_model.Overlap) ?(method_ = Analysis.Auto) ~index spec =
  { index; id; spec; model; method_ }

let method_to_string = function
  | Analysis.Auto -> "auto"
  | Analysis.Tpn -> "tpn"
  | Analysis.Poly -> "poly"

let method_of_string = function
  | "auto" -> Some Analysis.Auto
  | "tpn" -> Some Analysis.Tpn
  | "poly" -> Some Analysis.Poly
  | _ -> None

(* --- job-file parsing --- *)

let jobs_err ~lineno msg =
  Rwt_err.parse ~code:"parse.jobs" ~line:lineno msg

let parse_job_line ~index ~lineno line =
  (* '[' is accepted into the JSON branch only to reject it with a clear
     "expected an object" error instead of treating it as a file path *)
  if String.length line > 0 && (line.[0] = '{' || line.[0] = '[') then
    match Json.of_string_pos line with
    | Error e ->
      (* the job line is one line of the job file: its line number is the
         job-file line, the JSON position contributes the column *)
      Error
        (Rwt_err.parse ~code:"parse.jobs" ~line:lineno ~col:e.Json.col
           ~context:[ ("offset", string_of_int e.Json.offset) ]
           (Printf.sprintf "bad JSON: %s" e.Json.reason))
    | Ok (Json.Obj fields) ->
      let exception Bad of string in
      (try
         let file = ref None and id = ref None in
         let model = ref Comm_model.Overlap and method_ = ref Analysis.Auto in
         List.iter
           (fun (k, v) ->
             match (k, v) with
             | "file", Json.String s -> file := Some s
             | "id", Json.String s -> id := Some s
             | "model", Json.String s ->
               (match Comm_model.of_string s with
                | Some m -> model := m
                | None -> raise (Bad (Printf.sprintf "unknown model %S" s)))
             | "method", Json.String s ->
               (match method_of_string s with
                | Some m -> method_ := m
                | None -> raise (Bad (Printf.sprintf "unknown method %S" s)))
             | ("file" | "id" | "model" | "method"), _ ->
               raise (Bad (Printf.sprintf "key %S expects a string" k))
             | k, _ -> raise (Bad (Printf.sprintf "unknown key %S" k)))
           fields;
         match !file with
         | None -> raise (Bad "missing key \"file\"")
         | Some path ->
           Ok { index; id = !id; spec = File path; model = !model; method_ = !method_ }
       with Bad msg -> Error (jobs_err ~lineno msg))
    | Ok _ -> Error (jobs_err ~lineno "expected a JSON object")
  else Ok (job ~index (File line))

let parse_jobs contents =
  let exception Fail of Rwt_err.t in
  try
    let jobs = ref [] and index = ref 0 in
    List.iteri
      (fun i line ->
        let line = String.trim line in
        if line <> "" && line.[0] <> '#' then begin
          (match parse_job_line ~index:!index ~lineno:(i + 1) line with
           | Ok j -> jobs := j :: !jobs
           | Error e -> raise (Fail e));
          incr index
        end)
      (String.split_on_char '\n' contents);
    Ok (List.rev !jobs)
  with Fail e -> Error e

(* --- outcomes --- *)

type status = Done | Failed of Rwt_err.t | Timed_out

type outcome = {
  job : job;
  status : status;
  instance_name : string option;
  period : Rat.t option;
  m : int option;
  n_stages : int option;
  n_resources : int option;
  cache_hit : bool;
  wall_s : float;
}

let outcome_to_json ?(timing = true) o =
  let opt k f v = match v with None -> [] | Some x -> [ (k, f x) ] in
  let base =
    ("job", Json.Int o.job.index)
    :: (opt "id" (fun s -> Json.String s) o.job.id
        @ (match o.job.spec with
           | File p -> [ ("file", Json.String p) ]
           | Inline _ -> [])
        @ opt "instance" (fun s -> Json.String s) o.instance_name
        @ [ ("model", Json.String (Comm_model.to_string o.job.model));
            ("method", Json.String (method_to_string o.job.method_)) ])
  in
  let status =
    match o.status with
    | Done -> [ ("status", Json.String "ok") ]
    | Failed e ->
      [ ("status", Json.String "error");
        ("error", Json.String (Rwt_err.to_line e));
        ("error_class", Json.String (Rwt_err.class_name e.Rwt_err.class_));
        ("error_code", Json.String e.Rwt_err.code) ]
    | Timed_out -> [ ("status", Json.String "timeout") ]
  in
  let result =
    opt "period" (fun p -> Json.String (Rat.to_string p)) o.period
    @ opt "period_float" (fun p -> Json.Float (Rat.to_float p)) o.period
    @ opt "throughput_float"
        (fun p -> Json.Float (Rat.to_float (Rat.inv p)))
        (match o.period with Some p when not (Rat.is_zero p) -> Some p | _ -> None)
  in
  (* deterministic per-job snapshot: instance shape, never wall time *)
  let metrics =
    match (o.m, o.n_stages, o.n_resources) with
    | Some m, Some n, Some r ->
      [ ("metrics",
         Json.Obj
           [ ("m", Json.Int m); ("stages", Json.Int n); ("resources", Json.Int r) ]) ]
    | _ -> []
  in
  let cache = [ ("cache", Json.String (if o.cache_hit then "hit" else "miss")) ] in
  let timing = if timing then [ ("wall_s", Json.Float o.wall_s) ] else [] in
  Json.Obj (base @ status @ result @ metrics @ cache @ timing)

type summary = {
  total : int;
  ok : int;
  errors : int;
  timeouts : int;
  cache_hits : int;
  resumed : int;
  retried : int;
  workers : int;
  elapsed_s : float;
}

let pp_summary fmt s =
  Format.fprintf fmt "%d job%s: %d ok, %d error%s, %d timeout%s; %d cache hit%s (workers %d)"
    s.total
    (if s.total = 1 then "" else "s")
    s.ok s.errors
    (if s.errors = 1 then "" else "s")
    s.timeouts
    (if s.timeouts = 1 then "" else "s")
    s.cache_hits
    (if s.cache_hits = 1 then "" else "s")
    s.workers;
  if s.resumed > 0 then Format.fprintf fmt ", %d resumed" s.resumed;
  if s.retried > 0 then Format.fprintf fmt ", %d retried" s.retried

(* --- evaluation --- *)

let now = Unix.gettimeofday

(* canonical memo key: the instance's canonical serialization with the
   name stripped, so identical content under different names or paths
   shares one evaluation; model and method are part of the key *)
let canonical_key inst model method_ =
  let anon =
    Instance.create_exn ~name:"" ~pipeline:inst.Instance.pipeline
      ~platform:inst.Instance.platform ~mapping:inst.Instance.mapping
  in
  Printf.sprintf "%s|%s|%s" (Format_io.to_string anon) (Comm_model.to_string model)
    (method_to_string method_)

let load_spec = function
  | Inline inst -> Ok inst
  | File path -> Format_io.load path

(* one job, already loaded; [deadline] is absolute. It is checked here at
   the job checkpoints and threaded as a cooperative closure into the
   solvers (Mcr iteration loops poll it), so a budget can fire inside a
   long-running solve, not only between pipeline stages. *)
let eval_loaded ?deadline ?transition_cap (j : job) inst =
  Obs.with_span "batch.job" @@ fun () ->
  let start = now () in
  let shape =
    ( Some inst.Instance.name,
      Some (Mapping.num_paths inst.Instance.mapping),
      Some (Mapping.n_stages inst.Instance.mapping),
      Some (List.length (Instance.resources inst)) )
  in
  let name, m, n, r = shape in
  let finish status period =
    { job = j; status; instance_name = name; period; m; n_stages = n;
      n_resources = r; cache_hit = false; wall_s = now () -. start }
  in
  let over_deadline () =
    match deadline with Some d -> now () >= d | None -> false
  in
  if over_deadline () then finish Timed_out None
  else
    let solver_deadline =
      match deadline with Some d -> Some (fun () -> now () >= d) | None -> None
    in
    match
      Rwt_err.catch (fun () ->
          Analysis.analyze_exn ~method_:j.method_ ?transition_cap
            ?deadline:solver_deadline j.model inst)
    with
    | Ok report -> finish Done (Some report.Analysis.period)
    | Error { Rwt_err.class_ = Timeout; _ } -> finish Timed_out None
    | Error e -> finish (Failed e) None

(* --- crash-safe journal ---

   Append-only NDJSON sidecar: a header line binding the journal to the
   job list (and the options that affect results), then one record per
   completed representative job. Every record is flushed and fsync'd
   before the result is considered durable, so after a kill the journal
   holds exactly the completed evaluations; a torn trailing line (the
   crash hit mid-write) is detected by the JSON parser and dropped. *)

let journal_schema = "rwt.journal/1"

let journal_key ?timeout ?transition_cap job_list =
  let buf = Buffer.create 256 in
  List.iter
    (fun j ->
      Buffer.add_string buf (string_of_int j.index);
      Buffer.add_char buf '\x00';
      (match j.id with Some s -> Buffer.add_string buf s | None -> ());
      Buffer.add_char buf '\x00';
      (match j.spec with
       | File p -> Buffer.add_string buf ("F" ^ p)
       | Inline i -> Buffer.add_string buf ("I" ^ Format_io.to_string i));
      Buffer.add_char buf '\x00';
      Buffer.add_string buf (Comm_model.to_string j.model);
      Buffer.add_char buf '\x00';
      Buffer.add_string buf (method_to_string j.method_);
      Buffer.add_char buf '\x00')
    job_list;
  (match timeout with
   | Some t -> Buffer.add_string buf (Printf.sprintf "timeout=%h" t)
   | None -> ());
  (match transition_cap with
   | Some c -> Buffer.add_string buf (Printf.sprintf "cap=%d" c)
   | None -> ());
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* the durable fields of a representative outcome; shape fields (m,
   stages, resources, instance name) are recomputed from the reloaded
   instance on resume, which keeps records small and the rendering
   byte-identical either way *)
type record = {
  rec_status : string; (* "ok" | "error" | "timeout" *)
  rec_period : Rat.t option;
  rec_error : Rwt_err.t option;
  rec_wall_s : float;
}

let record_to_json i r =
  let opt k f v = match v with None -> [] | Some x -> [ (k, f x) ] in
  Json.Obj
    (("job", Json.Int i)
     :: ("status", Json.String r.rec_status)
     :: (opt "period" (fun p -> Json.String (Rat.to_string p)) r.rec_period
         @ opt "error" Rwt_err.to_json r.rec_error
         @ [ ("wall_s", Json.Float r.rec_wall_s) ]))

let record_of_json = function
  | Json.Obj fields ->
    let str k =
      match List.assoc_opt k fields with Some (Json.String s) -> Some s | _ -> None
    in
    (match (List.assoc_opt "job" fields, str "status") with
     | Some (Json.Int i), Some rec_status ->
       let rec_period =
         match str "period" with
         | Some s -> (try Some (Rat.of_string s) with _ -> None)
         | None -> None
       in
       let rec_error = Option.bind (List.assoc_opt "error" fields) Rwt_err.of_json in
       let rec_wall_s =
         match List.assoc_opt "wall_s" fields with
         | Some (Json.Float f) -> f
         | Some (Json.Int n) -> float_of_int n
         | _ -> 0.0
       in
       Some (i, { rec_status; rec_period; rec_error; rec_wall_s })
     | _ -> None)
  | _ -> None

let record_of_outcome o =
  match o.status with
  | Done ->
    { rec_status = "ok"; rec_period = o.period; rec_error = None; rec_wall_s = o.wall_s }
  | Failed e ->
    { rec_status = "error"; rec_period = None; rec_error = Some e;
      rec_wall_s = o.wall_s }
  | Timed_out ->
    { rec_status = "timeout"; rec_period = None; rec_error = None;
      rec_wall_s = o.wall_s }

let outcome_of_record (j : job) inst r =
  let status =
    match r.rec_status with
    | "ok" -> Done
    | "timeout" -> Timed_out
    | _ ->
      Failed
        (match r.rec_error with
         | Some e -> e
         | None -> Rwt_err.internal ~code:"internal.journal" "journaled error lost")
  in
  { job = j;
    status;
    instance_name = Some inst.Instance.name;
    period = r.rec_period;
    m = Some (Mapping.num_paths inst.Instance.mapping);
    n_stages = Some (Mapping.n_stages inst.Instance.mapping);
    n_resources = Some (List.length (Instance.resources inst));
    cache_hit = false;
    wall_s = r.rec_wall_s }

type journal = { fd : Unix.file_descr; jmu : Mutex.t }

let journal_append jr json =
  let line = Json.to_string json ^ "\n" in
  Mutex.protect jr.jmu (fun () ->
      ignore (Unix.write_substring jr.fd line 0 (String.length line));
      Unix.fsync jr.fd)

(* read a journal left by an interrupted run: header must carry the same
   binding key, then every parseable record line contributes; the first
   malformed line ends the scan (torn tail from the crash) *)
let journal_read path key =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error _ -> Ok None
  | contents ->
    (match String.split_on_char '\n' contents with
     | [] | [ "" ] -> Ok None
     | header :: rest ->
       (match Json.of_string header with
        | Ok (Json.Obj fields)
          when List.assoc_opt "schema" fields = Some (Json.String journal_schema) ->
          (match List.assoc_opt "key" fields with
           | Some (Json.String k) when k = key ->
             let records = Hashtbl.create 64 in
             (try
                List.iter
                  (fun line ->
                    if String.trim line <> "" then
                      match Json.of_string line with
                      | Ok j ->
                        (match record_of_json j with
                         | Some (i, r) -> Hashtbl.replace records i r
                         | None -> raise Exit)
                      | Error _ -> raise Exit)
                  rest
              with Exit -> ());
             Ok (Some records)
           | Some (Json.String k) ->
             Error
               (Rwt_err.validate ~code:"validate.journal"
                  ~context:[ ("file", path); ("expected", key); ("found", k) ]
                  "journal does not match this job list and options; \
                   remove it or rerun without --resume")
           | _ ->
             Error
               (Rwt_err.parse ~code:"parse.journal" ~file:path
                  "journal header has no key"))
        | _ ->
          Error
            (Rwt_err.parse ~code:"parse.journal" ~file:path
               "not a batch journal (bad or missing header)")))

(* --- the batch driver ---

   Job fan-out runs on the shared work-stealing pool ({!Rwt_pool}); a job
   whose solver itself fans out (per-SCC [Mcr] solves, per-component
   pattern solves) degrades those inner fan-outs to sequential loops
   automatically, so worker counts never multiply. *)

let default_jobs () = Rwt_pool.recommended ()

(* below this many unique jobs, domain spawn/teardown costs more than the
   parallelism recovers, even on a multicore host *)
let min_parallel_jobs = 4

let run ?jobs ?timeout ?transition_cap ?journal:journal_path ?(resume = false)
    ?(retries = 0) ?(backoff_ms = 100.0) (job_list : job list) =
  Obs.with_span "batch.run" @@ fun () ->
  let t_start = now () in
  let job_arr = Array.of_list job_list in
  let n = Array.length job_arr in
  let results : outcome option array = Array.make n None in
  (* journal setup: bind to the job list, recover completed records when
     resuming, then (re)open for appending *)
  let key = lazy (journal_key ?timeout ?transition_cap job_list) in
  let recovered =
    match journal_path with
    | Some path when resume ->
      (match journal_read path (Lazy.force key) with
       | Ok (Some records) -> records
       | Ok None -> Hashtbl.create 0
       | Error e -> Rwt_err.raise_ e)
    | _ -> Hashtbl.create 0
  in
  let journal =
    match journal_path with
    | None -> None
    | Some path ->
      let fresh = not (resume && Sys.file_exists path) in
      let flags =
        if fresh then Unix.[ O_WRONLY; O_CREAT; O_TRUNC ]
        else Unix.[ O_WRONLY; O_APPEND ]
      in
      let fd = Unix.openfile path flags 0o644 in
      let jr = { fd; jmu = Mutex.create () } in
      if fresh then
        journal_append jr
          (Json.Obj
             [ ("schema", Json.String journal_schema);
               ("key", Json.String (Lazy.force key)) ]);
      Some jr
  in
  (* phase 1: load every instance and render its canonical key. The two
     are independent per job (pure parse + anonymized re-render), so on a
     corpus of thousands of specs they fan out on the pool; the dedup
     scan below stays sequential so the representative for a key is
     always the lowest job index — identical at any worker count. *)
  let prep_workers =
    match jobs with
    | Some j -> min (min 128 (max 1 j)) (max 1 n)
    | None ->
      if n < min_parallel_jobs then 1 else min (Rwt_pool.resolved_default ()) n
  in
  let prepped =
    Rwt_pool.map ~workers:prep_workers ~n (fun i ->
        let j = job_arr.(i) in
        match load_spec j.spec with
        | Error e -> Error e
        | Ok inst -> Ok (inst, canonical_key inst j.model j.method_))
  in
  let seen : (string, int) Hashtbl.t = Hashtbl.create (2 * n) in
  let loaded : Instance.t option array = Array.make n None in
  let alias = Array.make n (-1) in (* representative index, or -1 *)
  let unique = ref [] in (* reversed indices of jobs that must be solved *)
  Array.iteri
    (fun i j ->
      match prepped.(i) with
      | Error e ->
        results.(i) <-
          Some
            { job = j; status = Failed e; instance_name = None; period = None;
              m = None; n_stages = None; n_resources = None; cache_hit = false;
              wall_s = 0.0 }
      | Ok (inst, key) ->
        loaded.(i) <- Some inst;
        (match Hashtbl.find_opt seen key with
         | Some rep -> alias.(i) <- rep
         | None ->
           Hashtbl.add seen key i;
           unique := i :: !unique))
    job_arr;
  let unique = Array.of_list (List.rev !unique) in
  (* worker policy: an explicit [~jobs] request is honored as given
     (capped at the unique-job count — extra domains would only idle —
     and at 128). Next an RWT_WORKERS override, honored like an explicit
     request. Without either, collapse to a sequential run when domains
     cannot pay for themselves: a single-core host (spawned domains only
     add scheduling overhead — once measured as a 0.27× "speedup" in
     BENCH_batch.json) or too few unique jobs to amortize domain startup.
     Results are identical at any worker count. *)
  let workers =
    let n_unique = max 1 (Array.length unique) in
    match jobs with
    | Some j -> min (min 128 (max 1 j)) n_unique
    | None ->
      (match Rwt_pool.env_workers () with
       | Some w -> min w n_unique
       | None ->
         if Domain.recommended_domain_count () <= 1
            || Array.length unique < min_parallel_jobs
         then 1
         else min (max 1 (default_jobs ())) n_unique)
  in
  let resumed = Atomic.make 0 in
  let retried = Atomic.make 0 in
  (* jobs-in-flight gauge, counter-sampled on every transition so traces
     show the fan-out envelope over time; one flag read when disabled *)
  let obs_on = Obs.enabled () in
  let inflight = Atomic.make 0 in
  (* phase 2 (parallel): evaluate the unique jobs — journaled results are
     replayed without re-evaluating, transient failures retry under
     bounded exponential backoff, fresh results are journaled durably *)
  Rwt_pool.run ~workers ~n:(Array.length unique) (fun t ->
      if obs_on then
        Obs.sample "batch.inflight"
          (float_of_int (1 + Atomic.fetch_and_add inflight 1));
      let i = unique.(t) in
      let j = job_arr.(i) in
      let inst = Option.get loaded.(i) in
      let o =
        match Hashtbl.find_opt recovered i with
        | Some r ->
          Atomic.incr resumed;
          Obs.incr "batch.resumed";
          outcome_of_record j inst r
        | None ->
          let eval_once () =
            let deadline = Option.map (fun s -> now () +. s) timeout in
            match eval_loaded ?deadline ?transition_cap j inst with
            | o -> o
            | exception ((Stack_overflow | Out_of_memory) as e) -> raise e
            | exception e ->
              let err = Rwt_err.of_exn e in
              let status =
                match err.Rwt_err.class_ with
                | Rwt_err.Timeout -> Timed_out
                | _ -> Failed err
              in
              { job = j; status; instance_name = Some inst.Instance.name;
                period = None; m = None; n_stages = None; n_resources = None;
                cache_hit = false; wall_s = 0.0 }
          in
          (* decorrelated-jitter retries: the jitter stream is seeded per
             job index, so the retry schedule is deterministic at any
             worker count while distinct jobs still spread out instead of
             retrying in lockstep *)
          let backoff = lazy (Backoff.create ~seed:(0x9e37 + i) ~base_ms:backoff_ms ()) in
          let rec attempt k =
            let o = eval_once () in
            match o.status with
            | Failed e when Rwt_err.transient e && k < retries ->
              Obs.incr "batch.retries";
              if k = 0 then Atomic.incr retried;
              Unix.sleepf (Backoff.next_ms (Lazy.force backoff) /. 1000.0);
              attempt (k + 1)
            | _ -> o
          in
          let o = attempt 0 in
          (match journal with
           | Some jr -> journal_append jr (record_to_json i (record_of_outcome o))
           | None -> ());
          o
      in
      Obs.observe "batch.job_wall_s" o.wall_s;
      results.(i) <- Some o;
      if obs_on then
        Obs.sample "batch.inflight"
          (float_of_int (Atomic.fetch_and_add inflight (-1) - 1)));
  (match journal with Some jr -> Unix.close jr.fd | None -> ());
  (* phase 3: replay memoized outcomes onto the duplicate jobs *)
  Array.iteri
    (fun i rep ->
      if rep >= 0 then begin
        let r = Option.get results.(rep) in
        let inst = Option.get loaded.(i) in
        results.(i) <-
          Some
            { r with job = job_arr.(i); instance_name = Some inst.Instance.name;
              cache_hit = true; wall_s = 0.0 }
      end)
    alias;
  let outcomes = Array.map Option.get results in
  let count p = Array.fold_left (fun acc o -> if p o then acc + 1 else acc) 0 outcomes in
  let summary =
    { total = n;
      ok = count (fun o -> o.status = Done);
      errors = count (fun o -> match o.status with Failed _ -> true | _ -> false);
      timeouts = count (fun o -> o.status = Timed_out);
      cache_hits = count (fun o -> o.cache_hit);
      resumed = Atomic.get resumed;
      retried = Atomic.get retried;
      workers;
      elapsed_s = now () -. t_start }
  in
  Obs.add "batch.jobs" summary.total;
  Obs.add "batch.cache_hits" summary.cache_hits;
  Obs.add "batch.errors" summary.errors;
  Obs.add "batch.timeouts" summary.timeouts;
  Obs.gauge "batch.workers" (float_of_int workers);
  (outcomes, summary)

let run_to_channel ?jobs ?timeout ?transition_cap ?journal ?resume ?retries
    ?backoff_ms ?timing oc job_list =
  let outcomes, summary =
    run ?jobs ?timeout ?transition_cap ?journal ?resume ?retries ?backoff_ms
      job_list
  in
  Array.iter
    (fun o ->
      output_string oc (Json.to_string (outcome_to_json ?timing o));
      output_char oc '\n')
    outcomes;
  flush oc;
  summary
