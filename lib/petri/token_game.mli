(** Operational semantics of a timed event graph: the earliest-firing token
    game, via the (max,+) dater recurrence

    [x_t(k) = firing(t) + max over input places (s → t, τ tokens) of
    x_s(k − τ)]   (terms with [k − τ < 0] read as 0: initial tokens are
    available at time 0).

    For a live event graph, [x_t(k)/k] converges to the maximum cycle ratio
    over the circuits upstream of [t]; the maximum over all transitions
    converges to the global maximum cycle ratio. This gives an independent
    operational check of the {!Mcr} solvers, and it is also the reference
    semantics that the workflow simulator ({!Rwt_sim}) must agree with. *)

open Rwt_util

val daters : Tpn.t -> int -> Rat.t array array
(** [daters tpn k] is [x] with [x.(t).(j)] the completion time of the
    [(j+1)]-th firing of transition [t], for [j < k].
    @raise Invalid_argument if [k < 0].
    @raise Failure if the net has a token-free circuit (it would deadlock:
    the recurrence has no solution). *)

val slope : Tpn.t -> transition:int -> k:int -> Rat.t
(** [(x_t(k-1) − x_t(k/2)) / (k − 1 − k/2)]: finite-horizon growth-rate
    estimate for one transition. *)

val estimate_period : Tpn.t -> k:int -> Rat.t
(** Maximum of {!slope} over all transitions: a finite-horizon estimate of
    the net's period (exact once [k] exceeds the transient + cyclicity). *)

val exact_period : Tpn.t -> ?max_k:int -> unit -> Rat.t option
(** Runs the token game and searches for an exact periodic regime
    [x(k+q) = x(k) + c] (componentwise, same [c] rational shift per [q]
    firings). Returns [Some (c/q)] when such a regime is confirmed over the
    tail of the horizon, [None] if not detected within [max_k] (default
    2000) firings. The value, when returned, is exact. *)
