Batch evaluation of a mixed job file: bare paths and NDJSON job objects,
with a duplicate (memo-cache hit) and a missing file (error line). With
--no-timing the output is byte-stable, so it can be pinned here.

  $ rwt show -e a > a.rwt
  $ rwt show -e b > b.rwt
  $ cat > jobs.ndjson <<'EOF'
  > a.rwt
  > {"file":"a.rwt","model":"strict","id":"a-strict"}
  > # comment
  > a.rwt
  > {"file":"missing.rwt"}
  > {"file":"b.rwt","method":"tpn"}
  > EOF

  $ rwt batch jobs.ndjson --jobs 2 --no-timing
  {"job":0,"file":"a.rwt","instance":"example-A","model":"overlap","method":"auto","status":"ok","period":"189","period_float":189,"throughput_float":0.0052910052910052907,"metrics":{"m":6,"stages":4,"resources":7},"cache":"miss"}
  {"job":1,"id":"a-strict","file":"a.rwt","instance":"example-A","model":"strict","method":"auto","status":"ok","period":"692/3","period_float":230.66666666666666,"throughput_float":0.004335260115606936,"metrics":{"m":6,"stages":4,"resources":7},"cache":"miss"}
  {"job":2,"file":"a.rwt","instance":"example-A","model":"overlap","method":"auto","status":"ok","period":"189","period_float":189,"throughput_float":0.0052910052910052907,"metrics":{"m":6,"stages":4,"resources":7},"cache":"hit"}
  {"job":3,"file":"missing.rwt","model":"overlap","method":"auto","status":"error","error":"parse: missing.rwt: No such file or directory","error_class":"parse","error_code":"parse.io","cache":"miss"}
  {"job":4,"file":"b.rwt","instance":"example-B","model":"overlap","method":"tpn","status":"ok","period":"875/3","period_float":291.66666666666669,"throughput_float":0.0034285714285714284,"metrics":{"m":12,"stages":2,"resources":7},"cache":"miss"}
  rwt batch: 5 jobs: 4 ok, 1 error, 0 timeouts; 1 cache hit (workers 2)

Determinism: the same stream on one worker and on eight workers renders
identical bytes — cache hits land on the same jobs either way.

  $ rwt batch jobs.ndjson --jobs 1 --no-timing 2>/dev/null > j1.txt
  $ rwt batch jobs.ndjson --jobs 8 --no-timing 2>/dev/null > j8.txt
  $ cmp j1.txt j8.txt && echo identical
  identical

Timeout path: --timeout 0 expires every job at its first checkpoint, so
solvable jobs report "timeout" deterministically; the load error still
reports "error", the duplicate still replays from the cache, and the
whole batch failing to produce any ok line exits 3.

  $ rwt batch jobs.ndjson --jobs 1 --timeout 0 --no-timing
  {"job":0,"file":"a.rwt","instance":"example-A","model":"overlap","method":"auto","status":"timeout","metrics":{"m":6,"stages":4,"resources":7},"cache":"miss"}
  {"job":1,"id":"a-strict","file":"a.rwt","instance":"example-A","model":"strict","method":"auto","status":"timeout","metrics":{"m":6,"stages":4,"resources":7},"cache":"miss"}
  {"job":2,"file":"a.rwt","instance":"example-A","model":"overlap","method":"auto","status":"timeout","metrics":{"m":6,"stages":4,"resources":7},"cache":"hit"}
  {"job":3,"file":"missing.rwt","model":"overlap","method":"auto","status":"error","error":"parse: missing.rwt: No such file or directory","error_class":"parse","error_code":"parse.io","cache":"miss"}
  {"job":4,"file":"b.rwt","instance":"example-B","model":"overlap","method":"tpn","status":"timeout","metrics":{"m":12,"stages":2,"resources":7},"cache":"miss"}
  rwt batch: 5 jobs: 0 ok, 1 error, 4 timeouts; 1 cache hit (workers 1)
  [3]

Job files can come from stdin ("-") and results can go to a file.

  $ echo a.rwt | rwt batch - --jobs 1 --no-timing -o out.ndjson
  rwt batch: 1 job: 1 ok, 0 errors, 0 timeouts; 0 cache hits (workers 1)
  $ cat out.ndjson
  {"job":0,"file":"a.rwt","instance":"example-A","model":"overlap","method":"auto","status":"ok","period":"189","period_float":189,"throughput_float":0.0052910052910052907,"metrics":{"m":6,"stages":4,"resources":7},"cache":"miss"}

A malformed job file names the offending line and exits nonzero.

  $ printf '{"file":"a.rwt","frobnicate":1}\n' | rwt batch -
  rwt: parse: unknown key "frobnicate" [jobfile=-, line=1]
  [1]

Domain-aware tracing: --example builds the 5-job model×method family for
a shipped instance, an explicit --jobs is honored even on one core, and
the Chrome trace shows one tid lane per worker domain with queue-depth /
in-flight counter samples riding along.

  $ rwt batch -e a --jobs 4 --no-timing --trace t.json -o lanes.ndjson
  rwt batch: 5 jobs: 5 ok, 0 errors, 0 timeouts; 0 cache hits (workers 4)
  $ rwt json-check t.json
  ok
  $ grep -o '"tid":[0-9]*' t.json | sort -u | wc -l | awk '{print ($1 >= 2) ? "multiple lanes" : "single lane"}'
  multiple lanes
  $ grep -o '"ph":"C"' t.json | wc -l | awk '{print ($1 > 0) ? "counter samples present" : "none"}'
  counter samples present
(the prepass pool run and the solve pool run each contribute one span
per worker domain: 2 runs x 4 workers)

  $ grep -o '"name":"pool.worker"' t.json | sort | uniq -c | sed 's/^ *//'
  8 "name":"pool.worker"
  $ grep -oE '"id":"[a-z-]*"' lanes.ndjson
  "id":"overlap-auto"
  "id":"overlap-tpn"
  "id":"overlap-poly"
  "id":"strict-auto"
  "id":"strict-tpn"

JOBFILE and --example are mutually exclusive, and one of them is required.

  $ rwt batch jobs.ndjson -e a
  rwt: validate: use either JOBFILE or --example, not both
  [1]
  $ rwt batch
  rwt: validate: jobs are required: give a JOBFILE ("-" for stdin) or --example NAME
  [1]
