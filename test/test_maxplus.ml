(* Tests for the (max,+) algebra substrate. *)

open Rwt_util
module M = Rwt_maxplus.Maxplus.Make (Rat)

let qtest = QCheck_alcotest.to_alcotest

let scalar_gen =
  QCheck.map
    (fun (fin, a, b) ->
      if fin then M.fin (Rat.of_ints a (if b = 0 then 1 else abs b)) else M.Neg_inf)
    (QCheck.triple QCheck.bool (QCheck.int_range (-100) 100) (QCheck.int_range 1 20))

let semiring_laws =
  QCheck.Test.make ~count:2000 ~name:"(max,+) semiring laws"
    (QCheck.triple scalar_gen scalar_gen scalar_gen)
    (fun (a, b, c) ->
      M.equal (M.oplus a b) (M.oplus b a)
      && M.equal (M.oplus (M.oplus a b) c) (M.oplus a (M.oplus b c))
      && M.equal (M.otimes (M.otimes a b) c) (M.otimes a (M.otimes b c))
      && M.equal (M.oplus a M.zero) a
      && M.equal (M.otimes a M.unit) a
      && M.equal (M.otimes a M.zero) M.zero
      && M.equal (M.otimes a (M.oplus b c)) (M.oplus (M.otimes a b) (M.otimes a c)))

let random_mat r n =
  M.init n n (fun _ _ ->
      if Prng.int r 4 = 0 then M.Neg_inf else M.fin (Rat.of_int (Prng.int_in r 0 20)))

let mat_assoc =
  QCheck.Test.make ~count:200 ~name:"matrix ⊗ associativity" QCheck.small_nat
    (fun seed ->
      let r = Prng.create seed in
      let n = Prng.int_in r 1 6 in
      let a = random_mat r n and b = random_mat r n and c = random_mat r n in
      let l = M.mul (M.mul a b) c and rr = M.mul a (M.mul b c) in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if not (M.equal (M.get l i j) (M.get rr i j)) then ok := false
        done
      done;
      !ok)

let mat_identity =
  QCheck.Test.make ~count:200 ~name:"identity is ⊗-neutral" QCheck.small_nat
    (fun seed ->
      let r = Prng.create seed in
      let n = Prng.int_in r 1 6 in
      let a = random_mat r n in
      let l = M.mul (M.identity n) a and rr = M.mul a (M.identity n) in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if not (M.equal (M.get l i j) (M.get a i j) && M.equal (M.get rr i j) (M.get a i j))
          then ok := false
        done
      done;
      !ok)

let pow_matches_repeated_mul =
  QCheck.Test.make ~count:100 ~name:"pow = repeated mul" QCheck.small_nat (fun seed ->
      let r = Prng.create seed in
      let n = Prng.int_in r 1 5 in
      let a = random_mat r n in
      let k = Prng.int_in r 0 6 in
      let expected = ref (M.identity n) in
      for _ = 1 to k do
        expected := M.mul !expected a
      done;
      let got = M.pow a k in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if not (M.equal (M.get got i j) (M.get !expected i j)) then ok := false
        done
      done;
      !ok)

(* A* exists iff no positive cycle; A* entries are longest path weights. *)
let star_unit () =
  (* 0 →(2) 1 →(-3) 0 : cycle weight -1, star converges *)
  let a = M.make 2 2 M.Neg_inf in
  M.set a 1 0 (M.fin (Rat.of_int 2));
  M.set a 0 1 (M.fin (Rat.of_int (-3)));
  (match M.star a with
   | None -> Alcotest.fail "star should converge"
   | Some s ->
     Alcotest.(check bool) "diag unit" true (M.equal (M.get s 0 0) M.unit);
     Alcotest.(check bool) "path 0→1" true (M.equal (M.get s 1 0) (M.fin (Rat.of_int 2))));
  (* positive cycle → divergence *)
  let b = M.make 2 2 M.Neg_inf in
  M.set b 1 0 (M.fin (Rat.of_int 2));
  M.set b 0 1 (M.fin (Rat.of_int (-1)));
  Alcotest.(check bool) "positive cycle diverges" true (M.star b = None)

(* Dater recurrence on a two-transition event graph matches hand values. *)
let dater_unit () =
  (* x1(k) = 3 + x2(k-1); x2(k) = 2 + x1(k) : cycle time 5 per firing *)
  let g = Rwt_graph.Digraph.create 2 in
  ignore (Rwt_graph.Digraph.add_edge g 1 0 (Rat.of_int 3));
  (* edge weights as propagation delays; use matrix directly instead *)
  ignore g;
  let a1 = M.make 2 2 M.Neg_inf in
  (* A1: delayed dependency x1(k) <- x2(k-1) + 3 *)
  M.set a1 0 1 (M.fin (Rat.of_int 3));
  let a0 = M.make 2 2 M.Neg_inf in
  (* A0: instantaneous x2(k) <- x1(k) + 2 *)
  M.set a0 1 0 (M.fin (Rat.of_int 2));
  match M.star a0 with
  | None -> Alcotest.fail "a0 star"
  | Some s ->
    let a = M.mul s a1 in
    let x0 = [| M.fin (Rat.of_int 3); M.fin (Rat.of_int 5) |] in
    let orbit = M.eigen_iteration a x0 4 in
    (* growth of 5 per step *)
    let expect k i = M.fin (Rat.of_int ((5 * k) + if i = 0 then 3 else 5)) in
    for k = 0 to 4 do
      for i = 0 to 1 do
        Alcotest.(check bool)
          (Printf.sprintf "orbit k=%d i=%d" k i)
          true
          (M.equal orbit.(k).(i) (expect k i))
      done
    done

let of_graph_unit () =
  let g = Rwt_graph.Digraph.create 3 in
  ignore (Rwt_graph.Digraph.add_edge g 0 1 (Rat.of_int 4));
  ignore (Rwt_graph.Digraph.add_edge g 0 1 (Rat.of_int 7));
  let m = M.of_graph g in
  Alcotest.(check bool) "parallel edges take max" true
    (M.equal (M.get m 1 0) (M.fin (Rat.of_int 7)));
  Alcotest.(check bool) "absent edge" true (M.equal (M.get m 0 1) M.Neg_inf)

(* --- spectral route: period via A = A0* ⊗ A1 --- *)

let spectral_equals_mcr =
  QCheck.Test.make ~count:150 ~name:"spectral radius of A0*A1 = max cycle ratio"
    QCheck.small_nat (fun seed ->
      let r = Prng.create (seed + 321) in
      let n = Prng.int_in r 2 8 in
      let trs =
        Array.init n (fun i ->
            { Rwt_petri.Tpn.tr_name = Printf.sprintf "t%d" i;
              firing = Rat.of_ints (Prng.int_in r 0 20) (Prng.int_in r 1 3) })
      in
      let net = Rwt_petri.Tpn.create trs in
      for i = 0 to n - 1 do
        Rwt_petri.Tpn.add_place net ~src:i ~dst:((i + 1) mod n) ~tokens:1
      done;
      for _ = 1 to Prng.int_in r 0 (2 * n) do
        let u = Prng.int r n and v = Prng.int r n in
        let tokens = if v <= u then 1 else if Prng.int r 3 = 0 then 1 else 0 in
        Rwt_petri.Tpn.add_place net ~src:u ~dst:v ~tokens
      done;
      match (Rwt_maxplus.Spectral.period_of_tpn net, Rwt_petri.Mcr.period_of_tpn net) with
      | Some s, Some w -> Rat.equal s w.Rwt_petri.Mcr.Exact.ratio
      | None, None -> true
      | _ -> false)

let spectral_paper_examples () =
  List.iter
    (fun (name, inst) ->
      List.iter
        (fun model ->
          let net = Rwt_core.Tpn_build.build_exn model inst in
          match
            ( Rwt_maxplus.Spectral.period_of_tpn net.Rwt_core.Tpn_build.tpn,
              Rwt_petri.Mcr.period_of_tpn net.Rwt_core.Tpn_build.tpn )
          with
          | Some s, Some w ->
            Alcotest.(check bool)
              (name ^ "/" ^ Rwt_workflow.Comm_model.to_string model)
              true
              (Rat.equal s w.Rwt_petri.Mcr.Exact.ratio)
          | _ -> Alcotest.fail "missing period")
        Rwt_workflow.Comm_model.all)
    [ ("A", Rwt_workflow.Instances.example_a ());
      ("B", Rwt_workflow.Instances.example_b ()) ]

let spectral_rejects_multitoken () =
  let net =
    Rwt_petri.Tpn.create [| { Rwt_petri.Tpn.tr_name = "t"; firing = Rat.one } |]
  in
  Rwt_petri.Tpn.add_place net ~src:0 ~dst:0 ~tokens:2;
  Alcotest.check_raises "2 tokens"
    (Invalid_argument "Spectral.period_of_tpn: place with more than one token")
    (fun () -> ignore (Rwt_maxplus.Spectral.period_of_tpn net))

let spectral_rejects_dead () =
  let net =
    Rwt_petri.Tpn.create
      [| { Rwt_petri.Tpn.tr_name = "a"; firing = Rat.one };
         { Rwt_petri.Tpn.tr_name = "b"; firing = Rat.one } |]
  in
  Rwt_petri.Tpn.add_place net ~src:0 ~dst:1 ~tokens:0;
  Rwt_petri.Tpn.add_place net ~src:1 ~dst:0 ~tokens:0;
  Alcotest.check_raises "dead"
    (Failure "Spectral.period_of_tpn: token-free circuit") (fun () ->
      ignore (Rwt_maxplus.Spectral.period_of_tpn net))

let () =
  Alcotest.run "rwt_maxplus"
    [ ("semiring", [ qtest semiring_laws ]);
      ("matrix", [ qtest mat_assoc; qtest mat_identity; qtest pow_matches_repeated_mul ]);
      ( "star+dater",
        [ Alcotest.test_case "star" `Quick star_unit;
          Alcotest.test_case "dater" `Quick dater_unit;
          Alcotest.test_case "of_graph" `Quick of_graph_unit ] );
      ( "spectral",
        [ qtest spectral_equals_mcr;
          Alcotest.test_case "paper examples" `Quick spectral_paper_examples;
          Alcotest.test_case "multi-token" `Quick spectral_rejects_multitoken;
          Alcotest.test_case "dead" `Quick spectral_rejects_dead ] ) ]
