open Rwt_util
open Rwt_workflow
module Mcr = Rwt_petri.Mcr
module Obs = Rwt_obs

(* Escape hatch (CLI [--no-delta]): when off, every evaluation through a
   session rebuilds and resolves cold — the delta layer becomes a plain
   cache-less wrapper around the fused path. *)
let enabled = ref true

type loaded = { fg : Tpn_graph.t; session : Mcr.session }

type t = {
  model : Comm_model.t;
  transition_cap : int option;
  mutable loaded : loaded option;
  mutable patch_hits : int;
  mutable cold_fallbacks : int;
  mutable rounds_saved : int;
}

type stats = { patch_hits : int; cold_fallbacks : int; rounds_saved : int }

let create ?transition_cap model =
  { model;
    transition_cap;
    loaded = None;
    patch_hits = 0;
    cold_fallbacks = 0;
    rounds_saved = 0 }

let stats (t : t) =
  { patch_hits = t.patch_hits;
    cold_fallbacks = t.cold_fallbacks;
    rounds_saved = t.rounds_saved }

let period_exn ?deadline t inst =
  Obs.with_span "delta.period" @@ fun () ->
  let witness, m =
    match t.loaded with
    | Some { fg; session } when !enabled && Tpn_graph.shape_compatible fg inst ->
      (* Same skeleton: relabel the arcs in place and re-solve warm. *)
      Tpn_graph.patch_exn fg inst;
      let w, saved = Mcr.session_resolve ?deadline session in
      t.patch_hits <- t.patch_hits + 1;
      t.rounds_saved <- t.rounds_saved + saved;
      Obs.incr "delta.patch_hits";
      Obs.add "delta.warmstart_rounds_saved" saved;
      (w, fg.Tpn_graph.m)
    | prev ->
      (* Topology changed (or first call, or the layer is disabled): cold
         build + solve, and capture the new session for the next call. *)
      let fg = Tpn_graph.build_exn ?transition_cap:t.transition_cap t.model inst in
      let session, w = Mcr.session_init ?deadline fg.Tpn_graph.graph in
      t.loaded <- Some { fg; session };
      (* a fallback is a *shape mismatch*; neither the first unavoidable
         cold solve nor a disabled layer counts as one *)
      (match prev with
       | Some _ when !enabled ->
         t.cold_fallbacks <- t.cold_fallbacks + 1;
         Obs.incr "delta.cold_fallbacks"
       | _ -> ());
      (w, fg.Tpn_graph.m)
  in
  match witness with
  | None -> invalid_arg "Delta.period: net has no circuit"
  | Some w -> Rat.div_int w.Mcr.Exact.ratio m

let period ?deadline t inst = Rwt_err.catch (fun () -> period_exn ?deadline t inst)
