(** PNML (Petri Net Markup Language, ISO/IEC 15909-2) export.

    The paper computed critical cycles with the GreatSPN and ERS tool suites
    (its references [5, 9]); PNML is the interchange format that lets the
    nets built here be opened in their modern successors (GreatSPN, TINA,
    PIPE, …). We emit the P/T net skeleton with initial markings, plus the
    firing times as [toolspecific] annotations (PNML's standard extension
    point — stochastic/timed attributes are not part of the core schema).

    Places are explicit PNML places between transition pairs, so the event
    graph property is visible in the output structure. *)

val to_string : ?net_id:string -> Tpn.t -> string
(** A standalone [<pnml>] document (UTF-8). *)
