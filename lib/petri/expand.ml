open Rwt_util
module Obs = Rwt_obs

let default_transition_cap = 1_000_000
let cap = ref default_transition_cap

let transition_cap () = !cap

let set_transition_cap c =
  if c <= 0 then invalid_arg "Expand.set_transition_cap: cap must be positive";
  cap := c

let is_one_bounded tpn =
  List.for_all (fun p -> p.Tpn.tokens <= 1) (Tpn.places tpn)

let one_bounded ?cap:local_cap tpn =
  let cap = match local_cap with Some c -> c | None -> !cap in
  let base = Tpn.num_transitions tpn in
  (* count the fresh buffer transitions needed *)
  let extra, max_marking =
    List.fold_left
      (fun (extra, mm) p -> (extra + max 0 (p.Tpn.tokens - 1), max mm p.Tpn.tokens))
      (0, 0) (Tpn.places tpn)
  in
  Obs.gauge "expand.projected_transitions" (float_of_int (base + extra));
  if base + extra > cap then begin
    Obs.incr "expand.rejections";
    failwith
      (Printf.sprintf
         "Expand.one_bounded: expansion would create %d transitions (%d original \
          + %d buffer, largest marking m = %d), exceeding the cap of %d; raise it \
          with Expand.set_transition_cap or pass ~cap"
         (base + extra) base extra max_marking cap)
  end;
  Obs.add "expand.buffers" extra;
  let transitions =
    Array.init (base + extra) (fun i ->
        if i < base then Tpn.transition tpn i
        else { Tpn.tr_name = Printf.sprintf "buf%d" (i - base); firing = Rat.zero })
  in
  let out = Tpn.create transitions in
  let next_fresh = ref base in
  List.iter
    (fun p ->
      if p.Tpn.tokens <= 1 then
        Tpn.add_place out ~name:p.Tpn.pl_name ~src:p.Tpn.pl_src ~dst:p.Tpn.pl_dst
          ~tokens:p.Tpn.tokens
      else begin
        (* src → buf → buf → … → dst, one token per hop *)
        let hops = p.Tpn.tokens in
        let prev = ref p.Tpn.pl_src in
        for k = 1 to hops - 1 do
          let fresh = !next_fresh in
          incr next_fresh;
          Tpn.add_place out
            ~name:(Printf.sprintf "%s#%d" p.Tpn.pl_name k)
            ~src:!prev ~dst:fresh ~tokens:1;
          prev := fresh
        done;
        Tpn.add_place out
          ~name:(Printf.sprintf "%s#%d" p.Tpn.pl_name hops)
          ~src:!prev ~dst:p.Tpn.pl_dst ~tokens:1
      end)
    (Tpn.places tpn);
  out
