(** Multicore batch evaluation engine.

    Evaluates a stream of {e jobs} — (instance × model × method) tuples —
    on a work-stealing pool of OCaml 5 [Domain]s and renders one NDJSON
    result line per job. This is the mapping-space-exploration substrate:
    the paper's Table 2 campaign, the multi-criteria searches of
    Benoit/Rehn-Sonigo/Robert, and any serving layer built later all
    reduce to "evaluate many candidate mappings as fast as the hardware
    allows".

    {b Determinism.} Results are reported in job-file order, and every
    non-timing field is a pure function of the job list and the engine
    options — never of the worker count or of scheduling. Duplicate jobs
    are deduplicated {e before} dispatch against a canonical-instance memo
    key, so cache hits land on the same jobs whether the batch runs on one
    domain or sixteen.

    {b Robustness.} A job that fails to load, exceeds the per-job timeout
    at a checkpoint (or inside a solver — the budget is threaded into the
    [Mcr] iteration loops as a cooperative deadline), or blows the
    transition cap produces an ["error"] or ["timeout"] result line; the
    batch always runs to completion. Errors are typed ({!Rwt_err.t}), and
    transient (fault-injected) failures can retry under bounded
    decorrelated-jitter backoff.

    {b Crash safety.} With [~journal], every completed representative
    evaluation is appended to an fsync'd NDJSON sidecar before the batch
    moves on; after a crash, [~resume:true] replays the journaled results
    and evaluates only the missing jobs, with [--no-timing] output
    byte-identical to an uninterrupted run. See [doc/RESILIENCE.md]. *)

open Rwt_util
open Rwt_workflow

(** {1 Jobs} *)

type spec =
  | File of string  (** instance file in the [doc/FORMAT.md] syntax *)
  | Inline of Instance.t  (** already-loaded instance (bench, tests) *)

type job = {
  index : int;  (** 0-based position in the job stream *)
  id : string option;  (** caller-chosen label, echoed in the result *)
  spec : spec;
  model : Comm_model.t;
  method_ : Rwt_core.Analysis.method_;
}

val job :
  ?id:string ->
  ?model:Comm_model.t ->
  ?method_:Rwt_core.Analysis.method_ ->
  index:int ->
  spec ->
  job
(** Job with defaults: OVERLAP model, [Auto] method. *)

val parse_jobs : string -> (job list, Rwt_err.t) result
(** Parse a job file. Each non-empty, non-[#] line is either

    - a bare path to an instance file ([.rwt]-list form), evaluated with
      the default model/method, or
    - an NDJSON object
      [{"file": "path", "model": "overlap"|"strict",
        "method": "auto"|"tpn"|"poly", "id": "label"}]
      where every key but ["file"] is optional.

    The two forms can be mixed. Errors are typed ({!Rwt_err.Parse}, code
    ["parse.jobs"]) and carry the offending line (and, for malformed JSON,
    the column) in their context. *)

(** {1 Outcomes} *)

type status =
  | Done  (** period computed *)
  | Failed of Rwt_err.t  (** typed load/validation/solver error *)
  | Timed_out  (** per-job budget exhausted at a checkpoint *)

type outcome = {
  job : job;
  status : status;
  instance_name : string option;  (** from the loaded instance *)
  period : Rat.t option;  (** [Some] iff [status = Done] *)
  m : int option;  (** rows [lcm(m_i)], when the instance loaded *)
  n_stages : int option;
  n_resources : int option;
  cache_hit : bool;  (** an earlier job had the same canonical key *)
  wall_s : float;  (** this job's evaluation time; 0 for cache hits *)
}

val outcome_to_json : ?timing:bool -> outcome -> Json.t
(** One NDJSON record. With [timing = false] (default [true]) the
    [wall_s] field is omitted, making output byte-comparable across runs,
    worker counts and crash/resume boundaries. [Failed] outcomes carry
    ["error"] (the rendered line), ["error_class"] and ["error_code"]. *)

type summary = {
  total : int;
  ok : int;
  errors : int;
  timeouts : int;
  cache_hits : int;
  resumed : int;  (** representative jobs replayed from the journal *)
  retried : int;  (** jobs that needed at least one transient retry *)
  workers : int;  (** effective worker-domain count (after the sequential
                      fallback), not necessarily the requested [jobs] *)
  elapsed_s : float;
}

val pp_summary : Format.formatter -> summary -> unit
(** The [resumed]/[retried] counts are appended only when nonzero, so
    ordinary runs render exactly as before. *)

(** {1 Running} *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val run :
  ?jobs:int ->
  ?timeout:float ->
  ?transition_cap:int ->
  ?journal:string ->
  ?resume:bool ->
  ?retries:int ->
  ?backoff_ms:float ->
  job list ->
  outcome array * summary
(** Evaluate every job; the result array is indexed like the input list.

    [jobs] is the worker-domain count, clamped to [[1, 128]] and to the
    number of unique jobs left after deduplication (extra domains would
    only idle). An explicit [jobs] is honored as given — [jobs = 1] runs
    on the calling domain, [jobs = 4] spawns domains even on a single-core
    host (how traces prove the parallel layers). Without it the engine
    picks {!default_jobs} but falls back to one worker when
    [Domain.recommended_domain_count () <= 1] (spawning domains on a
    single-core host only adds scheduling overhead) or when fewer than a
    handful of unique jobs remain (domain startup would dominate); the
    summary's [workers] field reports the effective count. Results are
    identical at any worker count. [timeout] is a
    per-job budget in seconds, checked cooperatively at job checkpoints
    (after load, before each solve, and inside the solver iteration
    loops): a job over budget reports [Timed_out] — [timeout <= 0]
    therefore times every job out, which is the deterministic path the
    tests pin. Runaway {e sizes} (the lcm blow-up) are handled by
    [transition_cap] (default [Rwt_petri.Expand.transition_cap ()]),
    which turns the pathological build into a fast [Failed] line.

    [journal] names an append-only NDJSON sidecar: a header line binds
    the file to this job list and options (an MD5 key over the job
    descriptors, [timeout] and [transition_cap]); each completed
    representative evaluation is appended and fsync'd before the pool
    moves on. With [resume = true], records recovered from a matching
    journal are replayed instead of re-evaluated (the [resumed] summary
    count), so a batch killed mid-run completes by re-running only the
    missing jobs; phase 1 (load + dedup) always re-runs, keeping cache
    attribution and [--no-timing] rendering byte-identical to an
    uninterrupted run. A journal whose key does not match raises a typed
    [Validate] error ({!Rwt_err.Error}); a torn trailing line (crash
    mid-write) is silently dropped.

    [retries] (default 0) re-evaluates a job whose failure is
    {!Rwt_err.transient} (injected faults) up to that many extra times,
    sleeping per the decorrelated-jitter {!Rwt_util.Backoff} policy with
    base [backoff_ms] (default 100 ms); the jitter stream is seeded per
    job index, so schedules are deterministic at any worker count. *)

val run_to_channel :
  ?jobs:int ->
  ?timeout:float ->
  ?transition_cap:int ->
  ?journal:string ->
  ?resume:bool ->
  ?retries:int ->
  ?backoff_ms:float ->
  ?timing:bool ->
  out_channel ->
  job list ->
  summary
(** {!run}, then write one compact NDJSON line per job, in job order. *)
