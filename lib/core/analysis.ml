open Rwt_util
open Rwt_workflow

type method_ = Auto | Tpn | Poly

type report = {
  model : Comm_model.t;
  period : Rat.t;
  throughput : Rat.t;
  mct : Rat.t;
  bottleneck : Cycle_time.resource;
  has_critical_resource : bool;
  gap : Rat.t;
  degraded : string option;
}

let analyze_exn ?(method_ = Auto) ?transition_cap ?deadline model inst =
  Rwt_obs.with_span "analysis.analyze" @@ fun () ->
  Rwt_obs.incr "analysis.calls";
  let period, degraded =
    match (method_, model) with
    | Poly, Comm_model.Strict ->
      Rwt_err.raise_
        (Rwt_err.validate ~code:"validate.method"
           "Analysis.analyze: no polynomial algorithm for the strict model")
    | (Auto | Poly), Comm_model.Overlap -> (Poly_overlap.period ?deadline inst, None)
    | Tpn, Comm_model.Overlap ->
      (* Graceful degradation: if the exact TPN route hits a size cap or a
         deadline, Theorem 1 still answers exactly for OVERLAP — fall back
         to the polynomial algorithm and say so in the report. *)
      (match Exact.period_exn ?transition_cap ?deadline model inst with
       | r -> (r.Exact.period, None)
       | exception
           Rwt_err.Error ({ Rwt_err.class_ = Capacity | Timeout; _ } as e) ->
         Rwt_obs.incr "analysis.degraded";
         (* thread the caller's deadline into the fallback too: a budget
            that killed the TPN route must also bound the rescue path *)
         ( Poly_overlap.period ?deadline inst,
           Some
             (Printf.sprintf "tpn route failed (%s: %s); used polynomial algorithm"
                e.Rwt_err.code
                (Rwt_err.class_name e.Rwt_err.class_)) ))
    | (Auto | Tpn), Comm_model.Strict ->
      ((Exact.period_exn ?transition_cap ?deadline model inst).Exact.period, None)
  in
  let bottleneck = Cycle_time.critical model inst in
  let mct = bottleneck.Cycle_time.cexec in
  let has_critical_resource = Rat.equal period mct in
  let gap = if Rat.is_zero mct then Rat.zero else Rat.div (Rat.sub period mct) mct in
  { model; period; throughput = Rat.inv period; mct; bottleneck;
    has_critical_resource; gap; degraded }

let analyze ?method_ ?transition_cap ?deadline model inst =
  Rwt_err.catch (fun () -> analyze_exn ?method_ ?transition_cap ?deadline model inst)

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>model: %a@,period: %a (throughput %.4g data sets / time unit)@,Mct:    %a (resource %s, stage S%d)@,%s"
    Comm_model.pp r.model Rat.pp_approx r.period
    (Rat.to_float r.throughput)
    Rat.pp_approx r.mct
    (Platform.proc_name r.bottleneck.Cycle_time.proc)
    r.bottleneck.Cycle_time.stage
    (if r.has_critical_resource then
       "the critical resource dictates the period (P = Mct)"
     else
       Format.asprintf "no critical resource: P exceeds Mct by %a%%"
         Rat.pp_approx (Rat.mul_int r.gap 100));
  (match r.degraded with
   | None -> ()
   | Some why -> Format.fprintf fmt "@,degraded: %s" why);
  Format.fprintf fmt "@]"

let rat_fields key v =
  [ (key, Json.String (Rat.to_string v)); (key ^ "_float", Json.Float (Rat.to_float v)) ]

let report_to_json inst r =
  let resource (res : Cycle_time.resource) =
    Json.Obj
      (( "proc", Json.String (Platform.proc_name res.Cycle_time.proc) )
       :: ("stage", Json.Int res.Cycle_time.stage)
       :: ("bottleneck", Json.String res.Cycle_time.bottleneck)
       :: (rat_fields "cin" res.Cycle_time.cin
           @ rat_fields "ccomp" res.Cycle_time.ccomp
           @ rat_fields "cout" res.Cycle_time.cout
           @ rat_fields "cexec" res.Cycle_time.cexec))
  in
  Json.Obj
    (( "instance", Json.String inst.Instance.name )
     :: ("model", Json.String (Comm_model.to_string r.model))
     :: ("has_critical_resource", Json.Bool r.has_critical_resource)
     :: ("m", Json.Int (Mapping.num_paths inst.Instance.mapping))
     :: (match r.degraded with
         | None -> []
         | Some why ->
           [ ("degraded", Json.Bool true); ("degraded_reason", Json.String why) ])
     @ (rat_fields "period" r.period
         @ rat_fields "throughput" r.throughput
         @ rat_fields "mct" r.mct
         @ rat_fields "gap" r.gap
         @ [ ("resources", Json.List (List.map resource (Cycle_time.all r.model inst))) ]))
