(** Operational simulator: the earliest (greedy) schedule of the replicated
    workflow, built independently of the Petri-net machinery as a dynamic
    program over data sets. Serves three purposes: cross-validation of the
    TPN period (the earliest schedule is exactly the TPN token game),
    steady-state measurements, and Gantt charts (Figures 7 and 12).

    Constraints encoded per model (a transfer occupies the sender's out-port
    and the receiver's in-port simultaneously):

    - OVERLAP: computations of a processor are serialized among themselves,
      as are its outgoing and its incoming transfers (three independent
      units);
    - STRICT: each processor's receive → compute → send blocks are fully
      serialized in round-robin order. *)

open Rwt_util
open Rwt_workflow

type op =
  | Compute of { stage : int; proc : int }
  | Transfer of { file : int; src : int; dst : int }

type event = { dataset : int; op : op; start : Rat.t; finish : Rat.t }

type t

val run : ?release:(int -> Rat.t) -> Comm_model.t -> Instance.t -> datasets:int -> t
(** Simulate the first [datasets] data sets. By default data sets are
    admitted as early as possible (greedy); [release] gives each data set an
    earliest entry date, e.g. [fun d -> Rat.mul_int period d] for the
    periodic input regime of the paper's steady state.
    @raise Invalid_argument if [datasets <= 0]. *)

val model : t -> Comm_model.t
val instance : t -> Instance.t
val horizon : t -> int

val events : t -> event list
(** All events, ordered by data set then pipeline position. *)

val completion : t -> int -> Rat.t
(** Completion time of data set [d] (end of its last computation). *)

val ordered_completion : t -> int -> Rat.t
(** Delivery time of data set [d] on the {e ordered} output stream:
    [max over d' <= d of completion d']. The paper's period is the pace of
    this stream — when the last stage is replicated, greedy execution lets
    fast replicas run ahead, but consumers receive results in data-set
    order, so the slowest residue class dictates the rate. *)

val compute_event : t -> dataset:int -> stage:int -> event
val transfer_event : t -> dataset:int -> file:int -> event

val period_estimate : t -> Rat.t
(** Steady-state period from the completion sequence. First tries to certify
    an exact periodic regime [completion(d + q·m) = completion(d) + q·m·P]
    (the cyclicity [q·m] may exceed one block of [m] data sets — Example B
    oscillates with [q = 2]); the certified value is exact. Falls back to an
    average over the last half of the horizon.
    @raise Invalid_argument if the horizon is shorter than [2m]. *)

val measured_period : ?blocks:int -> Comm_model.t -> Instance.t -> Rat.t
(** Convenience: simulate [blocks·m] data sets (default 40 blocks, at least
    200 data sets) and return {!period_estimate}. *)

val utilization : t -> from_dataset:int -> (string * Rat.t) list
(** Per resource unit ("P2", "P2-out", "P2-in" under OVERLAP, "P2" under
    STRICT): busy fraction over the time window from the ordered completion
    of [from_dataset] to the horizon's last event (every event is clipped to
    the window). In a schedule without critical resource every fraction
    stays below 1 even as the window grows. *)
