type 'e edge = { src : int; dst : int; label : 'e; id : int }

type 'e t = {
  n : int;
  mutable edges : 'e edge array; (* grows; only [0, m) populated *)
  mutable m : int;
  out_adj : int list array; (* edge ids, most recent first *)
  in_adj : int list array;
}

let create n =
  if n < 0 then invalid_arg "Digraph.create";
  { n; edges = [||]; m = 0; out_adj = Array.make n []; in_adj = Array.make n [] }

let num_nodes g = g.n
let num_edges g = g.m

let add_edge g u v label =
  if u < 0 || u >= g.n || v < 0 || v >= g.n then invalid_arg "Digraph.add_edge";
  let e = { src = u; dst = v; label; id = g.m } in
  if g.m >= Array.length g.edges then begin
    let a = Array.make (Stdlib.max 8 (2 * Array.length g.edges)) e in
    Array.blit g.edges 0 a 0 g.m;
    g.edges <- a
  end;
  g.edges.(g.m) <- e;
  g.m <- g.m + 1;
  g.out_adj.(u) <- e.id :: g.out_adj.(u);
  g.in_adj.(v) <- e.id :: g.in_adj.(v);
  e

(* Bulk constructor: one exactly-sized allocation per array instead of
   amortized doubling plus per-edge bounds rechecks. The adjacency lists are
   built most-recent-first, matching what the same sequence of [add_edge]
   calls would produce, so consumers relying on [out_edges] order see no
   difference. *)
let of_arrays ~n ~src ~dst label =
  if n < 0 then invalid_arg "Digraph.of_arrays";
  let m = Array.length src in
  if Array.length dst <> m || Array.length label <> m then
    invalid_arg "Digraph.of_arrays: array lengths differ";
  let edges =
    Array.init m (fun i ->
        let u = src.(i) and v = dst.(i) in
        if u < 0 || u >= n || v < 0 || v >= n then
          invalid_arg "Digraph.of_arrays: endpoint out of range";
        { src = u; dst = v; label = label.(i); id = i })
  in
  let out_adj = Array.make n [] and in_adj = Array.make n [] in
  for i = 0 to m - 1 do
    out_adj.(src.(i)) <- i :: out_adj.(src.(i));
    in_adj.(dst.(i)) <- i :: in_adj.(dst.(i))
  done;
  { n; edges; m; out_adj; in_adj }

let edge g id =
  if id < 0 || id >= g.m then invalid_arg "Digraph.edge";
  g.edges.(id)

(* Relabel in place: endpoints, token structure and adjacency are untouched,
   so every view built over the topology (SCCs, CSR contexts, topological
   orders) stays valid. This is the primitive behind incremental weight
   patches. *)
let set_label g id label =
  if id < 0 || id >= g.m then invalid_arg "Digraph.set_label";
  let e = g.edges.(id) in
  g.edges.(id) <- { e with label }

let out_edges g u = List.rev_map (fun id -> g.edges.(id)) g.out_adj.(u)
let in_edges g v = List.rev_map (fun id -> g.edges.(id)) g.in_adj.(v)

let iter_edges f g =
  for i = 0 to g.m - 1 do
    f g.edges.(i)
  done

let fold_edges f acc g =
  let acc = ref acc in
  for i = 0 to g.m - 1 do
    acc := f !acc g.edges.(i)
  done;
  !acc

let iter_nodes f g =
  for u = 0 to g.n - 1 do
    f u
  done

let out_degree g u = List.length g.out_adj.(u)
let in_degree g v = List.length g.in_adj.(v)

let map_labels f g =
  let g' = create g.n in
  iter_edges (fun e -> ignore (add_edge g' e.src e.dst (f e.label))) g;
  g'

let reverse g =
  let g' = create g.n in
  iter_edges (fun e -> ignore (add_edge g' e.dst e.src e.label)) g;
  g'

let subgraph g nodes =
  let nodes = Array.of_list nodes in
  let n' = Array.length nodes in
  let old_of_new = nodes in
  let new_of_old = Array.make g.n (-1) in
  Array.iteri
    (fun i u ->
      if u < 0 || u >= g.n then invalid_arg "Digraph.subgraph";
      new_of_old.(u) <- i)
    nodes;
  let g' = create n' in
  iter_edges
    (fun e ->
      let u = new_of_old.(e.src) and v = new_of_old.(e.dst) in
      if u >= 0 && v >= 0 then ignore (add_edge g' u v e.label))
    g;
  (g', old_of_new)
