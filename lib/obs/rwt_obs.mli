(** Observability substrate: metrics, span tracing and solver profiling.

    A single process-wide registry of named {e counters} (monotonic ints),
    {e gauges} (last/max floats), and {e histograms} (log-scale buckets with
    percentile summaries), plus a stack of {e spans} — named timed sections
    whose durations feed [span.<name>] histograms and, optionally, a Chrome
    [trace-event] log loadable in [chrome://tracing] or Perfetto.

    Everything is disabled by default. Every recording entry point starts
    with a single [if enabled] branch and returns immediately without
    allocating when disabled, so instrumented library code costs nothing in
    ordinary runs (tier-1 results are bit-identical either way).

    The library is deliberately dependency-free: timing uses [Sys.time]
    (processor time — the workloads here are CPU-bound, and it keeps the
    clock monotonic and test-injectable), and export goes through
    {!Rwt_util.Json}.

    {b Domain safety.} The registry is shared across domains ([Rwt_batch]
    workers record concurrently): counters and gauges are atomic cells
    (increments are lock-free once a name exists), histogram updates and
    trace events are serialized behind one mutex, and the span stack is
    domain-local, so span nesting in one worker never interleaves with
    another's. [reset] clears the shared registry but only the {e calling}
    domain's span stack. [enable]/[disable]/[set_clock] are meant to be
    called from the orchestrating domain before workers start. *)

(** {1 Lifecycle} *)

val enabled : unit -> bool

val enable : ?trace:bool -> unit -> unit
(** Start recording. [trace] additionally collects per-span trace events
    (timestamps relative to this call) for {!trace_json}. Idempotent;
    enabling does not clear previously recorded data. *)

val disable : unit -> unit
(** Stop recording. Recorded data is kept (export still works). *)

val reset : unit -> unit
(** Drop all metrics, trace events and open spans; keep the enabled flag. *)

val set_clock : (unit -> float) -> unit
(** Replace the time source (seconds, monotonic non-decreasing). Default is
    [Sys.time]. Used by the tests for deterministic span durations. *)

(** {1 Recording} *)

val incr : string -> unit
(** Add 1 to a counter, creating it at 0 first if needed. *)

val add : string -> int -> unit
(** Add [n >= 0] to a counter. Negative increments are clipped to 0 so
    counters stay monotonic. *)

val gauge : string -> float -> unit
(** Set a gauge to the given value (last write wins). *)

val gauge_max : string -> float -> unit
(** Set a gauge to the max of its current value and the given one. *)

val observe : string -> float -> unit
(** Record a sample into a histogram (log₂-scale buckets over [1e-9, ∞);
    exact count/sum/min/max are kept alongside). *)

(** {1 Spans} *)

val span_begin : ?args:(string * string) list -> string -> unit
(** Open a span. Spans nest: the innermost open span is the top of the
    span stack. No-op when disabled. *)

val span_end : unit -> unit
(** Close the innermost span: its duration is recorded into the
    [span.<name>] histogram and, when tracing, appended to the trace-event
    log. A stray [span_end] with no open span increments
    [obs.span_underflow] instead of raising. *)

val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span, closing it on exceptions
    too. When disabled this is exactly [f ()]. *)

val span_depth : unit -> int
(** Number of currently open spans. *)

val set_span_hook : (string -> unit) option -> unit
(** Install (or clear) a callback fired with the span name at the entry of
    every span site — {e before} the span is pushed, and whether or not
    metrics are enabled. This is how {!Rwt_fault} piggybacks its
    fault-injection points on the existing instrumentation: the hook may
    raise (the span is not yet open, so nesting stays balanced) or sleep.
    At most one hook is installed process-wide; [None] uninstalls. *)

(** {1 Reading back} *)

val counter_value : string -> int
(** Current value, 0 for a counter never written. *)

val gauge_value : string -> float option

type histogram_summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val histogram_summary : string -> histogram_summary option
(** Percentiles are bucket upper bounds (log₂ buckets: at most a factor-2
    overestimate), clipped to the exact observed [min]/[max]. *)

val percentile : string -> float -> float option
(** [percentile name q] with [q] in [0, 1]. *)

val metric_names : unit -> string list
(** Sorted names of every counter, gauge and histogram recorded so far. *)

(** {1 Export} *)

val metrics_json : unit -> Rwt_util.Json.t
(** Structured dump:
    [{ "schema": "rwt.metrics/1", "counters": {..}, "gauges": {..},
       "histograms": { name: {count,sum,min,max,mean,p50,p90,p99} } }]
    with keys sorted for deterministic output. *)

val trace_json : unit -> Rwt_util.Json.t
(** Chrome trace-event JSON ([{"traceEvents": [...]}], complete events,
    [ph = "X"], timestamps in microseconds), loadable by
    [chrome://tracing] and Perfetto. Empty unless enabled with
    [~trace:true]. *)

(** {1 Profiling report} *)

type span_row = {
  span : string;  (** span name, without the [span.] prefix *)
  calls : int;
  total_s : float;
  mean_s : float;
  p90_s : float;
  max_s : float;
}

val span_table : unit -> span_row list
(** One row per span histogram, sorted by decreasing total time. *)

val pp_span_table : Format.formatter -> unit -> unit
(** Aligned per-phase cost table (the output of [rwt profile]). *)
