(** Typed error taxonomy for the whole pipeline.

    Every failure mode a caller can meet at a public boundary — a malformed
    instance file, an oversized TPN expansion, a solver deadline, an
    injected fault — is classified into one of seven {!class_}es and carried
    as a structured {!t}: class, stable machine code, one-line human
    message, and an ordered key/value context (file, line, stage, processor,
    cap hit, …). Boundary APIs return [(_, Rwt_err.t) result]; internal
    callers that prefer exceptions use the [_exn] shims of each module,
    which raise {!Error}.

    The rendered form ({!to_line}) is always a single line, so the CLI can
    print [rwt: <line>] and exit nonzero without ever showing a raw OCaml
    backtrace, and NDJSON consumers get the same information structured via
    {!to_json}. See [doc/RESILIENCE.md] for the full policy. *)

type class_ =
  | Parse  (** malformed input: instance files, job files, JSON *)
  | Validate  (** well-formed but inconsistent: arities, ranges, models *)
  | Capacity  (** a size guard fired: transition caps, lcm blow-ups *)
  | Timeout  (** a deadline checkpoint fired inside a solver or stage *)
  | Numeric  (** overflow or a numeric domain error in exact arithmetic *)
  | Fault  (** injected by the {!Rwt_fault} harness (always transient) *)
  | Internal  (** invariant violation; anything uncategorized ends here *)

type t = {
  class_ : class_;
  code : string;  (** stable machine-readable code, e.g. ["parse.json"] *)
  message : string;  (** human one-liner, never containing a newline *)
  context : (string * string) list;  (** ordered structured details *)
}

exception Error of t
(** The exception shim: [_exn] entry points raise this, {!catch} and the
    CLI top level turn it back into a typed line. *)

(** {1 Constructors} *)

val make : ?code:string -> ?context:(string * string) list -> class_ -> string -> t
(** [make cls msg]. [code] defaults to the class name; newlines in [msg]
    are replaced by spaces so {!to_line} stays a single line. *)

val parse :
  ?code:string -> ?file:string -> ?line:int -> ?col:int ->
  ?context:(string * string) list -> string -> t

val json_parse : ?file:string -> Json.pos_error -> t
(** Lift a structured JSON parse failure (with its line/column position)
    into a {!Parse} error whose context carries [line], [col] and
    [offset]. *)

val validate : ?code:string -> ?context:(string * string) list -> string -> t
val capacity : ?code:string -> ?context:(string * string) list -> string -> t
val timeout : ?code:string -> ?context:(string * string) list -> string -> t
val numeric : ?code:string -> ?context:(string * string) list -> string -> t
val fault : ?code:string -> ?context:(string * string) list -> string -> t
val internal : ?code:string -> ?context:(string * string) list -> string -> t

(** {1 Classification} *)

val class_name : class_ -> string
(** ["parse"], ["validate"], ["capacity"], ["timeout"], ["numeric"],
    ["fault"], ["internal"]. *)

val class_of_name : string -> class_ option

val transient : t -> bool
(** Whether a retry can plausibly succeed: true exactly for {!Fault}
    (injected faults fire per-hit, not per-job). {!Timeout} is {e not}
    transient — the budget that expired was the job's own. *)

(** {1 Rendering} *)

val to_line : t -> string
(** One line: [<class>: <message> [k=v, k=v]] (context suffix omitted when
    empty). This is what [rwt] prints after ["rwt: "] on stderr. *)

val to_json : t -> Json.t
(** [{"class": .., "code": .., "message": .., "context": {..}}] (context
    omitted when empty). *)

val of_json : Json.t -> t option
(** Inverse of {!to_json} (used by the batch journal on [--resume]). *)

val pp : Format.formatter -> t -> unit

(** {1 Exception bridging} *)

val of_exn : exn -> t
(** Map a raw exception to a typed error: {!Error} unwraps;
    [Failure]/[Invalid_argument]/[Sys_error]/[Division_by_zero] classify by
    message shape (capacity guards mention their cap, parse errors their
    line); everything else becomes {!Internal} carrying
    [Printexc.to_string]. *)

val catch : (unit -> 'a) -> ('a, t) result
(** Run a thunk, converting any raised exception via {!of_exn}. Does not
    catch [Stack_overflow] or [Out_of_memory]. *)

val raise_ : t -> 'a
(** [raise (Error t)]. *)
