open Rwt_util
open Rwt_workflow

type target = Processor of int | Link of int * int

type effect = {
  target : target;
  period : Rat.t;
  improvement : Rat.t;
}

type t = {
  baseline : Rat.t;
  factor : Rat.t;
  effects : effect list;
}

(* Every what-if shares the baseline's mapping — only the platform numbers
   move — so the STRICT evaluations all hit the delta session's patch path:
   one fused build + SCC decomposition for the whole analysis, one
   warm-started re-solve per target. OVERLAP keeps Theorem 1. *)
let period_of session model inst =
  match model with
  | Comm_model.Overlap -> Poly_overlap.period inst
  | Comm_model.Strict -> Delta.period_exn session inst

(* Distinct directed links (s, d), s ≠ d, that some consecutive stage pair
   can communicate over, in first-occurrence order. The raw cross product
   repeats a pair whenever two stage interfaces share it and emits s = s
   self-links when one processor serves consecutive stages — each duplicate
   costing a full extra period solve and each self-link padding the report
   with a no-op entry (intra-processor transfers don't touch a link). *)
let used_links inst =
  let mapping = inst.Instance.mapping in
  let n = Mapping.n_stages mapping in
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  for i = 0 to n - 2 do
    Array.iter
      (fun s ->
        Array.iter
          (fun d ->
            if s <> d && not (Hashtbl.mem seen (s, d)) then begin
              Hashtbl.add seen (s, d) ();
              acc := (s, d) :: !acc
            end)
          (Mapping.procs mapping (i + 1)))
      (Mapping.procs mapping i)
  done;
  List.rev !acc

let with_platform inst platform =
  Instance.create_exn ~name:inst.Instance.name ~pipeline:inst.Instance.pipeline ~platform
    ~mapping:inst.Instance.mapping

let upgraded inst target factor =
  let base = inst.Instance.platform in
  let p = Platform.p base in
  let speeds =
    Array.init p (fun u ->
        let s = Platform.speed base u in
        match target with
        | Processor v when v = u -> Rat.mul s factor
        | _ -> s)
  in
  let bandwidths =
    Array.init p (fun u ->
        Array.init p (fun v ->
            let b = Platform.bandwidth base u v in
            match target with
            | Link (s, d) when s = u && d = v -> Rat.mul b factor
            | _ -> b))
  in
  with_platform inst (Platform.create ~speeds ~bandwidths)

let analyze ?(factor = Rat.of_int 2) model inst =
  if Rat.compare factor Rat.one <= 0 then
    invalid_arg "Sensitivity.analyze: factor must exceed 1";
  let session = Delta.create model in
  let baseline = period_of session model inst in
  let targets =
    List.map (fun u -> Processor u) (Instance.resources inst)
    @ List.map (fun (s, d) -> Link (s, d)) (used_links inst)
  in
  let effects =
    List.map
      (fun target ->
        let period = period_of session model (upgraded inst target factor) in
        let improvement = Rat.div (Rat.sub baseline period) baseline in
        { target; period; improvement })
      targets
  in
  let effects =
    List.stable_sort (fun a b -> Rat.compare b.improvement a.improvement) effects
  in
  { baseline; factor; effects }

let pp_target fmt = function
  | Processor u -> Format.fprintf fmt "%s" (Platform.proc_name u)
  | Link (s, d) ->
    Format.fprintf fmt "%s->%s" (Platform.proc_name s) (Platform.proc_name d)

let pp fmt t =
  Format.fprintf fmt "@[<v>baseline period %a; upgrades by factor %a:@,"
    Rat.pp_approx t.baseline Rat.pp t.factor;
  List.iter
    (fun e ->
      Format.fprintf fmt "  %-10s -> period %a (%a%% better)@,"
        (Format.asprintf "%a" pp_target e.target)
        Rat.pp_approx e.period Rat.pp_approx
        (Rat.mul_int e.improvement 100))
    t.effects;
  Format.fprintf fmt "@]"
