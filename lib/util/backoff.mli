(** Decorrelated-jitter retry backoff.

    The fixed exponential schedule ([base * 2^k]) synchronizes retries:
    every client that failed together retries together, re-creating the
    very burst that caused the failure. Decorrelated jitter (the AWS
    "decorrelated" policy) breaks the lockstep: each delay is drawn
    uniformly from [[base, 3 * previous)], clamped to a cap, so retry
    times spread out while still growing geometrically in expectation.

    The policy is {e pure}: {!next_ms} only computes the next delay, the
    caller sleeps. Determinism comes from the seeded {!Prng} stream, so
    tests (and the batch engine, which seeds per job index) replay the
    exact same schedule regardless of worker count or interleaving.

    Used by [rwt batch --retries/--backoff-ms] and the [rwt send] client
    (reconnect + shed-retry); see [doc/RESILIENCE.md]. *)

type t

val create : ?cap_ms:float -> ?seed:int -> base_ms:float -> unit -> t
(** [create ~base_ms ()] starts a schedule whose first delay is
    [base_ms] (milliseconds). [cap_ms] bounds every delay (default
    10000.0 = 10s). [seed] (default 0) seeds the jitter stream. A
    non-positive [base_ms] yields all-zero delays (retry immediately). *)

val next_ms : t -> float
(** Draw the next delay in milliseconds and advance the schedule:
    [min cap_ms (uniform [base_ms, 3 * prev))] where [prev] is the
    previously returned delay (initially [base_ms]). Always within
    [[0, cap_ms]]; at least [base_ms] whenever [base_ms <= cap_ms]. *)

val attempts : t -> int
(** Number of delays drawn so far. *)
