(** Textual instance format (round-trip safe, line based).

    {v
    # comments and blank lines are ignored
    name <string>
    stages <n>
    work <w_0> ... <w_{n-1}>          # rationals: "3", "1/7" or "2.5"
    data <d_0> ... <d_{n-2}>          # omitted when n = 1
    processors <p>
    speeds <s_0> ... <s_{p-1}>
    bw <u> <v> <rate>                 # repeatable; unlisted pairs default to 1
    map <u> <u'> ...                  # one line per stage, in stage order
    v} *)

open Rwt_util

val to_string : Instance.t -> string

val of_string : ?file:string -> string -> (Instance.t, Rwt_err.t) result
(** Line-level failures are {!Rwt_err.Parse} errors (code
    ["parse.instance"]) carrying the offending line number (and [file] when
    given); cross-line inconsistencies (missing directives, arities, mapping
    mismatches) are {!Rwt_err.Validate} errors (code
    ["validate.instance_file"]). *)

val problem_of_string :
  ?file:string ->
  string ->
  (string * Pipeline.t * Platform.t * Mapping.t option, Rwt_err.t) result
(** Like {!of_string} but for commands that {e search} for a mapping
    ([rwt optimize], [rwt search]): the [map] lines are optional. Returns
    [(name, pipeline, platform, mapping)] where [mapping] is [None] when
    the file carries no [map] line — the only way to describe a platform
    with fewer processors than stages, which the searchers then reject
    with their own typed error. Present [map] lines are validated exactly
    as in {!of_string}. *)

val save : string -> Instance.t -> unit
(** @raise Sys_error on I/O failure. *)

val load : string -> (Instance.t, Rwt_err.t) result
(** {!of_string} on the file's contents; I/O failures become {!Rwt_err.Parse}
    errors with code ["parse.io"]. *)

val load_problem :
  string ->
  (string * Pipeline.t * Platform.t * Mapping.t option, Rwt_err.t) result
(** {!problem_of_string} on the file's contents; I/O failures become
    {!Rwt_err.Parse} errors with code ["parse.io"]. *)
