(** End-to-end throughput analysis: period, [Mct] bound, critical-resource
    detection (is the period dictated by a single saturated resource?) and
    the gap statistics reported in the paper's Table 2. *)

open Rwt_util
open Rwt_workflow

type method_ =
  | Auto  (** Theorem 1 for OVERLAP, full TPN for STRICT *)
  | Tpn  (** full TPN for both *)
  | Poly  (** Theorem 1 (OVERLAP only) *)

type report = {
  model : Comm_model.t;
  period : Rat.t;
  throughput : Rat.t;
  mct : Rat.t;
  bottleneck : Cycle_time.resource;  (** the resource achieving [Mct] *)
  has_critical_resource : bool;  (** [period = Mct] exactly *)
  gap : Rat.t;  (** [(period − Mct) / Mct], 0 when critical *)
  degraded : string option;
      (** [Some reason] when the requested TPN route hit a capacity guard
          or deadline and the analysis fell back to the polynomial OVERLAP
          algorithm (exact for that model); [None] for a first-choice
          result. *)
}

val analyze :
  ?method_:method_ ->
  ?transition_cap:int ->
  ?deadline:(unit -> bool) ->
  Comm_model.t ->
  Instance.t ->
  (report, Rwt_err.t) result
(** [transition_cap] bounds the size of any TPN the analysis constructs
    (default: the process-wide [Rwt_petri.Expand.transition_cap ()]);
    the polynomial route never builds the full net and ignores it.
    [deadline] is polled inside the solvers (see [Rwt_petri.Mcr]).

    Degradation policy: with [method_ = Tpn] on the OVERLAP model, a
    {!Rwt_err.Capacity} or {!Rwt_err.Timeout} failure in the exact TPN
    route falls back to the polynomial algorithm — still exact for that
    model — and the report carries [degraded = Some reason]. The STRICT
    model has no polynomial fallback, so those errors propagate.

    [Error] carries class [Validate] (code ["validate.method"]) if [Poly]
    is requested for the STRICT model (no polynomial algorithm is known;
    the paper leaves it open), and class [Capacity]/[Timeout] when the
    STRICT TPN route exceeds the cap or deadline. *)

val analyze_exn :
  ?method_:method_ ->
  ?transition_cap:int ->
  ?deadline:(unit -> bool) ->
  Comm_model.t ->
  Instance.t ->
  report
(** Exception shim for {!analyze}.
    @raise Rwt_err.Error on the same conditions. *)

val pp_report : Format.formatter -> report -> unit

val report_to_json : Instance.t -> report -> Rwt_util.Json.t
(** Machine-readable report: exact rationals as strings, float
    approximations alongside, plus the per-resource cycle-time table. *)
