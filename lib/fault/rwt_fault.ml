open Rwt_util

type action = Error_ | Capacity | Timeout | Delay of float | Abort
type trigger = Always | Prob of float | Nth of int | After of int
type rule = { pattern : string; action : action; trigger : trigger }

(* --- armed state ---

   One process-wide armed spec. Batch workers hit points concurrently, so
   counter updates and PRNG draws run under a mutex; the decision is made
   inside the lock and the action (raise/sleep/abort) outside it. *)

type state = {
  rules : rule list;
  prng : Prng.t;
  hit_counts : (string, int) Hashtbl.t;
  mutable fired_n : int;
}

let armed : state option Atomic.t = Atomic.make None
let mu = Mutex.create ()

let active () = Atomic.get armed <> None

(* --- spec parsing --- *)

let parse_err msg = Rwt_err.parse ~code:"parse.fault_spec" msg

let parse_action s =
  match String.index_opt s ':' with
  | None ->
    (match s with
     | "error" -> Ok Error_
     | "capacity" -> Ok Capacity
     | "timeout" -> Ok Timeout
     | "abort" -> Ok Abort
     | _ -> Error (parse_err (Printf.sprintf "unknown action %S" s)))
  | Some i ->
    let head = String.sub s 0 i and arg = String.sub s (i + 1) (String.length s - i - 1) in
    (match head with
     | "delay" ->
       (match float_of_string_opt arg with
        | Some ms when ms >= 0.0 -> Ok (Delay (ms /. 1000.0))
        | _ -> Error (parse_err (Printf.sprintf "bad delay %S (milliseconds expected)" arg)))
     | _ -> Error (parse_err (Printf.sprintf "unknown action %S" head)))

let parse_trigger s =
  if s = "" then Error (parse_err "empty trigger after '@'")
  else
    match s.[0] with
    | 'p' ->
      let arg = String.sub s 1 (String.length s - 1) in
      (match float_of_string_opt arg with
       | Some p when p >= 0.0 && p <= 1.0 -> Ok (Prob p)
       | _ -> Error (parse_err (Printf.sprintf "bad probability %S (expected p<float in [0,1]>)" s)))
    | '#' ->
      (match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
       | Some n when n >= 1 -> Ok (Nth n)
       | _ -> Error (parse_err (Printf.sprintf "bad hit index %S (expected #<positive int>)" s)))
    | '+' ->
      (match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
       | Some n when n >= 0 -> Ok (After n)
       | _ -> Error (parse_err (Printf.sprintf "bad hit threshold %S (expected +<int>)" s)))
    | _ -> Error (parse_err (Printf.sprintf "unknown trigger %S" s))

let parse spec =
  let exception Fail of Rwt_err.t in
  let ok_or_fail = function Ok v -> v | Error e -> raise (Fail e) in
  try
    let seed = ref 0 in
    let rules = ref [] in
    String.split_on_char ';' spec
    |> List.iter (fun clause ->
           let clause = String.trim clause in
           if clause <> "" then
             match String.index_opt clause '=' with
             | None ->
               raise (Fail (parse_err (Printf.sprintf "clause %S has no '='" clause)))
             | Some i ->
               let key = String.trim (String.sub clause 0 i) in
               let value =
                 String.trim (String.sub clause (i + 1) (String.length clause - i - 1))
               in
               if key = "" then
                 raise (Fail (parse_err (Printf.sprintf "clause %S has an empty point" clause)))
               else if key = "seed" then
                 match int_of_string_opt value with
                 | Some s -> seed := s
                 | None -> raise (Fail (parse_err (Printf.sprintf "bad seed %S" value)))
               else begin
                 let action, trigger =
                   match String.index_opt value '@' with
                   | None -> (ok_or_fail (parse_action value), Always)
                   | Some j ->
                     ( ok_or_fail (parse_action (String.sub value 0 j)),
                       ok_or_fail
                         (parse_trigger
                            (String.sub value (j + 1) (String.length value - j - 1))) )
                 in
                 rules := { pattern = key; action; trigger } :: !rules
               end);
    if !rules = [] then Error (parse_err "spec arms no fault point")
    else Ok (List.rev !rules, !seed)
  with Fail e -> Error e

(* --- matching and firing --- *)

let matches pattern name =
  let lp = String.length pattern in
  if lp > 0 && pattern.[lp - 1] = '*' then
    let prefix = String.sub pattern 0 (lp - 1) in
    String.length name >= lp - 1 && String.sub name 0 (lp - 1) = prefix
  else pattern = name

let fault_error name count action =
  let context = [ ("point", name); ("hit", string_of_int count) ] in
  match action with
  | Error_ ->
    Rwt_err.fault ~code:"fault.injected" ~context
      (Printf.sprintf "injected fault at %s" name)
  | Capacity ->
    Rwt_err.capacity ~code:"fault.capacity" ~context
      (Printf.sprintf "injected capacity exhaustion at %s" name)
  | Timeout ->
    Rwt_err.timeout ~code:"fault.timeout" ~context
      (Printf.sprintf "injected timeout at %s" name)
  | Delay _ | Abort -> assert false

let point name =
  match Atomic.get armed with
  | None -> ()
  | Some st ->
    let decision =
      Mutex.protect mu (fun () ->
          match List.find_opt (fun r -> matches r.pattern name) st.rules with
          | None -> None
          | Some r ->
            let count = 1 + (try Hashtbl.find st.hit_counts name with Not_found -> 0) in
            Hashtbl.replace st.hit_counts name count;
            let fire =
              match r.trigger with
              | Always -> true
              | Prob p -> Prng.float st.prng 1.0 < p
              | Nth n -> count = n
              | After n -> count > n
            in
            if fire then begin
              st.fired_n <- st.fired_n + 1;
              Some (r.action, count)
            end
            else None)
    in
    (match decision with
     | None -> ()
     | Some (Delay s, _) ->
       Rwt_obs.incr "fault.delays";
       Unix.sleepf s
     | Some (Abort, count) ->
       (* a simulated kill: say why on stderr, then die without flushing
          stdout or running at_exit — exactly what crash-recovery tests
          need to interrupt a batch mid-run *)
       Printf.eprintf "rwt: fault: injected abort at %s (hit %d)\n%!" name count;
       Unix._exit 70
     | Some ((Error_ | Capacity | Timeout) as action, count) ->
       Rwt_obs.incr "fault.injected";
       raise (Rwt_err.Error (fault_error name count action)))

let clear () =
  Rwt_obs.set_span_hook None;
  Atomic.set armed None

let install spec =
  match parse spec with
  | Error e -> Error e
  | Ok (rules, seed) ->
    Atomic.set armed
      (Some
         { rules; prng = Prng.create seed; hit_counts = Hashtbl.create 16; fired_n = 0 });
    Rwt_obs.set_span_hook (Some point);
    Ok ()

let install_from_env () =
  match Sys.getenv_opt "RWT_FAULT" with
  | None | Some "" -> Ok ()
  | Some spec -> install spec

let hits () =
  match Atomic.get armed with
  | None -> []
  | Some st ->
    Mutex.protect mu (fun () ->
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.hit_counts []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b))

let fired () =
  match Atomic.get armed with
  | None -> 0
  | Some st -> Mutex.protect mu (fun () -> st.fired_n)
