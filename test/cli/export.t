Schedules export to CSV and JSON for external tooling.

  $ rwt gantt -e no-replication --export csv --datasets 2 | head -4
  dataset,kind,index,proc,src,dst,start,finish,start_float,finish_float
  0,compute,0,0,,,0,12,0,12
  0,transfer,0,,0,1,12,21,12,21
  0,compute,1,1,,,21,51,21,51

  $ rwt gantt -e no-replication --export json --datasets 1 | head -5
  {
    "instance": "no-replication",
    "model": "overlap",
    "datasets": 1,
    "events": [

  $ rwt gantt -e a --export yaml
  rwt: unknown export format "yaml" (json or csv)
  [1]
