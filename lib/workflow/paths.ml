let num_paths = Mapping.num_paths

let path m d =
  Array.init (Mapping.n_stages m) (fun i -> Mapping.proc_for m ~stage:i ~dataset:d)

let first_paths m k = List.init k (fun d -> path m d)

let distinct_paths m = first_paths m (num_paths m)

let verify_period m =
  let period = num_paths m in
  let p0 = path m 0 in
  (* the sequence repeats at m ... *)
  path m period = p0
  (* ... and at no smaller positive shift (uniformly over offsets) *)
  && (let smaller_period q =
        let rec all d = d >= period || (path m d = path m (d + q) && all (d + 1)) in
        all 0
      in
      let rec none q = q >= period || ((not (smaller_period q)) && none (q + 1)) in
      none 1)

let pp_table fmt (m, k) =
  Format.fprintf fmt "@[<v>%-10s %s@," "Input data" "Path in the system";
  for d = 0 to k - 1 do
    let names = Array.to_list (Array.map Platform.proc_name (path m d)) in
    Format.fprintf fmt "%-10d %s@," d (String.concat " -> " names)
  done;
  Format.fprintf fmt "@]"
