(** The application model: a linear chain of [n] stages [S_0 … S_{n-1}].
    Stage [S_k] costs [w_k] FLOP and passes a file [F_k] of [δ_k] bytes to
    [S_{k+1}] (Figure 1 of the paper). *)

open Rwt_util

type t

val create : work:Rat.t array -> data:Rat.t array -> t
(** [create ~work ~data] with [length data = length work - 1]; all sizes must
    be [>= 0] and there must be at least one stage.
    @raise Invalid_argument otherwise. *)

val rename : t -> string array -> t
(** Replace the stage labels. @raise Invalid_argument on arity mismatch. *)

val of_ints : work:int array -> data:int array -> t

val n_stages : t -> int

val work : t -> int -> Rat.t
(** [work p k] is [w_k]. *)

val data : t -> int -> Rat.t
(** [data p k] is [δ_k], the size of file [F_k], for [k < n_stages - 1]. *)

val name : t -> int -> string
(** Stage label, defaulting to ["S<k>"]. *)

val pp : Format.formatter -> t -> unit
