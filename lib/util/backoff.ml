type t = {
  base_ms : float;
  cap_ms : float;
  prng : Prng.t;
  mutable prev_ms : float;
  mutable attempts : int;
}

let create ?(cap_ms = 10_000.0) ?(seed = 0) ~base_ms () =
  let base_ms = Float.max 0.0 base_ms in
  let cap_ms = Float.max 0.0 cap_ms in
  { base_ms; cap_ms; prng = Prng.create seed; prev_ms = base_ms; attempts = 0 }

let next_ms t =
  t.attempts <- t.attempts + 1;
  let hi = t.prev_ms *. 3.0 in
  let d =
    if hi <= t.base_ms then t.base_ms
    else t.base_ms +. Prng.float t.prng (hi -. t.base_ms)
  in
  let d = Float.min t.cap_ms d in
  t.prev_ms <- d;
  d

let attempts t = t.attempts
