(** Small integer number theory used by the round-robin path analysis
    (Proposition 1 needs [lcm] over replication counts, Theorem 1 needs
    [gcd]/[lcm] per stage pair). *)

val gcd : int -> int -> int
(** Non-negative gcd; [gcd 0 0 = 0]. *)

val lcm : int -> int -> int
(** Non-negative lcm of the absolute values.
    @raise Failure on native-int overflow. *)

val lcm_list : int list -> int
(** [lcm_list [] = 1]. @raise Failure on overflow. *)

val big_lcm_list : int list -> Bigint.t
(** Overflow-free lcm for reporting astronomically replicated mappings. *)

val mul_checked : int -> int -> int option
(** [Some (a * b)] when the product fits a native [int], [None] on
    overflow (including the [min_int * -1] corner). Used by size guards
    that must raise rather than wrap on adversarial inputs. *)

val add_checked : int -> int -> int option
(** [Some (a + b)] without wraparound, [None] on overflow. *)

val pow_int : int -> int -> int
(** [pow_int b k], [k >= 0], no overflow check. *)

val ceil_div : int -> int -> int
(** [ceil_div a b] for [a >= 0], [b > 0]. *)
