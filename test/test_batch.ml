(* Tests for Rwt_batch: job parsing, dedup/memoization, timeout semantics,
   and the headline determinism property — results are bit-identical no
   matter how many domains evaluate the stream. *)

open Rwt_util
module Batch = Rwt_batch
module Generator = Rwt_experiments.Generator

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let gen_cfg = { Generator.n_stages = 3; p = 8; comp = (2, 9); comm = (2, 9) }

let inline_jobs seed n =
  let r = Prng.create seed in
  (* a few forced duplicates so the cache path is always exercised *)
  let uniques = Array.init (max 1 (n - n / 4)) (fun _ -> Generator.generate r gen_cfg) in
  List.init n (fun i ->
      let inst = uniques.(i mod Array.length uniques) in
      Batch.job ~index:i ~model:Rwt_workflow.Comm_model.Overlap
        ~method_:Rwt_core.Analysis.Auto (Batch.Inline inst))

let render ?(timing = false) outcomes =
  String.concat "\n"
    (Array.to_list
       (Array.map (fun o -> Json.to_string (Batch.outcome_to_json ~timing o)) outcomes))

(* ------------------------------------------------------------------ *)
(* Determinism: jobs=1 and jobs=8 must agree bit for bit               *)
(* ------------------------------------------------------------------ *)

let determinism_across_workers =
  QCheck.Test.make ~count:15 ~name:"batch results identical for jobs=1 and jobs=8"
    (QCheck.pair (QCheck.int_range 0 10000) (QCheck.int_range 1 24))
    (fun (seed, n) ->
      let jobs = inline_jobs seed n in
      let out1, sum1 = Batch.run ~jobs:1 jobs in
      let out8, sum8 = Batch.run ~jobs:8 jobs in
      render out1 = render out8
      && sum1.Batch.ok = sum8.Batch.ok
      && sum1.Batch.cache_hits = sum8.Batch.cache_hits)

(* worker policy: an explicit [jobs] is honored (so traces can prove the
   parallel layers even on a single-core host) but never exceeds the unique
   job count; the automatic choice still falls back to one worker on tiny
   batches and single-core hosts *)
let worker_policy_units () =
  (* inline_jobs 7 2 has 2 jobs, both unique: explicit 8 is capped at 2 *)
  let _, small = Batch.run ~jobs:8 (inline_jobs 7 2) in
  Alcotest.(check int) "explicit jobs capped at unique count" 2
    small.Batch.workers;
  let _, one = Batch.run ~jobs:1 (inline_jobs 7 8) in
  Alcotest.(check int) "explicit jobs=1 runs sequentially" 1 one.Batch.workers;
  (* 24 jobs -> 18 uniques: explicit 8 is honored as given *)
  let _, big = Batch.run ~jobs:8 (inline_jobs 7 24) in
  Alcotest.(check int) "explicit jobs honored on big batches" 8
    big.Batch.workers;
  if Domain.recommended_domain_count () <= 1 then begin
    let _, auto = Batch.run (inline_jobs 7 24) in
    Alcotest.(check int) "automatic choice stays sequential on one core" 1
      auto.Batch.workers
  end;
  let _, tiny_auto = Batch.run (inline_jobs 7 2) in
  Alcotest.(check int) "automatic choice on a tiny batch is sequential" 1
    tiny_auto.Batch.workers

(* ------------------------------------------------------------------ *)
(* Pool scheduler: empty task sets, chunking, RWT_WORKERS precedence   *)
(* ------------------------------------------------------------------ *)

(* regression: an empty task set must return immediately without spinning
   up worker domains (or recording any pool activity) *)
let pool_empty_units () =
  let was_enabled = Rwt_obs.enabled () in
  Rwt_obs.enable ();
  Rwt_obs.reset ();
  let out = Rwt_pool.map ~workers:8 ~n:0 (fun _ -> Alcotest.fail "task ran") in
  Alcotest.(check int) "empty map returns [||]" 0 (Array.length out);
  Rwt_pool.run ~workers:8 ~n:0 (fun _ -> Alcotest.fail "task ran");
  Rwt_pool.run ~workers:8 ~n:(-3) (fun _ -> Alcotest.fail "task ran");
  Alcotest.(check bool) "no worker spans recorded" true
    (Rwt_obs.histogram_summary "pool.worker_busy_s" = None);
  Alcotest.(check int) "no chunks submitted" 0
    (Rwt_obs.counter_value "pool.chunks");
  Rwt_obs.reset ();
  if not was_enabled then Rwt_obs.disable ()

let chunk_determinism =
  QCheck.Test.make ~count:25
    ~name:"pool map identical across workers and chunk sizes"
    (QCheck.triple (QCheck.int_range 0 200) (QCheck.int_range 1 8)
       (QCheck.int_range 1 17))
    (fun (n, workers, chunk) ->
      let f i = (i * 2654435761) lxor (i lsl 3) in
      Array.init n f = Rwt_pool.map ~workers ~chunk ~n f)

(* precedence: explicit argument > default_workers > RWT_WORKERS > auto *)
let env_workers_units () =
  let saved = try Some (Sys.getenv "RWT_WORKERS") with Not_found -> None in
  let saved_default = !Rwt_pool.default_workers in
  let restore () =
    Rwt_pool.default_workers := saved_default;
    (* putenv cannot unset; "" parses as malformed and is ignored *)
    Unix.putenv "RWT_WORKERS" (match saved with Some s -> s | None -> "")
  in
  Fun.protect ~finally:restore (fun () ->
      Unix.putenv "RWT_WORKERS" "3";
      Rwt_pool.default_workers := 0;
      Alcotest.(check (option int)) "env parsed" (Some 3)
        (Rwt_pool.env_workers ());
      Alcotest.(check int) "env drives resolved default" 3
        (Rwt_pool.resolved_default ());
      Rwt_pool.default_workers := 5;
      Alcotest.(check int) "pinned default beats env" 5
        (Rwt_pool.resolved_default ());
      Rwt_pool.default_workers := 0;
      (* batch: automatic policy honors the override, explicit --jobs wins *)
      let _, auto = Batch.run (inline_jobs 7 24) in
      Alcotest.(check int) "batch auto honors RWT_WORKERS" 3 auto.Batch.workers;
      let _, expl = Batch.run ~jobs:2 (inline_jobs 7 24) in
      Alcotest.(check int) "explicit jobs beats env" 2 expl.Batch.workers;
      Unix.putenv "RWT_WORKERS" "banana";
      Alcotest.(check (option int)) "malformed env ignored" None
        (Rwt_pool.env_workers ());
      Unix.putenv "RWT_WORKERS" "-2";
      Alcotest.(check (option int)) "non-positive env ignored" None
        (Rwt_pool.env_workers ()))

(* ------------------------------------------------------------------ *)
(* Dedup / memo cache                                                  *)
(* ------------------------------------------------------------------ *)

let cache_units () =
  let r = Prng.create 42 in
  let inst = Generator.generate r gen_cfg in
  let mk i = Batch.job ~index:i ~model:Rwt_workflow.Comm_model.Overlap
      ~method_:Rwt_core.Analysis.Auto (Batch.Inline inst)
  in
  let outcomes, summary = Batch.run ~jobs:1 [ mk 0; mk 1; mk 2 ] in
  Alcotest.(check int) "total" 3 summary.Batch.total;
  Alcotest.(check int) "ok" 3 summary.Batch.ok;
  Alcotest.(check int) "cache hits" 2 summary.Batch.cache_hits;
  Alcotest.(check bool) "first is a miss" false outcomes.(0).Batch.cache_hit;
  Alcotest.(check bool) "second is a hit" true outcomes.(1).Batch.cache_hit;
  Alcotest.(check bool) "third is a hit" true outcomes.(2).Batch.cache_hit;
  (match (outcomes.(0).Batch.period, outcomes.(2).Batch.period) with
   | Some p0, Some p2 ->
       Alcotest.(check bool) "hit returns the memoized period" true (Rat.equal p0 p2)
   | _ -> Alcotest.fail "expected periods on all three outcomes");
  (* same instance under a different model is a distinct cache key *)
  let strict = Batch.job ~index:3 ~model:Rwt_workflow.Comm_model.Strict
      ~method_:Rwt_core.Analysis.Auto (Batch.Inline inst)
  in
  let outcomes', _ = Batch.run ~jobs:1 [ mk 0; strict ] in
  Alcotest.(check bool) "different model misses" false outcomes'.(1).Batch.cache_hit

(* ------------------------------------------------------------------ *)
(* Timeout path: deadline 0 is already expired at the first checkpoint *)
(* ------------------------------------------------------------------ *)

let timeout_units () =
  let jobs = inline_jobs 7 5 in
  let outcomes, summary = Batch.run ~jobs:2 ~timeout:0.0 jobs in
  Alcotest.(check int) "no successes" 0 summary.Batch.ok;
  Array.iter
    (fun o ->
      match o.Batch.status with
      | Batch.Timed_out -> ()
      | Batch.Done -> Alcotest.fail "job finished despite expired deadline"
      | Batch.Failed e -> Alcotest.fail ("unexpected failure: " ^ Rwt_err.to_line e))
    outcomes;
  (* every outcome (cache-hit replays included) counts in the summary *)
  Alcotest.(check int) "all timed out" summary.Batch.total summary.Batch.timeouts;
  Array.iter
    (fun o -> Alcotest.(check bool) "no period" true (o.Batch.period = None))
    outcomes

(* ------------------------------------------------------------------ *)
(* Job-file parsing                                                    *)
(* ------------------------------------------------------------------ *)

let parse_units () =
  let contents =
    String.concat "\n"
      [ "a.rwt"; ""; "# comment";
        {|{"file":"b.rwt","model":"strict","method":"tpn","id":"b1"}|};
        "  c.rwt  " ]
  in
  let jobs =
    match Batch.parse_jobs contents with
    | Ok js -> js
    | Error e -> Alcotest.fail ("parse_jobs: " ^ Rwt_err.to_line e)
  in
  Alcotest.(check int) "three jobs" 3 (List.length jobs);
  let j0 = List.nth jobs 0 and j1 = List.nth jobs 1 and j2 = List.nth jobs 2 in
  (match j0.Batch.spec with
   | Batch.File f -> Alcotest.(check string) "bare path" "a.rwt" f
   | Batch.Inline _ -> Alcotest.fail "expected File spec");
  Alcotest.(check (option string)) "bare path has no id" None j0.Batch.id;
  Alcotest.(check (option string)) "explicit id" (Some "b1") j1.Batch.id;
  Alcotest.(check bool) "model strict" true
    (j1.Batch.model = Rwt_workflow.Comm_model.Strict);
  Alcotest.(check bool) "method tpn" true (j1.Batch.method_ = Rwt_core.Analysis.Tpn);
  (match j2.Batch.spec with
   | Batch.File f -> Alcotest.(check string) "whitespace trimmed" "c.rwt" f
   | Batch.Inline _ -> Alcotest.fail "expected File spec");
  Alcotest.(check int) "indices are stream positions" 2 j2.Batch.index;
  let rejected contents =
    match Batch.parse_jobs contents with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "unknown key rejected" true
    (rejected {|{"file":"a","frobnicate":1}|});
  Alcotest.(check bool) "missing file rejected" true (rejected {|{"id":"x"}|});
  Alcotest.(check bool) "bad model rejected" true
    (rejected {|{"file":"a","model":"warp"}|});
  Alcotest.(check bool) "non-object rejected" true (rejected "[1,2]")

(* ------------------------------------------------------------------ *)
(* NDJSON rendering                                                    *)
(* ------------------------------------------------------------------ *)

let ndjson_units () =
  let jobs = inline_jobs 11 3 in
  let outcomes, _ = Batch.run ~jobs:1 jobs in
  Array.iter
    (fun o ->
      let line = Json.to_string (Batch.outcome_to_json ~timing:false o) in
      Alcotest.(check bool) "single line" false (String.contains line '\n');
      match Json.of_string line with
      | Ok (Json.Obj fields) ->
          Alcotest.(check bool) "has job index" true (List.mem_assoc "job" fields);
          Alcotest.(check bool) "has status" true (List.mem_assoc "status" fields);
          Alcotest.(check bool) "timing suppressed" false (List.mem_assoc "wall_s" fields)
      | Ok _ -> Alcotest.fail "outcome must render as an object"
      | Error e -> Alcotest.fail ("unparsable NDJSON line: " ^ e))
    outcomes;
  let timed = Json.to_string (Batch.outcome_to_json ~timing:true outcomes.(0)) in
  match Json.of_string timed with
  | Ok (Json.Obj fields) ->
      Alcotest.(check bool) "timing present" true (List.mem_assoc "wall_s" fields)
  | _ -> Alcotest.fail "unparsable timed line"

let () =
  (* hermetic: a stray RWT_WORKERS in the environment would change the
     automatic worker policy that several tests assert on ("" is ignored) *)
  Unix.putenv "RWT_WORKERS" "";
  Alcotest.run "rwt_batch"
    [ ( "determinism", [ qtest determinism_across_workers ] );
      ( "workers",
        [ Alcotest.test_case "worker policy" `Quick worker_policy_units;
          Alcotest.test_case "env override" `Quick env_workers_units ] );
      ( "pool",
        [ Alcotest.test_case "empty task set" `Quick pool_empty_units;
          qtest chunk_determinism ] );
      ( "cache", [ Alcotest.test_case "units" `Quick cache_units ] );
      ( "timeout", [ Alcotest.test_case "units" `Quick timeout_units ] );
      ( "parse", [ Alcotest.test_case "units" `Quick parse_units ] );
      ( "ndjson", [ Alcotest.test_case "units" `Quick ndjson_units ] ) ]
