# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench bench-full examples clean fmt doc

all: build

build:
	dune build @all

test:
	dune runtest

test-force:
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt

bench:
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

bench-full:
	dune exec bench/main.exe -- table2-full

examples:
	dune exec examples/quickstart.exe
	dune exec examples/paper_examples.exe
	dune exec examples/video_pipeline.exe
	dune exec examples/grid_datacutter.exe
	dune exec examples/replication_sweep.exe

clean:
	dune clean
