type t = Overlap | Strict

let all = [ Overlap; Strict ]

let to_string = function Overlap -> "overlap" | Strict -> "strict"

let of_string = function
  | "overlap" -> Some Overlap
  | "strict" -> Some Strict
  | _ -> None

let pp fmt t = Format.pp_print_string fmt (to_string t)
let equal a b = a = b
