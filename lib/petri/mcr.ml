module D = Rwt_graph.Digraph
module Obs = Rwt_obs
module Json = Rwt_util.Json

(* Cooperative deadline: solvers poll the closure at iteration granularity
   (policy rounds, BF passes, Karp levels) so a batch per-job timeout can
   fire inside a long solve rather than only between pipeline stages. *)
let check_deadline = function
  | None -> ()
  | Some d ->
    if d () then begin
      Obs.incr "mcr.deadline_trips";
      Rwt_util.Rwt_err.raise_
        (Rwt_util.Rwt_err.timeout ~code:"mcr.deadline"
           "solver deadline exceeded (cooperative checkpoint)")
    end

(* Parallelism gate for per-SCC solves. Historically a fixed edge count
   (2048): big graphs fan components out on the shared pool ({!Rwt_pool}),
   small ones stay serial because the spawn/join overhead outweighs the
   win. The fixed gate is kept for [scc_parallel_threshold >= 0] (so [0]
   still forces the pool and [max_int] still forces serial — benches and
   tests rely on both), but the default [-1] decides adaptively: the
   solvers feed an EWMA of measured per-edge solve seconds, and a graph
   goes parallel when its predicted serial cost
   [edges * per_edge_seconds] crosses [scc_min_parallel_cost]. The EWMA
   bootstraps at [scc_min_parallel_cost / 2048] so the very first solves
   behave exactly like the historical 2048-edge gate, then the measured
   cost takes over — cheap float screens raise the effective edge
   threshold, expensive exact kernels lower it. *)
let scc_parallel_threshold = ref (-1)
let scc_min_parallel_cost = ref 1e-3

(* per-edge solve seconds as an EWMA; stored as float bits in an Atomic
   because pool workers publish measurements concurrently *)
let scc_cost_bootstrap () = !scc_min_parallel_cost /. 2048.
let scc_cost_bits = Atomic.make (Int64.bits_of_float (1e-3 /. 2048.))
let scc_edge_cost () = Int64.float_of_bits (Atomic.get scc_cost_bits)
let scc_cost_reset () = Atomic.set scc_cost_bits (Int64.bits_of_float (scc_cost_bootstrap ()))

let note_scc_cost ~edges seconds =
  if edges > 0 && seconds > 0. && seconds < 3600. then begin
    let per_edge = seconds /. float_of_int edges in
    let rec publish () =
      let old_bits = Atomic.get scc_cost_bits in
      let old = Int64.float_of_bits old_bits in
      let next = (0.9 *. old) +. (0.1 *. per_edge) in
      if not (Atomic.compare_and_set scc_cost_bits old_bits (Int64.bits_of_float next))
      then publish ()
    in
    publish ()
  end

let scc_parallel ~n_comps ~edges =
  n_comps >= 2
  &&
  let t = !scc_parallel_threshold in
  if t >= 0 then edges >= t
  else float_of_int edges *. scc_edge_cost () >= !scc_min_parallel_cost

module Make (N : Rwt_util.Num_intf.S) = struct
  type edge_data = { weight : N.t; tokens : int }
  type graph = edge_data D.t

  (* which instantiation is talking, for the convergence-event stream;
     overwritten right after [Exact]/[Approx] are built below (the field
     stays internal: the mli's [Make] signature hides it) *)
  let kernel = ref "num"

  (* λ rendered for the event stream: the float field is for plotting, the
     exact literal (kernel-dependent) for auditing certified bounds *)
  let lambda_fields lam =
    [ ("lambda", Json.Float (N.to_float lam));
      ("lambda_exact", Json.String (Format.asprintf "%a" N.pp lam)) ]

  exception Not_live of int list

  type witness = { ratio : N.t; cycle : int list }

  let cycle_ratio g edge_ids =
    match edge_ids with
    | [] -> invalid_arg "Mcr.cycle_ratio: empty cycle"
    | first :: _ ->
      let rec go ids w t prev_dst =
        match ids with
        | [] ->
          if prev_dst <> (D.edge g first).D.src then
            invalid_arg "Mcr.cycle_ratio: edges do not close a cycle";
          (w, t)
        | id :: rest ->
          let e = D.edge g id in
          if e.D.src <> prev_dst then invalid_arg "Mcr.cycle_ratio: edges not consecutive";
          go rest (N.add w e.D.label.weight) (t + e.D.label.tokens) e.D.dst
      in
      let w, t = go edge_ids N.zero 0 (D.edge g first).D.src in
      if t <= 0 then invalid_arg "Mcr.cycle_ratio: token-free cycle";
      N.div w (N.of_int t)

  (* Liveness: the subgraph of token-free edges must be acyclic, otherwise a
     circuit would deadlock (infinite ratio). *)
  let check_live g =
    Obs.incr "mcr.liveness_checks";
    let n = D.num_nodes g in
    let g0 = D.create n in
    D.iter_edges
      (fun e -> if e.D.label.tokens = 0 then ignore (D.add_edge g0 e.D.src e.D.dst ()))
      g;
    match Rwt_graph.Topo.sort g0 with
    | Some _ -> ()
    | None ->
      let color = Array.make n 0 in
      let parent = Array.make n (-1) in
      let cycle = ref [] in
      let rec dfs u =
        color.(u) <- 1;
        List.iter
          (fun e ->
            let v = e.D.dst in
            if !cycle = [] then
              if color.(v) = 0 then begin
                parent.(v) <- u;
                dfs v
              end
              else if color.(v) = 1 then begin
                let rec collect x acc =
                  if x = v then v :: acc else collect parent.(x) (x :: acc)
                in
                cycle := collect u []
              end)
          (D.out_edges g0 u);
        color.(u) <- 2
      in
      let u = ref 0 in
      while !cycle = [] && !u < n do
        if color.(!u) = 0 then dfs !u;
        incr u
      done;
      raise (Not_live !cycle)

  (* Per-SCC working representation: CSR out-adjacency over local node
     indices, keeping original edge ids for witness extraction. *)
  type ctx = {
    n : int;
    eptr : int array; (* length n+1 *)
    edst : int array;
    ew : N.t array;
    et : int array;
    eid : int array;
  }

  let build_ctx g members comp_id comp_of =
    let nodes = Array.of_list members in
    let n = Array.length nodes in
    let local = Hashtbl.create (2 * n) in
    Array.iteri (fun i u -> Hashtbl.replace local u i) nodes;
    let deg = Array.make n 0 in
    let edges = ref [] in
    let m = ref 0 in
    Array.iteri
      (fun i u ->
        List.iter
          (fun e ->
            if comp_of.(e.D.dst) = comp_id then begin
              edges := (i, e) :: !edges;
              deg.(i) <- deg.(i) + 1;
              incr m
            end)
          (D.out_edges g u))
      nodes;
    let eptr = Array.make (n + 1) 0 in
    for i = 0 to n - 1 do
      eptr.(i + 1) <- eptr.(i) + deg.(i)
    done;
    let pos = Array.copy eptr in
    let edst = Array.make !m 0 in
    let ew = Array.make !m N.zero in
    let et = Array.make !m 0 in
    let eid = Array.make !m 0 in
    List.iter
      (fun (u, e) ->
        let i = pos.(u) in
        pos.(u) <- i + 1;
        edst.(i) <- Hashtbl.find local e.D.dst;
        ew.(i) <- e.D.label.weight;
        et.(i) <- e.D.label.tokens;
        eid.(i) <- e.D.id)
      !edges;
    { n; eptr; edst; ew; et; eid }

  (* Cycles of a policy (functional) graph: per cycle, the entry node and the
     ordered list of local edge indices. *)
  let policy_cycles ctx policy =
    let state = Array.make ctx.n 0 in
    (* 0 = unvisited, t > 0 = on walk #t, -1 = settled *)
    let cycles = ref [] in
    let tag = ref 0 in
    for start = 0 to ctx.n - 1 do
      if state.(start) = 0 then begin
        incr tag;
        let t = !tag in
        let x = ref start in
        let path = ref [] in
        while state.(!x) = 0 do
          state.(!x) <- t;
          path := !x :: !path;
          x := ctx.edst.(policy.(!x))
        done;
        if state.(!x) = t then begin
          let entry = !x in
          let rec collect y acc =
            let acc = policy.(y) :: acc in
            let z = ctx.edst.(policy.(y)) in
            if z = entry then List.rev acc else collect z acc
          in
          cycles := (entry, collect entry []) :: !cycles
        end;
        List.iter (fun y -> state.(y) <- -1) !path
      end
    done;
    !cycles

  let ratio_of_edges ctx edges =
    let w = List.fold_left (fun acc i -> N.add acc ctx.ew.(i)) N.zero edges in
    let t = List.fold_left (fun acc i -> acc + ctx.et.(i)) 0 edges in
    if t <= 0 then raise (Not_live []);
    N.div w (N.of_int t)

  (* Positive-cycle detection under reduced weights w − λ·t: n rounds of
     Bellman–Ford (longest path) from an implicit super-source. A relaxation
     in pass n certifies a positive cycle living in the predecessor graph;
     walking predecessor edges with visited marks must revisit a node within
     n steps. Reduced weights are materialized once (one exact sub/mul per
     edge) instead of per edge per round — with a rational kernel that sub
     and mul dominate the pass, so this is the difference between O(m) and
     O(n·m) exact multiplications per check. *)
  exception Broken_pred_walk

  let find_positive_cycle ?deadline ctx lambda =
    Obs.incr "mcr.cycle_checks";
    let m = ctx.eptr.(ctx.n) in
    let red = Array.init m (fun i -> N.sub ctx.ew.(i) (N.mul lambda (N.of_int ctx.et.(i)))) in
    let dist = Array.make ctx.n N.zero in
    let pred = Array.make ctx.n (-1) in
    let changed = ref true in
    let last_changed = ref (-1) in
    let round = ref 0 in
    while !changed && !round < ctx.n do
      check_deadline deadline;
      incr round;
      changed := false;
      for u = 0 to ctx.n - 1 do
        for i = ctx.eptr.(u) to ctx.eptr.(u + 1) - 1 do
          let z = ctx.edst.(i) in
          let cand = N.add dist.(u) red.(i) in
          if N.compare cand dist.(z) > 0 then begin
            dist.(z) <- cand;
            pred.(z) <- i;
            changed := true;
            last_changed := z
          end
        done
      done
    done;
    Obs.add "mcr.bf_rounds" !round;
    if not !changed then None
    else begin
      let src_of i =
        (* source node of local edge i: binary search over the CSR ranges *)
        let rec find lo hi =
          if hi - lo <= 1 then lo
          else
            let mid = (lo + hi) / 2 in
            if ctx.eptr.(mid) <= i then find mid hi else find lo mid
        in
        find 0 ctx.n
      in
      (* With an exact kernel the walk provably revisits a node before any
         nil predecessor: a pass-n relaxation needs a chain of n improving
         relaxations, which must fold onto a cycle among n nodes. An unstable
         kernel (float drift, NaN) can break that chain; following a nil
         predecessor would fabricate a cycle out of node 0's edges, so the
         walk degrades to None instead — callers treat it as "no positive
         cycle", which for the parametric iteration means convergence. *)
      let walk () =
        let visited = Array.make ctx.n false in
        let x = ref !last_changed in
        while not visited.(!x) do
          visited.(!x) <- true;
          let p = pred.(!x) in
          if p < 0 then raise Broken_pred_walk;
          x := src_of p
        done;
        let start = !x in
        let acc = ref [] in
        let y = ref start in
        let first = ref true in
        while !first || !y <> start do
          first := false;
          let e = pred.(!y) in
          if e < 0 then raise Broken_pred_walk;
          acc := e :: !acc;
          y := src_of e
        done;
        Some !acc
      in
      try walk ()
      with Broken_pred_walk ->
        Obs.incr "mcr.pred_walk_degraded";
        None
    end

  (* Certification primitive over the whole graph: a cycle of strictly
     positive reduced weight at λ, as original edge ids, or [None] when λ is
     an upper bound on every cycle ratio. Used by the screened solver to
     certify a float candidate in a single exact pass, and exposed for the
     solver tests. *)
  let positive_cycle ?deadline g lambda =
    let scc = Rwt_graph.Scc.tarjan g in
    let members = Rwt_graph.Scc.members scc in
    let found = ref None in
    Array.iteri
      (fun comp_id nodes ->
        if !found = None then begin
          let ctx = build_ctx g nodes comp_id scc.Rwt_graph.Scc.comp in
          if ctx.n >= 2 || ctx.eptr.(ctx.n) > 0 then
            match find_positive_cycle ?deadline ctx lambda with
            | Some cyc -> found := Some (List.map (fun i -> ctx.eid.(i)) cyc)
            | None -> ()
        end)
      members;
    !found

  (* Parametric cycle improvement — unconditionally correct reference:
     start from any cycle's ratio λ; while the graph has a cycle of positive
     reduced weight (w − λ·t), replace λ by that cycle's ratio. Each step
     strictly increases λ within the finite set of simple-cycle ratios. *)
  let parametric_scc ?deadline ctx =
    let policy = Array.init ctx.n (fun u -> ctx.eptr.(u)) in
    let cyc0 =
      match policy_cycles ctx policy with
      | (_, c) :: _ -> c
      | [] -> invalid_arg "Mcr: SCC without a cycle"
    in
    let lambda = ref (ratio_of_edges ctx cyc0) in
    let best = ref cyc0 in
    let continue_ = ref true in
    while !continue_ do
      Obs.incr "mcr.iterations";
      check_deadline deadline;
      match find_positive_cycle ?deadline ctx !lambda with
      | None -> continue_ := false
      | Some cyc ->
        let r = ratio_of_edges ctx cyc in
        if N.compare r !lambda <= 0 then
          (* impossible with exact arithmetic; guards float instability *)
          continue_ := false
        else begin
          lambda := r;
          best := cyc
        end
    done;
    (!lambda, !best)

  (* Lawler's binary search: bisect λ on [some cycle ratio, max achievable],
     using positive-cycle existence as the feasibility predicate. Stops when
     the bracket is narrower than [epsilon]; the returned value is the exact
     ratio of a genuine cycle within [epsilon] of the optimum (so for the
     exact kernel it is a certified lower bound, and the solver of choice
     when an approximation is acceptable on huge graphs). *)
  let lawler_scc ~epsilon ?deadline ctx =
    let policy = Array.init ctx.n (fun u -> ctx.eptr.(u)) in
    let cyc0 =
      match policy_cycles ctx policy with
      | (_, c) :: _ -> c
      | [] -> invalid_arg "Mcr: SCC without a cycle"
    in
    let best = ref cyc0 in
    let lo = ref (ratio_of_edges ctx cyc0) in
    (* any cycle ratio is bounded by the largest edge weight over the
       smallest positive token count (1) times the cycle length factor:
       sum w / sum t <= sum of positive weights *)
    let hi = ref N.zero in
    Array.iter (fun w -> if N.compare w N.zero > 0 then hi := N.add !hi w) ctx.ew;
    if N.compare !hi !lo < 0 then hi := !lo;
    while N.compare (N.sub !hi !lo) epsilon > 0 do
      Obs.incr "mcr.iterations";
      check_deadline deadline;
      let mid = N.div (N.add !lo !hi) (N.of_int 2) in
      match find_positive_cycle ?deadline ctx mid with
      | Some cyc ->
        let r = ratio_of_edges ctx cyc in
        best := cyc;
        (* r > mid by construction: jump the lower bound to the witness *)
        lo := N.max r mid
      | None -> hi := mid
    done;
    (* Return the witness cycle's own ratio, not [!lo]: after a positive
       round [!lo] is [max r mid] which can be a bisection midpoint — an
       artifact of the search, not the ratio of any cycle. The witness ratio
       is a genuine certified lower bound and, for a stable kernel, equals
       [!lo] whenever the last update came from the witness. *)
    (ratio_of_edges ctx !best, !best)

  (* Howard policy iteration. The result is self-certifying: at termination
     no edge improves the potentials, which proves λ ≥ every cycle ratio,
     and the reported policy cycle attains λ. If the iteration has not
     settled within the cap — or λ has stopped improving for [n + 16]
     rounds, the signature of the policy oscillating between tied cycles
     whose potentials are pinned at incomparable per-cycle entries (the
     bias-improvement phases of a converging run never exceed ~n rounds
     at one λ level) — fall back to the parametric solver instead of
     burning the remaining O(n·E) budget on a loop that cannot settle.

     [init] warm-starts the policy: a previous run's final policy (local
     edge indices) restarts the iteration next to its old fixed point, so a
     perturbed instance typically settles in a round or two instead of
     re-climbing from the uniform first-out-edge policy. Entries are
     validated against this context's CSR ranges; an invalid warm policy
     silently degrades to the cold start (correctness never depends on
     [init] — any policy reaches the same certified fixed point). The full
     variant returns the final policy and the number of value/improvement
     rounds spent, which the session layer uses to account warm-start
     savings. *)
  let howard_scc_full ?deadline ?init ctx =
    let policy =
      match init with
      | Some p
        when Array.length p = ctx.n
             && (let ok = ref true in
                 Array.iteri
                   (fun u i -> if i < ctx.eptr.(u) || i >= ctx.eptr.(u + 1) then ok := false)
                   p;
                 !ok) ->
        Obs.incr "mcr.warm_starts";
        Array.copy p
      | Some _ ->
        Obs.incr "mcr.warm_start_rejected";
        Array.init ctx.n (fun u -> ctx.eptr.(u))
      | None -> Array.init ctx.n (fun u -> ctx.eptr.(u))
    in
    let v = Array.make ctx.n N.zero in
    let known = Array.make ctx.n false in
    let settled = ref false in
    let lambda = ref N.zero in
    let best = ref [] in
    let iters = ref 0 in
    let cap = (20 * ctx.n) + 100 in
    let stall_cap = ctx.n + 16 in
    let stall = ref 0 in
    while (not !settled) && !iters < cap && !stall < stall_cap do
      incr iters;
      check_deadline deadline;
      (* Value determination. *)
      let cycles = policy_cycles ctx policy in
      let lam, bc =
        match cycles with
        | [] -> invalid_arg "Mcr: SCC without a cycle"
        | (_, c0) :: _ ->
          List.fold_left
            (fun (lam, bc) (_, edges) ->
              let r = ratio_of_edges ctx edges in
              if N.compare r lam > 0 then (r, edges) else (lam, bc))
            (ratio_of_edges ctx c0, c0)
            cycles
      in
      if !iters = 1 || N.compare lam !lambda > 0 then stall := 0 else incr stall;
      lambda := lam;
      best := bc;
      if Obs.events_enabled () then
        Obs.event "howard.round"
          ~fields:
            (("kernel", Json.String !kernel)
             :: ("n", Json.Int ctx.n)
             :: ("iter", Json.Int !iters)
             :: ("stall", Json.Int !stall)
             :: lambda_fields lam);
      let reduced i = N.sub ctx.ew.(i) (N.mul lam (N.of_int ctx.et.(i))) in
      Array.fill known 0 ctx.n false;
      (* potentials on every policy cycle: pin the entry at 0 and relax
         backwards around the cycle *)
      List.iter
        (fun (entry, edges) ->
          let nodes =
            List.fold_left (fun acc i -> ctx.edst.(i) :: acc) [] edges
            (* = cycle nodes ending with entry, in reverse traversal order *)
          in
          v.(entry) <- N.zero;
          known.(entry) <- true;
          List.iter
            (fun u ->
              if not known.(u) then begin
                v.(u) <- N.add (reduced policy.(u)) v.(ctx.edst.(policy.(u)));
                known.(u) <- true
              end)
            nodes)
        cycles;
      (* chains: every succ-walk ends in a (now known) policy cycle *)
      for u0 = 0 to ctx.n - 1 do
        if not known.(u0) then begin
          let stack = ref [] in
          let x = ref u0 in
          while not known.(!x) do
            stack := !x :: !stack;
            x := ctx.edst.(policy.(!x))
          done;
          List.iter
            (fun u ->
              v.(u) <- N.add (reduced policy.(u)) v.(ctx.edst.(policy.(u)));
              known.(u) <- true)
            !stack
        end
      done;
      (* Policy improvement (strict, so exact arithmetic cannot cycle on
         ties). *)
      let improved = ref false in
      for u = 0 to ctx.n - 1 do
        let best_i = ref (-1) in
        let best_val = ref v.(u) in
        for i = ctx.eptr.(u) to ctx.eptr.(u + 1) - 1 do
          let cand = N.add (reduced i) v.(ctx.edst.(i)) in
          if N.compare cand !best_val > 0 then begin
            best_val := cand;
            best_i := i
          end
        done;
        if !best_i >= 0 then begin
          policy.(u) <- !best_i;
          improved := true
        end
      done;
      if not !improved then settled := true
    done;
    Obs.add "mcr.iterations" !iters;
    if !settled then (!lambda, !best, Some policy, !iters)
    else begin
      Obs.incr "mcr.howard_fallbacks";
      if Obs.events_enabled () then
        Obs.event
          (if !stall >= stall_cap then "howard.stall_exit" else "howard.cap_exit")
          ~fields:
            (("kernel", Json.String !kernel)
             :: ("n", Json.Int ctx.n)
             :: ("iter", Json.Int !iters)
             :: ("stall", Json.Int !stall)
             :: lambda_fields !lambda);
      (* No fixed-point policy to hand to a future warm start: the parametric
         witness is a cycle, not a policy. *)
      let lam, cyc = parametric_scc ?deadline ctx in
      (lam, cyc, None, !iters)
    end

  let howard_scc ?deadline ctx =
    let lam, cyc, _, _ = howard_scc_full ?deadline ctx in
    (lam, cyc)

  (* Deterministic reduction over per-component results: ascending component
     order with a strict comparison reproduces the serial loop's tie-break
     (first component achieving the maximum wins), so the parallel path is
     byte-identical to the serial one. *)
  let best_of_results results =
    Array.fold_left
      (fun best r ->
        match (best, r) with
        | None, r -> r
        | best, None -> best
        | Some b, Some w -> if N.compare w.ratio b.ratio > 0 then Some w else best)
      None results

  (* Wrapper: liveness check, SCC decomposition, solve per component, return
     the global maximum with an original-edge-id witness. Components are
     independent sub-problems; big graphs fan them out on the shared pool
     (see [scc_parallel_threshold]). *)
  let solve scc_solver g =
    Obs.with_span "mcr.solve" @@ fun () ->
    Obs.incr "mcr.solves";
    Obs.add "mcr.nodes" (D.num_nodes g);
    Obs.add "mcr.edges" (D.num_edges g);
    check_live g;
    let scc = Rwt_graph.Scc.tarjan g in
    let members = Rwt_graph.Scc.members scc in
    let n_comps = Array.length members in
    Obs.add "mcr.sccs" n_comps;
    let results = Array.make n_comps None in
    let solve_comp comp_id =
      let ctx = build_ctx g members.(comp_id) comp_id scc.Rwt_graph.Scc.comp in
      (* skip components that cannot contain a cycle: a single node
         needs a self-loop; otherwise an SCC with >= 2 nodes always has
         every out-degree >= 1 inside *)
      let has_cycle = ctx.n >= 2 || ctx.eptr.(ctx.n) > 0 in
      if has_cycle then begin
        let t0 = Obs.now () in
        let ratio, cyc = scc_solver ctx in
        note_scc_cost ~edges:ctx.eptr.(ctx.n) (Obs.now () -. t0);
        if Obs.events_enabled () then
          Obs.event "mcr.scc_solved"
            ~fields:
              (("kernel", Json.String !kernel)
               :: ("comp", Json.Int comp_id)
               :: ("n", Json.Int ctx.n)
               :: ("edges", Json.Int ctx.eptr.(ctx.n))
               :: ("cycle_len", Json.Int (List.length cyc))
               :: lambda_fields ratio);
        results.(comp_id) <- Some { ratio; cycle = List.map (fun i -> ctx.eid.(i)) cyc }
      end
    in
    if scc_parallel ~n_comps ~edges:(D.num_edges g) then
      Rwt_pool.run ~n:n_comps solve_comp
    else
      for c = 0 to n_comps - 1 do
        solve_comp c
      done;
    best_of_results results

  let parametric ?deadline g = solve (parametric_scc ?deadline) g
  let howard ?deadline g = solve (howard_scc ?deadline) g
  let lawler ~epsilon ?deadline g = solve (lawler_scc ~epsilon ?deadline) g
  let max_cycle_ratio ?deadline g = howard ?deadline g

  (* Karp's maximum cycle mean: per SCC, longest walks of each length from a
     fixed source; λ* = max_v min_k (D_n(v) − D_k(v))/(n − k).

     The textbook formulation stores all n+1 levels of D — Θ(n²) numbers,
     which for exact rationals is the dominant memory cost of the whole
     solver. Levels only ever feed the next level and the final fold, so we
     keep two rolling rows over a CSR edge list instead: pass 1 rolls up to
     D_n, pass 2 replays levels 0..n−1 folding each into a per-node running
     minimum as soon as it is produced. The relaxation is a pure max over
     incoming candidates, so replaying it is order-independent and
     bit-identical to the dense version — 2× the level work for Θ(n) memory. *)
  let karp ?deadline g =
    Obs.with_span "mcr.karp" @@ fun () ->
    Obs.incr "mcr.solves";
    Obs.add "mcr.nodes" (D.num_nodes g);
    Obs.add "mcr.edges" (D.num_edges g);
    let scc = Rwt_graph.Scc.tarjan g in
    let members = Rwt_graph.Scc.members scc in
    let best = ref None in
    Array.iteri
      (fun comp_id nodes ->
        let nodes_a = Array.of_list nodes in
        let n = Array.length nodes_a in
        let local = Hashtbl.create (2 * n) in
        Array.iteri (fun i u -> Hashtbl.replace local u i) nodes_a;
        let deg = Array.make n 0 in
        let m = ref 0 in
        Array.iteri
          (fun i u ->
            List.iter
              (fun e ->
                if scc.Rwt_graph.Scc.comp.(e.D.dst) = comp_id then begin
                  deg.(i) <- deg.(i) + 1;
                  incr m
                end)
              (D.out_edges g u))
          nodes_a;
        let eptr = Array.make (n + 1) 0 in
        for i = 0 to n - 1 do
          eptr.(i + 1) <- eptr.(i) + deg.(i)
        done;
        let pos = Array.copy eptr in
        let edst = Array.make !m 0 in
        let ew = Array.make !m N.zero in
        Array.iteri
          (fun i u ->
            List.iter
              (fun e ->
                if scc.Rwt_graph.Scc.comp.(e.D.dst) = comp_id then begin
                  let j = pos.(i) in
                  pos.(i) <- j + 1;
                  edst.(j) <- Hashtbl.find local e.D.dst;
                  ew.(j) <- e.D.label
                end)
              (D.out_edges g u))
          nodes_a;
        let has_cycle = n >= 2 || !m > 0 in
        if has_cycle then begin
          (* one relaxation level: (dist, reach) of level k−1 → level k *)
          let relax (dp, rp) (dc, rc) =
            Array.fill rc 0 n false;
            for u = 0 to n - 1 do
              if rp.(u) then
                for i = eptr.(u) to eptr.(u + 1) - 1 do
                  let z = edst.(i) in
                  let cand = N.add dp.(u) ew.(i) in
                  if (not rc.(z)) || N.compare cand dc.(z) > 0 then begin
                    dc.(z) <- cand;
                    rc.(z) <- true
                  end
                done
            done
          in
          let fresh () = (Array.make n N.zero, Array.make n false) in
          let start () =
            let ((_, r0) as row) = fresh () in
            r0.(0) <- true;
            row
          in
          (* pass 1: roll to level n *)
          let prev = ref (start ()) in
          let cur = ref (fresh ()) in
          for _k = 1 to n do
            check_deadline deadline;
            relax !prev !cur;
            let t = !prev in
            prev := !cur;
            cur := t
          done;
          let dn, rn = !prev in
          (* pass 2: replay levels 0..n−1, folding min_k on the fly *)
          let lam = Array.make n None in
          let fold_level (dk, rk) k =
            for v = 0 to n - 1 do
              if rn.(v) && rk.(v) then begin
                let mean = N.div (N.sub dn.(v) dk.(v)) (N.of_int (n - k)) in
                match lam.(v) with
                | None -> lam.(v) <- Some mean
                | Some m0 -> if N.compare mean m0 < 0 then lam.(v) <- Some mean
              end
            done
          in
          let prev = ref (start ()) in
          let cur = ref (fresh ()) in
          fold_level !prev 0;
          for k = 1 to n - 1 do
            check_deadline deadline;
            relax !prev !cur;
            let t = !prev in
            prev := !cur;
            cur := t;
            fold_level !prev k
          done;
          Array.iter
            (function
              | None -> ()
              | Some lv -> (
                match !best with
                | None -> best := Some lv
                | Some b -> if N.compare lv b > 0 then best := Some lv))
            lam
        end)
      members;
    !best
end

module Exact = Make (Rwt_util.Rat)
module Approx = Make (Rwt_util.Num_intf.Float_num)

let () =
  Exact.kernel := "exact";
  Approx.kernel := "float"

let graph_of_tpn tpn =
  let g = D.create (Tpn.num_transitions tpn) in
  Tpn.iter_places
    (fun p ->
      ignore
        (D.add_edge g p.Tpn.pl_src p.Tpn.pl_dst
           { Exact.weight = (Tpn.transition tpn p.Tpn.pl_src).Tpn.firing;
             tokens = p.Tpn.tokens }))
    tpn;
  g

(* Bulk entry point for fused builders ([Rwt_core.Tpn_graph]) that compute
   their arcs by index arithmetic: the flat arc table becomes the ratio
   graph in one exactly-sized pass, with edge ids equal to arc indices —
   the same ids [graph_of_tpn] assigns to the corresponding places. *)
let graph_of_arcs ~n ~src ~dst ~weight ~tokens =
  let m = Array.length src in
  if Array.length weight <> m || Array.length tokens <> m then
    invalid_arg "Mcr.graph_of_arcs: array lengths differ";
  D.of_arrays ~n ~src ~dst
    (Array.init m (fun i -> { Exact.weight = weight.(i); tokens = tokens.(i) }))

let float_graph_of_tpn tpn =
  let g = D.create (Tpn.num_transitions tpn) in
  Tpn.iter_places
    (fun p ->
      ignore
        (D.add_edge g p.Tpn.pl_src p.Tpn.pl_dst
           { Approx.weight = Rwt_util.Rat.to_float (Tpn.transition tpn p.Tpn.pl_src).Tpn.firing;
             tokens = p.Tpn.tokens }))
    tpn;
  g

(* --- float-screened exact solve ---------------------------------------

   Exact Howard spends almost all of its time in rational arithmetic: every
   policy round re-evaluates potentials and reduced weights with gmp-free
   [Rat] operations whose numerators grow along the iteration. The screen
   runs Howard on a float mirror of each SCC first — same CSR arrays, weights
   collapsed to doubles — and then certifies the float candidate with exactly
   ONE exact pass:

   1. re-cost the candidate witness cycle with rational arithmetic
      ([ratio_of_edges]), giving a λ that is the true ratio of a genuine
      cycle, hence a sound lower bound whatever the floats did;
   2. one exact positive-cycle check at λ. [None] proves no cycle beats λ,
      so λ = λ* and the witness attains it.

   When certification fails (float noise picked the wrong cycle) the SCC
   falls back to full exact Howard — the screen can be slow, never wrong. *)

let screen_enabled = ref true

(* Certification context: the reduced weights w − λ·t, scaled by their
   common denominator into integers. A cycle's reduced weight keeps its sign
   under a positive scale, so positive-cycle existence is preserved — and
   integer rationals make the exact Bellman–Ford pass cheap, because adds
   and compares skip the per-operation cross-multiply + gcd renormalization
   that dominates on the huge-denominator values a candidate λ induces. *)
let cert_ctx (ctx : Exact.ctx) lambda =
  let module B = Rwt_util.Bigint in
  let module R = Rwt_util.Rat in
  let m = Array.length ctx.Exact.ew in
  let red =
    Array.init m (fun i ->
        R.sub ctx.Exact.ew.(i) (R.mul lambda (R.of_int ctx.Exact.et.(i))))
  in
  let d =
    Array.fold_left
      (fun acc r ->
        let den = R.den r in
        B.mul acc (B.div den (B.gcd acc den)))
      B.one red
  in
  let ew = Array.map (fun r -> R.make (B.mul (R.num r) (B.div d (R.den r))) B.one) red in
  { ctx with Exact.ew; et = Array.make m 0 }

(* One component of the screened solve, warm-startable. The float mirror
   shares [eptr]/[edst]/[et]/[eid] with the exact context — only the weight
   column is collapsed to doubles — so local edge indices mean the same
   thing in both kernels: a float witness is directly a cycle of the exact
   context, and a settled policy from either kernel is a valid warm start
   for the other. Returns the settled policy of whichever Howard run
   produced the answer (None when the parametric fallback did) plus the
   number of policy rounds it spent, so a session can warm-start and
   account its savings. *)
let screened_scc_solve ?deadline ?init ~comp_id (ctx : Exact.ctx) =
  let screened =
    let fctx =
      { Approx.n = ctx.Exact.n;
        eptr = ctx.Exact.eptr;
        edst = ctx.Exact.edst;
        ew = Array.map Rwt_util.Rat.to_float ctx.Exact.ew;
        et = ctx.Exact.et;
        eid = ctx.Exact.eid }
    in
    match Approx.howard_scc_full ?deadline ?init fctx with
    | exception Approx.Not_live _ -> None
    | _, [], _, _ -> None
    | _, cyc, pol, iters -> (
      match Exact.ratio_of_edges ctx cyc with
      | exception Exact.Not_live _ -> None
      | lambda ->
        if Exact.find_positive_cycle ?deadline (cert_ctx ctx lambda) Rwt_util.Rat.zero = None
        then Some (lambda, cyc, pol, iters)
        else None)
  in
  let scc_fields =
    [ ("comp", Json.Int comp_id);
      ("n", Json.Int ctx.Exact.n);
      ("edges", Json.Int ctx.Exact.eptr.(ctx.Exact.n)) ]
  in
  let ((ratio, cyc, _, _) as result) =
    match screened with
    | Some ((lambda, _, _, _) as r) ->
      Obs.incr "mcr.screen_hits";
      if Obs.events_enabled () then
        Obs.event "screen.certified"
          ~fields:
            (scc_fields @ [ ("lambda", Json.Float (Rwt_util.Rat.to_float lambda)) ]);
      r
    | None ->
      Obs.incr "mcr.screen_misses";
      if Obs.events_enabled () then Obs.event "screen.fallback" ~fields:scc_fields;
      Exact.howard_scc_full ?deadline ?init ctx
  in
  if Obs.events_enabled () then
    Obs.event "mcr.scc_solved"
      ~fields:
        (("kernel", Json.String "exact")
         :: scc_fields
         @ [ ("cycle_len", Json.Int (List.length cyc));
             ("lambda", Json.Float (Rwt_util.Rat.to_float ratio));
             ("lambda_exact", Json.String (Format.asprintf "%a" Rwt_util.Rat.pp ratio)) ]);
  result

let solve_screened ?deadline g =
  Obs.with_span "mcr.solve" @@ fun () ->
  Obs.incr "mcr.solves";
  Obs.add "mcr.nodes" (D.num_nodes g);
  Obs.add "mcr.edges" (D.num_edges g);
  Exact.check_live g;
  let scc = Rwt_graph.Scc.tarjan g in
  let members = Rwt_graph.Scc.members scc in
  let n_comps = Array.length members in
  Obs.add "mcr.sccs" n_comps;
  let results = Array.make n_comps None in
  let solve_comp comp_id =
    let ctx = Exact.build_ctx g members.(comp_id) comp_id scc.Rwt_graph.Scc.comp in
    let has_cycle = ctx.Exact.n >= 2 || ctx.Exact.eptr.(ctx.Exact.n) > 0 in
    if has_cycle then begin
      let t0 = Obs.now () in
      let ratio, cyc, _, _ = screened_scc_solve ?deadline ~comp_id ctx in
      note_scc_cost ~edges:ctx.Exact.eptr.(ctx.Exact.n) (Obs.now () -. t0);
      results.(comp_id) <-
        Some { Exact.ratio; cycle = List.map (fun i -> ctx.Exact.eid.(i)) cyc }
    end
  in
  if scc_parallel ~n_comps ~edges:(D.num_edges g) then
    Rwt_pool.run ~n:n_comps solve_comp
  else
    for c = 0 to n_comps - 1 do
      solve_comp c
    done;
  Exact.best_of_results results

let solve_exact ?deadline g =
  if !screen_enabled then solve_screened ?deadline g else Exact.howard ?deadline g

let period_of_tpn ?deadline tpn = solve_exact ?deadline (graph_of_tpn tpn)

(* --- incremental sessions ---------------------------------------------

   A session captures everything about a solve that depends only on the
   graph's *topology*: the liveness certificate, the SCC decomposition and
   the per-component CSR contexts. When only edge weights change — the
   delta layer relabels edges in place with [Digraph.set_label] —
   [session_resolve] refreshes each context's weight column from the live
   labels and re-solves every component warm-started from its previously
   settled policy. Correctness never rests on the warm start: Howard's
   fixed point is self-certifying whatever policy it starts from, and the
   screened path certifies its candidate with one exact positive-cycle
   pass, so a resolve is Rat-identical to a cold solve of the patched
   graph. Tokens are topology here (they decide liveness and per-cycle
   token counts), so a session must never outlive a token change — that is
   the caller's patch precondition. *)

type session = {
  sgraph : Exact.graph;
  sctxs : Exact.ctx option array; (* None for components without a cycle *)
  spolicies : int array option array; (* last settled policy, per component *)
  scold_iters : int array; (* policy rounds the initial cold solve spent *)
  sresults : Exact.witness option array; (* last per-component witness *)
}

let session_scc_solve ?deadline ?init ~comp_id (ctx : Exact.ctx) =
  if !screen_enabled then screened_scc_solve ?deadline ?init ~comp_id ctx
  else Exact.howard_scc_full ?deadline ?init ctx

let session_parallel s n_comps =
  scc_parallel ~n_comps ~edges:(D.num_edges s.sgraph)

let session_init ?deadline g =
  Obs.with_span "mcr.session_init" @@ fun () ->
  Obs.incr "mcr.solves";
  Obs.add "mcr.nodes" (D.num_nodes g);
  Obs.add "mcr.edges" (D.num_edges g);
  Exact.check_live g;
  let scc = Rwt_graph.Scc.tarjan g in
  let members = Rwt_graph.Scc.members scc in
  let n_comps = Array.length members in
  Obs.add "mcr.sccs" n_comps;
  let sctxs = Array.make n_comps None in
  let spolicies = Array.make n_comps None in
  let scold_iters = Array.make n_comps 0 in
  let results = Array.make n_comps None in
  let solve_comp comp_id =
    let ctx = Exact.build_ctx g members.(comp_id) comp_id scc.Rwt_graph.Scc.comp in
    let has_cycle = ctx.Exact.n >= 2 || ctx.Exact.eptr.(ctx.Exact.n) > 0 in
    if has_cycle then begin
      sctxs.(comp_id) <- Some ctx;
      let t0 = Obs.now () in
      let ratio, cyc, pol, iters = session_scc_solve ?deadline ~comp_id ctx in
      note_scc_cost ~edges:ctx.Exact.eptr.(ctx.Exact.n) (Obs.now () -. t0);
      spolicies.(comp_id) <- pol;
      scold_iters.(comp_id) <- iters;
      results.(comp_id) <-
        Some { Exact.ratio; cycle = List.map (fun i -> ctx.Exact.eid.(i)) cyc }
    end
  in
  let s = { sgraph = g; sctxs; spolicies; scold_iters; sresults = results } in
  if session_parallel s n_comps then Rwt_pool.run ~n:n_comps solve_comp
  else
    for c = 0 to n_comps - 1 do
      solve_comp c
    done;
  (s, Exact.best_of_results results)

let session_resolve ?deadline s =
  Obs.with_span "mcr.session_resolve" @@ fun () ->
  Obs.incr "mcr.solves";
  let n_comps = Array.length s.sctxs in
  (* per-component cells, folded after the joins: safe under Rwt_pool *)
  let saved = Array.make n_comps 0 in
  let solve_comp comp_id =
    match s.sctxs.(comp_id) with
    | None -> ()
    | Some ctx ->
      (* Liveness and the SCCs are unchanged by a weight patch; only the
         weight column needs refreshing from the relabelled edges. While
         refreshing, detect components the patch left untouched: a sweep
         step usually perturbs one parameter, dirtying few components, and
         identical weights over identical topology certify that the cached
         witness is still the component's optimum — no solve needed. *)
      let m = Array.length ctx.Exact.ew in
      let changed = ref false in
      for j = 0 to m - 1 do
        let w = (D.edge s.sgraph ctx.Exact.eid.(j)).D.label.Exact.weight in
        if not (Rwt_util.Rat.equal w ctx.Exact.ew.(j)) then begin
          ctx.Exact.ew.(j) <- w;
          changed := true
        end
      done;
      if !changed then begin
        let t0 = Obs.now () in
        let ratio, cyc, pol, iters =
          session_scc_solve ?deadline ?init:s.spolicies.(comp_id) ~comp_id ctx
        in
        note_scc_cost ~edges:m (Obs.now () -. t0);
        s.spolicies.(comp_id) <- pol;
        saved.(comp_id) <- Stdlib.max 0 (s.scold_iters.(comp_id) - iters);
        s.sresults.(comp_id) <-
          Some { Exact.ratio; cycle = List.map (fun i -> ctx.Exact.eid.(i)) cyc }
      end
      else begin
        (* the clean component's entire cold solve is saved *)
        Obs.incr "mcr.resolve_clean_comps";
        saved.(comp_id) <- s.scold_iters.(comp_id)
      end
  in
  if session_parallel s n_comps then Rwt_pool.run ~n:n_comps solve_comp
  else
    for c = 0 to n_comps - 1 do
      solve_comp c
    done;
  (Exact.best_of_results s.sresults, Array.fold_left ( + ) 0 saved)
