Instances survive an export/import round trip.

  $ rwt show -e no-replication > nr.rwt
  $ rwt period -f nr.rwt -m strict --exact | tail -1
  exact period: 53

  $ rwt show -f nr.rwt > nr2.rwt
  $ diff nr.rwt nr2.rwt

Malformed files are rejected with a line number.

  $ printf 'stages 2\nwork 1 1\ndata 1\nprocessors 2\nspeeds 1 nope\nmap 0\nmap 1\n' > bad.rwt
  $ rwt period -f bad.rwt
  rwt: parse: bad rational "nope" [file=bad.rwt, line=5]
  [1]
