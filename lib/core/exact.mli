(** Exact period of a mapping by critical-cycle analysis of its full timed
    Petri net (§4). Works for both communication models; cost grows with
    [m = lcm(m_0, …, m_{n-1})], which the polynomial algorithm
    ({!Poly_overlap}) avoids for the OVERLAP model. *)

open Rwt_util
open Rwt_workflow

type result = {
  period : Rat.t;  (** per data set: critical ratio / m *)
  tpn_ratio : Rat.t;  (** critical cycle ratio [L(C)/t(C)] of the net *)
  m : int;
  critical : (int * int) list;
      (** (row, col) of the transitions on a critical cycle, in cycle
          order *)
  model : Comm_model.t;
  inst : Instance.t;
      (** the analyzed instance — transition kinds and names on the
          critical cycle are recovered from it by index math
          ({!Tpn_build.kind_at}), so no net needs to be retained *)
}

val fused_enabled : bool ref
(** When true (the default) {!period_exn} builds the ratio graph with the
    fused builder ({!Tpn_graph}), skipping the materialized net; set to
    [false] (CLI [--legacy-tpn]) to force the legacy
    {!Tpn_build.build_exn} → [Mcr.graph_of_tpn] route. Both routes produce
    edge-for-edge identical graphs and therefore identical results. *)

val period :
  ?transition_cap:int ->
  ?deadline:(unit -> bool) ->
  Comm_model.t ->
  Instance.t ->
  (result, Rwt_err.t) Stdlib.result
(** [transition_cap] bounds the constructed net's size (default: the
    process-wide [Rwt_petri.Expand.transition_cap ()]); [deadline] is
    polled inside the cycle-ratio solver (see [Rwt_petri.Mcr]). [Error]
    carries class [Capacity] on [m] overflow or when the net would exceed
    the cap, and class [Timeout] when [deadline] fires. *)

val period_exn :
  ?transition_cap:int -> ?deadline:(unit -> bool) -> Comm_model.t -> Instance.t -> result
(** Exception shim for {!period}.
    @raise Rwt_err.Error on the same conditions. *)

val throughput :
  ?transition_cap:int -> ?deadline:(unit -> bool) -> Comm_model.t -> Instance.t -> Rat.t
(** [1 / period]. [deadline] is threaded to the solver exactly as in
    {!period}. @raise Rwt_err.Error like {!period_exn}. *)

val pp_critical : result -> Format.formatter -> unit -> unit
(** Human-readable critical cycle: resources and transition kinds. *)
