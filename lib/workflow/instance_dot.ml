open Rwt_util

let render inst =
  let { Instance.name; pipeline; mapping; _ } = inst in
  let n = Mapping.n_stages mapping in
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "digraph \"%s\" {\n  rankdir=LR;\n  node [shape=box];\n" name;
  for i = 0 to n - 1 do
    pr "  subgraph cluster_s%d {\n    label=\"%s\";\n" i (Pipeline.name pipeline i);
    Array.iter
      (fun u ->
        pr "    p%d [label=\"%s\\n%s\"];\n" u (Platform.proc_name u)
          (Rat.to_string (Instance.compute_time inst ~stage:i ~proc:u)))
      (Mapping.procs mapping i);
    pr "  }\n"
  done;
  for i = 0 to n - 2 do
    Array.iter
      (fun s ->
        Array.iter
          (fun d ->
            pr "  p%d -> p%d [label=\"%s\"];\n" s d
              (Rat.to_string (Instance.transfer_time inst ~file:i ~src:s ~dst:d)))
          (Mapping.procs mapping (i + 1)))
      (Mapping.procs mapping i)
  done;
  pr "}\n";
  Buffer.contents buf
