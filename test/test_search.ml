(* Tests for the multi-criteria search engine and the Optimize bugfix
   sweep: reliability arithmetic, Result-typed error paths, exact
   evaluation counting, deadline (anytime) behaviour, and the qcheck
   properties of the Pareto front — determinism in the seed, mutual
   non-domination, and branch-and-bound certified against brute force. *)

open Rwt_util
open Rwt_workflow

let qtest = QCheck_alcotest.to_alcotest
let rat = Alcotest.testable Rat.pp Rat.equal

let tiny_platform () =
  Platform.with_failures
    (Platform.create
       ~speeds:(Array.map Rat.of_int [| 2; 1; 1; 4 |])
       ~bandwidths:(Array.make_matrix 4 4 Rat.one))
    (Array.map (fun (a, b) -> Rat.of_ints a b) [| (1, 10); (1, 5); (1, 4); (1, 2) |])

let tiny_pipeline () =
  Pipeline.of_ints ~work:[| 4; 8; 2 |] ~data:[| 2; 1 |]

(* --- reliability --- *)

let reliability_values () =
  let plat = tiny_platform () in
  (* stage on {1,2}: 1 - 1/5 * 1/4 = 19/20 *)
  Alcotest.check rat "replica set" (Rat.of_ints 19 20)
    (Rwt_core.Reliability.stage plat [| 1; 2 |]);
  (* mapping [0][3][1,2]: 9/10 * 1/2 * 19/20 = 171/400 *)
  Alcotest.check rat "whole mapping" (Rat.of_ints 171 400)
    (Rwt_core.Reliability.of_assignment plat [| [| 0 |]; [| 3 |]; [| 1; 2 |] |]);
  (* a reliable platform scores 1 regardless of the mapping *)
  let reliable = Platform.uniform ~p:3 ~speed:Rat.one ~bandwidth:Rat.one in
  Alcotest.check rat "no failures" Rat.one
    (Rwt_core.Reliability.of_assignment reliable [| [| 0; 1; 2 |] |])

let reliability_rejects_bad_rates () =
  let plat = Platform.uniform ~p:2 ~speed:Rat.one ~bandwidth:Rat.one in
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Platform.with_failures: one rate per processor expected")
    (fun () -> ignore (Platform.with_failures plat [| Rat.zero |]));
  Alcotest.check_raises "rate above one"
    (Invalid_argument "Platform.with_failures: rates must lie in [0, 1]")
    (fun () -> ignore (Platform.with_failures plat [| Rat.zero; Rat.of_int 2 |]))

(* --- Optimize: typed errors, exact evaluation count, deadlines --- *)

let optimize_too_few_procs () =
  let pipeline = tiny_pipeline () in
  let platform = Platform.uniform ~p:2 ~speed:Rat.one ~bandwidth:Rat.one in
  let check_err = function
    | Ok _ -> Alcotest.fail "expected a Validate error"
    | Error e ->
      Alcotest.(check string) "class" "validate" (Rwt_err.class_name e.Rwt_err.class_);
      Alcotest.(check string) "code" "validate.optimize" e.Rwt_err.code
  in
  check_err (Rwt_core.Optimize.greedy Comm_model.Overlap pipeline platform);
  check_err (Rwt_core.Optimize.local_search Comm_model.Overlap pipeline platform)

(* regression: the final re-scoring of the old implementation was not
   counted (and used ~m_cap:max_int); with the fix the reported
   [evaluations] equals the [optimize.evaluations] counter delta exactly *)
let optimize_counts_every_evaluation () =
  let inst = Instances.example_a () in
  let pipeline = inst.Instance.pipeline and platform = inst.Instance.platform in
  Rwt_obs.enable ();
  Rwt_obs.reset ();
  let before = Rwt_obs.counter_value "optimize.evaluations" in
  let r =
    match
      Rwt_core.Optimize.local_search ~seed:7 ~iterations:60 Comm_model.Overlap
        pipeline platform
    with
    | Ok r -> r
    | Error e -> Alcotest.fail (Rwt_err.to_line e)
  in
  let after = Rwt_obs.counter_value "optimize.evaluations" in
  Rwt_obs.disable ();
  Alcotest.(check int) "reported = scored" (after - before)
    r.Rwt_core.Optimize.evaluations

let optimize_deadline_before_greedy () =
  let inst = Instances.example_a () in
  match
    Rwt_core.Optimize.local_search ~deadline:(fun () -> true) Comm_model.Overlap
      inst.Instance.pipeline inst.Instance.platform
  with
  | Ok _ -> Alcotest.fail "expected a Timeout error"
  | Error e ->
    Alcotest.(check string) "class" "timeout" (Rwt_err.class_name e.Rwt_err.class_)

let optimize_deadline_is_anytime () =
  let inst = Instances.example_a () in
  let pipeline = inst.Instance.pipeline and platform = inst.Instance.platform in
  let run ?deadline () =
    match
      Rwt_core.Optimize.local_search ?deadline ~seed:7 ~iterations:100
        Comm_model.Overlap pipeline platform
    with
    | Ok r -> r
    | Error e -> Alcotest.fail (Rwt_err.to_line e)
  in
  (* calibrate: count deadline polls over the undisturbed run, then fire
     halfway — well past the greedy baseline, well before the end *)
  let polls = ref 0 in
  let full = run ~deadline:(fun () -> incr polls; false) () in
  let budget = !polls / 2 in
  let used = ref 0 in
  let cut = run ~deadline:(fun () -> incr used; !used > budget) () in
  let greedy =
    match Rwt_core.Optimize.greedy Comm_model.Overlap pipeline platform with
    | Ok g -> g
    | Error e -> Alcotest.fail (Rwt_err.to_line e)
  in
  Alcotest.(check bool) "fewer evaluations than the full run" true
    (cut.Rwt_core.Optimize.evaluations <= full.Rwt_core.Optimize.evaluations);
  Alcotest.(check bool) "still no worse than greedy" true
    (Rat.compare cut.Rwt_core.Optimize.period greedy.Rwt_core.Optimize.period <= 0)

(* --- search: unit behaviour --- *)

let search_too_few_procs () =
  let pipeline = tiny_pipeline () in
  let platform = Platform.uniform ~p:2 ~speed:Rat.one ~bandwidth:Rat.one in
  match Rwt_core.Search.search Comm_model.Overlap pipeline platform with
  | Ok _ -> Alcotest.fail "expected a Validate error"
  | Error e ->
    Alcotest.(check string) "class" "validate" (Rwt_err.class_name e.Rwt_err.class_);
    Alcotest.(check string) "code" "validate.search" e.Rwt_err.code

let search_deadline_before_first_score () =
  let pipeline = tiny_pipeline () in
  let platform = tiny_platform () in
  match
    Rwt_core.Search.search ~deadline:(fun () -> true) Comm_model.Overlap pipeline
      platform
  with
  | Ok _ -> Alcotest.fail "expected a Timeout error"
  | Error e ->
    Alcotest.(check string) "class" "timeout" (Rwt_err.class_name e.Rwt_err.class_)

let search_exact_tiny () =
  let pipeline = tiny_pipeline () in
  let platform = tiny_platform () in
  let o =
    match Rwt_core.Search.search Comm_model.Overlap pipeline platform with
    | Ok o -> o
    | Error e -> Alcotest.fail (Rwt_err.to_line e)
  in
  Alcotest.(check bool) "auto picks exact" true (o.Rwt_core.Search.tier = Rwt_core.Search.Exact);
  Alcotest.(check bool) "complete" true o.Rwt_core.Search.complete;
  Alcotest.(check (float 0.0)) "space" 60.0 o.Rwt_core.Search.space;
  Alcotest.(check bool) "front nonempty" true (o.Rwt_core.Search.front <> []);
  (* every front member's stored objectives match a cold re-evaluation *)
  List.iter
    (fun mem ->
      let mapping =
        Mapping.create_exn ~n_stages:3 ~p:4 mem.Rwt_core.Search.assignment
      in
      let inst =
        Instance.create_exn ~name:"check" ~pipeline ~platform ~mapping
      in
      let period = Rwt_core.Poly_overlap.period inst in
      let latency = (Rwt_core.Latency.analyze Comm_model.Overlap inst).Rwt_core.Latency.worst in
      let objs = mem.Rwt_core.Search.objectives in
      Alcotest.check rat "period" period objs.Rwt_core.Search.period;
      Alcotest.check rat "latency" latency objs.Rwt_core.Search.latency;
      Alcotest.check rat "reliability"
        (Rwt_core.Reliability.of_mapping platform mapping)
        objs.Rwt_core.Search.reliability)
    o.Rwt_core.Search.front;
  (* the front NDJSON round-trips through the strict JSON parser *)
  List.iter
    (fun mem ->
      let line = Json.to_string (Rwt_core.Search.member_to_json mem) in
      match Json.of_string line with
      | Ok (Json.Obj fields) ->
        List.iter
          (fun k ->
            Alcotest.(check bool) ("has " ^ k) true (List.mem_assoc k fields))
          [ "assignment"; "m"; "period"; "latency"; "reliability"; "dominated" ]
      | Ok _ | Error _ -> Alcotest.fail "front line is not a JSON object")
    o.Rwt_core.Search.front

let search_space_size () =
  (* n=3, p=4: 24 assignments using 3 processors + 36 using all 4 *)
  Alcotest.(check (float 0.0)) "3 stages, 4 procs" 60.0
    (Rwt_core.Search.space_size ~n_stages:3 ~p:4);
  (* single stage: any nonempty subset *)
  Alcotest.(check (float 0.0)) "1 stage, 5 procs" 31.0
    (Rwt_core.Search.space_size ~n_stages:1 ~p:5);
  Alcotest.(check (float 0.0)) "infeasible" 0.0
    (Rwt_core.Search.space_size ~n_stages:3 ~p:2);
  Alcotest.(check bool) "huge space saturates finite" true
    (Float.is_finite (Rwt_core.Search.space_size ~n_stages:10 ~p:300))

(* --- search: qcheck properties --- *)

let small_problem ?(max_stages = 3) ?(max_extra = 1) seed =
  let r = Prng.create (seed + 11) in
  let n = Prng.int_in r 2 max_stages in
  let p = n + Prng.int r (max_extra + 1) in
  let inst =
    Rwt_experiments.Generator.generate r
      { Rwt_experiments.Generator.n_stages = n; p; comp = (1, 8); comm = (1, 8) }
  in
  let rates =
    Array.init p (fun _ -> Rat.of_ints (Prng.int r 10) 10)
  in
  ( inst.Instance.pipeline,
    Platform.with_failures inst.Instance.platform rates )

let member_key mem =
  ( mem.Rwt_core.Search.assignment,
    Rat.to_string mem.Rwt_core.Search.objectives.Rwt_core.Search.period,
    Rat.to_string mem.Rwt_core.Search.objectives.Rwt_core.Search.latency,
    Rat.to_string mem.Rwt_core.Search.objectives.Rwt_core.Search.reliability )

let search_deterministic_in_seed =
  QCheck.Test.make ~count:6 ~name:"search: same seed, same front" QCheck.small_nat
    (fun seed ->
      let pipeline, platform = small_problem seed in
      let run () =
        match
          Rwt_core.Search.search ~seed:(seed * 3) ~tier:`Heuristic ~sweeps:3
            ~iterations:30 Comm_model.Overlap pipeline platform
        with
        | Ok o -> o
        | Error e -> QCheck.Test.fail_report (Rwt_err.to_line e)
      in
      let a = run () and b = run () in
      List.map member_key a.Rwt_core.Search.front
      = List.map member_key b.Rwt_core.Search.front
      && a.Rwt_core.Search.candidates = b.Rwt_core.Search.candidates)

let search_front_non_dominated =
  QCheck.Test.make ~count:6 ~name:"search: front is mutually non-dominated"
    QCheck.small_nat (fun seed ->
      let pipeline, platform = small_problem seed in
      let o =
        match
          Rwt_core.Search.search ~seed ~tier:`Heuristic ~sweeps:3 ~iterations:30
            Comm_model.Overlap pipeline platform
        with
        | Ok o -> o
        | Error e -> QCheck.Test.fail_report (Rwt_err.to_line e)
      in
      let front = Array.of_list o.Rwt_core.Search.front in
      let ok = ref true in
      Array.iteri
        (fun i a ->
          Array.iteri
            (fun j b ->
              if i <> j
                 && Rwt_core.Search.dominates a.Rwt_core.Search.objectives
                      b.Rwt_core.Search.objectives
              then ok := false)
            front)
        front;
      !ok)

let search_bnb_equals_brute_force =
  QCheck.Test.make ~count:6
    ~name:"search: branch-and-bound front = brute force (all 3 objectives)"
    QCheck.small_nat (fun seed ->
      let pipeline, platform = small_problem ~max_stages:3 ~max_extra:1 seed in
      let run f =
        match f () with
        | Ok o -> o
        | Error e -> QCheck.Test.fail_report (Rwt_err.to_line e)
      in
      List.for_all
        (fun model ->
          let bnb =
            run (fun () ->
                Rwt_core.Search.search ~tier:`Exact model pipeline platform)
          in
          let brute =
            run (fun () -> Rwt_core.Search.brute_force model pipeline platform)
          in
          bnb.Rwt_core.Search.complete && brute.Rwt_core.Search.complete
          && brute.Rwt_core.Search.pruned = 0
          && List.map member_key bnb.Rwt_core.Search.front
             = List.map member_key brute.Rwt_core.Search.front)
        [ Comm_model.Overlap; Comm_model.Strict ])

let () =
  Alcotest.run "search"
    [ ( "reliability",
        [ Alcotest.test_case "values" `Quick reliability_values;
          Alcotest.test_case "bad rates" `Quick reliability_rejects_bad_rates ] );
      ( "optimize result api",
        [ Alcotest.test_case "p < n typed error" `Quick optimize_too_few_procs;
          Alcotest.test_case "exact evaluation count" `Quick
            optimize_counts_every_evaluation;
          Alcotest.test_case "deadline before greedy" `Quick
            optimize_deadline_before_greedy;
          Alcotest.test_case "deadline anytime" `Quick optimize_deadline_is_anytime ] );
      ( "search engine",
        [ Alcotest.test_case "p < n typed error" `Quick search_too_few_procs;
          Alcotest.test_case "deadline before first score" `Quick
            search_deadline_before_first_score;
          Alcotest.test_case "exact tier on tiny instance" `Quick search_exact_tiny;
          Alcotest.test_case "space size" `Quick search_space_size ] );
      ( "search properties",
        [ qtest search_deterministic_in_seed;
          qtest search_front_non_dominated;
          qtest search_bnb_equals_brute_force ] ) ]
