(** Deterministic fault injection at the pipeline's span sites.

    Every {!Rwt_obs} span name ([analysis.analyze], [tpn.build],
    [mcr.solve], [batch.job], [load], …) doubles as a named
    fault-injection point; a handful of extra points ([batch.journal],
    [json.parse]) are instrumented explicitly via {!point}. A {e fault
    spec} — from the [RWT_FAULT] environment variable or [rwt --fault] —
    arms rules that fire typed errors, artificial delays, capacity
    exhaustion, or a hard process abort when a point is hit. Randomized
    triggers draw from a seeded {!Rwt_util.Prng}, so a campaign replays
    bit-for-bit from its spec.

    {b Spec grammar} (see [doc/RESILIENCE.md]):
    {v
    spec     := clause (';' clause)*
    clause   := 'seed' '=' INT
              | point '=' action ('@' modifier)?
    action   := 'error' | 'capacity' | 'timeout'
              | 'delay:' MILLISECONDS | 'abort'
    modifier := 'p' FLOAT   fire each hit with this probability
              | '#' INT     fire only on the Nth hit of the point (1-based)
              | '+' INT     fire on every hit strictly after the Nth
    point    := point name, '*' allowed as a trailing glob
    v}

    Examples: [tpn.build=capacity], [mcr.*=error@p0.3;seed=7],
    [batch.job=abort@#3], [analysis.analyze=delay:50].

    Injected [error]/[capacity]/[timeout] actions raise
    {!Rwt_util.Rwt_err.Error} (classes [Fault], [Capacity] and [Timeout]
    respectively), so they surface at the same boundaries as organic
    failures: a typed error line, a graceful degradation, or a batch
    ["error"] record — never a crash or a silently wrong period. [abort]
    terminates the process immediately with exit code 70 and {e no}
    buffered-channel flushing, emulating a kill for crash-recovery tests. *)

open Rwt_util

type action =
  | Error_  (** raise a [Fault]-class typed error (transient, retryable) *)
  | Capacity  (** raise a [Capacity]-class typed error *)
  | Timeout  (** raise a [Timeout]-class typed error *)
  | Delay of float  (** sleep this many seconds, then continue *)
  | Abort  (** [Unix._exit 70]: no flush, no [at_exit] — a simulated kill *)

type trigger =
  | Always
  | Prob of float  (** per-hit coin flip from the seeded PRNG *)
  | Nth of int  (** exactly the Nth hit of the point, 1-based *)
  | After of int  (** every hit strictly after the Nth *)

type rule = {
  pattern : string;  (** point name; a trailing ['*'] is a prefix glob *)
  action : action;
  trigger : trigger;
}

val parse : string -> (rule list * int, Rwt_err.t) result
(** Parse a spec into rules plus the seed (default 0). [Parse]-class
    errors name the offending clause. *)

val install : string -> (unit, Rwt_err.t) result
(** Parse and arm a spec, hooking the injector into the {!Rwt_obs} span
    sites. Replaces any previously armed spec and resets hit counters. *)

val install_from_env : unit -> (unit, Rwt_err.t) result
(** {!install} from [RWT_FAULT]; [Ok ()] when the variable is unset. *)

val clear : unit -> unit
(** Disarm: uninstall the span hook and drop all rules and counters. *)

val active : unit -> bool

val point : string -> unit
(** Explicit instrumentation point, for sites that are not spans. No-op
    unless armed; otherwise counts the hit and fires any matching rule
    (first matching rule wins). Thread-safe; counter updates and PRNG
    draws are serialized, so single-worker runs replay deterministically. *)

val hits : unit -> (string * int) list
(** Per-point hit counts since the last {!install}/{!clear}, sorted by
    name. Only points matching at least one rule are counted. *)

val fired : unit -> int
(** Number of faults actually fired (injections, delays included). *)
