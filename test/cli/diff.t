Perf-regression comparator: `rwt obs diff OLD NEW` flattens every numeric
leaf of two bench snapshots to dotted paths and compares them pairwise.
Identical inputs exit 0.

  $ cat > old.json <<'EOF'
  > {"schema":"rwt.bench-batch/1","t_seq_s":1.0,"speedup":4.0,
  >  "rows":[{"t_exact_s":0.5},{"t_exact_s":0.25}]}
  > EOF
  $ rwt obs diff old.json old.json
  rwt obs diff: 4 keys compared, 0 regressions, 0 improvements (threshold 10%)

A >threshold move in the bad direction — up for times, down for keys
matching the --good globs (default *speedup* and *throughput*) — is a
regression and the exit code turns nonzero, so `make bench-diff` can gate
CI on it.

  $ cat > new.json <<'EOF'
  > {"schema":"rwt.bench-batch/1","t_seq_s":1.3,"speedup":3.0,
  >  "rows":[{"t_exact_s":0.5},{"t_exact_s":0.25}]}
  > EOF
  $ rwt obs diff old.json new.json
  rwt obs diff: 4 keys compared, 2 regressions, 0 improvements (threshold 10%)
    REGRESSION  speedup                                  4 -> 3  (-25.0%)
    REGRESSION  t_seq_s                                  1 -> 1.3  (+30.0%)
  [4]

The threshold is configurable; a loose one lets the same delta pass.

  $ rwt obs diff old.json new.json --threshold 50
  rwt obs diff: 4 keys compared, 0 regressions, 0 improvements (threshold 50%)

The same deltas in the other direction are improvements, reported but
not fatal.

  $ rwt obs diff new.json old.json
  rwt obs diff: 4 keys compared, 0 regressions, 2 improvements (threshold 10%)
    improved    speedup                                  3 -> 4  (+33.3%)
    improved    t_seq_s                                  1.3 -> 1  (-23.1%)

--match restricts the comparison to the selected paths, --quiet drops
the per-key lines (the exit code still gates), and keys present on only
one side are noted, never fatal.

  $ rwt obs diff old.json new.json --match 'rows.*'
  rwt obs diff: 2 keys compared, 0 regressions, 0 improvements (threshold 10%)
  $ rwt obs diff old.json new.json --quiet
  rwt obs diff: 4 keys compared, 2 regressions, 0 improvements (threshold 10%)
  [4]
  $ cat > grown.json <<'EOF'
  > {"schema":"rwt.bench-batch/1","t_seq_s":1.0,"speedup":4.0,"born":1.0,
  >  "rows":[{"t_exact_s":0.5},{"t_exact_s":0.25}]}
  > EOF
  $ rwt obs diff old.json grown.json
  rwt obs diff: 4 keys compared, 0 regressions, 0 improvements (threshold 10%)
    (0 keys only in OLD, 1 only in NEW)
