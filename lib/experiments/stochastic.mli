(** Dynamic platforms — the paper's stated future work (§6: "finding good
    schedules on dynamic platforms, whose speeds and bandwidths are modeled
    by random variables").

    We model a dynamic platform as a base platform whose speeds and
    bandwidths are independently rescaled by uniform factors in
    [1−ε, 1+ε] for each sample (rational arithmetic throughout: factors are
    drawn as [k/grid] with [k] integer, so every sampled period is exact).
    The Monte-Carlo distribution of the period quantifies how fragile a
    mapping's throughput is to platform variability. *)

open Rwt_util
open Rwt_workflow

type stats = {
  samples : int;
  min : Rat.t;
  max : Rat.t;
  mean : Rat.t;
  median : Rat.t;
  q90 : Rat.t;  (** empirical 90th percentile *)
  nominal : Rat.t;  (** period of the unperturbed instance *)
  no_critical : int;  (** samples whose period exceeds their own Mct *)
}

val sample_platform :
  Prng.t -> epsilon:Rat.t -> grid:int -> Platform.t -> Platform.t
(** One random rescaling of every speed and bandwidth. [grid] controls the
    resolution of the perturbation lattice (factors are multiples of
    [1/grid]). @raise Invalid_argument if [epsilon >= 1] or [grid <= 0]. *)

val run :
  ?seed:int -> ?samples:int -> ?epsilon:Rat.t -> ?grid:int ->
  Comm_model.t -> Instance.t -> stats
(** Defaults: seed 2009, 200 samples, ε = 1/5, grid 100. The OVERLAP model
    uses Theorem 1 per sample; STRICT uses the full TPN (the mapping is
    fixed, so [m] is fixed — keep it tractable). *)

val pp : Format.formatter -> stats -> unit
