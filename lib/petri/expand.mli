(** Reduction of timed event graphs to 1-bounded form.

    A place holding [k >= 2] tokens is equivalent (for dater semantics and
    cycle ratios) to a chain of [k] singly-marked places threaded through
    [k-1] fresh zero-time transitions. The (max,+) matrix formulation
    ({!Rwt_maxplus.Spectral}) and any analysis restricted to markings in
    {0, 1} become fully general after this expansion. *)

val one_bounded : ?transition_cap:int -> Tpn.t -> (Tpn.t, Rwt_util.Rwt_err.t) result
(** Structurally equal to the input if it is already 1-bounded (fresh copy
    otherwise). Firing times, liveness and every circuit's ratio are
    preserved; added transitions are named ["buf<k>@<place>"] with firing
    time 0.

    The projected transition count of the output is checked against
    [transition_cap] (default {!transition_cap}) {e before} any
    allocation; the projection itself uses overflow-checked sums, so
    adversarial markings are rejected rather than wrapping past the guard.
    Returns [Error] (class [Capacity], code ["capacity.expand"]) with a
    diagnostic reporting the original and buffer transition counts, the
    largest marking and the cap, when the expansion would exceed it.
    Rejections increment the [expand.rejections] counter and the projection
    is always published as the [expand.projected_transitions] gauge (see
    [Rwt_obs]). *)

val one_bounded_exn : ?transition_cap:int -> Tpn.t -> Tpn.t
(** Exception shim for {!one_bounded}.
    @raise Rwt_util.Rwt_err.Error on the same conditions. *)

val is_one_bounded : Tpn.t -> bool

val transition_cap : unit -> int
(** Process-wide {e default} size guard shared by {!one_bounded} and the
    TPN builder ([Rwt_core.Tpn_build.build]): the largest transition count
    a constructed or expanded net may have when no explicit
    [?transition_cap] is passed. Defaults to {!default_transition_cap}.
    The cell is atomic, but concurrent solvers should prefer the explicit
    argument: mutating the default races against every other domain. *)

val set_transition_cap : int -> unit
(** Set the process-wide default (atomically).
    @raise Invalid_argument if the cap is not positive. *)

val default_transition_cap : int
(** 1_000_000 — roomy enough for every paper example (Example C's full TPN
    has 135_135 transitions) while refusing the exponential [lcm] blow-ups
    the TPN route is documented to hit. *)
