open Rwt_util
module Mcr = Rwt_petri.Mcr
module D = Rwt_graph.Digraph

type result = {
  period : Rat.t;
  tpn_ratio : Rat.t;
  m : int;
  critical : (int * int) list;
  net : Tpn_build.t;
}

let period_exn ?transition_cap ?deadline model inst =
  Rwt_obs.with_span "exact.period" @@ fun () ->
  let net = Tpn_build.build_exn ?transition_cap model inst in
  let g = Mcr.graph_of_tpn net.Tpn_build.tpn in
  match Mcr.solve_exact ?deadline g with
  | None -> invalid_arg "Exact.period: net has no circuit"
  | Some w ->
    let critical =
      List.map
        (fun eid -> Tpn_build.row_col net (D.edge g eid).D.src)
        w.Mcr.Exact.cycle
    in
    { period = Rat.div_int w.Mcr.Exact.ratio net.Tpn_build.m;
      tpn_ratio = w.Mcr.Exact.ratio;
      m = net.Tpn_build.m;
      critical;
      net }

let period ?transition_cap ?deadline model inst =
  Rwt_err.catch (fun () -> period_exn ?transition_cap ?deadline model inst)

let throughput ?transition_cap model inst =
  Rat.inv (period_exn ?transition_cap model inst).period

let pp_critical result fmt () =
  Format.fprintf fmt "@[<v>critical cycle (%d transitions, ratio %a, period %a):@,"
    (List.length result.critical) Rat.pp_approx result.tpn_ratio Rat.pp_approx
    result.period;
  List.iter
    (fun (row, col) ->
      let id = Tpn_build.transition_id result.net ~row ~col in
      Format.fprintf fmt "  row %d: %a@," row Tpn_build.pp_kind
        (Tpn_build.kind result.net id))
    result.critical;
  Format.fprintf fmt "@]"
