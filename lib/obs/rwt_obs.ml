module Json = Rwt_util.Json

(* --- state ---

   The registry is shared by every domain (Rwt_batch workers solve
   concurrently): counter and gauge cells are [Atomic.t]s so hot-path
   increments are lock-free once the cell exists, and a single mutex
   guards table insertion, histogram mutation, the trace-event log and
   the structured-event ring. Span stacks are domain-local ([Domain.DLS])
   so nesting in one worker never interleaves with another's. The
   disabled fast path is unchanged: one flag read, no lock, no
   allocation. *)

let on = Atomic.make false
let tracing = Atomic.make false
let events_on = Atomic.make false

(* Monotonic clock (C stub over CLOCK_MONOTONIC); probed once at module
   init, wall clock as fallback. Wall-clock steps under [gettimeofday]
   skew span durations, so the stub is strongly preferred. *)
external monotonic_clock : unit -> float = "rwt_obs_monotonic_s"

let default_clock =
  if monotonic_clock () >= 0.0 then monotonic_clock else Unix.gettimeofday

let clock = ref default_clock
let t0 = ref 0.0
let mu = Mutex.create ()

let locked f = Mutex.protect mu f

(* the domain that loaded this module: its trace lane is labelled "main" *)
let main_tid = (Domain.self () :> int)

(* log2-scale histogram over (0, inf): bucket k covers
   (lo·2^(k-1), lo·2^k], bucket 0 covers (0, lo]. 96 buckets span
   1e-9 s .. ~7.9e19, enough for any duration or size this repo meets. *)
let n_buckets = 96
let bucket_lo = 1e-9

type hist = {
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  buckets : int array;
}

let counters : (string, int Atomic.t) Hashtbl.t = Hashtbl.create 64
let gauges : (string, float Atomic.t) Hashtbl.t = Hashtbl.create 64
let hists : (string, hist) Hashtbl.t = Hashtbl.create 64

type trace_event = {
  ev_name : string;
  ev_ph : string; (* "X" complete span | "C" counter sample *)
  ev_tid : int; (* recording domain's id: one Chrome lane per domain *)
  ev_ts : float; (* seconds since t0 *)
  ev_dur : float; (* seconds; 0 for counter samples *)
  ev_args : (string * Json.t) list;
}

let trace_log : trace_event list ref = ref [] (* newest first; guarded by mu *)

(* --- structured event ring ---

   A bounded ring of NDJSON-able records (solver convergence telemetry:
   Howard rounds, screen verdicts, per-SCC outcomes). Oldest entries are
   overwritten when full, so a runaway solve cannot exhaust memory; the
   drop count is reported alongside the export. Guarded by [mu]. *)

type event = {
  e_ts : float; (* seconds since t0 *)
  e_dom : int; (* recording domain's id *)
  e_name : string;
  e_fields : (string * Json.t) list;
}

let default_event_capacity = 8192
let event_cap = ref default_event_capacity
let ring : event array ref = ref [||] (* allocated on first event *)
let ring_pos = ref 0 (* next write slot *)
let ring_total = ref 0 (* events ever pushed (kept + dropped) *)

let ring_reset () =
  ring := [||];
  ring_pos := 0;
  ring_total := 0

let set_event_capacity n =
  locked (fun () ->
      event_cap := max 1 n;
      ring_reset ())

let stack_key : (string * float * (string * Json.t) list) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

(* --- lifecycle --- *)

let enabled () = Atomic.get on
let tracing_enabled () = Atomic.get tracing
let events_enabled () = Atomic.get events_on

let enable ?(trace = false) ?(events = false) () =
  Atomic.set on true;
  if trace || events then t0 := !clock ();
  if trace then Atomic.set tracing true;
  if events then Atomic.set events_on true

let disable () =
  Atomic.set on false;
  Atomic.set tracing false;
  Atomic.set events_on false

let reset () =
  locked (fun () ->
      Hashtbl.reset counters;
      Hashtbl.reset gauges;
      Hashtbl.reset hists;
      trace_log := [];
      ring_reset ());
  Domain.DLS.get stack_key := [];
  t0 := !clock ()

let set_clock f = clock := f
let now () = !clock ()

(* --- recording --- *)

(* find-or-insert an atomic cell; the whole lookup is under the lock
   because stdlib Hashtbl tolerates no unsynchronized reader during a
   concurrent resize. The update of the returned cell is lock-free. *)
let cell tbl name init =
  locked (fun () ->
      match Hashtbl.find_opt tbl name with
      | Some c -> c
      | None ->
        let c = Atomic.make init in
        Hashtbl.add tbl name c;
        c)

let add name n =
  if Atomic.get on then begin
    let n = if n < 0 then 0 else n in
    ignore (Atomic.fetch_and_add (cell counters name 0) n)
  end

let incr name = add name 1

let gauge name v =
  if Atomic.get on then Atomic.set (cell gauges name v) v

let gauge_max name v =
  if Atomic.get on then begin
    let c = cell gauges name v in
    let rec raise_to () =
      let cur = Atomic.get c in
      if v > cur && not (Atomic.compare_and_set c cur v) then raise_to ()
    in
    raise_to ()
  end

let bucket_of v =
  if v <= bucket_lo then 0
  else begin
    let k = 1 + int_of_float (Float.log2 (v /. bucket_lo)) in
    if k >= n_buckets then n_buckets - 1 else k
  end

(* upper bound of bucket k: lo·2^k *)
let bucket_hi k = bucket_lo *. Float.of_int (1 lsl (min k 62))

let observe name v =
  if Atomic.get on then
    locked (fun () ->
        let h =
          match Hashtbl.find_opt hists name with
          | Some h -> h
          | None ->
            let h =
              { count = 0; sum = 0.0; min_v = infinity; max_v = neg_infinity;
                buckets = Array.make n_buckets 0 }
            in
            Hashtbl.add hists name h;
            h
        in
        h.count <- h.count + 1;
        h.sum <- h.sum +. v;
        if v < h.min_v then h.min_v <- v;
        if v > h.max_v then h.max_v <- v;
        let b = h.buckets in
        let k = bucket_of v in
        b.(k) <- b.(k) + 1)

let push_trace ev = locked (fun () -> trace_log := ev :: !trace_log)

let sample name v =
  if Atomic.get on then begin
    Atomic.set (cell gauges name v) v;
    if Atomic.get tracing then
      push_trace
        { ev_name = name; ev_ph = "C"; ev_tid = (Domain.self () :> int);
          ev_ts = !clock () -. !t0; ev_dur = 0.0;
          ev_args = [ (name, Json.Float v) ] }
  end

let event ?(fields = []) name =
  if Atomic.get events_on then begin
    let e =
      { e_ts = !clock () -. !t0; e_dom = (Domain.self () :> int);
        e_name = name; e_fields = fields }
    in
    locked (fun () ->
        if Array.length !ring = 0 then ring := Array.make !event_cap e;
        let cap = Array.length !ring in
        !ring.(!ring_pos) <- e;
        ring_pos := (!ring_pos + 1) mod cap;
        ring_total := !ring_total + 1)
  end

(* --- spans --- *)

(* Span-site hook: Rwt_fault registers itself here so every span name
   doubles as a fault-injection point. The hook fires whether or not
   metrics are enabled (fault campaigns must not require --metrics), and
   it may raise — span_begin fires it before pushing, with_span before
   entering, so an injected exception never leaves a dangling span. *)
let span_hook : (string -> unit) option Atomic.t = Atomic.make None
let set_span_hook h = Atomic.set span_hook h

let fire_span_hook name =
  match Atomic.get span_hook with Some f -> f name | None -> ()

let span_begin ?(args = []) name =
  fire_span_hook name;
  if Atomic.get on then begin
    let stack = Domain.DLS.get stack_key in
    stack := (name, !clock (), args) :: !stack
  end

let span_end () =
  if Atomic.get on then begin
    let stack = Domain.DLS.get stack_key in
    match !stack with
    | [] -> incr "obs.span_underflow"
    | (name, start, args) :: rest ->
      stack := rest;
      let now = !clock () in
      let dur = if now > start then now -. start else 0.0 in
      observe ("span." ^ name) dur;
      if Atomic.get tracing then
        push_trace
          { ev_name = name; ev_ph = "X"; ev_tid = (Domain.self () :> int);
            ev_ts = start -. !t0; ev_dur = dur; ev_args = args }
  end

let with_span ?args name f =
  if not (Atomic.get on) then begin
    fire_span_hook name;
    f ()
  end
  else begin
    span_begin ?args name;
    Fun.protect ~finally:span_end f
  end

let span_depth () = List.length !(Domain.DLS.get stack_key)

(* --- reading back --- *)

let counter_value name =
  locked (fun () ->
      match Hashtbl.find_opt counters name with Some c -> Atomic.get c | None -> 0)

let gauge_value name =
  locked (fun () ->
      match Hashtbl.find_opt gauges name with
      | Some c -> Some (Atomic.get c)
      | None -> None)

type histogram_summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let percentile_of_hist (h : hist) q =
  if h.count = 0 then nan
  else begin
    let rank = q *. float_of_int h.count in
    let cum = ref 0 in
    let k = ref 0 in
    (try
       for i = 0 to n_buckets - 1 do
         cum := !cum + h.buckets.(i);
         if float_of_int !cum >= rank then begin
           k := i;
           raise Exit
         end
       done;
       k := n_buckets - 1
     with Exit -> ());
    (* bucket upper bound, clipped to the exact extremes *)
    Float.min h.max_v (Float.max h.min_v (bucket_hi !k))
  end

let summary_of_hist (h : hist) =
  { count = h.count;
    sum = h.sum;
    min = (if h.count = 0 then 0.0 else h.min_v);
    max = (if h.count = 0 then 0.0 else h.max_v);
    mean = (if h.count = 0 then 0.0 else h.sum /. float_of_int h.count);
    p50 = percentile_of_hist h 0.50;
    p90 = percentile_of_hist h 0.90;
    p99 = percentile_of_hist h 0.99 }

let histogram_summary name =
  locked (fun () -> Option.map summary_of_hist (Hashtbl.find_opt hists name))

let percentile name q =
  if q < 0.0 || q > 1.0 then invalid_arg "Rwt_obs.percentile: q outside [0, 1]";
  locked (fun () ->
      Option.map (fun h -> percentile_of_hist h q) (Hashtbl.find_opt hists name))

let metric_names () =
  locked (fun () ->
      let acc = ref [] in
      Hashtbl.iter (fun k _ -> acc := k :: !acc) counters;
      Hashtbl.iter (fun k _ -> acc := k :: !acc) gauges;
      Hashtbl.iter (fun k _ -> acc := k :: !acc) hists;
      List.sort_uniq String.compare !acc)

(* --- structured events: reading back / export --- *)

(* retained window in arrival order; requires [mu] *)
let kept_events_locked () =
  let r = !ring in
  let cap = Array.length r in
  if cap = 0 then []
  else if !ring_total <= cap then Array.to_list (Array.sub r 0 !ring_total)
  else List.init cap (fun i -> r.((!ring_pos + i) mod cap))

let json_float f = if Float.is_nan f then Json.Null else Json.Float f

let event_json e =
  Json.Obj
    (("ts", json_float e.e_ts)
     :: ("dom", Json.Int e.e_dom)
     :: ("ev", Json.String e.e_name)
     :: e.e_fields)

let events_json () = List.map event_json (locked kept_events_locked)

let events_ndjson () =
  let lines = List.map (fun j -> Json.to_string j ^ "\n") (events_json ()) in
  String.concat "" lines

type event_stats = {
  recorded : int;
  kept : int;
  dropped : int;
  capacity : int;
  by_name : (string * int) list;
}

let event_stats () =
  let kept, total, cap =
    locked (fun () -> (kept_events_locked (), !ring_total, !event_cap))
  in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun e ->
      Hashtbl.replace tbl e.e_name
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl e.e_name)))
    kept;
  let by_name =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (na, ca) (nb, cb) ->
           match compare cb ca with 0 -> String.compare na nb | c -> c)
  in
  let kept_n = List.length kept in
  { recorded = total; kept = kept_n; dropped = total - kept_n;
    capacity = cap; by_name }

let event_count () = (event_stats ()).recorded

(* --- export --- *)

let sorted_fields tbl f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let metrics_json () =
  let hist_json h =
    let s = summary_of_hist h in
    Json.Obj
      [ ("count", Json.Int s.count);
        ("sum", json_float s.sum);
        ("min", json_float s.min);
        ("max", json_float s.max);
        ("mean", json_float s.mean);
        ("p50", json_float s.p50);
        ("p90", json_float s.p90);
        ("p99", json_float s.p99) ]
  in
  locked (fun () ->
      Json.Obj
        [ ("schema", Json.String "rwt.metrics/1");
          ("counters",
           Json.Obj (sorted_fields counters (fun c -> Json.Int (Atomic.get c))));
          ("gauges",
           Json.Obj (sorted_fields gauges (fun c -> json_float (Atomic.get c))));
          ("histograms", Json.Obj (sorted_fields hists hist_json)) ])

let trace_json () =
  let us s = s *. 1e6 in
  let entry e =
    let base =
      [ ("name", Json.String e.ev_name);
        ("cat", Json.String "rwt");
        ("ph", Json.String e.ev_ph);
        ("ts", json_float (us e.ev_ts)) ]
    in
    let dur = if e.ev_ph = "X" then [ ("dur", json_float (us e.ev_dur)) ] else [] in
    let ids = [ ("pid", Json.Int 1); ("tid", Json.Int e.ev_tid) ] in
    let args =
      match e.ev_args with [] -> [] | kvs -> [ ("args", Json.Obj kvs) ]
    in
    Json.Obj (base @ dur @ ids @ args)
  in
  (* events accumulate in completion order; emit by start time *)
  let by_start =
    List.stable_sort (fun a b -> compare a.ev_ts b.ev_ts)
      (List.rev (locked (fun () -> !trace_log)))
  in
  (* one metadata record per distinct domain so viewers label the lanes *)
  let tids =
    List.sort_uniq compare (List.map (fun e -> e.ev_tid) by_start)
  in
  let lane tid =
    let label =
      if tid = main_tid then "main" else Printf.sprintf "domain %d" tid
    in
    Json.Obj
      [ ("name", Json.String "thread_name");
        ("ph", Json.String "M");
        ("pid", Json.Int 1);
        ("tid", Json.Int tid);
        ("args", Json.Obj [ ("name", Json.String label) ]) ]
  in
  Json.Obj
    [ ("displayTimeUnit", Json.String "ms");
      ("traceEvents", Json.List (List.map lane tids @ List.map entry by_start)) ]

(* --- Prometheus text exposition --- *)

(* metric-name mangling: prefix with rwt_, squash every byte outside
   [A-Za-z0-9_] to '_' (dots become underscores; collisions between
   "a.b" and "a_b" are accepted) *)
let prom_name name =
  let b = Bytes.of_string ("rwt_" ^ name) in
  for i = 0 to Bytes.length b - 1 do
    match Bytes.get b i with
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> ()
    | _ -> Bytes.set b i '_'
  done;
  Bytes.to_string b

let prom_value v =
  if Float.is_nan v then "NaN"
  else if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

(* the slice of a histogram summary the exporter needs *)
type prom_hist = {
  ph_count : int;
  ph_sum : float;
  ph_p50 : float;
  ph_p90 : float;
  ph_p99 : float;
}

let prom_hist_of_summary (s : histogram_summary) =
  { ph_count = s.count; ph_sum = s.sum; ph_p50 = s.p50; ph_p90 = s.p90;
    ph_p99 = s.p99 }

let prometheus_render ~counters ~gauges ~hists =
  let buf = Buffer.create 1024 in
  let header name kind src =
    Printf.bprintf buf "# HELP %s rwt %s %s\n# TYPE %s %s\n" name kind src
      name kind
  in
  List.iter
    (fun (name, v) ->
      let n = prom_name name ^ "_total" in
      header n "counter" name;
      Printf.bprintf buf "%s %d\n" n v)
    counters;
  List.iter
    (fun (name, v) ->
      let n = prom_name name in
      header n "gauge" name;
      Printf.bprintf buf "%s %s\n" n (prom_value v))
    gauges;
  List.iter
    (fun (name, h) ->
      let n = prom_name name in
      header n "summary" name;
      Printf.bprintf buf "%s{quantile=\"0.5\"} %s\n" n (prom_value h.ph_p50);
      Printf.bprintf buf "%s{quantile=\"0.9\"} %s\n" n (prom_value h.ph_p90);
      Printf.bprintf buf "%s{quantile=\"0.99\"} %s\n" n (prom_value h.ph_p99);
      Printf.bprintf buf "%s_sum %s\n" n (prom_value h.ph_sum);
      Printf.bprintf buf "%s_count %d\n" n h.ph_count)
    hists;
  Buffer.contents buf

let prometheus_content_type = "text/plain; version=0.0.4; charset=utf-8"

let prometheus () =
  let cs, gs, hs =
    locked (fun () ->
        ( sorted_fields counters Atomic.get,
          sorted_fields gauges Atomic.get,
          sorted_fields hists (fun h -> prom_hist_of_summary (summary_of_hist h)) ))
  in
  prometheus_render ~counters:cs ~gauges:gs ~hists:hs

let prometheus_of_json j =
  (* accepts an rwt.metrics/1 dump directly, or any object wrapping one
     under a "metrics" key (e.g. the rwt.bench-obs/1 envelope) *)
  let rec find_metrics = function
    | Json.Obj kvs -> (
      match List.assoc_opt "schema" kvs with
      | Some (Json.String "rwt.metrics/1") -> Some kvs
      | _ -> (
        match List.assoc_opt "metrics" kvs with
        | Some m -> find_metrics m
        | None -> None))
    | _ -> None
  in
  let num = function
    | Json.Int i -> Some (float_of_int i)
    | Json.Float f -> Some f
    | Json.Number s -> float_of_string_opt s
    | Json.Null -> Some nan
    | _ -> None
  in
  let obj_fields = function Some (Json.Obj kvs) -> kvs | _ -> [] in
  match find_metrics j with
  | None -> Error "not an rwt.metrics/1 document (no matching \"schema\")"
  | Some kvs ->
    let cs =
      List.filter_map
        (fun (k, v) ->
          match v with Json.Int i -> Some (k, i) | _ -> None)
        (obj_fields (List.assoc_opt "counters" kvs))
    in
    let gs =
      List.filter_map
        (fun (k, v) -> Option.map (fun f -> (k, f)) (num v))
        (obj_fields (List.assoc_opt "gauges" kvs))
    in
    let hs =
      List.filter_map
        (fun (k, v) ->
          match v with
          | Json.Obj fs ->
            let f name = Option.bind (List.assoc_opt name fs) num in
            let i name =
              match List.assoc_opt name fs with
              | Some (Json.Int n) -> Some n
              | _ -> None
            in
            (match (i "count", f "sum", f "p50", f "p90", f "p99") with
             | Some c, Some s, Some p50, Some p90, Some p99 ->
               Some
                 (k, { ph_count = c; ph_sum = s; ph_p50 = p50; ph_p90 = p90;
                       ph_p99 = p99 })
             | _ -> None)
          | _ -> None)
        (obj_fields (List.assoc_opt "histograms" kvs))
    in
    Ok (prometheus_render ~counters:cs ~gauges:gs ~hists:hs)

(* --- metric diffing (rwt obs diff / make bench-diff) --- *)

let flatten_numeric j =
  let acc = ref [] in
  let join path k = if path = "" then k else path ^ "." ^ k in
  let rec go path = function
    | Json.Int i -> acc := (path, float_of_int i) :: !acc
    | Json.Float f -> acc := (path, f) :: !acc
    | Json.Number s -> (
      match float_of_string_opt s with
      | Some f -> acc := (path, f) :: !acc
      | None -> ())
    | Json.Obj kvs -> List.iter (fun (k, v) -> go (join path k) v) kvs
    | Json.List vs ->
      List.iteri (fun i v -> go (join path (string_of_int i)) v) vs
    | Json.Null | Json.Bool _ | Json.String _ -> ()
  in
  go "" j;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !acc

(* '*'-only glob: '*' matches any (possibly empty) substring *)
let glob_match pat s =
  let np = String.length pat and ns = String.length s in
  let rec go pi si =
    if pi = np then si = ns
    else
      match pat.[pi] with
      | '*' ->
        let rec try_from k = k <= ns && (go (pi + 1) k || try_from (k + 1)) in
        try_from si
      | c -> si < ns && s.[si] = c && go (pi + 1) (si + 1)
  in
  go 0 0

type diff_status = Regression | Improvement | Unchanged

type diff_entry = {
  key : string;
  v_old : float;
  v_new : float;
  rel : float; (* signed relative change, (new-old)/|old| *)
  status : diff_status;
}

type diff_report = {
  entries : diff_entry list;
  only_old : string list;
  only_new : string list;
  regressions : int;
  improvements : int;
}

let diff_metrics ?(threshold = 0.10) ?(min_delta = 0.0)
    ?(higher_better = fun _ -> false) ~old_json ~new_json () =
  let olds = flatten_numeric old_json and news = flatten_numeric new_json in
  let old_tbl = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace old_tbl k v) olds;
  let new_tbl = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace new_tbl k v) news;
  let only_old =
    List.filter_map
      (fun (k, _) -> if Hashtbl.mem new_tbl k then None else Some k)
      olds
  in
  let only_new =
    List.filter_map
      (fun (k, _) -> if Hashtbl.mem old_tbl k then None else Some k)
      news
  in
  let entries =
    List.filter_map
      (fun (k, v_old) ->
        match Hashtbl.find_opt new_tbl k with
        | None -> None
        | Some v_new ->
          let delta = v_new -. v_old in
          let rel =
            if v_old <> 0.0 then delta /. Float.abs v_old
            else if delta = 0.0 then 0.0
            else if delta > 0.0 then infinity
            else neg_infinity
          in
          let status =
            if Float.is_nan delta || Float.abs delta < min_delta then Unchanged
            else begin
              let worse = if higher_better k then -.rel else rel in
              if worse > threshold then Regression
              else if worse < -.threshold then Improvement
              else Unchanged
            end
          in
          Some { key = k; v_old; v_new; rel; status })
      olds
  in
  let count s = List.length (List.filter (fun e -> e.status = s) entries) in
  { entries; only_old; only_new;
    regressions = count Regression; improvements = count Improvement }

(* --- profiling report --- *)

type span_row = {
  span : string;
  calls : int;
  total_s : float;
  mean_s : float;
  p90_s : float;
  max_s : float;
}

type span_sort = By_total | By_mean | By_p90 | By_calls

let span_prefix = "span."

let span_rows () =
  let rows = ref [] in
  locked (fun () ->
      Hashtbl.iter
        (fun name h ->
          let lp = String.length span_prefix in
          if String.length name > lp && String.sub name 0 lp = span_prefix then begin
            let s = summary_of_hist h in
            rows :=
              { span = String.sub name lp (String.length name - lp);
                calls = s.count;
                total_s = s.sum;
                mean_s = s.mean;
                p90_s = s.p90;
                max_s = s.max }
              :: !rows
          end)
        hists);
  !rows

let sort_rows sort rows =
  let key a b =
    match sort with
    | By_total -> compare b.total_s a.total_s
    | By_mean -> compare b.mean_s a.mean_s
    | By_p90 -> compare b.p90_s a.p90_s
    | By_calls -> compare b.calls a.calls
  in
  List.sort
    (fun a b -> match key a b with 0 -> compare a.span b.span | c -> c)
    rows

let truncate_rows top rows =
  match top with
  | Some n when n >= 0 && List.length rows > n -> List.filteri (fun i _ -> i < n) rows
  | _ -> rows

let span_table ?(sort = By_total) ?top () =
  truncate_rows top (sort_rows sort (span_rows ()))

let pp_span_table ?(sort = By_total) ?top fmt () =
  let all = sort_rows sort (span_rows ()) in
  let rows = truncate_rows top all in
  Format.fprintf fmt "@[<v>%-28s %8s %12s %12s %12s %12s@,"
    "phase" "calls" "total(s)" "mean(s)" "p90(s)" "max(s)";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-28s %8d %12.6f %12.6f %12.6f %12.6f@," r.span r.calls
        r.total_s r.mean_s r.p90_s r.max_s)
    rows;
  if List.length rows < List.length all then
    Format.fprintf fmt "(showing top %d of %d spans)@," (List.length rows)
      (List.length all);
  let nc, ng, nh =
    locked (fun () -> (Hashtbl.length counters, Hashtbl.length gauges, Hashtbl.length hists))
  in
  Format.fprintf fmt "%d metrics recorded (counters %d, gauges %d, histograms %d)@]"
    (List.length (metric_names ())) nc ng nh
