(* Kahn's algorithm. *)
let sort g =
  let n = Digraph.num_nodes g in
  let indeg = Array.make n 0 in
  Digraph.iter_edges (fun e -> indeg.(e.Digraph.dst) <- indeg.(e.Digraph.dst) + 1) g;
  let queue = ref [] in
  for u = n - 1 downto 0 do
    if indeg.(u) = 0 then queue := u :: !queue
  done;
  let order = ref [] in
  let seen = ref 0 in
  while !queue <> [] do
    match !queue with
    | [] -> ()
    | u :: tl ->
      queue := tl;
      order := u :: !order;
      incr seen;
      List.iter
        (fun e ->
          let v = e.Digraph.dst in
          indeg.(v) <- indeg.(v) - 1;
          if indeg.(v) = 0 then queue := v :: !queue)
        (Digraph.out_edges g u)
  done;
  if !seen = n then Some (List.rev !order) else None

let is_acyclic g = sort g <> None
