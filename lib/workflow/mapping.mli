(** A mapping of pipeline stages onto processors, with replication: stage
    [S_i] is assigned the ordered processor list [procs i] of length [m_i].
    The paper's two structural rules are enforced:

    - a processor executes at most one stage;
    - the processors of a replicated stage serve the data sets in round-robin
      order — data set [d] of stage [i] runs on [procs i].((d mod m_i)). *)

type error =
  | Empty_stage of int  (** a stage with no processor *)
  | Processor_reused of int  (** a processor assigned to two stages *)
  | Processor_out_of_range of int
  | Stage_count_mismatch of { expected : int; got : int }

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

type t

val create : n_stages:int -> p:int -> int array array -> (t, error) result
(** [create ~n_stages ~p assignment] validates the assignment (one processor
    list per stage, lists pairwise disjoint, ids in [\[0, p)]). *)

val create_exn : n_stages:int -> p:int -> int array array -> t
(** @raise Invalid_argument with the rendered error. *)

val n_stages : t -> int

val replication : t -> int -> int
(** [replication t i = m_i]. *)

val replication_vector : t -> int array

val procs : t -> int -> int array
(** The processors of stage [i], in round-robin order (a fresh copy). *)

val proc_for : t -> stage:int -> dataset:int -> int
(** The processor executing data set [dataset] of stage [stage]. *)

val stage_of : t -> int -> int option
(** Which stage a processor is assigned to, if any. *)

val num_paths : t -> int
(** [lcm(m_0, …, m_{n-1})] (Proposition 1).
    @raise Failure on native-int overflow. *)

val num_paths_big : t -> Rwt_util.Bigint.t
(** Overflow-free variant for reporting. *)

val is_replicated : t -> bool
(** True iff some stage has [m_i > 1]. *)

val pp : Format.formatter -> t -> unit
