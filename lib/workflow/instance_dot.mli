(** Graphviz rendering of a mapped instance — the paper's Figure 2 / 6 / 11
    style: one node per used processor (grouped by stage, labelled with its
    compute time) and one edge per used link (labelled with its transfer
    time). *)

val render : Instance.t -> string
(** DOT source with stage clusters. Times are printed as exact rationals. *)
