Serve chaos walkthrough: kill the daemon mid-batch, restart it on the
same journal, resend, and get byte-identical responses. See doc/SERVE.md.

A request mix: six analyses (with a duplicate), one load error, one echo.

  $ rwt show -e a > a.rwt
  $ rwt show -e b > b.rwt
  $ cat > reqs.txt <<'EOF'
  > {"file":"a.rwt","id":"r1"}
  > {"file":"a.rwt","model":"strict","id":"r2"}
  > {"file":"b.rwt","id":"r3"}
  > {"file":"b.rwt","model":"strict","id":"r4"}
  > {"file":"missing.rwt","id":"r5"}
  > {"file":"a.rwt","id":"r6"}
  > {"req":"echo","payload":"p","id":"r7"}
  > {"example":"c","id":"r8"}
  > EOF

Reference: an uninterrupted run.

  $ rwt serve --socket d.sock --workers 1 --journal ref.journal \
  >   >/dev/null 2>ref.log &
  $ SRV=$!
  $ for i in $(seq 1 200); do [ -S d.sock ] && break; sleep 0.05; done
  $ rwt send reqs.txt --socket d.sock > reference.out
  $ kill -TERM $SRV && wait $SRV

Chaos: a fresh daemon on a fresh journal, armed to die — exit 70 with no
flushing, a simulated kill — on its fifth request span. The first four
results are journaled and answered; the client reports the cut with a
typed error and keeps the partial prefix:

  $ rwt serve --socket d.sock --workers 1 --journal crash.journal \
  >   --fault 'serve.request=abort@#5' >/dev/null 2>c1.log &
  $ SRV=$!
  $ for i in $(seq 1 200); do [ -S d.sock ] && break; sleep 0.05; done
  $ rwt send reqs.txt --socket d.sock > partial.out
  rwt: internal: connection closed by daemon before all responses [got=4, want=8]
  [1]
  $ wait $SRV
  [70]
  $ wc -l < partial.out
  4
  $ grep -c '"status"' crash.journal
  4

Restart on the same journal (the stale socket file is detected and
replaced) and resend everything. The four journaled results replay from
disk; the rest evaluate fresh; the response set is byte-identical to the
uninterrupted run:

  $ rwt serve --socket d.sock --workers 1 --journal crash.journal \
  >   >/dev/null 2>c2.log &
  $ SRV=$!
  $ for i in $(seq 1 200); do [ -S d.sock ] && break; sleep 0.05; done
  $ rwt send reqs.txt --socket d.sock --retries 10 --backoff-ms 20 > resumed.out
  $ cmp reference.out resumed.out && echo IDENTICAL
  IDENTICAL
  $ kill -TERM $SRV && wait $SRV
  $ grep recovered c2.log
  rwt serve: recovered 4 journaled results
  $ grep -o '[0-9]* cache hits, [0-9]* replayed' c2.log
  5 cache hits, 5 replayed

A real kill -9 after a completed batch: nothing graceful runs — no
drain, no socket cleanup — yet the journal already holds every durable
result, so a restarted daemon serves the same bytes:

  $ rwt serve --socket k.sock --workers 1 --journal kill.journal \
  >   >/dev/null 2>k1.log &
  $ K=$!
  $ for i in $(seq 1 200); do [ -S k.sock ] && break; sleep 0.05; done
  $ rwt send reqs.txt --socket k.sock > before.out
  $ kill -9 $K
  $ wait $K || echo killed
  killed
  $ [ -S k.sock ] && echo socket-left-behind
  socket-left-behind

  $ rwt serve --socket k.sock --workers 1 --journal kill.journal \
  >   >/dev/null 2>k2.log &
  $ K=$!
  $ for i in $(seq 1 200); do echo '{"req":"health"}' | rwt send --socket k.sock >/dev/null 2>&1 && break; sleep 0.05; done
  $ rwt send reqs.txt --socket k.sock > after.out
  $ cmp before.out after.out && echo IDENTICAL
  IDENTICAL
  $ kill -TERM $K && wait $K
  $ grep recovered k2.log
  rwt serve: recovered 5 journaled results
