(** Weakly connected components (edge direction ignored) — used to split a
    communication column's sub-TPN into its [gcd(m_i, m_{i+1})] independent
    components (Theorem 1). *)

type result = {
  count : int;
  comp : int array;  (** [comp.(v)] is the component of node [v] *)
}

val undirected : 'e Digraph.t -> result

val members : result -> int list array
