open Rwt_util
open Rwt_workflow
module E = Rwt_petri.Mcr.Exact
module D = Rwt_graph.Digraph

type poly_vs_exact_row = {
  instance : Instance.t;
  m : int;
  tpn_transitions : int;
  poly_seconds : float;
  exact_seconds : float;
  agree : bool;
  period : Rat.t;
}

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let poly_vs_exact ?(seed = 7) ~sizes ~samples_per_size () =
  let r = Prng.create seed in
  let rows = ref [] in
  List.iter
    (fun (n_stages, p) ->
      for _ = 1 to samples_per_size do
        let rec fresh () =
          let inst =
            Generator.generate r { Generator.n_stages; p; comp = (5, 15); comm = (5, 15) }
          in
          if Mapping.num_paths inst.Instance.mapping > 20_000 then fresh () else inst
        in
        let inst = fresh () in
        let m = Mapping.num_paths inst.Instance.mapping in
        let poly, poly_seconds = time (fun () -> Rwt_core.Poly_overlap.period inst) in
        let exact, exact_seconds =
          time (fun () -> (Rwt_core.Exact.period_exn Comm_model.Overlap inst).Rwt_core.Exact.period)
        in
        rows :=
          { instance = inst; m; tpn_transitions = m * ((2 * n_stages) - 1);
            poly_seconds; exact_seconds; agree = Rat.equal poly exact; period = poly }
          :: !rows
      done)
    sizes;
  List.rev !rows

type solver_row = {
  nodes : int;
  edges : int;
  howard_seconds : float;
  parametric_seconds : float;
  lawler_seconds : float;
  karp_seconds : float;
  all_agree : bool;
}

let random_live_graph r n =
  let g = D.create n in
  let g1 = D.create n in
  (* unit-token copy for Karp *)
  let order = Array.init n (fun i -> i) in
  Prng.shuffle r order;
  let rank = Array.make n 0 in
  Array.iteri (fun i u -> rank.(u) <- i) order;
  for i = 0 to n - 1 do
    (* a Hamiltonian marked ring guarantees strong connectivity *)
    let w = Rat.of_int (Prng.int_in r 1 30) in
    ignore (D.add_edge g order.(i) order.((i + 1) mod n) { E.weight = w; tokens = 1 });
    ignore (D.add_edge g1 order.(i) order.((i + 1) mod n) w)
  done;
  for _ = 1 to 3 * n do
    let u = Prng.int r n and v = Prng.int r n in
    let tokens = if rank.(v) <= rank.(u) then 1 else if Prng.int r 3 = 0 then 1 else 0 in
    let w = Rat.of_int (Prng.int_in r 0 30) in
    ignore (D.add_edge g u v { E.weight = w; tokens });
    ignore (D.add_edge g1 u v w)
  done;
  (g, g1)

let solver_comparison ?(seed = 11) ~sizes ~samples_per_size () =
  let r = Prng.create seed in
  let rows = ref [] in
  List.iter
    (fun n ->
      for _ = 1 to samples_per_size do
        let g, g1 = random_live_graph r n in
        let h, howard_seconds = time (fun () -> E.howard g) in
        let p, parametric_seconds = time (fun () -> E.parametric g) in
        let l, lawler_seconds =
          time (fun () -> E.lawler ~epsilon:(Rat.of_ints 1 1_000_000_000) g)
        in
        let k, karp_seconds = time (fun () -> E.karp g1) in
        let ratio = function Some w -> Some w.E.ratio | None -> None in
        let hk =
          (* Karp runs on the unit-token projection: compare against Howard
             on the same projection *)
          E.howard (D.map_labels (fun d -> { d with E.tokens = 1 }) g)
        in
        let lawler_close =
          match (ratio h, ratio l) with
          | Some a, Some b ->
            (* lawler returns a genuine cycle's ratio within epsilon below *)
            Rat.compare b a <= 0
            && Rat.compare (Rat.sub a b) (Rat.of_ints 1 1_000_000_000) <= 0
          | None, None -> true
          | _ -> false
        in
        let all_agree =
          ratio h = ratio p && lawler_close
          && (match (ratio hk, k) with
             | Some a, Some b -> Rat.equal a b
             | None, None -> true
             | _ -> false)
        in
        rows :=
          { nodes = n; edges = D.num_edges g; howard_seconds; parametric_seconds;
            lawler_seconds; karp_seconds; all_agree }
          :: !rows
      done)
    sizes;
  List.rev !rows

let pp_poly_rows fmt rows =
  Format.fprintf fmt "@[<v>%-14s %-8s %-12s %-12s %-12s %s@," "size" "m"
    "transitions" "poly (s)" "full TPN (s)" "agree";
  List.iter
    (fun row ->
      let mapping = row.instance.Instance.mapping in
      Format.fprintf fmt "(%d,%d)%-6s %-8d %-12d %-12.5f %-12.5f %b@,"
        (Mapping.n_stages mapping)
        (Platform.p row.instance.Instance.platform)
        "" row.m row.tpn_transitions row.poly_seconds row.exact_seconds row.agree)
    rows;
  Format.fprintf fmt "@]"

let pp_solver_rows fmt rows =
  Format.fprintf fmt "@[<v>%-8s %-8s %-14s %-14s %-14s %-14s %s@," "nodes" "edges"
    "howard (s)" "parametric (s)" "lawler (s)" "karp (s)" "agree";
  List.iter
    (fun row ->
      Format.fprintf fmt "%-8d %-8d %-14.5f %-14.5f %-14.5f %-14.5f %b@," row.nodes
        row.edges row.howard_seconds row.parametric_seconds row.lawler_seconds
        row.karp_seconds row.all_agree)
    rows;
  Format.fprintf fmt "@]"
