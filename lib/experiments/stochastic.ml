open Rwt_util
open Rwt_workflow

type stats = {
  samples : int;
  min : Rat.t;
  max : Rat.t;
  mean : Rat.t;
  median : Rat.t;
  q90 : Rat.t;
  nominal : Rat.t;
  no_critical : int;
}

let sample_platform r ~epsilon ~grid base =
  if Rat.compare epsilon Rat.one >= 0 || Rat.sign epsilon < 0 then
    invalid_arg "Stochastic.sample_platform: need 0 <= epsilon < 1";
  if grid <= 0 then invalid_arg "Stochastic.sample_platform: grid <= 0";
  (* a uniform rational factor in [1-ε, 1+ε] on a lattice of step ε/grid *)
  let factor () =
    let k = Prng.int_in r (-grid) grid in
    Rat.add Rat.one (Rat.mul epsilon (Rat.of_ints k grid))
  in
  let p = Platform.p base in
  let speeds = Array.init p (fun u -> Rat.mul (Platform.speed base u) (factor ())) in
  let bandwidths =
    Array.init p (fun u ->
        Array.init p (fun v ->
            if u = v then Platform.bandwidth base u v
            else Rat.mul (Platform.bandwidth base u v) (factor ())))
  in
  Platform.create ~speeds ~bandwidths

let period_of model inst =
  match model with
  | Comm_model.Overlap -> Rwt_core.Poly_overlap.period inst
  | Comm_model.Strict -> (Rwt_core.Exact.period_exn model inst).Rwt_core.Exact.period

let run ?(seed = 2009) ?(samples = 200) ?(epsilon = Rat.of_ints 1 5) ?(grid = 100)
    model inst =
  if samples <= 0 then invalid_arg "Stochastic.run: samples <= 0";
  let r = Prng.create seed in
  let nominal = period_of model inst in
  let periods = Array.make samples Rat.zero in
  let no_critical = ref 0 in
  for i = 0 to samples - 1 do
    let platform = sample_platform r ~epsilon ~grid inst.Instance.platform in
    let sample =
      Instance.create_exn ~name:"sample" ~pipeline:inst.Instance.pipeline ~platform
        ~mapping:inst.Instance.mapping
    in
    let period = period_of model sample in
    periods.(i) <- period;
    if Rat.compare period (Cycle_time.mct model sample) > 0 then incr no_critical
  done;
  Array.sort Rat.compare periods;
  let mean =
    Rat.div_int (Array.fold_left Rat.add Rat.zero periods) samples
  in
  { samples;
    min = periods.(0);
    max = periods.(samples - 1);
    mean;
    median = periods.(samples / 2);
    q90 = periods.(Stdlib.min (samples - 1) (samples * 9 / 10));
    nominal;
    no_critical = !no_critical }

let pp fmt s =
  Format.fprintf fmt
    "@[<v>%d samples: period min %a / median %a / mean %a / q90 %a / max %a@,nominal %a; %d samples without critical resource@]"
    s.samples Rat.pp_approx s.min Rat.pp_approx s.median Rat.pp_approx s.mean
    Rat.pp_approx s.q90 Rat.pp_approx s.max Rat.pp_approx s.nominal s.no_critical
