open Rwt_util
open Rwt_workflow

type histogram = {
  model : Comm_model.t;
  total : int;
  zeros : int;
  positives : Rat.t list;
  buckets : (float * float * int) array;
  max_gap : Rat.t;
}

let run ?(seed = 2009) ?(samples = 300) ?(bucket_percent = 1.0) ?(m_cap = 3000) model
    cfg =
  let r = Prng.create seed in
  let zeros = ref 0 in
  let total = ref 0 in
  let positives = ref [] in
  for _ = 1 to samples do
    let inst = Generator.generate r cfg in
    let tractable =
      model = Comm_model.Overlap || Mapping.num_paths inst.Instance.mapping <= m_cap
    in
    if tractable then begin
      incr total;
      let period =
        match model with
        | Comm_model.Overlap -> Rwt_core.Poly_overlap.period inst
        | Comm_model.Strict -> (Rwt_core.Exact.period_exn model inst).Rwt_core.Exact.period
      in
      let mct = Cycle_time.mct model inst in
      if Rat.equal period mct then incr zeros
      else positives := Rat.div (Rat.sub period mct) mct :: !positives
    end
  done;
  let positives = List.sort Rat.compare !positives in
  let max_gap = match List.rev positives with [] -> Rat.zero | g :: _ -> g in
  let top = Rat.to_float max_gap *. 100.0 in
  let nbuckets = max 1 (int_of_float (ceil (top /. bucket_percent))) in
  let buckets =
    Array.init nbuckets (fun i ->
        (float_of_int i *. bucket_percent, float_of_int (i + 1) *. bucket_percent, 0))
  in
  List.iter
    (fun g ->
      let pct = Rat.to_float g *. 100.0 in
      let i = min (nbuckets - 1) (int_of_float (pct /. bucket_percent)) in
      let lo, hi, c = buckets.(i) in
      buckets.(i) <- (lo, hi, c + 1))
    positives;
  { model; total = !total; zeros = !zeros; positives; buckets; max_gap }

let pp fmt h =
  Format.fprintf fmt "@[<v>%s model: %d instances, %d with a critical resource, %d without@,"
    (Comm_model.to_string h.model) h.total h.zeros (List.length h.positives);
  if h.positives <> [] then begin
    Format.fprintf fmt "positive gap distribution (max %a%%):@," Rat.pp_approx
      (Rat.mul_int h.max_gap 100);
    let widest =
      Array.fold_left (fun acc (_, _, c) -> max acc c) 1 h.buckets
    in
    Array.iter
      (fun (lo, hi, c) ->
        if c > 0 || hi <= Rat.to_float h.max_gap *. 100.0 then
          Format.fprintf fmt "  [%4.1f%%, %4.1f%%) %-4d %s@," lo hi c
            (String.make (c * 40 / widest) '#'))
      h.buckets
  end;
  Format.fprintf fmt "@]"
