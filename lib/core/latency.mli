(** Steady-state latency (response time) of a mapping — the companion metric
    to the paper's throughput (its references [12, 14, 15] study the
    latency/throughput trade-off that replication creates).

    Data sets are released periodically, one every [period] time units (the
    paper's steady-state regime: "a new data set enters the system every P
    time-units"); the latency of data set [d] is its ordered-stream delivery
    time minus its release date. With a release period equal to the exact
    period of the mapping the system is critically loaded and the latency
    converges to a periodic pattern over the [m] residue classes. *)

open Rwt_util
open Rwt_workflow

type t = {
  period : Rat.t;  (** the release period used *)
  per_residue : Rat.t array;  (** steady latency of each of the [m] classes *)
  worst : Rat.t;
  best : Rat.t;
  mean : Rat.t;
}

val analyze : ?margin:Rat.t -> ?period:Rat.t -> Comm_model.t -> Instance.t -> t
(** Releases data sets every [period · (1 + margin)] time units, where
    [period] is the exact period of the mapping and [margin] defaults to 0
    (critical load; a positive margin models an under-loaded system and
    yields smaller latencies). [period] overrides the internally computed
    exact period — pass it when the caller already holds the exact value
    (e.g. the search engine's warm-started {!Delta} solves), so the
    analysis skips the redundant solve; it must be positive. The steady
    values are read from the simulated schedule once the per-residue
    latencies have stabilized.
    @raise Failure if the latencies have not stabilized within the horizon
    (cannot happen for [margin >= 0]: the schedule is then eventually
    periodic). *)

val pp : Format.formatter -> t -> unit
