(* Benchmark and reproduction harness.

   Usage:  dune exec bench/main.exe [-- TARGET ...]

   Without arguments, every table and figure of the paper is regenerated at
   a moderate scale and the Bechamel micro-benchmarks of the computational
   kernels are run. Targets select a subset:

     table1 example-a example-b example-c tpn-stats sub-tpn critical-cycle
     gantt-a gantt-b table2 table2-full ablation-poly ablation-mcr
     calibrate bechamel

   The per-experiment index lives in DESIGN.md §5; measured-vs-paper values
   are recorded in EXPERIMENTS.md. *)

open Rwt_util
open Rwt_workflow

let pf fmt = Format.printf fmt

let section title =
  pf "@.%s@.%s@." title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* Table 1: round-robin paths of Example A                             *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section "Table 1 — paths followed by the first input data (Example A)";
  let a = Instances.example_a () in
  pf "%a@." Paths.pp_table (a.Instance.mapping, 8);
  pf "paper: 6 distinct paths, data set i takes the path of i-6@."

(* ------------------------------------------------------------------ *)
(* Figure 2 / §4.1 / §4.2: Example A, both models                      *)
(* ------------------------------------------------------------------ *)

let example_a () =
  section "Example A (Figure 2, §4.1, §4.2)";
  let a = Instances.example_a () in
  List.iter
    (fun model ->
      let report = Rwt_core.Analysis.analyze_exn model a in
      pf "%a@." Rwt_core.Analysis.pp_report report)
    Comm_model.all;
  pf "paper: overlap P = 189 = Mct (critical: P0 out-port);@.";
  pf "       strict Mct = 215.8 (P2) < P = 230.7@.";
  let sim_o = Rwt_sim.Schedule.measured_period Comm_model.Overlap a in
  let sim_s = Rwt_sim.Schedule.measured_period Comm_model.Strict a in
  pf "simulator cross-check: overlap %a, strict %a@." Rat.pp_approx sim_o Rat.pp_approx sim_s

(* ------------------------------------------------------------------ *)
(* Figures 4 and 5: the complete TPNs of Example A                     *)
(* ------------------------------------------------------------------ *)

let tpn_stats () =
  section "Figures 4 & 5 — complete TPNs of Example A";
  let a = Instances.example_a () in
  List.iter
    (fun model ->
      let net = Rwt_core.Tpn_build.build_exn model a in
      pf "%s: %a (m = %d rows x %d columns)@." (Comm_model.to_string model)
        Rwt_petri.Tpn.pp_stats net.Rwt_core.Tpn_build.tpn net.Rwt_core.Tpn_build.m
        ((2 * net.Rwt_core.Tpn_build.n_stages) - 1);
      pf "  places by constraint family (Figure 3): %a@." Rwt_core.Tpn_build.pp_census
        (Rwt_core.Tpn_build.place_census net))
    Comm_model.all;
  pf "(full DOT renderings: rwt tpn -e a -m overlap --dot)@."

(* ------------------------------------------------------------------ *)
(* §4.1, Figure 6: Example B                                           *)
(* ------------------------------------------------------------------ *)

let example_b () =
  section "Example B (Figure 6, §4.1) — no critical resource under overlap";
  let b = Instances.example_b () in
  let report = Rwt_core.Analysis.analyze_exn Comm_model.Overlap b in
  pf "%a@." Rwt_core.Analysis.pp_report report;
  pf "paper: Mct = 258.3 (P2 out-port) < P = 291.7@.";
  let sim = Rwt_sim.Schedule.measured_period Comm_model.Overlap b in
  pf "simulator cross-check: %a@." Rat.pp_approx sim

(* ------------------------------------------------------------------ *)
(* Figures 7 and 12: Gantt diagrams                                    *)
(* ------------------------------------------------------------------ *)

let gantt_a () =
  section "Figure 7 — Gantt diagram of Example A, strict (no critical resource)";
  let a = Instances.example_a () in
  let sched = Rwt_sim.Schedule.run Comm_model.Strict a ~datasets:30 in
  (* three periods, like the paper *)
  print_string (Rwt_sim.Gantt.to_ascii ~width:100 ~from_dataset:6 ~until_dataset:23 sched);
  pf "utilization over the window (all < 1: every resource idles):@.";
  List.iter
    (fun (unit, u) -> pf "  %-8s %a@." unit Rat.pp_approx u)
    (Rwt_sim.Schedule.utilization sched ~from_dataset:6)

let gantt_b () =
  section "Figure 12 — Gantt diagram of Example B, overlap (first periods)";
  let b = Instances.example_b () in
  let sched = Rwt_sim.Schedule.run Comm_model.Overlap b ~datasets:60 in
  print_string (Rwt_sim.Gantt.to_ascii ~width:100 ~from_dataset:24 ~until_dataset:47 sched);
  pf "utilization (P2-out is the bottleneck yet also idles):@.";
  List.iter
    (fun (unit, u) -> pf "  %-8s %a@." unit Rat.pp_approx u)
    (Rwt_sim.Schedule.utilization sched ~from_dataset:24)

(* ------------------------------------------------------------------ *)
(* Figure 8: complex critical cycle of Example A, strict               *)
(* ------------------------------------------------------------------ *)

let critical_cycle () =
  section "Figure 8 — complex critical cycle of Example A (strict)";
  let a = Instances.example_a () in
  let result = Rwt_core.Exact.period_exn Comm_model.Strict a in
  pf "%a@." (Rwt_core.Exact.pp_critical result) ()

(* ------------------------------------------------------------------ *)
(* Figures 9 and 10: communication sub-TPNs                            *)
(* ------------------------------------------------------------------ *)

let sub_tpn () =
  section "Figure 9 — sub-TPN of the transmission of F1 (Example A)";
  let show inst ~file =
    let analysis = Rwt_core.Poly_overlap.analyze inst in
    List.iter
      (function
        | Rwt_core.Poly_overlap.Comm_col cc when cc.Rwt_core.Poly_overlap.file = file ->
          pf "F%d: p = %d component(s), pattern u x v = %d x %d, c = %a copies@."
            cc.Rwt_core.Poly_overlap.file cc.Rwt_core.Poly_overlap.p
            cc.Rwt_core.Poly_overlap.u cc.Rwt_core.Poly_overlap.v Bigint.pp
            cc.Rwt_core.Poly_overlap.c;
          List.iter
            (fun comp ->
              pf
                "  component %d: senders {%s}, receivers {%s}, critical ratio %a -> period bound %a@."
                comp.Rwt_core.Poly_overlap.q
                (String.concat ","
                   (Array.to_list
                      (Array.map Platform.proc_name comp.Rwt_core.Poly_overlap.senders)))
                (String.concat ","
                   (Array.to_list
                      (Array.map Platform.proc_name comp.Rwt_core.Poly_overlap.receivers)))
                Rat.pp_approx comp.Rwt_core.Poly_overlap.ratio Rat.pp_approx
                comp.Rwt_core.Poly_overlap.bound)
            cc.Rwt_core.Poly_overlap.components
        | _ -> ())
      analysis.Rwt_core.Poly_overlap.columns
  in
  show (Instances.example_a ()) ~file:1;
  section "Figure 10 — sub-TPN of the transmission of F0 (Example B)";
  show (Instances.example_b ()) ~file:0

(* ------------------------------------------------------------------ *)
(* Figure 11 / 13 / 14 and appendix A: Example C                       *)
(* ------------------------------------------------------------------ *)

let example_c () =
  section "Example C (Figures 11, 13, 14; appendix A)";
  let c = Instances.example_c () in
  pf "replication vector: (%s)@."
    (String.concat ", "
       (Array.to_list
          (Array.map string_of_int (Mapping.replication_vector c.Instance.mapping))));
  pf "m = %s (paper: 10395)@." (Bigint.to_string (Mapping.num_paths_big c.Instance.mapping));
  let analysis = Rwt_core.Poly_overlap.analyze c in
  pf "%a@." Rwt_core.Poly_overlap.pp_analysis analysis;
  pf "paper (F1 column): p = 3, u = 7, v = 9, c = 55; the full component is 55 patterns of 7 x 9@."

(* ------------------------------------------------------------------ *)
(* Table 2: the experiment campaign                                    *)
(* ------------------------------------------------------------------ *)

let table2 ~scale () =
  section
    (Printf.sprintf
       "Table 2 — experiments without critical resource (scale %.2f of the paper's 2 x 2576 runs)"
       scale);
  let progress label k =
    if k > 0 && k mod 100 = 0 then Printf.eprintf "  [%s] %d instances...\n%!" label k
  in
  let results = Rwt_experiments.Table2.run_all ~scale ~progress () in
  pf "%a@." Rwt_experiments.Table2.pp_results results;
  pf "paper (full scale): overlap rows all 0; strict rows 14/220 (<9%%), 0/220, 5/68 (<7%%), 0/68, 10/1000 (<3%%), 0/1000@."

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablation_poly () =
  section "Ablation — Theorem 1 (polynomial) vs full-TPN critical cycle (overlap)";
  let rows =
    Rwt_experiments.Ablation.poly_vs_exact
      ~sizes:[ (3, 8); (4, 12); (5, 16); (6, 20); (6, 26) ]
      ~samples_per_size:3 ()
  in
  pf "%a@." Rwt_experiments.Ablation.pp_poly_rows rows;
  pf "agreement must be exact on every row; the poly algorithm's cost is driven by Σ(m_i·m_{i+1}), the TPN's by m = lcm(m_i)@."

let ablation_mcr () =
  section "Ablation — max-cycle-ratio solvers (Howard vs parametric vs Karp)";
  let rows =
    Rwt_experiments.Ablation.solver_comparison ~sizes:[ 20; 50; 100; 200 ]
      ~samples_per_size:3 ()
  in
  pf "%a@." Rwt_experiments.Ablation.pp_solver_rows rows

(* ------------------------------------------------------------------ *)
(* Extensions beyond the paper                                         *)
(* ------------------------------------------------------------------ *)

let extension_latency () =
  section "Extension — steady-state latency under periodic admission (Examples A/B)";
  List.iter
    (fun (name, inst) ->
      List.iter
        (fun model ->
          let l = Rwt_core.Latency.analyze model inst in
          pf "%s %-8s %a@." name (Comm_model.to_string model) Rwt_core.Latency.pp l)
        Comm_model.all)
    [ ("A", Instances.example_a ()); ("B", Instances.example_b ()) ];
  pf "(replication trades latency for throughput: see the per-class spread)@."

let extension_optimize () =
  section "Extension — heuristic mapping search (NP-hard companion problem)";
  let pipeline =
    Pipeline.of_ints ~work:[| 40; 2600; 900; 5200; 60 |] ~data:[| 8; 40; 40; 6 |]
  in
  let platform =
    Platform.star
      ~speeds:(Array.map Rat.of_int [| 200; 900; 900; 850; 850; 800; 800; 750; 2500; 2500 |])
      ~link_bw:(Array.map Rat.of_int [| 25; 120; 120; 120; 120; 120; 120; 120; 250; 250 |])
  in
  List.iter
    (fun model ->
      let greedy = Rwt_core.Optimize.greedy_exn model pipeline platform in
      let ls = Rwt_core.Optimize.local_search_exn ~iterations:300 model pipeline platform in
      pf "%s: greedy period %a -> local search %a (%d evaluations)@."
        (Comm_model.to_string model) Rat.pp_approx greedy.Rwt_core.Optimize.period
        Rat.pp_approx ls.Rwt_core.Optimize.period ls.Rwt_core.Optimize.evaluations)
    Comm_model.all

let extension_stochastic () =
  section "Extension — dynamic platforms (the paper's §6 future work)";
  List.iter
    (fun (name, inst) ->
      let s = Rwt_experiments.Stochastic.run ~samples:120 Comm_model.Overlap inst in
      pf "%s (overlap, ε = 1/5): %a@." name Rwt_experiments.Stochastic.pp s)
    [ ("Example A", Instances.example_a ()); ("Example B", Instances.example_b ());
      ("minimal 4x3 witness", Instances.minimal_no_critical_overlap ()) ]

let minimal_witness () =
  section "New result — minimal overlap no-critical-resource witness (4 x 3 replicas)";
  let inst = Instances.minimal_no_critical_overlap () in
  let report = Rwt_core.Analysis.analyze_exn Comm_model.Overlap inst in
  pf "%a@." Rwt_core.Analysis.pp_report report;
  pf "found by this repository's Table 2 campaign; the paper's own campaign found 0      overlap cases in 2576 runs (its smallest known witness, Example B, is 3 x 4)@."

let extension_sensitivity () =
  section "Extension — what-if sensitivity: which upgrade helps? (Example B)";
  List.iter
    (fun model ->
      let s = Rwt_core.Sensitivity.analyze model (Instances.example_b ()) in
      pf "%s:@.%a@." (Comm_model.to_string model) Rwt_core.Sensitivity.pp s)
    Comm_model.all;
  pf "note: under overlap, doubling ANY processor speed is useless — only the seven@.";
  pf "critical-cycle links matter, although P2-out has the largest cycle-time.@."

let gap_distribution () =
  section "Extension — distribution of the replication gap (P − Mct)/Mct";
  List.iter
    (fun (label, cfg) ->
      List.iter
        (fun model ->
          let h = Rwt_experiments.Gap_hist.run ~samples:250 model cfg in
          pf "%s / %a@." label Rwt_experiments.Gap_hist.pp h)
        Comm_model.all)
    [ ( "(3,7), comp 1, comm 5-10",
        { Rwt_experiments.Generator.n_stages = 3; p = 7; comp = (1, 1); comm = (5, 10) } );
      ( "(2,7), comp 1, comm 5-10",
        { Rwt_experiments.Generator.n_stages = 2; p = 7; comp = (1, 1); comm = (5, 10) } ) ]

let calibrate () =
  section "Calibration — figure-label assignments of Examples A and B (DESIGN.md §4)";
  List.iter
    (fun (name, ok) -> pf "  %-55s %s@." name (if ok then "ok" else "FAIL"))
    (Rwt_experiments.Calibrate.verify_published ());
  let b = Rwt_experiments.Calibrate.example_b_candidates () in
  pf "example B: %d assignments match the published values, %d with a unique critical resource@."
    (List.length b)
    (List.length (List.filter (fun c -> c.Rwt_experiments.Calibrate.unique_critical) b));
  let a = Rwt_experiments.Calibrate.example_a_candidates () in
  pf "example A: %d of 4320 assignments match the published values@." (List.length a)

(* ------------------------------------------------------------------ *)
(* Batch engine: sequential vs parallel throughput                     *)
(* ------------------------------------------------------------------ *)

(* 200-job synthetic mapping-space sweep through Rwt_batch: ~180 distinct
   random instances plus duplicates that must come from the memo cache,
   solved with the full-TPN method so each job carries real solver work.
   Writes BENCH_batch.json (sequential vs parallel wall time, speedup);
   on a single-core container the parallel leg also runs one worker (the
   [cores]/[jobs_parallel] fields record what the hardware allowed). *)
let batch () =
  section "Batch — work-stealing engine, 200-job synthetic set (seq vs parallel)";
  let r = Prng.create 2009 in
  let cfg =
    { Rwt_experiments.Generator.n_stages = 4; p = 12; comp = (5, 15); comm = (5, 15) }
  in
  let uniques =
    Array.init 180 (fun _ -> Rwt_experiments.Generator.generate r cfg)
  in
  let jobs =
    List.init 200 (fun i ->
        (* every 10th job repeats an earlier instance: a forced cache hit *)
        let inst = if i mod 10 = 9 then uniques.(i / 10) else uniques.(i mod 180) in
        Rwt_batch.job ~index:i ~model:Comm_model.Overlap ~method_:Rwt_core.Analysis.Tpn
          (Rwt_batch.Inline inst))
  in
  let render outcomes =
    String.concat "\n"
      (Array.to_list
         (Array.map
            (fun o -> Json.to_string (Rwt_batch.outcome_to_json ~timing:false o))
            outcomes))
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let cores = Domain.recommended_domain_count () in
  (* explicit ~jobs is now honored even on one core (that's how traces show
     the lanes); for timing, spawning domains a single core must multiplex
     only adds overhead, so the parallel leg scales with the hardware *)
  let par_jobs = if cores > 1 then 4 else 1 in
  let (seq, seq_sum), t_seq = time (fun () -> Rwt_batch.run ~jobs:1 jobs) in
  let (par, par_sum), t_par = time (fun () -> Rwt_batch.run ~jobs:par_jobs jobs) in
  let identical = render seq = render par in
  let speedup = if t_par > 0.0 then t_seq /. t_par else 0.0 in
  pf "200 jobs (%d unique, %d cache hits): seq %.3f s, %d domain%s %.3f s -> %.2fx on %d core%s@."
    (seq_sum.Rwt_batch.total - seq_sum.Rwt_batch.cache_hits)
    seq_sum.Rwt_batch.cache_hits t_seq par_jobs
    (if par_jobs = 1 then "" else "s")
    t_par speedup cores
    (if cores = 1 then "" else "s");
  pf "results bit-identical across worker counts (modulo timing): %b@." identical;
  if not identical then failwith "batch benchmark: results differ across worker counts";
  ignore par_sum;
  let json =
    Json.Obj
      [ ("schema", Json.String "rwt.bench-batch/1");
        ("jobs", Json.Int 200);
        ("unique", Json.Int (seq_sum.Rwt_batch.total - seq_sum.Rwt_batch.cache_hits));
        ("cache_hits", Json.Int seq_sum.Rwt_batch.cache_hits);
        ("ok", Json.Int seq_sum.Rwt_batch.ok);
        ("cores", Json.Int cores);
        ("cores_available", Json.Int cores);
        ("workers_used", Json.Int par_jobs);
        ("jobs_parallel", Json.Int par_jobs);
        ("t_seq_s", Json.Float t_seq);
        ("t_par_s", Json.Float t_par);
        ("speedup", Json.Float speedup);
        ("identical", Json.Bool identical) ]
  in
  let oc = open_out "BENCH_batch.json" in
  output_string oc (Json.to_string ~pretty:true json);
  output_char oc '\n';
  close_out oc;
  Printf.eprintf "wrote BENCH_batch.json\n%!"

(* ------------------------------------------------------------------ *)
(* MCR solver: pure exact vs float-screened vs parallel                 *)
(* ------------------------------------------------------------------ *)

(* Synthetic many-SCC ratio graphs: [blocks] disjoint strongly connected
   blocks of [size] nodes each (a ring plus forward chords). Tokens sit
   only on wrapping edges, so the token-free subgraph is acyclic (live) and
   every cycle's token count is its winding number. Weights are rationals
   with ~6-digit numerators and denominators — the worst case for exact
   Howard's bigint arithmetic and the best case for the float screen. *)
let mcr_graph r ~blocks ~size =
  let module Mcr = Rwt_petri.Mcr in
  let module D = Rwt_graph.Digraph in
  let g = D.create (blocks * size) in
  for b = 0 to blocks - 1 do
    let base = b * size in
    let w () = Rat.of_ints (1 + Prng.int r 999_983) (1 + Prng.int r 999_983) in
    for i = 0 to size - 1 do
      let wrap j = if j >= size then 1 else 0 in
      ignore
        (D.add_edge g (base + i)
           (base + ((i + 1) mod size))
           { Mcr.Exact.weight = w (); tokens = wrap (i + 1) });
      if i mod 3 = 0 then
        ignore
          (D.add_edge g (base + i)
             (base + ((i + 2) mod size))
             { Mcr.Exact.weight = w (); tokens = wrap (i + 2) })
    done
  done;
  g

(* Three configurations of the same production entry point
   ([Mcr.solve_exact]): pure exact Howard, float-screened serial, and
   float-screened with SCCs fanned out on the domain pool. Periods must be
   identical across all three (the screen is certified, the pool reduction
   deterministic); the screened witness cycle may legitimately differ from
   exact Howard's (both attain the optimum). Writes BENCH_mcr.json. *)
let mcr_bench () =
  let module Mcr = Rwt_petri.Mcr in
  let module D = Rwt_graph.Digraph in
  section "MCR solver — pure exact vs float-screened vs +pool (BENCH_mcr.json)";
  let time f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let cores = Domain.recommended_domain_count () in
  let saved_screen = !Mcr.screen_enabled in
  let saved_thresh = !Mcr.scc_parallel_threshold in
  let graph_rows =
    List.map
      (fun (blocks, size) ->
        let r = Prng.create ((blocks * 1000) + size) in
        let g = mcr_graph r ~blocks ~size in
        Mcr.screen_enabled := false;
        Mcr.scc_parallel_threshold := max_int;
        let exact, t_exact = time (fun () -> Mcr.solve_exact g) in
        Mcr.screen_enabled := true;
        let scr, t_scr = time (fun () -> Mcr.solve_exact g) in
        Mcr.scc_parallel_threshold := 0;
        let par, t_par = time (fun () -> Mcr.solve_exact g) in
        Mcr.screen_enabled := saved_screen;
        Mcr.scc_parallel_threshold := saved_thresh;
        let identical =
          match (exact, scr, par) with
          | Some a, Some b, Some c ->
            Rat.equal a.Mcr.Exact.ratio b.Mcr.Exact.ratio
            && Rat.equal b.Mcr.Exact.ratio c.Mcr.Exact.ratio
            && b.Mcr.Exact.cycle = c.Mcr.Exact.cycle
          | None, None, None -> true
          | _ -> false
        in
        if not identical then failwith "mcr benchmark: solver paths disagree";
        let speedup_screen = if t_scr > 0.0 then t_exact /. t_scr else 0.0 in
        let speedup_pool = if t_par > 0.0 then t_exact /. t_par else 0.0 in
        pf "%3d sccs x %3d nodes: exact %.3fs, screened %.3fs (%.2fx), +pool %.3fs (%.2fx)@."
          blocks size t_exact t_scr speedup_screen t_par speedup_pool;
        Json.Obj
          [ ("kind", Json.String "graph");
            ("sccs", Json.Int blocks);
            ("nodes", Json.Int (D.num_nodes g));
            ("edges", Json.Int (D.num_edges g));
            ("t_exact_s", Json.Float t_exact);
            ("t_screened_s", Json.Float t_scr);
            ("t_pool_s", Json.Float t_par);
            ("speedup_screen", Json.Float speedup_screen);
            ("speedup_pool", Json.Float speedup_pool);
            ("identical", Json.Bool identical) ])
      [ (4, 60); (8, 90); (16, 120) ]
  in
  (* polynomial algorithm: component fan-out + memo on a replication-heavy
     instance; serial and parallel analyses must render identically *)
  let poly_row =
    let inst =
      Rwt_experiments.Generator.generate (Prng.create 42)
        { Rwt_experiments.Generator.n_stages = 6; p = 24; comp = (5, 15); comm = (5, 15) }
    in
    Rwt_core.Poly_overlap.reset_memo ();
    let a_serial, t_cold = time (fun () -> Rwt_core.Poly_overlap.analyze ~workers:1 inst) in
    let _, t_warm = time (fun () -> Rwt_core.Poly_overlap.analyze ~workers:1 inst) in
    Rwt_core.Poly_overlap.reset_memo ();
    let a_par, t_par = time (fun () -> Rwt_core.Poly_overlap.analyze ~workers:4 inst) in
    let render a = Format.asprintf "%a" Rwt_core.Poly_overlap.pp_analysis a in
    let identical = render a_serial = render a_par in
    if not identical then failwith "mcr benchmark: poly analyses differ across worker counts";
    let memo_speedup = if t_warm > 0.0 then t_cold /. t_warm else 0.0 in
    pf "poly analyze (6 stages, 24 procs): cold %.3fs, memo-warm %.3fs (%.2fx), 4 workers %.3fs@."
      t_cold t_warm memo_speedup t_par;
    Json.Obj
      [ ("kind", Json.String "poly");
        ("t_cold_s", Json.Float t_cold);
        ("t_warm_s", Json.Float t_warm);
        ("t_par_s", Json.Float t_par);
        ("memo_speedup", Json.Float memo_speedup);
        ("identical", Json.Bool identical) ]
  in
  let json =
    Json.Obj
      [ ("schema", Json.String "rwt.bench-mcr/1");
        ("cores", Json.Int cores);
        ("cores_available", Json.Int cores);
        ("workers_used", Json.Int (max (Rwt_pool.resolved_default ()) 4));
        ("rows", Json.List (graph_rows @ [ poly_row ])) ]
  in
  let oc = open_out "BENCH_mcr.json" in
  output_string oc (Json.to_string ~pretty:true json);
  output_char oc '\n';
  close_out oc;
  Printf.eprintf "wrote BENCH_mcr.json\n%!"

(* ------------------------------------------------------------------ *)
(* TPN build: fused direct-to-graph vs legacy materialized net          *)
(* ------------------------------------------------------------------ *)

(* Deterministic instance with a prescribed replication vector: coprime
   entries drive m = lcm(m_i) up while the stage count stays small, which
   is exactly the regime where the TPN route's cost is the build, not the
   solve. Processor speeds and bandwidths cycle through small coprime
   values so firing times are non-trivial rationals. *)
let tpn_instance repl =
  let n = Array.length repl in
  let p = Array.fold_left ( + ) 0 repl in
  let r = Prng.create (Array.fold_left (fun acc mi -> (acc * 31) + mi) 17 repl) in
  let pipeline =
    Pipeline.of_ints
      ~work:(Array.init n (fun _ -> Prng.int_in r 5000 9000))
      ~data:(Array.init (n - 1) (fun _ -> Prng.int_in r 1000 3000))
  in
  (* distinct random per-processor speeds and bandwidths: structured or
     tied values make the float screen miss and Howard cycle, which would
     benchmark the solver's worst case instead of the builders *)
  let platform =
    Platform.star
      ~speeds:(Array.init p (fun _ -> Rat.of_int (Prng.int_in r 300 700)))
      ~link_bw:(Array.init p (fun _ -> Rat.of_int (Prng.int_in r 200 500)))
  in
  let next = ref 0 in
  let assignment =
    Array.map
      (fun mi ->
        Array.init mi (fun _ ->
            let u = !next in
            incr next;
            u))
      repl
  in
  let mapping = Mapping.create_exn ~n_stages:n ~p assignment in
  Instance.create_exn
    ~name:(Printf.sprintf "tpnbench-m%d" (Mapping.num_paths mapping))
    ~pipeline ~platform ~mapping

(* The two routes must produce the same graph edge for edge — same ids,
   endpoints, token counts and weights; anything else is a correctness
   bug, not a benchmark artifact. *)
let assert_graphs_identical gl gf =
  let module D = Rwt_graph.Digraph in
  let module E = Rwt_petri.Mcr.Exact in
  if D.num_nodes gl <> D.num_nodes gf || D.num_edges gl <> D.num_edges gf then
    failwith "tpn benchmark: fused and legacy graphs differ in size";
  for i = 0 to D.num_edges gl - 1 do
    let a = D.edge gl i and b = D.edge gf i in
    if
      a.D.src <> b.D.src || a.D.dst <> b.D.dst
      || a.D.label.E.tokens <> b.D.label.E.tokens
      || not (Rat.equal a.D.label.E.weight b.D.label.E.weight)
    then failwith (Printf.sprintf "tpn benchmark: graphs differ at edge %d" i)
  done

(* End-to-end (build + solve) comparison of [Exact.period_exn]'s two
   routes on growing coprime replication vectors, both models. Also
   measures the retained heap of each route's product — the fused route
   holds only the graph, the legacy route additionally the net with its
   m·(2n−1) name strings and place list. Writes BENCH_tpnbuild.json. *)
let tpn_build_bench () =
  let module Mcr = Rwt_petri.Mcr in
  let module D = Rwt_graph.Digraph in
  section "TPN build — fused direct-to-graph vs legacy net (BENCH_tpnbuild.json)";
  (* best of [reps]: one timing sample per rep, minimum wall time. The
     compaction before each rep keeps one route's garbage from being
     collected on the other route's clock. *)
  let time ~reps f =
    let best = ref infinity and v = ref None in
    for _ = 1 to reps do
      Gc.compact ();
      let t0 = Unix.gettimeofday () in
      let x = f () in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt;
      v := Some x
    done;
    (Option.get !v, !best)
  in
  let live f =
    Gc.compact ();
    let before = (Gc.stat ()).Gc.live_words in
    let v = f () in
    Gc.compact ();
    let after = (Gc.stat ()).Gc.live_words in
    (v, max 0 (after - before))
  in
  let rows =
    List.concat_map
      (fun repl ->
        let inst = tpn_instance repl in
        let m = Mapping.num_paths inst.Instance.mapping in
        let reps = if m <= 200 then 3 else 2 in
        List.map
          (fun model ->
            let (net, gl, wl), t_legacy =
              time ~reps (fun () ->
                  let net = Rwt_core.Tpn_build.build_exn model inst in
                  let g = Mcr.graph_of_tpn net.Rwt_core.Tpn_build.tpn in
                  (net, g, Mcr.solve_exact g))
            in
            let (fg, wf), t_fused =
              time ~reps (fun () ->
                  let fg = Rwt_core.Tpn_graph.build_exn model inst in
                  (fg, Mcr.solve_exact fg.Rwt_core.Tpn_graph.graph))
            in
            (* build-only split, to show where the end-to-end win comes from *)
            let _, tb_legacy =
              time ~reps (fun () ->
                  let net = Rwt_core.Tpn_build.build_exn model inst in
                  Mcr.graph_of_tpn net.Rwt_core.Tpn_build.tpn)
            in
            let _, tb_fused =
              time ~reps (fun () -> Rwt_core.Tpn_graph.build_exn model inst)
            in
            assert_graphs_identical gl fg.Rwt_core.Tpn_graph.graph;
            let period =
              match (wl, wf) with
              | Some a, Some b ->
                if not (Rat.equal a.Mcr.Exact.ratio b.Mcr.Exact.ratio) then
                  failwith "tpn benchmark: fused and legacy periods differ";
                Rat.div_int a.Mcr.Exact.ratio m
              | _ -> failwith "tpn benchmark: net must have a circuit"
            in
            (* retained heap of each route's product, result held alive *)
            let legacy_prod, live_legacy =
              live (fun () ->
                  let net = Rwt_core.Tpn_build.build_exn model inst in
                  (net, Mcr.graph_of_tpn net.Rwt_core.Tpn_build.tpn))
            in
            let fused_prod, live_fused =
              live (fun () -> Rwt_core.Tpn_graph.build_exn model inst)
            in
            ignore (Sys.opaque_identity legacy_prod);
            ignore (Sys.opaque_identity fused_prod);
            ignore (Sys.opaque_identity net);
            let speedup = if t_fused > 0.0 then t_legacy /. t_fused else 0.0 in
            let live_ratio =
              if live_fused > 0 then float_of_int live_legacy /. float_of_int live_fused
              else 0.0
            in
            pf
              "%-7s m=%5d (%6d arcs): legacy %.4fs (build %.4fs), fused %.4fs (build %.4fs) -> %.2fx; live %d -> %d words (%.2fx)@."
              (Comm_model.to_string model) m
              (D.num_edges fg.Rwt_core.Tpn_graph.graph)
              t_legacy tb_legacy t_fused tb_fused speedup live_legacy live_fused
              live_ratio;
            Json.Obj
              [ ("model", Json.String (Comm_model.to_string model));
                ("repl",
                 Json.List (List.map (fun r -> Json.Int r) (Array.to_list repl)));
                ("m", Json.Int m);
                ("transitions", Json.Int (D.num_nodes fg.Rwt_core.Tpn_graph.graph));
                ("arcs", Json.Int (D.num_edges fg.Rwt_core.Tpn_graph.graph));
                ("period", Json.String (Rat.to_string period));
                ("t_legacy_s", Json.Float t_legacy);
                ("t_fused_s", Json.Float t_fused);
                ("t_build_legacy_s", Json.Float tb_legacy);
                ("t_build_fused_s", Json.Float tb_fused);
                ("speedup", Json.Float speedup);
                ("build_speedup",
                 Json.Float (if tb_fused > 0.0 then tb_legacy /. tb_fused else 0.0));
                ("live_legacy_words", Json.Int live_legacy);
                ("live_fused_words", Json.Int live_fused);
                ("live_ratio", Json.Float live_ratio);
                ("identical", Json.Bool true) ])
          Comm_model.all)
      (* small coprime vectors exercise the solver-bound regime (one giant
         SCC); the large aligned vectors are the builder-bound regime the
         fusion targets — m grows while every row stays its own small SCC *)
      [ [| 2; 3 |];
        [| 3; 4; 5 |];
        [| 4; 5; 7 |];
        [| 504; 504; 504 |];
        [| 2520; 2520; 2520 |] ]
  in
  let json =
    Json.Obj
      [ ("schema", Json.String "rwt.bench-tpnbuild/1");
        ("cores", Json.Int (Domain.recommended_domain_count ()));
        ("cores_available", Json.Int (Domain.recommended_domain_count ()));
        ("workers_used", Json.Int 1);
        ("rows", Json.List rows) ]
  in
  let oc = open_out "BENCH_tpnbuild.json" in
  output_string oc (Json.to_string ~pretty:true json);
  output_char oc '\n';
  close_out oc;
  Printf.eprintf "wrote BENCH_tpnbuild.json\n%!"

(* ------------------------------------------------------------------ *)
(* Delta layer: k-neighbour sweep, patched vs cold                      *)
(* ------------------------------------------------------------------ *)

(* One step of a sweep chain: multiply a single parameter — a processor
   speed, a link bandwidth, a stage's work or a file's data volume — by a
   rational factor ≠ 1, cycling through the four families. The mapping is
   untouched, so every chained instance is shape-compatible with its
   predecessor and the delta session must take the patch path on all k
   steps. *)
let perturb_instance r step inst =
  let pf = inst.Instance.platform in
  let p = Platform.p pf in
  let pipeline = inst.Instance.pipeline in
  let n = Pipeline.n_stages pipeline in
  let factors =
    [| Rat.of_ints 5 4; Rat.of_ints 3 4; Rat.of_ints 7 4; Rat.of_ints 9 4;
       Rat.of_ints 3 2 |]
  in
  let f = factors.(step mod Array.length factors) in
  let speeds = Array.init p (Platform.speed pf) in
  let bandwidths = Array.init p (fun u -> Array.init p (Platform.bandwidth pf u)) in
  let work = Array.init n (Pipeline.work pipeline) in
  let data = Array.init (n - 1) (Pipeline.data pipeline) in
  (match step mod 4 with
   | 0 ->
     let u = Prng.int r p in
     speeds.(u) <- Rat.mul speeds.(u) f
   | 1 ->
     let u = Prng.int r p in
     let v = (u + 1 + Prng.int r (p - 1)) mod p in
     bandwidths.(u).(v) <- Rat.mul bandwidths.(u).(v) f
   | 2 ->
     let s = Prng.int r n in
     work.(s) <- Rat.mul work.(s) f
   | _ ->
     let fl = Prng.int r (n - 1) in
     data.(fl) <- Rat.mul data.(fl) f);
  Instance.create_exn ~name:inst.Instance.name
    ~pipeline:(Pipeline.create ~work ~data)
    ~platform:(Platform.create ~speeds ~bandwidths)
    ~mapping:inst.Instance.mapping

(* A (k+1)-instance chain per workload, solved twice: once cold (the
   production single-instance path, full rebuild + solve per instance) and
   once through a single delta session (in-place weight patches +
   warm-started re-solves). Periods must be Rat-identical pairwise — the
   whole point of the layer is that the fast path is not an approximation.
   The coprime row is solver-bound (one giant SCC), the aligned row is
   builder-bound (m large, every row its own small SCC) — the regime where
   skipping the rebuild pays most. Writes BENCH_incremental.json. *)
let incremental_bench () =
  section "Delta layer — k-neighbour sweep, patched vs cold (BENCH_incremental.json)";
  let time f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let k = 48 in
  let rows =
    List.map
      (fun (label, repl) ->
        let base = tpn_instance repl in
        let r = Prng.create 77 in
        let chain = Array.make (k + 1) base in
        for i = 1 to k do
          chain.(i) <- perturb_instance r (i - 1) chain.(i - 1)
        done;
        let cold, t_cold =
          time (fun () ->
              Array.map
                (fun inst ->
                  (Rwt_core.Exact.period_exn Comm_model.Strict inst)
                    .Rwt_core.Exact.period)
                chain)
        in
        let session = Rwt_core.Delta.create Comm_model.Strict in
        let delta, t_delta =
          time (fun () -> Array.map (Rwt_core.Delta.period_exn session) chain)
        in
        let identical = Array.for_all2 Rat.equal cold delta in
        if not identical then
          failwith "incremental benchmark: delta and cold periods differ";
        let st = Rwt_core.Delta.stats session in
        if st.Rwt_core.Delta.patch_hits <> k then
          failwith "incremental benchmark: a chained instance missed the patch path";
        let speedup = if t_delta > 0.0 then t_cold /. t_delta else 0.0 in
        pf
          "%-8s m=%4d: %d-step chain cold %.3fs, delta %.3fs -> %.2fx (%d patches, %d fallbacks, %d rounds saved)@."
          label
          (Mapping.num_paths base.Instance.mapping)
          k t_cold t_delta speedup st.Rwt_core.Delta.patch_hits
          st.Rwt_core.Delta.cold_fallbacks st.Rwt_core.Delta.rounds_saved;
        Json.Obj
          [ ("workload", Json.String label);
            ("model", Json.String "strict");
            ("repl", Json.List (List.map (fun x -> Json.Int x) (Array.to_list repl)));
            ("m", Json.Int (Mapping.num_paths base.Instance.mapping));
            ("k", Json.Int k);
            ("t_cold_s", Json.Float t_cold);
            ("t_delta_s", Json.Float t_delta);
            ("speedup", Json.Float speedup);
            ("patch_hits", Json.Int st.Rwt_core.Delta.patch_hits);
            ("cold_fallbacks", Json.Int st.Rwt_core.Delta.cold_fallbacks);
            ("warmstart_rounds_saved", Json.Int st.Rwt_core.Delta.rounds_saved);
            ("identical", Json.Bool identical) ])
      [ ("coprime", [| 4; 5; 7 |]); ("aligned", [| 504; 504; 504 |]) ]
  in
  let json =
    Json.Obj
      [ ("schema", Json.String "rwt.bench-incremental/1");
        ("cores", Json.Int (Domain.recommended_domain_count ()));
        ("cores_available", Json.Int (Domain.recommended_domain_count ()));
        ("workers_used", Json.Int 1);
        ("rows", Json.List rows) ]
  in
  let oc = open_out "BENCH_incremental.json" in
  output_string oc (Json.to_string ~pretty:true json);
  output_char oc '\n';
  close_out oc;
  Printf.eprintf "wrote BENCH_incremental.json\n%!"

(* ------------------------------------------------------------------ *)
(* Serve daemon: protocol overhead, memo throughput, chaos resume      *)
(* ------------------------------------------------------------------ *)

(* Three legs against an in-process daemon on a Unix-domain socket:
   pipelined echo requests (the pure protocol floor — parse, dispatch,
   order, write), memo-hot analyses (protocol + cache lookup; all but
   the first request hit the canonical-instance memo), and memo-cold
   analyses (each request carries a distinct deadline_ms so its
   canonical key is unique and the solver really runs). A fourth leg —
   when the CLI binary was built alongside — kills a journaled child
   daemon mid-batch with an injected abort, restarts it on the same
   journal, and times the resend-to-identical-responses recovery.
   Writes BENCH_serve.json. *)
let serve_bench () =
  section "Serve — daemon req/s vs no-op echo floor + chaos kill-and-resume (BENCH_serve.json)";
  let time f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let tmp =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "rwt-bench-serve-%d" (Unix.getpid ()))
  in
  Unix.mkdir tmp 0o700;
  let sock = Filename.concat tmp "b.sock" in
  let ready = Atomic.make None in
  let cfg =
    { Rwt_serve.default_config with
      Rwt_serve.socket = Some sock; workers = 1; queue = 1_000_000 }
  in
  let dom =
    Domain.spawn (fun () ->
        Rwt_serve.run ~on_ready:(fun r -> Atomic.set ready (Some r)) cfg)
  in
  let rec await n =
    match Atomic.get ready with
    | Some _ -> ()
    | None when n = 0 -> failwith "serve benchmark: daemon never became ready"
    | None -> Unix.sleepf 0.005; await (n - 1)
  in
  await 2000;
  let addr = Rwt_serve.Client.Unix_sock sock in
  let send lines =
    match Rwt_serve.Client.request_lines addr lines with
    | Ok rs -> rs
    | Error (e, _) -> failwith ("serve benchmark: " ^ Rwt_err.to_line e)
  in
  let leg label n reqs =
    let responses, wall = time (fun () -> send reqs) in
    List.iter
      (fun r ->
        match Json.of_string r with
        | Ok (Json.Obj fields)
          when List.assoc_opt "status" fields = Some (Json.String "ok") -> ()
        | _ -> failwith ("serve benchmark: non-ok response: " ^ r))
      responses;
    let rps = if wall > 0.0 then float_of_int n /. wall else 0.0 in
    pf "%-14s %5d pipelined requests in %.3fs -> %9.0f req/s (%.1f us/req)@."
      label n wall rps (1e6 *. wall /. float_of_int n);
    Json.Obj
      [ ("leg", Json.String label);
        ("n", Json.Int n);
        ("wall_s", Json.Float wall);
        ("rps", Json.Float rps) ]
  in
  let n = 2000 in
  let echo =
    leg "echo" n
      (List.init n (fun i -> Printf.sprintf {|{"req":"echo","id":"%d"}|} i))
  in
  ignore (send [ {|{"example":"a"}|} ]);
  let hot =
    leg "analyze-hot" n
      (List.init n (fun i -> Printf.sprintf {|{"example":"a","id":"%d"}|} i))
  in
  let n_cold = 200 in
  let cold =
    leg "analyze-cold" n_cold
      (List.init n_cold (fun i ->
           Printf.sprintf {|{"example":"a","deadline_ms":%d,"id":"%d"}|}
             (1_000_000 + i) i))
  in
  (match Atomic.get ready with
   | Some r -> Rwt_serve.stop r.Rwt_serve.control
   | None -> ());
  let stats =
    match Domain.join dom with
    | Ok s -> s
    | Error e -> failwith ("serve benchmark: " ^ Rwt_err.to_line e)
  in
  pf "daemon drained: %a@." Rwt_serve.pp_stats stats;
  (* chaos leg: only meaningful through the real binary (the injected
     abort exits the whole process, so it must be a child) *)
  let rwt =
    Filename.concat
      (Filename.dirname Sys.executable_name)
      (Filename.concat Filename.parent_dir_name
         (Filename.concat "bin" "rwt.exe"))
  in
  let chaos =
    if not (Sys.file_exists rwt) then begin
      pf "chaos leg skipped: %s not built@." rwt;
      Json.Obj [ ("available", Json.Bool false) ]
    end
    else begin
      let csock = Filename.concat tmp "c.sock" in
      let journal = Filename.concat tmp "c.journal" in
      let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
      let spawn extra =
        Unix.create_process rwt
          (Array.of_list
             ([ rwt; "serve"; "--socket"; csock; "--workers"; "1";
                "--journal"; journal ]
             @ extra))
          Unix.stdin devnull devnull
      in
      let total = 12 in
      let reqs =
        List.init total (fun i ->
            Printf.sprintf {|{"example":"b","deadline_ms":%d,"id":"%d"}|}
              (1_000_000 + i) i)
      in
      let caddr = Rwt_serve.Client.Unix_sock csock in
      (* armed to die on its 7th request span: a simulated kill -9 *)
      let pid1 = spawn [ "--fault"; "serve.request=abort@#7" ] in
      let rec await_sock n =
        let up =
          match Unix.stat csock with
          | { Unix.st_kind = Unix.S_SOCK; _ } -> true
          | _ -> false
          | exception Unix.Unix_error _ -> false
        in
        if not up then
          if n = 0 then failwith "serve benchmark: chaos daemon never bound"
          else (Unix.sleepf 0.025; await_sock (n - 1))
      in
      await_sock 400;
      let partial =
        match Rwt_serve.Client.request_lines caddr reqs with
        | Ok _ -> failwith "serve benchmark: chaos daemon survived its abort"
        | Error (_, partial) -> partial
      in
      let _, status1 = Unix.waitpid [] pid1 in
      let daemon_exit =
        match status1 with Unix.WEXITED c -> c | _ -> -1
      in
      (* restart on the same journal; the client retries through the
         startup window and the journaled prefix must replay bytewise *)
      let pid2 = spawn [] in
      let resumed, resume_wall =
        time (fun () ->
            match
              Rwt_serve.Client.request_lines ~retries:40 ~backoff_ms:25.0
                ~seed:11 caddr reqs
            with
            | Ok rs -> rs
            | Error (e, _) ->
              failwith ("serve benchmark: resume: " ^ Rwt_err.to_line e))
      in
      let identical =
        List.for_all2 ( = ) partial
          (List.filteri (fun i _ -> i < List.length partial) resumed)
      in
      Unix.kill pid2 Sys.sigterm;
      ignore (Unix.waitpid [] pid2);
      Unix.close devnull;
      if not identical then
        failwith "serve benchmark: resumed responses diverged from the pre-kill prefix";
      pf
        "chaos: killed (exit %d) after %d/%d responses; restart + resend answered all %d in %.3fs, prefix byte-identical@."
        daemon_exit (List.length partial) total total resume_wall;
      Json.Obj
        [ ("available", Json.Bool true);
          ("total", Json.Int total);
          ("answered_before_kill", Json.Int (List.length partial));
          ("daemon_exit", Json.Int daemon_exit);
          ("resume_wall_s", Json.Float resume_wall);
          ("prefix_identical", Json.Bool identical) ]
    end
  in
  let json =
    Json.Obj
      [ ("schema", Json.String "rwt.bench-serve/1");
        ("cores", Json.Int (Domain.recommended_domain_count ()));
        ("cores_available", Json.Int (Domain.recommended_domain_count ()));
        ("workers_used", Json.Int 1);
        ("workers", Json.Int 1);
        ("legs", Json.List [ echo; hot; cold ]);
        ("cache_hits", Json.Int stats.Rwt_serve.cache_hits);
        ("chaos", chaos) ]
  in
  let oc = open_out "BENCH_serve.json" in
  output_string oc (Json.to_string ~pretty:true json);
  output_char oc '\n';
  close_out oc;
  Printf.eprintf "wrote BENCH_serve.json\n%!"

(* ------------------------------------------------------------------ *)
(* Multi-criteria search: branch-and-bound vs brute force, heuristic   *)
(* throughput                                                          *)
(* ------------------------------------------------------------------ *)

(* Two legs. The first runs the exact tier against the unpruned brute
   force on a small failure-prone platform and fails hard if the Pareto
   fronts differ — the pruning ratio (scored candidates saved) is the
   headline number. The second drives the heuristic tier until at least
   10k candidates have been scored in a single run and reports the
   scoring throughput. Writes BENCH_search.json. *)
let search_bench () =
  section
    "Search — b&b vs brute force + heuristic candidate throughput (BENCH_search.json)";
  let time f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let ok = function
    | Ok v -> v
    | Error e -> failwith ("search benchmark: " ^ Rwt_err.to_line e)
  in
  let member_key m =
    ( m.Rwt_core.Search.assignment,
      Rat.to_string m.Rwt_core.Search.objectives.Rwt_core.Search.period,
      Rat.to_string m.Rwt_core.Search.objectives.Rwt_core.Search.latency,
      Rat.to_string m.Rwt_core.Search.objectives.Rwt_core.Search.reliability )
  in
  (* Leg 1: exact tier on 3 stages / 6 failure-prone processors
     (space = 2100 assignments), certified against brute force. *)
  let pipeline = Pipeline.of_ints ~work:[| 6; 14; 4 |] ~data:[| 3; 2 |] in
  let platform =
    Platform.with_failures
      (Platform.create
         ~speeds:(Array.map Rat.of_int [| 2; 1; 1; 4; 3; 1 |])
         ~bandwidths:(Array.make_matrix 6 6 Rat.one))
      (Array.map
         (fun (a, b) -> Rat.of_ints a b)
         [| (1, 10); (1, 5); (1, 4); (1, 2); (1, 8); (1, 20) |])
  in
  let bnb, t_bnb =
    time (fun () ->
        ok
          (Rwt_core.Search.search ~tier:`Exact Comm_model.Overlap pipeline
             platform))
  in
  let brute, t_brute =
    time (fun () ->
        ok (Rwt_core.Search.brute_force Comm_model.Overlap pipeline platform))
  in
  if
    List.map member_key bnb.Rwt_core.Search.front
    <> List.map member_key brute.Rwt_core.Search.front
  then failwith "search benchmark: branch-and-bound front differs from brute force";
  if not (bnb.Rwt_core.Search.complete && brute.Rwt_core.Search.complete) then
    failwith "search benchmark: exact leg did not run to completion";
  let scored_saved =
    brute.Rwt_core.Search.candidates - bnb.Rwt_core.Search.candidates
  in
  let pruning_ratio =
    if brute.Rwt_core.Search.candidates > 0 then
      float_of_int scored_saved /. float_of_int brute.Rwt_core.Search.candidates
    else 0.0
  in
  pf
    "exact:     space %.0f, brute scored %d, b&b scored %d (%d subtrees cut, %.0f%% fewer scores), front %d, %.3fs vs %.3fs@."
    bnb.Rwt_core.Search.space brute.Rwt_core.Search.candidates
    bnb.Rwt_core.Search.candidates bnb.Rwt_core.Search.pruned
    (100.0 *. pruning_ratio)
    (List.length bnb.Rwt_core.Search.front)
    t_bnb t_brute;
  let exact_row =
    Json.Obj
      [ ("leg", Json.String "exact-bnb-vs-brute");
        ("model", Json.String "overlap");
        ("n_stages", Json.Int 3);
        ("p", Json.Int 6);
        ("space", Json.Float bnb.Rwt_core.Search.space);
        ("brute_candidates", Json.Int brute.Rwt_core.Search.candidates);
        ("brute_skipped", Json.Int brute.Rwt_core.Search.skipped);
        ("bnb_candidates", Json.Int bnb.Rwt_core.Search.candidates);
        ("bnb_pruned_subtrees", Json.Int bnb.Rwt_core.Search.pruned);
        ("pruning_ratio", Json.Float pruning_ratio);
        ("front_size", Json.Int (List.length bnb.Rwt_core.Search.front));
        ("t_bnb_s", Json.Float t_bnb);
        ("t_brute_s", Json.Float t_brute);
        ("fronts_identical", Json.Bool true) ]
  in
  (* Leg 2: heuristic tier, >= 10k scored candidates in one run. *)
  let r = Prng.create 11 in
  let big =
    Rwt_experiments.Generator.generate r
      { Rwt_experiments.Generator.n_stages = 5; p = 14; comp = (5, 15); comm = (5, 15) }
  in
  let big_platform =
    Platform.with_failures big.Instance.platform
      (Array.init 14 (fun i -> Rat.of_ints (1 + (i mod 5)) 20))
  in
  let heur, t_heur =
    time (fun () ->
        ok
          (Rwt_core.Search.search ~tier:`Heuristic ~sweeps:48 ~iterations:700
             ~m_cap:12 Comm_model.Overlap big.Instance.pipeline big_platform))
  in
  if heur.Rwt_core.Search.candidates < 10_000 then
    failwith
      (Printf.sprintf
         "search benchmark: heuristic leg scored only %d candidates (need >= 10000)"
         heur.Rwt_core.Search.candidates);
  let per_s =
    if t_heur > 0.0 then float_of_int heur.Rwt_core.Search.candidates /. t_heur
    else 0.0
  in
  pf "heuristic: %d candidates scored in %.3fs (%.0f/s), front %d, %d skipped@."
    heur.Rwt_core.Search.candidates t_heur per_s
    (List.length heur.Rwt_core.Search.front)
    heur.Rwt_core.Search.skipped;
  let heuristic_row =
    Json.Obj
      [ ("leg", Json.String "heuristic-throughput");
        ("model", Json.String "overlap");
        ("n_stages", Json.Int 5);
        ("p", Json.Int 14);
        ("sweeps", Json.Int 48);
        ("iterations", Json.Int 700);
        ("m_cap", Json.Int 12);
        ("candidates", Json.Int heur.Rwt_core.Search.candidates);
        ("skipped", Json.Int heur.Rwt_core.Search.skipped);
        ("candidates_per_s", Json.Float per_s);
        ("front_size", Json.Int (List.length heur.Rwt_core.Search.front));
        ("t_s", Json.Float t_heur) ]
  in
  let json =
    Json.Obj
      [ ("schema", Json.String "rwt.bench-search/1");
        ("cores", Json.Int (Domain.recommended_domain_count ()));
        ("cores_available", Json.Int (Domain.recommended_domain_count ()));
        ("workers_used", Json.Int 1);
        ("rows", Json.List [ exact_row; heuristic_row ]) ]
  in
  let oc = open_out "BENCH_search.json" in
  output_string oc (Json.to_string ~pretty:true json);
  output_char oc '\n';
  close_out oc;
  Printf.eprintf "wrote BENCH_search.json\n%!"

(* ------------------------------------------------------------------ *)
(* Scaling: generated workload corpus vs worker count                  *)
(* ------------------------------------------------------------------ *)

(* Wall time and req/s vs worker count (1, 2, 4, … up to the hardware;
   2 always included, so a single-core host still exercises multiplexed
   domains) over the generated corpus (lib/experiments/corpus.ml), for
   the four parallel layers: [Rwt_pool.map] over corpus solves, per-SCC
   [Mcr.solve_screened], [Rwt_batch] and the serve daemon. Per-leg
   busy/idle/steal histograms come from [Rwt_obs]; metrics are reset
   between legs, which is why `make scale-bench` runs this target alone.
   Every period is checked against the committed corpus snapshot
   (bench/snapshots/) and asserted identical across worker counts,
   chunk sizes and kernels — a scheduler change that alters one digit of
   one answer fails the bench. The chunk leg measures per-task vs
   chunked submission on the same 2-worker pool; on a single-core host
   the auto-policy degradation to one worker is asserted, too. Writes
   BENCH_scale.json; tier and workers via RWT_SCALE_TIER / RWT_WORKERS. *)
let scale_bench () =
  let module C = Rwt_experiments.Corpus in
  let module Mcr = Rwt_petri.Mcr in
  section "Scaling — generated corpus, schedulers vs worker count (BENCH_scale.json)";
  let tier =
    match Sys.getenv_opt "RWT_SCALE_TIER" with
    | None -> C.Standard
    | Some s ->
      (match C.tier_of_string s with
       | Some t -> t
       | None -> failwith (Printf.sprintf "scale benchmark: unknown tier %S" s))
  in
  let cores = Domain.recommended_domain_count () in
  let auto_workers = Rwt_pool.resolved_default () in
  let time f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  (* best-of-k wall time: every leg's value is deterministic, only the
     timing varies, so the minimum is the honest estimate *)
  let best k f =
    let v, t0 = time f in
    let t = ref t0 in
    for _ = 2 to k do
      let _, ti = time f in
      if ti < !t then t := ti
    done;
    (v, !t)
  in
  let entries = C.build tier in
  let n = Array.length entries in
  pf "corpus: tier %s, %d instances, %d families; cores %d, auto workers %d@."
    (C.tier_name tier) n (List.length C.all_families) cores auto_workers;
  let worker_counts =
    let rec pows acc w =
      if w >= cores then List.rev (cores :: acc) else pows (w :: acc) (2 * w)
    in
    List.sort_uniq compare (1 :: 2 :: (if cores <= 1 then [] else pows [] 1))
  in
  let hist name =
    match Rwt_obs.histogram_summary name with
    | None -> Json.Null
    | Some h ->
      Json.Obj
        [ ("count", Json.Int h.Rwt_obs.count);
          ("sum_s", Json.Float h.Rwt_obs.sum);
          ("mean_s", Json.Float h.Rwt_obs.mean);
          ("p50_s", Json.Float h.Rwt_obs.p50);
          ("p90_s", Json.Float h.Rwt_obs.p90);
          ("p99_s", Json.Float h.Rwt_obs.p99) ]
  in
  let pool_obs () =
    Json.Obj
      [ ("busy", hist "pool.worker_busy_s");
        ("idle", hist "pool.worker_idle_s");
        ("steal_latency", hist "pool.steal_latency_s");
        ("steals", Json.Int (Rwt_obs.counter_value "pool.steals"));
        ("chunks", Json.Int (Rwt_obs.counter_value "pool.chunks")) ]
  in
  (* --- leg 1: Rwt_pool.map over the corpus, per worker count -------- *)
  let baseline = ref "" in
  let pool_leg ~kernel w =
    Rwt_obs.reset ();
    let rows, t = best 2 (fun () -> C.run ~workers:w ~kernel entries) in
    let nd = C.to_ndjson rows in
    if !baseline = "" then baseline := nd;
    let identical = String.equal nd !baseline in
    if not identical then
      failwith
        (Printf.sprintf "scale benchmark: %s kernel at %d workers changed the periods"
           (C.kernel_name kernel) w);
    let rps = if t > 0.0 then float_of_int n /. t else 0.0 in
    pf "pool-map  %-8s w=%d: %.3fs  %7.1f inst/s@." (C.kernel_name kernel) w t rps;
    ( rows,
      Json.Obj
        [ ("leg", Json.String "pool-map");
          ("kernel", Json.String (C.kernel_name kernel));
          ("workers", Json.Int w);
          ("wall_s", Json.Float t);
          ("req_s", Json.Float rps);
          ("periods_identical", Json.Bool identical);
          ("pool", pool_obs ()) ] )
  in
  let screened = List.map (fun w -> pool_leg ~kernel:C.Screened w) worker_counts in
  (* the exact kernel must produce byte-identical NDJSON (the screen is
     certified); 1 and 2 workers keep the slow kernel's share bounded *)
  let exact = List.map (fun w -> snd (pool_leg ~kernel:C.Exact_howard w)) [ 1; 2 ] in
  let pool_rows = List.map snd screened @ exact in
  let rows1 = fst (List.hd screened) in
  (* --- snapshot: pin every exact period ----------------------------- *)
  let snap_path =
    Printf.sprintf "bench/snapshots/corpus_%s.ndjson" (C.tier_name tier)
  in
  let snapshot_status =
    match C.check_snapshot ~path:snap_path rows1 with
    | Ok () ->
      pf "snapshot %s: %d periods identical@." snap_path n;
      "checked"
    | Error msg when not (Sys.file_exists snap_path) ->
      ignore msg;
      C.write_snapshot ~path:snap_path rows1;
      pf "snapshot %s: written (first run)@." snap_path;
      "written"
    | Error msg -> failwith ("scale benchmark: " ^ msg)
  in
  (* --- leg 2: chunked vs per-task submission on the same pool ------- *)
  (* many tiny tasks make scheduling overhead the workload: chunk=1 is
     the seed scheduler's per-task deque traffic, chunk auto amortizes
     it. Obs is disabled for this leg so per-task spans don't flatten
     the contrast. *)
  let chunk_row =
    let n_tasks = 100_000 in
    let sink = Array.make n_tasks 0 in
    let task i = sink.(i) <- (i * i) land 0xffff in
    Rwt_obs.disable ();
    let (), t_chunk1 =
      best 3 (fun () -> Rwt_pool.run ~workers:2 ~chunk:1 ~n:n_tasks task)
    in
    let (), t_auto = best 3 (fun () -> Rwt_pool.run ~workers:2 ~n:n_tasks task) in
    Rwt_obs.enable ();
    let speedup = if t_auto > 0.0 then t_chunk1 /. t_auto else 0.0 in
    pf "chunking  w=2, %d micro-tasks: per-task %.4fs, chunked %.4fs -> %.2fx@."
      n_tasks t_chunk1 t_auto speedup;
    if speedup < 1.0 then
      failwith "scale benchmark: chunked submission slower than per-task";
    Json.Obj
      [ ("leg", Json.String "chunking");
        ("workers", Json.Int 2);
        ("n_tasks", Json.Int n_tasks);
        ("t_per_task_s", Json.Float t_chunk1);
        ("t_chunked_s", Json.Float t_auto);
        ("speedup_chunked", Json.Float speedup);
        ("asserted_ge_1", Json.Bool true) ]
  in
  (* --- leg 3: per-SCC Mcr.solve_screened ---------------------------- *)
  let scc_rows =
    let r = Prng.create 2026 in
    let g = mcr_graph r ~blocks:16 ~size:90 in
    let saved_thresh = !Mcr.scc_parallel_threshold in
    let saved_workers = !Rwt_pool.default_workers in
    Mcr.scc_parallel_threshold := 0;
    let base = ref None in
    let rows =
      List.map
        (fun w ->
          Rwt_obs.reset ();
          Rwt_pool.default_workers := w;
          let wit, t = best 2 (fun () -> Mcr.solve_screened g) in
          let ratio =
            match wit with
            | Some x -> x.Mcr.Exact.ratio
            | None -> failwith "scale benchmark: scc graph had no cycle"
          in
          (match !base with
           | None -> base := Some ratio
           | Some b ->
             if not (Rat.equal b ratio) then
               failwith "scale benchmark: scc ratio changed with worker count");
          pf "scc       w=%d: %.3fs (16 sccs x 90 nodes)@." w t;
          Json.Obj
            [ ("leg", Json.String "scc");
              ("workers", Json.Int w);
              ("wall_s", Json.Float t);
              ("pool", pool_obs ()) ])
        worker_counts
    in
    Mcr.scc_parallel_threshold := saved_thresh;
    Rwt_pool.default_workers := saved_workers;
    rows
  in
  (* --- leg 4: rwt batch over corpus jobs ---------------------------- *)
  let batch_rows =
    let k = min n 100 in
    let jobs =
      List.init k (fun i ->
          let e = entries.(i) in
          Rwt_batch.job ~index:i ~model:e.C.model ~method_:Rwt_core.Analysis.Tpn
            (Rwt_batch.Inline e.C.instance))
    in
    let render outcomes =
      String.concat "\n"
        (Array.to_list
           (Array.map
              (fun o -> Json.to_string (Rwt_batch.outcome_to_json ~timing:false o))
              outcomes))
    in
    let base = ref "" in
    List.map
      (fun w ->
        Rwt_obs.reset ();
        let (outcomes, summary), t = best 2 (fun () -> Rwt_batch.run ~jobs:w jobs) in
        let rendered = render outcomes in
        if !base = "" then base := rendered;
        if not (String.equal rendered !base) then
          failwith "scale benchmark: batch outcomes changed with worker count";
        let rps = if t > 0.0 then float_of_int k /. t else 0.0 in
        pf "batch     w=%d (effective %d): %d jobs in %.3fs  %7.1f jobs/s@." w
          summary.Rwt_batch.workers k t rps;
        Json.Obj
          [ ("leg", Json.String "batch");
            ("workers", Json.Int w);
            ("workers_effective", Json.Int summary.Rwt_batch.workers);
            ("jobs", Json.Int k);
            ("wall_s", Json.Float t);
            ("req_s", Json.Float rps);
            ("pool", pool_obs ()) ])
      worker_counts
  in
  (* --- leg 5: serve daemon, workers 1 and 2 ------------------------- *)
  let serve_rows =
    let tmp =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "rwt-bench-scale-%d" (Unix.getpid ()))
    in
    Unix.mkdir tmp 0o700;
    let one w =
      Rwt_obs.reset ();
      let sock = Filename.concat tmp (Printf.sprintf "s%d.sock" w) in
      let ready = Atomic.make None in
      let cfg =
        { Rwt_serve.default_config with
          Rwt_serve.socket = Some sock; workers = w; queue = 1_000_000 }
      in
      let dom =
        Domain.spawn (fun () ->
            Rwt_serve.run ~on_ready:(fun r -> Atomic.set ready (Some r)) cfg)
      in
      let rec await k =
        match Atomic.get ready with
        | Some _ -> ()
        | None when k = 0 -> failwith "scale benchmark: daemon never became ready"
        | None ->
          Unix.sleepf 0.005;
          await (k - 1)
      in
      await 2000;
      let addr = Rwt_serve.Client.Unix_sock sock in
      let send lines =
        match Rwt_serve.Client.request_lines addr lines with
        | Ok rs -> rs
        | Error (e, _) -> failwith ("scale benchmark: " ^ Rwt_err.to_line e)
      in
      ignore (send [ {|{"example":"a"}|} ]);
      let n_req = 1500 in
      let reqs =
        List.init n_req (fun i -> Printf.sprintf {|{"example":"a","id":"%d"}|} i)
      in
      let responses, t = time (fun () -> send reqs) in
      List.iter
        (fun r ->
          match Json.of_string r with
          | Ok (Json.Obj fields)
            when List.assoc_opt "status" fields = Some (Json.String "ok") -> ()
          | _ -> failwith ("scale benchmark: non-ok response: " ^ r))
        responses;
      (match Atomic.get ready with
       | Some r -> Rwt_serve.stop r.Rwt_serve.control
       | None -> ());
      (match Domain.join dom with
       | Ok _ -> ()
       | Error e -> failwith ("scale benchmark: " ^ Rwt_err.to_line e));
      let rps = if t > 0.0 then float_of_int n_req /. t else 0.0 in
      pf "serve     w=%d: %d memo-hot requests in %.3fs  %9.0f req/s@." w n_req t rps;
      Json.Obj
        [ ("leg", Json.String "serve");
          ("workers", Json.Int w);
          ("n", Json.Int n_req);
          ("wall_s", Json.Float t);
          ("req_s", Json.Float rps) ]
    in
    let r1 = one 1 in
    let r2 = one 2 in
    [ r1; r2 ]
  in
  (* --- degradation: auto policies must collapse on a starved host --- *)
  let degradation =
    let batch_auto =
      let jobs =
        List.init 2 (fun i ->
            let e = entries.(i) in
            Rwt_batch.job ~index:i ~model:e.C.model ~method_:Rwt_core.Analysis.Tpn
              (Rwt_batch.Inline e.C.instance))
      in
      let _, summary = Rwt_batch.run jobs in
      summary.Rwt_batch.workers
    in
    let asserted = cores <= 1 && Rwt_pool.env_workers () = None in
    if asserted then begin
      if auto_workers <> 1 then
        failwith "scale benchmark: pool auto workers should degrade to 1 on one core";
      if batch_auto <> 1 then
        failwith "scale benchmark: batch auto policy should degrade to 1 worker"
    end;
    pf "degradation: pool auto %d, batch auto %d (asserted on this host: %b)@."
      auto_workers batch_auto asserted;
    Json.Obj
      [ ("pool_auto_workers", Json.Int auto_workers);
        ("batch_auto_workers", Json.Int batch_auto);
        ("asserted", Json.Bool asserted) ]
  in
  (* re-open the driver's span dropped by the per-leg resets, so the
     enclosing span_end stays balanced *)
  Rwt_obs.span_begin "bench.scale";
  let top = List.fold_left max 1 worker_counts in
  let json =
    Json.Obj
      [ ("schema", Json.String "rwt.bench-scale/1");
        ("cores", Json.Int cores);
        ("cores_available", Json.Int cores);
        ("workers_used", Json.Int top);
        ("tier", Json.String (C.tier_name tier));
        ("instances", Json.Int n);
        ("families",
         Json.List
           (List.map (fun f -> Json.String (C.family_name f)) C.all_families));
        ("worker_counts", Json.List (List.map (fun w -> Json.Int w) worker_counts));
        ("snapshot", Json.String snap_path);
        ("snapshot_status", Json.String snapshot_status);
        ("periods_identical_across_workers", Json.Bool true);
        ("pool_map", Json.List pool_rows);
        ("chunking", chunk_row);
        ("scc", Json.List scc_rows);
        ("batch", Json.List batch_rows);
        ("serve", Json.List serve_rows);
        ("degradation", degradation) ]
  in
  let oc = open_out "BENCH_scale.json" in
  output_string oc (Json.to_string ~pretty:true json);
  output_char oc '\n';
  close_out oc;
  Printf.eprintf "wrote BENCH_scale.json\n%!"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the kernels                            *)
(* ------------------------------------------------------------------ *)

let bechamel () =
  section "Bechamel micro-benchmarks (one per reproduced table/figure kernel)";
  let open Bechamel in
  let a = Instances.example_a () in
  let b = Instances.example_b () in
  let c = Instances.example_c () in
  let strict_net = Rwt_core.Tpn_build.build_exn Comm_model.Strict a in
  let strict_graph = Rwt_petri.Mcr.graph_of_tpn strict_net.Rwt_core.Tpn_build.tpn in
  let rnd =
    let r = Prng.create 5 in
    Rwt_experiments.Generator.generate r
      { Rwt_experiments.Generator.n_stages = 10; p = 20; comp = (5, 15); comm = (5, 15) }
  in
  let tests =
    [ Test.make ~name:"table1/paths-example-a"
        (Staged.stage (fun () -> ignore (Paths.distinct_paths a.Instance.mapping)));
      Test.make ~name:"fig2/poly-period-example-a"
        (Staged.stage (fun () -> ignore (Rwt_core.Poly_overlap.period a)));
      Test.make ~name:"fig4/tpn-build-example-a"
        (Staged.stage (fun () -> ignore (Rwt_core.Tpn_build.build_exn Comm_model.Overlap a)));
      Test.make ~name:"sec42/strict-exact-example-a"
        (Staged.stage (fun () -> ignore (Rwt_core.Exact.period_exn Comm_model.Strict a)));
      Test.make ~name:"fig6/poly-period-example-b"
        (Staged.stage (fun () -> ignore (Rwt_core.Poly_overlap.period b)));
      Test.make ~name:"fig7/simulate-gantt-example-a"
        (Staged.stage (fun () ->
             let sched = Rwt_sim.Schedule.run Comm_model.Strict a ~datasets:30 in
             ignore (Rwt_sim.Gantt.to_ascii ~width:100 sched)));
      Test.make ~name:"fig8/critical-cycle-strict-a"
        (Staged.stage (fun () -> ignore (Rwt_petri.Mcr.Exact.max_cycle_ratio strict_graph)));
      Test.make ~name:"fig9/pattern-graph-mcr-a-f1"
        (Staged.stage (fun () ->
             ignore
               (Rwt_petri.Mcr.Exact.max_cycle_ratio
                  (Rwt_core.Poly_overlap.pattern_graph a ~file:1 ~q:0))));
      Test.make ~name:"fig11/poly-period-example-c"
        (Staged.stage (fun () -> ignore (Rwt_core.Poly_overlap.period c)));
      Test.make ~name:"table2/one-(10,20)-instance-overlap"
        (Staged.stage (fun () -> ignore (Rwt_core.Poly_overlap.period rnd)));
      Test.make ~name:"kernel/parametric-mcr-strict-a"
        (Staged.stage (fun () -> ignore (Rwt_petri.Mcr.Exact.parametric strict_graph)))
    ]
  in
  let benchmark test =
    let quota = Time.second 0.5 in
    Benchmark.all
      (Benchmark.cfg ~limit:2000 ~quota ~kde:(Some 1000) ())
      [ Toolkit.Instance.monotonic_clock ]
      test
  in
  let analyze raw =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  pf "%-42s %16s@." "kernel" "ns / run";
  List.iter
    (fun test ->
      let results = analyze (benchmark test) in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> pf "%-42s %16.1f@." name est
          | _ -> pf "%-42s %16s@." name "n/a")
        results)
    tests

(* ------------------------------------------------------------------ *)

let all_targets =
  [ ("table1", table1);
    ("example-a", example_a);
    ("tpn-stats", tpn_stats);
    ("example-b", example_b);
    ("gantt-a", gantt_a);
    ("gantt-b", gantt_b);
    ("critical-cycle", critical_cycle);
    ("sub-tpn", sub_tpn);
    ("example-c", example_c);
    ("table2", table2 ~scale:0.1);
    ("table2-full", table2 ~scale:1.0);
    ("ablation-poly", ablation_poly);
    ("ablation-mcr", ablation_mcr);
    ("ext-latency", extension_latency);
    ("ext-optimize", extension_optimize);
    ("ext-stochastic", extension_stochastic);
    ("ext-sensitivity", extension_sensitivity);
    ("gap-distribution", gap_distribution);
    ("minimal-witness", minimal_witness);
    ("calibrate", calibrate);
    ("batch", batch);
    ("mcr", mcr_bench);
    ("tpn", tpn_build_bench);
    ("incr", incremental_bench);
    ("serve", serve_bench);
    ("search", search_bench);
    ("scale", scale_bench);
    ("bechamel", bechamel) ]

let default_targets =
  [ "table1"; "example-a"; "tpn-stats"; "example-b"; "gantt-a"; "gantt-b";
    "critical-cycle"; "sub-tpn"; "example-c"; "table2"; "ablation-poly";
    "ablation-mcr"; "ext-latency"; "ext-optimize"; "ext-stochastic";
    "ext-sensitivity"; "gap-distribution"; "minimal-witness"; "calibrate"; "bechamel" ]

(* Machine-readable observability dump: per-target wall time (the
   [span.bench.<target>] histograms) plus every counter/gauge/histogram the
   instrumented kernels recorded. Future PRs diff these files to track the
   perf trajectory; see doc/OBSERVABILITY.md. *)
let write_bench_obs targets =
  let path = "BENCH_obs.json" in
  let json =
    Json.Obj
      [ ("schema", Json.String "rwt.bench-obs/1");
        ("cores_available", Json.Int (Domain.recommended_domain_count ()));
        ("workers_used", Json.Int (Rwt_pool.resolved_default ()));
        ("targets", Json.List (List.map (fun t -> Json.String t) targets));
        ("metrics", Rwt_obs.metrics_json ()) ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string ~pretty:true json);
  output_char oc '\n';
  close_out oc;
  Printf.eprintf "wrote %s (%d metrics)\n%!" path
    (List.length (Rwt_obs.metric_names ()))

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as targets) -> targets
    | _ -> default_targets
  in
  Rwt_obs.enable ();
  List.iter
    (fun name ->
      match List.assoc_opt name all_targets with
      | Some f -> Rwt_obs.with_span ("bench." ^ name) f
      | None ->
        Printf.eprintf "unknown target %S; available: %s\n" name
          (String.concat ", " (List.map fst all_targets));
        exit 1)
    requested;
  write_bench_obs requested
