module Json = Rwt_util.Json

(* --- state ---

   The registry is shared by every domain (Rwt_batch workers solve
   concurrently): counter and gauge cells are [Atomic.t]s so hot-path
   increments are lock-free once the cell exists, and a single mutex
   guards table insertion, histogram mutation and the trace-event log.
   Span stacks are domain-local ([Domain.DLS]) so nesting in one worker
   never interleaves with another's. The disabled fast path is unchanged:
   one flag read, no lock, no allocation. *)

let on = Atomic.make false
let tracing = Atomic.make false
let clock = ref Sys.time
let t0 = ref 0.0
let mu = Mutex.create ()

let locked f = Mutex.protect mu f

(* log2-scale histogram over (0, inf): bucket k covers
   (lo·2^(k-1), lo·2^k], bucket 0 covers (0, lo]. 96 buckets span
   1e-9 s .. ~7.9e19, enough for any duration or size this repo meets. *)
let n_buckets = 96
let bucket_lo = 1e-9

type hist = {
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  buckets : int array;
}

let counters : (string, int Atomic.t) Hashtbl.t = Hashtbl.create 64
let gauges : (string, float Atomic.t) Hashtbl.t = Hashtbl.create 64
let hists : (string, hist) Hashtbl.t = Hashtbl.create 64

type trace_event = {
  ev_name : string;
  ev_ts : float; (* seconds since t0 *)
  ev_dur : float; (* seconds *)
  ev_args : (string * string) list;
}

let events : trace_event list ref = ref [] (* newest first; guarded by mu *)

let stack_key : (string * float * (string * string) list) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

(* --- lifecycle --- *)

let enabled () = Atomic.get on

let enable ?(trace = false) () =
  Atomic.set on true;
  if trace then begin
    Atomic.set tracing true;
    t0 := !clock ()
  end

let disable () = Atomic.set on false

let reset () =
  locked (fun () ->
      Hashtbl.reset counters;
      Hashtbl.reset gauges;
      Hashtbl.reset hists;
      events := []);
  Domain.DLS.get stack_key := [];
  t0 := !clock ()

let set_clock f = clock := f

(* --- recording --- *)

(* find-or-insert an atomic cell; the whole lookup is under the lock
   because stdlib Hashtbl tolerates no unsynchronized reader during a
   concurrent resize. The update of the returned cell is lock-free. *)
let cell tbl name init =
  locked (fun () ->
      match Hashtbl.find_opt tbl name with
      | Some c -> c
      | None ->
        let c = Atomic.make init in
        Hashtbl.add tbl name c;
        c)

let add name n =
  if Atomic.get on then begin
    let n = if n < 0 then 0 else n in
    ignore (Atomic.fetch_and_add (cell counters name 0) n)
  end

let incr name = add name 1

let gauge name v =
  if Atomic.get on then Atomic.set (cell gauges name v) v

let gauge_max name v =
  if Atomic.get on then begin
    let c = cell gauges name v in
    let rec raise_to () =
      let cur = Atomic.get c in
      if v > cur && not (Atomic.compare_and_set c cur v) then raise_to ()
    in
    raise_to ()
  end

let bucket_of v =
  if v <= bucket_lo then 0
  else begin
    let k = 1 + int_of_float (Float.log2 (v /. bucket_lo)) in
    if k >= n_buckets then n_buckets - 1 else k
  end

(* upper bound of bucket k: lo·2^k *)
let bucket_hi k = bucket_lo *. Float.of_int (1 lsl (min k 62))

let observe name v =
  if Atomic.get on then
    locked (fun () ->
        let h =
          match Hashtbl.find_opt hists name with
          | Some h -> h
          | None ->
            let h =
              { count = 0; sum = 0.0; min_v = infinity; max_v = neg_infinity;
                buckets = Array.make n_buckets 0 }
            in
            Hashtbl.add hists name h;
            h
        in
        h.count <- h.count + 1;
        h.sum <- h.sum +. v;
        if v < h.min_v then h.min_v <- v;
        if v > h.max_v then h.max_v <- v;
        let b = h.buckets in
        let k = bucket_of v in
        b.(k) <- b.(k) + 1)

(* --- spans --- *)

(* Span-site hook: Rwt_fault registers itself here so every span name
   doubles as a fault-injection point. The hook fires whether or not
   metrics are enabled (fault campaigns must not require --metrics), and
   it may raise — span_begin fires it before pushing, with_span before
   entering, so an injected exception never leaves a dangling span. *)
let span_hook : (string -> unit) option Atomic.t = Atomic.make None
let set_span_hook h = Atomic.set span_hook h

let fire_span_hook name =
  match Atomic.get span_hook with Some f -> f name | None -> ()

let span_begin ?(args = []) name =
  fire_span_hook name;
  if Atomic.get on then begin
    let stack = Domain.DLS.get stack_key in
    stack := (name, !clock (), args) :: !stack
  end

let span_end () =
  if Atomic.get on then begin
    let stack = Domain.DLS.get stack_key in
    match !stack with
    | [] -> incr "obs.span_underflow"
    | (name, start, args) :: rest ->
      stack := rest;
      let now = !clock () in
      let dur = if now > start then now -. start else 0.0 in
      observe ("span." ^ name) dur;
      if Atomic.get tracing then
        locked (fun () ->
            events :=
              { ev_name = name; ev_ts = start -. !t0; ev_dur = dur; ev_args = args }
              :: !events)
  end

let with_span ?args name f =
  if not (Atomic.get on) then begin
    fire_span_hook name;
    f ()
  end
  else begin
    span_begin ?args name;
    Fun.protect ~finally:span_end f
  end

let span_depth () = List.length !(Domain.DLS.get stack_key)

(* --- reading back --- *)

let counter_value name =
  locked (fun () ->
      match Hashtbl.find_opt counters name with Some c -> Atomic.get c | None -> 0)

let gauge_value name =
  locked (fun () ->
      match Hashtbl.find_opt gauges name with
      | Some c -> Some (Atomic.get c)
      | None -> None)

type histogram_summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let percentile_of_hist (h : hist) q =
  if h.count = 0 then nan
  else begin
    let rank = q *. float_of_int h.count in
    let cum = ref 0 in
    let k = ref 0 in
    (try
       for i = 0 to n_buckets - 1 do
         cum := !cum + h.buckets.(i);
         if float_of_int !cum >= rank then begin
           k := i;
           raise Exit
         end
       done;
       k := n_buckets - 1
     with Exit -> ());
    (* bucket upper bound, clipped to the exact extremes *)
    Float.min h.max_v (Float.max h.min_v (bucket_hi !k))
  end

let summary_of_hist (h : hist) =
  { count = h.count;
    sum = h.sum;
    min = (if h.count = 0 then 0.0 else h.min_v);
    max = (if h.count = 0 then 0.0 else h.max_v);
    mean = (if h.count = 0 then 0.0 else h.sum /. float_of_int h.count);
    p50 = percentile_of_hist h 0.50;
    p90 = percentile_of_hist h 0.90;
    p99 = percentile_of_hist h 0.99 }

let histogram_summary name =
  locked (fun () -> Option.map summary_of_hist (Hashtbl.find_opt hists name))

let percentile name q =
  if q < 0.0 || q > 1.0 then invalid_arg "Rwt_obs.percentile: q outside [0, 1]";
  locked (fun () ->
      Option.map (fun h -> percentile_of_hist h q) (Hashtbl.find_opt hists name))

let metric_names () =
  locked (fun () ->
      let acc = ref [] in
      Hashtbl.iter (fun k _ -> acc := k :: !acc) counters;
      Hashtbl.iter (fun k _ -> acc := k :: !acc) gauges;
      Hashtbl.iter (fun k _ -> acc := k :: !acc) hists;
      List.sort_uniq String.compare !acc)

(* --- export --- *)

let sorted_fields tbl f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* gauges and histogram stats hold plain floats; emit integral values
   without a fractional part so the output stays compact *)
let json_float f = if Float.is_nan f then Json.Null else Json.Float f

let metrics_json () =
  let hist_json h =
    let s = summary_of_hist h in
    Json.Obj
      [ ("count", Json.Int s.count);
        ("sum", json_float s.sum);
        ("min", json_float s.min);
        ("max", json_float s.max);
        ("mean", json_float s.mean);
        ("p50", json_float s.p50);
        ("p90", json_float s.p90);
        ("p99", json_float s.p99) ]
  in
  locked (fun () ->
      Json.Obj
        [ ("schema", Json.String "rwt.metrics/1");
          ("counters",
           Json.Obj (sorted_fields counters (fun c -> Json.Int (Atomic.get c))));
          ("gauges",
           Json.Obj (sorted_fields gauges (fun c -> json_float (Atomic.get c))));
          ("histograms", Json.Obj (sorted_fields hists hist_json)) ])

let trace_json () =
  let us s = s *. 1e6 in
  let event e =
    let base =
      [ ("name", Json.String e.ev_name);
        ("cat", Json.String "rwt");
        ("ph", Json.String "X");
        ("ts", json_float (us e.ev_ts));
        ("dur", json_float (us e.ev_dur));
        ("pid", Json.Int 1);
        ("tid", Json.Int 1) ]
    in
    let args =
      match e.ev_args with
      | [] -> []
      | kvs -> [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) kvs)) ]
    in
    Json.Obj (base @ args)
  in
  (* events accumulate in completion order; emit by start time *)
  let by_start =
    List.stable_sort (fun a b -> compare a.ev_ts b.ev_ts)
      (List.rev (locked (fun () -> !events)))
  in
  Json.Obj
    [ ("displayTimeUnit", Json.String "ms");
      ("traceEvents", Json.List (List.map event by_start)) ]

(* --- profiling report --- *)

type span_row = {
  span : string;
  calls : int;
  total_s : float;
  mean_s : float;
  p90_s : float;
  max_s : float;
}

let span_prefix = "span."

let span_table () =
  let rows = ref [] in
  locked (fun () ->
      Hashtbl.iter
        (fun name h ->
          let lp = String.length span_prefix in
          if String.length name > lp && String.sub name 0 lp = span_prefix then begin
            let s = summary_of_hist h in
            rows :=
              { span = String.sub name lp (String.length name - lp);
                calls = s.count;
                total_s = s.sum;
                mean_s = s.mean;
                p90_s = s.p90;
                max_s = s.max }
              :: !rows
          end)
        hists);
  List.sort
    (fun a b ->
      match compare b.total_s a.total_s with 0 -> compare a.span b.span | c -> c)
    !rows

let pp_span_table fmt () =
  let rows = span_table () in
  Format.fprintf fmt "@[<v>%-28s %8s %12s %12s %12s %12s@,"
    "phase" "calls" "total(s)" "mean(s)" "p90(s)" "max(s)";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-28s %8d %12.6f %12.6f %12.6f %12.6f@," r.span r.calls
        r.total_s r.mean_s r.p90_s r.max_s)
    rows;
  let nc, ng, nh =
    locked (fun () -> (Hashtbl.length counters, Hashtbl.length gauges, Hashtbl.length hists))
  in
  Format.fprintf fmt "%d metrics recorded (counters %d, gauges %d, histograms %d)@]"
    (List.length (metric_names ())) nc ng nh
