(** Heuristic single-objective mapping search (throughput only).

    Finding the throughput-maximizing mapping is NP-hard even without
    replication (Benoit & Robert 2008, the paper's reference [3]); the paper
    assumes the mapping is given. This module closes the loop for users of
    the library: a greedy constructor plus randomized local search over
    replication sets, with the exact period evaluators of this repository as
    the objective. It is a pragmatic extension, not part of the paper.

    For the multi-criteria problem — period, latency and reliability as a
    Pareto front, with a certified branch-and-bound tier — see {!Search},
    which builds on the same move set and evaluation plumbing.

    Both entry points return [(result, Rwt_err.t) result] like every other
    solver boundary: a platform with fewer processors than stages is a
    typed [Validate] error (code ["validate.optimize"]), never a raw
    exception, and a fired [deadline] inside the first (greedy) evaluation
    surfaces as class [Timeout]. The [_exn] shims raise {!Rwt_err.Error}. *)

open Rwt_util
open Rwt_workflow

type result = {
  mapping : Mapping.t;
  period : Rat.t;
  evaluations : int;
      (** exactly how many candidate mappings were scored — equal to the
          [optimize.evaluations] counter delta of the call *)
}

val greedy :
  ?deadline:(unit -> bool) ->
  Comm_model.t ->
  Pipeline.t ->
  Platform.t ->
  (result, Rwt_err.t) Stdlib.result
(** One processor per stage: stages in decreasing work order pick the
    fastest remaining processor. The baseline every search starts from.
    [Error] of class [Validate] when the platform has fewer processors than
    stages, and [Timeout] when [deadline] fires inside the single scoring
    solve. *)

val greedy_exn :
  ?deadline:(unit -> bool) -> Comm_model.t -> Pipeline.t -> Platform.t -> result
(** Exception shim for {!greedy}. @raise Rwt_err.Error on the same
    conditions. *)

val local_search :
  ?seed:int ->
  ?iterations:int ->
  ?m_cap:int ->
  ?deadline:(unit -> bool) ->
  Comm_model.t ->
  Pipeline.t ->
  Platform.t ->
  (result, Rwt_err.t) Stdlib.result
(** Randomized first-improvement local search from the greedy start.
    Moves: assign an idle processor to a stage (replication), move a
    processor between stages, retire a replica, swap two processors.
    Candidates whose [lcm(m_i)] exceeds [m_cap] (default 720) are rejected
    to keep the strict-model evaluation exact and fast — the cap applies
    uniformly to {e every} evaluation of the call. Deterministic in [seed].
    [iterations] bounds the number of attempted moves (default 400). The
    result never scores worse than {!greedy}. STRICT candidates are scored
    through one {!Delta} session: replica-preserving moves (swaps) patch
    the cached graph in place and warm-start the solver, shape-changing
    moves re-arm the session with a cold solve.

    [deadline] makes the walk interruptible: it is polled before every
    move and threaded into the period solvers ([Mcr]'s cooperative
    checkpoints), and when it fires the search stops and returns the best
    mapping found so far — an anytime result, not an error (unless the
    deadline fires before even the greedy baseline could be scored, which
    is a [Timeout] error like every other solver entry point).

    [evaluations] counts exactly the candidates scored (greedy baseline
    included); no hidden re-scoring happens outside the count. *)

val local_search_exn :
  ?seed:int ->
  ?iterations:int ->
  ?m_cap:int ->
  ?deadline:(unit -> bool) ->
  Comm_model.t ->
  Pipeline.t ->
  Platform.t ->
  result
(** Exception shim for {!local_search}. @raise Rwt_err.Error on the same
    conditions. *)

val propose :
  Prng.t -> p:int -> n:int -> int array array -> int array array option
(** One randomized neighbourhood step over an assignment of [p] processors
    to [n] stages — the move kernel shared by {!local_search} and the
    {!Search} walks: assign an idle processor to a stage, retire a replica,
    move a processor between stages, swap two assigned processors, swap an
    assigned processor with an idle one. The input is never mutated; [None]
    means the drawn move does not apply (e.g. no idle processor). Every
    returned assignment keeps the replica sets nonempty and pairwise
    disjoint. *)

val pp : Format.formatter -> result -> unit
