open Rwt_util
open Rwt_workflow

let stage platform procs =
  if Array.length procs = 0 then invalid_arg "Reliability.stage: empty replica set";
  let all_fail =
    Array.fold_left
      (fun acc u -> Rat.mul acc (Platform.failure_rate platform u))
      Rat.one procs
  in
  Rat.sub Rat.one all_fail

let of_assignment platform assignment =
  Array.fold_left (fun acc procs -> Rat.mul acc (stage platform procs)) Rat.one assignment

let of_mapping platform mapping =
  let n = Mapping.n_stages mapping in
  let acc = ref Rat.one in
  for i = 0 to n - 1 do
    acc := Rat.mul !acc (stage platform (Mapping.procs mapping i))
  done;
  !acc
