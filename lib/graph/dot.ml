let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let attrs_to_string attrs =
  match attrs with
  | [] -> ""
  | _ ->
    let body =
      String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape v)) attrs)
    in
    ", " ^ body

let render ?(name = "g") ?(node_attrs = fun _ -> []) ?(edge_attrs = fun _ -> [])
    ~node_label ~edge_label g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" (escape name));
  Buffer.add_string buf "  rankdir=LR;\n  node [shape=box];\n";
  Digraph.iter_nodes
    (fun u ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\"%s];\n" u
           (escape (node_label u))
           (attrs_to_string (node_attrs u))))
    g;
  Digraph.iter_edges
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [label=\"%s\"%s];\n" e.Digraph.src e.Digraph.dst
           (escape (edge_label e.Digraph.label))
           (attrs_to_string (edge_attrs e))))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
