open Rwt_util
open Rwt_workflow
module Mcr = Rwt_petri.Mcr
module D = Rwt_graph.Digraph

type result = {
  period : Rat.t;
  tpn_ratio : Rat.t;
  m : int;
  critical : (int * int) list;
  model : Comm_model.t;
  inst : Instance.t;
}

let fused_enabled = ref true

let period_exn ?transition_cap ?deadline model inst =
  Rwt_obs.with_span "exact.period" @@ fun () ->
  let m, g =
    if !fused_enabled then
      let fg = Tpn_graph.build_exn ?transition_cap model inst in
      (fg.Tpn_graph.m, fg.Tpn_graph.graph)
    else
      let net = Tpn_build.build_exn ?transition_cap model inst in
      (net.Tpn_build.m, Mcr.graph_of_tpn net.Tpn_build.tpn)
  in
  let ncols = (2 * Mapping.n_stages inst.Instance.mapping) - 1 in
  match Mcr.solve_exact ?deadline g with
  | None -> invalid_arg "Exact.period: net has no circuit"
  | Some w ->
    if Rwt_obs.events_enabled () then
      Rwt_obs.event "exact.period"
        ~fields:
          [ ("instance", Json.String inst.Instance.name);
            ("model", Json.String (Comm_model.to_string model));
            ("path", Json.String (if !fused_enabled then "fused" else "legacy"));
            ("m", Json.Int m);
            ("transitions", Json.Int (D.num_nodes g));
            ("period", Json.Float (Rat.to_float (Rat.div_int w.Mcr.Exact.ratio m)));
            ("cycle_len", Json.Int (List.length w.Mcr.Exact.cycle)) ];
    let critical =
      List.map
        (fun eid ->
          let tid = (D.edge g eid).D.src in
          (tid / ncols, tid mod ncols))
        w.Mcr.Exact.cycle
    in
    { period = Rat.div_int w.Mcr.Exact.ratio m;
      tpn_ratio = w.Mcr.Exact.ratio;
      m;
      critical;
      model;
      inst }

let period ?transition_cap ?deadline model inst =
  Rwt_err.catch (fun () -> period_exn ?transition_cap ?deadline model inst)

let throughput ?transition_cap ?deadline model inst =
  Rat.inv (period_exn ?transition_cap ?deadline model inst).period

let pp_critical result fmt () =
  Format.fprintf fmt "@[<v>critical cycle (%d transitions, ratio %a, period %a):@,"
    (List.length result.critical) Rat.pp_approx result.tpn_ratio Rat.pp_approx
    result.period;
  List.iter
    (fun (row, col) ->
      Format.fprintf fmt "  row %d: %a@," row Tpn_build.pp_kind
        (Tpn_build.kind_at result.inst.Instance.mapping ~row ~col))
    result.critical;
  Format.fprintf fmt "@]"
