(* Tests for the paper's core results: TPN construction (§3), exact period
   via critical cycles (§4), the polynomial algorithm (Theorem 1), and all
   published values of Examples A, B, C. *)

open Rwt_util
open Rwt_workflow
module Core = Rwt_core
module Tpn = Rwt_petri.Tpn

let qtest = QCheck_alcotest.to_alcotest
let rat = Alcotest.testable Rat.pp Rat.equal

let random_instance ?(max_stages = 4) ?(max_per_stage = 3) seed =
  let r = Prng.create seed in
  let n = Prng.int_in r 1 max_stages in
  let counts = Array.init n (fun _ -> Prng.int_in r 1 max_per_stage) in
  let p = Array.fold_left ( + ) 0 counts in
  Rwt_experiments.Generator.generate r
    { Rwt_experiments.Generator.n_stages = n; p; comp = (1, 30); comm = (1, 30) }
  |> fun inst ->
  (* generator already uses all processors; re-derive to bound replication *)
  ignore counts;
  inst

(* --- TPN construction invariants --- *)

let tpn_shape =
  QCheck.Test.make ~count:200 ~name:"TPN has m rows of 2n-1 transitions"
    QCheck.small_nat (fun seed ->
      let inst = random_instance seed in
      let n = Mapping.n_stages inst.Instance.mapping in
      let m = Mapping.num_paths inst.Instance.mapping in
      List.for_all
        (fun model ->
          let net = Core.Tpn_build.build_exn model inst in
          Tpn.num_transitions net.Core.Tpn_build.tpn = m * ((2 * n) - 1)
          && net.Core.Tpn_build.m = m)
        Comm_model.all)

let tpn_live =
  QCheck.Test.make ~count:200 ~name:"constructed TPNs are live" QCheck.small_nat
    (fun seed ->
      let inst = random_instance seed in
      List.for_all
        (fun model ->
          Tpn.liveness (Core.Tpn_build.build_exn model inst).Core.Tpn_build.tpn = Tpn.Live)
        Comm_model.all)

let tpn_tokens_one_per_circuit =
  QCheck.Test.make ~count:200 ~name:"total tokens = number of circuits"
    QCheck.small_nat (fun seed ->
      let inst = random_instance seed in
      let mapping = inst.Instance.mapping in
      let n = Mapping.n_stages mapping in
      let used = List.length (Instance.resources inst) in
      let overlap = Core.Tpn_build.build_exn Comm_model.Overlap inst in
      let strict = Core.Tpn_build.build_exn Comm_model.Strict inst in
      (* overlap: one circuit per compute resource, plus out-port circuits for
         stages 0..n-2 and in-port circuits for stages 1..n-1 *)
      let senders =
        if n < 2 then 0
        else
          Array.fold_left ( + ) 0 (Array.init (n - 1) (Mapping.replication mapping))
      in
      let receivers =
        if n < 2 then 0
        else
          Array.fold_left ( + ) 0
            (Array.init (n - 1) (fun i -> Mapping.replication mapping (i + 1)))
      in
      Tpn.total_tokens overlap.Core.Tpn_build.tpn = used + senders + receivers
      && Tpn.total_tokens strict.Core.Tpn_build.tpn = used)

let tpn_firing_times_match_kinds =
  QCheck.Test.make ~count:100 ~name:"transition firing times match their kind"
    QCheck.small_nat (fun seed ->
      let inst = random_instance seed in
      let net = Core.Tpn_build.build_exn Comm_model.Overlap inst in
      let ok = ref true in
      for id = 0 to Tpn.num_transitions net.Core.Tpn_build.tpn - 1 do
        let expected =
          match Core.Tpn_build.kind net id with
          | Core.Tpn_build.Compute { stage; proc } ->
            Instance.compute_time inst ~stage ~proc
          | Core.Tpn_build.Transfer { file; src; dst } ->
            Instance.transfer_time inst ~file ~src ~dst
        in
        if not (Rat.equal (Tpn.transition net.Core.Tpn_build.tpn id).Tpn.firing expected)
        then ok := false
      done;
      !ok)

let tpn_example_a_size () =
  (* Figure 4: m = 6 rows of 7 transitions *)
  let net = Core.Tpn_build.build_exn Comm_model.Overlap (Instances.example_a ()) in
  Alcotest.(check int) "m" 6 net.Core.Tpn_build.m;
  Alcotest.(check int) "transitions" 42 (Tpn.num_transitions net.Core.Tpn_build.tpn);
  (* places: 6 rows × 6 forward = 36; a circuit contributes one place per
     transition it serializes: computes 6+3+3+2+2+2+6 = 24; out-ports
     6+(3+3)+(2+2+2) = 18; in-ports (3+3)+(2+2+2)+6 = 18 *)
  Alcotest.(check int) "places" 96 (Tpn.num_places net.Core.Tpn_build.tpn);
  Alcotest.(check int) "tokens = circuits" 19 (Tpn.total_tokens net.Core.Tpn_build.tpn);
  let strict = Core.Tpn_build.build_exn Comm_model.Strict (Instances.example_a ()) in
  (* strict: 36 forward + one circuit per processor (24 places, 7 tokens) *)
  Alcotest.(check int) "strict places" 60 (Tpn.num_places strict.Core.Tpn_build.tpn);
  Alcotest.(check int) "strict tokens" 7 (Tpn.total_tokens strict.Core.Tpn_build.tpn)

(* --- published values --- *)

let example_a_values () =
  let a = Instances.example_a () in
  Alcotest.check rat "overlap period 189" (Rat.of_int 189) (Core.Poly_overlap.period a);
  let e = Core.Exact.period_exn Comm_model.Overlap a in
  Alcotest.check rat "overlap exact" (Rat.of_int 189) e.Core.Exact.period;
  Alcotest.check rat "overlap Mct" (Rat.of_int 189) (Cycle_time.mct Comm_model.Overlap a);
  let s = Core.Exact.period_exn Comm_model.Strict a in
  Alcotest.check rat "strict period 230.67" (Rat.of_ints 1384 6) s.Core.Exact.period;
  Alcotest.check rat "strict Mct 215.83" (Rat.of_ints 1295 6)
    (Cycle_time.mct Comm_model.Strict a);
  (* strict: no critical resource *)
  Alcotest.(check bool) "strict P > Mct" true
    (Rat.compare s.Core.Exact.period (Cycle_time.mct Comm_model.Strict a) > 0)

let example_b_values () =
  let b = Instances.example_b () in
  Alcotest.check rat "Mct 258.33" (Rat.of_ints 3100 12) (Cycle_time.mct Comm_model.Overlap b);
  Alcotest.check rat "overlap period 291.67" (Rat.of_ints 3500 12) (Core.Poly_overlap.period b);
  let report = Core.Analysis.analyze_exn Comm_model.Overlap b in
  Alcotest.(check bool) "no critical resource" false
    report.Core.Analysis.has_critical_resource;
  Alcotest.(check int) "bottleneck is P2" 2 report.Core.Analysis.bottleneck.Cycle_time.proc

let example_c_combinatorics () =
  let c = Instances.example_c () in
  Alcotest.(check int) "m = 10395" 10395 (Mapping.num_paths c.Instance.mapping);
  let a = Core.Poly_overlap.analyze c in
  let f1 =
    List.find_map
      (function
        | Core.Poly_overlap.Comm_col cc when cc.Core.Poly_overlap.file = 1 -> Some cc
        | _ -> None)
      a.Core.Poly_overlap.columns
  in
  match f1 with
  | None -> Alcotest.fail "no F1 column"
  | Some cc ->
    Alcotest.(check int) "p = 3" 3 cc.Core.Poly_overlap.p;
    Alcotest.(check int) "u = 7" 7 cc.Core.Poly_overlap.u;
    Alcotest.(check int) "v = 9" 9 cc.Core.Poly_overlap.v;
    Alcotest.(check string) "c = 55" "55" (Bigint.to_string cc.Core.Poly_overlap.c);
    Alcotest.(check int) "3 components" 3 (List.length cc.Core.Poly_overlap.components);
    (* appendix: P5 communicates with exactly 9 distinct receivers, P6 with 9
       others: senders of one component never meet receivers of another *)
    let comp0 = List.nth cc.Core.Poly_overlap.components 0 in
    Alcotest.(check int) "senders per component" 7
      (Array.length comp0.Core.Poly_overlap.senders);
    Alcotest.(check int) "receivers per component" 9
      (Array.length comp0.Core.Poly_overlap.receivers)

(* --- structural properties --- *)

let poly_equals_exact =
  QCheck.Test.make ~count:150 ~name:"Theorem 1 = full-TPN period (overlap)"
    QCheck.small_nat (fun seed ->
      let inst = random_instance seed in
      Rat.equal (Core.Poly_overlap.period inst)
        (Core.Exact.period_exn Comm_model.Overlap inst).Core.Exact.period)

let period_at_least_mct =
  QCheck.Test.make ~count:150 ~name:"P >= Mct (both models)" QCheck.small_nat
    (fun seed ->
      let inst = random_instance seed in
      List.for_all
        (fun model ->
          Rat.compare (Core.Exact.period_exn model inst).Core.Exact.period
            (Cycle_time.mct model inst)
          >= 0)
        Comm_model.all)

let no_replication_implies_critical =
  QCheck.Test.make ~count:150 ~name:"no replication => P = Mct (both models)"
    QCheck.small_nat (fun seed ->
      let inst = random_instance ~max_per_stage:1 seed in
      List.for_all
        (fun model ->
          Rat.equal (Core.Exact.period_exn model inst).Core.Exact.period
            (Cycle_time.mct model inst))
        Comm_model.all)

let strict_slower_than_overlap =
  QCheck.Test.make ~count:150 ~name:"strict period >= overlap period"
    QCheck.small_nat (fun seed ->
      let inst = random_instance seed in
      Rat.compare
        (Core.Exact.period_exn Comm_model.Strict inst).Core.Exact.period
        (Core.Exact.period_exn Comm_model.Overlap inst).Core.Exact.period
      >= 0)

let critical_cycle_is_consistent =
  QCheck.Test.make ~count:100 ~name:"critical cycle stays within one column (overlap)"
    QCheck.small_nat (fun seed ->
      let inst = random_instance seed in
      let e = Core.Exact.period_exn Comm_model.Overlap inst in
      match e.Core.Exact.critical with
      | [] -> false
      | (_, col0) :: rest -> List.for_all (fun (_, col) -> col = col0) rest)

let analysis_consistency =
  QCheck.Test.make ~count:100 ~name:"analysis report consistency" QCheck.small_nat
    (fun seed ->
      let inst = random_instance seed in
      List.for_all
        (fun model ->
          let r = Core.Analysis.analyze_exn model inst in
          Rat.equal (Rat.mul r.Core.Analysis.period r.Core.Analysis.throughput) Rat.one
          && r.Core.Analysis.has_critical_resource
             = Rat.equal r.Core.Analysis.period r.Core.Analysis.mct
          && Rat.sign r.Core.Analysis.gap >= 0)
        Comm_model.all)

let poly_rejects_strict () =
  match
    Core.Analysis.analyze ~method_:Core.Analysis.Poly Comm_model.Strict
      (Instances.example_a ())
  with
  | Ok _ -> Alcotest.fail "Poly must be rejected for the strict model"
  | Error e ->
    Alcotest.(check bool) "validate class" true (e.Rwt_err.class_ = Rwt_err.Validate);
    Alcotest.(check string) "stable code" "validate.method" e.Rwt_err.code

(* The reduced pattern graph of F1 in Example A (Figure 9): 2 senders, 3
   receivers, single component of 6 transitions. *)
let pattern_graph_example_a () =
  let a = Instances.example_a () in
  let g = Core.Poly_overlap.pattern_graph a ~file:1 ~q:0 in
  Alcotest.(check int) "6 transitions" 6 (Rwt_graph.Digraph.num_nodes g);
  Alcotest.(check int) "12 places" 12 (Rwt_graph.Digraph.num_edges g);
  (* its critical ratio / lcm must match the F1 column bound *)
  let an = Core.Poly_overlap.analyze a in
  let f1 =
    List.find_map
      (function
        | Core.Poly_overlap.Comm_col cc when cc.Core.Poly_overlap.file = 1 -> Some cc
        | _ -> None)
      an.Core.Poly_overlap.columns
  in
  match (f1, Rwt_petri.Mcr.Exact.max_cycle_ratio g) with
  | Some cc, Some w ->
    Alcotest.check rat "bound consistency"
      cc.Core.Poly_overlap.bound
      (Rat.div_int w.Rwt_petri.Mcr.Exact.ratio cc.Core.Poly_overlap.block)
  | _ -> Alcotest.fail "missing column or ratio"

(* --- parallel components, memo, and deadline threading --- *)

let poly_parallel_deterministic =
  QCheck.Test.make ~count:60 ~name:"poly analysis identical across worker counts"
    QCheck.small_nat (fun seed ->
      let inst = random_instance (seed + 8800) in
      let render a = Format.asprintf "%a" Core.Poly_overlap.pp_analysis a in
      let serial = render (Core.Poly_overlap.analyze ~workers:1 inst) in
      let parallel = render (Core.Poly_overlap.analyze ~workers:4 inst) in
      serial = parallel)

let poly_parallel_example_c () =
  let c = Instances.example_c () in
  let render a = Format.asprintf "%a" Core.Poly_overlap.pp_analysis a in
  Alcotest.(check string) "example C analysis identical across worker counts"
    (render (Core.Poly_overlap.analyze ~workers:1 c))
    (render (Core.Poly_overlap.analyze ~workers:4 c))

let poly_memo_hits () =
  Rwt_obs.enable ();
  Core.Poly_overlap.reset_memo ();
  let c = Instances.example_c () in
  ignore (Core.Poly_overlap.analyze c);
  let misses_cold = Rwt_obs.counter_value "poly.memo_misses" in
  let hits_cold = Rwt_obs.counter_value "poly.memo_hits" in
  ignore (Core.Poly_overlap.analyze c);
  let misses_warm = Rwt_obs.counter_value "poly.memo_misses" in
  let hits_warm = Rwt_obs.counter_value "poly.memo_hits" in
  Alcotest.(check bool) "cold run solved something" true (misses_cold > 0);
  Alcotest.(check int) "warm run re-solves nothing" misses_cold misses_warm;
  Alcotest.(check bool) "warm run hit the memo for every component" true
    (hits_warm - hits_cold >= misses_cold);
  (* hits must be byte-identical to fresh solves *)
  Core.Poly_overlap.reset_memo ();
  let fresh = (Core.Poly_overlap.analyze c).Core.Poly_overlap.period in
  let memoized = (Core.Poly_overlap.analyze c).Core.Poly_overlap.period in
  Alcotest.check rat "memoized period = fresh period" fresh memoized

(* Regression: the degraded Tpn→Poly fallback used to drop [?deadline], so a
   budget that killed the TPN route let the rescue analysis run unbounded.
   With an already-expired deadline, the whole analysis must now report
   Timeout rather than fall back to an un-budgeted polynomial solve. *)
let fallback_keeps_deadline () =
  match
    Core.Analysis.analyze ~method_:Core.Analysis.Tpn
      ~deadline:(fun () -> true)
      Comm_model.Overlap (Instances.example_a ())
  with
  | Ok _ -> Alcotest.fail "expired deadline must not produce a report"
  | Error e ->
    Alcotest.(check bool) "timeout class" true (e.Rwt_err.class_ = Rwt_err.Timeout)

let report_json () =
  let b = Instances.example_b () in
  let r = Core.Analysis.analyze_exn Comm_model.Overlap b in
  let json = Rwt_util.Json.to_string (Core.Analysis.report_to_json b r) in
  let contains needle =
    let ln = String.length needle in
    let rec go i = i + ln <= String.length json && (String.sub json i ln = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "exact period" true (contains {|"period":"875/3"|});
  Alcotest.(check bool) "no critical" true (contains {|"has_critical_resource":false|});
  Alcotest.(check bool) "resources listed" true (contains {|"proc":"P6"|})

(* --- semantic invariances --- *)

let scale_instance inst k =
  (* multiply every work and data size by k: all times scale by k *)
  let pipeline = inst.Instance.pipeline in
  let n = Pipeline.n_stages pipeline in
  let work = Array.init n (fun i -> Rat.mul_int (Pipeline.work pipeline i) k) in
  let data = Array.init (max 0 (n - 1)) (fun i -> Rat.mul_int (Pipeline.data pipeline i) k) in
  Instance.create_exn ~name:"scaled" ~pipeline:(Pipeline.create ~work ~data)
    ~platform:inst.Instance.platform ~mapping:inst.Instance.mapping

let scaling_invariance =
  QCheck.Test.make ~count:100 ~name:"scaling all sizes by k scales P by k"
    QCheck.small_nat (fun seed ->
      let inst = random_instance (seed + 808) in
      let k = 2 + (seed mod 5) in
      List.for_all
        (fun model ->
          let p1 = (Core.Exact.period_exn model inst).Core.Exact.period in
          let p2 = (Core.Exact.period_exn model (scale_instance inst k)).Core.Exact.period in
          Rat.equal p2 (Rat.mul_int p1 k))
        Comm_model.all)

let slower_link_cannot_speed_up =
  QCheck.Test.make ~count:100 ~name:"halving one bandwidth never decreases P"
    QCheck.small_nat (fun seed ->
      let inst = random_instance (seed + 909) in
      let mapping = inst.Instance.mapping in
      let n = Mapping.n_stages mapping in
      QCheck.assume (n >= 2);
      (* degrade the first used link *)
      let src = (Mapping.procs mapping 0).(0) in
      let dst = (Mapping.procs mapping 1).(0) in
      let p = Platform.p inst.Instance.platform in
      let bw =
        Array.init p (fun u ->
            Array.init p (fun v ->
                let b = Platform.bandwidth inst.Instance.platform u v in
                if u = src && v = dst then Rat.div_int b 2 else b))
      in
      let speeds = Array.init p (Platform.speed inst.Instance.platform) in
      let slower =
        Instance.create_exn ~name:"slower" ~pipeline:inst.Instance.pipeline
          ~platform:(Platform.create ~speeds ~bandwidths:bw)
          ~mapping
      in
      List.for_all
        (fun model ->
          Rat.compare
            (Core.Exact.period_exn model slower).Core.Exact.period
            (Core.Exact.period_exn model inst).Core.Exact.period
          >= 0)
        Comm_model.all)

let idle_processor_is_irrelevant =
  QCheck.Test.make ~count:100 ~name:"adding an unused processor leaves P unchanged"
    QCheck.small_nat (fun seed ->
      let inst = random_instance (seed + 1001) in
      let p = Platform.p inst.Instance.platform in
      let speeds = Array.init (p + 1) (fun u ->
          if u < p then Platform.speed inst.Instance.platform u else Rat.one) in
      let bw = Array.init (p + 1) (fun u ->
          Array.init (p + 1) (fun v ->
              if u < p && v < p then Platform.bandwidth inst.Instance.platform u v
              else Rat.one)) in
      let mapping =
        Mapping.create_exn ~n_stages:(Mapping.n_stages inst.Instance.mapping) ~p:(p + 1)
          (Array.init (Mapping.n_stages inst.Instance.mapping)
             (Mapping.procs inst.Instance.mapping))
      in
      let padded =
        Instance.create_exn ~name:"padded" ~pipeline:inst.Instance.pipeline
          ~platform:(Platform.create ~speeds ~bandwidths:bw) ~mapping
      in
      List.for_all
        (fun model ->
          Rat.equal
            (Core.Exact.period_exn model padded).Core.Exact.period
            (Core.Exact.period_exn model inst).Core.Exact.period)
        Comm_model.all)

(* --- fused direct-to-graph construction (Tpn_graph) --- *)

let check_fused_identical model inst =
  let module D = Rwt_graph.Digraph in
  let module E = Rwt_petri.Mcr.Exact in
  let net = Core.Tpn_build.build_exn model inst in
  let gl = Rwt_petri.Mcr.graph_of_tpn net.Core.Tpn_build.tpn in
  let fg = Core.Tpn_graph.build_exn model inst in
  let gf = fg.Core.Tpn_graph.graph in
  D.num_nodes gl = D.num_nodes gf
  && D.num_edges gl = D.num_edges gf
  &&
  let ok = ref true in
  for i = 0 to D.num_edges gl - 1 do
    let a = D.edge gl i and b = D.edge gf i in
    if
      a.D.src <> b.D.src || a.D.dst <> b.D.dst
      || a.D.label.E.tokens <> b.D.label.E.tokens
      || not (Rat.equal a.D.label.E.weight b.D.label.E.weight)
    then ok := false
  done;
  !ok

let fused_graph_identical =
  QCheck.Test.make ~count:150
    ~name:"fused graph = legacy graph edge for edge (both models)"
    QCheck.small_nat (fun seed ->
      let inst = random_instance seed in
      List.for_all (fun model -> check_fused_identical model inst) Comm_model.all)

let fused_names_match_legacy =
  QCheck.Test.make ~count:80 ~name:"lazy transition names render the legacy strings"
    QCheck.small_nat (fun seed ->
      let inst = random_instance seed in
      let net = Core.Tpn_build.build_exn Comm_model.Overlap inst in
      let fg = Core.Tpn_graph.build_exn Comm_model.Overlap inst in
      let nt = Rwt_petri.Tpn.num_transitions net.Core.Tpn_build.tpn in
      let ok = ref true in
      for id = 0 to nt - 1 do
        let legacy = (Rwt_petri.Tpn.transition net.Core.Tpn_build.tpn id).Rwt_petri.Tpn.tr_name in
        if String.compare legacy (Core.Tpn_graph.tr_name fg id) <> 0 then ok := false
      done;
      !ok)

(* the route flag: legacy and fused [Exact.period_exn] agree on the shipped
   examples — the smoke version of `make tpn-bench` (same protocol, small
   instances) that runs inside `dune runtest` *)
let tpn_bench_smoke () =
  let insts = [ Instances.example_a (); Instances.example_b () ] in
  List.iter
    (fun inst ->
      List.iter
        (fun model ->
          Alcotest.(check bool)
            "fused and legacy graphs identical" true
            (check_fused_identical model inst);
          let fused = (Core.Exact.period_exn model inst).Core.Exact.period in
          let saved = !Core.Exact.fused_enabled in
          Core.Exact.fused_enabled := false;
          let legacy =
            Fun.protect
              ~finally:(fun () -> Core.Exact.fused_enabled := saved)
              (fun () -> (Core.Exact.period_exn model inst).Core.Exact.period)
          in
          Alcotest.check rat "fused route period = legacy route period" legacy fused)
        Comm_model.all)
    insts

(* --- delta sessions, sensitivity targets, memo capacity --- *)

(* single-parameter neighbour, same mapping: the shapes the delta layer is
   built for (speed, bandwidth, work w, data δ — cycling with the step) *)
let perturb_param r step inst =
  let pf = inst.Instance.platform in
  let p = Platform.p pf in
  let pipeline = inst.Instance.pipeline in
  let n = Pipeline.n_stages pipeline in
  let factors =
    [| Rat.of_ints 5 4; Rat.of_ints 3 4; Rat.of_ints 7 4; Rat.of_ints 3 2 |]
  in
  let f = factors.(step mod Array.length factors) in
  let speeds = Array.init p (Platform.speed pf) in
  let bandwidths = Array.init p (fun u -> Array.init p (Platform.bandwidth pf u)) in
  let work = Array.init n (Pipeline.work pipeline) in
  let data = Array.init (max 0 (n - 1)) (Pipeline.data pipeline) in
  (match step mod 4 with
   | 1 when p >= 2 ->
     let u = Prng.int r p in
     let v = (u + 1 + Prng.int r (p - 1)) mod p in
     bandwidths.(u).(v) <- Rat.mul bandwidths.(u).(v) f
   | 3 when n >= 2 ->
     let fl = Prng.int r (n - 1) in
     data.(fl) <- Rat.mul data.(fl) f
   | 0 ->
     let u = Prng.int r p in
     speeds.(u) <- Rat.mul speeds.(u) f
   | _ ->
     let s = Prng.int r n in
     work.(s) <- Rat.mul work.(s) f);
  Instance.create_exn ~name:inst.Instance.name
    ~pipeline:(Pipeline.create ~work ~data)
    ~platform:(Platform.create ~speeds ~bandwidths)
    ~mapping:inst.Instance.mapping

(* add one processor and hand it to the last stage: the replication vector
   changes, so a live session cannot patch and must fall back cold *)
let widen_last_stage inst =
  let p = Platform.p inst.Instance.platform in
  let speeds = Array.init (p + 1) (fun u ->
      if u < p then Platform.speed inst.Instance.platform u else Rat.one) in
  let bw = Array.init (p + 1) (fun u ->
      Array.init (p + 1) (fun v ->
          if u < p && v < p then Platform.bandwidth inst.Instance.platform u v
          else Rat.one)) in
  let n = Mapping.n_stages inst.Instance.mapping in
  let assignment = Array.init n (fun i ->
      let procs = Mapping.procs inst.Instance.mapping i in
      if i = n - 1 then Array.append procs [| p |] else procs) in
  Instance.create_exn ~name:"widened" ~pipeline:inst.Instance.pipeline
    ~platform:(Platform.create ~speeds ~bandwidths:bw)
    ~mapping:(Mapping.create_exn ~n_stages:n ~p:(p + 1) assignment)

let delta_matches_cold =
  QCheck.Test.make ~count:40
    ~name:"delta session = cold solve across perturbation chains (strict)"
    QCheck.small_nat (fun seed ->
      let r = Prng.create (seed + 17) in
      let session = Core.Delta.create Comm_model.Strict in
      let cur = ref (random_instance (seed + 4242)) in
      let ok = ref true in
      for step = 0 to 7 do
        if step > 0 then cur := perturb_param r (step - 1) !cur;
        let cold = (Core.Exact.period_exn Comm_model.Strict !cur).Core.Exact.period in
        let fast = Core.Delta.period_exn session !cur in
        if not (Rat.equal cold fast) then ok := false
      done;
      (* topology change: patched graph is unusable, cold fallback must kick in *)
      let wide = widen_last_stage !cur in
      let cold = (Core.Exact.period_exn Comm_model.Strict wide).Core.Exact.period in
      if not (Rat.equal cold (Core.Delta.period_exn session wide)) then ok := false;
      let st = Core.Delta.stats session in
      !ok
      && st.Core.Delta.patch_hits = 7
      && st.Core.Delta.cold_fallbacks = 1
      && st.Core.Delta.rounds_saved >= 0)

let used_links_are_distinct_inter_proc =
  QCheck.Test.make ~count:200
    ~name:"used_links: distinct (s,d) pairs, s <> d, first-occurrence order"
    QCheck.small_nat (fun seed ->
      let inst = random_instance (seed + 3434) in
      let mapping = inst.Instance.mapping in
      let n = Mapping.n_stages mapping in
      (* naive reference, quadratic dedup *)
      let expected = ref [] in
      for i = 0 to n - 2 do
        Array.iter
          (fun s ->
            Array.iter
              (fun d ->
                if s <> d && not (List.mem (s, d) !expected) then
                  expected := (s, d) :: !expected)
              (Mapping.procs mapping (i + 1)))
          (Mapping.procs mapping i)
      done;
      List.rev !expected = Core.Sensitivity.used_links inst)

let used_links_example_a () =
  (* Figure 3 wiring: 1×2 + 2×3 + 3×1 = 11 distinct links, in file order *)
  Alcotest.(check (list (pair int int)))
    "example A link targets"
    [ (0, 1); (0, 2); (1, 3); (1, 4); (1, 5); (2, 3); (2, 4); (2, 5);
      (3, 6); (4, 6); (5, 6) ]
    (Core.Sensitivity.used_links (Instances.example_a ()))

(* Regression: [memo_store] used to reset the table at capacity BEFORE
   checking membership, so a duplicate store (two workers racing on the same
   component) wiped every entry and the warm run re-solved everything. *)
let memo_cap_duplicate_store () =
  Rwt_obs.enable ();
  let saved = !Core.Poly_overlap.memo_cap in
  Fun.protect
    ~finally:(fun () ->
      Core.Poly_overlap.memo_cap := saved;
      Core.Poly_overlap.reset_memo ())
    (fun () ->
      Core.Poly_overlap.reset_memo ();
      Core.Poly_overlap.memo_cap := 8;
      for i = 0 to 7 do
        Core.Poly_overlap.memo_store (Printf.sprintf "k%d" i) (Rat.of_int i)
      done;
      Alcotest.(check int) "filled to capacity" 8 (Core.Poly_overlap.memo_size ());
      Core.Poly_overlap.memo_store "k3" (Rat.of_int 99);
      Alcotest.(check int) "duplicate store is a no-op" 8
        (Core.Poly_overlap.memo_size ());
      for i = 0 to 7 do
        match Core.Poly_overlap.memo_find (Printf.sprintf "k%d" i) with
        | Some r ->
          Alcotest.check rat "original value kept" (Rat.of_int i) r
        | None -> Alcotest.fail "entry evicted by duplicate store"
      done;
      (* a genuinely new key at capacity still resets, then admits the key *)
      Core.Poly_overlap.memo_store "k8" (Rat.of_int 8);
      Alcotest.(check int) "new key at capacity resets" 1
        (Core.Poly_overlap.memo_size ());
      (* end to end: fill the memo to exactly its capacity, duplicate-store,
         and check the warm analysis still hits instead of re-solving *)
      Core.Poly_overlap.reset_memo ();
      Core.Poly_overlap.memo_cap := saved;
      let c = Instances.example_c () in
      ignore (Core.Poly_overlap.analyze c);
      let entries = Core.Poly_overlap.memo_size () in
      Alcotest.(check bool) "analysis memoized something" true (entries > 0);
      Core.Poly_overlap.memo_cap := entries + 1;
      Core.Poly_overlap.memo_store "mine" Rat.one;
      (* table now exactly at capacity; this duplicate used to wipe it *)
      Core.Poly_overlap.memo_store "mine" Rat.one;
      let hits0 = Rwt_obs.counter_value "poly.memo_hits" in
      let misses0 = Rwt_obs.counter_value "poly.memo_misses" in
      ignore (Core.Poly_overlap.analyze c);
      Alcotest.(check bool) "memo_hits keeps rising" true
        (Rwt_obs.counter_value "poly.memo_hits" - hits0 >= entries);
      Alcotest.(check int) "no re-solves after duplicate store" misses0
        (Rwt_obs.counter_value "poly.memo_misses"))

(* --- full-scale Example C integration (m = 10 395) --- *)

let example_c_overlap_full () =
  let c = Instances.example_c () in
  let m = Mapping.num_paths c.Instance.mapping in
  let poly = Core.Poly_overlap.period c in
  let sched = Rwt_sim.Schedule.run Comm_model.Overlap c ~datasets:(3 * m) in
  Alcotest.check rat "Theorem 1 = simulator at m = 10395" poly
    (Rwt_sim.Schedule.period_estimate sched)

let example_c_strict_full () =
  let c = Instances.example_c () in
  let m = Mapping.num_paths c.Instance.mapping in
  (* the strict TPN has 10395 × 7 = 72 765 transitions; Howard must both
     terminate and agree exactly with the operational simulator *)
  let exact = (Core.Exact.period_exn Comm_model.Strict c).Core.Exact.period in
  let sched = Rwt_sim.Schedule.run Comm_model.Strict c ~datasets:(3 * m) in
  Alcotest.check rat "full TPN = simulator at 72 765 transitions" exact
    (Rwt_sim.Schedule.period_estimate sched)

let () =
  Alcotest.run "rwt_core"
    [ ( "tpn build",
        [ qtest tpn_shape; qtest tpn_live; qtest tpn_tokens_one_per_circuit;
          qtest tpn_firing_times_match_kinds;
          Alcotest.test_case "example A size" `Quick tpn_example_a_size ] );
      ( "published values",
        [ Alcotest.test_case "example A" `Quick example_a_values;
          Alcotest.test_case "example B" `Quick example_b_values;
          Alcotest.test_case "example C" `Quick example_c_combinatorics ] );
      ( "properties",
        [ qtest poly_equals_exact; qtest period_at_least_mct;
          qtest no_replication_implies_critical; qtest strict_slower_than_overlap;
          qtest critical_cycle_is_consistent; qtest analysis_consistency;
          Alcotest.test_case "poly rejects strict" `Quick poly_rejects_strict;
          Alcotest.test_case "pattern graph A/F1" `Quick pattern_graph_example_a ] );
      ( "parallel + memo + deadline",
        [ qtest poly_parallel_deterministic;
          Alcotest.test_case "example C across workers" `Quick poly_parallel_example_c;
          Alcotest.test_case "memo hits" `Quick poly_memo_hits;
          Alcotest.test_case "fallback keeps deadline" `Quick fallback_keeps_deadline ] );
      ( "fused build",
        [ qtest fused_graph_identical; qtest fused_names_match_legacy;
          Alcotest.test_case "tpn bench smoke" `Quick tpn_bench_smoke ] );
      ( "delta + sensitivity + memo cap",
        [ qtest delta_matches_cold; qtest used_links_are_distinct_inter_proc;
          Alcotest.test_case "example A link targets" `Quick used_links_example_a;
          Alcotest.test_case "memo capacity semantics" `Quick
            memo_cap_duplicate_store ] );
      ( "reporting", [ Alcotest.test_case "json report" `Quick report_json ] );
      ( "invariances",
        [ qtest scaling_invariance; qtest slower_link_cannot_speed_up;
          qtest idle_processor_is_irrelevant ] );
      ( "example C full scale",
        [ Alcotest.test_case "overlap" `Slow example_c_overlap_full;
          Alcotest.test_case "strict" `Slow example_c_strict_full ] ) ]
