Multi-criteria mapping search: the exact tier enumerates every assignment
of a tiny failure-prone platform and emits the Pareto front over period,
latency and reliability as NDJSON, one mapping per line.

  $ printf 'stages 3\nwork 4 8 2\ndata 2 1\nprocessors 4\nspeeds 2 1 1 4\nfailures 1/10 1/5 1/4 1/2\n' > tiny.rwt
  $ rwt search -f tiny.rwt 2> summary.txt
  {"assignment":[[0],[3],[1,2]],"m":2,"period":"2","period_approx":2,"latency":"9","latency_approx":9,"reliability":"171/400","reliability_approx":0.42749999999999999,"dominated":23}
  {"assignment":[[1],[0],[2,3]],"m":2,"period":"4","period_approx":4,"latency":"13","latency_approx":13,"reliability":"63/100","reliability_approx":0.63,"dominated":23}
  $ cat summary.txt
  rwt search: exact tier, front 2, 51 scored, 5 pruned

The heuristic tier finds the same objective vectors on this instance
(possibly through different representatives), deterministically in the
seed.

  $ rwt search -f tiny.rwt --tier heuristic --seed 3 --sweeps 2 --iterations 40 2>/dev/null > h1.ndjson
  $ rwt search -f tiny.rwt --tier heuristic --seed 3 --sweeps 2 --iterations 40 2>/dev/null > h2.ndjson
  $ diff h1.ndjson h2.ndjson

A platform with fewer processors than stages is a typed one-line error,
never a backtrace.

  $ printf 'stages 3\nwork 4 8 2\ndata 2 1\nprocessors 2\nspeeds 2 1\n' > few.rwt
  $ rwt search -f few.rwt
  rwt: validate: fewer processors than stages: every stage needs at least one dedicated processor [stages=3, processors=2]
  [1]

So is forcing the exact tier beyond its processor limit.

  $ printf 'stages 2\nwork 1 1\ndata 1\nprocessors 40\nspeeds %s\n' "$(yes 1 | head -40 | tr '\n' ' ')" > wide.rwt
  $ rwt search -f wide.rwt --tier exact
  rwt: validate: exact tier supports at most 30 processors [processors=40]
  [1]

The help text renders cleanly (no embedded padding runs).

  $ rwt search --help=plain | sed -n '1,4p'
  NAME
         rwt-search - Multi-criteria mapping search: the Pareto front over
         period, latency and reliability, one NDJSON mapping per line
         (doc/SEARCH.md).
