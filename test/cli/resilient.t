Resilience walkthrough: typed error lines, fault injection, graceful
degradation, and crash-safe batch resume. See doc/RESILIENCE.md.

Every failure is one typed line — class, message, structured context —
and a nonzero exit; never a raw OCaml backtrace.

  $ rwt period
  rwt: validate: an instance is required: --file <path> or --example <a|b|c|figure1>
  [1]

  $ rwt period -e a -m strict --method poly
  rwt: validate: Analysis.analyze: no polynomial algorithm for the strict model
  [2]

An injected capacity fault on the TPN build degrades the OVERLAP
analysis to the polynomial algorithm (still exact) and says so:

  $ rwt period -e a --method tpn --fault 'tpn.build=capacity'
  model: overlap
  period: 189 (throughput 0.005291 data sets / time unit)
  Mct:    189 (resource P0, stage S0)
  the critical resource dictates the period (P = Mct)
  degraded: tpn route failed (fault.capacity: capacity); used polynomial algorithm

  $ rwt period -e a --method tpn --fault 'tpn.build=capacity' --json | grep -c degraded
  2

The STRICT model has no polynomial fallback, so the same fault is a
typed error line:

  $ rwt period -e a -m strict --method tpn --fault 'tpn.build=capacity'
  rwt: capacity: injected capacity exhaustion at tpn.build [point=tpn.build, hit=1]
  [2]

A malformed fault spec is itself a typed parse error:

  $ rwt period -e a --fault 'tpn.build=warp'
  rwt: parse: unknown action "warp"
  [2]

Crash-safe batch: arm an abort on the third unique evaluation (a
simulated kill: exit 70, no flushing), journal to a sidecar, then resume.

  $ rwt show -e a > a.rwt
  $ rwt show -e b > b.rwt
  $ cat > jobs.txt <<'EOF'
  > a.rwt
  > {"file":"a.rwt","model":"strict","id":"a-strict"}
  > a.rwt
  > b.rwt
  > {"file":"b.rwt","model":"strict"}
  > EOF

  $ rwt batch jobs.txt --jobs 1 --no-timing -o reference.ndjson
  rwt batch: 5 jobs: 5 ok, 0 errors, 0 timeouts; 1 cache hit (workers 1)

  $ RWT_FAULT='batch.job=abort@#3' rwt batch jobs.txt --jobs 1 --no-timing \
  >   --journal journal.ndjson -o partial.ndjson
  rwt: fault: injected abort at batch.job (hit 3)
  [70]

The journal holds the header plus the two evaluations that were fsync'd
before the kill:

  $ head -c 34 journal.ndjson
  {"schema":"rwt.journal/1","key":"9
  $ grep -c '"status"' journal.ndjson
  2

--resume replays them and evaluates only the missing jobs; the output
is byte-identical to the uninterrupted run:

  $ rwt batch jobs.txt --jobs 1 --no-timing --journal journal.ndjson --resume \
  >   -o resumed.ndjson
  rwt batch: 5 jobs: 5 ok, 0 errors, 0 timeouts; 1 cache hit (workers 1), 2 resumed
  $ cmp reference.ndjson resumed.ndjson && echo identical
  identical

A journal written under different options is refused, not misread:

  $ rwt batch jobs.txt --jobs 1 --no-timing --timeout 9999 \
  >   --journal journal.ndjson --resume -o /dev/null
  rwt: validate: journal does not match this job list and options; remove it or rerun without --resume [file=journal.ndjson, expected=ec0d213d453eaaae3cb00ac417f10c4f, found=9042153c31d40bcedc197773e153fccd]
  [2]

  $ rwt batch jobs.txt --resume
  rwt: validate: batch --resume requires --journal FILE
  [1]

Transient injected faults heal under --retries; the summary counts the
retry and the output is again byte-identical:

  $ RWT_FAULT='analysis.analyze=error@#1' rwt batch jobs.txt --jobs 1 --no-timing \
  >   --retries 2 --backoff-ms 1 -o retried.ndjson
  rwt batch: 5 jobs: 5 ok, 0 errors, 0 timeouts; 1 cache hit (workers 1), 1 retried
  $ cmp reference.ndjson retried.ndjson && echo identical
  identical
