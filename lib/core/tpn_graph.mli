(** Fused direct-to-graph construction of the timed Petri net (§3 of the
    paper) — the weighted ratio graph {!Rwt_petri.Mcr} solves, emitted
    straight from [(model, instance)] index arithmetic.

    The legacy route ({!Tpn_build} then {!Rwt_petri.Mcr.graph_of_tpn})
    materializes [m·(2n−1)] transition records with eagerly formatted name
    strings plus a place list, then re-walks the places into the graph.
    This builder skips all of it:

    - arcs (endpoints, token counts) are written into exactly-sized flat
      arrays in the legacy place-insertion order, so the resulting graph is
      edge-for-edge identical to the legacy one — same edge ids, endpoints,
      tokens and weights (pinned by a qcheck property in the test suite);
    - firing times are computed once per distinct key — [(stage, replica)]
      for computations, [(file, sender, receiver)] for transfers — and
      shared across all [m] rows (the [tpn.fire_keys] counter records how
      many distinct rationals were built);
    - transition names are derived lazily from the mapping by
      {!Tpn_build.name_at} only when {!tr_name} is called.

    {!Exact} routes through this builder by default;
    [Exact.fused_enabled := false] (CLI [--legacy-tpn]) restores the legacy
    path. *)

open Rwt_workflow

type t = private {
  graph : Rwt_petri.Mcr.Exact.graph;
  m : int;  (** number of rows (paths) *)
  n_stages : int;
  model : Comm_model.t;
  mutable inst : Instance.t;  (** tracks the last {!patch_exn} *)
}

val build_exn : ?transition_cap:int -> Comm_model.t -> Instance.t -> t
(** Build the ratio graph of the instance's timed Petri net without
    materializing the net. Size guard, [capacity.tpn] diagnostics and the
    [tpn.projected_transitions] gauge are shared with the legacy builder
    via {!Tpn_build.check_cap_exn}; the build runs under the ["tpn.build"]
    span and publishes the same [tpn.rows] / [tpn.transitions] /
    [tpn.places] gauges, plus the [tpn.fused_builds] counter.
    @raise Rwt_util.Rwt_err.Error as {!Tpn_build.build_exn}. *)

val build :
  ?transition_cap:int -> Comm_model.t -> Instance.t -> (t, Rwt_util.Rwt_err.t) result
(** Result shim for {!build_exn}. *)

val shape_compatible : t -> Instance.t -> bool
(** [shape_compatible t inst] holds when [inst] has the same stage count and
    replication vector as the instance [t] was built (or last patched) from.
    The arc topology — endpoints, token counts, arc order — of the fused
    graph depends only on [(model, n_stages, replication vector)]; processor
    identities, speeds, bandwidths and the pipeline's [w]/[δ] columns enter
    only through the firing times, i.e. the edge weights. So a
    shape-compatible instance can be {!patch_exn}ed onto [t] in place. *)

val patch_exn : t -> Instance.t -> unit
(** [patch_exn t inst] re-derives every firing time for [inst] and relabels
    the arcs of [t.graph] in place ([Rwt_graph.Digraph.set_label]): edge ids,
    endpoints and token counts are untouched, so structural views (SCC
    decompositions, solver sessions) built over the graph stay valid. Counts
    [tpn.patches].
    @raise Invalid_argument when [shape_compatible t inst] is false. *)

val transition_id : t -> row:int -> col:int -> int
val row_col : t -> int -> int * int

val kind : t -> int -> Tpn_build.kind
(** Kind of a transition, recovered by index math ({!Tpn_build.kind_at}). *)

val tr_name : t -> int -> string
(** Display name of a transition, rendered on demand
    ({!Tpn_build.name_at}); identical to the [tr_name] string the legacy
    builder would have stored. *)
