open Rwt_util
open Rwt_workflow

type config = {
  n_stages : int;
  p : int;
  comp : int * int;
  comm : int * int;
}

(* Uniform composition via stars and bars: choose parts-1 distinct cut
   points among total-1 gaps (Floyd's sampling), part sizes are the gaps. *)
let random_composition r ~total ~parts =
  if parts <= 0 || total < parts then invalid_arg "Generator.random_composition";
  if parts = 1 then [| total |]
  else begin
    let chosen = Hashtbl.create (2 * parts) in
    (* Floyd: for j = total-1-(parts-1)+1 .. total-1, pick t in [1, j]; if
       taken, use j *)
    for j = total - parts + 1 to total - 1 do
      let t = 1 + Prng.int r j in
      if Hashtbl.mem chosen t then Hashtbl.replace chosen j ()
      else Hashtbl.replace chosen t ()
    done;
    let cuts = Hashtbl.fold (fun k () acc -> k :: acc) chosen [] in
    let cuts = List.sort compare (0 :: total :: cuts) in
    let rec gaps = function
      | a :: (b :: _ as rest) -> (b - a) :: gaps rest
      | _ -> []
    in
    Array.of_list (gaps cuts)
  end

let generate r cfg =
  let { n_stages = n; p; comp = clo, chi; comm = mlo, mhi } = cfg in
  let counts = random_composition r ~total:p ~parts:n in
  (* processors 0..p-1 assigned to stages in order, shuffled identities *)
  let ids = Array.init p (fun u -> u) in
  Prng.shuffle r ids;
  let next = ref 0 in
  let stages =
    Array.to_list
      (Array.map
         (fun m ->
           List.init m (fun _ ->
               let u = ids.(!next) in
               incr next;
               (u, Rat.of_int (Prng.int_in r clo chi))))
         counts)
  in
  (* transfer times for every used (sender, receiver) link *)
  let links = ref [] in
  let procs_of stage = List.map fst (List.nth stages stage) in
  for i = 0 to n - 2 do
    List.iter
      (fun s ->
        List.iter
          (fun d -> links := ((s, d), Rat.of_int (Prng.int_in r mlo mhi)) :: !links)
          (procs_of (i + 1)))
      (procs_of i)
  done;
  Instance.of_times ~name:"random" ~p ~stages ~links:!links ()
