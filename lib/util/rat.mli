(** Exact rational numbers over {!Bigint}.

    Values are kept in canonical form: the denominator is positive and
    [gcd(|num|, den) = 1]. Canonical form makes structural equality of the
    pair meaningful, but use {!equal}/{!compare} in client code. *)

type t = private { num : Bigint.t; den : Bigint.t }

val zero : t
val one : t

val make : Bigint.t -> Bigint.t -> t
(** [make num den] in canonical form. @raise Division_by_zero if [den] is 0. *)

val of_int : int -> t

val of_ints : int -> int -> t
(** [of_ints a b] is the rational [a/b]. @raise Division_by_zero if [b = 0]. *)

val num : t -> Bigint.t
val den : t -> Bigint.t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val inv : t -> t
val abs : t -> t

val mul_int : t -> int -> t
val div_int : t -> int -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val is_zero : t -> bool

val min : t -> t -> t
val max : t -> t -> t

val is_integer : t -> bool

val to_int_opt : t -> int option
(** [Some n] iff the value is an integer fitting in a native [int]. *)

val to_float : t -> float

val to_string : t -> string
(** ["num/den"], or just ["num"] for integers. *)

val of_string : string -> t
(** Parses ["a"], ["a/b"] or ["a.bcd"] (finite decimal).
    @raise Failure on malformed input. *)

val pp : Format.formatter -> t -> unit

val pp_approx : Format.formatter -> t -> unit
(** Decimal rendering with a few digits, for tables ([258.33]-style). *)

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( ~- ) : t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end
