type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Number of string
  | String of string
  | List of t list
  | Obj of (string * t) list

let number s =
  let ok =
    let n = String.length s in
    let i = ref 0 in
    let digits () =
      let start = !i in
      while !i < n && s.[!i] >= '0' && s.[!i] <= '9' do incr i done;
      !i > start
    in
    if !i < n && s.[!i] = '-' then incr i;
    digits ()
    && (if !i < n && s.[!i] = '.' then begin incr i; digits () end else true)
    && (if !i < n && (s.[!i] = 'e' || s.[!i] = 'E') then begin
          incr i;
          if !i < n && (s.[!i] = '+' || s.[!i] = '-') then incr i;
          digits ()
        end
        else true)
    && !i = n
  in
  if ok then Number s else invalid_arg ("Json.number: malformed literal " ^ s)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let float_literal f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else if Float.is_finite f then Printf.sprintf "%.17g" f
  else invalid_arg "Json: non-finite float"

let to_string ?(pretty = false) t =
  let buf = Buffer.create 256 in
  let indent level = if pretty then Buffer.add_string buf (String.make (2 * level) ' ') in
  let newline () = if pretty then Buffer.add_char buf '\n' in
  let rec go level = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_literal f)
    | Number s -> Buffer.add_string buf s
    | String s -> Buffer.add_string buf (escape_string s)
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      newline ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            newline ()
          end;
          indent (level + 1);
          go (level + 1) item)
        items;
      newline ();
      indent level;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      newline ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            newline ()
          end;
          indent (level + 1);
          Buffer.add_string buf (escape_string k);
          Buffer.add_string buf (if pretty then ": " else ":");
          go (level + 1) v)
        fields;
      newline ();
      indent level;
      Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf
