open Rwt_util

let daters tpn k =
  if k < 0 then invalid_arg "Token_game.daters";
  (match Tpn.liveness tpn with
   | Tpn.Live -> ()
   | Tpn.Dead_cycle _ -> failwith "Token_game.daters: net has a token-free circuit");
  let n = Tpn.num_transitions tpn in
  let x = Array.init n (fun _ -> Array.make k Rat.zero) in
  (* Group input places per transition once. *)
  let inputs = Array.make n [] in
  Tpn.iter_places (fun p -> inputs.(p.Tpn.pl_dst) <- p :: inputs.(p.Tpn.pl_dst)) tpn;
  (* Firing order within one index j: transitions connected by token-free
     places must fire in topological order of the token-free subgraph. *)
  let g0 = Rwt_graph.Digraph.create n in
  Tpn.iter_places
    (fun p ->
      if p.Tpn.tokens = 0 then
        ignore (Rwt_graph.Digraph.add_edge g0 p.Tpn.pl_src p.Tpn.pl_dst ()))
    tpn;
  let order =
    match Rwt_graph.Topo.sort g0 with
    | Some o -> o
    | None -> assert false (* liveness checked above *)
  in
  for j = 0 to k - 1 do
    List.iter
      (fun t ->
        let firing = (Tpn.transition tpn t).Tpn.firing in
        let ready =
          List.fold_left
            (fun acc p ->
              let j' = j - p.Tpn.tokens in
              if j' < 0 then acc else Rat.max acc x.(p.Tpn.pl_src).(j'))
            Rat.zero inputs.(t)
        in
        x.(t).(j) <- Rat.add firing ready)
      order
  done;
  x

let slope_of x t k =
  let k1 = k / 2 in
  let dk = k - 1 - k1 in
  if dk <= 0 then invalid_arg "Token_game.slope: horizon too short";
  Rat.div_int (Rat.sub x.(t).(k - 1) x.(t).(k1)) dk

let slope tpn ~transition ~k =
  let x = daters tpn k in
  slope_of x transition k

let estimate_period tpn ~k =
  let x = daters tpn k in
  let n = Tpn.num_transitions tpn in
  let best = ref (slope_of x 0 k) in
  for t = 1 to n - 1 do
    best := Rat.max !best (slope_of x t k)
  done;
  !best

let exact_period tpn ?(max_k = 2000) () =
  let n = Tpn.num_transitions tpn in
  let x = daters tpn max_k in
  (* For candidate cyclicity q, require x(k+q) − x(k) to be one constant c
     for every transition, over a confirmation window of 2q+2 tail indices
     (at least covering two extra full periods). *)
  let confirmed q =
    if 3 * q + 2 > max_k then None
    else begin
      let c = Rat.sub x.(0).(max_k - 1) x.(0).(max_k - 1 - q) in
      let window = (2 * q) + 2 in
      let ok = ref true in
      for t = 0 to n - 1 do
        for j = max_k - window to max_k - 1 do
          if !ok && not (Rat.equal (Rat.sub x.(t).(j) x.(t).(j - q)) c) then ok := false
        done
      done;
      if !ok then Some (Rat.div_int c q) else None
    end
  in
  let rec search q = if 3 * q + 2 > max_k then None else
      match confirmed q with
      | Some p -> Some p
      | None -> search (q + 1)
  in
  search 1
