(** Minimal JSON emitter and parser: enough to export schedules, analyses,
    experiment results and {!Rwt_obs}-style metric dumps to external
    tooling, and to validate/round-trip them back. No external JSON library
    is available in the sealed build environment. Strings are escaped per
    RFC 8259;
    numbers are emitted as-is by the caller ({!number} takes the rendered
    form, so exact rationals can be carried as strings or decimal
    approximations at the caller's choice). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Number of string  (** pre-rendered numeric literal, emitted verbatim *)
  | String of string
  | List of t list
  | Obj of (string * t) list

val number : string -> t
(** [Number] after validating the literal (optional sign, digits, optional
    fraction/exponent). @raise Invalid_argument on a malformed literal. *)

val to_string : ?pretty:bool -> t -> string
(** Compact by default; [pretty] indents with two spaces. Non-finite
    [Float]s ([nan], [infinity], [neg_infinity]) have no JSON literal and
    are serialized as [null] — the output is always valid RFC 8259. *)

type pos_error = {
  offset : int;  (** 0-based byte offset of the failure *)
  line : int;  (** 1-based line *)
  col : int;  (** 1-based column (bytes since the last newline) *)
  reason : string;
}
(** Structured parse failure; [Rwt_err.json_parse] lifts it into the typed
    error taxonomy (the dependency runs that way: [Json] knows nothing of
    [Rwt_err]). *)

val of_string_pos : string -> (t, pos_error) result
(** Strict RFC 8259 parser. Numbers without a fraction or exponent that fit
    a native [int] parse to [Int]; all other numbers parse to [Float]
    (so a {!Number} survives a round-trip as its numeric value, not its
    exact literal). Bare [NaN]/[Infinity]/[-Infinity] tokens are rejected —
    only [null] carries the non-finite case, matching {!to_string}.
    [\uXXXX] escapes (including surrogate pairs) decode to UTF-8. *)

val of_string : string -> (t, string) result
(** {!of_string_pos} with the error rendered as
    ["line L, column C: reason"]. *)

val pos_error_to_string : pos_error -> string

val escape_string : string -> string
(** The quoted, escaped form of a string literal. *)
