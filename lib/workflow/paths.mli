(** Round-robin paths through the replicated pipeline (Proposition 1): data
    set [d] traverses processors [(procs 0).(d mod m_0), …,
    (procs n-1).(d mod m_{n-1})], and the path pattern repeats with period
    [m = lcm(m_0, …, m_{n-1})]. *)

val num_paths : Mapping.t -> int
(** [m]. @raise Failure on overflow. *)

val path : Mapping.t -> int -> int array
(** [path m d] is the processor sequence for data set [d]. *)

val first_paths : Mapping.t -> int -> int array list
(** The paths of data sets [0 .. k-1]. *)

val distinct_paths : Mapping.t -> int array list
(** The [m] distinct paths, in round-robin order (data sets [0 .. m-1]). *)

val verify_period : Mapping.t -> bool
(** Checks Proposition 1 operationally: [m] is the smallest positive period
    of the path sequence. Intended for tests ([O(m·n)]). *)

val pp_table : Format.formatter -> Mapping.t * int -> unit
(** Renders the paper's Table 1: the paths of the first [k] data sets. *)
