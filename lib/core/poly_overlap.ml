open Rwt_util
open Rwt_workflow
module Mcr = Rwt_petri.Mcr
module D = Rwt_graph.Digraph
module Obs = Rwt_obs

type compute_column = {
  stage : int;
  per_proc : (int * Rat.t) list;
  bound : Rat.t;
}

type component = {
  q : int;
  senders : int array;
  receivers : int array;
  ratio : Rat.t;
  bound : Rat.t;
}

type comm_column = {
  file : int;
  p : int;
  u : int;
  v : int;
  c : Bigint.t;
  block : int;
  components : component list;
  bound : Rat.t;
}

type column = Compute_col of compute_column | Comm_col of comm_column

type analysis = { columns : column list; period : Rat.t }

(* Cooperative deadline at analysis granularity (column and component
   starts); [Mcr] re-polls inside each solve. Polling here too keeps an
   expired deadline firing even when every component solve is a memo hit. *)
let check_deadline = function
  | None -> ()
  | Some d ->
    if d () then begin
      Obs.incr "poly.deadline_trips";
      Rwt_err.raise_
        (Rwt_err.timeout ~code:"poly.deadline"
           "analysis deadline exceeded (cooperative checkpoint)")
    end

let geometry mapping file =
  let mi = Mapping.replication mapping file in
  let mi1 = Mapping.replication mapping (file + 1) in
  let p = Intmath.gcd mi mi1 in
  (mi, mi1, p, mi / p, mi1 / p)

(* A component's pattern graph is fully determined by (u, v) and the uv
   transfer times in τ order — the processor ids only matter through the
   times they induce. Materializing the weights first gives both the graph
   and the memo key below. *)
let pattern_weights inst ~file ~q =
  let mapping = inst.Instance.mapping in
  let _, _, p, u, v = geometry mapping file in
  let senders = Mapping.procs mapping file in
  let receivers = Mapping.procs mapping (file + 1) in
  let w =
    Array.init (u * v) (fun tau ->
        let s = senders.(q + (p * (tau mod u))) in
        let d = receivers.(q + (p * (tau mod v))) in
        Instance.transfer_time inst ~file ~src:s ~dst:d)
  in
  (u, v, w)

let graph_of_weights ~u ~v w =
  let uv = u * v in
  let g = D.create uv in
  for tau = 0 to uv - 1 do
    (* sender round-robin: next transfer by the same sender replica *)
    ignore
      (D.add_edge g tau ((tau + u) mod uv)
         { Mcr.Exact.weight = w.(tau); tokens = (if tau + u >= uv then 1 else 0) });
    (* receiver round-robin: next reception by the same receiver replica *)
    ignore
      (D.add_edge g tau ((tau + v) mod uv)
         { Mcr.Exact.weight = w.(tau); tokens = (if tau + v >= uv then 1 else 0) })
  done;
  g

let pattern_graph inst ~file ~q =
  let u, v, w = pattern_weights inst ~file ~q in
  graph_of_weights ~u ~v w

(* --- component-solve memo ----------------------------------------------

   Replication sweeps re-analyze instances whose stage pairs mostly repeat:
   the same (u, v) geometry over the same transfer profile yields the same
   pattern graph, hence the same critical ratio. Keyed by the exact
   canonical weight strings, so a hit is provably the same sub-problem and
   the memoized ratio is byte-identical to a fresh solve. Domain-safe
   (guarded by a mutex, values immutable); bounded — the table resets past
   [memo_cap] entries rather than evicting, which keeps hits O(1). *)
let memo : (string, Rat.t) Hashtbl.t = Hashtbl.create 512
let memo_mu = Mutex.create ()
let memo_cap = ref 4096

let reset_memo () = Mutex.protect memo_mu (fun () -> Hashtbl.reset memo)
let memo_find key = Mutex.protect memo_mu (fun () -> Hashtbl.find_opt memo key)
let memo_size () = Mutex.protect memo_mu (fun () -> Hashtbl.length memo)

(* Membership first, reset only when a genuinely new key needs room: two
   workers racing on the same component both call [memo_store], and the
   loser's duplicate insertion must be a no-op — resetting before the
   membership check made it wipe every live entry once the table was full. *)
let memo_store key r =
  Mutex.protect memo_mu (fun () ->
      if not (Hashtbl.mem memo key) then begin
        if Hashtbl.length memo >= !memo_cap then Hashtbl.reset memo;
        Hashtbl.add memo key r
      end)

let memo_key ~u ~v w =
  let b = Buffer.create (16 * Array.length w) in
  Buffer.add_string b (string_of_int u);
  Buffer.add_char b 'x';
  Buffer.add_string b (string_of_int v);
  Array.iter
    (fun r ->
      Buffer.add_char b '|';
      Buffer.add_string b (Rat.to_string r))
    w;
  Buffer.contents b

let component_ratio ?deadline inst ~file ~q =
  let u, v, w = pattern_weights inst ~file ~q in
  let key = memo_key ~u ~v w in
  match memo_find key with
  | Some r ->
    Obs.incr "poly.memo_hits";
    r
  | None ->
    Obs.incr "poly.memo_misses";
    let g = graph_of_weights ~u ~v w in
    (match Mcr.solve_exact ?deadline g with
     | None -> invalid_arg "Poly_overlap: pattern graph must have cycles"
     | Some wit ->
       let r = wit.Mcr.Exact.ratio in
       memo_store key r;
       r)

let analyze ?deadline ?workers inst =
  Obs.with_span "poly.analyze" @@ fun () ->
  let mapping = inst.Instance.mapping in
  let n = Mapping.n_stages mapping in
  let m_big = Mapping.num_paths_big mapping in
  let columns = ref [] in
  for stage = n - 1 downto 0 do
    (* interleave in reverse so the final list is in column order *)
    check_deadline deadline;
    if stage < n - 1 then begin
      let mi, mi1, p, u, v = geometry mapping stage in
      let block = Intmath.lcm mi mi1 in
      Obs.incr "poly.comm_columns";
      Obs.add "poly.components" p;
      (* per-stage-pair work: each of the p components solves a u·v-node
         pattern graph with two edges per node *)
      Obs.add "poly.pattern_nodes" (p * u * v);
      Obs.add "poly.pattern_edges" (2 * p * u * v);
      let solve_component q =
        check_deadline deadline;
        let ratio = component_ratio ?deadline inst ~file:stage ~q in
        let senders =
          Array.init u (fun a -> (Mapping.procs mapping stage).(q + (p * a)))
        in
        let receivers =
          Array.init v (fun b -> (Mapping.procs mapping (stage + 1)).(q + (p * b)))
        in
        { q; senders; receivers; ratio; bound = Rat.div_int ratio block }
      in
      (* the p components are independent sub-problems: fan out on the
         shared pool when asked to (explicit [workers]) or when the column
         is big enough to amortize domain spawns; results land in a
         q-indexed array either way, so the output is order-deterministic *)
      let parallel =
        p >= 2
        &&
        match workers with
        | Some w -> w > 1
        | None -> Mcr.scc_parallel ~n_comps:p ~edges:(2 * p * u * v)
      in
      let components =
        Array.to_list
          (if parallel then Rwt_pool.map ?workers ~n:p solve_component
           else Array.init p solve_component)
      in
      let bound =
        List.fold_left (fun acc (comp : component) -> Rat.max acc comp.bound) Rat.zero components
      in
      columns :=
        Comm_col
          { file = stage; p; u; v;
            c = Bigint.div m_big (Bigint.of_int block);
            block; components; bound }
        :: !columns
    end;
    Obs.incr "poly.compute_columns";
    let mi = Mapping.replication mapping stage in
    let per_proc =
      Array.to_list
        (Array.map
           (fun proc ->
             (proc, Rat.div_int (Instance.compute_time inst ~stage ~proc) mi))
           (Mapping.procs mapping stage))
    in
    let bound = List.fold_left (fun acc (_, b) -> Rat.max acc b) Rat.zero per_proc in
    columns := Compute_col { stage; per_proc; bound } :: !columns
  done;
  let period =
    List.fold_left
      (fun acc col ->
        Rat.max acc (match col with Compute_col c -> c.bound | Comm_col c -> c.bound))
      Rat.zero !columns
  in
  { columns = !columns; period }

let period ?deadline ?workers inst = (analyze ?deadline ?workers inst).period

let column_bound _inst = function Compute_col c -> c.bound | Comm_col c -> c.bound

let pp_analysis fmt a =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun col ->
      match col with
      | Compute_col c ->
        Format.fprintf fmt "column S%d (compute): bound %a@," c.stage Rat.pp_approx c.bound
      | Comm_col c ->
        Format.fprintf fmt
          "column F%d (transfer): p=%d u=%d v=%d c=%a block=%d bound %a@," c.file c.p
          c.u c.v Bigint.pp c.c c.block Rat.pp_approx c.bound;
        List.iter
          (fun comp ->
            Format.fprintf fmt "  component %d: ratio %a, bound %a@," comp.q
              Rat.pp_approx comp.ratio Rat.pp_approx comp.bound)
          c.components)
    a.columns;
  Format.fprintf fmt "period = %a@]" Rat.pp_approx a.period
