open Rwt_util
open Rwt_workflow
module Analysis = Rwt_core.Analysis
module Delta = Rwt_core.Delta
module Exact = Rwt_core.Exact
module Poly_overlap = Rwt_core.Poly_overlap
module Obs = Rwt_obs

(* --- requests --- *)

type source = File of string | Example of string

type analyze = {
  source : source;
  model : Comm_model.t;
  method_ : Analysis.method_;
  deadline_ms : int option;
  transition_cap : int option;
}

type kind =
  | Analyze of analyze
  | Echo of Json.t option
  | Metrics of [ `Prometheus | `Json ]
  | Health
  | Shutdown

type request = { id : string option; kind : kind }

let method_to_string = function
  | Analysis.Auto -> "auto"
  | Analysis.Tpn -> "tpn"
  | Analysis.Poly -> "poly"

let method_of_string = function
  | "auto" -> Some Analysis.Auto
  | "tpn" -> Some Analysis.Tpn
  | "poly" -> Some Analysis.Poly
  | _ -> None

let req_err msg = Rwt_err.parse ~code:"parse.request" msg

let parse_request line =
  match Json.of_string_pos line with
  | Error e ->
    Error
      (Rwt_err.parse ~code:"parse.request" ~col:e.Json.col
         ~context:[ ("offset", string_of_int e.Json.offset) ]
         (Printf.sprintf "bad JSON: %s" e.Json.reason))
  | Ok (Json.Obj fields) ->
    let exception Bad of Rwt_err.t in
    (try
       let str_field k v =
         match v with
         | Json.String s -> s
         | _ -> raise (Bad (req_err (Printf.sprintf "key %S expects a string" k)))
       in
       let int_field k v =
         match v with
         | Json.Int n -> n
         | _ -> raise (Bad (req_err (Printf.sprintf "key %S expects an integer" k)))
       in
       let req = ref None and id = ref None in
       let file = ref None and example = ref None in
       let model = ref Comm_model.Overlap and method_ = ref Analysis.Auto in
       let deadline_ms = ref None and transition_cap = ref None in
       let payload = ref None and format = ref None in
       List.iter
         (fun (k, v) ->
           match k with
           | "req" -> req := Some (str_field k v)
           | "id" -> id := Some (str_field k v)
           | "file" -> file := Some (str_field k v)
           | "example" -> example := Some (str_field k v)
           | "model" ->
             (match Comm_model.of_string (str_field k v) with
              | Some m -> model := m
              | None ->
                raise
                  (Bad (req_err (Printf.sprintf "unknown model %S" (str_field k v)))))
           | "method" ->
             (match method_of_string (str_field k v) with
              | Some m -> method_ := m
              | None ->
                raise
                  (Bad (req_err (Printf.sprintf "unknown method %S" (str_field k v)))))
           | "deadline_ms" ->
             let n = int_field k v in
             if n < 0 then
               raise (Bad (req_err "\"deadline_ms\" must be non-negative"));
             deadline_ms := Some n
           | "transition_cap" ->
             let n = int_field k v in
             if n < 1 then raise (Bad (req_err "\"transition_cap\" must be positive"));
             transition_cap := Some n
           | "payload" -> payload := Some v
           | "format" -> format := Some (str_field k v)
           | _ -> raise (Bad (req_err (Printf.sprintf "unknown key %S" k))))
         fields;
       let kind_name =
         match !req with
         | Some r -> r
         | None ->
           if !file <> None || !example <> None then "analyze"
           else
             raise
               (Bad
                  (req_err
                     "an analysis request needs \"file\" or \"example\" (or set \
                      \"req\")"))
       in
       let forbid field name =
         if field <> None then
           raise
             (Bad
                (Rwt_err.validate ~code:"validate.request"
                   (Printf.sprintf "key %S does not apply to req %S" name kind_name)))
       in
       let analyze_only () =
         forbid !payload "payload";
         forbid !format "format"
       in
       let plain () =
         analyze_only ();
         forbid !file "file";
         forbid !example "example";
         forbid (Option.map (fun _ -> ()) !deadline_ms) "deadline_ms";
         forbid (Option.map (fun _ -> ()) !transition_cap) "transition_cap"
       in
       let kind =
         match kind_name with
         | "analyze" ->
           analyze_only ();
           let source =
             match (!file, !example) with
             | Some _, Some _ ->
               raise
                 (Bad
                    (Rwt_err.validate ~code:"validate.request"
                       "use either \"file\" or \"example\", not both"))
             | Some f, None -> File f
             | None, Some e -> Example e
             | None, None ->
               raise
                 (Bad
                    (Rwt_err.validate ~code:"validate.request"
                       "an analysis request needs \"file\" or \"example\""))
           in
           Analyze
             { source; model = !model; method_ = !method_;
               deadline_ms = !deadline_ms; transition_cap = !transition_cap }
         | "echo" ->
           forbid !format "format";
           forbid !file "file";
           forbid !example "example";
           Echo !payload
         | "metrics" ->
           forbid !payload "payload";
           forbid !file "file";
           forbid !example "example";
           (match !format with
            | None | Some "prometheus" -> Metrics `Prometheus
            | Some "json" -> Metrics `Json
            | Some other ->
              raise
                (Bad
                   (Rwt_err.validate ~code:"validate.request"
                      (Printf.sprintf
                         "unknown metrics format %S (try \"prometheus\" or \"json\")"
                         other))))
         | "health" -> plain (); Health
         | "shutdown" -> plain (); Shutdown
         | other ->
           raise
             (Bad
                (Rwt_err.validate ~code:"validate.request"
                   (Printf.sprintf
                      "unknown req %S (try analyze, echo, metrics, health, shutdown)"
                      other)))
       in
       Ok { id = !id; kind }
     with Bad e -> Error e)
  | Ok _ -> Error (req_err "expected a JSON object")

(* --- configuration --- *)

type config = {
  socket : string option;
  tcp : (string * int) option;
  port_file : string option;
  workers : int;
  queue : int;
  max_conns : int;
  max_line : int;
  default_deadline_ms : int option;
  default_transition_cap : int option;
  journal : string option;
  memo_cap : int;
  allow_shutdown : bool;
  write_timeout_s : float;
}

let default_config =
  { socket = None; tcp = None; port_file = None; workers = 0; queue = 64;
    max_conns = 64; max_line = 1 lsl 20; default_deadline_ms = None;
    default_transition_cap = None; journal = None; memo_cap = 4096;
    allow_shutdown = false; write_timeout_s = 30.0 }

type stats = {
  requests : int;
  ok : int;
  errors : int;
  timeouts : int;
  shed : int;
  cache_hits : int;
  replayed : int;
  conns : int;
  recovered : int;
}

let pp_stats fmt s =
  Format.fprintf fmt
    "%d request%s: %d ok, %d error%s, %d timeout%s, %d shed; %d cache hit%s, %d \
     replayed, %d connection%s"
    s.requests
    (if s.requests = 1 then "" else "s")
    s.ok s.errors
    (if s.errors = 1 then "" else "s")
    s.timeouts
    (if s.timeouts = 1 then "" else "s")
    s.shed s.cache_hits
    (if s.cache_hits = 1 then "" else "s")
    s.replayed s.conns
    (if s.conns = 1 then "" else "s")

type control = bool Atomic.t

let stop c = Atomic.set c true

type ready = {
  control : control;
  addr : string;
  eff_workers : int;
  recovered : int;
}

(* --- durable records ---

   The durable (and memoized) fields of one analysis result. Responses
   are rendered from this record whether it was computed just now,
   found in the in-process memo, or recovered from the journal — which
   is what makes a post-crash resend byte-identical. *)

type record = {
  rec_status : string; (* "ok" | "error" | "timeout" *)
  rec_period : Rat.t option;
  rec_degraded : string option;
  rec_error : Rwt_err.t option;
}

let journal_schema = "rwt.serve-journal/1"

let opt_field k f v = match v with None -> [] | Some x -> [ (k, f x) ]

let record_to_json key r =
  Json.Obj
    (("k", Json.String key)
     :: ("status", Json.String r.rec_status)
     :: (opt_field "period" (fun p -> Json.String (Rat.to_string p)) r.rec_period
         @ opt_field "degraded" (fun s -> Json.String s) r.rec_degraded
         @ opt_field "error" Rwt_err.to_json r.rec_error))

let record_of_json = function
  | Json.Obj fields ->
    let str k =
      match List.assoc_opt k fields with Some (Json.String s) -> Some s | _ -> None
    in
    (match (str "k", str "status") with
     | Some key, Some rec_status ->
       let rec_period =
         match str "period" with
         | Some s -> (try Some (Rat.of_string s) with _ -> None)
         | None -> None
       in
       let rec_error =
         Option.bind (List.assoc_opt "error" fields) Rwt_err.of_json
       in
       Some (key, { rec_status; rec_period; rec_degraded = str "degraded"; rec_error })
     | _ -> None)
  | _ -> None

(* journaled results must be deterministic facts about the request:
   ok always is, a non-transient error is, a timeout (wall clock) or an
   injected-fault error (per-hit trigger) is not *)
let durable r =
  match r.rec_status with
  | "ok" -> true
  | "error" -> (match r.rec_error with Some e -> not (Rwt_err.transient e) | None -> false)
  | _ -> false

let journal_load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let n = in_channel_length ic in
        really_input_string ic n)
  with
  | exception Sys_error msg -> Error (Rwt_err.parse ~code:"parse.io" msg)
  | contents ->
    if String.trim contents = "" then Ok []
    else begin
      let lines = String.split_on_char '\n' contents in
      match lines with
      | header :: rest ->
        (match Json.of_string header with
         | Ok (Json.Obj fields)
           when List.assoc_opt "schema" fields = Some (Json.String journal_schema) ->
           let records = ref [] in
           (try
              List.iter
                (fun line ->
                  if String.trim line <> "" then
                    match Json.of_string line with
                    | Ok j ->
                      (match record_of_json j with
                       | Some kr -> records := kr :: !records
                       | None -> raise Exit)
                    | Error _ ->
                      (* torn trailing line: the crash hit mid-write *)
                      raise Exit)
                rest
            with Exit -> ());
           Ok (List.rev !records)
         | _ ->
           Error
             (Rwt_err.validate ~code:"validate.journal"
                ~context:[ ("file", path); ("want", journal_schema) ]
                "not an rwt serve journal"))
      | [] -> Ok []
    end

(* --- instance loading and evaluation --- *)

let load_source = function
  | File path -> Format_io.load path
  | Example name ->
    (match String.lowercase_ascii name with
     | "a" | "example-a" -> Ok (Instances.example_a ())
     | "b" | "example-b" -> Ok (Instances.example_b ())
     | "c" | "example-c" -> Ok (Instances.example_c ())
     | "no-replication" | "nr" -> Ok (Instances.no_replication ())
     | other ->
       Error
         (Rwt_err.validate ~code:"validate.example"
            (Printf.sprintf "unknown example %S (try a, b, c, no-replication)" other)))

(* canonical result key: the instance's canonical serialization with the
   name stripped (identical content under different names shares one
   evaluation), plus everything that can change the answer *)
let canonical_key inst model method_ transition_cap deadline_ms =
  let anon =
    Instance.create_exn ~name:"" ~pipeline:inst.Instance.pipeline
      ~platform:inst.Instance.platform ~mapping:inst.Instance.mapping
  in
  let opt = function Some n -> string_of_int n | None -> "-" in
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "%s|%s|%s|%s|%s" (Format_io.to_string anon)
          (Comm_model.to_string model) (method_to_string method_)
          (opt transition_cap) (opt deadline_ms)))

(* per-worker Delta sessions, keyed by (model, cap): the fused TPN graph
   skeleton and the Mcr session survive across requests, so a stream of
   shape-compatible instances re-solves warm instead of rebuilding *)
let delta_sessions : (Comm_model.t * int option, Delta.t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4)

let tpn_period ?transition_cap ?deadline model inst =
  if !Delta.enabled then begin
    let tbl = Domain.DLS.get delta_sessions in
    let key = (model, transition_cap) in
    let session =
      match Hashtbl.find_opt tbl key with
      | Some s -> s
      | None ->
        let s = Delta.create ?transition_cap model in
        Hashtbl.add tbl key s;
        s
    in
    Delta.period_exn ?deadline session inst
  end
  else (Exact.period_exn ?transition_cap ?deadline model inst).Exact.period

(* same routing and degradation policy as [Analysis.analyze], but the
   TPN route goes through the persistent per-worker Delta sessions *)
let eval_period ?transition_cap ?deadline model method_ inst =
  match (method_, model) with
  | Analysis.Poly, Comm_model.Strict ->
    Rwt_err.raise_
      (Rwt_err.validate ~code:"validate.method"
         "Analysis.analyze: no polynomial algorithm for the strict model")
  | (Analysis.Auto | Analysis.Poly), Comm_model.Overlap ->
    (Poly_overlap.period ?deadline inst, None)
  | Analysis.Tpn, Comm_model.Overlap ->
    (match tpn_period ?transition_cap ?deadline model inst with
     | p -> (p, None)
     | exception Rwt_err.Error ({ Rwt_err.class_ = Capacity | Timeout; _ } as e) ->
       Obs.incr "serve.degraded";
       ( Poly_overlap.period ?deadline inst,
         Some
           (Printf.sprintf "tpn route failed (%s: %s); used polynomial algorithm"
              e.Rwt_err.code
              (Rwt_err.class_name e.Rwt_err.class_)) ))
  | (Analysis.Auto | Analysis.Tpn), Comm_model.Strict ->
    (tpn_period ?transition_cap ?deadline model inst, None)

(* --- server state --- *)

type conn = {
  fd : Unix.file_descr;
  mutable inbuf : string;
  wmu : Mutex.t;
  mutable next_seq : int; (* seq assigned to the next request line *)
  mutable next_write : int; (* next seq to write out (strict order) *)
  pending : (int, string) Hashtbl.t; (* finished, awaiting ordered write *)
  mutable alive : bool; (* write side usable *)
  mutable eof : bool; (* read side finished *)
  mutable skipping : bool; (* discarding the rest of an oversized line *)
}

type task = {
  t_conn : conn;
  t_seq : int;
  t_id : string option;
  t_kind : kind;
  t_admit : float;
}

type memo_shard = {
  sh_mu : Mutex.t;
  sh_tbl : (string, record * bool) Hashtbl.t;
  sh_fifo : string Queue.t; (* FIFO eviction within the shard *)
  sh_cap : int;
}

type state = {
  cfg : config;
  eff_workers : int;
  stop_flag : control;
  t_start : float;
  recovered : int;
  outstanding : int Atomic.t;
  (* canonical-result memo: record plus whether it came from the journal.
     Sharded by key hash so concurrent workers answering distinct requests
     don't serialize on one mutex — the single global lock showed up as
     the hot path once the solver itself got cheap (memo hits). Each
     shard keeps its own FIFO; the configured cap is split across shards
     so the total never exceeds [memo_cap]. *)
  memo_shards : memo_shard array;
  journal_mu : Mutex.t;
  mutable journal_fd : Unix.file_descr option;
  mutable svc : task Rwt_pool.service option;
  mutable live_conns : int;
  (* lifetime counters (workers and the accept loop both write) *)
  c_requests : int Atomic.t;
  c_ok : int Atomic.t;
  c_errors : int Atomic.t;
  c_timeouts : int Atomic.t;
  c_shed : int Atomic.t;
  c_cache_hits : int Atomic.t;
  c_replayed : int Atomic.t;
  c_conns : int Atomic.t;
}

let stats_of st =
  { requests = Atomic.get st.c_requests;
    ok = Atomic.get st.c_ok;
    errors = Atomic.get st.c_errors;
    timeouts = Atomic.get st.c_timeouts;
    shed = Atomic.get st.c_shed;
    cache_hits = Atomic.get st.c_cache_hits;
    replayed = Atomic.get st.c_replayed;
    conns = Atomic.get st.c_conns;
    recovered = st.recovered }

(* --- memo + journal --- *)

(* up to 16 shards; never more shards than capacity entries, so the
   per-shard caps still sum exactly to [memo_cap] *)
let memo_make_shards ~cap =
  let n = max 1 (min 16 cap) in
  Array.init n (fun i ->
      { sh_mu = Mutex.create (); sh_tbl = Hashtbl.create 64;
        sh_fifo = Queue.create ();
        sh_cap = (cap / n) + (if i < cap mod n then 1 else 0) })

let memo_shard st key =
  st.memo_shards.(Hashtbl.hash key mod Array.length st.memo_shards)

let memo_find st key =
  let sh = memo_shard st key in
  Mutex.protect sh.sh_mu (fun () -> Hashtbl.find_opt sh.sh_tbl key)

let memo_store st key r ~from_journal =
  let sh = memo_shard st key in
  Mutex.protect sh.sh_mu (fun () ->
      if not (Hashtbl.mem sh.sh_tbl key) then begin
        while Hashtbl.length sh.sh_tbl >= sh.sh_cap && Queue.length sh.sh_fifo > 0 do
          Hashtbl.remove sh.sh_tbl (Queue.pop sh.sh_fifo)
        done;
        if sh.sh_cap > 0 then begin
          Hashtbl.replace sh.sh_tbl key (r, from_journal);
          Queue.push key sh.sh_fifo
        end
      end)

let journal_append st key r =
  match st.journal_fd with
  | None -> ()
  | Some fd ->
    let line = Json.to_string (record_to_json key r) ^ "\n" in
    Mutex.protect st.journal_mu (fun () ->
        let n = String.length line in
        let written = ref 0 in
        while !written < n do
          written := !written + Unix.write_substring fd line !written (n - !written)
        done;
        (* fsync before the response goes out: a result is visible to the
           client only once it is durable, so a crash can never have
           answered something the journal does not know *)
        Unix.fsync fd)

(* --- response rendering --- *)

let render ~id fields =
  Json.to_string
    (Json.Obj
       ((match id with Some s -> [ ("id", Json.String s) ] | None -> []) @ fields))

let err_fields e =
  [ ("error", Json.String (Rwt_err.to_line e));
    ("error_class", Json.String (Rwt_err.class_name e.Rwt_err.class_));
    ("error_code", Json.String e.Rwt_err.code) ]

let ok_status = ("status", Json.String "ok")

let error_response st e =
  Atomic.incr st.c_errors;
  Obs.incr "serve.errors";
  ("status", Json.String "error") :: err_fields e

let shed_response st =
  Atomic.incr st.c_shed;
  Obs.incr "serve.shed";
  ("status", Json.String "shed")
  :: err_fields
       (Rwt_err.capacity ~code:"serve.shed"
          ~context:[ ("queue", string_of_int st.cfg.queue) ]
          "admission queue full")

(* a response from a durable record — the single rendering path for
   fresh, memoized and journal-replayed results *)
let record_response st (r, from_journal) ~cached =
  if cached then begin
    Atomic.incr st.c_cache_hits;
    Obs.incr "serve.cache_hits";
    if from_journal then begin
      Atomic.incr st.c_replayed;
      Obs.incr "serve.journal_replays"
    end
  end;
  match r.rec_status with
  | "ok" ->
    Atomic.incr st.c_ok;
    Obs.incr "serve.ok";
    (ok_status
     :: (opt_field "period" (fun p -> Json.String (Rat.to_string p)) r.rec_period
         @ opt_field "period_float" (fun p -> Json.Float (Rat.to_float p)) r.rec_period
         @ opt_field "throughput_float"
             (fun p -> Json.Float (Rat.to_float (Rat.inv p)))
             (match r.rec_period with
              | Some p when not (Rat.is_zero p) -> Some p
              | _ -> None)
         @
         match r.rec_degraded with
         | None -> []
         | Some why ->
           [ ("degraded", Json.Bool true); ("degraded_reason", Json.String why) ]))
  | "timeout" ->
    Atomic.incr st.c_timeouts;
    Obs.incr "serve.timeouts";
    [ ("status", Json.String "timeout") ]
  | _ ->
    error_response st
      (match r.rec_error with
       | Some e -> e
       | None -> Rwt_err.internal ~code:"internal.journal" "journaled error lost")

(* --- worker-side evaluation --- *)

let timeout_record =
  { rec_status = "timeout"; rec_period = None; rec_degraded = None; rec_error = None }

let analyze_response st (a : analyze) ~t_admit =
  match load_source a.source with
  | Error e -> error_response st e
  | Ok inst ->
    let deadline_ms =
      match a.deadline_ms with Some _ as d -> d | None -> st.cfg.default_deadline_ms
    in
    let transition_cap =
      match a.transition_cap with
      | Some _ as c -> c
      | None -> st.cfg.default_transition_cap
    in
    let key = canonical_key inst a.model a.method_ transition_cap deadline_ms in
    (match memo_find st key with
     | Some entry -> record_response st entry ~cached:true
     | None ->
       let deadline =
         Option.map
           (fun ms ->
             let d = t_admit +. (float_of_int ms /. 1000.0) in
             fun () -> Unix.gettimeofday () >= d)
           deadline_ms
       in
       let r =
         if match deadline with Some f -> f () | None -> false then
           (* the budget expired while the request sat in the queue *)
           timeout_record
         else
           match
             Rwt_err.catch (fun () ->
                 eval_period ?transition_cap ?deadline a.model a.method_ inst)
           with
           | Ok (p, degraded) ->
             { rec_status = "ok"; rec_period = Some p; rec_degraded = degraded;
               rec_error = None }
           | Error { Rwt_err.class_ = Timeout; _ } -> timeout_record
           | Error e ->
             { rec_status = "error"; rec_period = None; rec_degraded = None;
               rec_error = Some e }
       in
       if durable r then begin
         journal_append st key r;
         memo_store st key r ~from_journal:false
       end;
       record_response st (r, false) ~cached:false)

(* ordered delivery: responses are written strictly in request order per
   connection, whatever order the workers finish in. Only this function
   (and the final close sweep, under the same mutex) touches the write
   side of a connection. *)
let deliver conn seq line =
  Mutex.protect conn.wmu (fun () ->
      Hashtbl.replace conn.pending seq line;
      let rec flush () =
        match Hashtbl.find_opt conn.pending conn.next_write with
        | None -> ()
        | Some l ->
          Hashtbl.remove conn.pending conn.next_write;
          conn.next_write <- conn.next_write + 1;
          (if conn.alive then
             try
               let out = l ^ "\n" in
               let n = String.length out in
               let written = ref 0 in
               while !written < n do
                 written :=
                   !written + Unix.write_substring conn.fd out !written (n - !written)
               done
             with Unix.Unix_error _ | Sys_error _ ->
               conn.alive <- false;
               Obs.incr "serve.write_failures");
          flush ()
      in
      flush ())

let handle_task st task =
  let response =
    match
      Rwt_err.catch (fun () ->
          Obs.with_span "serve.request" (fun () ->
              match task.t_kind with
              | Echo payload ->
                Atomic.incr st.c_ok;
                Obs.incr "serve.ok";
                ok_status :: opt_field "payload" Fun.id payload
              | Analyze a -> analyze_response st a ~t_admit:task.t_admit
              | Metrics _ | Health | Shutdown -> assert false))
    with
    | Ok fields -> fields
    | Error e -> error_response st e
  in
  Atomic.decr st.outstanding;
  Obs.observe "serve.request_latency_s" (Unix.gettimeofday () -. task.t_admit);
  deliver task.t_conn task.t_seq (render ~id:task.t_id response)

(* --- accept-loop request handling --- *)

let health_response st =
  Atomic.incr st.c_ok;
  Obs.incr "serve.ok";
  [ ok_status;
    ( "health",
      Json.Obj
        [ ("accepting", Json.Bool (not (Atomic.get st.stop_flag)));
          ("workers", Json.Int st.eff_workers);
          ("queue", Json.Int st.cfg.queue);
          ("outstanding", Json.Int (Atomic.get st.outstanding));
          ("conns", Json.Int st.live_conns);
          ("requests", Json.Int (Atomic.get st.c_requests));
          ("shed", Json.Int (Atomic.get st.c_shed));
          ("recovered", Json.Int st.recovered);
          ("uptime_s", Json.Float (Unix.gettimeofday () -. st.t_start)) ] ) ]

let metrics_response st fmt =
  Atomic.incr st.c_ok;
  Obs.incr "serve.ok";
  match fmt with
  | `Prometheus ->
    [ ok_status;
      ("content_type", Json.String Obs.prometheus_content_type);
      ("metrics", Json.String (Obs.prometheus ())) ]
  | `Json -> [ ok_status; ("metrics", Obs.metrics_json ()) ]

let handle_line st conn line =
  let line =
    (* tolerate CRLF clients *)
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
  in
  if String.trim line = "" then ()
  else begin
    let seq = conn.next_seq in
    conn.next_seq <- seq + 1;
    Atomic.incr st.c_requests;
    Obs.incr "serve.requests";
    if String.length line > st.cfg.max_line then
      deliver conn seq
        (render ~id:None
           (error_response st
              (Rwt_err.capacity ~code:"serve.line_bytes"
                 ~context:[ ("max", string_of_int st.cfg.max_line) ]
                 "request line too long")))
    else
      match parse_request line with
      | Error e -> deliver conn seq (render ~id:None (error_response st e))
      | Ok { id; kind } ->
        (match kind with
         | Health -> deliver conn seq (render ~id (health_response st))
         | Metrics fmt -> deliver conn seq (render ~id (metrics_response st fmt))
         | Shutdown ->
           if st.cfg.allow_shutdown then begin
             Atomic.incr st.c_ok;
             Obs.incr "serve.ok";
             deliver conn seq
               (render ~id [ ok_status; ("stopping", Json.Bool true) ]);
             stop st.stop_flag
           end
           else
             deliver conn seq
               (render ~id
                  (error_response st
                     (Rwt_err.validate ~code:"validate.shutdown"
                        "shutdown requests are disabled (start with --allow-shutdown)")))
         | Echo _ | Analyze _ ->
           (* admission control: bound the outstanding (queued + running)
              work; beyond the cap the daemon answers immediately with a
              typed shed response instead of queueing without bound *)
           if Atomic.get st.outstanding >= st.cfg.queue then
             deliver conn seq (render ~id (shed_response st))
           else begin
             Atomic.incr st.outstanding;
             Obs.sample "serve.outstanding"
               (float_of_int (Atomic.get st.outstanding));
             let task =
               { t_conn = conn; t_seq = seq; t_id = id; t_kind = kind;
                 t_admit = Unix.gettimeofday () }
             in
             let submitted =
               match st.svc with Some svc -> Rwt_pool.submit svc task | None -> false
             in
             if not submitted then begin
               Atomic.decr st.outstanding;
               deliver conn seq (render ~id (shed_response st))
             end
           end)
  end

let handle_readable st conn =
  let chunk = Bytes.create 65536 in
  match Unix.read conn.fd chunk 0 65536 with
  | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    ()
  | exception Unix.Unix_error (_, _, _) -> conn.eof <- true
  | 0 -> conn.eof <- true
  | k ->
    let data = conn.inbuf ^ Bytes.sub_string chunk 0 k in
    let rec consume s =
      match String.index_opt s '\n' with
      | Some i ->
        let line = String.sub s 0 i in
        let rest = String.sub s (i + 1) (String.length s - i - 1) in
        if conn.skipping then conn.skipping <- false
        else handle_line st conn line;
        consume rest
      | None ->
        if (not conn.skipping) && String.length s > st.cfg.max_line then begin
          (* oversized line still in flight: answer now, then discard
             bytes until its newline so one hostile line cannot make the
             daemon buffer without bound *)
          conn.skipping <- true;
          let seq = conn.next_seq in
          conn.next_seq <- seq + 1;
          Atomic.incr st.c_requests;
          Obs.incr "serve.requests";
          deliver conn seq
            (render ~id:None
               (error_response st
                  (Rwt_err.capacity ~code:"serve.line_bytes"
                     ~context:[ ("max", string_of_int st.cfg.max_line) ]
                     "request line too long")))
        end;
        conn.inbuf <- (if conn.skipping then "" else s)
    in
    consume data

(* --- listeners --- *)

let listen_unix path =
  (if Sys.file_exists path then begin
     match (Unix.stat path).Unix.st_kind with
     | Unix.S_SOCK ->
       (* stale socket from a crashed daemon, or a live one? Probe it. *)
       let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
       let live =
         try
           Unix.connect probe (Unix.ADDR_UNIX path);
           true
         with Unix.Unix_error _ -> false
       in
       (try Unix.close probe with Unix.Unix_error _ -> ());
       if live then
         Rwt_err.raise_
           (Rwt_err.validate ~code:"serve.addr_in_use"
              ~context:[ ("socket", path) ]
              "a daemon is already listening on this socket");
       (try Unix.unlink path with Unix.Unix_error _ -> ())
     | _ ->
       Rwt_err.raise_
         (Rwt_err.validate ~code:"serve.addr_in_use"
            ~context:[ ("socket", path) ]
            "path exists and is not a socket")
   end);
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 128;
  fd

let listen_tcp host port =
  let inet =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
        Rwt_err.raise_
          (Rwt_err.validate ~code:"serve.addr" ("unknown host " ^ host))
      | h -> h.Unix.h_addr_list.(0))
  in
  let fd = Unix.socket ~cloexec:true (Unix.domain_of_sockaddr (Unix.ADDR_INET (inet, port))) Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (inet, port));
  Unix.listen fd 128;
  let bound =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> port
  in
  (fd, bound)

(* --- the daemon --- *)

let run_exn ?on_ready cfg =
  if cfg.socket = None && cfg.tcp = None then
    Rwt_err.raise_
      (Rwt_err.validate ~code:"validate.serve"
         "rwt serve needs a listener: --socket PATH and/or --tcp [HOST:]PORT");
  (* the daemon is an always-observable process: metrics/health requests
     must answer even when the operator passed no --metrics flag *)
  if not (Obs.enabled ()) then Obs.enable ();
  (* precedence: explicit --workers > RWT_WORKERS > hardware auto *)
  let eff_workers =
    if cfg.workers > 0 then min 128 cfg.workers
    else
      match Rwt_pool.env_workers () with
      | Some w -> w
      | None -> min 128 (Rwt_pool.recommended ())
  in
  let recovered_records =
    match cfg.journal with
    | None -> []
    | Some path ->
      if Sys.file_exists path then (
        match journal_load path with Ok rs -> rs | Error e -> Rwt_err.raise_ e)
      else []
  in
  let st =
    { cfg; eff_workers; stop_flag = Atomic.make false;
      t_start = Unix.gettimeofday (); recovered = List.length recovered_records;
      outstanding = Atomic.make 0;
      memo_shards = memo_make_shards ~cap:(max 0 cfg.memo_cap);
      journal_mu = Mutex.create (); journal_fd = None; svc = None;
      live_conns = 0; c_requests = Atomic.make 0; c_ok = Atomic.make 0;
      c_errors = Atomic.make 0; c_timeouts = Atomic.make 0;
      c_shed = Atomic.make 0; c_cache_hits = Atomic.make 0;
      c_replayed = Atomic.make 0; c_conns = Atomic.make 0 }
  in
  List.iter
    (fun (key, r) -> memo_store st key r ~from_journal:true)
    recovered_records;
  (match cfg.journal with
   | None -> ()
   | Some path ->
     let fresh = not (Sys.file_exists path) || st.recovered = 0 in
     let fd =
       Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
     in
     if fresh && (Unix.fstat fd).Unix.st_size = 0 then begin
       let header =
         Json.to_string (Json.Obj [ ("schema", Json.String journal_schema) ]) ^ "\n"
       in
       ignore (Unix.write_substring fd header 0 (String.length header));
       Unix.fsync fd
     end;
     st.journal_fd <- Some fd);
  (* listeners before workers: once [on_ready] fires, a connect succeeds *)
  let unix_listener = Option.map listen_unix cfg.socket in
  let tcp_listener = Option.map (fun (h, p) -> listen_tcp h p) cfg.tcp in
  (match (tcp_listener, cfg.port_file) with
   | Some (_, port), Some path ->
     let oc = open_out path in
     output_string oc (string_of_int port ^ "\n");
     close_out oc
   | _ -> ());
  let addr =
    String.concat ", "
      ((match cfg.socket with Some p -> [ "unix:" ^ p ] | None -> [])
       @
       match (tcp_listener, cfg.tcp) with
       | Some (_, port), Some (host, _) ->
         [ Printf.sprintf "tcp:%s:%d" host port ]
       | _ -> [])
  in
  st.svc <-
    Some
      (Rwt_pool.service ~workers:eff_workers ~queue_cap:max_int ~name:"serve"
         (handle_task st));
  (match on_ready with
   | Some f ->
     f { control = st.stop_flag; addr; eff_workers; recovered = st.recovered }
   | None -> ());
  let listener_fds =
    (match unix_listener with Some fd -> [ fd ] | None -> [])
    @ match tcp_listener with Some (fd, _) -> [ fd ] | None -> []
  in
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
  let accept_conn lfd =
    match Unix.accept ~cloexec:true lfd with
    | exception
        Unix.Unix_error
          ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNABORTED), _, _)
      ->
      ()
    | fd, _ ->
      if Hashtbl.length conns >= cfg.max_conns then begin
        Obs.incr "serve.conn_rejects";
        let line =
          render ~id:None
            (("status", Json.String "shed")
             :: err_fields
                  (Rwt_err.capacity ~code:"serve.conns"
                     ~context:[ ("max", string_of_int cfg.max_conns) ]
                     "connection limit reached"))
          ^ "\n"
        in
        (try ignore (Unix.write_substring fd line 0 (String.length line))
         with Unix.Unix_error _ -> ());
        try Unix.close fd with Unix.Unix_error _ -> ()
      end
      else begin
        (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO cfg.write_timeout_s
         with Invalid_argument _ | Unix.Unix_error _ -> ());
        Atomic.incr st.c_conns;
        Hashtbl.replace conns fd
          { fd; inbuf = ""; wmu = Mutex.create (); next_seq = 0; next_write = 0;
            pending = Hashtbl.create 4; alive = true; eof = false;
            skipping = false };
        st.live_conns <- Hashtbl.length conns;
        Obs.sample "serve.conns" (float_of_int st.live_conns)
      end
  in
  let sweep_closed () =
    let closable =
      Hashtbl.fold
        (fun fd c acc ->
          let flushed = Mutex.protect c.wmu (fun () -> c.next_write >= c.next_seq) in
          if (c.eof || not c.alive) && flushed then (fd, c) :: acc else acc)
        conns []
    in
    List.iter
      (fun (fd, c) ->
        Mutex.protect c.wmu (fun () ->
            c.alive <- false;
            try Unix.close fd with Unix.Unix_error _ -> ());
        Hashtbl.remove conns fd)
      closable;
    st.live_conns <- Hashtbl.length conns
  in
  let draining = ref false in
  let rec loop () =
    if Atomic.get st.stop_flag && not !draining then begin
      draining := true;
      (* stop accepting and stop reading: drain what was admitted *)
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) listener_fds;
      (match cfg.socket with
       | Some path -> ( try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
       | None -> ());
      Hashtbl.iter (fun _ c -> c.eof <- true) conns
    end;
    sweep_closed ();
    if !draining then begin
      if Atomic.get st.outstanding > 0 || Hashtbl.length conns > 0 then begin
        Unix.sleepf 0.02;
        loop ()
      end
    end
    else begin
      let rfds =
        listener_fds
        @ Hashtbl.fold (fun fd c acc -> if c.eof then acc else fd :: acc) conns []
      in
      match Unix.select rfds [] [] 0.25 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | readable, _, _ ->
        List.iter
          (fun fd ->
            if List.memq fd listener_fds then accept_conn fd
            else
              match Hashtbl.find_opt conns fd with
              | Some c -> handle_readable st c
              | None -> ())
          readable;
        loop ()
    end
  in
  loop ();
  (match st.svc with Some svc -> Rwt_pool.shutdown ~drain:true svc | None -> ());
  (match st.journal_fd with
   | Some fd -> (try Unix.close fd with Unix.Unix_error _ -> ())
   | None -> ());
  stats_of st

let run ?on_ready cfg = Rwt_err.catch (fun () -> run_exn ?on_ready cfg)

(* --- client --- *)

module Client = struct
  type addr = Unix_sock of string | Tcp of string * int

  let connect addr =
    let mk () =
      match addr with
      | Unix_sock path ->
        let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (fd, Unix.ADDR_UNIX path, [ ("socket", path) ])
      | Tcp (host, port) ->
        let inet =
          try Unix.inet_addr_of_string host
          with Failure _ -> (
            match Unix.gethostbyname host with
            | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
              Rwt_err.raise_
                (Rwt_err.validate ~code:"serve.addr" ("unknown host " ^ host))
            | h -> h.Unix.h_addr_list.(0))
        in
        let sockaddr = Unix.ADDR_INET (inet, port) in
        let fd =
          Unix.socket ~cloexec:true (Unix.domain_of_sockaddr sockaddr)
            Unix.SOCK_STREAM 0
        in
        (fd, sockaddr, [ ("host", host); ("port", string_of_int port) ])
    in
    match mk () with
    | exception Rwt_err.Error e -> Error e
    | fd, sockaddr, context -> (
      try
        Unix.connect fd sockaddr;
        Ok fd
      with Unix.Unix_error (err, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error
          (Rwt_err.internal ~code:"serve.connect" ~context
             ("cannot connect: " ^ Unix.error_message err)))

  let is_shed line =
    match Json.of_string line with
    | Ok (Json.Obj fields) ->
      List.assoc_opt "status" fields = Some (Json.String "shed")
    | _ -> false

  let request_lines ?(retries = 0) ?(backoff_ms = 100.0) ?(seed = 0) addr lines =
    let lines = Array.of_list lines in
    let n = Array.length lines in
    let answers : string option array = Array.make n None in
    let bo = Backoff.create ~base_ms:backoff_ms ~seed () in
    let budget = ref retries in
    let last_err = ref None in
    let answered () =
      Array.fold_left (fun k a -> if a = None then k else k + 1) 0 answers
    in
    let disconnected why =
      last_err :=
        Some
          (Rwt_err.internal ~code:"serve.disconnected"
             ~context:
               [ ("got", string_of_int (answered ())); ("want", string_of_int n) ]
             why)
    in
    let round () =
      let idxs = ref [] in
      Array.iteri (fun i a -> if a = None then idxs := i :: !idxs) answers;
      let idxs = List.rev !idxs in
      match connect addr with
      | Error e -> last_err := Some e
      | Ok fd ->
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            let buf = Buffer.create 256 in
            List.iter
              (fun i ->
                Buffer.add_string buf lines.(i);
                Buffer.add_char buf '\n')
              idxs;
            let out = Buffer.contents buf in
            match
              let len = String.length out in
              let written = ref 0 in
              while !written < len do
                written :=
                  !written + Unix.write_substring fd out !written (len - !written)
              done;
              (* half-close: tells the daemon this stream is complete, so
                 it can retire the connection once every response is out *)
              try Unix.shutdown fd Unix.SHUTDOWN_SEND
              with Unix.Unix_error _ -> ()
            with
            | exception (Unix.Unix_error _ | Sys_error _) ->
              disconnected "daemon connection lost while sending"
            | () -> (
              let ic = Unix.in_channel_of_descr fd in
              try
                List.iter
                  (fun i ->
                    let line = input_line ic in
                    answers.(i) <- Some line)
                  idxs
              with End_of_file | Sys_error _ ->
                disconnected "connection closed by daemon before all responses"))
    in
    let complete () = Array.for_all Option.is_some answers in
    let partial () =
      let rec prefix i acc =
        if i >= n then List.rev acc
        else
          match answers.(i) with
          | Some l -> prefix (i + 1) (l :: acc)
          | None -> List.rev acc
      in
      prefix 0 []
    in
    let rec go () =
      round ();
      (* while budget remains, shed responses are provisional: forget them
         so the next round re-submits (results are memoized server-side,
         so re-submission is idempotent) *)
      if !budget > 0 then
        Array.iteri
          (fun i a ->
            match a with
            | Some l when is_shed l -> answers.(i) <- None
            | _ -> ())
          answers;
      if complete () then Ok (Array.to_list (Array.map Option.get answers))
      else if !budget > 0 then begin
        decr budget;
        Unix.sleepf (Backoff.next_ms bo /. 1000.0);
        go ()
      end
      else
        Error
          ( (match !last_err with
             | Some e -> e
             | None ->
               Rwt_err.internal ~code:"serve.incomplete"
                 "not every request was answered"),
            partial () )
    in
    if n = 0 then Ok [] else go ()
end
