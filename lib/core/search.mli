(** Multi-criteria mapping search: Pareto fronts over period, latency and
    reliability.

    The paper computes the period of a {e given} mapping; its companion
    literature — {e Multi-criteria scheduling of pipeline workflows}
    (Benoit, Rehn-Sonigo & Robert 2007) and {e Optimizing Latency and
    Reliability of Pipeline Workflow Applications} (2008) — searches the
    mapping space under several objectives at once. This module is that
    search engine, built on the exact evaluators of this repository:

    - {b period} (minimized): the exact steady-state period — OVERLAP via
      Theorem 1 ({!Poly_overlap}), STRICT via warm-started {!Delta}
      sessions over the fused TPN graph;
    - {b latency} (minimized): the worst steady-state latency under
      critical-load periodic admission ({!Latency.analyze}, reusing the
      period already computed so no candidate is solved twice);
    - {b reliability} (maximized): the mapping's success probability over
      its replica sets ({!Reliability}), driven by
      {!Rwt_workflow.Platform.failure_rate}.

    Two tiers share one Pareto archive:

    - {b exact}: exhaustive enumeration of every valid assignment (each
      stage a nonempty, pairwise-disjoint replica set in ascending
      round-robin order) with Mct-style lower-bound pruning — a subtree is
      cut only when an already-found front member weakly dominates the
      subtree's ideal objective vector, so the returned front is {e
      certified identical} to brute-force enumeration (assignments
      included, asserted by the test suite and the search bench);
    - {b heuristic}: replication-sweep start points (greedy one-per-stage,
      per-stage full replication, work-proportional allocation) followed by
      scalarized local-search walks over the {!Optimize} move set, each
      walk feeding every scored candidate into the archive.

    Candidate batches are scored on the shared {!Rwt_pool} — contiguous
    chunks (exact tier) or whole walks (heuristic tier) per pool task, each
    task owning a private {!Delta} session so STRICT scoring warm-starts —
    which is how tens of thousands of mappings are evaluated in one run.
    Results are deterministic in [seed] and independent of the worker
    count.

    Counters/spans: [search.candidates], [search.pruned],
    [search.front_size], [search.score], [search.walk]. *)

open Rwt_util
open Rwt_workflow

type objectives = {
  period : Rat.t;  (** exact steady-state period (minimized) *)
  latency : Rat.t;  (** worst steady-state latency at critical load (minimized) *)
  reliability : Rat.t;  (** success probability over replica sets (maximized) *)
}

val dominates : objectives -> objectives -> bool
(** [dominates a b]: [a] is no worse on all three objectives and strictly
    better on at least one. *)

type member = {
  assignment : int array array;  (** replica sets, ascending round-robin order *)
  m : int;  (** [lcm(m_i)] of the assignment *)
  objectives : objectives;
  dominated : int;
      (** how many scored candidates this member was seen to dominate
          (informational: candidates pruned before scoring are not
          counted) *)
}

type tier = Exact | Heuristic

type outcome = {
  front : member list;
      (** the non-dominated front, sorted by period, then latency, then
          decreasing reliability *)
  tier : tier;
  candidates : int;  (** candidates actually scored *)
  pruned : int;  (** exact tier: subtrees cut by the lower bound *)
  skipped : int;  (** candidates rejected before scoring ([m_cap], arity) *)
  space : float;  (** size of the full assignment space (saturating) *)
  complete : bool;
      (** exact tier ran to exhaustion (false when [deadline] fired);
          always true for an undisturbed heuristic run *)
}

val space_size : n_stages:int -> p:int -> float
(** Number of valid assignments of [p] processors to [n_stages] stages
    (every stage a nonempty subset, subsets disjoint, idle processors
    allowed): [sum_{u} C(p,u) · Surj(u, n)]. Computed in floating point and
    saturating, so it is safe on astronomically large spaces. *)

val search :
  ?seed:int ->
  ?tier:[ `Auto | `Exact | `Heuristic ] ->
  ?sweeps:int ->
  ?iterations:int ->
  ?m_cap:int ->
  ?exact_budget:int ->
  ?transition_cap:int ->
  ?deadline:(unit -> bool) ->
  ?workers:int ->
  Comm_model.t ->
  Pipeline.t ->
  Platform.t ->
  (outcome, Rwt_err.t) Stdlib.result
(** Run the search on the given pipeline/platform (any mapping the caller
    holds is ignored — finding mappings is the point).

    [tier] defaults to [`Auto]: exact when {!space_size} is at most
    [exact_budget] (default 20000) and [p <= 30], heuristic otherwise.
    [sweeps] (default 8) is the number of heuristic walks, [iterations]
    (default 400) the moves per walk; both are ignored by the exact tier.
    Candidates whose [lcm(m_i)] exceeds [m_cap] (default 64 — tighter than
    {!Optimize}'s 720 because every candidate here is also
    latency-simulated over [max(40·m, 200)] data sets) are excluded from
    the candidate space of {e both} tiers (and of {!brute_force}, so
    certification compares like with like). [transition_cap] bounds any
    STRICT TPN the scorer builds; [deadline] is polled between candidates
    and threaded into every solver — when it fires, the search stops and
    returns the front found so far with [complete = false], or a typed
    [Timeout] error if nothing was scored yet. [workers] caps the pool
    fan-out (default: the machine's recommended domain count).

    Errors: class [Validate] (code ["validate.search"]) when the platform
    has fewer processors than stages, or when [`Exact] is forced on a
    platform with more than 30 processors. *)

val brute_force :
  ?m_cap:int ->
  ?transition_cap:int ->
  ?deadline:(unit -> bool) ->
  ?workers:int ->
  Comm_model.t ->
  Pipeline.t ->
  Platform.t ->
  (outcome, Rwt_err.t) Stdlib.result
(** Exhaustive enumeration with pruning disabled — the reference the exact
    tier is certified against ([pruned = 0]; same front, same
    representatives). Exposed for the test suite and the search bench. *)

val member_to_json : member -> Json.t
(** One NDJSON front line: assignment, [m], the three objectives as exact
    rational strings plus float approximations, and the dominated count.
    Schema in [doc/SEARCH.md]. *)

val pp_outcome : Format.formatter -> outcome -> unit
(** Human-readable summary (tier, candidate/pruned counts, front table). *)
