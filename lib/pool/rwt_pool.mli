(** Shared work-stealing pool of OCaml 5 [Domain]s.

    One process-wide primitive for data-parallel fan-out over a {e static}
    task set, extracted from [Rwt_batch] so every layer (batch jobs, per-SCC
    max-cycle-ratio solves, per-component pattern solves in the polynomial
    algorithm) schedules through the same pool discipline:

    - tasks are grouped into contiguous {e chunks} (auto-sized, see
      {!chunk_size}) so queue and steal traffic is paid per chunk, not per
      task — the difference between scaling and thrashing on corpora of
      small solves;
    - per-worker bounded deques of chunks are seeded round-robin before any
      domain starts; the owner pops the front, thieves pop whole chunks off
      the back (steal granularity = one chunk), re-trying their last
      successful victim first;
    - no chunk is ever added after seeding, so "every deque is empty" is a
      sound termination test and workers simply exit;
    - nested calls run sequentially: a task that itself calls {!run} (for
      example a batch job whose solver fans out over SCCs) detects that it is
      already inside a pool worker and degrades to a plain loop instead of
      oversubscribing the machine with domains-inside-domains;
    - the first exception raised by any task is re-raised in the calling
      domain after every worker has drained (remaining tasks are abandoned,
      not silently dropped: the exception is the result).

    When {!Rwt_obs} is enabled each worker also records its lane: a
    [pool.worker] span wrapping the drain loop (one Chrome-trace lane per
    domain), a [pool.task] span per task, [pool.worker_busy_s] /
    [pool.worker_idle_s] histograms, a [pool.steal_latency_s] histogram
    (time spent hunting before a successful steal), a [pool.queue_depth]
    counter-sampled gauge, and the [pool.steals] counter. Disabled cost is
    one flag read taken before the domains spawn. *)

val recommended : unit -> int
(** [Domain.recommended_domain_count ()] — the hardware parallelism. *)

val default_workers : int ref
(** Worker count used when {!run} is called without [?workers]:
    [0] (the default) means the [RWT_WORKERS] environment variable when set
    to a positive integer, else {!recommended}; any positive value pins the
    count process-wide ([1] disables parallelism everywhere). Meant to be
    set once by the CLI / test harness before solvers run. Precedence is
    always explicit argument > {!default_workers} > [RWT_WORKERS] >
    hardware auto. *)

val env_workers : unit -> int option
(** The [RWT_WORKERS] override, if set to a positive integer (clamped to
    128). [None] when unset, malformed, or non-positive — a bad value is
    ignored, never fatal. Exposed so [rwt batch] / [rwt serve] / bench
    targets resolve the same precedence as the pool itself. *)

val resolved_default : unit -> int
(** The worker count {!run} uses when called without [?workers]:
    {!default_workers} if pinned, else {!env_workers}, else
    {!recommended}. Always [>= 1]. *)

val chunk_size : int ref
(** Scheduling granularity: tasks are submitted to the worker deques in
    contiguous chunks of this many indices, so queue and steal traffic is
    paid per chunk rather than per task. [0] (the default) auto-sizes to
    [n / (workers * 8)], clamped to [[1, 256]] — every worker still sees
    several steal-able chunks for load balancing. Pin a positive value
    only for experiments ([1] reproduces per-task submission). *)

val run : ?workers:int -> ?chunk:int -> n:int -> (int -> unit) -> unit
(** [run ~n f] evaluates [f 0 .. f (n-1)], using up to [workers] domains
    (clamped to [[1, min 128 n]]). A call with [n <= 0] returns
    immediately without allocating deques or spawning any domain.
    Sequential — in task order — when the effective worker count is 1,
    when [n <= 1], or when called from inside a pool worker. [chunk]
    overrides {!chunk_size} for this call. Tasks must be independent; any
    shared state they touch must be domain-safe. The first task exception
    is re-raised after the pool drains. *)

val map : ?workers:int -> ?chunk:int -> n:int -> (int -> 'a) -> 'a array
(** [map ~n f] is [[| f 0; ...; f (n-1) |]] computed through {!run}; the
    result order is always the task order, independent of scheduling and
    chunking. [map ~n:0 f] is [[||]] with no pool work at all. *)

(** {1 Long-lived services}

    The static pool above drains a fixed task set and exits; a daemon
    needs the dual: persistent worker domains fed by dynamic submissions.
    A {!service} keeps [workers] domains blocked on a condition variable
    over one bounded FIFO queue. Workers mark themselves as pool workers,
    so solver code they call degrades nested {!run}s to sequential loops
    exactly as in the static pool, and per-worker [Domain.DLS] state (for
    example [Rwt_core.Delta] sessions in [rwt serve]) persists across
    submissions for the life of the service. Handler exceptions are
    counted under [<name>.task_errors] and never kill a worker. *)

type 'a service

val service :
  ?workers:int -> ?queue_cap:int -> name:string -> ('a -> unit) -> 'a service
(** [service ~name handler] spawns the worker domains immediately.
    [workers] defaults to {!recommended} (clamped to [[1, 128]]);
    [queue_cap] bounds the number of {e queued} (not yet running) items —
    default unbounded. [name] prefixes the service's metrics
    ([<name>.queue_depth] samples, [<name>.task_errors],
    [<name>.dropped]). *)

val submit : 'a service -> 'a -> bool
(** Enqueue an item; [false] — the caller's load-shedding signal — when
    the service is stopping or the queue is at [queue_cap]. Never
    blocks. *)

val service_depth : _ service -> int
(** Items queued and not yet picked up. *)

val service_outstanding : _ service -> int
(** Queued plus currently running items. *)

val service_workers : _ service -> int

val shutdown : ?drain:bool -> _ service -> unit
(** Stop the service and join its domains. With [drain] (the default)
    every queued item is still handled first; with [~drain:false] the
    queue is discarded (counted under [<name>.dropped]) and only items
    already running finish. Subsequent {!submit}s return [false];
    calling {!shutdown} again is a no-op. *)
