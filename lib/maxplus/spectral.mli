(** Period of a timed event graph through its (max,+) dater equations —
    a fourth, independent computation path (next to Howard, the parametric
    solver and the token game), exercising the algebra of the paper's
    reference [2] end to end.

    Daters satisfy [x(k) = A0 ⊗ x(k) ⊕ A1 ⊗ x(k−1)] where [A0] collects the
    token-free places and [A1] the singly-marked ones. Eliminating the
    instantaneous part gives [x(k) = (A0* ⊗ A1) ⊗ x(k−1)], and the period is
    the (max,+) spectral radius of [A = A0* ⊗ A1], i.e. the maximum cycle
    mean of [A] viewed as a weighted graph.

    Cost is [O(n³)] in the number of transitions (the star), so this is a
    cross-check for small and medium nets, not a replacement for the
    polynomial algorithm. *)

open Rwt_util

val period_of_tpn : ?deadline:(unit -> bool) -> Rwt_petri.Tpn.t -> Rat.t option
(** Maximum cycle ratio of the net (equal to
    [Rwt_petri.Mcr.period_of_tpn]); [None] for acyclic nets.
    @raise Invalid_argument if some place holds more than one token (the
    nets of this repository are 1-bounded by construction; the general
    reduction would expand multi-token places first).
    @raise Failure if the net has a token-free circuit ([A0*] diverges). *)
