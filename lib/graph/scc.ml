type result = { count : int; comp : int array }

(* Iterative Tarjan. The explicit stack holds (node, out-edge cursor). *)
let tarjan g =
  let n = Digraph.num_nodes g in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let stack = ref [] in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  let succ = Array.make n [||] in
  for u = 0 to n - 1 do
    succ.(u) <- Array.of_list (List.map (fun e -> e.Digraph.dst) (Digraph.out_edges g u))
  done;
  let visit root =
    let call = ref [ (root, 0) ] in
    index.(root) <- !next_index;
    lowlink.(root) <- !next_index;
    incr next_index;
    stack := root :: !stack;
    on_stack.(root) <- true;
    while !call <> [] do
      match !call with
      | [] -> ()
      | (u, i) :: rest ->
        if i < Array.length succ.(u) then begin
          let v = succ.(u).(i) in
          call := (u, i + 1) :: rest;
          if index.(v) = -1 then begin
            index.(v) <- !next_index;
            lowlink.(v) <- !next_index;
            incr next_index;
            stack := v :: !stack;
            on_stack.(v) <- true;
            call := (v, 0) :: !call
          end
          else if on_stack.(v) then lowlink.(u) <- Stdlib.min lowlink.(u) index.(v)
        end
        else begin
          call := rest;
          (match rest with
           | (p, _) :: _ -> lowlink.(p) <- Stdlib.min lowlink.(p) lowlink.(u)
           | [] -> ());
          if lowlink.(u) = index.(u) then begin
            let continue = ref true in
            while !continue do
              match !stack with
              | [] -> continue := false
              | w :: tl ->
                stack := tl;
                on_stack.(w) <- false;
                comp.(w) <- !next_comp;
                if w = u then continue := false
            done;
            incr next_comp
          end
        end
    done
  in
  for u = 0 to n - 1 do
    if index.(u) = -1 then visit u
  done;
  { count = !next_comp; comp }

let members r =
  let buckets = Array.make r.count [] in
  for v = Array.length r.comp - 1 downto 0 do
    buckets.(r.comp.(v)) <- v :: buckets.(r.comp.(v))
  done;
  buckets

let is_trivial g r c =
  let nodes = ref [] in
  Array.iteri (fun v cv -> if cv = c then nodes := v :: !nodes) r.comp;
  match !nodes with
  | [ v ] -> not (List.exists (fun e -> e.Digraph.dst = v) (Digraph.out_edges g v))
  | _ -> false
