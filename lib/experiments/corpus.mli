(** Seeded workload corpus for the scaling benchmarks.

    Builds a deterministic set of instances across named shape families —
    each family stresses a different part of the pipeline-throughput
    machinery — and runs the exact solver over them on the shared pool
    ({!Rwt_pool}), producing one NDJSON row per instance. The exact
    periods of a corpus are pinned as committed snapshot files: any
    scheduler or solver change that alters a single answer fails
    {!check_snapshot}, whatever worker count or chunk size produced it.

    Families:
    - [Lcm_heavy] — coprime-ish replication on 3 stages, strict model:
      [m = lcm(m_i)] large relative to the processor count, the TPN
      route's worst case (transfer rows dominate).
    - [Scc_heavy] — aligned replication [k;k;k], overlap: the event graph
      splits into many similar SCCs, the per-SCC pool's best case.
    - [Wide_replication] — one wide stage feeding a singleton.
    - [Long_chain] — 6–14 unreplicated stages, strict: long dependency
      chains, [m = 1].
    - [Mixed] — random instances from {!Generator}, both models. *)

open Rwt_util
open Rwt_workflow

type family = Lcm_heavy | Scc_heavy | Wide_replication | Long_chain | Mixed

val all_families : family list
val family_name : family -> string

type tier = Tiny | Standard | Full
(** Corpus size: [Tiny] (tests, CI smoke), [Standard] (default bench),
    [Full] (a few thousand instances). *)

val tier_name : tier -> string
val tier_of_string : string -> tier option

val per_family : tier -> int
(** Instances generated per family at this tier. *)

type entry = {
  id : string;  (** ["<family>-<index>"], stable across runs *)
  family : family;
  model : Comm_model.t;
  instance : Instance.t;
}

val build : ?seed:int -> tier -> entry array
(** Deterministic in [seed] (default 2009); entries are ordered by family
    then index, and each instance depends only on [(seed, family, index)]. *)

type kernel = Screened | Exact_howard
(** Solver kernel for {!run}: float-screened certified exact (the
    production default) or pure exact Howard. Results are Rat-identical;
    only the wall time differs. *)

val kernel_name : kernel -> string

type row = {
  rid : string;
  rfamily : string;
  rmodel : string;
  rm : int;  (** lcm of the replication vector *)
  rperiod : Rat.t;  (** exact period per data set *)
}

val run : ?workers:int -> ?chunk:int -> kernel:kernel -> entry array -> row array
(** Solve every entry ([Rwt_core.Exact.period_exn]) on the shared pool;
    the result array is in entry order at any worker count or chunk size.
    Flips [Mcr.screen_enabled] for the duration according to [kernel] and
    restores it. *)

val row_to_ndjson : row -> string
(** One JSON object, no trailing newline. *)

val to_ndjson : row array -> string
(** Newline-terminated NDJSON, rows in array order — the byte-exact
    payload pinned by snapshots. *)

val write_snapshot : path:string -> row array -> unit

val check_snapshot : path:string -> row array -> (unit, string) result
(** [Error] carries the first differing line (committed vs computed). *)
