open Rwt_util
open Rwt_workflow

let event_fields ev =
  let open Schedule in
  let base =
    [ ("dataset", Json.Int ev.dataset);
      ("start", Json.String (Rat.to_string ev.start));
      ("finish", Json.String (Rat.to_string ev.finish));
      ("start_s", Json.Float (Rat.to_float ev.start));
      ("finish_s", Json.Float (Rat.to_float ev.finish)) ]
  in
  match ev.op with
  | Compute { stage; proc } ->
    ("kind", Json.String "compute") :: ("stage", Json.Int stage)
    :: ("proc", Json.Int proc) :: base
  | Transfer { file; src; dst } ->
    ("kind", Json.String "transfer") :: ("file", Json.Int file)
    :: ("src", Json.Int src) :: ("dst", Json.Int dst) :: base

let to_json ?(pretty = false) sched =
  let events = List.map (fun ev -> Json.Obj (event_fields ev)) (Schedule.events sched) in
  Json.to_string ~pretty
    (Json.Obj
       [ ("instance", Json.String (Schedule.instance sched).Instance.name);
         ("model", Json.String (Comm_model.to_string (Schedule.model sched)));
         ("datasets", Json.Int (Schedule.horizon sched));
         ("events", Json.List events) ])

let to_csv sched =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "dataset,kind,index,proc,src,dst,start,finish,start_float,finish_float\n";
  List.iter
    (fun ev ->
      let open Schedule in
      let line =
        match ev.op with
        | Compute { stage; proc } ->
          Printf.sprintf "%d,compute,%d,%d,,,%s,%s,%.9g,%.9g" ev.dataset stage proc
            (Rat.to_string ev.start) (Rat.to_string ev.finish) (Rat.to_float ev.start)
            (Rat.to_float ev.finish)
        | Transfer { file; src; dst } ->
          Printf.sprintf "%d,transfer,%d,,%d,%d,%s,%s,%.9g,%.9g" ev.dataset file src dst
            (Rat.to_string ev.start) (Rat.to_string ev.finish) (Rat.to_float ev.start)
            (Rat.to_float ev.finish)
      in
      Buffer.add_string buf line;
      Buffer.add_char buf '\n')
    (Schedule.events sched);
  Buffer.contents buf
