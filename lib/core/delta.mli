(** Incremental period evaluation for sweep-shaped workloads.

    Every sweep in this repo — {!Sensitivity.analyze}, calibration,
    replication sweeps, {!Optimize.local_search} — evaluates long chains of
    instances that differ from their predecessor in a single parameter.
    A delta session exploits that the fused graph's topology (arc endpoints,
    token counts, arc order) depends only on [(model, n_stages, replication
    vector)]: when a new instance shares those with the previous one
    ({!Tpn_graph.shape_compatible}), its firing times are patched onto the
    cached graph in place ({!Tpn_graph.patch_exn}) and the MCR is re-solved
    through {!Rwt_petri.Mcr.session_resolve} — reusing the liveness check,
    the SCC decomposition and the CSR contexts, and warm-starting Howard
    from the previously settled policy. When the shape differs the session
    falls back to a cold build + solve and re-arms on the new skeleton.

    The warm path is Rat-identical to a cold solve: Howard's fixed point is
    self-certifying regardless of its starting policy, and the screened
    solver certifies its candidate with one exact positive-cycle pass.
    Asserted by the [incr] bench target and a qcheck property.

    Counters: [delta.patch_hits], [delta.cold_fallbacks],
    [delta.warmstart_rounds_saved] (plus per-session {!stats}). *)

open Rwt_workflow

type t
(** A session: one communication model, one cached graph skeleton. *)

val enabled : bool ref
(** When [false] (CLI [--no-delta]) every call takes the cold path, without
    counting a fallback. Default [true]. *)

val create : ?transition_cap:int -> Comm_model.t -> t
(** A fresh session; the first {!period_exn} call performs a cold solve. *)

val period_exn : ?deadline:(unit -> bool) -> t -> Instance.t -> Rwt_util.Rat.t
(** The instance's exact period — equal to
    [(Exact.period_exn model inst).period] — via the patch path when the
    instance is shape-compatible with the cached skeleton, via a cold
    rebuild otherwise.
    @raise Invalid_argument if the net has no circuit;
    [Rwt_util.Rwt_err.Error] on cap/timeout, as {!Exact.period_exn}. *)

val period :
  ?deadline:(unit -> bool) -> t -> Instance.t ->
  (Rwt_util.Rat.t, Rwt_util.Rwt_err.t) result
(** Result shim for {!period_exn}. *)

type stats = { patch_hits : int; cold_fallbacks : int; rounds_saved : int }

val stats : t -> stats
(** Per-session counts: patched evaluations, shape-mismatch cold fallbacks
    (the first, unavoidable cold solve is not counted), and Howard policy
    rounds saved by warm starts versus the session's cold baseline. *)
