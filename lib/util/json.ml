type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Number of string
  | String of string
  | List of t list
  | Obj of (string * t) list

let number s =
  let ok =
    let n = String.length s in
    let i = ref 0 in
    let digits () =
      let start = !i in
      while !i < n && s.[!i] >= '0' && s.[!i] <= '9' do incr i done;
      !i > start
    in
    if !i < n && s.[!i] = '-' then incr i;
    digits ()
    && (if !i < n && s.[!i] = '.' then begin incr i; digits () end else true)
    && (if !i < n && (s.[!i] = 'e' || s.[!i] = 'E') then begin
          incr i;
          if !i < n && (s.[!i] = '+' || s.[!i] = '-') then incr i;
          digits ()
        end
        else true)
    && !i = n
  in
  if ok then Number s else invalid_arg ("Json.number: malformed literal " ^ s)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* JSON has no literal for nan/±infinity (RFC 8259 §6): serialize them as
   null rather than raising or emitting a bare NaN that no conforming
   parser (including [of_string] below) would accept back. *)
let float_literal f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else if Float.is_finite f then Printf.sprintf "%.17g" f
  else "null"

(* --- parser ---

   Recursive descent over the RFC 8259 grammar. Numbers without fraction or
   exponent that fit a native int parse to [Int]; every other number parses
   to [Float]. [\uXXXX] escapes are decoded to UTF-8 (surrogate pairs
   included). Depth is capped so adversarial input cannot blow the stack. *)

exception Parse_error of int * string

type pos_error = { offset : int; line : int; col : int; reason : string }

(* 1-based line and column of a byte offset, for error reporting *)
let line_col s offset =
  let offset = min offset (String.length s) in
  let line = ref 1 and bol = ref 0 in
  for i = 0 to offset - 1 do
    if s.[i] = '\n' then begin
      Stdlib.incr line;
      bol := i + 1
    end
  done;
  (!line, offset - !bol + 1)

let max_depth = 512

let of_string_pos s =
  let n = String.length s in
  let pos = ref 0 in
  let err msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      Stdlib.incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then Stdlib.incr pos
    else err (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else err (Printf.sprintf "expected %s" word)
  in
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then err "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> err "bad hex digit in \\u escape"
      in
      v := (!v * 16) + d;
      Stdlib.incr pos
    done;
    !v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then err "unterminated string";
      match s.[!pos] with
      | '"' -> Stdlib.incr pos
      | '\\' ->
        Stdlib.incr pos;
        if !pos >= n then err "unterminated escape";
        (match s.[!pos] with
         | '"' -> Buffer.add_char buf '"'; Stdlib.incr pos
         | '\\' -> Buffer.add_char buf '\\'; Stdlib.incr pos
         | '/' -> Buffer.add_char buf '/'; Stdlib.incr pos
         | 'b' -> Buffer.add_char buf '\b'; Stdlib.incr pos
         | 'f' -> Buffer.add_char buf '\012'; Stdlib.incr pos
         | 'n' -> Buffer.add_char buf '\n'; Stdlib.incr pos
         | 'r' -> Buffer.add_char buf '\r'; Stdlib.incr pos
         | 't' -> Buffer.add_char buf '\t'; Stdlib.incr pos
         | 'u' ->
           Stdlib.incr pos;
           let cp = hex4 () in
           let cp =
             if cp >= 0xD800 && cp <= 0xDBFF
                && !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
             then begin
               pos := !pos + 2;
               let lo = hex4 () in
               if lo >= 0xDC00 && lo <= 0xDFFF then
                 0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
               else err "unpaired surrogate"
             end
             else cp
           in
           add_utf8 buf cp
         | _ -> err "unknown escape");
        go ()
      | c when Char.code c < 0x20 -> err "raw control character in string"
      | c ->
        Buffer.add_char buf c;
        Stdlib.incr pos;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then Stdlib.incr pos;
    let digits () =
      let d0 = !pos in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do Stdlib.incr pos done;
      if !pos = d0 then err "malformed number"
    in
    digits ();
    let fractional = peek () = Some '.' in
    if fractional then begin Stdlib.incr pos; digits () end;
    let exponent = match peek () with Some ('e' | 'E') -> true | _ -> false in
    if exponent then begin
      Stdlib.incr pos;
      (match peek () with Some ('+' | '-') -> Stdlib.incr pos | _ -> ());
      digits ()
    end;
    let lit = String.sub s start (!pos - start) in
    if (not fractional) && not exponent then
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> Float (float_of_string lit)
    else Float (float_of_string lit)
  in
  let rec parse_value depth =
    if depth > max_depth then err "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> err "unexpected end of input"
    | Some '{' ->
      Stdlib.incr pos;
      skip_ws ();
      if peek () = Some '}' then begin Stdlib.incr pos; Obj [] end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' -> Stdlib.incr pos; fields ((k, v) :: acc)
          | Some '}' -> Stdlib.incr pos; Obj (List.rev ((k, v) :: acc))
          | _ -> err "expected ',' or '}'"
        in
        fields []
      end
    | Some '[' ->
      Stdlib.incr pos;
      skip_ws ();
      if peek () = Some ']' then begin Stdlib.incr pos; List [] end
      else begin
        let rec items acc =
          let v = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' -> Stdlib.incr pos; items (v :: acc)
          | Some ']' -> Stdlib.incr pos; List (List.rev (v :: acc))
          | _ -> err "expected ',' or ']'"
        in
        items []
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> err (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then err "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Parse_error (p, msg) ->
    let line, col = line_col s p in
    Error { offset = p; line; col; reason = msg }

let pos_error_to_string e =
  Printf.sprintf "line %d, column %d: %s" e.line e.col e.reason

let of_string s =
  match of_string_pos s with
  | Ok v -> Ok v
  | Error e -> Error (pos_error_to_string e)

let to_string ?(pretty = false) t =
  let buf = Buffer.create 256 in
  let indent level = if pretty then Buffer.add_string buf (String.make (2 * level) ' ') in
  let newline () = if pretty then Buffer.add_char buf '\n' in
  let rec go level = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_literal f)
    | Number s -> Buffer.add_string buf s
    | String s -> Buffer.add_string buf (escape_string s)
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      newline ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            newline ()
          end;
          indent (level + 1);
          go (level + 1) item)
        items;
      newline ();
      indent level;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      newline ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            newline ()
          end;
          indent (level + 1);
          Buffer.add_string buf (escape_string k);
          Buffer.add_string buf (if pretty then ": " else ":");
          go (level + 1) v)
        fields;
      newline ();
      indent level;
      Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf
