open Rwt_util
open Rwt_workflow
module Analysis = Rwt_core.Analysis
module Obs = Rwt_obs

(* --- jobs --- *)

type spec = File of string | Inline of Instance.t

type job = {
  index : int;
  id : string option;
  spec : spec;
  model : Comm_model.t;
  method_ : Analysis.method_;
}

let job ?id ?(model = Comm_model.Overlap) ?(method_ = Analysis.Auto) ~index spec =
  { index; id; spec; model; method_ }

let method_to_string = function
  | Analysis.Auto -> "auto"
  | Analysis.Tpn -> "tpn"
  | Analysis.Poly -> "poly"

let method_of_string = function
  | "auto" -> Some Analysis.Auto
  | "tpn" -> Some Analysis.Tpn
  | "poly" -> Some Analysis.Poly
  | _ -> None

(* --- job-file parsing --- *)

let parse_job_line ~index ~lineno line =
  (* '[' is accepted into the JSON branch only to reject it with a clear
     "expected an object" error instead of treating it as a file path *)
  if String.length line > 0 && (line.[0] = '{' || line.[0] = '[') then
    match Json.of_string line with
    | Error msg -> Error (Printf.sprintf "line %d: bad JSON: %s" lineno msg)
    | Ok (Json.Obj fields) ->
      let exception Bad of string in
      (try
         let file = ref None and id = ref None in
         let model = ref Comm_model.Overlap and method_ = ref Analysis.Auto in
         List.iter
           (fun (k, v) ->
             match (k, v) with
             | "file", Json.String s -> file := Some s
             | "id", Json.String s -> id := Some s
             | "model", Json.String s ->
               (match Comm_model.of_string s with
                | Some m -> model := m
                | None -> raise (Bad (Printf.sprintf "unknown model %S" s)))
             | "method", Json.String s ->
               (match method_of_string s with
                | Some m -> method_ := m
                | None -> raise (Bad (Printf.sprintf "unknown method %S" s)))
             | ("file" | "id" | "model" | "method"), _ ->
               raise (Bad (Printf.sprintf "key %S expects a string" k))
             | k, _ -> raise (Bad (Printf.sprintf "unknown key %S" k)))
           fields;
         match !file with
         | None -> raise (Bad "missing key \"file\"")
         | Some path ->
           Ok { index; id = !id; spec = File path; model = !model; method_ = !method_ }
       with Bad msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
    | Ok _ -> Error (Printf.sprintf "line %d: expected a JSON object" lineno)
  else Ok (job ~index (File line))

let parse_jobs contents =
  let exception Fail of string in
  try
    let jobs = ref [] and index = ref 0 in
    List.iteri
      (fun i line ->
        let line = String.trim line in
        if line <> "" && line.[0] <> '#' then begin
          (match parse_job_line ~index:!index ~lineno:(i + 1) line with
           | Ok j -> jobs := j :: !jobs
           | Error msg -> raise (Fail msg));
          incr index
        end)
      (String.split_on_char '\n' contents);
    Ok (List.rev !jobs)
  with Fail msg -> Error msg

(* --- outcomes --- *)

type status = Done | Failed of string | Timed_out

type outcome = {
  job : job;
  status : status;
  instance_name : string option;
  period : Rat.t option;
  m : int option;
  n_stages : int option;
  n_resources : int option;
  cache_hit : bool;
  wall_s : float;
}

let outcome_to_json ?(timing = true) o =
  let opt k f v = match v with None -> [] | Some x -> [ (k, f x) ] in
  let base =
    ("job", Json.Int o.job.index)
    :: (opt "id" (fun s -> Json.String s) o.job.id
        @ (match o.job.spec with
           | File p -> [ ("file", Json.String p) ]
           | Inline _ -> [])
        @ opt "instance" (fun s -> Json.String s) o.instance_name
        @ [ ("model", Json.String (Comm_model.to_string o.job.model));
            ("method", Json.String (method_to_string o.job.method_)) ])
  in
  let status =
    match o.status with
    | Done -> [ ("status", Json.String "ok") ]
    | Failed msg -> [ ("status", Json.String "error"); ("error", Json.String msg) ]
    | Timed_out -> [ ("status", Json.String "timeout") ]
  in
  let result =
    opt "period" (fun p -> Json.String (Rat.to_string p)) o.period
    @ opt "period_float" (fun p -> Json.Float (Rat.to_float p)) o.period
    @ opt "throughput_float"
        (fun p -> Json.Float (Rat.to_float (Rat.inv p)))
        (match o.period with Some p when not (Rat.is_zero p) -> Some p | _ -> None)
  in
  (* deterministic per-job snapshot: instance shape, never wall time *)
  let metrics =
    match (o.m, o.n_stages, o.n_resources) with
    | Some m, Some n, Some r ->
      [ ("metrics",
         Json.Obj
           [ ("m", Json.Int m); ("stages", Json.Int n); ("resources", Json.Int r) ]) ]
    | _ -> []
  in
  let cache = [ ("cache", Json.String (if o.cache_hit then "hit" else "miss")) ] in
  let timing = if timing then [ ("wall_s", Json.Float o.wall_s) ] else [] in
  Json.Obj (base @ status @ result @ metrics @ cache @ timing)

type summary = {
  total : int;
  ok : int;
  errors : int;
  timeouts : int;
  cache_hits : int;
  workers : int;
  elapsed_s : float;
}

let pp_summary fmt s =
  Format.fprintf fmt "%d job%s: %d ok, %d error%s, %d timeout%s; %d cache hit%s (workers %d)"
    s.total
    (if s.total = 1 then "" else "s")
    s.ok s.errors
    (if s.errors = 1 then "" else "s")
    s.timeouts
    (if s.timeouts = 1 then "" else "s")
    s.cache_hits
    (if s.cache_hits = 1 then "" else "s")
    s.workers

(* --- evaluation --- *)

let now = Unix.gettimeofday

(* canonical memo key: the instance's canonical serialization with the
   name stripped, so identical content under different names or paths
   shares one evaluation; model and method are part of the key *)
let canonical_key inst model method_ =
  let anon =
    Instance.create ~name:"" ~pipeline:inst.Instance.pipeline
      ~platform:inst.Instance.platform ~mapping:inst.Instance.mapping
  in
  Printf.sprintf "%s|%s|%s" (Format_io.to_string anon) (Comm_model.to_string model)
    (method_to_string method_)

let load_spec = function
  | Inline inst -> Ok inst
  | File path -> Format_io.load path

(* one job, already loaded; [deadline] is absolute, checked at the
   checkpoints (we cannot preempt a running solver — lcm blow-ups are
   instead cut short by the transition cap) *)
let eval_loaded ?deadline ?transition_cap (j : job) inst =
  let start = now () in
  let shape =
    ( Some inst.Instance.name,
      Some (Mapping.num_paths inst.Instance.mapping),
      Some (Mapping.n_stages inst.Instance.mapping),
      Some (List.length (Instance.resources inst)) )
  in
  let name, m, n, r = shape in
  let finish status period =
    { job = j; status; instance_name = name; period; m; n_stages = n;
      n_resources = r; cache_hit = false; wall_s = now () -. start }
  in
  let over_deadline () =
    match deadline with Some d -> now () >= d | None -> false
  in
  if over_deadline () then finish Timed_out None
  else
    match Analysis.analyze ~method_:j.method_ ?transition_cap j.model inst with
    | report -> finish Done (Some report.Analysis.period)
    | exception (Failure msg | Invalid_argument msg) -> finish (Failed msg) None

(* --- work-stealing pool ---

   Static task set: per-worker bounded deques are seeded round-robin
   before any domain starts, the owner pops the front, thieves pop the
   back. No task is ever added after seeding, so "every deque empty" is a
   sound termination test and workers simply exit when a full scan finds
   nothing to steal. *)

type deque = { mu : Mutex.t; tasks : int array; mutable head : int; mutable tail : int }

let pop_front d =
  Mutex.protect d.mu (fun () ->
      if d.head < d.tail then begin
        let t = d.tasks.(d.head) in
        d.head <- d.head + 1;
        Some t
      end
      else None)

let pop_back d =
  Mutex.protect d.mu (fun () ->
      if d.head < d.tail then begin
        d.tail <- d.tail - 1;
        Some d.tasks.(d.tail)
      end
      else None)

let run_pool ~workers ~n_tasks (run_task : int -> unit) =
  if workers <= 1 || n_tasks <= 1 then
    for t = 0 to n_tasks - 1 do run_task t done
  else begin
    let deques =
      Array.init workers (fun w ->
          let mine = ref [] in
          for t = n_tasks - 1 downto 0 do
            if t mod workers = w then mine := t :: !mine
          done;
          let tasks = Array.of_list !mine in
          { mu = Mutex.create (); tasks; head = 0; tail = Array.length tasks })
    in
    let worker w () =
      let rec next_task k =
        (* own deque first, then clockwise victims *)
        if k >= workers then None
        else begin
          let v = (w + k) mod workers in
          let take = if k = 0 then pop_front else pop_back in
          match take deques.(v) with
          | Some t ->
            if k > 0 then Obs.incr "batch.steals";
            Some t
          | None -> next_task (k + 1)
        end
      in
      let rec loop () =
        match next_task 0 with
        | Some t ->
          run_task t;
          loop ()
        | None -> ()
      in
      loop ()
    in
    let domains = Array.init (workers - 1) (fun w -> Domain.spawn (worker (w + 1))) in
    worker 0 ();
    Array.iter Domain.join domains
  end

(* --- the batch driver --- *)

let default_jobs () = Domain.recommended_domain_count ()

let run ?jobs ?timeout ?transition_cap (job_list : job list) =
  Obs.with_span "batch.run" @@ fun () ->
  let t_start = now () in
  let workers =
    match jobs with
    | None -> max 1 (default_jobs ())
    | Some j -> min 128 (max 1 j)
  in
  let job_arr = Array.of_list job_list in
  let n = Array.length job_arr in
  let results : outcome option array = Array.make n None in
  (* phase 1 (sequential, cheap): load every instance and dedupe on the
     canonical key so duplicates resolve identically at any worker count *)
  let seen : (string, int) Hashtbl.t = Hashtbl.create (2 * n) in
  let loaded : Instance.t option array = Array.make n None in
  let alias = Array.make n (-1) in (* representative index, or -1 *)
  let unique = ref [] in (* reversed indices of jobs that must be solved *)
  Array.iteri
    (fun i j ->
      match load_spec j.spec with
      | Error msg ->
        results.(i) <-
          Some
            { job = j; status = Failed msg; instance_name = None; period = None;
              m = None; n_stages = None; n_resources = None; cache_hit = false;
              wall_s = 0.0 }
      | Ok inst ->
        loaded.(i) <- Some inst;
        let key = canonical_key inst j.model j.method_ in
        (match Hashtbl.find_opt seen key with
         | Some rep -> alias.(i) <- rep
         | None ->
           Hashtbl.add seen key i;
           unique := i :: !unique))
    job_arr;
  let unique = Array.of_list (List.rev !unique) in
  (* phase 2 (parallel): evaluate the unique jobs *)
  run_pool ~workers ~n_tasks:(Array.length unique) (fun t ->
      let i = unique.(t) in
      let j = job_arr.(i) in
      let inst = Option.get loaded.(i) in
      let deadline = Option.map (fun s -> now () +. s) timeout in
      let o =
        match eval_loaded ?deadline ?transition_cap j inst with
        | o -> o
        | exception (Failure msg | Invalid_argument msg) ->
          { job = j; status = Failed msg; instance_name = Some inst.Instance.name;
            period = None; m = None; n_stages = None; n_resources = None;
            cache_hit = false; wall_s = 0.0 }
      in
      Obs.observe "batch.job_wall_s" o.wall_s;
      results.(i) <- Some o);
  (* phase 3: replay memoized outcomes onto the duplicate jobs *)
  Array.iteri
    (fun i rep ->
      if rep >= 0 then begin
        let r = Option.get results.(rep) in
        let inst = Option.get loaded.(i) in
        results.(i) <-
          Some
            { r with job = job_arr.(i); instance_name = Some inst.Instance.name;
              cache_hit = true; wall_s = 0.0 }
      end)
    alias;
  let outcomes = Array.map Option.get results in
  let count p = Array.fold_left (fun acc o -> if p o then acc + 1 else acc) 0 outcomes in
  let summary =
    { total = n;
      ok = count (fun o -> o.status = Done);
      errors = count (fun o -> match o.status with Failed _ -> true | _ -> false);
      timeouts = count (fun o -> o.status = Timed_out);
      cache_hits = count (fun o -> o.cache_hit);
      workers;
      elapsed_s = now () -. t_start }
  in
  Obs.add "batch.jobs" summary.total;
  Obs.add "batch.cache_hits" summary.cache_hits;
  Obs.add "batch.errors" summary.errors;
  Obs.add "batch.timeouts" summary.timeouts;
  Obs.gauge "batch.workers" (float_of_int workers);
  (outcomes, summary)

let run_to_channel ?jobs ?timeout ?transition_cap ?timing oc job_list =
  let outcomes, summary = run ?jobs ?timeout ?transition_cap job_list in
  Array.iter
    (fun o ->
      output_string oc (Json.to_string (outcome_to_json ?timing o));
      output_char oc '\n')
    outcomes;
  flush oc;
  summary
