(** End-to-end throughput analysis: period, [Mct] bound, critical-resource
    detection (is the period dictated by a single saturated resource?) and
    the gap statistics reported in the paper's Table 2. *)

open Rwt_util
open Rwt_workflow

type method_ =
  | Auto  (** Theorem 1 for OVERLAP, full TPN for STRICT *)
  | Tpn  (** full TPN for both *)
  | Poly  (** Theorem 1 (OVERLAP only) *)

type report = {
  model : Comm_model.t;
  period : Rat.t;
  throughput : Rat.t;
  mct : Rat.t;
  bottleneck : Cycle_time.resource;  (** the resource achieving [Mct] *)
  has_critical_resource : bool;  (** [period = Mct] exactly *)
  gap : Rat.t;  (** [(period − Mct) / Mct], 0 when critical *)
}

val analyze :
  ?method_:method_ -> ?transition_cap:int -> Comm_model.t -> Instance.t -> report
(** [transition_cap] bounds the size of any TPN the analysis constructs
    (default: the process-wide [Rwt_petri.Expand.transition_cap ()]);
    the polynomial route never builds the full net and ignores it.
    @raise Invalid_argument if [Poly] is requested for the STRICT model
    (no polynomial algorithm is known; the paper leaves it open).
    @raise Failure when the TPN route exceeds the cap. *)

val pp_report : Format.formatter -> report -> unit

val report_to_json : Instance.t -> report -> Rwt_util.Json.t
(** Machine-readable report: exact rationals as strings, float
    approximations alongside, plus the per-resource cycle-time table. *)
