(** Machine-readable exports of simulated schedules, for external tooling
    (plotting, trace viewers, spreadsheets). Times are exported both as
    exact rational strings and as float approximations. *)

val to_json : ?pretty:bool -> Schedule.t -> string
(** One object per event:
    {v {"dataset": d, "kind": "compute"|"transfer", "stage"/"file": i,
        "proc"/"src"+"dst": u, "start": "a/b", "finish": "c/d",
        "start_s": float, "finish_s": float} v}
    wrapped with the model name, horizon and instance name. *)

val to_csv : Schedule.t -> string
(** Header
    [dataset,kind,index,proc,src,dst,start,finish,start_float,finish_float];
    one row per event, compute rows leave [src]/[dst] empty and transfer
    rows leave [proc] empty. *)
