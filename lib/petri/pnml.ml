open Rwt_util

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\'' -> Buffer.add_string buf "&apos;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string ?(net_id = "tpn") tpn =
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  pr "<pnml xmlns=\"http://www.pnml.org/version-2009/grammar/pnml\">\n";
  pr "  <net id=\"%s\" type=\"http://www.pnml.org/version-2009/grammar/ptnet\">\n"
    (escape net_id);
  pr "    <page id=\"page0\">\n";
  for i = 0 to Tpn.num_transitions tpn - 1 do
    let tr = Tpn.transition tpn i in
    pr "      <transition id=\"t%d\">\n" i;
    pr "        <name><text>%s</text></name>\n" (escape tr.Tpn.tr_name);
    pr "        <toolspecific tool=\"rwt\" version=\"1.0\">\n";
    pr "          <firingTime>%s</firingTime>\n" (escape (Rat.to_string tr.Tpn.firing));
    pr "        </toolspecific>\n";
    pr "      </transition>\n"
  done;
  List.iteri
    (fun k p ->
      pr "      <place id=\"pl%d\">\n" k;
      if p.Tpn.pl_name <> "" then
        pr "        <name><text>%s</text></name>\n" (escape p.Tpn.pl_name);
      if p.Tpn.tokens > 0 then
        pr "        <initialMarking><text>%d</text></initialMarking>\n" p.Tpn.tokens;
      pr "      </place>\n";
      pr "      <arc id=\"a%din\" source=\"t%d\" target=\"pl%d\"/>\n" k p.Tpn.pl_src k;
      pr "      <arc id=\"a%dout\" source=\"pl%d\" target=\"t%d\"/>\n" k k p.Tpn.pl_dst)
    (Tpn.places tpn);
  pr "    </page>\n  </net>\n</pnml>\n";
  Buffer.contents buf
