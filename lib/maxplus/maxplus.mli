(** The (max,+) semiring and its matrix algebra, following Baccelli, Cohen,
    Olsder & Quadrat, "Synchronization and Linearity" (the paper's
    reference [2]).

    Timed event graphs have linear dater equations in this algebra:
    [x(k) = A0 ⊗ x(k) ⊕ A1 ⊗ x(k-1) ⊕ …]; the asymptotic growth rate of
    [x(k)] (the (max,+) eigenvalue) is the maximum cycle ratio that yields
    the workflow period. The module is functorized over the numeric kernel so
    the same code runs exactly (rationals) or fast (floats). *)

module Make (N : Rwt_util.Num_intf.S) : sig
  (** {1 Scalars} *)

  type scalar = Neg_inf | Fin of N.t
  (** [Neg_inf] is the semiring zero ε; [Fin N.zero] is the unit e. *)

  val zero : scalar
  val unit : scalar
  val fin : N.t -> scalar
  val oplus : scalar -> scalar -> scalar
  (** max *)

  val otimes : scalar -> scalar -> scalar
  (** + (with ε absorbing) *)

  val compare : scalar -> scalar -> int
  val equal : scalar -> scalar -> bool
  val pp : Format.formatter -> scalar -> unit

  (** {1 Matrices} *)

  type mat
  (** Dense square or rectangular matrices over the semiring. *)

  val make : int -> int -> scalar -> mat
  val init : int -> int -> (int -> int -> scalar) -> mat
  val rows : mat -> int
  val cols : mat -> int
  val get : mat -> int -> int -> scalar
  val set : mat -> int -> int -> scalar -> unit

  val identity : int -> mat
  (** e on the diagonal, ε elsewhere. *)

  val mul : mat -> mat -> mat
  (** ⊗-product. @raise Invalid_argument on dimension mismatch. *)

  val add : mat -> mat -> mat
  (** entrywise ⊕. *)

  val pow : mat -> int -> mat
  (** ⊗-power, [k >= 0]. *)

  val mul_vec : mat -> scalar array -> scalar array

  val star : ?deadline:(unit -> bool) -> mat -> mat option
  (** Kleene star [A* = I ⊕ A ⊕ A² ⊕ …] for a square matrix; [None] if some
      diagonal of the closure becomes positive (a positive-weight cycle makes
      the star diverge). Used to eliminate the instantaneous [A0] part of
      dater equations. The closure is [O(n³)]; the optional [deadline]
      closure is polled once per elimination pivot and aborts the closure
      with a typed [Rwt_util.Rwt_err.Error] timeout when it returns
      [true]. *)

  val of_graph : N.t Rwt_graph.Digraph.t -> mat
  (** Adjacency matrix: entry [(v, u)] is the max weight over edges [u → v]
      (so that [mul_vec] propagates along edge direction), ε when absent. *)

  val eigen_iteration : mat -> scalar array -> int -> scalar array array
  (** [eigen_iteration a x0 k] returns the orbit [x0, A⊗x0, …, A^k⊗x0];
      building block for power-method estimates of the eigenvalue (exact
      eigenvalues are computed by {!Rwt_petri.Mcr} instead). *)

  val pp_mat : Format.formatter -> mat -> unit
end
