(* SplitMix64 (Steele, Lea & Flood 2014): tiny state, good mixing, and a
   principled split operation — ideal for reproducible experiment streams. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix (Int64.of_int seed) }
let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = next_int64 t in
  { state = mix s }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound <= 0";
  (* Rejection sampling on the top 62 bits to avoid modulo bias. *)
  let rec go () =
    let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
    let v = r mod bound in
    if r - v > max_int - bound + 1 then go () else v
  in
  go ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (r /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next_int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int t (Array.length a))
