(** Minimal JSON emitter (no parser): enough to export schedules, analyses
    and experiment results to external tooling. No external JSON library is
    available in the sealed build environment, and emission is the only
    direction this repository needs. Strings are escaped per RFC 8259;
    numbers are emitted as-is by the caller ({!number} takes the rendered
    form, so exact rationals can be carried as strings or decimal
    approximations at the caller's choice). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Number of string  (** pre-rendered numeric literal, emitted verbatim *)
  | String of string
  | List of t list
  | Obj of (string * t) list

val number : string -> t
(** [Number] after validating the literal (optional sign, digits, optional
    fraction/exponent). @raise Invalid_argument on a malformed literal. *)

val to_string : ?pretty:bool -> t -> string
(** Compact by default; [pretty] indents with two spaces. *)

val escape_string : string -> string
(** The quoted, escaped form of a string literal. *)
