rwt optimize accepts map-less problem files (it searches for the mapping)
and keeps the resilience contract: a platform with fewer processors than
stages is a typed one-line error, never an OCaml backtrace.

  $ printf 'stages 3\nwork 4 8 2\ndata 2 1\nprocessors 2\nspeeds 2 1\n' > few.rwt
  $ rwt optimize -f few.rwt
  rwt: validate: fewer processors than stages: every stage needs at least one dedicated processor [stages=3, processors=2]
  [1]

A deterministic run on a map-less file; the reported evaluation counts are
exact (the greedy baseline plus every scored move).

  $ printf 'stages 2\nwork 4 8\ndata 2\nprocessors 4\nspeeds 2 1 1 4\n' > nomap.rwt
  $ rwt optimize -f nomap.rwt --iterations 40 --seed 5 | grep -v '^$'
  greedy baseline:
  period 2 after 1 evaluations
  S0 -> {P0}
  S1 -> {P3}
  local search:
  period 2 after 18 evaluations
  S0 -> {P0}
  S1 -> {P3}

When the file does carry a mapping, the result is compared against it.

  $ rwt show -e no-replication > nr.rwt
  $ rwt optimize -f nr.rwt --iterations 0 | tail -1
  (the instance's own mapping has period 30)

The command exposes the evaluation cap and the wall-clock budget.

  $ rwt optimize --help=plain | grep -c -e '--m-cap' -e '--timeout'
  2

The group help renders the optimize line without embedded padding runs
(regression: the doc string used to carry literal alignment spaces).

  $ rwt --help=plain | grep -A1 '^       optimize'
         optimize [OPTION]…
             Heuristic mapping search on the instance's platform (the paper's
  $ rwt --help=plain | grep -Ec ' {4,}\(the'
  0
  [1]
