(** Timed Petri nets with the event-graph property (timed event graphs).

    Every place has exactly one input and one output transition, which the
    representation enforces structurally: a place is an edge between two
    transitions, carrying its initial marking. Transition firing times are
    exact rationals. Under earliest-firing semantics the k-th firing dates
    satisfy (max,+)-linear dater equations, and the asymptotic period of
    every transition equals the maximum cycle ratio
    [Σ firing times / Σ tokens] over the circuits (Baccelli et al. 1992). *)

open Rwt_util

type transition = { tr_name : string; firing : Rat.t }

type place = {
  pl_src : int;  (** input transition *)
  pl_dst : int;  (** output transition *)
  tokens : int;  (** initial marking, [>= 0] *)
  pl_name : string;
}

type t

val create : transition array -> t
(** Net with the given transitions and no places yet. Firing times must be
    [>= 0]. @raise Invalid_argument otherwise. *)

val add_place : ?name:string -> t -> src:int -> dst:int -> tokens:int -> unit
(** @raise Invalid_argument on out-of-range transitions or negative marking. *)

val num_transitions : t -> int
val num_places : t -> int
val transition : t -> int -> transition
val places : t -> place list
val iter_places : (place -> unit) -> t -> unit

val total_tokens : t -> int

val graph : t -> place Rwt_graph.Digraph.t
(** The underlying directed graph: nodes are transitions, edges are places.
    Rebuilt on demand; edge labels are the places themselves. *)

type liveness =
  | Live
  | Dead_cycle of int list  (** transition ids of a token-free circuit *)

val liveness : t -> liveness
(** An event graph is live iff every circuit holds at least one token.
    [Dead_cycle] reports a witness circuit otherwise. *)

val to_dot : t -> string
(** Graphviz rendering: transitions as boxes annotated with firing times,
    places as edges annotated with their marking (tokens shown as ●). *)

val pp_stats : Format.formatter -> t -> unit
(** One-line summary: transitions / places / tokens. *)
