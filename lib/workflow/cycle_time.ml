open Rwt_util

type resource = {
  proc : int;
  stage : int;
  cin : Rat.t;
  ccomp : Rat.t;
  cout : Rat.t;
  cexec : Rat.t;
  bottleneck : string;
}

(* Average per-period port occupation: processor u = procs_i.(r) exchanges
   one file per data set it serves; summing transfer times over one
   lcm(m_i, m_other) block of data sets and dividing by the block length
   gives the per-period average without materializing all m rows. *)
let port_average inst ~stage ~r ~other_stage ~file ~outgoing =
  let mapping = inst.Instance.mapping in
  let mi = Mapping.replication mapping stage in
  let mo = Mapping.replication mapping other_stage in
  let block = Intmath.lcm mi mo in
  let u = (Mapping.procs mapping stage).(r) in
  let sum = ref Rat.zero in
  let d = ref r in
  while !d < block do
    let v = Mapping.proc_for mapping ~stage:other_stage ~dataset:!d in
    let t =
      if outgoing then Instance.transfer_time inst ~file ~src:u ~dst:v
      else Instance.transfer_time inst ~file ~src:v ~dst:u
    in
    sum := Rat.add !sum t;
    d := !d + mi
  done;
  Rat.div_int !sum block

let resource model inst u =
  let mapping = inst.Instance.mapping in
  match Mapping.stage_of mapping u with
  | None -> invalid_arg "Cycle_time.resource: processor not used by the mapping"
  | Some stage ->
    let n = Mapping.n_stages mapping in
    let mi = Mapping.replication mapping stage in
    let procs = Mapping.procs mapping stage in
    let r =
      let rec find k = if procs.(k) = u then k else find (k + 1) in
      find 0
    in
    let cin =
      if stage = 0 then Rat.zero
      else port_average inst ~stage ~r ~other_stage:(stage - 1) ~file:(stage - 1)
             ~outgoing:false
    in
    let cout =
      if stage = n - 1 then Rat.zero
      else port_average inst ~stage ~r ~other_stage:(stage + 1) ~file:stage ~outgoing:true
    in
    let ccomp = Rat.div_int (Instance.compute_time inst ~stage ~proc:u) mi in
    let cexec, bottleneck =
      match model with
      | Comm_model.Strict -> (Rat.add cin (Rat.add ccomp cout), "serial")
      | Comm_model.Overlap ->
        let m = Rat.max cin (Rat.max ccomp cout) in
        let b =
          if Rat.equal m cin then "in" else if Rat.equal m ccomp then "comp" else "out"
        in
        (m, b)
    in
    { proc = u; stage; cin; ccomp; cout; cexec; bottleneck }

let all model inst = List.map (resource model inst) (Instance.resources inst)

let critical model inst =
  match all model inst with
  | [] -> invalid_arg "Cycle_time.critical: empty mapping"
  | r0 :: rest ->
    List.fold_left (fun best r -> if Rat.compare r.cexec best.cexec > 0 then r else best) r0 rest

let mct model inst = (critical model inst).cexec

let pp_resource fmt r =
  Format.fprintf fmt "%s (S%d): Cin=%a Ccomp=%a Cout=%a Cexec=%a [%s]"
    (Platform.proc_name r.proc) r.stage Rat.pp_approx r.cin Rat.pp_approx r.ccomp
    Rat.pp_approx r.cout Rat.pp_approx r.cexec r.bottleneck

let pp_table model fmt inst =
  Format.fprintf fmt "@[<v>";
  List.iter (fun r -> Format.fprintf fmt "%a@," pp_resource r) (all model inst);
  Format.fprintf fmt "Mct = %a@]" Rat.pp_approx (mct model inst)
