open Rwt_util
open Rwt_workflow
module Mcr = Rwt_petri.Mcr
module D = Rwt_graph.Digraph
module Obs = Rwt_obs

type compute_column = {
  stage : int;
  per_proc : (int * Rat.t) list;
  bound : Rat.t;
}

type component = {
  q : int;
  senders : int array;
  receivers : int array;
  ratio : Rat.t;
  bound : Rat.t;
}

type comm_column = {
  file : int;
  p : int;
  u : int;
  v : int;
  c : Bigint.t;
  block : int;
  components : component list;
  bound : Rat.t;
}

type column = Compute_col of compute_column | Comm_col of comm_column

type analysis = { columns : column list; period : Rat.t }

let geometry mapping file =
  let mi = Mapping.replication mapping file in
  let mi1 = Mapping.replication mapping (file + 1) in
  let p = Intmath.gcd mi mi1 in
  (mi, mi1, p, mi / p, mi1 / p)

let pattern_graph inst ~file ~q =
  let mapping = inst.Instance.mapping in
  let _, _, p, u, v = geometry mapping file in
  let senders = Mapping.procs mapping file in
  let receivers = Mapping.procs mapping (file + 1) in
  let uv = u * v in
  let g = D.create uv in
  let firing tau =
    let s = senders.(q + (p * (tau mod u))) in
    let d = receivers.(q + (p * (tau mod v))) in
    Instance.transfer_time inst ~file ~src:s ~dst:d
  in
  for tau = 0 to uv - 1 do
    let w = firing tau in
    (* sender round-robin: next transfer by the same sender replica *)
    ignore
      (D.add_edge g tau ((tau + u) mod uv)
         { Mcr.Exact.weight = w; tokens = (if tau + u >= uv then 1 else 0) });
    (* receiver round-robin: next reception by the same receiver replica *)
    ignore
      (D.add_edge g tau ((tau + v) mod uv)
         { Mcr.Exact.weight = w; tokens = (if tau + v >= uv then 1 else 0) })
  done;
  g

let analyze inst =
  Obs.with_span "poly.analyze" @@ fun () ->
  let mapping = inst.Instance.mapping in
  let n = Mapping.n_stages mapping in
  let m_big = Mapping.num_paths_big mapping in
  let columns = ref [] in
  for stage = n - 1 downto 0 do
    (* interleave in reverse so the final list is in column order *)
    if stage < n - 1 then begin
      let mi, mi1, p, u, v = geometry mapping stage in
      let block = Intmath.lcm mi mi1 in
      Obs.incr "poly.comm_columns";
      Obs.add "poly.components" p;
      (* per-stage-pair work: each of the p components solves a u·v-node
         pattern graph with two edges per node *)
      Obs.add "poly.pattern_nodes" (p * u * v);
      Obs.add "poly.pattern_edges" (2 * p * u * v);
      let components =
        List.init p (fun q ->
            let g = pattern_graph inst ~file:stage ~q in
            match Mcr.Exact.max_cycle_ratio g with
            | None -> invalid_arg "Poly_overlap: pattern graph must have cycles"
            | Some w ->
              let senders =
                Array.init u (fun a -> (Mapping.procs mapping stage).(q + (p * a)))
              in
              let receivers =
                Array.init v (fun b -> (Mapping.procs mapping (stage + 1)).(q + (p * b)))
              in
              { q; senders; receivers;
                ratio = w.Mcr.Exact.ratio;
                bound = Rat.div_int w.Mcr.Exact.ratio block })
      in
      let bound =
        List.fold_left (fun acc (comp : component) -> Rat.max acc comp.bound) Rat.zero components
      in
      columns :=
        Comm_col
          { file = stage; p; u; v;
            c = Bigint.div m_big (Bigint.of_int block);
            block; components; bound }
        :: !columns
    end;
    Obs.incr "poly.compute_columns";
    let mi = Mapping.replication mapping stage in
    let per_proc =
      Array.to_list
        (Array.map
           (fun proc ->
             (proc, Rat.div_int (Instance.compute_time inst ~stage ~proc) mi))
           (Mapping.procs mapping stage))
    in
    let bound = List.fold_left (fun acc (_, b) -> Rat.max acc b) Rat.zero per_proc in
    columns := Compute_col { stage; per_proc; bound } :: !columns
  done;
  let period =
    List.fold_left
      (fun acc col ->
        Rat.max acc (match col with Compute_col c -> c.bound | Comm_col c -> c.bound))
      Rat.zero !columns
  in
  { columns = !columns; period }

let period inst = (analyze inst).period

let column_bound _inst = function Compute_col c -> c.bound | Comm_col c -> c.bound

let pp_analysis fmt a =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun col ->
      match col with
      | Compute_col c ->
        Format.fprintf fmt "column S%d (compute): bound %a@," c.stage Rat.pp_approx c.bound
      | Comm_col c ->
        Format.fprintf fmt
          "column F%d (transfer): p=%d u=%d v=%d c=%a block=%d bound %a@," c.file c.p
          c.u c.v Bigint.pp c.c c.block Rat.pp_approx c.bound;
        List.iter
          (fun comp ->
            Format.fprintf fmt "  component %d: ratio %a, bound %a@," comp.q
              Rat.pp_approx comp.ratio Rat.pp_approx comp.bound)
          c.components)
    a.columns;
  Format.fprintf fmt "period = %a@]" Rat.pp_approx a.period
