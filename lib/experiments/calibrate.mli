(** Calibration of the paper's figure-given instances (Examples A and B).

    The published figures are images; their 18 (resp. 19) numeric labels are
    known but the label → edge assignment is partly ambiguous in the
    available text. These searches enumerate the consistent assignments and
    keep those reproducing {e every} quantitative claim of the paper:

    - Example A: overlap period 189 with the critical resource being P0's
      out-port, strict Mct = 1295/6 on P2, strict period = 230.7 (one
      decimal, as printed in the paper);
    - Example B: Mct = 3100/12 uniquely achieved by P2's out-port, overlap
      period = 3500/12.

    [Rwt_workflow.Instances.example_a/b] hard-code one search result; the
    test suite asserts they still satisfy the checks. *)

open Rwt_util
open Rwt_workflow

type candidate_a = {
  p1_links : Rat.t array;  (** transfer times P1→P3, P1→P4, P1→P5 *)
  p2_links : Rat.t array;  (** P2→P3, P2→P4, P2→P5 *)
  comp45 : Rat.t * Rat.t;  (** compute times of P4 and P5 *)
  out_links : Rat.t array;  (** P3→P6, P4→P6, P5→P6 *)
  strict_period : Rat.t;
}

val example_a_candidates : unit -> candidate_a list
(** All assignments of the published labels satisfying the checks
    (the enumeration has 4 320 cases). *)

val example_a_instance : candidate_a -> Instance.t

type candidate_b = {
  expensive : (int * int) list;  (** the seven links with time 1000 *)
  unique_critical : bool;  (** P2-out strictly above every other resource *)
}

val example_b_candidates : unit -> candidate_b list
(** The 1000/100 patterns (of the 280 satisfying the degree constraints)
    that reproduce Mct = 3100/12 and period = 3500/12. *)

val example_b_instance : candidate_b -> Instance.t

val verify_published : unit -> (string * bool) list
(** The named checks run against [Instances.example_a/b]; all must hold. *)
