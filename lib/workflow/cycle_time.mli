(** Resource cycle-times and the [Mct] lower bound on the period (§2).

    All quantities are normalized per data set entering the system: a
    processor replicated [m_i] ways serves one data set out of [m_i], so its
    per-data-set occupation is its per-item busy time divided by [m_i].
    [Cexec] is [max(Cin, Ccomp, Cout)] under OVERLAP and
    [Cin + Ccomp + Cout] under STRICT; [Mct = max_u Cexec(u)] satisfies
    [P >= Mct] for every valid schedule, with equality whenever no stage is
    replicated. *)

open Rwt_util

type resource = {
  proc : int;
  stage : int;
  cin : Rat.t;  (** average per-period in-port occupation *)
  ccomp : Rat.t;
  cout : Rat.t;
  cexec : Rat.t;  (** model-dependent combination *)
  bottleneck : string;
      (** which unit dominates under OVERLAP ("in" | "comp" | "out");
          ["serial"] under STRICT *)
}

val resource : Comm_model.t -> Instance.t -> int -> resource
(** Cycle-time of one (used) processor.
    @raise Invalid_argument if the processor is not used by the mapping. *)

val all : Comm_model.t -> Instance.t -> resource list
(** Every used processor, ascending id. *)

val mct : Comm_model.t -> Instance.t -> Rat.t
(** The maximum cycle-time [Mct]. *)

val critical : Comm_model.t -> Instance.t -> resource
(** A resource achieving [Mct] (smallest processor id on ties). *)

val pp_resource : Format.formatter -> resource -> unit
val pp_table : Comm_model.t -> Format.formatter -> Instance.t -> unit
