type class_ = Parse | Validate | Capacity | Timeout | Numeric | Fault | Internal

type t = {
  class_ : class_;
  code : string;
  message : string;
  context : (string * string) list;
}

exception Error of t

let class_name = function
  | Parse -> "parse"
  | Validate -> "validate"
  | Capacity -> "capacity"
  | Timeout -> "timeout"
  | Numeric -> "numeric"
  | Fault -> "fault"
  | Internal -> "internal"

let class_of_name = function
  | "parse" -> Some Parse
  | "validate" -> Some Validate
  | "capacity" -> Some Capacity
  | "timeout" -> Some Timeout
  | "numeric" -> Some Numeric
  | "fault" -> Some Fault
  | "internal" -> Some Internal
  | _ -> None

let one_line s = String.map (function '\n' | '\r' -> ' ' | c -> c) s

let make ?code ?(context = []) class_ message =
  { class_;
    code = (match code with Some c -> c | None -> class_name class_);
    message = one_line message;
    context }

let parse ?code ?file ?line ?col ?(context = []) message =
  let opt k f v = match v with None -> [] | Some x -> [ (k, f x) ] in
  let context =
    opt "file" Fun.id file
    @ opt "line" string_of_int line
    @ opt "col" string_of_int col
    @ context
  in
  make ?code ~context Parse message

let json_parse ?file (e : Json.pos_error) =
  parse ~code:"parse.json" ?file ~line:e.Json.line ~col:e.Json.col
    ~context:[ ("offset", string_of_int e.Json.offset) ]
    e.Json.reason

let validate ?code ?context message = make ?code ?context Validate message
let capacity ?code ?context message = make ?code ?context Capacity message
let timeout ?code ?context message = make ?code ?context Timeout message
let numeric ?code ?context message = make ?code ?context Numeric message
let fault ?code ?context message = make ?code ?context Fault message
let internal ?code ?context message = make ?code ?context Internal message

let transient t = t.class_ = Fault

let to_line t =
  let ctx =
    match t.context with
    | [] -> ""
    | kvs ->
      Printf.sprintf " [%s]"
        (String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) kvs))
  in
  Printf.sprintf "%s: %s%s" (class_name t.class_) t.message ctx

let pp fmt t = Format.pp_print_string fmt (to_line t)

let to_json t =
  Json.Obj
    (( "class", Json.String (class_name t.class_) )
     :: ("code", Json.String t.code)
     :: ("message", Json.String t.message)
     :: (match t.context with
         | [] -> []
         | kvs ->
           [ ("context", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) kvs)) ]))

let of_json = function
  | Json.Obj fields ->
    let str k = match List.assoc_opt k fields with Some (Json.String s) -> Some s | _ -> None in
    (match Option.bind (str "class") class_of_name with
     | None -> None
     | Some class_ ->
       let context =
         match List.assoc_opt "context" fields with
         | Some (Json.Obj kvs) ->
           List.filter_map
             (fun (k, v) -> match v with Json.String s -> Some (k, s) | _ -> None)
             kvs
         | _ -> []
       in
       Some
         { class_;
           code = Option.value ~default:(class_name class_) (str "code");
           message = Option.value ~default:"" (str "message");
           context })
  | _ -> None

(* classify legacy exceptions by message shape: the size guards all say
   "exceeding the cap", parse-side failures name their line *)
let of_exn = function
  | Error t -> t
  | Failure msg ->
    let contains needle hay =
      let ln = String.length needle and lh = String.length hay in
      let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
      go 0
    in
    if contains "exceeding the cap" msg then capacity ~code:"capacity.guard" msg
    else internal ~code:"internal.failure" msg
  | Invalid_argument msg -> validate ~code:"validate.invalid_arg" msg
  | Sys_error msg -> parse ~code:"parse.io" msg
  | Division_by_zero -> numeric ~code:"numeric.div0" "division by zero"
  | e -> internal ~code:"internal.exn" (Printexc.to_string e)

let catch f =
  match f () with
  | v -> Ok v
  | exception ((Stack_overflow | Out_of_memory) as e) -> raise e
  | exception e -> Error (of_exn e)

let raise_ t = raise (Error t)
