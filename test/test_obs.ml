(* Tests for the observability substrate: counter/gauge/histogram math,
   span nesting under a fake clock, disabled-mode no-op behaviour, size
   guards, and the JSON export round-tripping through Rwt_util.Json. *)

open Rwt_util

let qtest = QCheck_alcotest.to_alcotest

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* Every test owns the global registry: start enabled from a clean slate. *)
let fresh ?(trace = false) ?(events = false) () =
  Rwt_obs.reset ();
  Rwt_obs.disable ();
  Rwt_obs.set_clock Sys.time;
  Rwt_obs.enable ~trace ~events ();
  Rwt_obs.reset ()

(* --- counters and gauges --- *)

let counter_math () =
  fresh ();
  Alcotest.(check int) "missing counter reads 0" 0 (Rwt_obs.counter_value "nope");
  Rwt_obs.incr "c";
  Rwt_obs.incr "c";
  Rwt_obs.add "c" 40;
  Alcotest.(check int) "2 incr + add 40" 42 (Rwt_obs.counter_value "c");
  Rwt_obs.add "c" (-7);
  Alcotest.(check int) "counters are monotonic (negative add clipped)" 42
    (Rwt_obs.counter_value "c")

let gauge_math () =
  fresh ();
  Alcotest.(check bool) "missing gauge is None" true (Rwt_obs.gauge_value "g" = None);
  Rwt_obs.gauge "g" 3.0;
  Rwt_obs.gauge "g" 1.5;
  Alcotest.(check (float 0.0)) "last write wins" 1.5
    (Option.get (Rwt_obs.gauge_value "g"));
  Rwt_obs.gauge_max "peak" 2.0;
  Rwt_obs.gauge_max "peak" 9.0;
  Rwt_obs.gauge_max "peak" 4.0;
  Alcotest.(check (float 0.0)) "gauge_max keeps the max" 9.0
    (Option.get (Rwt_obs.gauge_value "peak"))

(* --- histograms --- *)

let histogram_exact_stats () =
  fresh ();
  List.iter (Rwt_obs.observe "h") [ 4.0; 1.0; 2.0; 8.0 ];
  let s = Option.get (Rwt_obs.histogram_summary "h") in
  Alcotest.(check int) "count" 4 s.Rwt_obs.count;
  Alcotest.(check (float 1e-9)) "sum" 15.0 s.Rwt_obs.sum;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Rwt_obs.min;
  Alcotest.(check (float 1e-9)) "max" 8.0 s.Rwt_obs.max;
  Alcotest.(check (float 1e-9)) "mean" 3.75 s.Rwt_obs.mean

let percentile_bounds =
  (* log2 buckets: the reported percentile is an upper bound on the true
     one, within a factor 2, and always inside [min, max] *)
  QCheck.Test.make ~count:200 ~name:"histogram percentile within log2-bucket bounds"
    QCheck.(pair (list_of_size (Gen.int_range 1 60) (float_range 1e-6 1e6))
              (float_range 0.01 1.0))
    (fun (samples, q) ->
      fresh ();
      List.iter (Rwt_obs.observe "h") samples;
      let sorted = List.sort compare samples in
      let n = List.length sorted in
      let rank = max 0 (int_of_float (ceil (q *. float_of_int n)) - 1) in
      let true_q = List.nth sorted rank in
      let p = Option.get (Rwt_obs.percentile "h" q) in
      let mn = List.hd sorted and mx = List.nth sorted (n - 1) in
      p >= mn -. 1e-12 && p <= mx +. 1e-12
      && p >= true_q *. 0.5 -. 1e-12
      && p <= Float.min mx (true_q *. 2.0) +. 1e-12)

let percentile_single_value () =
  fresh ();
  for _ = 1 to 100 do Rwt_obs.observe "h" 0.125 done;
  (* clipping to exact min/max makes a constant stream exact *)
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-12)) (Printf.sprintf "p%g of constant" (q *. 100.)) 0.125
        (Option.get (Rwt_obs.percentile "h" q)))
    [ 0.5; 0.9; 0.99; 1.0 ]

(* --- spans --- *)

let fake_clock () =
  let t = ref 0.0 in
  Rwt_obs.set_clock (fun () -> !t);
  t

let span_nesting () =
  fresh ~trace:true ();
  let t = fake_clock () in
  Rwt_obs.reset ();
  let result =
    Rwt_obs.with_span "outer" (fun () ->
        t := !t +. 1.0;
        Rwt_obs.with_span ~args:[ ("k", Json.String "v") ] "inner" (fun () ->
            t := !t +. 3.0;
            Alcotest.(check int) "two spans open" 2 (Rwt_obs.span_depth ());
            "answer");
      )
  in
  Alcotest.(check string) "with_span returns f's value" "answer" result;
  Alcotest.(check int) "stack drained" 0 (Rwt_obs.span_depth ());
  let outer = Option.get (Rwt_obs.histogram_summary "span.outer") in
  let inner = Option.get (Rwt_obs.histogram_summary "span.inner") in
  Alcotest.(check (float 1e-9)) "outer duration includes inner" 4.0 outer.Rwt_obs.sum;
  Alcotest.(check (float 1e-9)) "inner duration" 3.0 inner.Rwt_obs.sum;
  (* trace events: chronological by start, µs timestamps, args preserved;
     metadata ("M") records label the lanes and are filtered out here *)
  match Rwt_obs.trace_json () with
  | Json.Obj fields ->
    let events =
      match List.assoc "traceEvents" fields with
      | Json.List l -> l
      | _ -> Alcotest.fail "traceEvents must be a list"
    in
    let ph e =
      match e with
      | Json.Obj f ->
        (match List.assoc_opt "ph" f with Some (Json.String s) -> s | _ -> "?")
      | _ -> "?"
    in
    Alcotest.(check int) "one thread_name record for the single lane" 1
      (List.length (List.filter (fun e -> ph e = "M") events));
    (match List.filter (fun e -> ph e = "X") events with
     | [ Json.Obj e1; Json.Obj e2 ] ->
       Alcotest.(check string) "outer first (chronological)" "outer"
         (match List.assoc "name" e1 with Json.String s -> s | _ -> "?");
       Alcotest.(check string) "inner second" "inner"
         (match List.assoc "name" e2 with Json.String s -> s | _ -> "?");
       Alcotest.(check (float 1e-6)) "inner ts = 1s in µs" 1e6
         (match List.assoc "ts" e2 with Json.Float f -> f | _ -> nan);
       Alcotest.(check (float 1e-6)) "inner dur = 3s in µs" 3e6
         (match List.assoc "dur" e2 with Json.Float f -> f | _ -> nan);
       Alcotest.(check bool) "span events carry the domain id as tid" true
         (List.assoc_opt "tid" e1 = Some (Json.Int (Domain.self () :> int)));
       Alcotest.(check bool) "inner carries args" true
         (match List.assoc_opt "args" e2 with
          | Some (Json.Obj [ ("k", Json.String "v") ]) -> true
          | _ -> false)
     | _ -> Alcotest.fail "expected exactly two span trace events")
  | _ -> Alcotest.fail "trace_json must be an object"

let span_exception_safety () =
  fresh ();
  (try
     Rwt_obs.with_span "boom" (fun () -> failwith "kaboom")
   with Failure _ -> ());
  Alcotest.(check int) "span closed on exception" 0 (Rwt_obs.span_depth ());
  let s = Option.get (Rwt_obs.histogram_summary "span.boom") in
  Alcotest.(check int) "duration recorded despite exception" 1 s.Rwt_obs.count

let span_underflow () =
  fresh ();
  Rwt_obs.span_end ();
  Alcotest.(check int) "stray span_end counted, not raised" 1
    (Rwt_obs.counter_value "obs.span_underflow")

(* --- disabled mode --- *)

let disabled_is_noop () =
  fresh ();
  Rwt_obs.disable ();
  Rwt_obs.incr "c";
  Rwt_obs.add "c" 10;
  Rwt_obs.gauge "g" 1.0;
  Rwt_obs.gauge_max "g2" 1.0;
  Rwt_obs.observe "h" 1.0;
  let v = Rwt_obs.with_span "s" (fun () -> 17) in
  Rwt_obs.span_end ();
  Alcotest.(check int) "with_span still runs f" 17 v;
  Alcotest.(check int) "no spans tracked" 0 (Rwt_obs.span_depth ());
  Alcotest.(check bool) "nothing recorded" true (Rwt_obs.metric_names () = []);
  Alcotest.(check int) "counter untouched" 0 (Rwt_obs.counter_value "c");
  Alcotest.(check bool) "not enabled" false (Rwt_obs.enabled ());
  Rwt_obs.enable ();
  Rwt_obs.incr "c";
  Alcotest.(check int) "recording resumes after enable" 1 (Rwt_obs.counter_value "c")

(* --- instrumented pipeline publishes the advertised metrics --- *)

let pipeline_metrics () =
  fresh ();
  let a = Rwt_workflow.Instances.example_a () in
  ignore (Rwt_core.Exact.period_exn Rwt_workflow.Comm_model.Strict a);
  ignore (Rwt_core.Poly_overlap.period a);
  ignore (Rwt_sim.Schedule.run Rwt_workflow.Comm_model.Overlap a ~datasets:12);
  let names = Rwt_obs.metric_names () in
  List.iter
    (fun key ->
      Alcotest.(check bool) (key ^ " recorded") true (List.mem key names))
    [ "mcr.iterations"; "mcr.solves"; "mcr.nodes"; "mcr.edges"; "tpn.rows";
      "tpn.transitions"; "tpn.places"; "poly.components"; "poly.pattern_nodes";
      "sim.events"; "span.mcr.solve"; "span.tpn.build"; "span.poly.analyze";
      "span.sim.run" ];
  Alcotest.(check bool) "at least 10 distinct metrics" true (List.length names >= 10);
  Alcotest.(check (float 0.0)) "tpn.rows is m = 6" 6.0
    (Option.get (Rwt_obs.gauge_value "tpn.rows"))

(* --- size guards --- *)

let expand_cap_guard () =
  fresh ();
  let a = Rwt_workflow.Instances.example_a () in
  let net = Rwt_core.Tpn_build.build_exn Rwt_workflow.Comm_model.Strict a in
  let tpn = net.Rwt_core.Tpn_build.tpn in
  (match Rwt_petri.Expand.one_bounded ~transition_cap:3 tpn with
   | Error e ->
     Alcotest.(check bool) "typed as a capacity error" true
       (e.Rwt_err.class_ = Rwt_err.Capacity);
     Alcotest.(check bool) "message reports the cap" true
       (contains e.Rwt_err.message "exceeding the cap");
     Alcotest.(check bool) "message reports the marking m" true
       (contains e.Rwt_err.message "m = ")
   | Ok _ -> Alcotest.fail "expansion above the cap must fail");
  Alcotest.(check int) "rejection counted" 1 (Rwt_obs.counter_value "expand.rejections");
  (* under the default cap the same expansion succeeds *)
  (match Rwt_petri.Expand.one_bounded tpn with
   | Ok _ -> ()
   | Error e -> Alcotest.fail (Rwt_err.to_line e))

let tpn_build_cap_guard () =
  fresh ();
  let a = Rwt_workflow.Instances.example_a () in
  let old = Rwt_petri.Expand.transition_cap () in
  Rwt_petri.Expand.set_transition_cap 5;
  Fun.protect ~finally:(fun () -> Rwt_petri.Expand.set_transition_cap old)
    (fun () ->
      match Rwt_core.Tpn_build.build Rwt_workflow.Comm_model.Overlap a with
      | Error e ->
        Alcotest.(check bool) "typed as a capacity error" true
          (e.Rwt_err.class_ = Rwt_err.Capacity);
        Alcotest.(check bool) "reports m and projection" true
          (contains e.Rwt_err.message "m = 6" && contains e.Rwt_err.message "42")
      | Ok _ -> Alcotest.fail "build above the cap must fail");
  Alcotest.(check bool) "cap restored" true
    (Rwt_petri.Expand.transition_cap () = old);
  (* restored cap admits the build again *)
  ignore (Rwt_core.Tpn_build.build_exn Rwt_workflow.Comm_model.Overlap a)

let cap_validation () =
  Alcotest.check_raises "cap must be positive"
    (Invalid_argument "Expand.set_transition_cap: cap must be positive")
    (fun () -> Rwt_petri.Expand.set_transition_cap 0)

(* --- JSON export round-trips --- *)

let reparse_stable j =
  let compact = Json.to_string j in
  List.iter
    (fun s ->
      match Json.of_string s with
      | Error e -> Alcotest.failf "export did not parse: %s (in %s)" e s
      | Ok v ->
        Alcotest.(check string) "parse normalizes to the compact form" compact
          (Json.to_string v))
    [ compact; Json.to_string ~pretty:true j ]

let metrics_json_roundtrip () =
  fresh ~trace:true ();
  let t = fake_clock () in
  Rwt_obs.reset ();
  Rwt_obs.incr "a.count";
  Rwt_obs.add "a.count" 5;
  Rwt_obs.gauge "b.gauge" 2.5;
  List.iter (Rwt_obs.observe "c.hist") [ 0.001; 0.01; 0.1 ];
  Rwt_obs.with_span "phase" (fun () -> t := !t +. 0.25);
  reparse_stable (Rwt_obs.metrics_json ());
  reparse_stable (Rwt_obs.trace_json ());
  (* spot-check content through the parser *)
  match Json.of_string (Json.to_string (Rwt_obs.metrics_json ())) with
  | Ok (Json.Obj fields) ->
    (match List.assoc "counters" fields with
     | Json.Obj cs ->
       Alcotest.(check bool) "counter survives the round-trip" true
         (List.assoc "a.count" cs = Json.Int 6)
     | _ -> Alcotest.fail "counters must be an object");
    (match List.assoc "schema" fields with
     | Json.String s -> Alcotest.(check string) "schema" "rwt.metrics/1" s
     | _ -> Alcotest.fail "schema must be a string")
  | Ok _ -> Alcotest.fail "metrics_json must be an object"
  | Error e -> Alcotest.fail e

(* --- structured event ring --- *)

let event_ring_drop_oldest () =
  fresh ~events:true ();
  Rwt_obs.set_event_capacity 4;
  Fun.protect ~finally:(fun () -> Rwt_obs.set_event_capacity 8192) @@ fun () ->
  for i = 1 to 6 do
    Rwt_obs.event "tick" ~fields:[ ("i", Json.Int i) ]
  done;
  Alcotest.(check int) "all pushes counted" 6 (Rwt_obs.event_count ());
  let s = Rwt_obs.event_stats () in
  Alcotest.(check int) "recorded" 6 s.Rwt_obs.recorded;
  Alcotest.(check int) "kept = capacity" 4 s.Rwt_obs.kept;
  Alcotest.(check int) "dropped = overflow" 2 s.Rwt_obs.dropped;
  Alcotest.(check int) "capacity" 4 s.Rwt_obs.capacity;
  Alcotest.(check bool) "by_name counts the window" true
    (s.Rwt_obs.by_name = [ ("tick", 4) ]);
  (* retained window is the newest 4, oldest first *)
  let is =
    List.map
      (fun e ->
        match e with
        | Json.Obj f ->
          Alcotest.(check bool) "record carries ts/dom/ev" true
            (List.mem_assoc "ts" f && List.mem_assoc "dom" f
             && List.assoc_opt "ev" f = Some (Json.String "tick"));
          (match List.assoc "i" f with Json.Int i -> i | _ -> -1)
        | _ -> -1)
      (Rwt_obs.events_json ())
  in
  Alcotest.(check (list int)) "oldest two overwritten" [ 3; 4; 5; 6 ] is;
  (* NDJSON: one \n-terminated parseable object per line *)
  let nd = Rwt_obs.events_ndjson () in
  let lines = String.split_on_char '\n' nd in
  Alcotest.(check bool) "final newline" true
    (String.length nd > 0 && nd.[String.length nd - 1] = '\n');
  List.iter
    (fun l ->
      if l <> "" then
        match Json.of_string l with
        | Ok (Json.Obj _) -> ()
        | Ok _ -> Alcotest.fail "NDJSON line must be an object"
        | Error e -> Alcotest.failf "NDJSON line did not parse: %s (%s)" e l)
    lines;
  Alcotest.(check int) "4 lines + trailing empty" 5 (List.length lines)

let events_off_by_default () =
  fresh ();
  Rwt_obs.event "tick";
  Alcotest.(check bool) "events gated behind ~events:true" false
    (Rwt_obs.events_enabled ());
  Alcotest.(check int) "nothing recorded" 0 (Rwt_obs.event_count ())

(* --- Prometheus exposition --- *)

let prometheus_format () =
  fresh ();
  Rwt_obs.add "mcr.iterations" 42;
  Rwt_obs.gauge "tpn.rows" 6.0;
  List.iter (Rwt_obs.observe "solve-time.s") [ 1.0; 2.0; 3.0 ];
  let body = Rwt_obs.prometheus () in
  List.iter
    (fun frag ->
      Alcotest.(check bool) (Printf.sprintf "contains %S" frag) true
        (contains body frag))
    [ "# TYPE rwt_mcr_iterations_total counter";
      "rwt_mcr_iterations_total 42";
      "# TYPE rwt_tpn_rows gauge";
      "rwt_tpn_rows 6";
      (* '-' and '.' both mangle to '_' *)
      "# TYPE rwt_solve_time_s summary";
      "rwt_solve_time_s{quantile=\"0.5\"}";
      "rwt_solve_time_s{quantile=\"0.9\"}";
      "rwt_solve_time_s{quantile=\"0.99\"}";
      "rwt_solve_time_s_sum 6";
      "rwt_solve_time_s_count 3";
      "# HELP" ];
  (* every non-comment line is "name[{labels}] value" *)
  List.iter
    (fun l ->
      if l <> "" && l.[0] <> '#' then
        match String.index_opt l ' ' with
        | None -> Alcotest.failf "malformed exposition line: %s" l
        | Some i ->
          let v = String.sub l (i + 1) (String.length l - i - 1) in
          (match float_of_string_opt v with
           | Some _ -> ()
           | None ->
             Alcotest.(check bool) (Printf.sprintf "numeric value in %S" l) true
               (List.mem v [ "NaN"; "+Inf"; "-Inf" ])))
    (String.split_on_char '\n' body)

let prometheus_roundtrip () =
  fresh ();
  Rwt_obs.incr "c";
  Rwt_obs.gauge "g" 2.5;
  Rwt_obs.observe "h" 0.25;
  (match Rwt_obs.prometheus_of_json (Rwt_obs.metrics_json ()) with
   | Ok body ->
     Alcotest.(check string) "from-JSON render = live render"
       (Rwt_obs.prometheus ()) body
   | Error e -> Alcotest.failf "round-trip failed: %s" e);
  (* a bench-obs wrapper holding the dump under "metrics" also renders *)
  (match
     Rwt_obs.prometheus_of_json
       (Json.Obj [ ("schema", Json.String "rwt.bench-obs/1");
                   ("metrics", Rwt_obs.metrics_json ()) ])
   with
   | Ok body ->
     Alcotest.(check string) "wrapper unwraps to the same render"
       (Rwt_obs.prometheus ()) body
   | Error e -> Alcotest.failf "wrapper render failed: %s" e);
  match Rwt_obs.prometheus_of_json (Json.List []) with
  | Ok _ -> Alcotest.fail "non-metrics JSON must be rejected"
  | Error _ -> ()

(* --- metric diffing --- *)

let glob_matching () =
  List.iter
    (fun (pat, s, want) ->
      Alcotest.(check bool) (Printf.sprintf "%S ~ %S" pat s) want
        (Rwt_obs.glob_match pat s))
    [ ("*", "anything", true);
      ("*speedup*", "rows.0.speedup", true);
      ("*speedup*", "speedup", true);
      ("*speedup*", "rows.0.t_exact_s", false);
      ("a*c", "abc", true);
      ("a*c", "ac", true);
      ("a*c", "abd", false);
      ("literal", "literal", true);
      ("literal", "literally", false);
      ("", "", true);
      ("", "x", false) ]

let flatten_paths () =
  let doc =
    Json.Obj
      [ ("rows",
         Json.List
           [ Json.Obj [ ("t_exact_s", Json.Float 0.5); ("name", Json.String "a") ];
             Json.Obj [ ("t_exact_s", Json.Float 0.25) ] ]);
        ("total", Json.Int 7);
        ("skip", Json.Bool true) ]
  in
  Alcotest.(check (list (pair string (float 0.0))))
    "numeric leaves under dotted paths, sorted"
    [ ("rows.0.t_exact_s", 0.5); ("rows.1.t_exact_s", 0.25); ("total", 7.0) ]
    (Rwt_obs.flatten_numeric doc)

let diff_classification () =
  let metrics kvs = Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) kvs) in
  let old_json =
    metrics [ ("t_solve", 1.0); ("speedup", 4.0); ("tiny", 1e-9); ("gone", 1.0) ]
  and new_json =
    metrics [ ("t_solve", 1.3); ("speedup", 3.0); ("tiny", 2e-9); ("born", 1.0) ]
  in
  let r =
    Rwt_obs.diff_metrics ~threshold:0.10 ~min_delta:1e-6
      ~higher_better:(Rwt_obs.glob_match "*speedup*")
      ~old_json ~new_json ()
  in
  Alcotest.(check int) "two regressions" 2 r.Rwt_obs.regressions;
  Alcotest.(check int) "no improvements" 0 r.Rwt_obs.improvements;
  Alcotest.(check (list string)) "key only in OLD" [ "gone" ] r.Rwt_obs.only_old;
  Alcotest.(check (list string)) "key only in NEW" [ "born" ] r.Rwt_obs.only_new;
  let status k =
    (List.find (fun e -> e.Rwt_obs.key = k) r.Rwt_obs.entries).Rwt_obs.status
  in
  Alcotest.(check bool) "+30% time is a regression" true
    (status "t_solve" = Rwt_obs.Regression);
  Alcotest.(check bool) "-25% speedup is a regression (higher is better)" true
    (status "speedup" = Rwt_obs.Regression);
  Alcotest.(check bool) "+100% below min_delta is unchanged" true
    (status "tiny" = Rwt_obs.Unchanged);
  (* the same inputs flipped: regressions become improvements *)
  let r' =
    Rwt_obs.diff_metrics ~threshold:0.10 ~min_delta:1e-6
      ~higher_better:(Rwt_obs.glob_match "*speedup*")
      ~old_json:new_json ~new_json:old_json ()
  in
  Alcotest.(check int) "flipped: no regressions" 0 r'.Rwt_obs.regressions;
  Alcotest.(check int) "flipped: two improvements" 2 r'.Rwt_obs.improvements;
  (* identical inputs: nothing moves *)
  let r0 = Rwt_obs.diff_metrics ~old_json ~new_json:old_json () in
  Alcotest.(check int) "identical: no regressions" 0 r0.Rwt_obs.regressions;
  Alcotest.(check int) "identical: no improvements" 0 r0.Rwt_obs.improvements;
  Alcotest.(check bool) "identical: all entries unchanged" true
    (List.for_all (fun e -> e.Rwt_obs.status = Rwt_obs.Unchanged) r0.Rwt_obs.entries)

(* --- profile table sorting --- *)

let span_table_sorting () =
  fresh ();
  let t = fake_clock () in
  Rwt_obs.reset ();
  let record name dur calls =
    for _ = 1 to calls do
      Rwt_obs.span_begin name;
      t := !t +. dur;
      Rwt_obs.span_end ()
    done
  in
  record "slow" 5.0 1;          (* total 5.0, 1 call *)
  record "frequent" 0.5 8;      (* total 4.0, 8 calls *)
  record "medium" 1.0 3;        (* total 3.0, 3 calls *)
  let names rows = List.map (fun r -> r.Rwt_obs.span) rows in
  Alcotest.(check (list string)) "default sorts by total"
    [ "slow"; "frequent"; "medium" ]
    (names (Rwt_obs.span_table ()));
  Alcotest.(check (list string)) "By_calls"
    [ "frequent"; "medium"; "slow" ]
    (names (Rwt_obs.span_table ~sort:Rwt_obs.By_calls ()));
  Alcotest.(check (list string)) "By_mean"
    [ "slow"; "medium"; "frequent" ]
    (names (Rwt_obs.span_table ~sort:Rwt_obs.By_mean ()));
  Alcotest.(check (list string)) "top truncates after sorting"
    [ "frequent"; "medium" ]
    (names (Rwt_obs.span_table ~sort:Rwt_obs.By_calls ~top:2 ()));
  let table =
    Format.asprintf "%a" (fun fmt () -> Rwt_obs.pp_span_table ~top:2 fmt ()) ()
  in
  Alcotest.(check bool) "pp notes the truncation" true
    (contains table "top 2 of 3")

(* --- multi-domain stress: shared registry under concurrent recording --- *)

let stress_domains () =
  fresh ~trace:true ~events:true ();
  let domains = 4 and iters = 500 in
  let body () =
    for i = 1 to iters do
      Rwt_obs.incr "stress.count";
      Rwt_obs.observe "stress.hist" (float_of_int i);
      Rwt_obs.with_span "stress.work" (fun () ->
          Rwt_obs.sample "stress.depth" (float_of_int (i mod 7)));
      Rwt_obs.event "stress.tick" ~fields:[ ("i", Json.Int i) ]
    done
  in
  let ds = Array.init domains (fun _ -> Domain.spawn body) in
  Array.iter Domain.join ds;
  let n = domains * iters in
  Alcotest.(check int) "no lost counter increments" n
    (Rwt_obs.counter_value "stress.count");
  Alcotest.(check int) "no lost histogram samples" n
    (Option.get (Rwt_obs.histogram_summary "stress.hist")).Rwt_obs.count;
  Alcotest.(check int) "every span closed exactly once" n
    (Option.get (Rwt_obs.histogram_summary "span.stress.work")).Rwt_obs.count;
  Alcotest.(check int) "no span underflow across domains" 0
    (Rwt_obs.counter_value "obs.span_underflow");
  Alcotest.(check int) "no lost events" n (Rwt_obs.event_count ());
  let s = Rwt_obs.event_stats () in
  Alcotest.(check int) "ring kept everything (capacity 8192)" n s.Rwt_obs.kept;
  Alcotest.(check int) "nothing dropped" 0 s.Rwt_obs.dropped;
  (* exports stay valid JSON under the concurrent write history *)
  reparse_stable (Rwt_obs.metrics_json ());
  reparse_stable (Rwt_obs.trace_json ());
  List.iter
    (fun l ->
      if l <> "" then
        match Json.of_string l with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "stress NDJSON line broken: %s" e)
    (String.split_on_char '\n' (Rwt_obs.events_ndjson ()));
  (* each domain got its own trace lane *)
  match Rwt_obs.trace_json () with
  | Json.Obj fields ->
    let tids = Hashtbl.create 8 in
    (match List.assoc "traceEvents" fields with
     | Json.List l ->
       List.iter
         (fun e ->
           match e with
           | Json.Obj f when List.assoc_opt "ph" f = Some (Json.String "X") ->
             (match List.assoc_opt "tid" f with
              | Some (Json.Int t) -> Hashtbl.replace tids t ()
              | _ -> Alcotest.fail "span event without tid")
           | _ -> ())
         l
     | _ -> Alcotest.fail "traceEvents must be a list");
    Alcotest.(check int) "one lane per recording domain" domains
      (Hashtbl.length tids)
  | _ -> Alcotest.fail "trace_json must be an object"

(* random JSON documents round-trip: to_string ∘ of_string ∘ to_string = to_string *)
let json_gen =
  let open QCheck.Gen in
  let scalar =
    oneof
      [ return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) int;
        (* -0.0 prints as "-0" but reparses as Int 0; normalize it away *)
        map (fun f -> Json.Float (if f = 0.0 then 0.0 else f)) (float_range (-1e9) 1e9);
        map (fun s -> Json.String s) (string_size ~gen:printable (int_range 0 12)) ]
  in
  let key = string_size ~gen:printable (int_range 0 8) in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then scalar
          else
            frequency
              [ (2, scalar);
                (1, map (fun l -> Json.List l) (list_size (int_range 0 4) (self (n / 2))));
                (1,
                 map (fun kvs -> Json.Obj kvs)
                   (list_size (int_range 0 4) (pair key (self (n / 2))))) ])
        (min n 6))

let json_roundtrip =
  QCheck.Test.make ~count:500 ~name:"Json.of_string ∘ to_string = id (modulo printing)"
    (QCheck.make json_gen ~print:(fun j -> Json.to_string j))
    (fun j ->
      let s = Json.to_string j in
      match Json.of_string s with
      | Error _ -> false
      | Ok v ->
        Json.to_string v = s
        && (match Json.of_string (Json.to_string ~pretty:true j) with
            | Ok v' -> Json.to_string v' = s
            | Error _ -> false))

let () =
  Alcotest.run "rwt_obs"
    [ ( "counters & gauges",
        [ Alcotest.test_case "counter math" `Quick counter_math;
          Alcotest.test_case "gauge math" `Quick gauge_math ] );
      ( "histograms",
        [ Alcotest.test_case "exact stats" `Quick histogram_exact_stats;
          Alcotest.test_case "constant stream percentiles" `Quick percentile_single_value;
          qtest percentile_bounds ] );
      ( "spans",
        [ Alcotest.test_case "nesting & trace events" `Quick span_nesting;
          Alcotest.test_case "exception safety" `Quick span_exception_safety;
          Alcotest.test_case "underflow" `Quick span_underflow ] );
      ( "disabled mode",
        [ Alcotest.test_case "no-op" `Quick disabled_is_noop ] );
      ( "pipeline",
        [ Alcotest.test_case "advertised metrics" `Quick pipeline_metrics ] );
      ( "size guards",
        [ Alcotest.test_case "expand cap" `Quick expand_cap_guard;
          Alcotest.test_case "tpn build cap" `Quick tpn_build_cap_guard;
          Alcotest.test_case "cap validation" `Quick cap_validation ] );
      ( "events",
        [ Alcotest.test_case "ring drops oldest" `Quick event_ring_drop_oldest;
          Alcotest.test_case "off by default" `Quick events_off_by_default ] );
      ( "prometheus",
        [ Alcotest.test_case "exposition format" `Quick prometheus_format;
          Alcotest.test_case "json round-trip" `Quick prometheus_roundtrip ] );
      ( "diff",
        [ Alcotest.test_case "glob matching" `Quick glob_matching;
          Alcotest.test_case "flatten paths" `Quick flatten_paths;
          Alcotest.test_case "classification" `Quick diff_classification ] );
      ( "profile",
        [ Alcotest.test_case "span table sorting" `Quick span_table_sorting ] );
      ( "stress",
        [ Alcotest.test_case "4-domain recording" `Quick stress_domains ] );
      ( "json",
        [ Alcotest.test_case "metrics round-trip" `Quick metrics_json_roundtrip;
          qtest json_roundtrip ] ) ]
