type result = { count : int; comp : int array }

let undirected g =
  let n = Digraph.num_nodes g in
  let comp = Array.make n (-1) in
  let adj = Array.make n [] in
  Digraph.iter_edges
    (fun e ->
      adj.(e.Digraph.src) <- e.Digraph.dst :: adj.(e.Digraph.src);
      adj.(e.Digraph.dst) <- e.Digraph.src :: adj.(e.Digraph.dst))
    g;
  let count = ref 0 in
  for root = 0 to n - 1 do
    if comp.(root) = -1 then begin
      let c = !count in
      incr count;
      let stack = ref [ root ] in
      comp.(root) <- c;
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | u :: tl ->
          stack := tl;
          List.iter
            (fun v ->
              if comp.(v) = -1 then begin
                comp.(v) <- c;
                stack := v :: !stack
              end)
            adj.(u)
      done
    end
  done;
  { count = !count; comp }

let members r =
  let buckets = Array.make r.count [] in
  for v = Array.length r.comp - 1 downto 0 do
    buckets.(r.comp.(v)) <- v :: buckets.(r.comp.(v))
  done;
  buckets
