(** Theorem 1: polynomial computation of the OVERLAP ONE-PORT period.

    In the OVERLAP TPN every circuit stays inside one column, so the period
    decomposes per column:

    - computation column of stage [i]: each replica [P_u] is a circuit of
      identical transitions; its contribution is [w_i / (m_i·Π_u)];
    - transfer column of file [F_i]: the sub-TPN splits into
      [p = gcd(m_i, m_{i+1})] independent components; each component is
      [c = m / lcm(m_i, m_{i+1})] copies of one [u×v] pattern
      ([u = m_i/p], [v = m_{i+1}/p]). Quotienting the component onto a single
      pattern maps cycles to cycles of equal ratio once tokens are counted as
      winding numbers, so the component's contribution is the pattern
      graph's maximum cycle ratio divided by [lcm(m_i, m_{i+1})].

    The pattern graph lives on [Z_{uv}] (node [τ] ↔ the transfer whose
    sender replica is [q + p·(τ mod u)] and receiver replica
    [q + p·(τ mod v)]) with steps [+u] (sender round-robin) and [+v]
    (receiver round-robin); an edge carries one token iff it wraps past
    [uv]. Total cost is polynomial in [Σ m_i·m_{i+1}], never touching the
    [m]-row TPN. *)

open Rwt_util
open Rwt_workflow

type compute_column = {
  stage : int;
  per_proc : (int * Rat.t) list;  (** replica → period contribution *)
  bound : Rat.t;  (** max of the contributions *)
}

type component = {
  q : int;  (** component index in [0, p) *)
  senders : int array;  (** processor ids, round-robin order *)
  receivers : int array;
  ratio : Rat.t;  (** critical cycle ratio of the pattern graph *)
  bound : Rat.t;  (** [ratio / lcm(m_i, m_{i+1})] *)
}

type comm_column = {
  file : int;
  p : int;
  u : int;
  v : int;
  c : Bigint.t;  (** pattern copies per component, [m / lcm] *)
  block : int;  (** [lcm(m_i, m_{i+1})] *)
  components : component list;
  bound : Rat.t;
}

type column = Compute_col of compute_column | Comm_col of comm_column

type analysis = { columns : column list; period : Rat.t }

val analyze :
  ?deadline:(unit -> bool) -> ?workers:int -> Instance.t -> analysis
(** Full column decomposition. The [p] components of each transfer column
    are independent sub-problems: with [~workers:w > 1] (or, by default, on
    columns big enough to amortize domain spawns — see
    {!Rwt_petri.Mcr.scc_parallel_threshold}) they solve on the shared
    {!Rwt_pool}; results are collected in component order, so parallel and
    serial analyses are byte-identical. Component solves are memoized on
    the exact transfer profile (counters [poly.memo_hits] /
    [poly.memo_misses]); the [deadline] closure is polled at every column
    and component start — and inside each solve — raising
    [Rwt_util.Rwt_err.Error] (class [Timeout], code ["poly.deadline"]). *)

val period : ?deadline:(unit -> bool) -> ?workers:int -> Instance.t -> Rat.t
(** The OVERLAP ONE-PORT period — equal to [Exact.period Overlap] but
    computed in polynomial time. *)

val reset_memo : unit -> unit
(** Clear the component-solve memo (benchmarks and tests that measure cold
    solves). *)

val memo_cap : int ref
(** Capacity bound of the component-solve memo (default 4096). When a
    {e new} key arrives with the table at capacity, the table resets rather
    than evicting — duplicate stores (two workers racing on the same
    component) are no-ops and never trigger the reset. Mutable for tests. *)

val memo_size : unit -> int
(** Current number of memoized component ratios. *)

val memo_store : string -> Rat.t -> unit
(** Insert into the component-solve memo under an arbitrary key (no-op when
    the key is present). Exposed for the capacity-semantics regression
    test; production code derives keys internally. *)

val memo_find : string -> Rat.t option
(** Lookup by raw key; counterpart of {!memo_store}. *)

val pattern_graph : Instance.t -> file:int -> q:int -> Rwt_petri.Mcr.Exact.graph
(** The [u×v] pattern graph [G'] of one component (Figures 9, 10, 14);
    exposed for reporting and tests. *)

val column_bound : Instance.t -> column -> Rat.t
(** The contribution of one column ([bound] field, uniform accessor). *)

val pp_analysis : Format.formatter -> analysis -> unit
