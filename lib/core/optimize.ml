open Rwt_util
open Rwt_workflow

type result = {
  mapping : Mapping.t;
  period : Rat.t;
  evaluations : int;
}

let too_few_procs ~n ~p =
  Rwt_err.validate ~code:"validate.optimize"
    ~context:[ ("stages", string_of_int n); ("processors", string_of_int p) ]
    "fewer processors than stages: every stage needs at least one dedicated processor"

(* [session] routes STRICT scoring through the delta layer: replica-preserving
   moves (swaps) keep the replication vector, so they patch the cached graph
   in place and warm-start the solver; shape-changing moves fall back to a
   cold solve inside the session and re-arm it on the new skeleton.
   Every successful score bumps the [optimize.evaluations] counter, which is
   what the [evaluations] field of {!result} must equal exactly. *)
let evaluate ?session ?deadline model pipeline platform assignment ~p ~m_cap =
  let n = Array.length assignment in
  match Mapping.create ~n_stages:n ~p assignment with
  | Error _ -> None
  | Ok mapping ->
    (match Mapping.num_paths mapping with
     | exception Failure _ -> None
     | m when m > m_cap -> None
     | _ ->
       let inst = Instance.create_exn ~name:"candidate" ~pipeline ~platform ~mapping in
       let period =
         match (model, session) with
         | Comm_model.Overlap, _ -> Poly_overlap.period ?deadline inst
         | Comm_model.Strict, Some s -> Delta.period_exn ?deadline s inst
         | Comm_model.Strict, None ->
           (Exact.period_exn ?deadline model inst).Exact.period
       in
       Rwt_obs.incr "optimize.evaluations";
       Some (mapping, period))

let greedy ?deadline model pipeline platform =
  let n = Pipeline.n_stages pipeline in
  let p = Platform.p platform in
  if p < n then Error (too_few_procs ~n ~p)
  else begin
    (* stages in decreasing work order pick the fastest remaining processor *)
    let stages = List.init n (fun i -> i) in
    let stages =
      List.sort
        (fun a b -> Rat.compare (Pipeline.work pipeline b) (Pipeline.work pipeline a))
        stages
    in
    let procs = List.init p (fun u -> u) in
    let procs =
      List.sort
        (fun a b -> Rat.compare (Platform.speed platform b) (Platform.speed platform a))
        procs
    in
    let assignment = Array.make n [||] in
    List.iteri
      (fun k stage -> assignment.(stage) <- [| List.nth procs k |])
      stages;
    match
      Rwt_err.catch (fun () ->
          evaluate ?deadline model pipeline platform assignment ~p ~m_cap:max_int)
    with
    | Ok (Some (mapping, period)) -> Ok { mapping; period; evaluations = 1 }
    | Ok None ->
      Error (Rwt_err.internal ~code:"internal.optimize" "Optimize.greedy: internal error")
    | Error e -> Error e
  end

let greedy_exn ?deadline model pipeline platform =
  match greedy ?deadline model pipeline platform with
  | Ok r -> r
  | Error e -> Rwt_err.raise_ e

(* the shared move kernel: one randomized neighbourhood step over an
   assignment, also driven by {!Search}'s scalarized walks *)
let propose r ~p ~n assignment =
  let a = Array.map Array.copy assignment in
  let u = Array.make p false in
  Array.iter (Array.iter (fun x -> u.(x) <- true)) a;
  let idle = List.filter (fun x -> not u.(x)) (List.init p (fun x -> x)) in
  let add_replica () =
    match idle with
    | [] -> None
    | _ ->
      let proc = List.nth idle (Prng.int r (List.length idle)) in
      let stage = Prng.int r n in
      a.(stage) <- Array.append a.(stage) [| proc |];
      Some a
  in
  let retire () =
    let stage = Prng.int r n in
    let k = Array.length a.(stage) in
    if k <= 1 then None
    else begin
      let victim = Prng.int r k in
      a.(stage) <-
        Array.of_list (List.filteri (fun i _ -> i <> victim) (Array.to_list a.(stage)));
      Some a
    end
  in
  let move () =
    let from_stage = Prng.int r n and to_stage = Prng.int r n in
    let k = Array.length a.(from_stage) in
    if from_stage = to_stage || k <= 1 then None
    else begin
      let victim = Prng.int r k in
      let proc = a.(from_stage).(victim) in
      a.(from_stage) <-
        Array.of_list
          (List.filteri (fun i _ -> i <> victim) (Array.to_list a.(from_stage)));
      a.(to_stage) <- Array.append a.(to_stage) [| proc |];
      Some a
    end
  in
  let swap () =
    let s1 = Prng.int r n and s2 = Prng.int r n in
    if s1 = s2 then None
    else begin
      let i1 = Prng.int r (Array.length a.(s1)) in
      let i2 = Prng.int r (Array.length a.(s2)) in
      let tmp = a.(s1).(i1) in
      a.(s1).(i1) <- a.(s2).(i2);
      a.(s2).(i2) <- tmp;
      Some a
    end
  in
  let swap_idle () =
    match idle with
    | [] -> None
    | _ ->
      let proc = List.nth idle (Prng.int r (List.length idle)) in
      let stage = Prng.int r n in
      let i = Prng.int r (Array.length a.(stage)) in
      a.(stage).(i) <- proc;
      Some a
  in
  match Prng.int r 5 with
  | 0 -> add_replica ()
  | 1 -> retire ()
  | 2 -> move ()
  | 3 -> swap ()
  | _ -> swap_idle ()

let local_search ?(seed = 42) ?(iterations = 400) ?(m_cap = 720) ?deadline model
    pipeline platform =
  let n = Pipeline.n_stages pipeline in
  let p = Platform.p platform in
  let r = Prng.create seed in
  let session =
    match model with
    | Comm_model.Strict -> Some (Delta.create model)
    | Comm_model.Overlap -> None
  in
  match greedy ?deadline model pipeline platform with
  | Error e -> Error e
  | Ok start ->
    (* random walk with tolerance: single moves often degrade the period
       before a paired move pays off (adding a slow replica slows its stage's
       round-robin until a second replica joins), so strictly-improving search
       stalls in the no-replication optimum *)
    let current = ref (Array.init n (fun i -> Mapping.procs start.mapping i)) in
    let current_period = ref start.period in
    let best_mapping = ref start.mapping in
    let best_period = ref start.period in
    let evaluations = ref 1 in
    (* accept improvements always; accept mild degradations (< 60%) with
       probability 1/3 to cross fitness valleys; restart from the best-so-far
       when the walk drifts too far *)
    let tolerance = Rat.of_ints 8 5 in
    let expired () = match deadline with None -> false | Some d -> d () in
    (* cooperative interruption: the per-iteration poll catches cheap steps,
       the deadline threaded into the solvers catches one long solve; either
       way the walk stops and the best mapping found so far is the result *)
    let exception Out_of_time in
    (try
       for step = 1 to iterations do
         if expired () then raise_notrace Out_of_time;
         if step mod 60 = 0 then begin
           current := Array.init n (fun i -> Mapping.procs !best_mapping i);
           current_period := !best_period
         end;
         match propose r ~p ~n !current with
         | None -> ()
         | Some candidate ->
           (match
              evaluate ?session ?deadline model pipeline platform candidate ~p ~m_cap
            with
            | None -> ()
            | Some (mapping, period) ->
              incr evaluations;
              if Rat.compare period !best_period < 0 then begin
                best_period := period;
                best_mapping := mapping
              end;
              let accept =
                Rat.compare period !current_period <= 0
                || (Prng.int r 3 = 0
                    && Rat.compare period (Rat.mul !current_period tolerance) < 0)
              in
              if accept then begin
                current := candidate;
                current_period := period
              end)
       done
     with
     | Out_of_time -> ()
     | Rwt_err.Error { Rwt_err.class_ = Rwt_err.Timeout; _ } -> ());
    Ok { mapping = !best_mapping; period = !best_period; evaluations = !evaluations }

let local_search_exn ?seed ?iterations ?m_cap ?deadline model pipeline platform =
  match local_search ?seed ?iterations ?m_cap ?deadline model pipeline platform with
  | Ok r -> r
  | Error e -> Rwt_err.raise_ e

let pp fmt t =
  Format.fprintf fmt "@[<v>period %a after %d evaluations@,%a@]" Rat.pp_approx t.period
    t.evaluations Mapping.pp t.mapping
