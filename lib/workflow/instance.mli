(** A complete problem instance: pipeline + platform + mapping, with the
    derived timing helpers used by every analysis. *)

open Rwt_util

type t = {
  name : string;
  pipeline : Pipeline.t;
  platform : Platform.t;
  mapping : Mapping.t;
}

val create :
  name:string ->
  pipeline:Pipeline.t ->
  platform:Platform.t ->
  mapping:Mapping.t ->
  (t, Rwt_err.t) result
(** [Error] (class [Validate], code ["validate.instance"]) if the mapping
    does not match the pipeline's stage count or the platform's processor
    count. *)

val create_exn :
  name:string -> pipeline:Pipeline.t -> platform:Platform.t -> mapping:Mapping.t -> t
(** Exception shim for {!create}.
    @raise Rwt_err.Error on the same conditions. *)

val compute_time : t -> stage:int -> proc:int -> Rat.t
(** [w_stage / Π_proc]. *)

val transfer_time : t -> file:int -> src:int -> dst:int -> Rat.t
(** [δ_file / b_{src,dst}]. *)

val compute_time_for : t -> stage:int -> dataset:int -> Rat.t
(** Compute time of a data set on its round-robin processor. *)

val transfer_time_for : t -> file:int -> dataset:int -> Rat.t
(** Transfer time of [F_file] for a data set between its round-robin sender
    (stage [file]) and receiver (stage [file+1]). *)

val of_times :
  ?name:string ->
  p:int ->
  stages:(int * Rat.t) list list ->
  links:((int * int) * Rat.t) list ->
  unit ->
  t
(** Convenience constructor used for the paper's figure-style examples where
    {e times} rather than sizes are given: [stages] lists, per stage, the
    [(processor, compute-time)] pairs in round-robin order; [links] gives
    the transfer time of the (unique) file carried by each used link. The
    pipeline gets unit work/data sizes and the platform the matching
    reciprocal speeds/bandwidths, so [compute_time]/[transfer_time]
    reproduce exactly the given values. Unused speeds and bandwidths are 1.
    @raise Invalid_argument on inconsistencies (e.g. one processor with two
    distinct compute times, a link listed twice). *)

val resources : t -> int list
(** The processors actually used by the mapping, ascending. *)

val pp : Format.formatter -> t -> unit
