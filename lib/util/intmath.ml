let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let lcm a b =
  if a = 0 || b = 0 then 0
  else begin
    let a = abs a and b = abs b in
    let g = gcd a b in
    let q = a / g in
    if q > max_int / b then failwith "Intmath.lcm: overflow" else q * b
  end

let lcm_list l = List.fold_left lcm 1 l

let big_lcm_list l =
  let module B = Bigint in
  List.fold_left
    (fun acc n ->
      let n = B.of_int (abs n) in
      if B.is_zero n then B.zero else B.div (B.mul acc n) (B.gcd acc n))
    B.one l

let mul_checked a b =
  if a = 0 || b = 0 then Some 0
  else
    let p = a * b in
    (* division undoes a non-overflowing product exactly; min_int * -1 also
       wraps, and is caught by the same test *)
    if p / b = a && (a >= 0) = (b >= 0) = (p >= 0) then Some p else None

let add_checked a b =
  let s = a + b in
  if (a >= 0 && b >= 0 && s < 0) || (a < 0 && b < 0 && s >= 0) then None else Some s

let pow_int b k =
  if k < 0 then invalid_arg "Intmath.pow_int";
  let rec go acc b k =
    if k = 0 then acc
    else go (if k land 1 = 1 then acc * b else acc) (b * b) (k lsr 1)
  in
  go 1 b k

let ceil_div a b =
  if a < 0 || b <= 0 then invalid_arg "Intmath.ceil_div";
  (a + b - 1) / b
