Sensitivity: on Example B only the seven critical-cycle links help.

  $ rwt sensitivity -e b | head -9
  baseline period 291.67; upgrades by factor 2:
    P0->P3     -> period 270.83 (7.14% better)
    P0->P6     -> period 270.83 (7.14% better)
    P1->P5     -> period 270.83 (7.14% better)
    P1->P6     -> period 270.83 (7.14% better)
    P2->P3     -> period 270.83 (7.14% better)
    P2->P4     -> period 270.83 (7.14% better)
    P2->P5     -> period 270.83 (7.14% better)
    P0         -> period 291.67 (0% better)

Latency under periodic admission (critical load, Example A overlap).

  $ rwt latency -e a -m overlap | head -1
  release period 189: latency worst 852, best 589, mean 724.17 over 6 classes

Stochastic platforms are deterministic in the seed.

  $ rwt stochastic -e a --samples 30 --seed 9 | head -1 > s1.txt
  $ rwt stochastic -e a --samples 30 --seed 9 | head -1 > s2.txt
  $ diff s1.txt s2.txt

The paths and simulate commands agree with the exact period.

  $ rwt simulate -e b -m overlap
  measured period: 291.67 (875/3)
