open Rwt_util
open Rwt_workflow

let event_units sched ev =
  match (Schedule.model sched, ev.Schedule.op) with
  | Comm_model.Overlap, Schedule.Compute { proc; _ } -> [ (proc, `Comp) ]
  | Comm_model.Overlap, Schedule.Transfer { src; dst; _ } ->
    [ (src, `Out); (dst, `In) ]
  | Comm_model.Strict, Schedule.Compute { proc; _ } -> [ (proc, `Serial) ]
  | Comm_model.Strict, Schedule.Transfer { src; dst; _ } ->
    [ (src, `Serial); (dst, `Serial) ]

let unit_name (proc, kind) =
  match kind with
  | `Comp | `Serial -> Platform.proc_name proc
  | `Out -> Platform.proc_name proc ^ "-out"
  | `In -> Platform.proc_name proc ^ "-in"

(* order: processor id, then in < compute < out *)
let unit_rank (proc, kind) =
  (proc * 4) + match kind with `In -> 0 | `Comp | `Serial -> 1 | `Out -> 2

let rows sched =
  let table = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      List.iter
        (fun unit ->
          let cur = try Hashtbl.find table unit with Not_found -> [] in
          Hashtbl.replace table unit (ev :: cur))
        (event_units sched ev))
    (Schedule.events sched);
  Hashtbl.fold (fun unit evs acc -> (unit, evs) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> compare (unit_rank a) (unit_rank b))
  |> List.map (fun (unit, evs) ->
         ( unit_name unit,
           List.sort (fun a b -> Rat.compare a.Schedule.start b.Schedule.start) evs ))

let select ?from_dataset ?until_dataset sched =
  let lo = Option.value from_dataset ~default:0 in
  let hi = Option.value until_dataset ~default:(Schedule.horizon sched - 1) in
  List.map
    (fun (name, evs) ->
      (name, List.filter (fun e -> e.Schedule.dataset >= lo && e.Schedule.dataset <= hi) evs))
    (rows sched)
  |> List.filter (fun (_, evs) -> evs <> [])

let label ev =
  match ev.Schedule.op with
  | Schedule.Compute { stage; _ } -> Printf.sprintf "S%d(%d)" stage ev.Schedule.dataset
  | Schedule.Transfer { file; _ } -> Printf.sprintf "F%d(%d)" file ev.Schedule.dataset

let window rows =
  List.fold_left
    (fun (lo, hi) (_, evs) ->
      List.fold_left
        (fun (lo, hi) e ->
          let lo =
            match lo with
            | None -> Some e.Schedule.start
            | Some l -> Some (Rat.min l e.Schedule.start)
          in
          let hi =
            match hi with
            | None -> Some e.Schedule.finish
            | Some h -> Some (Rat.max h e.Schedule.finish)
          in
          (lo, hi))
        (lo, hi) evs)
    (None, None) rows

let to_ascii ?(width = 100) ?from_dataset ?until_dataset sched =
  let rows = select ?from_dataset ?until_dataset sched in
  match window rows with
  | None, _ | _, None -> "(empty schedule)\n"
  | Some lo, Some hi ->
    let span = Rat.to_float (Rat.sub hi lo) in
    let span = if span <= 0.0 then 1.0 else span in
    let col time =
      let f = (Rat.to_float (Rat.sub time lo)) /. span *. float_of_int width in
      min width (max 0 (int_of_float f))
    in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      (Printf.sprintf "%-8s t=%s .. %s\n" "" (Rat.to_string lo) (Rat.to_string hi));
    List.iter
      (fun (name, evs) ->
        let line = Bytes.make width ' ' in
        List.iter
          (fun e ->
            let a = col e.Schedule.start and b = max (col e.Schedule.start + 1) (col e.Schedule.finish) in
            let fill =
              match e.Schedule.op with Schedule.Compute _ -> '#' | Schedule.Transfer _ -> '=' in
            for c = a to min (b - 1) (width - 1) do
              Bytes.set line c fill
            done;
            let l = label e in
            if String.length l + 2 <= b - a then
              Bytes.blit_string l 0 line (a + 1) (String.length l))
          evs;
        Buffer.add_string buf (Printf.sprintf "%-8s|%s|\n" name (Bytes.to_string line)))
      rows;
    Buffer.contents buf

let to_text ?from_dataset ?until_dataset sched =
  let rows = select ?from_dataset ?until_dataset sched in
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, evs) ->
      Buffer.add_string buf (Printf.sprintf "%s:\n" name);
      List.iter
        (fun e ->
          Buffer.add_string buf
            (Printf.sprintf "  %-8s [%s, %s)\n" (label e)
               (Rat.to_string e.Schedule.start)
               (Rat.to_string e.Schedule.finish)))
        evs)
    rows;
  Buffer.contents buf
