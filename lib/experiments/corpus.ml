open Rwt_util
open Rwt_workflow

type family = Lcm_heavy | Scc_heavy | Wide_replication | Long_chain | Mixed

let all_families = [ Lcm_heavy; Scc_heavy; Wide_replication; Long_chain; Mixed ]

let family_name = function
  | Lcm_heavy -> "lcm-heavy"
  | Scc_heavy -> "scc-heavy"
  | Wide_replication -> "wide-replication"
  | Long_chain -> "long-chain"
  | Mixed -> "mixed"

type tier = Tiny | Standard | Full

let tier_name = function Tiny -> "tiny" | Standard -> "standard" | Full -> "full"

let tier_of_string = function
  | "tiny" -> Some Tiny
  | "standard" -> Some Standard
  | "full" -> Some Full
  | _ -> None

(* instances per family; the full tier lands at the "few thousand" scale
   the scaling bench needs while staying solvable in seconds per family *)
let per_family = function Tiny -> 4 | Standard -> 40 | Full -> 400

type entry = {
  id : string;
  family : family;
  model : Comm_model.t;
  instance : Instance.t;
}

(* Prescribed-replication instance: stage i runs on repl.(i) dedicated
   processors of a star platform, processors numbered in stage order.
   Speeds and bandwidths are drawn per instance so firing times are
   non-trivial rationals (tied values would let the float screen coast). *)
let instance_of_repl ~id ~seed repl =
  let n = Array.length repl in
  let p = Array.fold_left ( + ) 0 repl in
  let r = Prng.create seed in
  let pipeline =
    Pipeline.of_ints
      ~work:(Array.init n (fun _ -> Prng.int_in r 500 9000))
      ~data:(Array.init (n - 1) (fun _ -> Prng.int_in r 100 3000))
  in
  let platform =
    Platform.star
      ~speeds:(Array.init p (fun _ -> Rat.of_int (Prng.int_in r 300 700)))
      ~link_bw:(Array.init p (fun _ -> Rat.of_int (Prng.int_in r 200 500)))
  in
  let next = ref 0 in
  let assignment =
    Array.map
      (fun mi ->
        Array.init mi (fun _ ->
            let u = !next in
            incr next;
            u))
      repl
  in
  let mapping = Mapping.create_exn ~n_stages:n ~p assignment in
  Instance.create_exn ~name:id ~pipeline ~platform ~mapping

(* mix the corpus seed, a family tag and the instance index into one
   per-instance seed, so every instance is independently reproducible *)
let mix seed tag i = (seed * 1_000_003) + (tag * 7919) + i

let build_one ~seed family i =
  let id = Printf.sprintf "%s-%04d" (family_name family) i in
  let s = mix seed (Hashtbl.hash (family_name family)) i in
  let r = Prng.create s in
  match family with
  | Lcm_heavy ->
    (* pairwise-coprime-ish replication keeps m = lcm(m_i) large relative
       to the processor count: the paper's worst case for the TPN route *)
    let a = Prng.pick r [| 2; 3; 5 |] in
    let b = Prng.pick r [| 3; 4; 5; 7 |] in
    let c = Prng.pick r [| 2; 5; 7; 9 |] in
    { id; family; model = Comm_model.Strict;
      instance = instance_of_repl ~id ~seed:s [| a; b; c |] }
  | Scc_heavy ->
    (* aligned replication [k; k; k]: the event graph splits into many
       similar strongly connected components, the per-SCC pool's best
       case *)
    let k = 2 + Prng.int r 4 in
    { id; family; model = Comm_model.Overlap;
      instance = instance_of_repl ~id ~seed:s [| k; k; k |] }
  | Wide_replication ->
    let k = 4 + Prng.int r 9 in
    { id; family; model = Comm_model.Overlap;
      instance = instance_of_repl ~id ~seed:s [| k; 1 |] }
  | Long_chain ->
    let n = 6 + Prng.int r 9 in
    { id; family; model = Comm_model.Strict;
      instance = instance_of_repl ~id ~seed:s (Array.make n 1) }
  | Mixed ->
    let n = 2 + Prng.int r 3 in
    let p = n + Prng.int r 7 in
    let inst =
      Generator.generate r
        { Generator.n_stages = n; p; comp = (5, 40); comm = (5, 40) }
    in
    let model = if Prng.bool r then Comm_model.Overlap else Comm_model.Strict in
    { id; family; model; instance = inst }

let build ?(seed = 2009) tier =
  let k = per_family tier in
  Array.concat
    (List.map
       (fun family -> Array.init k (fun i -> build_one ~seed family i))
       all_families)

(* --- running ------------------------------------------------------- *)

type kernel = Screened | Exact_howard

let kernel_name = function Screened -> "screened" | Exact_howard -> "exact"

type row = { rid : string; rfamily : string; rmodel : string; rm : int; rperiod : Rat.t }

let run ?workers ?chunk ~kernel entries =
  let saved = !Rwt_petri.Mcr.screen_enabled in
  Rwt_petri.Mcr.screen_enabled := (kernel = Screened);
  Fun.protect ~finally:(fun () -> Rwt_petri.Mcr.screen_enabled := saved)
  @@ fun () ->
  Rwt_pool.map ?workers ?chunk ~n:(Array.length entries) (fun i ->
      let e = entries.(i) in
      let res = Rwt_core.Exact.period_exn e.model e.instance in
      { rid = e.id; rfamily = family_name e.family;
        rmodel = Comm_model.to_string e.model; rm = res.Rwt_core.Exact.m;
        rperiod = res.Rwt_core.Exact.period })

(* --- snapshots ------------------------------------------------------

   One NDJSON line per instance, in corpus order. The committed snapshot
   pins every exact period: any scheduler or solver change that flips a
   single digit fails the check, whatever worker count produced it. *)

let row_to_ndjson r =
  Json.to_string
    (Json.Obj
       [ ("id", Json.String r.rid);
         ("family", Json.String r.rfamily);
         ("model", Json.String r.rmodel);
         ("m", Json.Int r.rm);
         ("period", Json.String (Rat.to_string r.rperiod)) ])

let to_ndjson rows =
  String.concat "" (List.map (fun r -> row_to_ndjson r ^ "\n") (Array.to_list rows))

let write_snapshot ~path rows =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
  output_string oc (to_ndjson rows)

let check_snapshot ~path rows =
  if not (Sys.file_exists path) then Error (Printf.sprintf "snapshot %s missing" path)
  else begin
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let committed = really_input_string ic len in
    close_in ic;
    let got = to_ndjson rows in
    if String.equal committed got then Ok ()
    else begin
      let cl = String.split_on_char '\n' committed in
      let gl = String.split_on_char '\n' got in
      let rec first_diff i = function
        | c :: cs, g :: gs ->
          if String.equal c g then first_diff (i + 1) (cs, gs)
          else
            Printf.sprintf "snapshot %s: line %d differs\n  committed: %s\n  computed:  %s"
              path (i + 1) c g
        | [], g :: _ -> Printf.sprintf "snapshot %s: extra computed line %d: %s" path (i + 1) g
        | c :: _, [] -> Printf.sprintf "snapshot %s: missing line %d: %s" path (i + 1) c
        | [], [] -> Printf.sprintf "snapshot %s: differs" path
      in
      Error (first_diff 0 (cl, gl))
    end
  end
