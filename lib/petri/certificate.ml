open Rwt_util
module D = Rwt_graph.Digraph
module E = Mcr.Exact

type t = {
  lambda : Rat.t;
  potential : Rat.t array;
  witness : int list;
}

let make g =
  match E.max_cycle_ratio g with
  | None -> None
  | Some w ->
    let lambda = w.E.ratio in
    let n = D.num_nodes g in
    (* longest-path fixpoint over reduced weights from an implicit
       super-source: converges because no cycle is positive at λ* *)
    let phi = Array.make n Rat.zero in
    let changed = ref true in
    while !changed do
      changed := false;
      D.iter_edges
        (fun e ->
          let reduced =
            Rat.sub e.D.label.E.weight (Rat.mul lambda (Rat.of_int e.D.label.E.tokens))
          in
          let cand = Rat.add phi.(e.D.src) reduced in
          if Rat.compare cand phi.(e.D.dst) > 0 then begin
            phi.(e.D.dst) <- cand;
            changed := true
          end)
        g
    done;
    Some { lambda; potential = phi; witness = w.E.cycle }

let check g cert =
  let n = D.num_nodes g in
  if Array.length cert.potential <> n then Error "potential arity mismatch"
  else begin
    let violation = ref None in
    D.iter_edges
      (fun e ->
        if !violation = None then begin
          let reduced =
            Rat.sub e.D.label.E.weight (Rat.mul cert.lambda (Rat.of_int e.D.label.E.tokens))
          in
          let slack =
            Rat.sub (Rat.sub cert.potential.(e.D.dst) cert.potential.(e.D.src)) reduced
          in
          if Rat.sign slack < 0 then
            violation := Some (Printf.sprintf "edge %d violates the potential inequality" e.D.id)
        end)
      g;
    match !violation with
    | Some msg -> Error msg
    | None ->
      (match E.cycle_ratio g cert.witness with
       | ratio ->
         if Rat.equal ratio cert.lambda then Ok ()
         else Error "witness cycle does not achieve lambda"
       | exception Invalid_argument msg -> Error ("invalid witness: " ^ msg))
  end

let to_json cert =
  Json.to_string
    (Json.Obj
       [ ("lambda", Json.String (Rat.to_string cert.lambda));
         ( "potential",
           Json.List
             (Array.to_list
                (Array.map (fun v -> Json.String (Rat.to_string v)) cert.potential)) );
         ("witness", Json.List (List.map (fun e -> Json.Int e) cert.witness)) ])
