(* DataCutter-style grid data analysis — the application family (filtering
   large archival scientific datasets) behind the paper's replication model
   (its references [4, 10, 15]).

   A 4-stage filter chain (read → clip → zoom → view) runs across two grid
   sites. The interesting phenomenon demonstrated here is the paper's
   headline one: with replication and strict one-port communications, the
   mapping can have NO critical resource — the period strictly exceeds every
   resource cycle-time, i.e. every processor and port idles during every
   period, yet no schedule can do better.

   Run with: dune exec examples/grid_datacutter.exe *)

open Rwt_util
open Rwt_workflow

let inst =
  (* times given directly, as in the paper's examples: site 1 hosts the
     reader and two clip filters; site 2 hosts three zoom filters and the
     viewer; the inter-site link is slow. *)
  let r = Rat.of_int in
  Instance.of_times ~name:"datacutter" ~p:7
    ~stages:
      [ [ (0, r 25) ];                          (* read on the data server *)
        [ (1, r 150); (2, r 130) ];             (* clip, replicated x2 *)
        [ (3, r 80); (4, r 70); (5, r 150) ];   (* zoom, replicated x3 *)
        [ (6, r 70) ] ]                         (* view *)
    ~links:
      [ ((0, 1), r 180); ((0, 2), r 190);       (* server → clip nodes *)
        ((1, 3), r 60); ((1, 4), r 70); ((1, 5), r 75);   (* intra/inter site *)
        ((2, 3), r 20); ((2, 4), r 150); ((2, 5), r 160);
        ((3, 6), r 100); ((4, 6), r 70); ((5, 6), r 120) ]
    ()

let () =
  Format.printf "DataCutter-style filter chain on a two-site grid@.@.";
  List.iter
    (fun model ->
      let report = Rwt_core.Analysis.analyze_exn model inst in
      Format.printf "--- %s ---@.%a@.@." (Comm_model.to_string model)
        Rwt_core.Analysis.pp_report report;
      Format.printf "resource cycle-times:@.%a@.@." (Cycle_time.pp_table model) inst)
    Comm_model.all;

  (* The strict model usually has the larger gap: show the critical cycle
     that the Petri-net analysis finds (the paper's Figure 8 flavour) and
     that it spans several resources. *)
  let result = Rwt_core.Exact.period_exn Comm_model.Strict inst in
  Format.printf "%a@." (Rwt_core.Exact.pp_critical result) ();

  (* Steady-state utilization: in the absence of a critical resource every
     row stays strictly below 1. *)
  let sched = Rwt_sim.Schedule.run Comm_model.Strict inst ~datasets:60 in
  Format.printf "steady-state utilization (strict):@.";
  List.iter
    (fun (unit, u) -> Format.printf "  %-8s %a@." unit Rat.pp_approx u)
    (Rwt_sim.Schedule.utilization sched ~from_dataset:12);
  Format.printf "@.one steady-state period of the strict schedule:@.";
  print_string (Rwt_sim.Gantt.to_ascii ~width:100 ~from_dataset:24 ~until_dataset:29 sched)
