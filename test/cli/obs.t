Observability smoke test on the paper's Example A. The per-phase timing
table is machine-dependent, so only the deterministic lines are kept.

  $ rwt profile -e a --metrics metrics.json --trace trace.json | grep -E '^(profiling|poly period|tpn period|simulated|[0-9]+ metrics)'
  profiling example-A (model overlap, m = 6)
  poly period:     189
  tpn period:      189 (critical cycle: 6 transitions)
  simulated:       64 data sets (last completion 12599)
  30 metrics recorded (counters 18, gauges 6, histograms 6)

Both exports are valid JSON.

  $ rwt json-check metrics.json
  ok
  $ rwt json-check trace.json
  ok

The metrics dump carries the advertised solver and net-size keys.

  $ grep -oE '"(mcr\.iterations|mcr\.solves|tpn\.rows|tpn\.transitions|poly\.components|sim\.events)"' metrics.json | sort
  "mcr.iterations"
  "mcr.solves"
  "poly.components"
  "sim.events"
  "tpn.rows"
  "tpn.transitions"
  $ grep -c '"traceEvents"' trace.json
  1

--metrics - streams the dump to stdout after the command's own output;
it still parses.

  $ rwt period -e a -m overlap --metrics - | sed -n '/^{/,$p' | rwt json-check -
  ok
