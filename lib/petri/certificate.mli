(** Self-contained optimality certificates for the maximum cycle ratio.

    A certificate for [λ] consists of a node potential [φ] with

    [w(e) − λ·t(e) <= φ(dst e) − φ(src e)]   for every edge [e]

    (summing around any cycle proves [ratio(C) <= λ]) together with a
    witness cycle of ratio exactly [λ]. Checking a certificate is a single
    [O(E)] pass of exact rational arithmetic — a verifier can trust a
    reported period without trusting Howard's policy iteration, the
    parametric solver, or any other machinery in this repository. *)

open Rwt_util

type t = {
  lambda : Rat.t;
  potential : Rat.t array;  (** one value per node *)
  witness : int list;  (** edge ids of a cycle achieving [lambda] *)
}

val make : Mcr.Exact.graph -> t option
(** Solve (via {!Mcr.Exact.max_cycle_ratio}) and derive a globally valid
    potential by longest-path relaxation on the reduced weights (which have
    no positive cycle at the optimum). [None] iff the graph is acyclic.
    @raise Mcr.Exact.Not_live on token-free cycles. *)

val check : Mcr.Exact.graph -> t -> (unit, string) result
(** Independent verification: every edge inequality, witness validity and
    the witness ratio. Does not call any solver. *)

val to_json : t -> string
(** Portable rendering (rationals as strings). *)
