(* Tests for the application/platform/mapping model layer. *)

open Rwt_util
open Rwt_workflow

let qtest = QCheck_alcotest.to_alcotest
let rat = Alcotest.testable Rat.pp Rat.equal

(* --- pipeline --- *)

let pipeline_basics () =
  let p = Pipeline.of_ints ~work:[| 10; 40; 30; 20 |] ~data:[| 8; 16; 4 |] in
  Alcotest.(check int) "stages" 4 (Pipeline.n_stages p);
  Alcotest.check rat "work" (Rat.of_int 40) (Pipeline.work p 1);
  Alcotest.check rat "data" (Rat.of_int 16) (Pipeline.data p 1);
  Alcotest.(check string) "name" "S2" (Pipeline.name p 2);
  let p' = Pipeline.rename p [| "in"; "filter"; "encode"; "out" |] in
  Alcotest.(check string) "renamed" "encode" (Pipeline.name p' 2);
  Alcotest.check_raises "data arity" (Invalid_argument "Pipeline.create: need exactly n-1 file sizes")
    (fun () -> ignore (Pipeline.of_ints ~work:[| 1; 2 |] ~data:[| 1; 2 |]));
  Alcotest.check_raises "no stages" (Invalid_argument "Pipeline.create: no stages")
    (fun () -> ignore (Pipeline.of_ints ~work:[||] ~data:[||]))

(* --- platform --- *)

let platform_basics () =
  let pf = Platform.uniform ~p:3 ~speed:(Rat.of_int 2) ~bandwidth:(Rat.of_int 5) in
  Alcotest.(check int) "p" 3 (Platform.p pf);
  Alcotest.check rat "speed" (Rat.of_int 2) (Platform.speed pf 1);
  Alcotest.check rat "bw" (Rat.of_int 5) (Platform.bandwidth pf 0 2);
  Alcotest.check_raises "zero speed" (Invalid_argument "Platform.create: non-positive speed")
    (fun () ->
      ignore (Platform.create ~speeds:[| Rat.zero |] ~bandwidths:[| [| Rat.one |] |]))

let platform_star () =
  let pf =
    Platform.star
      ~speeds:[| Rat.of_int 1; Rat.of_int 2; Rat.of_int 3 |]
      ~link_bw:[| Rat.of_int 10; Rat.of_int 4; Rat.of_int 6 |]
  in
  (* logical bandwidth = min of the two star links *)
  Alcotest.check rat "bw 0-1" (Rat.of_int 4) (Platform.bandwidth pf 0 1);
  Alcotest.check rat "bw 0-2" (Rat.of_int 6) (Platform.bandwidth pf 0 2);
  Alcotest.check rat "bw 1-2" (Rat.of_int 4) (Platform.bandwidth pf 2 1)

let platform_two_clusters () =
  let pf =
    Platform.two_clusters
      ~speeds:(Array.make 5 Rat.one)
      ~split:2 ~intra_bw:(Rat.of_int 10) ~inter_bw:(Rat.of_int 2)
  in
  Alcotest.check rat "intra left" (Rat.of_int 10) (Platform.bandwidth pf 0 1);
  Alcotest.check rat "intra right" (Rat.of_int 10) (Platform.bandwidth pf 3 4);
  Alcotest.check rat "inter" (Rat.of_int 2) (Platform.bandwidth pf 1 2);
  Alcotest.check rat "inter sym" (Rat.of_int 2) (Platform.bandwidth pf 4 0);
  Alcotest.check_raises "bad split" (Invalid_argument "Platform.two_clusters: bad split")
    (fun () ->
      ignore
        (Platform.two_clusters ~speeds:(Array.make 2 Rat.one) ~split:2
           ~intra_bw:Rat.one ~inter_bw:Rat.one))

let platform_random_in_range =
  QCheck.Test.make ~count:200 ~name:"random platform respects ranges" QCheck.small_nat
    (fun seed ->
      let r = Prng.create seed in
      let pf = Platform.random r ~p:5 ~speed_range:(3, 9) ~bandwidth_range:(2, 4) in
      let ok = ref true in
      for u = 0 to 4 do
        let s = Rat.to_float (Platform.speed pf u) in
        if s < 3.0 || s > 9.0 then ok := false;
        for v = 0 to 4 do
          if u <> v then begin
            let b = Rat.to_float (Platform.bandwidth pf u v) in
            if b < 2.0 || b > 4.0 then ok := false
          end
        done
      done;
      !ok)

(* --- mapping --- *)

let mapping_validation () =
  let ok = Mapping.create ~n_stages:2 ~p:4 [| [| 0 |]; [| 1; 2 |] |] in
  (match ok with
   | Ok m ->
     Alcotest.(check int) "m0" 1 (Mapping.replication m 0);
     Alcotest.(check int) "m1" 2 (Mapping.replication m 1);
     Alcotest.(check int) "paths" 2 (Mapping.num_paths m);
     Alcotest.(check bool) "replicated" true (Mapping.is_replicated m);
     Alcotest.(check int) "proc_for" 2 (Mapping.proc_for m ~stage:1 ~dataset:3);
     Alcotest.(check bool) "stage_of" true (Mapping.stage_of m 2 = Some 1);
     Alcotest.(check bool) "stage_of unused" true (Mapping.stage_of m 3 = None)
   | Error _ -> Alcotest.fail "valid mapping rejected");
  (match Mapping.create ~n_stages:2 ~p:4 [| [| 0 |]; [| 0; 1 |] |] with
   | Error (Mapping.Processor_reused 0) -> ()
   | _ -> Alcotest.fail "reuse not detected");
  (match Mapping.create ~n_stages:2 ~p:4 [| [| 0 |]; [||] |] with
   | Error (Mapping.Empty_stage 1) -> ()
   | _ -> Alcotest.fail "empty stage not detected");
  (match Mapping.create ~n_stages:2 ~p:2 [| [| 0 |]; [| 5 |] |] with
   | Error (Mapping.Processor_out_of_range 5) -> ()
   | _ -> Alcotest.fail "out of range not detected");
  match Mapping.create ~n_stages:3 ~p:2 [| [| 0 |]; [| 1 |] |] with
  | Error (Mapping.Stage_count_mismatch { expected = 3; got = 2 }) -> ()
  | _ -> Alcotest.fail "stage count not checked"

(* --- paths (Proposition 1) --- *)

let random_mapping seed =
  let r = Prng.create seed in
  let n = Prng.int_in r 1 4 in
  let counts = Array.init n (fun _ -> Prng.int_in r 1 4) in
  let p = Array.fold_left ( + ) 0 counts in
  let next = ref 0 in
  let assignment =
    Array.map
      (fun m ->
        Array.init m (fun _ ->
            let u = !next in
            incr next;
            u))
      counts
  in
  Mapping.create_exn ~n_stages:n ~p assignment

let paths_lcm =
  QCheck.Test.make ~count:300 ~name:"Prop 1: number of paths = lcm(m_i)"
    QCheck.small_nat (fun seed ->
      let m = random_mapping seed in
      Paths.num_paths m
      = Intmath.lcm_list (Array.to_list (Mapping.replication_vector m)))

let paths_period_minimal =
  QCheck.Test.make ~count:200 ~name:"Prop 1: m is the smallest period"
    QCheck.small_nat (fun seed -> Paths.verify_period (random_mapping seed))

let paths_distinct =
  QCheck.Test.make ~count:200 ~name:"the m paths are pairwise distinct"
    QCheck.small_nat (fun seed ->
      let m = random_mapping seed in
      let paths = Paths.distinct_paths m in
      List.length (List.sort_uniq compare paths) = List.length paths)

let paths_table_matches_paper () =
  let a = Instances.example_a () in
  let expected =
    [ [| 0; 1; 3; 6 |]; [| 0; 2; 4; 6 |]; [| 0; 1; 5; 6 |]; [| 0; 2; 3; 6 |];
      [| 0; 1; 4; 6 |]; [| 0; 2; 5; 6 |]; [| 0; 1; 3; 6 |]; [| 0; 2; 4; 6 |] ]
  in
  Alcotest.(check bool) "Table 1" true
    (Paths.first_paths a.Instance.mapping 8 = expected)

(* --- instance / of_times --- *)

let of_times_roundtrip () =
  let inst = Instances.example_a () in
  Alcotest.check rat "comp P2" (Rat.of_int 128) (Instance.compute_time inst ~stage:1 ~proc:2);
  Alcotest.check rat "transfer P0→P2" (Rat.of_int 192)
    (Instance.transfer_time inst ~file:0 ~src:0 ~dst:2);
  Alcotest.check rat "transfer_for ds 3" (Rat.of_int 13)
    (Instance.transfer_time_for inst ~file:1 ~dataset:3);
  Alcotest.(check (list int)) "resources" [ 0; 1; 2; 3; 4; 5; 6 ] (Instance.resources inst)

let of_times_rejects_duplicates () =
  Alcotest.check_raises "duplicate link" (Invalid_argument "Instance.of_times: duplicate link")
    (fun () ->
      ignore
        (Instance.of_times ~p:2
           ~stages:[ [ (0, Rat.one) ]; [ (1, Rat.one) ] ]
           ~links:[ ((0, 1), Rat.one); ((0, 1), Rat.of_int 2) ]
           ()))

(* --- cycle times --- *)

let cycle_time_example_a () =
  let a = Instances.example_a () in
  let res = Cycle_time.resource Comm_model.Overlap a 0 in
  (* P0: computes every data set (22), sends 186/192 alternately *)
  Alcotest.check rat "P0 ccomp" (Rat.of_int 22) res.Cycle_time.ccomp;
  Alcotest.check rat "P0 cout" (Rat.of_int 189) res.Cycle_time.cout;
  Alcotest.check rat "P0 cin" Rat.zero res.Cycle_time.cin;
  let p2 = Cycle_time.resource Comm_model.Strict a 2 in
  (* P2 serves every 2nd data set: (192 + 128 + (13+157+165)/3) / 2 *)
  Alcotest.check rat "P2 strict" (Rat.of_ints 1295 6) p2.Cycle_time.cexec;
  let p2o = Cycle_time.resource Comm_model.Overlap a 2 in
  Alcotest.check rat "P2 overlap cin" (Rat.of_int 96) p2o.Cycle_time.cin;
  Alcotest.check rat "P2 overlap ccomp" (Rat.of_int 64) p2o.Cycle_time.ccomp;
  Alcotest.check rat "P2 overlap cout" (Rat.of_ints 335 6) p2o.Cycle_time.cout

let cycle_time_strict_dominates =
  QCheck.Test.make ~count:200 ~name:"strict cycle-time >= overlap cycle-time"
    QCheck.small_nat (fun seed ->
      let r = Prng.create (seed + 31) in
      let inst =
        Rwt_experiments.Generator.generate r
          { Rwt_experiments.Generator.n_stages = 1 + Prng.int r 3;
            p = 4 + Prng.int r 4; comp = (1, 10); comm = (1, 10) }
      in
      List.for_all2
        (fun (s : Cycle_time.resource) (o : Cycle_time.resource) ->
          Rat.compare s.Cycle_time.cexec o.Cycle_time.cexec >= 0)
        (Cycle_time.all Comm_model.Strict inst)
        (Cycle_time.all Comm_model.Overlap inst))

let cycle_time_unused_proc () =
  let a = Instances.example_a () in
  let inst =
    Instance.create_exn ~name:"pad" ~pipeline:a.Instance.pipeline
      ~platform:
        (Platform.create
           ~speeds:(Array.init 8 (fun u -> if u < 7 then Platform.speed a.Instance.platform u else Rat.one))
           ~bandwidths:
             (Array.init 8 (fun u ->
                  Array.init 8 (fun v ->
                      if u < 7 && v < 7 then Platform.bandwidth a.Instance.platform u v
                      else Rat.one))))
      ~mapping:
        (Mapping.create_exn ~n_stages:4 ~p:8
           [| [| 0 |]; [| 1; 2 |]; [| 3; 4; 5 |]; [| 6 |] |])
  in
  Alcotest.check_raises "unused processor"
    (Invalid_argument "Cycle_time.resource: processor not used by the mapping") (fun () ->
      ignore (Cycle_time.resource Comm_model.Overlap inst 7))

(* --- comm model --- *)

let comm_model_roundtrip () =
  List.iter
    (fun m ->
      Alcotest.(check bool) "roundtrip" true
        (Comm_model.of_string (Comm_model.to_string m) = Some m))
    Comm_model.all;
  Alcotest.(check bool) "bad" true (Comm_model.of_string "half-duplex" = None)

(* --- format --- *)

let format_roundtrip_named () =
  List.iter
    (fun inst ->
      let s = Format_io.to_string inst in
      match Format_io.of_string s with
      | Error e -> Alcotest.fail (Rwt_err.to_line e)
      | Ok inst' ->
        Alcotest.(check string) "name survives" inst.Instance.name inst'.Instance.name;
        Alcotest.(check string) "round trip" s (Format_io.to_string inst'))
    [ Instances.example_a (); Instances.example_b (); Instances.no_replication () ]

let format_roundtrip_random =
  QCheck.Test.make ~count:150 ~name:"format round-trips random instances"
    QCheck.small_nat (fun seed ->
      let r = Prng.create (seed + 1) in
      let n_stages = 1 + Prng.int r 4 in
      let inst =
        Rwt_experiments.Generator.generate r
          { Rwt_experiments.Generator.n_stages;
            p = n_stages + Prng.int r 6; comp = (1, 20); comm = (1, 20) }
      in
      let s = Format_io.to_string inst in
      match Format_io.of_string s with
      | Error _ -> false
      | Ok inst' -> Format_io.to_string inst' = s)

let format_errors () =
  let check_err input =
    match Format_io.of_string input with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail ("accepted malformed: " ^ input)
  in
  check_err "";
  check_err "stages 2\nwork 1 1\ndata 1\nprocessors 2\nspeeds 1 1\nmap 0\nmap 0\n";
  check_err "stages 1\nwork one\nprocessors 1\nspeeds 1\nmap 0\n";
  check_err "stages 2\nwork 1 1\ndata 1\nprocessors 2\nspeeds 1 0\nmap 0\nmap 1\n";
  check_err "bogus directive\n";
  check_err "stages 2\nwork 1\ndata 1\nprocessors 2\nspeeds 1 1\nmap 0\nmap 1\n"

(* --- instance dot --- *)

let instance_dot_renders () =
  let s = Instance_dot.render (Instances.example_a ()) in
  let contains needle =
    let ln = String.length needle in
    let rec go i = i + ln <= String.length s && (String.sub s i ln = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has clusters" true (contains "cluster_s2");
  Alcotest.(check bool) "has P0 time" true (contains "P0\\n22");
  Alcotest.(check bool) "has link 186" true (contains "\"186\"");
  (* used links only: 11 edges for example A *)
  let edges = ref 0 in
  String.iteri
    (fun i c -> if c = '>' && i > 0 && s.[i - 1] = '-' then incr edges)
    s;
  Alcotest.(check int) "11 links" 11 !edges

(* --- file save/load --- *)

let format_file_roundtrip () =
  let inst = Instances.example_b () in
  let path = Filename.temp_file "rwt_test" ".rwt" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () ->
      Format_io.save path inst;
      match Format_io.load path with
      | Error e -> Alcotest.fail (Rwt_err.to_line e)
      | Ok inst' ->
        Alcotest.(check string) "identical" (Format_io.to_string inst)
          (Format_io.to_string inst'));
  match Format_io.load "/nonexistent/path.rwt" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "loaded a missing file"

let () =
  Alcotest.run "rwt_workflow"
    [ ("pipeline", [ Alcotest.test_case "basics" `Quick pipeline_basics ]);
      ( "platform",
        [ Alcotest.test_case "basics" `Quick platform_basics;
          Alcotest.test_case "star" `Quick platform_star;
          Alcotest.test_case "two clusters" `Quick platform_two_clusters;
          qtest platform_random_in_range ] );
      ("mapping", [ Alcotest.test_case "validation" `Quick mapping_validation ]);
      ( "paths",
        [ qtest paths_lcm; qtest paths_period_minimal; qtest paths_distinct;
          Alcotest.test_case "table 1" `Quick paths_table_matches_paper ] );
      ( "instance",
        [ Alcotest.test_case "of_times" `Quick of_times_roundtrip;
          Alcotest.test_case "duplicates" `Quick of_times_rejects_duplicates ] );
      ( "cycle time",
        [ Alcotest.test_case "example A" `Quick cycle_time_example_a;
          qtest cycle_time_strict_dominates;
          Alcotest.test_case "unused proc" `Quick cycle_time_unused_proc ] );
      ("comm model", [ Alcotest.test_case "roundtrip" `Quick comm_model_roundtrip ]);
      ( "format",
        [ Alcotest.test_case "named instances" `Quick format_roundtrip_named;
          qtest format_roundtrip_random;
          Alcotest.test_case "errors" `Quick format_errors;
          Alcotest.test_case "file round trip" `Quick format_file_roundtrip ] );
      ("dot", [ Alcotest.test_case "instance render" `Quick instance_dot_renders ]) ]
