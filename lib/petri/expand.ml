open Rwt_util
module Obs = Rwt_obs

let default_transition_cap = 1_000_000

(* process-wide default only; every entry point takes ?transition_cap so
   concurrent solves (Rwt_batch domains) never need to mutate it *)
let cap = Atomic.make default_transition_cap

let transition_cap () = Atomic.get cap

let set_transition_cap c =
  if c <= 0 then invalid_arg "Expand.set_transition_cap: cap must be positive";
  Atomic.set cap c

let is_one_bounded tpn =
  List.for_all (fun p -> p.Tpn.tokens <= 1) (Tpn.places tpn)

let one_bounded_exn ?transition_cap:local_cap tpn =
  let cap = match local_cap with Some c -> c | None -> Atomic.get cap in
  let base = Tpn.num_transitions tpn in
  (* count the fresh buffer transitions needed; checked sums so adversarial
     markings overflow into a clean rejection, not a wrapped-around pass *)
  let extra, max_marking =
    List.fold_left
      (fun (extra, mm) p ->
        let need = max 0 (p.Tpn.tokens - 1) in
        match Rwt_util.Intmath.add_checked extra need with
        | Some e -> (e, max mm p.Tpn.tokens)
        | None -> (max_int, max mm p.Tpn.tokens))
      (0, 0) (Tpn.places tpn)
  in
  let projected =
    match Rwt_util.Intmath.add_checked base extra with Some t -> t | None -> max_int
  in
  Obs.gauge "expand.projected_transitions" (float_of_int projected);
  if projected > cap then begin
    Obs.incr "expand.rejections";
    Rwt_err.raise_
      (Rwt_err.capacity ~code:"capacity.expand"
         ~context:
           [ ("projected", string_of_int projected);
             ("base", string_of_int base);
             ("buffers", string_of_int extra);
             ("max_marking", string_of_int max_marking);
             ("cap", string_of_int cap) ]
         (Printf.sprintf
            "Expand.one_bounded: expansion would create %d transitions (%d original \
             + %d buffer, largest marking m = %d), exceeding the cap of %d; raise it \
             with Expand.set_transition_cap or pass ~transition_cap"
            projected base extra max_marking cap))
  end;
  Obs.add "expand.buffers" extra;
  let transitions =
    Array.init (base + extra) (fun i ->
        if i < base then Tpn.transition tpn i
        else { Tpn.tr_name = Printf.sprintf "buf%d" (i - base); firing = Rat.zero })
  in
  let out = Tpn.create transitions in
  let next_fresh = ref base in
  List.iter
    (fun p ->
      if p.Tpn.tokens <= 1 then
        Tpn.add_place out ~name:p.Tpn.pl_name ~src:p.Tpn.pl_src ~dst:p.Tpn.pl_dst
          ~tokens:p.Tpn.tokens
      else begin
        (* src → buf → buf → … → dst, one token per hop *)
        let hops = p.Tpn.tokens in
        let prev = ref p.Tpn.pl_src in
        for k = 1 to hops - 1 do
          let fresh = !next_fresh in
          incr next_fresh;
          Tpn.add_place out
            ~name:(Printf.sprintf "%s#%d" p.Tpn.pl_name k)
            ~src:!prev ~dst:fresh ~tokens:1;
          prev := fresh
        done;
        Tpn.add_place out
          ~name:(Printf.sprintf "%s#%d" p.Tpn.pl_name hops)
          ~src:!prev ~dst:p.Tpn.pl_dst ~tokens:1
      end)
    (Tpn.places tpn);
  out

let one_bounded ?transition_cap tpn =
  match one_bounded_exn ?transition_cap tpn with
  | t -> Ok t
  | exception Rwt_err.Error e -> Error e
