open Rwt_util
open Rwt_workflow

type candidate_a = {
  p1_links : Rat.t array;
  p2_links : Rat.t array;
  comp45 : Rat.t * Rat.t;
  out_links : Rat.t array;
  strict_period : Rat.t;
}

let r = Rat.of_int

let example_a_instance (c : candidate_a) =
  Instance.of_times ~name:"example-A-candidate" ~p:7
    ~stages:
      [ [ (0, r 22) ];
        [ (1, r 147); (2, r 128) ];
        [ (3, r 73); (4, fst c.comp45); (5, snd c.comp45) ];
        [ (6, r 73) ] ]
    ~links:
      [ ((0, 1), r 186); ((0, 2), r 192);
        ((1, 3), c.p1_links.(0)); ((1, 4), c.p1_links.(1)); ((1, 5), c.p1_links.(2));
        ((2, 3), c.p2_links.(0)); ((2, 4), c.p2_links.(1)); ((2, 5), c.p2_links.(2));
        ((3, 6), c.out_links.(0)); ((4, 6), c.out_links.(1)); ((5, 6), c.out_links.(2)) ]
    ()

let permutations3 a =
  let x = a.(0) and y = a.(1) and z = a.(2) in
  [ [| x; y; z |]; [| x; z; y |]; [| y; x; z |]; [| y; z; x |]; [| z; x; y |]; [| z; y; x |] ]

(* choose an ordered pair (for comps of P4, P5) from the 5 leftover labels;
   the remaining 3 labels (in each of their orders) are the links to P6 *)
let splits_of_leftovers leftovers =
  let n = Array.length leftovers in
  let acc = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        let rest =
          Array.of_list
            (List.filteri (fun k _ -> k <> i && k <> j) (Array.to_list leftovers))
        in
        List.iter
          (fun out -> acc := ((leftovers.(i), leftovers.(j)), out) :: !acc)
          (permutations3 rest)
      end
    done
  done;
  !acc

let example_a_candidates () =
  let p1_set = [| r 57; r 68; r 77 |] in
  let p2_set = [| r 13; r 157; r 165 |] in
  let leftovers = [| r 104; r 146; r 23; r 67; r 126 |] in
  let target_overlap = r 189 in
  let target_mct_strict = Rat.of_ints 1295 6 in
  (* the paper prints 230.7; accept periods rounding to it at one decimal *)
  let low = Rat.of_ints 23065 100 and high = Rat.of_ints 23075 100 in
  (* every candidate shares the mapping shape ([[0];[1;2];[3;4;5];[6]], p=7),
     so all strict evaluations after the first patch one cached graph and
     warm-start the solver instead of rebuilding from scratch *)
  let delta = Rwt_core.Delta.create Comm_model.Strict in
  let found = ref [] in
  List.iter
    (fun p1_links ->
      List.iter
        (fun p2_links ->
          List.iter
            (fun (comp45, out_links) ->
              let cand =
                { p1_links; p2_links; comp45; out_links; strict_period = Rat.zero }
              in
              let inst = example_a_instance cand in
              let p_over = Rwt_core.Poly_overlap.period inst in
              if Rat.equal p_over target_overlap then begin
                let crit = Cycle_time.critical Comm_model.Overlap inst in
                if crit.Cycle_time.proc = 0 && crit.Cycle_time.bottleneck = "out"
                   && Rat.equal crit.Cycle_time.cexec target_overlap
                then begin
                  let mct_s = Cycle_time.mct Comm_model.Strict inst in
                  if Rat.equal mct_s target_mct_strict then begin
                    let p_strict = Rwt_core.Delta.period_exn delta inst in
                    if Rat.compare p_strict low >= 0 && Rat.compare p_strict high < 0
                    then found := { cand with strict_period = p_strict } :: !found
                  end
                end
              end)
            (splits_of_leftovers leftovers))
        (permutations3 p2_set))
    (permutations3 p1_set);
  List.rev !found

type candidate_b = {
  expensive : (int * int) list;
  unique_critical : bool;
}

let example_b_instance (c : candidate_b) =
  let links = ref [] in
  for s = 0 to 2 do
    for d = 3 to 6 do
      let cost = if List.mem (s, d) c.expensive then 1000 else 100 in
      links := ((s, d), r cost) :: !links
    done
  done;
  Instance.of_times ~name:"example-B-candidate" ~p:7
    ~stages:
      [ [ (0, r 100); (1, r 100); (2, r 100) ];
        [ (3, r 100); (4, r 100); (5, r 100); (6, r 100) ] ]
    ~links:!links ()

let example_b_candidates () =
  let target_mct = Rat.of_ints 3100 12 in
  let target_p = Rat.of_ints 3500 12 in
  let found = ref [] in
  for mask = 0 to (1 lsl 12) - 1 do
    let bits = List.filter (fun b -> mask land (1 lsl b) <> 0) (List.init 12 Fun.id) in
    let p2 = List.length (List.filter (fun b -> b >= 8) bits) in
    if List.length bits = 7 && p2 = 3 then begin
      let expensive = List.map (fun b -> (b / 4, 3 + (b mod 4))) bits in
      let cand = { expensive; unique_critical = false } in
      let inst = example_b_instance cand in
      if Rat.equal (Cycle_time.mct Comm_model.Overlap inst) target_mct
         && Rat.equal (Rwt_core.Poly_overlap.period inst) target_p
      then begin
        (* is P2-out the unique maximum? *)
        let others =
          List.filter
            (fun res -> res.Cycle_time.proc <> 2)
            (Cycle_time.all Comm_model.Overlap inst)
        in
        let unique =
          List.for_all (fun res -> Rat.compare res.Cycle_time.cexec target_mct < 0) others
        in
        found := { cand with unique_critical = unique } :: !found
      end
    end
  done;
  List.rev !found

let verify_published () =
  let a = Instances.example_a () in
  let b = Instances.example_b () in
  let overlap = Comm_model.Overlap and strict = Comm_model.Strict in
  let crit_a = Cycle_time.critical overlap a in
  let p_a_strict = (Rwt_core.Exact.period_exn strict a).Rwt_core.Exact.period in
  let crit_b = Cycle_time.critical overlap b in
  [ ("A: overlap period = 189", Rat.equal (Rwt_core.Poly_overlap.period a) (r 189));
    ( "A: overlap critical resource is P0-out at 189",
      crit_a.Cycle_time.proc = 0 && crit_a.Cycle_time.bottleneck = "out"
      && Rat.equal crit_a.Cycle_time.cexec (r 189) );
    ( "A: strict Mct = 1295/6 = 215.83 on P2",
      Rat.equal (Cycle_time.mct strict a) (Rat.of_ints 1295 6)
      && (Cycle_time.critical strict a).Cycle_time.proc = 2 );
    ( "A: strict period prints as 230.7",
      Rat.compare p_a_strict (Rat.of_ints 23065 100) >= 0
      && Rat.compare p_a_strict (Rat.of_ints 23075 100) < 0 );
    ( "B: Mct = 3100/12 = 258.33 on P2-out",
      Rat.equal (Cycle_time.mct overlap b) (Rat.of_ints 3100 12)
      && crit_b.Cycle_time.proc = 2 && crit_b.Cycle_time.bottleneck = "out" );
    ( "B: overlap period = 3500/12 = 291.67",
      Rat.equal (Rwt_core.Poly_overlap.period b) (Rat.of_ints 3500 12) );
    ( "B: no critical resource (P > every cycle-time)",
      Rat.compare (Rwt_core.Poly_overlap.period b) (Cycle_time.mct overlap b) > 0 ) ]
