(* rwt — replicated-workflow throughput toolbox.

   Command-line front end for the library: compute periods and bounds,
   inspect round-robin paths, export timed Petri nets, draw Gantt charts,
   profile the solver pipeline, and run the paper's experiment campaigns.

   Conventions: results go to stdout, diagnostics/progress to stderr, and
   every error path exits non-zero — so stdout stays machine-parseable
   when --metrics/--json output is requested. *)

open Cmdliner
open Rwt_util
open Rwt_workflow

(* --- instance sources: a file or a named example --- *)

let cli_err msg = Rwt_err.validate ~code:"validate.cli" msg

let load_instance file example =
  match (file, example) with
  | Some _, Some _ -> Error (cli_err "use either --file or --example, not both")
  | None, None ->
    Error (cli_err "an instance is required: --file <path> or --example <a|b|c|figure1>")
  | Some path, None -> Format_io.load path
  | None, Some name ->
    (match String.lowercase_ascii name with
     | "a" | "example-a" -> Ok (Instances.example_a ())
     | "b" | "example-b" -> Ok (Instances.example_b ())
     | "c" | "example-c" -> Ok (Instances.example_c ())
     | "no-replication" | "nr" -> Ok (Instances.no_replication ())
     | other ->
       Error
         (cli_err (Printf.sprintf "unknown example %S (try a, b, c, no-replication)" other)))

let file_arg =
  Arg.(value & opt (some string) None & info [ "f"; "file" ] ~docv:"PATH"
         ~doc:"Instance file (see the repository README for the format).")

let example_arg =
  Arg.(value & opt (some string) None & info [ "e"; "example" ] ~docv:"NAME"
         ~doc:"Named paper instance: a, b, c, or no-replication.")

let model_arg =
  let model_conv =
    Arg.conv
      ( (fun s ->
          match Comm_model.of_string s with
          | Some m -> Ok m
          | None -> Error (`Msg "expected 'overlap' or 'strict'")),
        fun fmt m -> Format.pp_print_string fmt (Comm_model.to_string m) )
  in
  Arg.(value & opt model_conv Comm_model.Overlap
       & info [ "m"; "model" ] ~docv:"MODEL"
           ~doc:"Communication model: overlap (default) or strict.")

let die_err e =
  prerr_endline ("rwt: " ^ Rwt_err.to_line e);
  exit 1

let or_die = function Ok v -> v | Error e -> die_err e

(* --- observability: --metrics / --trace on every command --- *)

let write_raw path contents =
  match path with
  | "-" -> print_string contents
  | path ->
    (try
       let oc = open_out path in
       output_string oc contents;
       close_out oc
     with Sys_error msg ->
       prerr_endline ("rwt: cannot write " ^ path ^ ": " ^ msg);
       exit 1)

let write_output path contents = write_raw path (contents ^ "\n")

let obs_term =
  let metrics_arg =
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Record Rwt_obs metrics during the run and dump them as JSON to \
                 $(docv) on exit (\"-\" for stdout).")
  in
  let trace_arg =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record span trace events and dump Chrome trace-event JSON \
                 (chrome://tracing, Perfetto) to $(docv) on exit (\"-\" for stdout).")
  in
  let fault_arg =
    Arg.(value & opt (some string) None & info [ "fault" ] ~docv:"SPEC"
           ~doc:"Arm the deterministic fault-injection harness with $(docv) \
                 (grammar in doc/RESILIENCE.md, e.g. \
                 \"tpn.build=capacity;seed=7\"). Overrides \\$RWT_FAULT.")
  in
  let no_screen_arg =
    Arg.(value & flag & info [ "no-screen" ]
           ~doc:"Disable the float-screened exact MCR solver: every component \
                 runs pure exact Howard policy iteration. Escape hatch for \
                 debugging and for benchmarking the screen itself (see \
                 doc/PERFORMANCE.md).")
  in
  let legacy_tpn_arg =
    Arg.(value & flag & info [ "legacy-tpn" ]
           ~doc:"Build the MCR graph through the materialized timed Petri net \
                 (Tpn_build then graph_of_tpn) instead of the fused \
                 direct-to-graph builder. The two routes produce identical \
                 graphs; this is an escape hatch for debugging and for \
                 benchmarking the fusion itself (see doc/PERFORMANCE.md).")
  in
  let no_delta_arg =
    Arg.(value & flag & info [ "no-delta" ]
           ~doc:"Disable the incremental delta layer: sweep-shaped workloads \
                 (sensitivity, calibration, local search) rebuild and re-solve \
                 every instance from scratch instead of patching the cached \
                 graph in place and warm-starting the solver. Escape hatch for \
                 debugging and for benchmarking the layer itself (see \
                 doc/PERFORMANCE.md).")
  in
  let events_arg =
    Arg.(value & opt (some string) None & info [ "events" ] ~docv:"FILE"
           ~doc:"Record structured solver events (convergence telemetry: Howard \
                 rounds, screen verdicts, per-SCC outcomes) in the bounded ring \
                 and dump them as NDJSON to $(docv) on exit (\"-\" for stdout).")
  in
  let setup metrics trace events fault no_screen legacy_tpn no_delta =
    if no_screen then Rwt_petri.Mcr.screen_enabled := false;
    if legacy_tpn then Rwt_core.Exact.fused_enabled := false;
    if no_delta then Rwt_core.Delta.enabled := false;
    (match fault with
     | None -> ()
     | Some spec ->
       (match Rwt_fault.install spec with
        | Ok () -> ()
        | Error e ->
          prerr_endline ("rwt: " ^ Rwt_err.to_line e);
          exit 2));
    if metrics <> None || trace <> None || events <> None then begin
      Rwt_obs.enable ~trace:(trace <> None) ~events:(events <> None) ();
      at_exit (fun () ->
          (match metrics with
           | Some path ->
             write_output path (Json.to_string ~pretty:true (Rwt_obs.metrics_json ()))
           | None -> ());
          (match trace with
           | Some path -> write_output path (Json.to_string (Rwt_obs.trace_json ()))
           | None -> ());
          match events with
          | Some path -> write_raw path (Rwt_obs.events_ndjson ())
          | None -> ())
    end
  in
  Term.(const setup $ metrics_arg $ trace_arg $ events_arg $ fault_arg
        $ no_screen_arg $ legacy_tpn_arg $ no_delta_arg)

(* --- period --- *)

let method_arg =
  let method_conv =
    Arg.conv
      ( (fun s ->
          match s with
          | "auto" -> Ok Rwt_core.Analysis.Auto
          | "tpn" -> Ok Rwt_core.Analysis.Tpn
          | "poly" -> Ok Rwt_core.Analysis.Poly
          | _ -> Error (`Msg "expected auto, tpn or poly")),
        fun fmt m ->
          Format.pp_print_string fmt
            (match m with
             | Rwt_core.Analysis.Auto -> "auto"
             | Rwt_core.Analysis.Tpn -> "tpn"
             | Rwt_core.Analysis.Poly -> "poly") )
  in
  Arg.(value & opt method_conv Rwt_core.Analysis.Auto
       & info [ "method" ] ~docv:"METHOD"
           ~doc:"Period computation: auto (default), tpn (full net), poly (Theorem 1).")

let period_cmd =
  let run () file example model method_ exact json =
    let inst = or_die (load_instance file example) in
    let report = Rwt_core.Analysis.analyze_exn ~method_ model inst in
    if json then
      print_endline
        (Json.to_string ~pretty:true (Rwt_core.Analysis.report_to_json inst report))
    else begin
      Format.printf "%a@." Rwt_core.Analysis.pp_report report;
      if exact then
        Format.printf "exact period: %s@." (Rat.to_string report.Rwt_core.Analysis.period)
    end
  in
  let exact_arg =
    Arg.(value & flag & info [ "exact" ] ~doc:"Also print the period as an exact rational.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Full machine-readable report on stdout.")
  in
  Cmd.v
    (Cmd.info "period" ~doc:"Compute the period, throughput and Mct bound of a mapping.")
    Term.(const run $ obs_term $ file_arg $ example_arg $ model_arg $ method_arg
          $ exact_arg $ json_arg)

(* --- mct --- *)

let mct_cmd =
  let run () file example model =
    let inst = or_die (load_instance file example) in
    Format.printf "%a@." (Cycle_time.pp_table model) inst
  in
  Cmd.v
    (Cmd.info "mct" ~doc:"Print every resource cycle-time and the Mct lower bound.")
    Term.(const run $ obs_term $ file_arg $ example_arg $ model_arg)

(* --- paths --- *)

let paths_cmd =
  let run () file example k =
    let inst = or_die (load_instance file example) in
    let mapping = inst.Instance.mapping in
    let m = Mapping.num_paths mapping in
    Format.printf "m = lcm(%s) = %d distinct paths@.%a@."
      (String.concat ", "
         (Array.to_list (Array.map string_of_int (Mapping.replication_vector mapping))))
      m Paths.pp_table
      (mapping, match k with Some k -> k | None -> min (m + 2) 24)
  in
  let k_arg =
    Arg.(value & opt (some int) None & info [ "k" ] ~docv:"K"
           ~doc:"How many data sets to list (default: m + 2, capped at 24).")
  in
  Cmd.v
    (Cmd.info "paths" ~doc:"List the round-robin paths of the first data sets (Table 1).")
    Term.(const run $ obs_term $ file_arg $ example_arg $ k_arg)

(* --- tpn --- *)

let tpn_cmd =
  let run () file example model dot pnml =
    let inst = or_die (load_instance file example) in
    let net = Rwt_core.Tpn_build.build_exn model inst in
    if dot then print_string (Rwt_petri.Tpn.to_dot net.Rwt_core.Tpn_build.tpn)
    else if pnml then print_string (Rwt_petri.Pnml.to_string net.Rwt_core.Tpn_build.tpn)
    else
      Format.printf "%s model: %a (m = %d rows x %d columns)@."
        (Comm_model.to_string model) Rwt_petri.Tpn.pp_stats net.Rwt_core.Tpn_build.tpn
        net.Rwt_core.Tpn_build.m
        ((2 * net.Rwt_core.Tpn_build.n_stages) - 1)
  in
  let dot_arg = Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz DOT on stdout.") in
  let pnml_arg =
    Arg.(value & flag & info [ "pnml" ] ~doc:"Emit PNML (ISO 15909-2) on stdout.")
  in
  Cmd.v
    (Cmd.info "tpn" ~doc:"Build the timed Petri net of the mapping (stats, DOT or PNML).")
    Term.(const run $ obs_term $ file_arg $ example_arg $ model_arg $ dot_arg $ pnml_arg)

(* --- critical cycle --- *)

let critical_cmd =
  let run () file example model =
    let inst = or_die (load_instance file example) in
    let result = Rwt_core.Exact.period_exn model inst in
    Format.printf "%a@." (Rwt_core.Exact.pp_critical result) ()
  in
  Cmd.v
    (Cmd.info "critical" ~doc:"Show a critical cycle of the TPN (Figure 8).")
    Term.(const run $ obs_term $ file_arg $ example_arg $ model_arg)

(* --- gantt --- *)

let gantt_cmd =
  let run () file example model datasets from_ds until_ds width text export utilization =
    let inst = or_die (load_instance file example) in
    let m = Mapping.num_paths inst.Instance.mapping in
    let datasets = match datasets with Some d -> d | None -> 4 * m in
    let sched = Rwt_sim.Schedule.run model inst ~datasets in
    let from_dataset = match from_ds with Some d -> d | None -> 2 * m in
    let until_dataset = match until_ds with Some d -> d | None -> (3 * m) - 1 in
    (match export with
     | Some "json" -> print_string (Rwt_sim.Trace_export.to_json ~pretty:true sched)
     | Some "csv" -> print_string (Rwt_sim.Trace_export.to_csv sched)
     | Some other ->
       prerr_endline (Printf.sprintf "rwt: unknown export format %S (json or csv)" other);
       exit 1
     | None ->
       if text then print_string (Rwt_sim.Gantt.to_text ~from_dataset ~until_dataset sched)
       else print_string (Rwt_sim.Gantt.to_ascii ~width ~from_dataset ~until_dataset sched));
    if utilization then begin
      Format.printf "@.utilization from data set %d:@." from_dataset;
      List.iter
        (fun (unit, u) -> Format.printf "  %-8s %a@." unit Rat.pp_approx u)
        (Rwt_sim.Schedule.utilization sched ~from_dataset)
    end
  in
  let datasets_arg =
    Arg.(value & opt (some int) None & info [ "datasets" ] ~docv:"N"
           ~doc:"Simulation horizon (default 4m).")
  in
  let from_arg =
    Arg.(value & opt (some int) None & info [ "from" ] ~docv:"D"
           ~doc:"First data set shown (default 2m: past the transient).")
  in
  let until_arg =
    Arg.(value & opt (some int) None & info [ "until" ] ~docv:"D"
           ~doc:"Last data set shown (default 3m-1: one full period).")
  in
  let width_arg =
    Arg.(value & opt int 100 & info [ "width" ] ~docv:"COLS" ~doc:"Chart width.")
  in
  let text_arg =
    Arg.(value & flag & info [ "text" ] ~doc:"Exact textual intervals instead of a chart.")
  in
  let util_arg =
    Arg.(value & flag & info [ "utilization" ] ~doc:"Also print per-resource utilization.")
  in
  let export_arg =
    Arg.(value & opt (some string) None & info [ "export" ] ~docv:"FMT"
           ~doc:"Dump the whole trace as json or csv instead of drawing.")
  in
  Cmd.v
    (Cmd.info "gantt" ~doc:"Simulate the schedule and draw it (Figures 7 and 12).")
    Term.(const run $ obs_term $ file_arg $ example_arg $ model_arg $ datasets_arg
          $ from_arg $ until_arg $ width_arg $ text_arg $ export_arg $ util_arg)

(* --- simulate --- *)

let simulate_cmd =
  let run () file example model blocks =
    let inst = or_die (load_instance file example) in
    let measured = Rwt_sim.Schedule.measured_period ~blocks model inst in
    Format.printf "measured period: %a (%s)@." Rat.pp_approx measured (Rat.to_string measured)
  in
  let blocks_arg =
    Arg.(value & opt int 40 & info [ "blocks" ] ~docv:"K" ~doc:"Horizon in blocks of m data sets.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Measure the steady-state period operationally.")
    Term.(const run $ obs_term $ file_arg $ example_arg $ model_arg $ blocks_arg)

(* --- show / export an instance --- *)

let show_cmd =
  let run () file example dot =
    let inst = or_die (load_instance file example) in
    if dot then print_string (Instance_dot.render inst)
    else print_string (Format_io.to_string inst)
  in
  let dot_arg =
    Arg.(value & flag & info [ "dot" ] ~doc:"Figure 2-style Graphviz rendering instead.")
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Print an instance in the textual format (e.g. to export an example).")
    Term.(const run $ obs_term $ file_arg $ example_arg $ dot_arg)

(* --- certificate --- *)

let certificate_cmd =
  let run () file example model verify_only =
    let inst = or_die (load_instance file example) in
    let net = Rwt_core.Tpn_build.build_exn model inst in
    let g = Rwt_petri.Mcr.graph_of_tpn net.Rwt_core.Tpn_build.tpn in
    match Rwt_petri.Certificate.make g with
    | None -> prerr_endline "rwt: acyclic net, nothing to certify"; exit 1
    | Some cert ->
      (match Rwt_petri.Certificate.check g cert with
       | Error msg -> prerr_endline ("rwt: certificate check failed: " ^ msg); exit 1
       | Ok () ->
         Format.eprintf "certificate verified: period %a = ratio %s over %d rows@."
           Rat.pp_approx
           (Rat.div_int cert.Rwt_petri.Certificate.lambda net.Rwt_core.Tpn_build.m)
           (Rat.to_string cert.Rwt_petri.Certificate.lambda)
           net.Rwt_core.Tpn_build.m;
         if not verify_only then
           print_endline (Rwt_petri.Certificate.to_json cert))
  in
  let verify_arg =
    Arg.(value & flag & info [ "verify-only" ] ~doc:"Check but do not print the certificate.")
  in
  Cmd.v
    (Cmd.info "certificate"
       ~doc:"Emit (and independently re-check) an optimality certificate for the period: a node potential plus a witness cycle, verifiable in one O(E) pass of exact arithmetic.")
    Term.(const run $ obs_term $ file_arg $ example_arg $ model_arg $ verify_arg)

(* --- sensitivity --- *)

let sensitivity_cmd =
  let run () file example model factor =
    let inst = or_die (load_instance file example) in
    let factor =
      try Rat.of_string factor with _ ->
        prerr_endline "rwt: bad --factor (rational expected)";
        exit 1
    in
    let s = Rwt_core.Sensitivity.analyze ~factor model inst in
    Format.printf "%a@." Rwt_core.Sensitivity.pp s
  in
  let factor_arg =
    Arg.(value & opt string "2" & info [ "factor" ] ~docv:"Q"
           ~doc:"Upgrade factor applied to each resource in turn (default 2).")
  in
  Cmd.v
    (Cmd.info "sensitivity"
       ~doc:"What-if analysis: the exact period after upgrading each processor or link, ranked. Shows which resources actually sit on the critical cycle.")
    Term.(const run $ obs_term $ file_arg $ example_arg $ model_arg $ factor_arg)

(* --- latency --- *)

let latency_cmd =
  let run () file example model margin =
    let inst = or_die (load_instance file example) in
    let margin =
      match margin with
      | None -> Rat.zero
      | Some s ->
        (try Rat.of_string s with _ ->
          prerr_endline "rwt: bad --margin (rational expected)";
          exit 1)
    in
    let l = Rwt_core.Latency.analyze ~margin model inst in
    Format.printf "%a@." Rwt_core.Latency.pp l;
    Array.iteri
      (fun r lat -> Format.printf "  class %d: %a@." r Rat.pp_approx lat)
      l.Rwt_core.Latency.per_residue
  in
  let margin_arg =
    Arg.(value & opt (some string) None & info [ "margin" ] ~docv:"Q"
           ~doc:"Release slack: data sets enter every period*(1+Q) (default 0).")
  in
  Cmd.v
    (Cmd.info "latency" ~doc:"Steady-state latency under periodic admission.")
    Term.(const run $ obs_term $ file_arg $ example_arg $ model_arg $ margin_arg)

(* --- optimize --- *)

(* The searchers need a pipeline and a platform, not a mapping — finding
   one is their job. Files may therefore omit the map lines (the only way
   to describe a platform with fewer processors than stages); a mapping
   that is present is reported back so the result can be compared to it. *)
let load_problem file example =
  match (file, example) with
  | Some _, Some _ -> Error (cli_err "use either --file or --example, not both")
  | None, None ->
    Error
      (cli_err "an instance is required: --file <path> or --example <a|b|c|no-replication>")
  | Some path, None ->
    (match Format_io.load_problem path with
     | Ok (_name, pipeline, platform, mapping) -> Ok (pipeline, platform, mapping)
     | Error e -> Error e)
  | None, Some _ ->
    (match load_instance file example with
     | Ok inst ->
       Ok
         ( inst.Instance.pipeline,
           inst.Instance.platform,
           Some inst.Instance.mapping )
     | Error e -> Error e)

(* wall-clock budget as a cooperative deadline closure, shared by the
   search-flavoured commands *)
let deadline_of_timeout = function
  | None -> None
  | Some secs ->
    let armed = Unix.gettimeofday () +. secs in
    Some (fun () -> Unix.gettimeofday () > armed)

let optimize_cmd =
  let run () file example model iterations seed m_cap timeout =
    let pipeline, platform, given_mapping = or_die (load_problem file example) in
    let deadline = deadline_of_timeout timeout in
    let greedy = or_die (Rwt_core.Optimize.greedy ?deadline model pipeline platform) in
    Format.printf "greedy baseline:@.%a@.@." Rwt_core.Optimize.pp greedy;
    let ls =
      or_die
        (Rwt_core.Optimize.local_search ~seed ~iterations ~m_cap ?deadline model
           pipeline platform)
    in
    Format.printf "local search:@.%a@." Rwt_core.Optimize.pp ls;
    match given_mapping with
    | None -> ()
    | Some mapping ->
      let inst = Instance.create_exn ~name:"given" ~pipeline ~platform ~mapping in
      let given = Rwt_core.Analysis.analyze_exn model inst in
      Format.printf "@.(the instance's own mapping has period %a)@." Rat.pp_approx
        given.Rwt_core.Analysis.period
  in
  let iter_arg =
    Arg.(value & opt int 400 & info [ "iterations" ] ~docv:"N" ~doc:"Search moves.")
  in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.") in
  let mcap_arg =
    Arg.(value & opt int 720 & info [ "m-cap" ] ~docv:"N"
           ~doc:"Reject candidates whose lcm of replication counts exceeds $(docv); \
                 applies uniformly to every evaluation of the run.")
  in
  let timeout_arg =
    Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECS"
           ~doc:"Wall-clock budget; when it expires the search stops and reports \
                 the best mapping found so far (anytime behaviour).")
  in
  Cmd.v
    (Cmd.info "optimize" ~doc:"Heuristic mapping search on the instance's platform (the paper's NP-hard companion problem).")
    Term.(const run $ obs_term $ file_arg $ example_arg $ model_arg $ iter_arg $ seed_arg
          $ mcap_arg $ timeout_arg)

(* --- search --- *)

let search_cmd =
  let run () file example model tier sweeps iterations seed m_cap budget timeout
      summary =
    let pipeline, platform, _given = or_die (load_problem file example) in
    let deadline = deadline_of_timeout timeout in
    let outcome =
      or_die
        (Rwt_core.Search.search ~seed ~tier ~sweeps ~iterations ~m_cap
           ~exact_budget:budget ?deadline model pipeline platform)
    in
    (* NDJSON front on stdout, one mapping per line; summary on stderr so
       pipelines stay parseable *)
    List.iter
      (fun mem -> print_endline (Json.to_string (Rwt_core.Search.member_to_json mem)))
      outcome.Rwt_core.Search.front;
    if summary then Format.eprintf "%a@." Rwt_core.Search.pp_outcome outcome
    else begin
      let tier_name =
        match outcome.Rwt_core.Search.tier with
        | Rwt_core.Search.Exact -> "exact"
        | Rwt_core.Search.Heuristic -> "heuristic"
      in
      Format.eprintf "rwt search: %s tier, front %d, %d scored, %d pruned%s@."
        tier_name
        (List.length outcome.Rwt_core.Search.front)
        outcome.Rwt_core.Search.candidates outcome.Rwt_core.Search.pruned
        (if outcome.Rwt_core.Search.complete then "" else " (incomplete: deadline)")
    end
  in
  let tier_conv =
    Arg.conv
      ( (fun s ->
          match String.lowercase_ascii s with
          | "auto" -> Ok `Auto
          | "exact" -> Ok `Exact
          | "heuristic" -> Ok `Heuristic
          | _ -> Error (`Msg "expected 'auto', 'exact' or 'heuristic'")),
        fun fmt t ->
          Format.pp_print_string fmt
            (match t with `Auto -> "auto" | `Exact -> "exact" | `Heuristic -> "heuristic") )
  in
  let tier_arg =
    Arg.(value & opt tier_conv `Auto & info [ "tier" ] ~docv:"TIER"
           ~doc:"auto (default), exact (certified branch-and-bound enumeration) \
                 or heuristic (replication-sweep starts + scalarized walks).")
  in
  let sweeps_arg =
    Arg.(value & opt int 8 & info [ "sweeps" ] ~docv:"N"
           ~doc:"Heuristic walks (ignored by the exact tier).")
  in
  let iter_arg =
    Arg.(value & opt int 400 & info [ "iterations" ] ~docv:"N"
           ~doc:"Moves per heuristic walk (ignored by the exact tier).")
  in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.") in
  let mcap_arg =
    Arg.(value & opt int 64 & info [ "m-cap" ] ~docv:"N"
           ~doc:"Exclude candidates whose lcm of replication counts exceeds $(docv).")
  in
  let budget_arg =
    Arg.(value & opt int 20_000 & info [ "exact-budget" ] ~docv:"N"
           ~doc:"auto picks the exact tier when the assignment space has at most \
                 $(docv) candidates.")
  in
  let timeout_arg =
    Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECS"
           ~doc:"Wall-clock budget; an expired search emits the front found so \
                 far and reports it as incomplete.")
  in
  let summary_arg =
    Arg.(value & flag & info [ "summary" ]
           ~doc:"Print the full front table to stderr instead of the one-line \
                 summary.")
  in
  Cmd.v
    (Cmd.info "search"
       ~doc:"Multi-criteria mapping search: the Pareto front over period, latency \
             and reliability, one NDJSON mapping per line (doc/SEARCH.md).")
    Term.(const run $ obs_term $ file_arg $ example_arg $ model_arg $ tier_arg
          $ sweeps_arg $ iter_arg $ seed_arg $ mcap_arg $ budget_arg $ timeout_arg
          $ summary_arg)

(* --- stochastic --- *)

let stochastic_cmd =
  let run () file example model samples epsilon seed =
    let inst = or_die (load_instance file example) in
    let epsilon =
      try Rat.of_string epsilon with _ ->
        prerr_endline "rwt: bad --epsilon (rational expected)";
        exit 1
    in
    let s = Rwt_experiments.Stochastic.run ~seed ~samples ~epsilon model inst in
    Format.printf "%a@." Rwt_experiments.Stochastic.pp s
  in
  let samples_arg =
    Arg.(value & opt int 200 & info [ "samples" ] ~docv:"N" ~doc:"Monte-Carlo samples.")
  in
  let eps_arg =
    Arg.(value & opt string "1/5" & info [ "epsilon" ] ~docv:"Q"
           ~doc:"Speed/bandwidth variability: factors uniform in [1-Q, 1+Q].")
  in
  let seed_arg = Arg.(value & opt int 2009 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.") in
  Cmd.v
    (Cmd.info "stochastic" ~doc:"Period distribution over a dynamic platform (the paper's stated future work).")
    Term.(const run $ obs_term $ file_arg $ example_arg $ model_arg $ samples_arg
          $ eps_arg $ seed_arg)

(* --- table2 --- *)

let table2_cmd =
  let run () scale seed full =
    let scale = if full then 1.0 else scale in
    let progress = (fun label k -> if k mod 50 = 0 then Printf.eprintf "[%s] %d...\n%!" label k) in
    let results = Rwt_experiments.Table2.run_all ~seed ~scale ~progress () in
    Format.printf "%a@." Rwt_experiments.Table2.pp_results results
  in
  let scale_arg =
    Arg.(value & opt float 0.1 & info [ "scale" ] ~docv:"S"
           ~doc:"Fraction of the paper's 5152-experiment campaign (default 0.1).")
  in
  let seed_arg = Arg.(value & opt int 2009 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.") in
  let full_arg = Arg.(value & flag & info [ "full" ] ~doc:"Run the full-size campaign.") in
  Cmd.v
    (Cmd.info "table2" ~doc:"Reproduce the paper's Table 2 experiment campaign.")
    Term.(const run $ obs_term $ scale_arg $ seed_arg $ full_arg)

(* --- calibrate --- *)

let calibrate_cmd =
  let run () =
    Format.printf "published-value checks on the shipped Examples A and B:@.";
    List.iter
      (fun (name, ok) -> Format.printf "  %-55s %s@." name (if ok then "ok" else "FAIL"))
      (Rwt_experiments.Calibrate.verify_published ());
    let b = Rwt_experiments.Calibrate.example_b_candidates () in
    Format.printf "example B: %d label assignments reproduce the published values (%d with a unique critical resource)@."
      (List.length b)
      (List.length (List.filter (fun c -> c.Rwt_experiments.Calibrate.unique_critical) b));
    (* progress note, not a result: stderr *)
    Format.eprintf "running the example A search (4320 assignments)...@.";
    let a = Rwt_experiments.Calibrate.example_a_candidates () in
    Format.printf "example A: %d label assignments reproduce the published values@."
      (List.length a)
  in
  Cmd.v
    (Cmd.info "calibrate" ~doc:"Re-run the figure-label calibration searches (DESIGN.md §4).")
    Term.(const run $ obs_term)

(* --- profile --- *)

let profile_cmd =
  let run () pos_file file example model datasets sort top =
    let file =
      match (pos_file, file) with
      | Some p, None -> Some p
      | None, f -> f
      | Some _, Some _ ->
        prerr_endline "rwt: give the instance either as a positional FILE or via --file";
        exit 1
    in
    (* profiling implies metrics and convergence-event collection even
       without --metrics/--events *)
    Rwt_obs.enable ~events:true ();
    let inst = Rwt_obs.with_span "load" (fun () -> or_die (load_instance file example)) in
    let m = Mapping.num_paths inst.Instance.mapping in
    Format.printf "profiling %s (model %s, m = %d)@." inst.Instance.name
      (Comm_model.to_string model) m;
    (* phase 1: Theorem 1 (polynomial), overlap only *)
    (match model with
     | Comm_model.Overlap ->
       let p = Rwt_core.Poly_overlap.period inst in
       Format.printf "poly period:     %a@." Rat.pp_approx p
     | Comm_model.Strict -> ());
    (* phase 2: full TPN build + exact max-cycle-ratio *)
    let result = Rwt_core.Exact.period_exn model inst in
    Format.printf "tpn period:      %a (critical cycle: %d transitions)@." Rat.pp_approx
      result.Rwt_core.Exact.period
      (List.length result.Rwt_core.Exact.critical);
    (* phase 3: operational simulation over a few periods *)
    let datasets = match datasets with Some d -> d | None -> max (4 * m) 64 in
    let sched = Rwt_sim.Schedule.run model inst ~datasets in
    Format.printf "simulated:       %d data sets (last completion %a)@." datasets
      Rat.pp_approx
      (Rwt_sim.Schedule.ordered_completion sched (datasets - 1));
    Format.printf "@.%a@." (Rwt_obs.pp_span_table ~sort ?top) ();
    let es = Rwt_obs.event_stats () in
    if es.Rwt_obs.recorded > 0 then begin
      let head = List.filteri (fun i _ -> i < 6) es.Rwt_obs.by_name in
      let dropped =
        if es.Rwt_obs.dropped > 0 then
          Printf.sprintf ", %d dropped" es.Rwt_obs.dropped
        else ""
      in
      Format.printf "%d events recorded (ring %d/%d%s): %s@." es.Rwt_obs.recorded
        es.Rwt_obs.kept es.Rwt_obs.capacity dropped
        (String.concat ", "
           (List.map (fun (n, c) -> Printf.sprintf "%s %d" n c) head))
    end
  in
  let pos_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE"
           ~doc:"Instance file (alternative to --file/--example).")
  in
  let datasets_arg =
    Arg.(value & opt (some int) None & info [ "datasets" ] ~docv:"N"
           ~doc:"Simulation horizon for the sim phase (default max(4m, 64)).")
  in
  let sort_arg =
    let sort_conv =
      Arg.enum
        [ ("total", Rwt_obs.By_total); ("mean", Rwt_obs.By_mean);
          ("p90", Rwt_obs.By_p90); ("calls", Rwt_obs.By_calls) ]
    in
    Arg.(value & opt sort_conv Rwt_obs.By_total & info [ "sort" ] ~docv:"COL"
           ~doc:"Span-table sort column: total (default), mean, p90 or calls.")
  in
  let top_arg =
    Arg.(value & opt (some int) None & info [ "top" ] ~docv:"N"
           ~doc:"Show only the $(docv) most expensive spans.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Run the full analysis pipeline on an instance and print a per-phase cost table (spans, calls, total/mean/p90/max seconds). Combine with --metrics/--trace/--events to export the raw numbers.")
    Term.(const run $ obs_term $ pos_arg $ file_arg $ example_arg $ model_arg $ datasets_arg
          $ sort_arg $ top_arg)

(* --- batch --- *)

(* the --example job family: every (model × method) combination that the
   analyzer accepts — strict×poly is excluded because there is no
   polynomial algorithm for the strict model. Five distinct canonical
   keys, so --jobs N>1 genuinely fans out even from a single instance. *)
let example_job_family inst =
  List.mapi
    (fun index (model, method_, id) ->
      Rwt_batch.job ~id ~model ~method_ ~index (Rwt_batch.Inline inst))
    [ (Comm_model.Overlap, Rwt_core.Analysis.Auto, "overlap-auto");
      (Comm_model.Overlap, Rwt_core.Analysis.Tpn, "overlap-tpn");
      (Comm_model.Overlap, Rwt_core.Analysis.Poly, "overlap-poly");
      (Comm_model.Strict, Rwt_core.Analysis.Auto, "strict-auto");
      (Comm_model.Strict, Rwt_core.Analysis.Tpn, "strict-tpn") ]

let batch_cmd =
  let run () jobfile example jobs timeout cap out no_timing journal resume retries
      backoff_ms =
    if resume && journal = None then
      die_err (cli_err "batch --resume requires --journal FILE");
    let job_result =
      match (jobfile, example) with
      | Some _, Some _ ->
        die_err (cli_err "use either JOBFILE or --example, not both")
      | None, None ->
        die_err
          (cli_err
             "jobs are required: give a JOBFILE (\"-\" for stdin) or --example NAME")
      | None, Some name ->
        Ok (example_job_family (or_die (load_instance None (Some name))))
      | Some jobfile, None ->
        let contents =
          match jobfile with
          | "-" -> In_channel.input_all In_channel.stdin
          | p ->
            (try In_channel.with_open_text p In_channel.input_all
             with Sys_error msg ->
               prerr_endline ("rwt: " ^ msg);
               exit 1)
        in
        (match Rwt_batch.parse_jobs contents with
         | Error e ->
           Error { e with Rwt_err.context = ("jobfile", jobfile) :: e.Rwt_err.context }
         | Ok [] -> Error (cli_err (jobfile ^ ": no jobs"))
         | Ok job_list -> Ok job_list)
    in
    match job_result with
    | Error e -> die_err e
    | Ok job_list ->
      let oc, close =
        match out with
        | None | Some "-" -> (stdout, fun () -> ())
        | Some path ->
          (try
             let oc = open_out path in
             (oc, fun () -> close_out oc)
           with Sys_error msg ->
             prerr_endline ("rwt: cannot write " ^ path ^ ": " ^ msg);
             exit 1)
      in
      let summary =
        Rwt_batch.run_to_channel ?jobs ?timeout ?transition_cap:cap ?journal ~resume
          ~retries ~backoff_ms ~timing:(not no_timing) oc job_list
      in
      close ();
      (* wall time is machine-dependent; keep the summary deterministic
         alongside --no-timing so cram tests can pin it *)
      if no_timing then Format.eprintf "rwt batch: %a@." Rwt_batch.pp_summary summary
      else
        Format.eprintf "rwt batch: %a in %.3f s@." Rwt_batch.pp_summary summary
          summary.Rwt_batch.elapsed_s;
      if summary.Rwt_batch.ok = 0 && summary.Rwt_batch.total > 0 then exit 3
  in
  let jobfile_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"JOBFILE"
           ~doc:"Job file (\"-\" for stdin): one instance path or NDJSON job object \
                 per line; see doc/BATCH.md. Alternative to --example.")
  in
  let jobs_arg =
    Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Worker domains. An explicit count is honored as given (capped at \
                 the number of unique jobs), even on a single-core host — combine \
                 with --trace to see one lane per worker. Without the flag the \
                 RWT_WORKERS environment variable is honored next (precedence: \
                 flag > RWT_WORKERS > auto); the automatic default is the \
                 recommended domain count of the machine, with a sequential \
                 fallback for tiny batches and single-core hosts.")
  in
  let timeout_arg =
    Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECS"
           ~doc:"Per-job budget in seconds, checked cooperatively at job checkpoints; \
                 an over-budget job reports status \"timeout\" instead of running.")
  in
  let cap_arg =
    Arg.(value & opt (some int) None & info [ "transition-cap" ] ~docv:"N"
           ~doc:"Per-job TPN size guard (default: the library default); an lcm \
                 blow-up reports status \"error\" instead of stalling the batch.")
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the NDJSON results to $(docv) instead of stdout.")
  in
  let no_timing_arg =
    Arg.(value & flag & info [ "no-timing" ]
           ~doc:"Omit wall-time fields so output is byte-identical across runs \
                 and worker counts.")
  in
  let journal_arg =
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE"
           ~doc:"Append each completed evaluation to $(docv) (fsync'd NDJSON \
                 sidecar) so a killed batch can be finished with --resume; \
                 see doc/RESILIENCE.md for the format.")
  in
  let resume_arg =
    Arg.(value & flag & info [ "resume" ]
           ~doc:"Replay results already recorded in --journal and evaluate \
                 only the missing jobs. The journal must have been written \
                 by the same job list and options.")
  in
  let retries_arg =
    Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N"
           ~doc:"Re-evaluate a job whose failure is transient (fault class) \
                 up to $(docv) extra times under decorrelated-jitter backoff.")
  in
  let backoff_arg =
    Arg.(value & opt float 100.0 & info [ "backoff-ms" ] ~docv:"MS"
           ~doc:"Base retry delay (default 100): each retry sleeps uniform in \
                 [base, 3*previous) ms, capped, seeded per job index so \
                 schedules are deterministic at any worker count.")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Evaluate a stream of (instance, model, method) jobs on a work-stealing \
             pool of domains, one NDJSON result line per job, in job order. \
             Duplicate jobs are served from a canonical-instance memo cache.")
    Term.(const run $ obs_term $ jobfile_arg $ example_arg $ jobs_arg $ timeout_arg
          $ cap_arg $ out_arg $ no_timing_arg $ journal_arg $ resume_arg
          $ retries_arg $ backoff_arg)

(* --- json-check --- *)

let json_check_cmd =
  let run path =
    let contents =
      match path with
      | "-" -> In_channel.input_all In_channel.stdin
      | p ->
        (try In_channel.with_open_bin p In_channel.input_all
         with Sys_error msg ->
           prerr_endline ("rwt: " ^ msg);
           exit 1)
    in
    match Json.of_string contents with
    | Ok _ -> print_endline "ok"
    | Error msg ->
      prerr_endline ("rwt: invalid JSON: " ^ msg);
      exit 1
  in
  let path_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
           ~doc:"JSON file to validate (\"-\" for stdin).")
  in
  Cmd.v
    (Cmd.info "json-check"
       ~doc:"Parse a JSON file with the library's strict RFC 8259 parser; print \"ok\" and exit 0 iff it is valid. Used by the test suite to validate --metrics/--trace/--json output.")
    Term.(const run $ path_arg)

(* --- obs: observability tooling (diff, prometheus) --- *)

let read_json_file path =
  let contents =
    match path with
    | "-" -> In_channel.input_all In_channel.stdin
    | p ->
      (try In_channel.with_open_bin p In_channel.input_all
       with Sys_error msg ->
         prerr_endline ("rwt: " ^ msg);
         exit 1)
  in
  match Json.of_string contents with
  | Ok j -> j
  | Error msg ->
    prerr_endline ("rwt: " ^ path ^ ": invalid JSON: " ^ msg);
    exit 1

let obs_diff_cmd =
  let run old_path new_path threshold_pct min_delta good match_pats quiet =
    let old_json = read_json_file old_path and new_json = read_json_file new_path in
    (* wall times and req/s from different machines are noise, not signal:
       when both snapshots record the hardware parallelism and it differs,
       the pair is incomparable — warn and succeed rather than flag
       phantom regressions *)
    let cores_of json =
      match json with
      | Json.Obj fields ->
        (match List.assoc_opt "cores_available" fields with
         | Some (Json.Int c) -> Some c
         | _ -> None)
      | _ -> None
    in
    (match (cores_of old_json, cores_of new_json) with
     | Some a, Some b when a <> b ->
       Printf.printf
         "rwt obs diff: incomparable snapshots (cores_available %d vs %d); skipping\n"
         a b;
       exit 0
     | _ -> ());
    let higher_better k = List.exists (fun p -> Rwt_obs.glob_match p k) good in
    let keep k =
      match match_pats with
      | [] -> true
      | ps -> List.exists (fun p -> Rwt_obs.glob_match p k) ps
    in
    let threshold = threshold_pct /. 100.0 in
    let r =
      Rwt_obs.diff_metrics ~threshold ~min_delta ~higher_better ~old_json ~new_json ()
    in
    let entries = List.filter (fun e -> keep e.Rwt_obs.key) r.Rwt_obs.entries in
    let only_old = List.filter keep r.Rwt_obs.only_old in
    let only_new = List.filter keep r.Rwt_obs.only_new in
    let count st = List.length (List.filter (fun e -> e.Rwt_obs.status = st) entries) in
    let regressions = count Rwt_obs.Regression in
    let improvements = count Rwt_obs.Improvement in
    let pct rel =
      if rel = infinity then "+inf%"
      else if rel = neg_infinity then "-inf%"
      else Printf.sprintf "%+.1f%%" (100.0 *. rel)
    in
    Printf.printf
      "rwt obs diff: %d keys compared, %d regression%s, %d improvement%s (threshold %g%%)\n"
      (List.length entries) regressions
      (if regressions = 1 then "" else "s")
      improvements
      (if improvements = 1 then "" else "s")
      threshold_pct;
    if not quiet then
      List.iter
        (fun e ->
          match e.Rwt_obs.status with
          | Rwt_obs.Unchanged -> ()
          | Rwt_obs.Regression ->
            Printf.printf "  REGRESSION  %-40s %g -> %g  (%s)\n" e.Rwt_obs.key
              e.Rwt_obs.v_old e.Rwt_obs.v_new (pct e.Rwt_obs.rel)
          | Rwt_obs.Improvement ->
            Printf.printf "  improved    %-40s %g -> %g  (%s)\n" e.Rwt_obs.key
              e.Rwt_obs.v_old e.Rwt_obs.v_new (pct e.Rwt_obs.rel))
        entries;
    if only_old <> [] || only_new <> [] then
      Printf.printf "  (%d keys only in OLD, %d only in NEW)\n" (List.length only_old)
        (List.length only_new);
    if regressions > 0 then exit 4
  in
  let old_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OLD"
           ~doc:"Baseline metrics/BENCH JSON file (\"-\" for stdin).")
  in
  let new_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"NEW"
           ~doc:"Candidate metrics/BENCH JSON file.")
  in
  let threshold_arg =
    Arg.(value & opt float 10.0 & info [ "threshold" ] ~docv:"PCT"
           ~doc:"Relative change (percent) beyond which a key counts as a \
                 regression or improvement (default 10).")
  in
  let min_delta_arg =
    Arg.(value & opt float 0.0 & info [ "min-delta" ] ~docv:"ABS"
           ~doc:"Ignore changes whose absolute delta is below $(docv) — keeps \
                 noise on near-zero timings out of the report (default 0).")
  in
  let good_arg =
    Arg.(value & opt_all string [ "*speedup*"; "*throughput*" ]
         & info [ "good" ] ~docv:"GLOB"
             ~doc:"Keys matching $(docv) ('*' wildcards) are \"higher is \
                   better\": a drop is the regression. Repeatable; defaults to \
                   *speedup* and *throughput*.")
  in
  let match_arg =
    Arg.(value & opt_all string [] & info [ "match" ] ~docv:"GLOB"
           ~doc:"Compare only keys matching $(docv) ('*' wildcards). \
                 Repeatable; default: every numeric key.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Summary line only, no per-key detail.")
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Compare every numeric leaf of two metrics/BENCH JSON dumps against a relative threshold; exit 4 when any key regressed. The enforcement behind make bench-diff.")
    Term.(const run $ old_arg $ new_arg $ threshold_arg $ min_delta_arg $ good_arg
          $ match_arg $ quiet_arg)

let obs_prom_cmd =
  let run path =
    match Rwt_obs.prometheus_of_json (read_json_file path) with
    | Ok text -> print_string text
    | Error msg ->
      prerr_endline ("rwt: " ^ path ^ ": " ^ msg);
      exit 1
  in
  let path_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
           ~doc:"rwt.metrics/1 JSON dump (or a BENCH envelope wrapping one); \
                 \"-\" for stdin.")
  in
  Cmd.v
    (Cmd.info "prom"
       ~doc:"Render a --metrics JSON dump in Prometheus text exposition format (the future /metrics body for rwt serve).")
    Term.(const run $ path_arg)

let obs_cmd =
  Cmd.group
    (Cmd.info "obs"
       ~doc:"Observability tooling: compare two metric dumps against regression thresholds, or convert a dump to Prometheus text format.")
    [ obs_diff_cmd; obs_prom_cmd ]

(* --- serve / send: the persistent analysis daemon and its client --- *)

let parse_tcp spec =
  let bad () =
    die_err (cli_err (Printf.sprintf "bad --tcp %S: expected [HOST:]PORT" spec))
  in
  match String.rindex_opt spec ':' with
  | Some i ->
    let host = String.sub spec 0 i in
    let port = String.sub spec (i + 1) (String.length spec - i - 1) in
    (match int_of_string_opt port with
     | Some p when p >= 0 && p < 65536 ->
       ((if host = "" then "127.0.0.1" else host), p)
     | _ -> bad ())
  | None ->
    (match int_of_string_opt spec with
     | Some p when p >= 0 && p < 65536 -> ("127.0.0.1", p)
     | _ -> bad ())

let socket_arg =
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
         ~doc:"Unix-domain socket path of the daemon.")

let tcp_arg =
  Arg.(value & opt (some string) None & info [ "tcp" ] ~docv:"[HOST:]PORT"
         ~doc:"TCP address of the daemon (host defaults to 127.0.0.1).")

let serve_cmd =
  let run () socket tcp port_file workers queue max_conns max_line deadline_ms cap
      journal memo_cap allow_shutdown =
    let tcp = Option.map parse_tcp tcp in
    let cfg =
      { Rwt_serve.default_config with
        socket; tcp; port_file; workers; queue; max_conns; max_line;
        default_deadline_ms = deadline_ms; default_transition_cap = cap;
        journal; memo_cap; allow_shutdown }
    in
    let on_ready (r : Rwt_serve.ready) =
      (* SIGTERM/SIGINT request a graceful drain: stop accepting, finish
         admitted work, flush every pending response, then exit 0 *)
      List.iter
        (fun s ->
          Sys.set_signal s
            (Sys.Signal_handle (fun _ -> Rwt_serve.stop r.Rwt_serve.control)))
        [ Sys.sigterm; Sys.sigint ];
      if r.Rwt_serve.recovered > 0 then
        Format.eprintf "rwt serve: recovered %d journaled result%s@."
          r.Rwt_serve.recovered
          (if r.Rwt_serve.recovered = 1 then "" else "s");
      Format.eprintf "rwt serve: listening on %s (workers %d, queue %d)@."
        r.Rwt_serve.addr r.Rwt_serve.eff_workers queue
    in
    match Rwt_serve.run ~on_ready cfg with
    | Ok stats -> Format.eprintf "rwt serve: drained: %a@." Rwt_serve.pp_stats stats
    | Error e -> die_err e
  in
  let port_file_arg =
    Arg.(value & opt (some string) None & info [ "port-file" ] ~docv:"FILE"
           ~doc:"Write the bound TCP port to $(docv) (useful with --tcp 0 for an \
                 ephemeral port).")
  in
  let workers_arg =
    Arg.(value & opt int 0 & info [ "w"; "workers" ] ~docv:"N"
           ~doc:"Worker domains evaluating requests (default 0 = the RWT_WORKERS \
                 environment variable when set, else the recommended domain count \
                 of the machine; precedence: flag > RWT_WORKERS > auto).")
  in
  let queue_arg =
    Arg.(value & opt int Rwt_serve.default_config.Rwt_serve.queue
         & info [ "queue" ] ~docv:"N"
             ~doc:"Admission cap: maximum outstanding (queued + running) analysis \
                   requests; beyond it the daemon answers status \"shed\" \
                   immediately instead of queueing without bound.")
  in
  let max_conns_arg =
    Arg.(value & opt int Rwt_serve.default_config.Rwt_serve.max_conns
         & info [ "max-conns" ] ~docv:"N"
             ~doc:"Maximum concurrent client connections.")
  in
  let max_line_arg =
    Arg.(value & opt int Rwt_serve.default_config.Rwt_serve.max_line
         & info [ "max-line" ] ~docv:"BYTES"
             ~doc:"Request line size cap; longer lines are answered with a typed \
                   capacity error and discarded.")
  in
  let deadline_arg =
    Arg.(value & opt (some int) None & info [ "deadline-ms" ] ~docv:"MS"
           ~doc:"Default per-request budget (from admission, milliseconds) applied \
                 when a request carries no \"deadline_ms\" of its own.")
  in
  let cap_arg =
    Arg.(value & opt (some int) None & info [ "transition-cap" ] ~docv:"N"
           ~doc:"Default TPN size guard applied when a request carries no \
                 \"transition_cap\" of its own.")
  in
  let journal_arg =
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE"
           ~doc:"Crash-tolerance journal: append each completed deterministic \
                 result (fsync'd before the response is sent) and replay the \
                 journal on startup, so kill -9 + restart + client resend yields \
                 byte-identical responses. See doc/SERVE.md.")
  in
  let memo_cap_arg =
    Arg.(value & opt int Rwt_serve.default_config.Rwt_serve.memo_cap
         & info [ "memo-cap" ] ~docv:"N"
             ~doc:"Canonical-result cache entries kept in memory (FIFO eviction).")
  in
  let allow_shutdown_arg =
    Arg.(value & flag & info [ "allow-shutdown" ]
           ~doc:"Honor the {\"req\":\"shutdown\"} request type (off by default: a \
                 client must not be able to stop a shared daemon).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the persistent analysis daemon: NDJSON requests over a Unix-domain \
             and/or TCP socket, one response line per request, with admission \
             control, overload shedding, graceful SIGTERM drain and a crash \
             journal. Protocol in doc/SERVE.md.")
    Term.(const run $ obs_term $ socket_arg $ tcp_arg $ port_file_arg $ workers_arg
          $ queue_arg $ max_conns_arg $ max_line_arg $ deadline_arg $ cap_arg
          $ journal_arg $ memo_cap_arg $ allow_shutdown_arg)

let send_cmd =
  let run () reqfile socket tcp retries backoff_ms seed =
    let addr =
      match (socket, tcp) with
      | Some _, Some _ -> die_err (cli_err "use either --socket or --tcp, not both")
      | Some path, None -> Rwt_serve.Client.Unix_sock path
      | None, Some spec ->
        let host, port = parse_tcp spec in
        Rwt_serve.Client.Tcp (host, port)
      | None, None ->
        die_err
          (cli_err "a daemon address is required: --socket PATH or --tcp HOST:PORT")
    in
    let contents =
      match reqfile with
      | "-" -> In_channel.input_all In_channel.stdin
      | p ->
        (try In_channel.with_open_text p In_channel.input_all
         with Sys_error msg ->
           prerr_endline ("rwt: " ^ msg);
           exit 1)
    in
    let lines =
      List.filter
        (fun l -> String.trim l <> "" && (String.trim l).[0] <> '#')
        (String.split_on_char '\n' contents)
    in
    if lines = [] then die_err (cli_err (reqfile ^ ": no requests"));
    match Rwt_serve.Client.request_lines ~retries ~backoff_ms ~seed addr lines with
    | Ok responses -> List.iter print_endline responses
    | Error (e, partial) ->
      (* the responses that did arrive are still valid results *)
      List.iter print_endline partial;
      die_err e
  in
  let reqfile_arg =
    Arg.(value & pos 0 string "-" & info [] ~docv:"REQFILE"
           ~doc:"Request file (\"-\", the default, for stdin): one NDJSON request \
                 per line; blank lines and #-comments are skipped.")
  in
  let retries_arg =
    Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N"
           ~doc:"Retry budget for failed connects, daemon disconnects and shed \
                 responses (unanswered requests are re-sent; analysis results are \
                 memoized server-side, so resending is idempotent).")
  in
  let backoff_arg =
    Arg.(value & opt float 100.0 & info [ "backoff-ms" ] ~docv:"MS"
           ~doc:"Base retry delay: each retry sleeps per the decorrelated-jitter \
                 policy (uniform in [base, 3*previous), capped) so clients that \
                 failed together do not retry together.")
  in
  let seed_arg =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED"
           ~doc:"Seed for the jitter stream (deterministic retry schedules in \
                 tests).")
  in
  Cmd.v
    (Cmd.info "send"
       ~doc:"Send NDJSON requests to a running rwt serve daemon and print one \
             response line per request, in request order.")
    Term.(const run $ obs_term $ reqfile_arg $ socket_arg $ tcp_arg $ retries_arg
          $ backoff_arg $ seed_arg)

let main =
  Cmd.group
    (Cmd.info "rwt" ~version:"1.0.0"
       ~doc:"Throughput of replicated workflows on heterogeneous platforms (Benoit, \
             Gallet, Gaujal, Robert 2009).")
    [ period_cmd; mct_cmd; paths_cmd; tpn_cmd; critical_cmd; gantt_cmd; simulate_cmd;
      show_cmd; certificate_cmd; sensitivity_cmd; latency_cmd; optimize_cmd;
      search_cmd; stochastic_cmd; table2_cmd; calibrate_cmd; profile_cmd; batch_cmd;
      serve_cmd; send_cmd; obs_cmd; json_check_cmd ]

(* a downstream pipe closing (rwt batch ... | head) surfaces as EPIPE on a
   raw write or as Sys_error "Broken pipe" on a buffered flush *)
let is_epipe =
  let mentions_broken_pipe msg =
    let sub = "Broken pipe" and n = String.length msg in
    let k = String.length sub in
    let rec scan i = i + k <= n && (String.sub msg i k = sub || scan (i + 1)) in
    scan 0
  in
  function
  | Unix.Unix_error (Unix.EPIPE, _, _) -> true
  | Sys_error msg -> mentions_broken_pipe msg
  | _ -> false

let () =
  (* writes to a closed pipe must surface as EPIPE (handled below as a
     clean exit), not kill the process with an unhandled signal *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (* arm fault injection from the environment before any command runs;
     --fault (per command) overrides *)
  (match Rwt_fault.install_from_env () with
   | Ok () -> ()
   | Error e ->
     prerr_endline ("rwt: " ^ Rwt_err.to_line e);
     exit 2);
  (* every failure — model-level (invalid mapping, lcm overflow, …),
     solver, or injected — becomes one typed diagnostic line, never a raw
     backtrace or cmdliner's "internal error" banner *)
  (* flush before [exit]: a broken-pipe failure surfacing only in the
     [at_exit] flush would escape every handler below and turn a
     successful run into a fatal error. Once the pipe is broken the
     stdout buffer is undeliverable, so skip [at_exit] entirely —
     re-flushing the poisoned channel would just raise again. *)
  let exit_flushed code =
    match flush stdout with
    | () -> exit code
    | exception e when is_epipe e ->
      (try flush stderr with _ -> ());
      Unix._exit code
  in
  match Cmd.eval ~catch:false main with
  | code -> exit_flushed code
  | exception e when is_epipe e ->
    (* the consumer stopped reading; whatever was written was wanted *)
    exit_flushed 0
  | exception Rwt_err.Error e ->
    prerr_endline ("rwt: " ^ Rwt_err.to_line e);
    exit 2
  | exception ((Stack_overflow | Out_of_memory) as e) -> raise e
  | exception e ->
    prerr_endline ("rwt: " ^ Rwt_err.to_line (Rwt_err.of_exn e));
    exit 2
