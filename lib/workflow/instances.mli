(** The paper's named instances.

    Examples A and B are given in the paper as annotated figures; the
    figure images are not machine-readable, so the published label values
    are assigned to edges by a calibration search (see
    [Rwt_experiments.Calibrate] and DESIGN.md §4) constrained by every
    quantitative statement the paper makes about them:

    - Example A, OVERLAP: period 189, critical resource = P0's out-port;
    - Example A, STRICT: Mct = 1295/6 ≈ 215.83 on P2, period 230.7;
    - Example B, OVERLAP: Mct = 3100/12 ≈ 258.33 on P2's out-port,
      period 3500/12 ≈ 291.67 (no critical resource).

    Example C only fixes the replication vector (5, 21, 27, 11); its timings
    are synthesized deterministically. *)

val example_a : unit -> Instance.t
(** 4 stages on 7 processors; S1 replicated twice, S2 three times
    (Figure 2). *)

val example_b : unit -> Instance.t
(** 2 stages on 7 processors; S0 replicated 3 times, S1 four times
    (Figure 6). *)

val example_c : unit -> Instance.t
(** 4 stages replicated (5, 21, 27, 11) on 64 processors (Figure 11);
    timings drawn from a fixed seed, compute times in [5,15], transfer
    times in [5,15]. *)

val figure1 : unit -> Pipeline.t
(** The 4-stage pipeline sketch of Figure 1 (sizes only). *)

val no_replication : unit -> Instance.t
(** A 3-stage, one-to-one mapped instance: the baseline case where the
    period provably equals [Mct]. *)

val minimal_no_critical_overlap : unit -> Instance.t
(** A 2-stage instance (replication 4 × 3, 7 processors) with {e no critical
    resource under the OVERLAP model}: period [34/3] > [Mct = 67/6]. Found by
    this repository's Table 2 campaign; the paper's own 2 576-run campaign
    found no such overlap case (its smallest known witness, Example B, uses
    3 + 4 replicas). *)
