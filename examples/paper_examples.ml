(* The paper's named instances with every published value recomputed.

   Run with: dune exec examples/paper_examples.exe *)

open Rwt_util
open Rwt_workflow

let hr () = Format.printf "%s@." (String.make 72 '-')

let () =
  (* --- Example A (Figure 2, Table 1, §4.1, §4.2) --- *)
  let a = Instances.example_a () in
  hr ();
  Format.printf "Example A: S1 replicated x2, S2 replicated x3 (m = %d paths)@."
    (Mapping.num_paths a.Instance.mapping);
  hr ();
  Format.printf "%a@." Paths.pp_table (a.Instance.mapping, 8);
  let overlap_a = Rwt_core.Analysis.analyze_exn Comm_model.Overlap a in
  Format.printf "overlap: %a@.  paper: period 189, critical resource P0-out@.@."
    Rwt_core.Analysis.pp_report overlap_a;
  let strict_a = Rwt_core.Analysis.analyze_exn Comm_model.Strict a in
  Format.printf "strict: %a@.  paper: Mct 215.8 on P2, period 230.7@.@."
    Rwt_core.Analysis.pp_report strict_a;
  Format.printf "Gantt of the strict schedule, one period (Figure 7):@.";
  let sched = Rwt_sim.Schedule.run Comm_model.Strict a ~datasets:24 in
  print_string (Rwt_sim.Gantt.to_ascii ~width:100 ~from_dataset:12 ~until_dataset:17 sched);

  (* --- Example B (Figure 6, §4.1) --- *)
  let b = Instances.example_b () in
  hr ();
  Format.printf "Example B: S0 replicated x3, S1 replicated x4 (m = %d paths)@."
    (Mapping.num_paths b.Instance.mapping);
  hr ();
  let overlap_b = Rwt_core.Analysis.analyze_exn Comm_model.Overlap b in
  Format.printf "overlap: %a@.  paper: Mct 258.3 (P2 out-port), period 291.7@.@."
    Rwt_core.Analysis.pp_report overlap_b;
  Format.printf "Gantt of the overlap schedule (Figure 12):@.";
  let sched_b = Rwt_sim.Schedule.run Comm_model.Overlap b ~datasets:48 in
  print_string
    (Rwt_sim.Gantt.to_ascii ~width:100 ~from_dataset:24 ~until_dataset:35 sched_b);

  (* --- Example C (Figure 11, appendix A) --- *)
  let c = Instances.example_c () in
  hr ();
  Format.printf "Example C: stages replicated (5, 21, 27, 11)@.";
  hr ();
  Format.printf "m = lcm = %s (paper: 10395)@."
    (Bigint.to_string (Mapping.num_paths_big c.Instance.mapping));
  let analysis = Rwt_core.Poly_overlap.analyze c in
  Format.printf "%a@." Rwt_core.Poly_overlap.pp_analysis analysis;
  Format.printf
    "paper (transmission of F1): p = 3 connected components, c = 55 patterns of u x v = 7 x 9@."
