(** Multicore batch evaluation engine.

    Evaluates a stream of {e jobs} — (instance × model × method) tuples —
    on a work-stealing pool of OCaml 5 [Domain]s and renders one NDJSON
    result line per job. This is the mapping-space-exploration substrate:
    the paper's Table 2 campaign, the multi-criteria searches of
    Benoit/Rehn-Sonigo/Robert, and any serving layer built later all
    reduce to "evaluate many candidate mappings as fast as the hardware
    allows".

    {b Determinism.} Results are reported in job-file order, and every
    non-timing field is a pure function of the job list and the engine
    options — never of the worker count or of scheduling. Duplicate jobs
    are deduplicated {e before} dispatch against a canonical-instance memo
    key, so cache hits land on the same jobs whether the batch runs on one
    domain or sixteen.

    {b Robustness.} A job that fails to load, exceeds the per-job timeout
    at a checkpoint, or blows the transition cap produces an ["error"] or
    ["timeout"] result line; the batch always runs to completion. *)

open Rwt_util
open Rwt_workflow

(** {1 Jobs} *)

type spec =
  | File of string  (** instance file in the [doc/FORMAT.md] syntax *)
  | Inline of Instance.t  (** already-loaded instance (bench, tests) *)

type job = {
  index : int;  (** 0-based position in the job stream *)
  id : string option;  (** caller-chosen label, echoed in the result *)
  spec : spec;
  model : Comm_model.t;
  method_ : Rwt_core.Analysis.method_;
}

val job :
  ?id:string ->
  ?model:Comm_model.t ->
  ?method_:Rwt_core.Analysis.method_ ->
  index:int ->
  spec ->
  job
(** Job with defaults: OVERLAP model, [Auto] method. *)

val parse_jobs : string -> (job list, string) result
(** Parse a job file. Each non-empty, non-[#] line is either

    - a bare path to an instance file ([.rwt]-list form), evaluated with
      the default model/method, or
    - an NDJSON object
      [{"file": "path", "model": "overlap"|"strict",
        "method": "auto"|"tpn"|"poly", "id": "label"}]
      where every key but ["file"] is optional.

    The two forms can be mixed. Errors name the offending line. *)

(** {1 Outcomes} *)

type status =
  | Done  (** period computed *)
  | Failed of string  (** load/validation/solver error (cap included) *)
  | Timed_out  (** per-job budget exhausted at a checkpoint *)

type outcome = {
  job : job;
  status : status;
  instance_name : string option;  (** from the loaded instance *)
  period : Rat.t option;  (** [Some] iff [status = Done] *)
  m : int option;  (** rows [lcm(m_i)], when the instance loaded *)
  n_stages : int option;
  n_resources : int option;
  cache_hit : bool;  (** an earlier job had the same canonical key *)
  wall_s : float;  (** this job's evaluation time; 0 for cache hits *)
}

val outcome_to_json : ?timing:bool -> outcome -> Json.t
(** One NDJSON record. With [timing = false] (default [true]) the
    [wall_s] field is omitted, making output byte-comparable across runs
    and worker counts. *)

type summary = {
  total : int;
  ok : int;
  errors : int;
  timeouts : int;
  cache_hits : int;
  workers : int;
  elapsed_s : float;
}

val pp_summary : Format.formatter -> summary -> unit

(** {1 Running} *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val run :
  ?jobs:int ->
  ?timeout:float ->
  ?transition_cap:int ->
  job list ->
  outcome array * summary
(** Evaluate every job; the result array is indexed like the input list.

    [jobs] is the worker-domain count (default {!default_jobs}, clamped to
    [[1, 128]]). [jobs = 1] runs on the calling domain. [timeout] is a
    per-job budget in seconds, checked cooperatively at job checkpoints
    (after load, before each solve): a job over budget reports
    [Timed_out] instead of running its solver — [timeout <= 0] therefore
    times every job out, which is the deterministic path the tests pin.
    Runaway {e sizes} (the lcm blow-up) are handled by [transition_cap]
    (default [Rwt_petri.Expand.transition_cap ()]), which turns the
    pathological build into a fast [Failed] line.

    Cache-hit jobs replay the memoized outcome of the first job with the
    same canonical key — the canonical key is the name-stripped
    {!Rwt_workflow.Format_io.to_string} serialization of the instance
    plus model and method, so two files with identical content share one
    evaluation. *)

val run_to_channel :
  ?jobs:int ->
  ?timeout:float ->
  ?transition_cap:int ->
  ?timing:bool ->
  out_channel ->
  job list ->
  summary
(** {!run}, then write one compact NDJSON line per job, in job order. *)
