module B = Bigint

type t = { num : B.t; den : B.t }

let make num den =
  if B.is_zero den then raise Division_by_zero;
  if B.is_zero num then { num = B.zero; den = B.one }
  else begin
    let num, den = if B.sign den < 0 then (B.neg num, B.neg den) else (num, den) in
    let g = B.gcd num den in
    if B.is_one g then { num; den } else { num = B.div num g; den = B.div den g }
  end

let zero = { num = B.zero; den = B.one }
let one = { num = B.one; den = B.one }
let of_int n = { num = B.of_int n; den = B.one }
let of_ints a b = make (B.of_int a) (B.of_int b)
let num x = x.num
let den x = x.den
let is_zero x = B.is_zero x.num
let sign x = B.sign x.num

let add x y =
  if is_zero x then y
  else if is_zero y then x
  else make (B.add (B.mul x.num y.den) (B.mul y.num x.den)) (B.mul x.den y.den)

let neg x = { x with num = B.neg x.num }
let sub x y = add x (neg y)
let mul x y = make (B.mul x.num y.num) (B.mul x.den y.den)
let inv x = make x.den x.num
let div x y = mul x (inv y)
let abs x = { x with num = B.abs x.num }
let mul_int x n = make (B.mul_int x.num n) x.den
let div_int x n = make x.num (B.mul_int x.den n)

let compare x y = B.compare (B.mul x.num y.den) (B.mul y.num x.den)
let equal x y = B.equal x.num y.num && B.equal x.den y.den
let min x y = if compare x y <= 0 then x else y
let max x y = if compare x y >= 0 then x else y
let is_integer x = B.is_one x.den

let to_int_opt x = if is_integer x then B.to_int_opt x.num else None
let to_float x = B.to_float x.num /. B.to_float x.den

let to_string x =
  if is_integer x then B.to_string x.num
  else B.to_string x.num ^ "/" ^ B.to_string x.den

let of_string s =
  match String.index_opt s '/' with
  | Some i ->
    let a = B.of_string (String.sub s 0 i) in
    let b = B.of_string (String.sub s (i + 1) (String.length s - i - 1)) in
    make a b
  | None ->
    (match String.index_opt s '.' with
     | None -> { num = B.of_string s; den = B.one }
     | Some i ->
       let int_part = String.sub s 0 i in
       let frac = String.sub s (i + 1) (String.length s - i - 1) in
       if String.length frac = 0 then { num = B.of_string int_part; den = B.one }
       else begin
         let scale = B.pow (B.of_int 10) (String.length frac) in
         let whole = B.of_string (if int_part = "" || int_part = "-" || int_part = "+" then int_part ^ "0" else int_part) in
         let fnum = B.of_string frac in
         let fnum = if B.sign whole < 0 || (int_part <> "" && int_part.[0] = '-') then B.neg fnum else fnum in
         make (B.add (B.mul whole scale) fnum) scale
       end)

let pp fmt x = Format.pp_print_string fmt (to_string x)

let pp_approx fmt x =
  if is_integer x then Format.pp_print_string fmt (B.to_string x.num)
  else begin
    (* Round to two decimals, exactly, so printed tables match the paper's
       258.33-style figures independent of float noise. *)
    let scaled = B.mul_int x.num 100 in
    let q, r = B.divmod scaled x.den in
    let q =
      (* round half away from zero *)
      if B.compare (B.mul_int (B.abs r) 2) x.den >= 0 then
        B.add q (B.of_int (B.sign x.num))
      else q
    in
    let neg = B.sign q < 0 in
    let q = B.abs q in
    let whole, cents = B.divmod q (B.of_int 100) in
    Format.fprintf fmt "%s%s.%02d"
      (if neg then "-" else "")
      (B.to_string whole)
      (B.to_int_exn cents)
  end

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( ~- ) = neg
  let ( = ) = equal
  let ( < ) x y = compare x y < 0
  let ( <= ) x y = compare x y <= 0
  let ( > ) x y = compare x y > 0
  let ( >= ) x y = compare x y >= 0
end
