Optimality certificates: emitted, independently re-checked, and exact.

  $ rwt certificate -e a -m strict --verify-only
  certificate verified: period 230.67 = ratio 1384 over 6 rows

  $ rwt certificate -e b -m overlap --verify-only
  certificate verified: period 291.67 = ratio 3500 over 12 rows

The JSON form carries the rational lambda and a witness cycle.

  $ rwt certificate -e nr -m overlap 2>/dev/null | head -c 16
  {"lambda":"30","
