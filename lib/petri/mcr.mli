(** Maximum cycle ratio of doubly-weighted directed graphs.

    Each edge carries a numerator weight and an integer token count; the
    objective is [λ* = max over cycles C of (Σ weight) / (Σ tokens)]. For a
    timed event graph with edge weight = firing time of the source transition
    and tokens = initial marking, [λ*] is the steady-state time between two
    successive firings of any transition (the TPN period of the paper,
    covering [m] data sets).

    Three independent solvers are provided and cross-validated by the test
    suite:
    - {!Make.howard}: policy iteration — fast in practice; its result is
      always certified by an explicit optimality check, and it falls back to
      the parametric solver if it fails to converge;
    - {!Make.parametric}: cycle-improvement with Bellman–Ford positive-cycle
      detection — unconditionally correct, the reference;
    - {!Make.karp}: Karp's maximum cycle {e mean} (tokens ignored, mean over
      edge count), for the unit-token special case and cross-checks.

    The functor runs over any numeric kernel; {!Exact} (rationals) gives
    exact results, {!Approx} (floats) is for benchmarking. *)

module Make (N : Rwt_util.Num_intf.S) : sig
  type edge_data = { weight : N.t; tokens : int }

  type graph = edge_data Rwt_graph.Digraph.t

  exception Not_live of int list
  (** Raised when some cycle carries zero tokens (its ratio is infinite, the
      event graph would deadlock). Carries the node ids of a witness cycle. *)

  type witness = {
    ratio : N.t;
    cycle : int list;  (** edge ids of a critical cycle, in order *)
  }

  val cycle_ratio : graph -> int list -> N.t
  (** Ratio of the cycle formed by the given edge ids.
      @raise Invalid_argument if the edges do not form a cycle or carry no
      token. *)

  val parametric : ?deadline:(unit -> bool) -> graph -> witness option
  (** [None] iff the graph is acyclic. @raise Not_live (see above).

      All solvers poll the optional [deadline] closure once per iteration
      (policy round, Bellman–Ford pass, Karp level); when it returns [true]
      they abandon the solve by raising [Rwt_util.Rwt_err.Error] with class
      [Timeout] and code ["mcr.deadline"], so a batch per-job budget can
      interrupt a long-running solve cooperatively. *)

  val howard : ?deadline:(unit -> bool) -> graph -> witness option
  (** Same contract as {!parametric}; result certified, falls back internally
      if policy iteration stalls. *)

  val lawler : epsilon:N.t -> ?deadline:(unit -> bool) -> graph -> witness option
  (** Lawler's parametric binary search. The returned ratio is the exact
      ratio of a genuine cycle, within [epsilon] of the optimum — a
      certified lower bound. Prefer {!howard} for exact answers; this solver
      exists for the ablation study and as the classical baseline. *)

  val max_cycle_ratio : ?deadline:(unit -> bool) -> graph -> witness option
  (** The default solver ({!howard}). *)

  val positive_cycle : ?deadline:(unit -> bool) -> graph -> N.t -> int list option
  (** [positive_cycle g λ] is a cycle (original edge ids, in order) of
      strictly positive reduced weight [Σ(w − λ·t) > 0], or [None] when no
      such cycle exists — i.e. λ is an upper bound on every cycle ratio.
      This is the certification primitive of the screened solver; it is
      exposed for tests and external certificate checking. If the internal
      predecessor walk is broken by an unstable numeric kernel the check
      degrades to [None] (and bumps the [mcr.pred_walk_degraded] counter)
      instead of fabricating a bogus cycle. *)

  val karp : ?deadline:(unit -> bool) -> N.t Rwt_graph.Digraph.t -> N.t option
  (** Maximum cycle mean [(Σ weight)/|C|]; [None] iff acyclic. Uses two
      rolling rows over a CSR edge list — Θ(n) memory per component rather
      than the textbook Θ(n²) table. *)
end

module Exact : module type of Make (Rwt_util.Rat)
module Approx : module type of Make (Rwt_util.Num_intf.Float_num)

val scc_parallel_threshold : int ref
(** Gate for solving strongly connected components on the shared domain
    pool ({!Rwt_pool}). A value [>= 0] is a fixed edge-count threshold:
    graphs with at least that many edges fan out, smaller ones stay
    serial; [max_int] forces serial solves, [0] forces the pool. The
    default [-1] decides adaptively from measured cost: a graph goes
    parallel when [edges * EWMA(per-edge solve seconds)] crosses
    {!scc_min_parallel_cost}. The EWMA bootstraps so the first solves
    match the historical fixed gate of 2048 edges, then measurements take
    over. The reduction over components is deterministic in every mode. *)

val scc_min_parallel_cost : float ref
(** Predicted serial solve cost (seconds) above which the adaptive gate
    (see {!scc_parallel_threshold}) fans components out on the pool;
    default [1e-3]. Roughly: spawn domains when the solve is predicted to
    dwarf the ~0.1 ms of spawn/join overhead by an order of magnitude. *)

val scc_parallel : n_comps:int -> edges:int -> bool
(** The gate itself: would a graph with [n_comps] components and [edges]
    edges solve its components on the pool right now? Exposed so sibling
    solvers ([Poly_overlap]) and benches share one decision. *)

val scc_cost_reset : unit -> unit
(** Reset the adaptive gate's cost EWMA to its bootstrap value, as if no
    solve had been measured. For benches and tests that need runs to be
    independent of solver history. *)

val screen_enabled : bool ref
(** When true (the default) {!solve_exact} routes through {!solve_screened};
    the [--no-screen] CLI flag and benchmarks flip this to force pure exact
    Howard. *)

val solve_screened :
  ?deadline:(unit -> bool) -> Exact.graph -> Exact.witness option
(** Float-screened exact solve. Per SCC: run float Howard on a mirrored
    context, then certify the candidate with one exact pass — re-cost the
    witness cycle with rational arithmetic and run a single exact
    positive-cycle check at that ratio ([None] proves optimality). On
    certification failure the component falls back to full exact Howard, so
    the result is always exactly {!Exact.howard}'s. Counts
    [mcr.screen_hits] / [mcr.screen_misses]. Same exceptions as
    {!Exact.howard}. *)

val solve_exact : ?deadline:(unit -> bool) -> Exact.graph -> Exact.witness option
(** The production exact solver: {!solve_screened} when {!screen_enabled},
    else {!Exact.howard}. Both paths return identical witnesses. *)

val graph_of_tpn : Tpn.t -> Exact.graph
(** Event graph → ratio graph: one edge per place, weighted by the firing
    time of its {e input} transition; edge ids coincide with place insertion
    order. *)

val graph_of_arcs :
  n:int ->
  src:int array ->
  dst:int array ->
  weight:Rwt_util.Rat.t array ->
  tokens:int array ->
  Exact.graph
(** Ratio graph from a flat arc table, in one exactly-sized pass: arc [i]
    becomes edge id [i] from [src.(i)] to [dst.(i)] with the given weight
    and token count. Used by the fused TPN-graph builder, which never
    materializes a {!Tpn.t}; a table listing the places of a net in
    insertion order yields a graph identical (edge for edge) to
    {!graph_of_tpn} on that net.
    @raise Invalid_argument on length mismatch or out-of-range endpoints. *)

val float_graph_of_tpn : Tpn.t -> Approx.graph

type session
(** An incremental solve session over one {!Exact.graph}. The session caches
    everything that depends only on the graph's topology — the liveness
    certificate, the SCC decomposition, the per-component CSR contexts — plus
    the last settled Howard policy of every component. *)

val session_init :
  ?deadline:(unit -> bool) -> Exact.graph -> session * Exact.witness option
(** Cold solve (same result as {!solve_exact}, honouring {!screen_enabled})
    that additionally captures the session state. The session keeps a
    reference to the graph: subsequent in-place relabellings
    ([Rwt_graph.Digraph.set_label]) are what {!session_resolve} picks up.
    @raise Exact.Not_live on token-free cycles. *)

val session_resolve :
  ?deadline:(unit -> bool) -> session -> Exact.witness option * int
(** Re-solve after edge weights changed in place. Precondition (the caller's
    to enforce): only labels' [weight] fields changed since {!session_init} —
    endpoints, edge count and token counts are untouched, so liveness and the
    SCC decomposition still hold. Each component refreshes its CSR weight
    column from the live labels; components whose weights are unchanged
    (compared exactly during the refresh) keep their cached witness without
    solving — identical weights over identical topology certify it is still
    the optimum — and dirty components re-run the (screened) solve
    warm-started from their previously settled policy. The warm start only
    moves the iteration's starting point, never its certified fixed point,
    so the witness is Rat-identical to a cold {!solve_exact} of the patched
    graph. Counts clean skips under [mcr.resolve_clean_comps]. Returns the
    witness and the number of policy rounds saved versus the session's
    initial cold solve (an accounting estimate, ≥ 0). *)

val period_of_tpn : ?deadline:(unit -> bool) -> Tpn.t -> Exact.witness option
(** Maximum cycle ratio of the net's ratio graph: the exact steady-state
    inter-firing time of every transition ([None] for acyclic nets, which
    impose no throughput bound). @raise Exact.Not_live on token-free cycles;
    [Rwt_util.Rwt_err.Error] (class [Timeout]) if [deadline] fires. *)
