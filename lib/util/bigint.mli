(** Arbitrary-precision signed integers.

    Sign-magnitude representation over base-[2^30] limbs. This module exists
    because the sealed build environment provides no [zarith]; it implements
    exactly the operations needed by the exact rational kernel ({!Rat}). All
    values are immutable. *)

type t

val zero : t
val one : t
val minus_one : t

val of_int : int -> t

val to_int_opt : t -> int option
(** [to_int_opt x] is [Some n] iff [x] fits in a native [int]. *)

val to_int_exn : t -> int
(** @raise Failure if the value does not fit in a native [int]. *)

val sign : t -> int
(** [-1], [0] or [1]. *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r], truncated division
    (sign of [r] = sign of [a], [|r| < |b|]).
    @raise Division_by_zero if [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val gcd : t -> t -> t
(** Non-negative greatest common divisor; [gcd 0 0 = 0]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val is_zero : t -> bool
val is_one : t -> bool

val min : t -> t -> t
val max : t -> t -> t

val mul_int : t -> int -> t
val add_int : t -> int -> t

val pow : t -> int -> t
(** [pow x k] for [k >= 0]. @raise Invalid_argument on negative exponent. *)

val to_float : t -> float

val to_string : t -> string
(** Decimal representation. *)

val of_string : string -> t
(** Parses an optionally-signed decimal literal.
    @raise Failure on malformed input. *)

val pp : Format.formatter -> t -> unit

val num_limbs : t -> int
(** Number of base-[2^30] limbs in the magnitude (0 for zero); exposed for
    diagnostics and complexity-oriented tests. *)
