(* Video transcoding workflow — the kind of streaming application the paper's
   introduction motivates (video/audio encoding, DSP chains).

   A 5-stage chain (demux → decode → filter → encode → mux) processes a
   stream of GOPs on a 10-machine heterogeneous platform. Decoding and
   encoding dominate, so we explore how replicating them changes the
   throughput — including the non-obvious effects: once stages are
   replicated, round-robin coupling can leave *every* resource partially
   idle, and adding replicas to the wrong stage buys nothing.

   Run with: dune exec examples/video_pipeline.exe *)

open Rwt_util
open Rwt_workflow

let pipeline =
  (* work in MFLOP per GOP, data in MB between stages *)
  Pipeline.of_ints ~work:[| 40; 2600; 900; 5200; 60 |] ~data:[| 8; 40; 40; 6 |]
  |> fun p -> Pipeline.rename p [| "demux"; "decode"; "filter"; "encode"; "mux" |]

(* Two fast servers (P8, P9), six mid-range nodes, two slow I/O boxes.
   Speeds in MFLOP per second; a switched gigabit-ish network where the two
   I/O boxes have slower uplinks. *)
let platform =
  Platform.star
    ~speeds:(Array.map Rat.of_int [| 200; 900; 900; 850; 850; 800; 800; 750; 2500; 2500 |])
    ~link_bw:(Array.map Rat.of_int [| 25; 120; 120; 120; 120; 120; 120; 120; 250; 250 |])

let mapping_of assignment = Mapping.create_exn ~n_stages:5 ~p:10 assignment

let candidates =
  [ ( "no replication (fast nodes on heavy stages)",
      [| [| 0 |]; [| 8 |]; [| 1 |]; [| 9 |]; [| 7 |] |] );
    ( "replicate encode x3",
      [| [| 0 |]; [| 8 |]; [| 1 |]; [| 9; 2; 3 |]; [| 7 |] |] );
    ( "replicate decode x2 and encode x3",
      [| [| 0 |]; [| 8; 4 |]; [| 1 |]; [| 9; 2; 3 |]; [| 7 |] |] );
    ( "replicate decode x2, filter x2, encode x4",
      [| [| 0 |]; [| 8; 4 |]; [| 1; 5 |]; [| 9; 2; 3; 6 |]; [| 7 |] |] );
    ( "replicate everything replicable",
      [| [| 0 |]; [| 8; 4; 5 |]; [| 1 |]; [| 9; 2; 3; 6 |]; [| 7 |] |] ) ]

let () =
  Format.printf "Video transcoding workflow: %d stages on %d machines@.@."
    (Pipeline.n_stages pipeline) (Platform.p platform);
  Format.printf "%-46s %12s %12s %10s %s@." "mapping" "P (overlap)" "P (strict)"
    "m (paths)" "critical?";
  List.iter
    (fun (label, assignment) ->
      let mapping = mapping_of assignment in
      let inst = Instance.create_exn ~name:label ~pipeline ~platform ~mapping in
      let overlap = Rwt_core.Analysis.analyze_exn Comm_model.Overlap inst in
      let strict = Rwt_core.Analysis.analyze_exn Comm_model.Strict inst in
      Format.printf "%-46s %12s %12s %10d %s@." label
        (Format.asprintf "%a" Rat.pp_approx overlap.Rwt_core.Analysis.period)
        (Format.asprintf "%a" Rat.pp_approx strict.Rwt_core.Analysis.period)
        (Mapping.num_paths mapping)
        (if overlap.Rwt_core.Analysis.has_critical_resource then
           Format.asprintf "yes: %s-%s"
             (Platform.proc_name overlap.Rwt_core.Analysis.bottleneck.Cycle_time.proc)
             overlap.Rwt_core.Analysis.bottleneck.Cycle_time.bottleneck
         else "no critical resource"))
    candidates;
  (* Zoom on the best mapping: who is the bottleneck now? *)
  let label, best = List.nth candidates 3 in
  let inst =
    Instance.create_exn ~name:label ~pipeline ~platform ~mapping:(mapping_of best)
  in
  Format.printf "@.resource cycle-times for %S (overlap):@.%a@." label
    (Cycle_time.pp_table Comm_model.Overlap) inst;
  let sched = Rwt_sim.Schedule.run Comm_model.Overlap inst ~datasets:24 in
  Format.printf "@.steady-state schedule (one period):@.";
  print_string (Rwt_sim.Gantt.to_ascii ~width:100 ~from_dataset:8 ~until_dataset:11 sched);

  (* Can the heuristic optimizer beat our hand-crafted mappings? *)
  let search =
    Rwt_core.Optimize.local_search_exn ~iterations:300 Comm_model.Overlap pipeline platform
  in
  Format.printf "@.heuristic mapping search (overlap):@.%a@." Rwt_core.Optimize.pp search;
  let latency =
    Rwt_core.Latency.analyze Comm_model.Overlap
      (Instance.create_exn ~name:"optimized" ~pipeline ~platform
         ~mapping:search.Rwt_core.Optimize.mapping)
  in
  Format.printf "@.throughput is not free: %a@." Rwt_core.Latency.pp latency
