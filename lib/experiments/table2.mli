(** Reproduction of the paper's Table 2: for each configuration class and
    each communication model, count the experiments whose period strictly
    exceeds every resource cycle-time (no critical resource), and the
    largest relative gap among them.

    The period is exact: Theorem 1 for OVERLAP; for STRICT, the full-TPN
    critical cycle when [m = lcm(m_i)] is tractable, otherwise the
    simulator's certified periodic regime. Instances whose [m] exceeds even
    the simulation cap are counted in [skipped] (the paper hit the same wall:
    its runs took up to 150 000 s). *)

open Rwt_util
open Rwt_workflow

type row_config = {
  label : string;  (** e.g. "(10,20) and (10,30)" *)
  sizes : (int * int) list;  (** (stages, processors), cycled through *)
  comp : int * int;
  comm : int * int;
  count : int;  (** experiments in this row *)
}

val paper_rows : scale:float -> row_config list
(** The six configuration rows of Table 2, with [count] scaled by [scale]
    (1.0 = the paper's 2 × 2 576 experiments). *)

type row_result = {
  config : row_config;
  model : Comm_model.t;
  total : int;
  without_critical : int;
  max_gap : Rat.t;  (** largest [(P − Mct)/Mct] over the row *)
  skipped : int;  (** instances beyond the tractability caps *)
  estimated : int;  (** instances measured by simulation rather than TPN *)
}

val run_row :
  ?seed:int -> ?m_exact_cap:int -> ?m_sim_cap:int ->
  ?progress:(int -> unit) -> Comm_model.t -> row_config -> row_result
(** Defaults: [seed 2009], [m_exact_cap 3000] (largest TPN solved exactly),
    [m_sim_cap 30000]. *)

val run_all :
  ?seed:int -> ?m_exact_cap:int -> ?m_sim_cap:int ->
  ?progress:(string -> int -> unit) -> scale:float -> unit -> row_result list
(** All rows × both models (OVERLAP rows first, as in the paper). *)

val pp_results : Format.formatter -> row_result list -> unit
(** Renders the table in the paper's layout. *)
