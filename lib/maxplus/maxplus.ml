module Make (N : Rwt_util.Num_intf.S) = struct
  type scalar = Neg_inf | Fin of N.t

  let zero = Neg_inf
  let unit = Fin N.zero
  let fin x = Fin x

  let oplus a b =
    match (a, b) with
    | Neg_inf, x | x, Neg_inf -> x
    | Fin x, Fin y -> Fin (N.max x y)

  let otimes a b =
    match (a, b) with
    | Neg_inf, _ | _, Neg_inf -> Neg_inf
    | Fin x, Fin y -> Fin (N.add x y)

  let compare a b =
    match (a, b) with
    | Neg_inf, Neg_inf -> 0
    | Neg_inf, _ -> -1
    | _, Neg_inf -> 1
    | Fin x, Fin y -> N.compare x y

  let equal a b = compare a b = 0

  let pp fmt = function
    | Neg_inf -> Format.pp_print_string fmt "ε"
    | Fin x -> N.pp fmt x

  type mat = { r : int; c : int; data : scalar array }

  let make r c v =
    if r < 0 || c < 0 then invalid_arg "Maxplus.make";
    { r; c; data = Array.make (r * c) v }

  let init r c f =
    let m = make r c Neg_inf in
    for i = 0 to r - 1 do
      for j = 0 to c - 1 do
        m.data.((i * c) + j) <- f i j
      done
    done;
    m

  let rows m = m.r
  let cols m = m.c
  let get m i j = m.data.((i * m.c) + j)
  let set m i j v = m.data.((i * m.c) + j) <- v

  let identity n = init n n (fun i j -> if i = j then unit else Neg_inf)

  let mul a b =
    if a.c <> b.r then invalid_arg "Maxplus.mul: dimension mismatch";
    init a.r b.c (fun i j ->
        let acc = ref Neg_inf in
        for k = 0 to a.c - 1 do
          acc := oplus !acc (otimes (get a i k) (get b k j))
        done;
        !acc)

  let add a b =
    if a.r <> b.r || a.c <> b.c then invalid_arg "Maxplus.add: dimension mismatch";
    init a.r a.c (fun i j -> oplus (get a i j) (get b i j))

  let pow a k =
    if k < 0 then invalid_arg "Maxplus.pow";
    if a.r <> a.c then invalid_arg "Maxplus.pow: non-square";
    let rec go acc base k =
      if k = 0 then acc
      else go (if k land 1 = 1 then mul acc base else acc) (mul base base) (k lsr 1)
    in
    go (identity a.r) a k

  let mul_vec a x =
    if a.c <> Array.length x then invalid_arg "Maxplus.mul_vec";
    Array.init a.r (fun i ->
        let acc = ref Neg_inf in
        for k = 0 to a.c - 1 do
          acc := oplus !acc (otimes (get a i k) x.(k))
        done;
        !acc)

  (* A* by Floyd–Warshall-style closure; diverges iff a positive cycle
     exists, detected on the diagonal. *)
  let star ?deadline a =
    if a.r <> a.c then invalid_arg "Maxplus.star: non-square";
    let n = a.r in
    let m = init n n (fun i j -> if i = j then oplus unit (get a i j) else get a i j) in
    let ok = ref true in
    for k = 0 to n - 1 do
      (match deadline with
       | Some d when d () ->
         Rwt_util.Rwt_err.raise_
           (Rwt_util.Rwt_err.timeout ~code:"mcr.deadline"
              "solver deadline exceeded (cooperative checkpoint)")
       | _ -> ());
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          set m i j (oplus (get m i j) (otimes (get m i k) (get m k j)))
        done
      done
    done;
    for i = 0 to n - 1 do
      if compare (get m i i) unit > 0 then ok := false
    done;
    if !ok then Some m else None

  let of_graph g =
    let n = Rwt_graph.Digraph.num_nodes g in
    let m = make n n Neg_inf in
    Rwt_graph.Digraph.iter_edges
      (fun e ->
        let i = e.Rwt_graph.Digraph.dst and j = e.Rwt_graph.Digraph.src in
        set m i j (oplus (get m i j) (Fin e.Rwt_graph.Digraph.label)))
      g;
    m

  let eigen_iteration a x0 k =
    let orbit = Array.make (k + 1) x0 in
    for i = 1 to k do
      orbit.(i) <- mul_vec a orbit.(i - 1)
    done;
    orbit

  let pp_mat fmt m =
    Format.fprintf fmt "@[<v>";
    for i = 0 to m.r - 1 do
      Format.fprintf fmt "[";
      for j = 0 to m.c - 1 do
        if j > 0 then Format.fprintf fmt " ";
        pp fmt (get m i j)
      done;
      Format.fprintf fmt "]";
      if i < m.r - 1 then Format.fprintf fmt "@,"
    done;
    Format.fprintf fmt "@]"
end
