(* Tests for the extensions beyond the paper's core results: latency under
   periodic admission, heuristic mapping optimization, stochastic (dynamic)
   platforms, and the novel minimal no-critical-resource instance found by
   this repository's campaign. *)

open Rwt_util
open Rwt_workflow

let qtest = QCheck_alcotest.to_alcotest
let rat = Alcotest.testable Rat.pp Rat.equal

(* --- release dates in the simulator --- *)

let release_dates_respected =
  QCheck.Test.make ~count:60 ~name:"released data sets never start early"
    QCheck.small_nat (fun seed ->
      let r = Prng.create (seed + 5) in
      let n = Prng.int_in r 1 3 in
      let inst =
        Rwt_experiments.Generator.generate r
          { Rwt_experiments.Generator.n_stages = n; p = n + Prng.int r 4;
            comp = (1, 10); comm = (1, 10) }
      in
      let gap = Rat.of_ints (Prng.int_in r 1 40) 2 in
      let release d = Rat.mul_int gap d in
      List.for_all
        (fun model ->
          let sched = Rwt_sim.Schedule.run ~release model inst ~datasets:30 in
          let ok = ref true in
          for d = 0 to 29 do
            let ev = Rwt_sim.Schedule.compute_event sched ~dataset:d ~stage:0 in
            if Rat.compare ev.Rwt_sim.Schedule.start (release d) < 0 then ok := false
          done;
          !ok)
        Comm_model.all)

let slow_release_dictates_pace () =
  (* if data sets are released slower than the system period, the system
     keeps up: completions are release + constant *)
  let inst = Instances.example_a () in
  let slow = Rat.of_int 400 (* > strict period 230.67 *) in
  let release d = Rat.mul_int slow d in
  let sched = Rwt_sim.Schedule.run ~release Comm_model.Strict inst ~datasets:40 in
  let lat d = Rat.sub (Rwt_sim.Schedule.completion sched d) (release d) in
  (* steady: latency becomes periodic with period m *)
  Alcotest.check rat "latency periodic" (lat 20) (lat 26);
  Alcotest.check rat "latency periodic 2" (lat 21) (lat 27)

(* --- latency --- *)

let latency_example_a () =
  let a = Instances.example_a () in
  List.iter
    (fun model ->
      let l = Rwt_core.Latency.analyze model a in
      Alcotest.(check int) "6 residues" 6 (Array.length l.Rwt_core.Latency.per_residue);
      Alcotest.(check bool) "worst >= mean" true
        (Rat.compare l.Rwt_core.Latency.worst l.Rwt_core.Latency.mean >= 0);
      Alcotest.(check bool) "mean >= best" true
        (Rat.compare l.Rwt_core.Latency.mean l.Rwt_core.Latency.best >= 0);
      (* latency is at least the raw pipeline traversal time of some path *)
      let min_path =
        Instance.transfer_time a ~file:0 ~src:0 ~dst:1 (* cheapest leg 186 *)
      in
      Alcotest.(check bool) "latency exceeds one transfer" true
        (Rat.compare l.Rwt_core.Latency.best min_path > 0))
    Comm_model.all

let latency_margin_monotone () =
  let a = Instances.example_a () in
  let tight = Rwt_core.Latency.analyze Comm_model.Overlap a in
  let relaxed =
    Rwt_core.Latency.analyze ~margin:(Rat.of_ints 1 2) Comm_model.Overlap a
  in
  Alcotest.(check bool) "slack reduces worst latency" true
    (Rat.compare relaxed.Rwt_core.Latency.worst tight.Rwt_core.Latency.worst <= 0)

(* --- optimizer --- *)

let optimizer_valid_and_no_worse =
  QCheck.Test.make ~count:25 ~name:"local search beats or matches greedy, valid mapping"
    QCheck.small_nat (fun seed ->
      let r = Prng.create (seed + 17) in
      let n = Prng.int_in r 2 4 in
      let p = n + Prng.int_in r 1 5 in
      let pipeline =
        Pipeline.create
          ~work:(Array.init n (fun _ -> Rat.of_int (Prng.int_in r 1 40)))
          ~data:(Array.init (n - 1) (fun _ -> Rat.of_int (Prng.int_in r 1 20)))
      in
      let platform =
        Platform.random r ~p ~speed_range:(1, 10) ~bandwidth_range:(1, 10)
      in
      let greedy = Rwt_core.Optimize.greedy_exn Comm_model.Overlap pipeline platform in
      let ls =
        Rwt_core.Optimize.local_search_exn ~seed ~iterations:120 Comm_model.Overlap pipeline
          platform
      in
      Rat.compare ls.Rwt_core.Optimize.period greedy.Rwt_core.Optimize.period <= 0
      && Mapping.n_stages ls.Rwt_core.Optimize.mapping = n
      &&
      (* the reported period is truthful *)
      let inst =
        Instance.create_exn ~name:"check" ~pipeline ~platform
          ~mapping:ls.Rwt_core.Optimize.mapping
      in
      Rat.equal (Rwt_core.Poly_overlap.period inst) ls.Rwt_core.Optimize.period)

let optimizer_finds_replication () =
  (* heavy middle stage, plenty of identical processors: replication must
     win over any one-per-stage mapping *)
  let pipeline = Pipeline.of_ints ~work:[| 1; 60; 1 |] ~data:[| 1; 1 |] in
  let platform = Platform.uniform ~p:8 ~speed:(Rat.of_int 1) ~bandwidth:(Rat.of_int 10) in
  let greedy = Rwt_core.Optimize.greedy_exn Comm_model.Overlap pipeline platform in
  let ls =
    Rwt_core.Optimize.local_search_exn ~seed:3 ~iterations:400 Comm_model.Overlap pipeline
      platform
  in
  Alcotest.(check bool) "replication found" true
    (Mapping.is_replicated ls.Rwt_core.Optimize.mapping);
  Alcotest.(check bool) "strictly better than greedy" true
    (Rat.compare ls.Rwt_core.Optimize.period greedy.Rwt_core.Optimize.period < 0)

let optimizer_strict_model () =
  (* the strict evaluator goes through the full TPN; keep it tiny *)
  let pipeline = Pipeline.of_ints ~work:[| 2; 20 |] ~data:[| 1 |] in
  let platform = Platform.uniform ~p:4 ~speed:Rat.one ~bandwidth:(Rat.of_int 4) in
  let ls =
    Rwt_core.Optimize.local_search_exn ~seed:5 ~iterations:80 Comm_model.Strict pipeline
      platform
  in
  let inst =
    Instance.create_exn ~name:"check" ~pipeline ~platform
      ~mapping:ls.Rwt_core.Optimize.mapping
  in
  Alcotest.check rat "reported strict period is truthful"
    (Rwt_core.Exact.period_exn Comm_model.Strict inst).Rwt_core.Exact.period
    ls.Rwt_core.Optimize.period

let optimizer_deterministic () =
  let pipeline = Pipeline.of_ints ~work:[| 4; 9 |] ~data:[| 3 |] in
  let platform = Platform.uniform ~p:5 ~speed:Rat.one ~bandwidth:Rat.one in
  let a = Rwt_core.Optimize.local_search_exn ~seed:7 Comm_model.Overlap pipeline platform in
  let b = Rwt_core.Optimize.local_search_exn ~seed:7 Comm_model.Overlap pipeline platform in
  Alcotest.check rat "same period" a.Rwt_core.Optimize.period b.Rwt_core.Optimize.period

(* --- stochastic platforms --- *)

let stochastic_stats_ordered =
  QCheck.Test.make ~count:15 ~name:"stochastic stats are ordered and bracket nominal"
    QCheck.small_nat (fun seed ->
      let inst = Instances.example_a () in
      let s =
        Rwt_experiments.Stochastic.run ~seed ~samples:40 Comm_model.Overlap inst
      in
      let open Rwt_experiments.Stochastic in
      Rat.compare s.min s.median <= 0
      && Rat.compare s.median s.q90 <= 0
      && Rat.compare s.q90 s.max <= 0
      && Rat.compare s.min s.mean <= 0
      && Rat.compare s.mean s.max <= 0
      && Rat.compare s.min s.nominal <= 0
      && Rat.compare s.nominal s.max <= 0)

let stochastic_zero_epsilon () =
  let inst = Instances.example_b () in
  let s =
    Rwt_experiments.Stochastic.run ~samples:10 ~epsilon:Rat.zero Comm_model.Overlap inst
  in
  let open Rwt_experiments.Stochastic in
  Alcotest.check rat "min = nominal" s.nominal s.min;
  Alcotest.check rat "max = nominal" s.nominal s.max;
  (* example B has no critical resource; neither do its unperturbed copies *)
  Alcotest.(check int) "all samples no-critical" 10 s.no_critical

let stochastic_rejects_bad_epsilon () =
  let inst = Instances.example_a () in
  Alcotest.check_raises "epsilon >= 1"
    (Invalid_argument "Stochastic.sample_platform: need 0 <= epsilon < 1") (fun () ->
      ignore
        (Rwt_experiments.Stochastic.run ~samples:1 ~epsilon:Rat.one Comm_model.Overlap inst))

let stochastic_deterministic () =
  let inst = Instances.example_a () in
  let s1 = Rwt_experiments.Stochastic.run ~seed:4 ~samples:25 Comm_model.Overlap inst in
  let s2 = Rwt_experiments.Stochastic.run ~seed:4 ~samples:25 Comm_model.Overlap inst in
  Alcotest.check rat "same mean" s1.Rwt_experiments.Stochastic.mean
    s2.Rwt_experiments.Stochastic.mean

(* --- sensitivity --- *)

let sensitivity_example_b () =
  let s = Rwt_core.Sensitivity.analyze Comm_model.Overlap (Instances.example_b ()) in
  Alcotest.check rat "baseline" (Rat.of_ints 3500 12) s.Rwt_core.Sensitivity.baseline;
  (* the seven expensive links are exactly the improving upgrades *)
  let improving, useless =
    List.partition
      (fun e -> Rat.sign e.Rwt_core.Sensitivity.improvement > 0)
      s.Rwt_core.Sensitivity.effects
  in
  Alcotest.(check int) "seven improving upgrades" 7 (List.length improving);
  List.iter
    (fun e ->
      match e.Rwt_core.Sensitivity.target with
      | Rwt_core.Sensitivity.Link _ -> ()
      | Rwt_core.Sensitivity.Processor u ->
        Alcotest.failf "processor P%d should not improve the period" u)
    improving;
  (* P2's compute upgrade is useless even though P2-out has the max Cexec *)
  Alcotest.(check bool) "some processor among the useless" true
    (List.exists
       (fun e -> e.Rwt_core.Sensitivity.target = Rwt_core.Sensitivity.Processor 2)
       useless)

let sensitivity_never_hurts =
  QCheck.Test.make ~count:40 ~name:"upgrades never increase the period"
    QCheck.small_nat (fun seed ->
      let r = Prng.create (seed + 3131) in
      let n = Prng.int_in r 1 3 in
      let inst =
        Rwt_experiments.Generator.generate r
          { Rwt_experiments.Generator.n_stages = n; p = n + Prng.int r 4;
            comp = (1, 10); comm = (1, 10) }
      in
      List.for_all
        (fun model ->
          let s = Rwt_core.Sensitivity.analyze model inst in
          List.for_all
            (fun e -> Rat.sign e.Rwt_core.Sensitivity.improvement >= 0)
            s.Rwt_core.Sensitivity.effects)
        Comm_model.all)

let sensitivity_rejects_bad_factor () =
  Alcotest.check_raises "factor 1"
    (Invalid_argument "Sensitivity.analyze: factor must exceed 1") (fun () ->
      ignore
        (Rwt_core.Sensitivity.analyze ~factor:Rat.one Comm_model.Overlap
           (Instances.example_a ())))

(* --- the minimal no-critical-resource overlap instance --- *)

let minimal_instance_checks () =
  let inst = Instances.minimal_no_critical_overlap () in
  let period = Rwt_core.Poly_overlap.period inst in
  let mct = Cycle_time.mct Comm_model.Overlap inst in
  Alcotest.check rat "period 34/3" (Rat.of_ints 34 3) period;
  Alcotest.check rat "mct 67/6" (Rat.of_ints 67 6) mct;
  Alcotest.(check bool) "no critical resource" true (Rat.compare period mct > 0);
  (* verified three independent ways *)
  Alcotest.check rat "full TPN agrees" period
    (Rwt_core.Exact.period_exn Comm_model.Overlap inst).Rwt_core.Exact.period;
  Alcotest.check rat "simulator agrees" period
    (Rwt_sim.Schedule.measured_period Comm_model.Overlap inst)

let () =
  Alcotest.run "rwt_extensions"
    [ ( "release dates",
        [ qtest release_dates_respected;
          Alcotest.test_case "slow release" `Quick slow_release_dictates_pace ] );
      ( "latency",
        [ Alcotest.test_case "example A" `Quick latency_example_a;
          Alcotest.test_case "margin monotone" `Quick latency_margin_monotone ] );
      ( "optimizer",
        [ qtest optimizer_valid_and_no_worse;
          Alcotest.test_case "finds replication" `Quick optimizer_finds_replication;
          Alcotest.test_case "strict model" `Quick optimizer_strict_model;
          Alcotest.test_case "deterministic" `Quick optimizer_deterministic ] );
      ( "stochastic",
        [ qtest stochastic_stats_ordered;
          Alcotest.test_case "epsilon 0" `Quick stochastic_zero_epsilon;
          Alcotest.test_case "bad epsilon" `Quick stochastic_rejects_bad_epsilon;
          Alcotest.test_case "deterministic" `Quick stochastic_deterministic ] );
      ( "sensitivity",
        [ Alcotest.test_case "example B" `Quick sensitivity_example_b;
          qtest sensitivity_never_hurts;
          Alcotest.test_case "bad factor" `Quick sensitivity_rejects_bad_factor ] );
      ( "minimal no-critical instance",
        [ Alcotest.test_case "verified three ways" `Quick minimal_instance_checks ] ) ]
