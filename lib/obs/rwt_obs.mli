(** Observability substrate: metrics, domain-aware span tracing, solver
    convergence telemetry and profiling/regression tooling.

    A single process-wide registry of named {e counters} (monotonic ints),
    {e gauges} (last/max floats), and {e histograms} (log-scale buckets with
    percentile summaries), plus a stack of {e spans} — named timed sections
    whose durations feed [span.<name>] histograms and, optionally, a Chrome
    [trace-event] log loadable in [chrome://tracing] or Perfetto — and a
    bounded ring of {e structured events} (solver convergence telemetry,
    exported as NDJSON).

    Everything is disabled by default. Every recording entry point starts
    with a single [if enabled] branch and returns immediately without
    allocating when disabled, so instrumented library code costs nothing in
    ordinary runs (tier-1 results are bit-identical either way).

    Timing uses [CLOCK_MONOTONIC] (via a local C stub; wall-clock fallback
    where unavailable), so wall-clock steps never skew span durations; the
    clock stays test-injectable through {!set_clock}. Export goes through
    {!Rwt_util.Json}.

    {b Domain safety.} The registry is shared across domains ([Rwt_batch]
    workers record concurrently): counters and gauges are atomic cells
    (increments are lock-free once a name exists), histogram updates, trace
    events and the event ring are serialized behind one mutex, and the span
    stack is domain-local, so span nesting in one worker never interleaves
    with another's. Trace and counter-sample events are tagged with the
    recording domain's id and exported as one Chrome [tid] lane per domain.
    [reset] clears the shared registry but only the {e calling} domain's
    span stack. [enable]/[disable]/[set_clock] are meant to be called from
    the orchestrating domain before workers start. *)

(** {1 Lifecycle} *)

val enabled : unit -> bool

val enable : ?trace:bool -> ?events:bool -> unit -> unit
(** Start recording. [trace] additionally collects per-span trace events
    and counter samples (timestamps relative to this call) for
    {!trace_json}; [events] turns on the structured-event ring for
    {!event}. Idempotent; enabling does not clear previously recorded
    data. *)

val tracing_enabled : unit -> bool
val events_enabled : unit -> bool

val disable : unit -> unit
(** Stop recording (metrics, tracing and events). Recorded data is kept
    (export still works). *)

val reset : unit -> unit
(** Drop all metrics, trace events, structured events and open spans; keep
    the enabled flags. *)

val set_clock : (unit -> float) -> unit
(** Replace the time source (seconds, monotonic non-decreasing). Default is
    [CLOCK_MONOTONIC] (wall clock where unavailable). Used by the tests for
    deterministic span durations. *)

val now : unit -> float
(** The current reading of the active clock (the {!set_clock} one if
    installed). Instrumentation sites use this so injected test clocks
    govern every derived duration. *)

(** {1 Recording} *)

val incr : string -> unit
(** Add 1 to a counter, creating it at 0 first if needed. *)

val add : string -> int -> unit
(** Add [n >= 0] to a counter. Negative increments are clipped to 0 so
    counters stay monotonic. *)

val gauge : string -> float -> unit
(** Set a gauge to the given value (last write wins). *)

val gauge_max : string -> float -> unit
(** Set a gauge to the max of its current value and the given one. *)

val sample : string -> float -> unit
(** {!gauge}, and additionally — when tracing — append a Chrome
    counter-sample event ([ph = "C"]) on the calling domain's lane, so the
    gauge renders as a time series (queue depth, jobs in flight) in trace
    viewers. *)

val observe : string -> float -> unit
(** Record a sample into a histogram (log₂-scale buckets over [1e-9, ∞);
    exact count/sum/min/max are kept alongside). *)

val event : ?fields:(string * Rwt_util.Json.t) list -> string -> unit
(** Append a structured record to the bounded event ring (no-op unless
    enabled with [~events:true]). Each record carries a timestamp, the
    recording domain's id, the event name and the given fields; the
    rendered NDJSON object is [{"ts":…,"dom":…,"ev":name, fields…}], so
    field keys should avoid [ts]/[dom]/[ev]. When the ring is full the
    oldest record is overwritten ({!event_stats} reports the drop count). *)

val set_event_capacity : int -> unit
(** Resize the event ring (default 8192 records), discarding its current
    contents. Clamped to at least 1. *)

(** {1 Spans} *)

val span_begin : ?args:(string * Rwt_util.Json.t) list -> string -> unit
(** Open a span. Spans nest: the innermost open span is the top of the
    span stack. No-op when disabled. [args] travel into the trace event. *)

val span_end : unit -> unit
(** Close the innermost span: its duration is recorded into the
    [span.<name>] histogram and, when tracing, appended to the trace-event
    log on the calling domain's lane. A stray [span_end] with no open span
    increments [obs.span_underflow] instead of raising. *)

val with_span :
  ?args:(string * Rwt_util.Json.t) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span, closing it on exceptions
    too. When disabled this is exactly [f ()]. *)

val span_depth : unit -> int
(** Number of currently open spans. *)

val set_span_hook : (string -> unit) option -> unit
(** Install (or clear) a callback fired with the span name at the entry of
    every span site — {e before} the span is pushed, and whether or not
    metrics are enabled. This is how {!Rwt_fault} piggybacks its
    fault-injection points on the existing instrumentation: the hook may
    raise (the span is not yet open, so nesting stays balanced) or sleep.
    At most one hook is installed process-wide; [None] uninstalls. *)

(** {1 Reading back} *)

val counter_value : string -> int
(** Current value, 0 for a counter never written. *)

val gauge_value : string -> float option

type histogram_summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val histogram_summary : string -> histogram_summary option
(** Percentiles are bucket upper bounds (log₂ buckets: at most a factor-2
    overestimate), clipped to the exact observed [min]/[max]. *)

val percentile : string -> float -> float option
(** [percentile name q] with [q] in [0, 1]. *)

val metric_names : unit -> string list
(** Sorted names of every counter, gauge and histogram recorded so far. *)

type event_stats = {
  recorded : int;  (** events ever pushed, kept or not *)
  kept : int;  (** events currently retained in the ring *)
  dropped : int;  (** [recorded - kept]: overwritten by newer events *)
  capacity : int;
  by_name : (string * int) list;
      (** per-name counts over the retained window, most frequent first *)
}

val event_stats : unit -> event_stats

val event_count : unit -> int
(** Total structured events recorded so far (including overwritten ones). *)

(** {1 Export} *)

val metrics_json : unit -> Rwt_util.Json.t
(** Structured dump:
    [{ "schema": "rwt.metrics/1", "counters": {..}, "gauges": {..},
       "histograms": { name: {count,sum,min,max,mean,p50,p90,p99} } }]
    with keys sorted for deterministic output. *)

val trace_json : unit -> Rwt_util.Json.t
(** Chrome trace-event JSON ([{"traceEvents": [...]}]), loadable by
    [chrome://tracing] and Perfetto. Spans are complete events
    ([ph = "X"]), {!sample} calls are counter events ([ph = "C"]), and
    every event carries the recording domain's id as its [tid], so each
    domain renders as its own lane; a [thread_name] metadata record labels
    every lane ("main" for the domain that loaded the library). Timestamps
    are microseconds. Empty unless enabled with [~trace:true]. *)

val events_json : unit -> Rwt_util.Json.t list
(** The retained structured events, oldest first, one object per event. *)

val events_ndjson : unit -> string
(** {!events_json} rendered as newline-delimited JSON (one compact object
    per line, each line [\n]-terminated). *)

val prometheus : unit -> string
(** The registry in Prometheus text exposition format: counters as
    [rwt_<name>_total], gauges as [rwt_<name>], histograms as summaries
    ([quantile="0.5"|"0.9"|"0.99"], [_sum], [_count]). Metric names are
    mangled to [[A-Za-z0-9_]] with an [rwt_] prefix; every family carries
    [# HELP]/[# TYPE] headers naming the original metric. This is the
    [metrics] response body for [rwt serve]. *)

val prometheus_content_type : string
(** ["text/plain; version=0.0.4; charset=utf-8"] — the content type a
    transport should advertise when exposing {!prometheus} output (the
    serve protocol echoes it in the [metrics] response). *)

val prometheus_of_json : Rwt_util.Json.t -> (string, string) result
(** Render a parsed [rwt.metrics/1] dump (or any object wrapping one under
    a ["metrics"] key, e.g. [rwt.bench-obs/1]) in the same format as
    {!prometheus}. Applying it to [metrics_json ()] yields exactly
    [prometheus ()]. *)

(** {1 Metric diffing} *)

val flatten_numeric : Rwt_util.Json.t -> (string * float) list
(** Every numeric leaf of a JSON document as a sorted
    [dotted.path -> value] list (list elements use their index as the path
    component, e.g. [rows.0.t_exact_s]). Non-numeric leaves are skipped. *)

val glob_match : string -> string -> bool
(** [glob_match pat s]: ['*'] matches any (possibly empty) substring; every
    other character matches itself. *)

type diff_status = Regression | Improvement | Unchanged

type diff_entry = {
  key : string;
  v_old : float;
  v_new : float;
  rel : float;  (** signed relative change, [(new - old) / |old|] *)
  status : diff_status;
}

type diff_report = {
  entries : diff_entry list;  (** keys present on both sides, sorted *)
  only_old : string list;
  only_new : string list;
  regressions : int;
  improvements : int;
}

val diff_metrics :
  ?threshold:float ->
  ?min_delta:float ->
  ?higher_better:(string -> bool) ->
  old_json:Rwt_util.Json.t ->
  new_json:Rwt_util.Json.t ->
  unit ->
  diff_report
(** Compare every numeric leaf present in both documents. A change is a
    {!Regression} when it exceeds [threshold] (relative, default 0.10) in
    the bad direction — higher for ordinary keys (times, counts), lower
    for keys the [higher_better] predicate claims (throughputs, speedups);
    the opposite direction beyond the threshold is an {!Improvement}.
    Absolute changes below [min_delta] (default 0) are {!Unchanged}
    regardless, which keeps noise on near-zero timings out of the
    report. *)

(** {1 Profiling report} *)

type span_row = {
  span : string;  (** span name, without the [span.] prefix *)
  calls : int;
  total_s : float;
  mean_s : float;
  p90_s : float;
  max_s : float;
}

type span_sort = By_total | By_mean | By_p90 | By_calls

val span_table : ?sort:span_sort -> ?top:int -> unit -> span_row list
(** One row per span histogram, sorted by the requested column
    (default: decreasing total time), truncated to [top] rows if given. *)

val pp_span_table : ?sort:span_sort -> ?top:int -> Format.formatter -> unit -> unit
(** Aligned per-phase cost table (the output of [rwt profile]); notes the
    truncation when [top] hides rows. *)
