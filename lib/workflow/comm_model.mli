(** The two one-port communication models of the paper (§2). *)

type t =
  | Overlap
      (** OVERLAP ONE-PORT: a processor may simultaneously receive one file,
          compute, and send one file (in-port, CPU and out-port are three
          independent serial units). *)
  | Strict
      (** STRICT ONE-PORT: a processor performs at most one of
          receive / compute / send at a time. *)

val all : t list
val to_string : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
