(** Random instance generation following the paper's experimental setup
    (§5, Table 2): [n] stages on [p] processors, every processor used, the
    replication counts drawn as a random composition of [p] into [n]
    positive parts, compute and transfer times drawn uniformly from integer
    ranges. *)

open Rwt_util
open Rwt_workflow

type config = {
  n_stages : int;
  p : int;
  comp : int * int;  (** inclusive range of per-processor compute times *)
  comm : int * int;  (** inclusive range of per-link transfer times *)
}

val generate : Prng.t -> config -> Instance.t
(** Deterministic in the generator state. Work and data sizes are 1; speeds
    and bandwidths are reciprocals of the drawn times, so compute/transfer
    times are exactly the drawn integers. *)

val random_composition : Prng.t -> total:int -> parts:int -> int array
(** Uniform composition of [total] into [parts] positive integers
    (stars-and-bars sampling without replacement).
    @raise Invalid_argument if [total < parts] or [parts <= 0]. *)
