(** The target platform: [p] heterogeneous processors, processor [P_u] of
    speed [Π_u] (FLOP per time unit), and a bidirectional logical link
    between every ordered pair with bandwidth [b_{u,v}] (bytes per time
    unit) — §2 of the paper. Links may be logical (e.g. realized through a
    central switch). *)

open Rwt_util

type t

val create : speeds:Rat.t array -> bandwidths:Rat.t array array -> t
(** [bandwidths] must be a [p × p] matrix; speeds and off-diagonal
    bandwidths must be positive. @raise Invalid_argument otherwise. *)

val uniform : p:int -> speed:Rat.t -> bandwidth:Rat.t -> t
(** Homogeneous platform. *)

val star : speeds:Rat.t array -> link_bw:Rat.t array -> t
(** Star-shaped physical platform: every processor is connected to a central
    switch by a link of bandwidth [link_bw.(u)]; the logical bandwidth
    between [u] and [v] is [min (link_bw u) (link_bw v)]. Stored as the
    [p] link bandwidths, not the implied dense matrix, so star platforms
    stay O(p) — large replicated mappings need one processor per stage
    instance, and the Θ(p²) matrix dominated the whole pipeline's memory
    before anything was even built. *)

val two_clusters :
  speeds:Rat.t array -> split:int -> intra_bw:Rat.t -> inter_bw:Rat.t -> t
(** Two-site grid: processors [0 .. split-1] form one cluster, the rest the
    other; links within a cluster run at [intra_bw], links across at
    [inter_bw] (the DataCutter-style topology of the paper's motivating
    applications). @raise Invalid_argument unless [0 < split < length speeds]. *)

val random :
  Prng.t -> p:int -> speed_range:int * int -> bandwidth_range:int * int -> t
(** Uniformly random integer speeds and bandwidths within the inclusive
    ranges (the paper's experimental setup, Table 2). *)

val p : t -> int
(** Number of processors. *)

val speed : t -> int -> Rat.t
val bandwidth : t -> int -> int -> Rat.t

(** {1 Failure rates}

    The reliability objective of the multi-criteria search (the companion
    papers of Benoit, Rehn-Sonigo & Robert) models each processor as
    failure-prone: [failure_rate t u] is the probability that [P_u] fails
    over the mission. Platforms are reliable by default (every rate 0);
    {!with_failures} attaches per-processor rates. *)

val with_failures : t -> Rat.t array -> t
(** A copy of the platform carrying the given per-processor failure
    probabilities. @raise Invalid_argument unless the array has length [p]
    with every rate in [\[0, 1\]]. *)

val failure_rate : t -> int -> Rat.t
(** [0] unless set by {!with_failures}. *)

val failures_given : t -> bool
(** Whether {!with_failures} rates are attached (drives the optional
    [failures] line of the file format). *)

val proc_name : int -> string
(** ["P<u>"]. *)

val pp : Format.formatter -> t -> unit
