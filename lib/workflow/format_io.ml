open Rwt_util

let to_string inst =
  let buf = Buffer.create 512 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let { Instance.name; pipeline; platform; mapping } = inst in
  let n = Pipeline.n_stages pipeline in
  let p = Platform.p platform in
  pr "name %s\n" name;
  pr "stages %d\n" n;
  pr "work %s\n"
    (String.concat " " (List.init n (fun k -> Rat.to_string (Pipeline.work pipeline k))));
  if n > 1 then
    pr "data %s\n"
      (String.concat " " (List.init (n - 1) (fun k -> Rat.to_string (Pipeline.data pipeline k))));
  pr "processors %d\n" p;
  pr "speeds %s\n"
    (String.concat " " (List.init p (fun u -> Rat.to_string (Platform.speed platform u))));
  if Platform.failures_given platform then
    pr "failures %s\n"
      (String.concat " "
         (List.init p (fun u -> Rat.to_string (Platform.failure_rate platform u))));
  for u = 0 to p - 1 do
    for v = 0 to p - 1 do
      if u <> v && not (Rat.equal (Platform.bandwidth platform u v) Rat.one) then
        pr "bw %d %d %s\n" u v (Rat.to_string (Platform.bandwidth platform u v))
    done
  done;
  for i = 0 to n - 1 do
    pr "map %s\n"
      (String.concat " "
         (List.map string_of_int (Array.to_list (Mapping.procs mapping i))))
  done;
  Buffer.contents buf

type parse_state = {
  mutable pname : string;
  mutable stages : int option;
  mutable work : Rat.t array option;
  mutable data : Rat.t array option;
  mutable procs : int option;
  mutable speeds : Rat.t array option;
  mutable failures : Rat.t array option;
  mutable bw : (int * int * Rat.t) list;
  mutable maps : int array list; (* reversed *)
}

(* Shared front half of the two parsers: everything except the mapping.
   Returns the raw (possibly empty) assignment so {!of_string} can demand a
   full instance while {!problem_of_string} tolerates map-less files. *)
let parse_parts ?file s =
  let st =
    { pname = "instance"; stages = None; work = None; data = None; procs = None;
      speeds = None; failures = None; bw = []; maps = [] }
  in
  let fctx = match file with None -> [] | Some f -> [ ("file", f) ] in
  let exception Fail of Rwt_err.t in
  let fail lineno msg =
    raise (Fail (Rwt_err.parse ~code:"parse.instance" ?file ~line:lineno msg))
  in
  let vfail msg =
    raise (Fail (Rwt_err.validate ~code:"validate.instance_file" ~context:fctx msg))
  in
  let rat lineno tok =
    try Rat.of_string tok with Failure _ | Division_by_zero ->
      fail lineno (Printf.sprintf "bad rational %S" tok)
  in
  let int_tok lineno tok =
    match int_of_string_opt tok with
    | Some v -> v
    | None -> fail lineno (Printf.sprintf "bad integer %S" tok)
  in
  try
    let lines = String.split_on_char '\n' s in
    List.iteri
      (fun idx line ->
        let lineno = idx + 1 in
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        let toks =
          String.split_on_char ' ' (String.trim line)
          |> List.filter (fun t -> t <> "")
        in
        match toks with
        | [] -> ()
        | "name" :: rest -> st.pname <- String.concat " " rest
        | [ "stages"; n ] -> st.stages <- Some (int_tok lineno n)
        | "work" :: rest -> st.work <- Some (Array.of_list (List.map (rat lineno) rest))
        | "data" :: rest -> st.data <- Some (Array.of_list (List.map (rat lineno) rest))
        | [ "processors"; p ] -> st.procs <- Some (int_tok lineno p)
        | "speeds" :: rest -> st.speeds <- Some (Array.of_list (List.map (rat lineno) rest))
        | "failures" :: rest ->
          st.failures <- Some (Array.of_list (List.map (rat lineno) rest))
        | [ "bw"; u; v; r ] ->
          st.bw <- (int_tok lineno u, int_tok lineno v, rat lineno r) :: st.bw
        | "map" :: rest ->
          st.maps <- Array.of_list (List.map (int_tok lineno) rest) :: st.maps
        | kw :: _ -> fail lineno (Printf.sprintf "unknown or malformed directive %S" kw))
      lines;
    let get what = function Some v -> v | None -> vfail ("missing directive: " ^ what) in
    let n = get "stages" st.stages in
    let p = get "processors" st.procs in
    let work = get "work" st.work in
    let data = match st.data with Some d -> d | None -> [||] in
    let speeds = get "speeds" st.speeds in
    if Array.length work <> n then vfail "work: wrong arity";
    if Array.length data <> max 0 (n - 1) then vfail "data: wrong arity";
    if Array.length speeds <> p then vfail "speeds: wrong arity";
    let bwm = Array.make_matrix p p Rat.one in
    List.iter
      (fun (u, v, r) ->
        if u < 0 || u >= p || v < 0 || v >= p then vfail "bw: processor out of range";
        bwm.(u).(v) <- r)
      st.bw;
    let pipeline = Pipeline.create ~work ~data in
    let platform =
      try
        let base = Platform.create ~speeds ~bandwidths:bwm in
        match st.failures with
        | None -> base
        | Some rates ->
          if Array.length rates <> p then vfail "failures: wrong arity";
          Platform.with_failures base rates
      with Invalid_argument m -> vfail m
    in
    let assignment = Array.of_list (List.rev st.maps) in
    Ok (fctx, st.pname, pipeline, platform, assignment)
  with
  | Fail e -> Error e
  | Invalid_argument msg ->
    Error
      (Rwt_err.validate ~code:"validate.instance_file"
         ~context:(match file with None -> [] | Some f -> [ ("file", f) ])
         msg)

let of_string ?file s =
  match parse_parts ?file s with
  | Error e -> Error e
  | Ok (fctx, name, pipeline, platform, assignment) ->
    let n = Pipeline.n_stages pipeline in
    let p = Platform.p platform in
    (match Mapping.create ~n_stages:n ~p assignment with
     | Error e ->
       Error
         (Rwt_err.validate ~code:"validate.instance_file" ~context:fctx
            (Mapping.error_to_string e))
     | Ok mapping ->
       (match Instance.create ~name ~pipeline ~platform ~mapping with
        | Ok inst -> Ok inst
        | Error e -> Error { e with Rwt_err.context = fctx @ e.Rwt_err.context }))

let problem_of_string ?file s =
  match parse_parts ?file s with
  | Error e -> Error e
  | Ok (fctx, name, pipeline, platform, assignment) ->
    if Array.length assignment = 0 then Ok (name, pipeline, platform, None)
    else begin
      let n = Pipeline.n_stages pipeline in
      let p = Platform.p platform in
      match Mapping.create ~n_stages:n ~p assignment with
      | Error e ->
        Error
          (Rwt_err.validate ~code:"validate.instance_file" ~context:fctx
             (Mapping.error_to_string e))
      | Ok mapping -> Ok (name, pipeline, platform, Some mapping)
    end

let save path inst =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (to_string inst))

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> of_string ~file:path s
  | exception Sys_error msg -> Error (Rwt_err.parse ~code:"parse.io" msg)

let load_problem path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> problem_of_string ~file:path s
  | exception Sys_error msg -> Error (Rwt_err.parse ~code:"parse.io" msg)
