(** Directed multigraph substrate.

    Nodes are dense integers [0 .. n-1]; edges carry an arbitrary label and a
    stable integer id (their insertion index). The structure is built
    imperatively and then usually consulted read-only; {!out_edges} views are
    cheap. This is the common carrier for the Petri-net analyses. *)

type 'e edge = { src : int; dst : int; label : 'e; id : int }

type 'e t

val create : int -> 'e t
(** [create n] is an empty graph on [n] nodes. *)

val num_nodes : 'e t -> int
val num_edges : 'e t -> int

val add_edge : 'e t -> int -> int -> 'e -> 'e edge
(** [add_edge g u v label] appends an edge; parallel edges and self-loops are
    allowed. @raise Invalid_argument on out-of-range endpoints. *)

val of_arrays : n:int -> src:int array -> dst:int array -> 'e array -> 'e t
(** [of_arrays ~n ~src ~dst labels] is the graph produced by
    [add_edge g src.(i) dst.(i) labels.(i)] for [i = 0 .. m-1] — same edge
    ids, same adjacency order — built in one exactly-sized pass (no
    amortized growth). This is the bulk entry point for builders that
    already hold their arcs as flat arrays.
    @raise Invalid_argument on length mismatch or out-of-range endpoints. *)

val edge : 'e t -> int -> 'e edge
(** Edge by id. @raise Invalid_argument if out of range. *)

val set_label : 'e t -> int -> 'e -> unit
(** [set_label g id label] replaces the label of edge [id] in place.
    Endpoints, edge ids and adjacency are untouched, so any structural view
    (SCC decomposition, CSR contexts) built over [g] stays valid — this is
    the primitive behind incremental weight patches.
    @raise Invalid_argument if out of range. *)

val out_edges : 'e t -> int -> 'e edge list
(** Edges leaving a node, in insertion order. *)

val in_edges : 'e t -> int -> 'e edge list

val iter_edges : ('e edge -> unit) -> 'e t -> unit
val fold_edges : ('a -> 'e edge -> 'a) -> 'a -> 'e t -> 'a
val iter_nodes : (int -> unit) -> 'e t -> unit

val out_degree : 'e t -> int -> int
val in_degree : 'e t -> int -> int

val map_labels : ('e -> 'f) -> 'e t -> 'f t

val reverse : 'e t -> 'e t
(** Same nodes, every edge flipped (edge ids preserved). *)

val subgraph : 'e t -> int list -> 'e t * int array
(** [subgraph g nodes] keeps only [nodes] and the edges among them, renumbered
    densely; the returned array maps new indices to original node ids. *)
