/* Monotonic clock for Rwt_obs span timestamps.
 *
 * The sealed build has no OCaml binding for clock_gettime, so this stub
 * exposes CLOCK_MONOTONIC as float seconds. Returns a negative value when
 * the clock is unavailable; the OCaml side probes once at startup and
 * falls back to Unix.gettimeofday.
 */
#include <time.h>
#include <caml/mlvalues.h>
#include <caml/alloc.h>

CAMLprim value rwt_obs_monotonic_s(value unit)
{
  struct timespec ts;
  (void)unit;
#ifdef CLOCK_MONOTONIC
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return caml_copy_double((double)ts.tv_sec + 1e-9 * (double)ts.tv_nsec);
#endif
  return caml_copy_double(-1.0);
}
