(* Serve-layer tests: the decorrelated-jitter backoff policy, the
   request parser, the long-lived pool service, and full in-process
   daemon round-trips (echo/health/analyze, admission shedding,
   shutdown requests, and journal-backed crash replay) through the
   real Unix-domain socket via [Rwt_serve.Client]. *)

open Rwt_util
module Serve = Rwt_serve

(* ------------------------------------------------------------------ *)
(* Backoff                                                             *)
(* ------------------------------------------------------------------ *)

let backoff_bounds () =
  let b = Backoff.create ~cap_ms:10_000.0 ~seed:3 ~base_ms:100.0 () in
  let prev = ref 100.0 in
  for k = 1 to 12 do
    let d = Backoff.next_ms b in
    Alcotest.(check bool)
      (Printf.sprintf "draw %d in [base, cap]" k)
      true
      (d >= 100.0 && d <= 10_000.0);
    (* decorrelated: each draw is below 3x the previous one (or the cap) *)
    Alcotest.(check bool)
      (Printf.sprintf "draw %d < max(base, 3*prev)" k)
      true
      (d <= Float.max 100.0 (3.0 *. !prev));
    prev := d
  done;
  Alcotest.(check int) "attempts counted" 12 (Backoff.attempts b)

let backoff_determinism () =
  let draw seed =
    let b = Backoff.create ~seed ~base_ms:50.0 () in
    List.init 8 (fun _ -> Backoff.next_ms b)
  in
  Alcotest.(check (list (float 0.0))) "same seed, same schedule"
    (draw 7) (draw 7);
  Alcotest.(check bool) "different seeds diverge" true (draw 7 <> draw 8)

let backoff_edges () =
  let z = Backoff.create ~seed:1 ~base_ms:0.0 () in
  for _ = 1 to 5 do
    Alcotest.(check (float 0.0)) "base<=0 retries immediately" 0.0
      (Backoff.next_ms z)
  done;
  let c = Backoff.create ~cap_ms:150.0 ~seed:1 ~base_ms:100.0 () in
  for _ = 1 to 10 do
    let d = Backoff.next_ms c in
    Alcotest.(check bool) "cap clamps every draw" true
      (d >= 100.0 && d <= 150.0)
  done

(* ------------------------------------------------------------------ *)
(* Request parsing                                                     *)
(* ------------------------------------------------------------------ *)

let parse_ok line =
  match Serve.parse_request line with
  | Ok r -> r
  | Error e -> Alcotest.failf "parse %S: %s" line (Rwt_err.to_line e)

let parse_err line =
  match Serve.parse_request line with
  | Ok _ -> Alcotest.failf "parse %S: expected an error" line
  | Error e -> e

let parse_request_units () =
  (* "req" defaults to analyze when a source is present *)
  (match parse_ok {|{"example":"a","id":"x"}|} with
   | { id = Some "x"; kind = Serve.Analyze a } ->
     Alcotest.(check bool) "example source" true (a.source = Serve.Example "a");
     Alcotest.(check bool) "default overlap" true
       (a.model = Rwt_workflow.Comm_model.Overlap);
     Alcotest.(check bool) "default auto" true
       (a.method_ = Rwt_core.Analysis.Auto);
     Alcotest.(check bool) "no deadline" true (a.deadline_ms = None)
   | _ -> Alcotest.fail "bare example must parse as analyze");
  (match parse_ok
           {|{"file":"w.rwt","model":"strict","method":"tpn","deadline_ms":500,"transition_cap":9}|}
   with
   | { id = None; kind = Serve.Analyze a } ->
     Alcotest.(check bool) "file source" true (a.source = Serve.File "w.rwt");
     Alcotest.(check bool) "strict" true
       (a.model = Rwt_workflow.Comm_model.Strict);
     Alcotest.(check bool) "tpn" true (a.method_ = Rwt_core.Analysis.Tpn);
     Alcotest.(check (option int)) "deadline" (Some 500) a.deadline_ms;
     Alcotest.(check (option int)) "cap" (Some 9) a.transition_cap
   | _ -> Alcotest.fail "full analyze must parse");
  (match parse_ok {|{"req":"echo","payload":{"x":1}}|} with
   | { kind = Serve.Echo (Some (Json.Obj [ ("x", Json.Int 1) ])); _ } -> ()
   | _ -> Alcotest.fail "echo must keep its payload");
  (match parse_ok {|{"req":"health"}|} with
   | { kind = Serve.Health; _ } -> ()
   | _ -> Alcotest.fail "health");
  (match parse_ok {|{"req":"metrics"}|} with
   | { kind = Serve.Metrics `Prometheus; _ } -> ()
   | _ -> Alcotest.fail "metrics defaults to prometheus");
  (* every rejection is typed, never an exception *)
  Alcotest.(check string) "bad json -> parse.request" "parse.request"
    (parse_err "not json").Rwt_err.code;
  Alcotest.(check string) "non-object -> parse.request" "parse.request"
    (parse_err "[1,2]").Rwt_err.code;
  Alcotest.(check string) "unknown req" "validate.request"
    (parse_err {|{"req":"bogus"}|}).Rwt_err.code;
  Alcotest.(check string) "unknown key" "parse.request"
    (parse_err {|{"example":"a","wat":1}|}).Rwt_err.code;
  Alcotest.(check string) "inapplicable key" "validate.request"
    (parse_err {|{"req":"echo","file":"x.rwt"}|}).Rwt_err.code;
  Alcotest.(check string) "analyze without source" "validate.request"
    (parse_err {|{"req":"analyze"}|}).Rwt_err.code

(* ------------------------------------------------------------------ *)
(* Pool service                                                        *)
(* ------------------------------------------------------------------ *)

let service_drain () =
  let mu = Mutex.create () in
  let got = ref [] in
  let svc =
    Rwt_pool.service ~workers:2 ~name:"tsvc" (fun i ->
        Mutex.lock mu;
        got := i :: !got;
        Mutex.unlock mu)
  in
  for i = 0 to 19 do
    Alcotest.(check bool) "submit accepted" true (Rwt_pool.submit svc i)
  done;
  Rwt_pool.shutdown svc;
  Alcotest.(check (list int)) "drain handles every item"
    (List.init 20 Fun.id)
    (List.sort compare !got);
  Alcotest.(check bool) "submit after shutdown is refused" false
    (Rwt_pool.submit svc 99);
  (* idempotent *)
  Rwt_pool.shutdown svc

let service_queue_cap () =
  let release = Atomic.make false in
  let done_ = Atomic.make 0 in
  let svc =
    Rwt_pool.service ~workers:1 ~queue_cap:1 ~name:"tcap" (fun () ->
        while not (Atomic.get release) do
          Domain.cpu_relax ()
        done;
        Atomic.incr done_)
  in
  (* first item: picked up by the lone worker and parked on [release] *)
  Alcotest.(check bool) "first accepted" true (Rwt_pool.submit svc ());
  let rec wait_pickup n =
    if Rwt_pool.service_depth svc > 0 && n > 0 then (
      Unix.sleepf 0.002;
      wait_pickup (n - 1))
  in
  wait_pickup 500;
  (* second item fills the queue; third must be shed *)
  Alcotest.(check bool) "second queues" true (Rwt_pool.submit svc ());
  Alcotest.(check bool) "third is shed at queue_cap" false
    (Rwt_pool.submit svc ());
  Alcotest.(check int) "outstanding = queued + running" 2
    (Rwt_pool.service_outstanding svc);
  Atomic.set release true;
  Rwt_pool.shutdown svc;
  Alcotest.(check int) "both accepted items ran" 2 (Atomic.get done_)

let service_handler_errors () =
  let ok = Atomic.make 0 in
  let svc =
    Rwt_pool.service ~workers:1 ~name:"terr" (fun i ->
        if i = 1 then failwith "boom" else Atomic.incr ok)
  in
  List.iter (fun i -> ignore (Rwt_pool.submit svc i)) [ 0; 1; 2 ];
  Rwt_pool.shutdown svc;
  Alcotest.(check int) "a handler exception never kills the worker" 2
    (Atomic.get ok)

(* ------------------------------------------------------------------ *)
(* In-process daemon round-trips                                       *)
(* ------------------------------------------------------------------ *)

let fresh_dir () =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "rwt-serve-test-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir d 0o700;
  d

let base_config dir =
  { Serve.default_config with
    Serve.socket = Some (Filename.concat dir "d.sock");
    workers = 1 }

(* Start the daemon on its own domain, hand [f] the client address, then
   drain and return the lifetime stats. *)
let with_server cfg f =
  let ready = Atomic.make None in
  let dom =
    Domain.spawn (fun () ->
        Serve.run ~on_ready:(fun r -> Atomic.set ready (Some r)) cfg)
  in
  let rec await n =
    match Atomic.get ready with
    | Some r -> r
    | None when n = 0 -> Alcotest.fail "daemon never became ready"
    | None ->
      Unix.sleepf 0.005;
      await (n - 1)
  in
  let r = await 2000 in
  let sock = Option.get cfg.Serve.socket in
  let out =
    Fun.protect
      ~finally:(fun () -> Serve.stop r.Serve.control)
      (fun () -> f (Serve.Client.Unix_sock sock) r)
  in
  match Domain.join dom with
  | Ok stats -> (out, stats)
  | Error e -> Alcotest.failf "daemon failed: %s" (Rwt_err.to_line e)

let lines_ok addr reqs =
  match Serve.Client.request_lines addr reqs with
  | Ok lines -> lines
  | Error (e, partial) ->
    Alcotest.failf "client failed after %d responses: %s"
      (List.length partial) (Rwt_err.to_line e)

let field line key =
  match Json.of_string line with
  | Ok (Json.Obj fields) -> List.assoc_opt key fields
  | _ -> Alcotest.failf "response is not a JSON object: %s" line

let status line =
  match field line "status" with
  | Some (Json.String s) -> s
  | _ -> Alcotest.failf "no status in %s" line

let serve_roundtrip () =
  let dir = fresh_dir () in
  let (), stats =
    with_server (base_config dir) (fun addr _ ->
        let lines =
          lines_ok addr
            [ {|{"req":"echo","payload":"ping","id":"e"}|};
              {|{"example":"a","id":"a1"}|};
              "this is not json";
              {|{"req":"health"}|} ]
        in
        match lines with
        | [ echo; a1; bad; health ] ->
          Alcotest.(check string) "echo ok" "ok" (status echo);
          Alcotest.(check bool) "echo payload round-trips" true
            (field echo "payload" = Some (Json.String "ping"));
          Alcotest.(check bool) "id echoed" true
            (field echo "id" = Some (Json.String "e"));
          Alcotest.(check string) "analyze ok" "ok" (status a1);
          Alcotest.(check bool) "example a period is exactly 189" true
            (field a1 "period" = Some (Json.String "189"));
          (* a malformed line still consumes exactly one response slot *)
          Alcotest.(check string) "malformed -> typed error" "error"
            (status bad);
          Alcotest.(check bool) "malformed carries parse class" true
            (field bad "error_class" = Some (Json.String "parse"));
          Alcotest.(check string) "health ok" "ok" (status health);
          (match field health "health" with
           | Some (Json.Obj h) ->
             Alcotest.(check bool) "health reports accepting" true
               (List.assoc_opt "accepting" h = Some (Json.Bool true))
           | _ -> Alcotest.fail "health payload missing")
        | _ -> Alcotest.failf "expected 4 responses, got %d" (List.length lines))
  in
  Alcotest.(check int) "requests counted" 4 stats.Serve.requests;
  Alcotest.(check int) "ok counted" 3 stats.Serve.ok;
  Alcotest.(check int) "errors counted" 1 stats.Serve.errors;
  Alcotest.(check int) "one connection" 1 stats.Serve.conns

let serve_strict_method () =
  let dir = fresh_dir () in
  let (), _ =
    with_server (base_config dir) (fun addr _ ->
        let lines =
          lines_ok addr
            [ {|{"example":"a","model":"strict","id":"s"}|};
              {|{"example":"b","id":"b"}|} ]
        in
        match lines with
        | [ s; b ] ->
          Alcotest.(check bool) "a strict period 692/3" true
            (field s "period" = Some (Json.String "692/3"));
          Alcotest.(check bool) "b overlap period 875/3" true
            (field b "period" = Some (Json.String "875/3"))
        | _ -> Alcotest.fail "expected 2 responses")
  in
  ()

let serve_shed () =
  let dir = fresh_dir () in
  (* queue = 0: every analyze/echo request is over the admission cap *)
  let cfg = { (base_config dir) with Serve.queue = 0 } in
  let (), stats =
    with_server cfg (fun addr _ ->
        let lines =
          lines_ok addr
            [ {|{"example":"a","id":"1"}|};
              {|{"req":"echo","id":"2"}|};
              {|{"req":"health","id":"3"}|} ]
        in
        match lines with
        | [ l1; l2; l3 ] ->
          Alcotest.(check string) "analyze shed" "shed" (status l1);
          Alcotest.(check bool) "shed is typed capacity" true
            (field l1 "error_class" = Some (Json.String "capacity"));
          Alcotest.(check bool) "shed carries the queue bound" true
            (field l1 "error_code" = Some (Json.String "serve.shed"));
          Alcotest.(check string) "echo shed too" "shed" (status l2);
          (* observability survives overload *)
          Alcotest.(check string) "health bypasses admission" "ok" (status l3)
        | _ -> Alcotest.fail "expected 3 responses")
  in
  Alcotest.(check int) "shed counted" 2 stats.Serve.shed;
  Alcotest.(check int) "health still ok" 1 stats.Serve.ok

let serve_shutdown_request () =
  let dir = fresh_dir () in
  let cfg = { (base_config dir) with Serve.allow_shutdown = true } in
  let (), stats =
    with_server cfg (fun addr _ ->
        match lines_ok addr [ {|{"req":"shutdown","id":"z"}|} ] with
        | [ l ] ->
          Alcotest.(check string) "shutdown acknowledged" "ok" (status l);
          Alcotest.(check bool) "stopping flagged" true
            (field l "stopping" = Some (Json.Bool true))
        | _ -> Alcotest.fail "expected 1 response")
  in
  Alcotest.(check int) "drained with one request" 1 stats.Serve.requests;
  (* refused without the flag *)
  let dir2 = fresh_dir () in
  let (), _ =
    with_server (base_config dir2) (fun addr _ ->
        match lines_ok addr [ {|{"req":"shutdown"}|} ] with
        | [ l ] ->
          Alcotest.(check string) "refused" "error" (status l);
          Alcotest.(check bool) "typed validate.shutdown" true
            (field l "error_code" = Some (Json.String "validate.shutdown"))
        | _ -> Alcotest.fail "expected 1 response")
  in
  ()

let serve_journal_replay () =
  let dir = fresh_dir () in
  let journal = Filename.concat dir "serve.journal" in
  let cfg = { (base_config dir) with Serve.journal = Some journal } in
  let req = {|{"example":"a","id":"j"}|} in
  (* first life: evaluate, journal, and memo-hit the duplicate *)
  let first, stats1 =
    with_server cfg (fun addr _ ->
        match lines_ok addr [ req; req ] with
        | [ l1; l2 ] ->
          Alcotest.(check string) "duplicate is byte-identical" l1 l2;
          l1
        | _ -> Alcotest.fail "expected 2 responses")
  in
  Alcotest.(check int) "one memo hit in life 1" 1 stats1.Serve.cache_hits;
  Alcotest.(check int) "nothing replayed in life 1" 0 stats1.Serve.replayed;
  Alcotest.(check bool) "journal exists" true (Sys.file_exists journal);
  (* second life: the same request replays from the recovered journal
     byte-identically, without re-evaluating *)
  let second, stats2 =
    with_server cfg (fun addr ready ->
        Alcotest.(check int) "one record recovered" 1 ready.Serve.recovered;
        match lines_ok addr [ req ] with
        | [ l ] -> l
        | _ -> Alcotest.fail "expected 1 response")
  in
  Alcotest.(check string) "replayed response is byte-identical" first second;
  Alcotest.(check int) "replay counted" 1 stats2.Serve.replayed;
  Alcotest.(check int) "recovered counted" 1 stats2.Serve.recovered

let serve_client_retry_after_shed () =
  (* queue = 0 daemon always sheds; the client with a retry budget keeps
     retrying until the budget is spent, then surfaces the shed line *)
  let dir = fresh_dir () in
  let cfg = { (base_config dir) with Serve.queue = 0 } in
  let (), _ =
    with_server cfg (fun addr _ ->
        match
          Serve.Client.request_lines ~retries:2 ~backoff_ms:1.0 ~seed:5 addr
            [ {|{"req":"echo","id":"r"}|} ]
        with
        | Ok [ l ] -> Alcotest.(check string) "budget spent -> shed" "shed"
                        (status l)
        | Ok _ -> Alcotest.fail "expected 1 response"
        | Error (e, _) -> Alcotest.failf "unexpected: %s" (Rwt_err.to_line e))
  in
  ()

let serve_stale_socket () =
  (* a socket file left behind by a dead daemon must be replaced *)
  let dir = fresh_dir () in
  let cfg = base_config dir in
  let sock = Option.get cfg.Serve.socket in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX sock);
  Unix.close fd;
  (* bound then closed: the file exists but nothing accepts on it *)
  Alcotest.(check bool) "stale socket file present" true (Sys.file_exists sock);
  let (), _ =
    with_server cfg (fun addr _ ->
        match lines_ok addr [ {|{"req":"health"}|} ] with
        | [ l ] -> Alcotest.(check string) "daemon took over" "ok" (status l)
        | _ -> Alcotest.fail "expected 1 response")
  in
  ()

let () =
  Random.self_init ();
  Alcotest.run "rwt_serve"
    [ ( "backoff",
        [ Alcotest.test_case "bounds" `Quick backoff_bounds;
          Alcotest.test_case "determinism" `Quick backoff_determinism;
          Alcotest.test_case "edges" `Quick backoff_edges ] );
      ( "parse",
        [ Alcotest.test_case "request grammar" `Quick parse_request_units ] );
      ( "service",
        [ Alcotest.test_case "submit & drain" `Quick service_drain;
          Alcotest.test_case "queue cap sheds" `Quick service_queue_cap;
          Alcotest.test_case "handler errors survive" `Quick
            service_handler_errors ] );
      ( "daemon",
        [ Alcotest.test_case "round-trip" `Quick serve_roundtrip;
          Alcotest.test_case "strict & example b" `Quick serve_strict_method;
          Alcotest.test_case "admission shed" `Quick serve_shed;
          Alcotest.test_case "shutdown request" `Quick serve_shutdown_request;
          Alcotest.test_case "journal replay" `Quick serve_journal_replay;
          Alcotest.test_case "client shed retry" `Quick
            serve_client_retry_after_shed;
          Alcotest.test_case "stale socket takeover" `Quick serve_stale_socket ]
      ) ]
