open Rwt_util

type transition = { tr_name : string; firing : Rat.t }

type place = { pl_src : int; pl_dst : int; tokens : int; pl_name : string }

type t = {
  transitions : transition array;
  mutable places_rev : place list;
  mutable n_places : int;
}

let create transitions =
  Array.iter
    (fun tr ->
      if Rat.sign tr.firing < 0 then
        invalid_arg "Tpn.create: negative firing time")
    transitions;
  { transitions; places_rev = []; n_places = 0 }

let num_transitions t = Array.length t.transitions
let num_places t = t.n_places
let transition t i = t.transitions.(i)

let add_place ?(name = "") t ~src ~dst ~tokens =
  let n = num_transitions t in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Tpn.add_place: transition out of range";
  if tokens < 0 then invalid_arg "Tpn.add_place: negative marking";
  t.places_rev <- { pl_src = src; pl_dst = dst; tokens; pl_name = name } :: t.places_rev;
  t.n_places <- t.n_places + 1

let places t = List.rev t.places_rev
let iter_places f t = List.iter f (places t)
let total_tokens t = List.fold_left (fun acc p -> acc + p.tokens) 0 t.places_rev

let graph t =
  let g = Rwt_graph.Digraph.create (num_transitions t) in
  iter_places (fun p -> ignore (Rwt_graph.Digraph.add_edge g p.pl_src p.pl_dst p)) t;
  g

type liveness = Live | Dead_cycle of int list

(* Live iff the subgraph of token-free places is acyclic. On violation we
   return a circuit witness found by walking the cycle in the token-free
   subgraph. *)
let liveness t =
  let n = num_transitions t in
  let g0 = Rwt_graph.Digraph.create n in
  iter_places
    (fun p -> if p.tokens = 0 then ignore (Rwt_graph.Digraph.add_edge g0 p.pl_src p.pl_dst ()))
    t;
  match Rwt_graph.Topo.sort g0 with
  | Some _ -> Live
  | None ->
    (* Find a cycle: DFS with colors. *)
    let color = Array.make n 0 in
    let parent = Array.make n (-1) in
    let cycle = ref [] in
    let rec dfs u =
      color.(u) <- 1;
      List.iter
        (fun e ->
          let v = e.Rwt_graph.Digraph.dst in
          if !cycle = [] then begin
            if color.(v) = 0 then begin
              parent.(v) <- u;
              dfs v
            end
            else if color.(v) = 1 then begin
              (* back edge: v .. u is a cycle *)
              let rec collect x acc = if x = v then v :: acc else collect parent.(x) (x :: acc) in
              cycle := collect u []
            end
          end)
        (Rwt_graph.Digraph.out_edges g0 u);
      color.(u) <- 2
    in
    let u = ref 0 in
    while !cycle = [] && !u < n do
      if color.(!u) = 0 then dfs !u;
      incr u
    done;
    Dead_cycle !cycle

let to_dot t =
  let g = graph t in
  Rwt_graph.Dot.render ~name:"tpn"
    ~node_label:(fun i ->
      let tr = t.transitions.(i) in
      Printf.sprintf "%s\n%s" tr.tr_name (Rat.to_string tr.firing))
    ~edge_label:(fun p ->
      if p.tokens = 0 then ""
      else String.concat "" (List.init p.tokens (fun _ -> "\xe2\x97\x8f")))
    g

let pp_stats fmt t =
  Format.fprintf fmt "%d transitions, %d places, %d tokens" (num_transitions t)
    (num_places t) (total_tokens t)
